examples/auction.ml: Core List Mof Ocl Option Printf String Transform Xmi
