examples/auction.mli:
