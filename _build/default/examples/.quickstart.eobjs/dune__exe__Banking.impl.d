examples/banking.ml: Code Core List Mof Printf Transform Weaver Workflow
