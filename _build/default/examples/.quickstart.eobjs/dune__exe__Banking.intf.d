examples/banking.mli:
