examples/composite.ml: Aspects Code Concerns Format List Mof Ocl Printf String Transform Workflow
