examples/composite.mli:
