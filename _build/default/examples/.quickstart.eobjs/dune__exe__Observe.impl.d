examples/observe.ml: Code Core Interp List Mof Printf Transform Weaver
