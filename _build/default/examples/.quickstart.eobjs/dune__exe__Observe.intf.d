examples/observe.mli:
