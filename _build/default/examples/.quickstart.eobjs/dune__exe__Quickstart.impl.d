examples/quickstart.ml: Code Core Mof Transform
