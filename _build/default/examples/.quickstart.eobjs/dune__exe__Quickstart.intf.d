examples/quickstart.mli:
