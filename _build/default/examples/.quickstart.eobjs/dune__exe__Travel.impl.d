examples/travel.ml: Code Core List Mof Printf String Transform
