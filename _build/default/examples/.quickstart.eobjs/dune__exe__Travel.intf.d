examples/travel.mli:
