(* The extension APIs, in one sitting:
   1. register a user-defined concern (caching) — the registry validates
      that its GMT and GAC share formals and that its generic OCL
      conditions typecheck;
   2. compose two generic transformations into one composite GMT over a
      merged parameter set (the paper's open composition question);
   3. derive the allowed transformation sequence from declared concern
      dependencies instead of writing the workflow by hand. *)

let v_names names =
  Transform.Params.V_list (List.map (fun n -> Transform.Params.V_ident n) names)

(* ---- 1. a user-defined caching concern ---------------------------------- *)

let caching_formals =
  [
    Transform.Params.decl "cached"
      (Transform.Params.P_list Transform.Params.P_ident)
      ~doc:"classes whose query operations are cached";
    Transform.Params.decl "capacity" Transform.Params.P_int
      ~default:(Transform.Params.V_int 128) ~doc:"cache capacity";
  ]

let caching_gmt =
  Transform.Gmt.make ~name:"T.caching" ~concern:"caching"
    ~formals:caching_formals
    ~preconditions:
      [
        Ocl.Constraint_.make ~name:"cached-classes-exist"
          "$cached$->forAll(n | Class.allInstances()->exists(c | c.name = n))";
        Ocl.Constraint_.make ~name:"positive-capacity" "$capacity$ > 0";
      ]
    ~postconditions:
      [
        Ocl.Constraint_.make ~name:"marked"
          "Class.allInstances()->forAll(c | $cached$->includes(c.name) \
           implies c.hasStereotype('cached'))";
      ]
    (fun set m ->
      let capacity = Transform.Params.get_int set "capacity" in
      List.fold_left
        (fun m name ->
          match Mof.Query.find_class m name with
          | Some cls ->
              let m =
                Mof.Builder.add_stereotype m cls.Mof.Element.id "cached"
              in
              Mof.Builder.set_tag m cls.Mof.Element.id "cacheCapacity"
                (string_of_int capacity)
          | None -> Transform.Gmt.rewrite_error "class %s missing" name)
        m
        (Transform.Params.get_names set "cached"))

let caching_gac =
  Aspects.Generic.make ~name:"A.caching" ~concern:"caching"
    ~formals:caching_formals (fun set ->
      let advices =
        List.map
          (fun cname ->
            Aspects.Advice.make ~name:("cache-" ^ cname) Aspects.Advice.Before
              (Aspects.Pointcut.execution cname "get*")
              [
                Code.Jstmt.S_comment
                  (Printf.sprintf "consult cache (capacity %d)"
                     (Transform.Params.get_int set "capacity"));
              ])
          (Transform.Params.get_names set "cached")
      in
      Aspects.Aspect.make ~advices ~name:"CachingAspect" ~concern:"caching" ())

let () =
  Concerns.Registry.reset ();
  (match
     Concerns.Registry.register
       { Concerns.Registry.concern =
           Concerns.Concern.make ~key:"caching" ~display:"Caching" ();
         gmt = caching_gmt;
         gac = caching_gac;
       }
   with
  | Ok () -> print_endline "registered user concern: caching"
  | Error diags -> failwith (String.concat "; " diags));

  (* ---- 2. composition: transactions then caching, one parameter set ---- *)
  let composite =
    match
      Transform.Compose.sequence ~name:"T.reliable-reads" ~concern:"caching"
        [ Concerns.Transactions.transformation; caching_gmt ]
    with
    | Ok gmt -> gmt
    | Error e -> failwith e
  in
  Printf.printf "composite %s merges %d formal parameter(s)\n"
    composite.Transform.Gmt.name
    (List.length composite.Transform.Gmt.formals);

  let m = Mof.Model.create ~name:"kv" in
  let root = Mof.Model.root m in
  let m, store = Mof.Builder.add_class m ~owner:root ~name:"Store" in
  let m, get = Mof.Builder.add_operation m ~owner:store ~name:"getValue" in
  let m = Mof.Builder.set_result m ~op:get ~typ:Mof.Kind.Dt_string in

  let cmt =
    Transform.Cmt.specialize_exn composite
      [
        ("transactional", v_names [ "Store" ]);
        ("cached", v_names [ "Store" ]);
        ("capacity", Transform.Params.V_int 64);
      ]
  in
  (match Transform.Engine.apply cmt m with
  | Ok outcome ->
      let refined = outcome.Transform.Engine.model in
      Printf.printf "composite applied: %s\n"
        (Transform.Report.summary outcome.Transform.Engine.report);
      Printf.printf "Store stereotypes: %s\n"
        (match Mof.Query.find_class refined "Store" with
        | Some c -> String.concat ", " c.Mof.Element.stereotypes
        | None -> "?")
  | Error f ->
      failwith (Format.asprintf "%a" Transform.Engine.pp_failure f));

  (* ---- 3. a workflow derived from dependencies -------------------------- *)
  let wf =
    match
      Workflow.Derive.from_dependencies
        ~optional:[ "caching" ]
        [
          ("transactions", []);
          ("caching", [ "transactions" ]);
        ]
    with
    | Ok wf -> wf
    | Error e -> failwith e
  in
  let p = Workflow.State.start wf in
  Printf.printf "\nderived workflow:\n%s\n" (Workflow.Guidance.describe p);
  Concerns.Registry.reset ()
