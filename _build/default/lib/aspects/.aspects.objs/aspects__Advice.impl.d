lib/aspects/advice.ml: Code List Option Pointcut String
