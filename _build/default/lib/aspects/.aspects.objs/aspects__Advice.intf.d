lib/aspects/advice.mli: Code Pointcut
