lib/aspects/aspect.ml: Advice Code List Pattern Printf
