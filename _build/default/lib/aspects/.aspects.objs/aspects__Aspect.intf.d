lib/aspects/aspect.mli: Advice Code Pattern
