lib/aspects/generator.ml: Aspect Generic List Printf String Transform
