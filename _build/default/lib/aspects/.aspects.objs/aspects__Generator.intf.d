lib/aspects/generator.mli: Aspect Generic Transform
