lib/aspects/generic.ml: Aspect Transform
