lib/aspects/generic.mli: Aspect Transform
