lib/aspects/pattern.ml: Array String
