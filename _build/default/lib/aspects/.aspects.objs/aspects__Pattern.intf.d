lib/aspects/pattern.mli:
