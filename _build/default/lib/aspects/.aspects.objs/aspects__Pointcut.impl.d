lib/aspects/pointcut.ml: Pattern
