lib/aspects/pointcut.mli: Pattern
