lib/aspects/pointcut_parser.ml: Format Pointcut Printf Stdlib String
