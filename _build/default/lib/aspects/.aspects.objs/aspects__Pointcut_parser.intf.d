lib/aspects/pointcut_parser.mli: Pointcut
