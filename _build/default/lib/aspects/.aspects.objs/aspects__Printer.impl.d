lib/aspects/printer.ml: Advice Aspect Code Generator List Pointcut Printf String
