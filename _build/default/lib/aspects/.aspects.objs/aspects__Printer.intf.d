lib/aspects/printer.mli: Advice Aspect Generator
