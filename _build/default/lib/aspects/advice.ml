type time =
  | Before
  | After
  | After_returning
  | Around

let time_to_string = function
  | Before -> "before"
  | After -> "after"
  | After_returning -> "after returning"
  | Around -> "around"

type t = {
  advice_name : string;
  time : time;
  pointcut : Pointcut.t;
  body : Code.Jstmt.t list;
}

let make ?name time pointcut body =
  let advice_name =
    match name with
    | Some n -> n
    | None -> time_to_string time ^ ": " ^ Pointcut.to_string pointcut
  in
  { advice_name; time; pointcut; body }

let proceed = Code.Jstmt.S_expr (Code.Jexpr.E_call (None, "proceed", []))

let rec stmt_mentions_proceed (s : Code.Jstmt.t) =
  let has_call e =
    Code.Jexpr.fold_calls
      (fun acc (recv, name, _) ->
        acc || (recv = None && String.equal name "proceed"))
      false e
  in
  match s with
  | Code.Jstmt.S_expr e -> has_call e
  | Code.Jstmt.S_local (_, _, init) ->
      Option.fold ~none:false ~some:has_call init
  | Code.Jstmt.S_return e -> Option.fold ~none:false ~some:has_call e
  | Code.Jstmt.S_if (c, t, f) ->
      has_call c
      || List.exists stmt_mentions_proceed t
      || List.exists stmt_mentions_proceed f
  | Code.Jstmt.S_while (c, b) ->
      has_call c || List.exists stmt_mentions_proceed b
  | Code.Jstmt.S_throw e -> has_call e
  | Code.Jstmt.S_try (b, catches, fin) ->
      List.exists stmt_mentions_proceed b
      || List.exists
           (fun (_, _, stmts) -> List.exists stmt_mentions_proceed stmts)
           catches
      || List.exists stmt_mentions_proceed fin
  | Code.Jstmt.S_sync (e, b) ->
      has_call e || List.exists stmt_mentions_proceed b
  | Code.Jstmt.S_comment _ -> false
  | Code.Jstmt.S_block b -> List.exists stmt_mentions_proceed b

let mentions_proceed t = List.exists stmt_mentions_proceed t.body
