(** Advice: what to do at matched join points.

    Around advice uses a [proceed()] call marker in its body — the weaver
    replaces the statement containing it with the original join-point code.
    Inside advice bodies, two pseudo-variables are available and rewritten
    at weave time: [thisJoinPoint] (a string describing the join point) and
    [targetName] (the current class name). *)

type time =
  | Before
  | After  (** after, regardless of outcome (woven as try/finally) *)
  | After_returning
  | Around

val time_to_string : time -> string

type t = {
  advice_name : string;
  time : time;
  pointcut : Pointcut.t;
  body : Code.Jstmt.t list;
}

val make : ?name:string -> time -> Pointcut.t -> Code.Jstmt.t list -> t
(** [make time pc body]; the name defaults to the rendered time+pointcut. *)

val proceed : Code.Jstmt.t
(** The [proceed();] marker statement for around advice. *)

val mentions_proceed : t -> bool
(** Whether the body contains the {!proceed} marker (must hold for [Around]
    advice; checked by {!Aspect.validate}). *)
