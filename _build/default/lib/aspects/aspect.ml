type intertype =
  | It_field of Pattern.t * Code.Jdecl.field
  | It_method of Pattern.t * Code.Jdecl.method_

type t = {
  aspect_name : string;
  concern : string;
  intertypes : intertype list;
  advices : Advice.t list;
}

let make ?(intertypes = []) ?(advices = []) ~name ~concern () =
  { aspect_name = name; concern; intertypes; advices }

let validate t =
  let advice_diags =
    List.concat_map
      (fun (a : Advice.t) ->
        match (a.Advice.time, Advice.mentions_proceed a) with
        | Advice.Around, false ->
            [
              Printf.sprintf "%s: around advice %s has no proceed() marker"
                t.aspect_name a.Advice.advice_name;
            ]
        | (Advice.Before | Advice.After | Advice.After_returning), true ->
            [
              Printf.sprintf "%s: %s advice %s calls proceed()" t.aspect_name
                (Advice.time_to_string a.Advice.time)
                a.Advice.advice_name;
            ]
        | _, _ -> [])
      t.advices
  in
  let field_keys =
    List.filter_map
      (function
        | It_field (p, f) -> Some (p, f.Code.Jdecl.field_name)
        | It_method _ -> None)
      t.intertypes
  in
  let rec dup_diags seen = function
    | [] -> []
    | key :: rest ->
        if List.mem key seen then
          let pattern, name = key in
          Printf.sprintf "%s: duplicate inter-type field %s on %s"
            t.aspect_name name pattern
          :: dup_diags seen rest
        else dup_diags (key :: seen) rest
  in
  advice_diags @ dup_diags [] field_keys

let advice_count t = List.length t.advices
