(** Aspects: named bundles of inter-type declarations and advice for one
    concern. A *concrete* aspect (the paper's CAC_i = GAC_i⟨S_i⟩) is a value
    of this type produced by specializing a {!Generic} aspect. *)

(** Members an aspect injects into matching classes. *)
type intertype =
  | It_field of Pattern.t * Code.Jdecl.field
      (** add a field to every class matching the pattern *)
  | It_method of Pattern.t * Code.Jdecl.method_
      (** add a method to every class matching the pattern *)

type t = {
  aspect_name : string;
  concern : string;
  intertypes : intertype list;
  advices : Advice.t list;
}

val make :
  ?intertypes:intertype list ->
  ?advices:Advice.t list ->
  name:string ->
  concern:string ->
  unit ->
  t

val validate : t -> string list
(** Sanity diagnostics: around advice without a [proceed()] marker,
    non-around advice *with* one, duplicate inter-type field names on the
    same pattern. Empty means valid. *)

val advice_count : t -> int
