type generated = {
  aspect : Aspect.t;
  from_transformation : string;
  seq : int;
}

let from_cmt gac ~seq cmt =
  let concern = Transform.Cmt.concern cmt in
  if not (String.equal gac.Generic.concern concern) then
    invalid_arg
      (Printf.sprintf
         "Aspects.Generator.from_cmt: aspect %s is for concern %s, \
          transformation %s is for concern %s"
         gac.Generic.ga_name gac.Generic.concern
         (Transform.Cmt.name cmt) concern);
  {
    aspect = Generic.specialize_with_set gac cmt.Transform.Cmt.params;
    from_transformation = Transform.Cmt.name cmt;
    seq;
  }

let from_trace ~lookup cmts =
  let rec loop seq acc = function
    | [] -> Ok (List.rev acc)
    | cmt :: rest -> (
        let concern = Transform.Cmt.concern cmt in
        match lookup concern with
        | Some gac -> loop (seq + 1) (from_cmt gac ~seq cmt :: acc) rest
        | None ->
            Error
              (Printf.sprintf "no generic aspect registered for concern %s"
                 concern))
  in
  loop 1 [] cmts
