(** The aspect generator: concrete aspects from concrete transformations.

    Implements the paper's "aspect generators, which generate concrete
    aspects from concrete model transformations". Given the generic aspect
    registered for a concern and the concrete transformation applied at
    model level, the generator instantiates the aspect with the
    transformation's own parameter set and stamps it with the
    transformation's sequence number — the precedence the weaver obeys. *)

(** A concrete aspect plus its provenance. *)
type generated = {
  aspect : Aspect.t;
  from_transformation : string;  (** concrete transformation name, T_i⟨…⟩ *)
  seq : int;  (** application order of the source transformation *)
}

val from_cmt : Generic.t -> seq:int -> Transform.Cmt.t -> generated
(** [from_cmt gac ~seq cmt] is the concrete aspect GAC⟨S_i⟩ where S_i is
    [cmt]'s parameter set. Raises [Invalid_argument] when the concern keys
    of the generic aspect and the transformation disagree — pairing a
    transformation with another concern's aspect is always a wiring bug. *)

val from_trace :
  lookup:(string -> Generic.t option) ->
  Transform.Cmt.t list ->
  (generated list, string) result
(** Generates one concrete aspect per applied transformation, in application
    order, resolving each concern's generic aspect through [lookup].
    Transformations whose concern has no registered generic aspect are
    reported as an error (a concern without code-level realization
    contradicts Fig. 1). *)
