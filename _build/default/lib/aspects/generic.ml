type t = {
  ga_name : string;
  concern : string;
  formals : Transform.Params.decl list;
  instantiate : Transform.Params.set -> Aspect.t;
}

let make ~name ~concern ~formals instantiate =
  { ga_name = name; concern; formals; instantiate }

let specialize t assignments =
  match Transform.Params.build t.formals assignments with
  | Ok set -> Ok (t.instantiate set)
  | Error problems -> Error problems

let specialize_with_set t set = t.instantiate set
