(** Generic aspects (the paper's GAC_i).

    A generic aspect declares the *same* formal parameters as its concern's
    generic model transformation and an instantiation function producing a
    concrete aspect from a parameter set. Fig. 1's central claim — "the set
    of parameters S_i, used to specialize the generic model transformation,
    could be used to specialize the corresponding generic aspect as well" —
    is this module: one {!Transform.Params.set} flows into both. *)

type t = {
  ga_name : string;
  concern : string;
  formals : Transform.Params.decl list;
  instantiate : Transform.Params.set -> Aspect.t;
}

val make :
  name:string ->
  concern:string ->
  formals:Transform.Params.decl list ->
  (Transform.Params.set -> Aspect.t) ->
  t

val specialize :
  t ->
  (string * Transform.Params.value) list ->
  (Aspect.t, Transform.Params.problem list) result
(** Validate a fresh assignment against the formals, then instantiate. *)

val specialize_with_set : t -> Transform.Params.set -> Aspect.t
(** Instantiate with an already-validated set — the normal path, where the
    set comes from the concern's concrete model transformation. *)
