type t = string

(* Greedy-free wildcard matching: '*' matches any substring. *)
let matches pattern name =
  let plen = String.length pattern and nlen = String.length name in
  (* dp.(i) = set of positions in [name] reachable after consuming the first
     [i] pattern characters; represented as a bool array. *)
  let current = Array.make (nlen + 1) false in
  current.(0) <- true;
  let step c =
    if c = '*' then begin
      (* '*' makes every position at or after the first reachable one
         reachable *)
      let reached = ref false in
      for j = 0 to nlen do
        if current.(j) then reached := true;
        current.(j) <- !reached
      done
    end
    else
      for j = nlen downto 0 do
        current.(j) <-
          (j > 0 && current.(j - 1) && name.[j - 1] = c)
      done
  in
  String.iter step pattern;
  ignore plen;
  current.(nlen)

let is_wildcard p = String.contains p '*'

type method_pattern = {
  mp_class : t;
  mp_method : t;
}

let method_pattern mp_class mp_method = { mp_class; mp_method }

let matches_method mp ~class_name ~method_name =
  matches mp.mp_class class_name && matches mp.mp_method method_name

let method_pattern_to_string mp = mp.mp_class ^ "." ^ mp.mp_method
