(** Wildcard name patterns of the pointcut language.

    A pattern is a name with [*] wildcards matching any (possibly empty)
    substring, as in AspectJ type and method patterns: ["Account"],
    ["set*"], ["*Proxy"], ["*"]. *)

type t = string

val matches : t -> string -> bool
(** [matches pattern name]. *)

val is_wildcard : t -> bool
(** Whether the pattern contains any [*]. *)

(** A method pattern: class pattern and method-name pattern, as written
    ["Account.set*"] in pointcut syntax. *)
type method_pattern = {
  mp_class : t;
  mp_method : t;
}

val method_pattern : string -> string -> method_pattern

val matches_method : method_pattern -> class_name:string -> method_name:string -> bool

val method_pattern_to_string : method_pattern -> string
(** ["Account.set*"]. *)
