type t =
  | Execution of Pattern.method_pattern
  | Call of Pattern.method_pattern
  | Set_field of Pattern.t * Pattern.t
  | Within of Pattern.t
  | And of t * t
  | Or of t * t
  | Not of t

let execution cls m = Execution (Pattern.method_pattern cls m)
let call cls m = Call (Pattern.method_pattern cls m)
let set_field cls f = Set_field (cls, f)
let within cls = Within cls
let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)
let not_ a = Not a

let rec to_string = function
  | Execution mp -> "execution(" ^ Pattern.method_pattern_to_string mp ^ ")"
  | Call mp -> "call(" ^ Pattern.method_pattern_to_string mp ^ ")"
  | Set_field (c, f) -> "set(" ^ c ^ "." ^ f ^ ")"
  | Within c -> "within(" ^ c ^ ")"
  | And (a, b) -> "(" ^ to_string a ^ " && " ^ to_string b ^ ")"
  | Or (a, b) -> "(" ^ to_string a ^ " || " ^ to_string b ^ ")"
  | Not a -> "!" ^ to_string a

let rec execution_patterns = function
  | Execution mp -> [ mp ]
  | Call _ | Set_field _ | Within _ -> []
  | And (a, b) | Or (a, b) -> execution_patterns a @ execution_patterns b
  | Not _ -> []
