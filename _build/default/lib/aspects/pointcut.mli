(** The pointcut language: predicates over join-point shadows.

    The join-point model (see {!Weaver.Joinpoint}) has three shadow kinds —
    method executions, method calls, and field assignments — matching the
    AspectJ constructs the paper's middleware concerns need. *)

type t =
  | Execution of Pattern.method_pattern  (** execution(C.m) *)
  | Call of Pattern.method_pattern  (** call(C.m) — C is the receiver's class *)
  | Set_field of Pattern.t * Pattern.t  (** set(C.f) *)
  | Within of Pattern.t  (** within(C) — shadow lexically inside class C *)
  | And of t * t
  | Or of t * t
  | Not of t

val execution : string -> string -> t
(** [execution "Account" "set*"]. *)

val call : string -> string -> t
val set_field : string -> string -> t
val within : string -> t

val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val not_ : t -> t

val to_string : t -> string
(** AspectJ-like rendering, e.g.
    ["execution(Account.set*) && !within(AccountProxy)"]. *)

val execution_patterns : t -> Pattern.method_pattern list
(** Every execution pattern mentioned positively (not under [Not]); used for
    cheap shadow pre-filtering. *)
