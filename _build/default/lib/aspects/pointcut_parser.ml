type state = {
  src : string;
  mutable pos : int;
}

exception Error of string * int

let error st fmt =
  Format.kasprintf (fun s -> raise (Error (s, st.pos))) fmt

let skip_spaces st =
  while
    st.pos < String.length st.src
    && (st.src.[st.pos] = ' ' || st.src.[st.pos] = '\t' || st.src.[st.pos] = '\n')
  do
    st.pos <- st.pos + 1
  done

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let eat st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else error st "expected %s" s

let is_pattern_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '*' || c = '$'

let parse_pattern st =
  skip_spaces st;
  let start = st.pos in
  while st.pos < String.length st.src && is_pattern_char st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then error st "expected a name pattern";
  String.sub st.src start (st.pos - start)

let parse_keyword st =
  skip_spaces st;
  let start = st.pos in
  while
    st.pos < String.length st.src
    && st.src.[st.pos] >= 'a'
    && st.src.[st.pos] <= 'z'
  do
    st.pos <- st.pos + 1
  done;
  String.sub st.src start (st.pos - start)

let rec parse_or st =
  let lhs = parse_and st in
  skip_spaces st;
  if looking_at st "||" then begin
    eat st "||";
    Pointcut.Or (lhs, parse_or st)
  end
  else lhs

and parse_and st =
  let lhs = parse_factor st in
  skip_spaces st;
  if looking_at st "&&" then begin
    eat st "&&";
    Pointcut.And (lhs, parse_and st)
  end
  else lhs

and parse_factor st =
  skip_spaces st;
  match peek st with
  | Some '!' ->
      eat st "!";
      Pointcut.Not (parse_factor st)
  | Some '(' ->
      eat st "(";
      let pc = parse_or st in
      skip_spaces st;
      eat st ")";
      pc
  | Some _ -> parse_primitive st
  | None -> error st "unexpected end of input"

and parse_primitive st =
  let keyword = parse_keyword st in
  skip_spaces st;
  eat st "(";
  let result =
    match keyword with
    | "within" -> Pointcut.Within (parse_pattern st)
    | "execution" | "call" | "set" -> (
        let cls = parse_pattern st in
        skip_spaces st;
        eat st ".";
        let member = parse_pattern st in
        match keyword with
        | "execution" -> Pointcut.execution cls member
        | "call" -> Pointcut.call cls member
        | _ -> Pointcut.set_field cls member)
    | "" -> error st "expected a pointcut keyword"
    | kw -> error st "unknown pointcut designator %s" kw
  in
  skip_spaces st;
  eat st ")";
  result

let parse src =
  let st = { src; pos = 0 } in
  match
    let pc = parse_or st in
    skip_spaces st;
    if st.pos < String.length src then error st "trailing input";
    pc
  with
  | pc -> Ok pc
  | exception Error (msg, pos) ->
      Stdlib.Error (Printf.sprintf "pointcut parse error at %d: %s" pos msg)

let parse_exn src =
  match parse src with Ok pc -> pc | Error msg -> invalid_arg msg
