(** Parser for the textual pointcut syntax produced by
    {!Pointcut.to_string} and accepted by tool front-ends:

    {v
    pointcut := term ( "||" term )*
    term     := factor ( "&&" factor )*
    factor   := "!" factor | "(" pointcut ")" | primitive
    primitive:= "execution" "(" CLASS "." METHOD ")"
              | "call"      "(" CLASS "." METHOD ")"
              | "set"       "(" CLASS "." FIELD ")"
              | "within"    "(" CLASS ")"
    v}

    Class/method/field positions are wildcard patterns ([*] allowed). *)

val parse : string -> (Pointcut.t, string) result
(** [parse src] is the pointcut denoted by [src], or a located error
    message. The round trip [parse (Pointcut.to_string pc)] re-reads any
    rendered pointcut. *)

val parse_exn : string -> Pointcut.t
(** @raise Invalid_argument on parse errors. *)
