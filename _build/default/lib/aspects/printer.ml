let advice_to_string (a : Advice.t) =
  let header =
    match a.Advice.time with
    | Advice.Before -> "before() : " ^ Pointcut.to_string a.Advice.pointcut
    | Advice.After -> "after() : " ^ Pointcut.to_string a.Advice.pointcut
    | Advice.After_returning ->
        "after() returning : " ^ Pointcut.to_string a.Advice.pointcut
    | Advice.Around -> "Object around() : " ^ Pointcut.to_string a.Advice.pointcut
  in
  String.concat "\n"
    (("  " ^ header ^ " {")
     :: List.map (Code.Printer.stmt_to_string ~indent:2) a.Advice.body
    @ [ "  }" ])

let intertype_to_string = function
  | Aspect.It_field (pattern, f) ->
      Printf.sprintf "  %s %s %s.%s;"
        (String.concat " "
           (List.map Code.Jdecl.modifier_to_string f.Code.Jdecl.field_mods))
        (Code.Jtype.to_string f.Code.Jdecl.field_type)
        pattern f.Code.Jdecl.field_name
  | Aspect.It_method (pattern, m) ->
      let rendered = Code.Printer.method_to_string ~indent:1 m in
      (* inject the target pattern into the signature: C.m(...) *)
      let marker = " " ^ m.Code.Jdecl.method_name ^ "(" in
      let replacement = " " ^ pattern ^ "." ^ m.Code.Jdecl.method_name ^ "(" in
      (match String.index_opt rendered '(' with
      | Some _ -> (
          let parts = String.split_on_char '\n' rendered in
          match parts with
          | first :: rest ->
              let patched =
                match String.length first with
                | _ -> (
                    match
                      (* replace the first occurrence of marker *)
                      let rec find i =
                        if i + String.length marker > String.length first then None
                        else if String.sub first i (String.length marker) = marker
                        then Some i
                        else find (i + 1)
                      in
                      find 0
                    with
                    | Some i ->
                        String.sub first 0 i ^ replacement
                        ^ String.sub first
                            (i + String.length marker)
                            (String.length first - i - String.length marker)
                    | None -> first)
              in
              String.concat "\n" (patched :: rest)
          | [] -> rendered)
      | None -> rendered)

let to_string (t : Aspect.t) =
  String.concat "\n"
    ([
       Printf.sprintf "// concern: %s" t.Aspect.concern;
       Printf.sprintf "public aspect %s {" t.Aspect.aspect_name;
     ]
    @ List.map intertype_to_string t.Aspect.intertypes
    @ (if t.Aspect.intertypes = [] then [] else [ "" ])
    @ List.concat_map (fun a -> [ advice_to_string a; "" ]) t.Aspect.advices
    @ [ "}" ])

let generated_to_string (g : Generator.generated) =
  Printf.sprintf "// generated from %s (precedence %d)\n%s"
    g.Generator.from_transformation g.Generator.seq (to_string g.Generator.aspect)
