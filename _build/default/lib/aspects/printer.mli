(** Rendering of aspects as AspectJ-like source text — what an aspect
    generator plug-in (paper, Section 3) would emit for the AspectJ
    platform. *)

val advice_to_string : Advice.t -> string

val to_string : Aspect.t -> string
(** A full [aspect N { … }] declaration with inter-type members and
    advice. *)

val generated_to_string : Generator.generated -> string
(** {!to_string} with a provenance header comment recording the source
    transformation and precedence. *)
