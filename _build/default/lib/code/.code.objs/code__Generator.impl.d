lib/code/generator.ml: Jdecl Jexpr Jstmt Jtype Junit List Mof Option String
