lib/code/generator.mli: Jstmt Jtype Junit Mof
