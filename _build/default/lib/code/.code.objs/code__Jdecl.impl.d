lib/code/jdecl.ml: Jexpr Jstmt Jtype List String
