lib/code/jdecl.mli: Jexpr Jstmt Jtype
