lib/code/jexpr.ml: Jtype List Option
