lib/code/jexpr.mli: Jtype
