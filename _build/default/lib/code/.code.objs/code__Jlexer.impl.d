lib/code/jlexer.ml: Buffer Format List String
