lib/code/jlexer.mli:
