lib/code/jparser.ml: Array Either Format Jdecl Jexpr Jlexer Jstmt Jtype Junit List Printf String
