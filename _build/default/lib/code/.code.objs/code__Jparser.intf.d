lib/code/jparser.mli: Jexpr Jstmt Junit
