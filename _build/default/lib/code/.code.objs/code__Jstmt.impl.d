lib/code/jstmt.ml: Jexpr Jtype List Option
