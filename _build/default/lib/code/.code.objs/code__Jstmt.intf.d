lib/code/jstmt.mli: Jexpr Jtype
