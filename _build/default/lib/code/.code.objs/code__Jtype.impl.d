lib/code/jtype.ml: Mof
