lib/code/jtype.mli: Mof
