lib/code/junit.ml: Jdecl List String
