lib/code/junit.mli: Jdecl
