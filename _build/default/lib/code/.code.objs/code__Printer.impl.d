lib/code/printer.ml: Buffer Float Jdecl Jexpr Jstmt Jtype Junit List Printf String
