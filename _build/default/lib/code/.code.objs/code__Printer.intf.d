lib/code/printer.mli: Jdecl Jexpr Jstmt Junit
