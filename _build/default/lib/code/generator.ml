type options = {
  accessors : bool;
  exclude_stereotypes : string list;
}

let default_options = { accessors = true; exclude_stereotypes = [] }

let capitalize = String.capitalize_ascii

let stub_body return_type =
  let todo = Jstmt.S_comment "TODO: implement" in
  match Jtype.default_value_text return_type with
  | None -> [ todo ]
  | Some "false" -> [ todo; Jstmt.S_return (Some (Jexpr.E_bool false)) ]
  | Some "0" -> [ todo; Jstmt.S_return (Some (Jexpr.E_int 0)) ]
  | Some "0.0" -> [ todo; Jstmt.S_return (Some (Jexpr.E_double 0.0)) ]
  | Some _ -> [ todo; Jstmt.S_return (Some Jexpr.E_null) ]

let visibility_modifier = function
  | Mof.Kind.Public -> Jdecl.M_public
  | Mof.Kind.Private -> Jdecl.M_private
  | Mof.Kind.Protected -> Jdecl.M_protected
  | Mof.Kind.Package_level -> Jdecl.M_public

let field_of_attribute m (a : Mof.Element.t) =
  match a.Mof.Element.kind with
  | Mof.Kind.Attribute k ->
      let base = Jtype.of_datatype m k.attr_type in
      let field_type =
        match k.attr_mult.Mof.Kind.upper with
        | Some u when u <= 1 -> base
        | Some _ | None -> Jtype.T_list base
      in
      let mods =
        [ visibility_modifier k.attr_visibility ]
        @ (if k.is_static then [ Jdecl.M_static ] else [])
      in
      Some
        {
          Jdecl.field_name = a.Mof.Element.name;
          field_type;
          field_mods = mods;
          field_init = None;
        }
  | _ -> None

let accessors_of_field (f : Jdecl.field) =
  let getter =
    {
      Jdecl.method_name = "get" ^ capitalize f.Jdecl.field_name;
      method_mods = [ Jdecl.M_public ];
      return_type = f.Jdecl.field_type;
      params = [];
      throws = [];
      body = Some [ Jstmt.S_return (Some (Jexpr.E_field (Jexpr.E_this, f.Jdecl.field_name))) ];
    }
  in
  let setter =
    {
      Jdecl.method_name = "set" ^ capitalize f.Jdecl.field_name;
      method_mods = [ Jdecl.M_public ];
      return_type = Jtype.T_void;
      params = [ { Jdecl.param_name = "value"; param_type = f.Jdecl.field_type } ];
      throws = [];
      body =
        Some
          [
            Jstmt.S_expr
              (Jexpr.E_assign
                 ( Jexpr.E_field (Jexpr.E_this, f.Jdecl.field_name),
                   Jexpr.E_name "value" ));
          ];
    }
  in
  [ getter; setter ]

let method_of_operation m ~stub (o : Mof.Element.t) =
  match o.Mof.Element.kind with
  | Mof.Kind.Operation k ->
      let return_type = Jtype.of_datatype m (Mof.Query.result_of m o.Mof.Element.id) in
      let params =
        List.map
          (fun (p : Mof.Element.t) ->
            match p.Mof.Element.kind with
            | Mof.Kind.Parameter pk ->
                {
                  Jdecl.param_name = p.Mof.Element.name;
                  param_type = Jtype.of_datatype m pk.param_type;
                }
            | _ -> assert false)
          (Mof.Query.parameters_of m o.Mof.Element.id)
      in
      let mods =
        [ visibility_modifier k.op_visibility ]
        @ (if k.is_static_op then [ Jdecl.M_static ] else [])
        @ if k.is_abstract_op then [ Jdecl.M_abstract ] else []
      in
      Some
        {
          Jdecl.method_name = o.Mof.Element.name;
          method_mods = mods;
          return_type;
          params;
          throws = [];
          body =
            (if stub && not k.is_abstract_op then Some (stub_body return_type)
             else None);
        }
  | _ -> None

(* Fields contributed to [cls] by navigable association ends: for each
   association touching the class, every *other* navigable end becomes a
   field named after the end's role. *)
let association_fields m (cls : Mof.Element.t) =
  List.concat_map
    (fun (assoc : Mof.Element.t) ->
      match assoc.Mof.Element.kind with
      | Mof.Kind.Association { ends } ->
          let touches =
            List.exists
              (fun (en : Mof.Kind.assoc_end) ->
                Mof.Id.equal en.end_type cls.Mof.Element.id)
              ends
          in
          if not touches then []
          else
            List.filter_map
              (fun (en : Mof.Kind.assoc_end) ->
                if
                  Mof.Id.equal en.end_type cls.Mof.Element.id
                  || not en.end_navigable
                then None
                else
                  let target =
                    match Mof.Model.find m en.end_type with
                    | Some t -> t.Mof.Element.name
                    | None -> "Unresolved"
                  in
                  let base = Jtype.T_named target in
                  let field_type =
                    match en.end_mult.Mof.Kind.upper with
                    | Some u when u <= 1 -> base
                    | Some _ | None -> Jtype.T_list base
                  in
                  Some
                    {
                      Jdecl.field_name = en.end_name;
                      field_type;
                      field_mods = [ Jdecl.M_private ];
                      field_init = None;
                    })
              ends
      | _ -> [])
    (Mof.Query.associations m)

let excluded options (e : Mof.Element.t) =
  List.exists (fun s -> Mof.Element.has_stereotype s e) options.exclude_stereotypes

let class_of m options (cls : Mof.Element.t) =
  match cls.Mof.Element.kind with
  | Mof.Kind.Class k ->
      let own_fields =
        List.filter_map (field_of_attribute m)
          (List.filter
             (fun a -> not (excluded options a))
             (Mof.Query.attributes_of m cls.Mof.Element.id))
      in
      let assoc_fields = association_fields m cls in
      let fields = own_fields @ assoc_fields in
      let accessor_methods =
        if options.accessors then List.concat_map accessors_of_field own_fields
        else []
      in
      let op_methods =
        List.filter_map
          (method_of_operation m ~stub:true)
          (List.filter
             (fun o -> not (excluded options o))
             (Mof.Query.operations_of m cls.Mof.Element.id))
      in
      let name_of id = (Mof.Model.find_exn m id).Mof.Element.name in
      Some
        {
          Jdecl.class_name = cls.Mof.Element.name;
          class_mods =
            (Jdecl.M_public :: (if k.is_abstract then [ Jdecl.M_abstract ] else []));
          extends = (match k.supers with [] -> None | s :: _ -> Some (name_of s));
          implements = List.map name_of k.realizes;
          fields;
          methods = accessor_methods @ op_methods;
        }
  | _ -> None

(* An enumeration maps to a final class of String constants — the closest
   the code model gets to a Java enum without a dedicated declaration
   form. *)
let enumeration_of (e : Mof.Element.t) =
  match e.Mof.Element.kind with
  | Mof.Kind.Enumeration { literals } ->
      Some
        {
          Jdecl.class_name = e.Mof.Element.name;
          class_mods = [ Jdecl.M_public; Jdecl.M_final ];
          extends = None;
          implements = [];
          fields =
            List.map
              (fun lit ->
                {
                  Jdecl.field_name = lit;
                  field_type = Jtype.T_string;
                  field_mods = [ Jdecl.M_public; Jdecl.M_static; Jdecl.M_final ];
                  field_init = Some (Jexpr.E_string lit);
                })
              literals;
          methods = [];
        }
  | _ -> None

let interface_of m options (iface : Mof.Element.t) =
  match iface.Mof.Element.kind with
  | Mof.Kind.Interface _ ->
      Some
        {
          Jdecl.iface_name = iface.Mof.Element.name;
          iface_extends = [];
          iface_methods =
            List.filter_map
              (method_of_operation m ~stub:false)
              (List.filter
                 (fun o -> not (excluded options o))
                 (Mof.Query.operations_of m iface.Mof.Element.id));
        }
  | _ -> None

let uses_list decls =
  let field_uses (f : Jdecl.field) =
    match f.Jdecl.field_type with Jtype.T_list _ -> true | _ -> false
  in
  let method_uses (mth : Jdecl.method_) =
    (match mth.Jdecl.return_type with Jtype.T_list _ -> true | _ -> false)
    || List.exists
         (fun p ->
           match p.Jdecl.param_type with Jtype.T_list _ -> true | _ -> false)
         mth.Jdecl.params
  in
  List.exists
    (function
      | Jdecl.Class c ->
          List.exists field_uses c.Jdecl.fields
          || List.exists method_uses c.Jdecl.methods
      | Jdecl.Interface i -> List.exists method_uses i.Jdecl.iface_methods)
    decls

let generate ?(options = default_options) m =
  let package_of (e : Mof.Element.t) =
    match e.Mof.Element.owner with
    | None -> Mof.Model.name m
    | Some owner ->
        if Mof.Id.equal owner (Mof.Model.root m) then Mof.Model.name m
        else Mof.Query.qualified_name m owner
  in
  let classifiers =
    List.filter
      (fun e -> not (excluded options e))
      (Mof.Query.classes m @ Mof.Query.interfaces m @ Mof.Query.enumerations m)
  in
  let packages =
    List.fold_left
      (fun acc e ->
        let pkg = package_of e in
        if List.mem_assoc pkg acc then
          List.map
            (fun (p, es) -> if String.equal p pkg then (p, es @ [ e ]) else (p, es))
            acc
        else acc @ [ (pkg, [ e ]) ])
      [] classifiers
  in
  List.map
    (fun (pkg, elems) ->
      let decls =
        List.filter_map
          (fun e ->
            match class_of m options e with
            | Some c -> Some (Jdecl.Class c)
            | None -> (
                match enumeration_of e with
                | Some c -> Some (Jdecl.Class c)
                | None ->
                    Option.map
                      (fun i -> Jdecl.Interface i)
                      (interface_of m options e)))
          elems
      in
      let imports = if uses_list decls then [ "java.util.List" ] else [] in
      Junit.unit_ ~imports ~package:pkg decls)
    packages
