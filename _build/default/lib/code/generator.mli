(** The functional code generator.

    This implements the paper's proposal to generate code for the *pure
    functional model* only, leaving every cross-cutting concern to aspect
    generators plus weaving: classes become Java-like classes with private
    fields, accessors, and operation stubs; interfaces map directly;
    generalizations and realizations become [extends]/[implements];
    navigable association ends become fields on the opposite participant.

    Elements the concern transformations introduced (anything carrying a
    concern stereotype listed in [exclude_stereotypes]) can be skipped so
    that the generator's input is exactly the functional slice — this is
    what the [ablation/monolithic] experiment toggles. *)

type options = {
  accessors : bool;  (** generate getters/setters for attributes *)
  exclude_stereotypes : string list;
      (** classifiers carrying any of these stereotypes are not generated *)
}

val default_options : options
(** Accessors on, nothing excluded. *)

val generate : ?options:options -> Mof.Model.t -> Junit.program
(** One compilation unit per package that owns at least one classifier; the
    package name is the package's qualified name (root package omitted, as
    in {!Mof.Query.qualified_name}). *)

val stub_body : Jtype.t -> Jstmt.t list
(** The body generated for an operation stub: a TODO comment and a default
    return. *)
