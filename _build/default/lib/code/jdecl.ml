type modifier =
  | M_public
  | M_private
  | M_protected
  | M_static
  | M_final
  | M_abstract
  | M_synchronized

let modifier_to_string = function
  | M_public -> "public"
  | M_private -> "private"
  | M_protected -> "protected"
  | M_static -> "static"
  | M_final -> "final"
  | M_abstract -> "abstract"
  | M_synchronized -> "synchronized"

type field = {
  field_name : string;
  field_type : Jtype.t;
  field_mods : modifier list;
  field_init : Jexpr.t option;
}

type param = {
  param_name : string;
  param_type : Jtype.t;
}

type method_ = {
  method_name : string;
  method_mods : modifier list;
  return_type : Jtype.t;
  params : param list;
  throws : string list;
  body : Jstmt.t list option;
}

type class_ = {
  class_name : string;
  class_mods : modifier list;
  extends : string option;
  implements : string list;
  fields : field list;
  methods : method_ list;
}

type interface_ = {
  iface_name : string;
  iface_extends : string list;
  iface_methods : method_ list;
}

type type_decl =
  | Class of class_
  | Interface of interface_

let type_decl_name = function
  | Class c -> c.class_name
  | Interface i -> i.iface_name

let find_method c name =
  List.find_opt (fun m -> String.equal m.method_name name) c.methods

let map_methods f c = { c with methods = List.map f c.methods }

let add_field field c =
  if List.exists (fun f -> String.equal f.field_name field.field_name) c.fields
  then c
  else { c with fields = c.fields @ [ field ] }

let add_method m c = { c with methods = c.methods @ [ m ] }

let equal_type_decl (a : type_decl) (b : type_decl) = a = b
