(** Declarations of the Java-like code model: fields, methods, classes, and
    interfaces. *)

type modifier =
  | M_public
  | M_private
  | M_protected
  | M_static
  | M_final
  | M_abstract
  | M_synchronized

val modifier_to_string : modifier -> string

type field = {
  field_name : string;
  field_type : Jtype.t;
  field_mods : modifier list;
  field_init : Jexpr.t option;
}

type param = {
  param_name : string;
  param_type : Jtype.t;
}

type method_ = {
  method_name : string;
  method_mods : modifier list;
  return_type : Jtype.t;
  params : param list;
  throws : string list;
  body : Jstmt.t list option;  (** [None] for abstract/interface methods *)
}

type class_ = {
  class_name : string;
  class_mods : modifier list;
  extends : string option;
  implements : string list;
  fields : field list;
  methods : method_ list;
}

type interface_ = {
  iface_name : string;
  iface_extends : string list;
  iface_methods : method_ list;  (** bodies are [None] *)
}

type type_decl =
  | Class of class_
  | Interface of interface_

val type_decl_name : type_decl -> string

val find_method : class_ -> string -> method_ option
(** First method with the given name. *)

val map_methods : (method_ -> method_) -> class_ -> class_
(** Rewrites every method of a class. *)

val add_field : field -> class_ -> class_
(** Appends a field unless one with the same name exists. *)

val add_method : method_ -> class_ -> class_
(** Appends a method (no signature-clash check: weaving inter-type methods
    with a colliding name is the aspect author's error and surfaces in the
    printed output). *)

val equal_type_decl : type_decl -> type_decl -> bool
