type t =
  | E_null
  | E_this
  | E_bool of bool
  | E_int of int
  | E_double of float
  | E_string of string
  | E_name of string
  | E_field of t * string
  | E_call of t option * string * t list
  | E_new of string * t list
  | E_binary of string * t * t
  | E_unary of string * t
  | E_assign of t * t
  | E_cast of Jtype.t * t
  | E_instanceof of t * string

let equal (a : t) (b : t) = a = b

let rec map_calls f e =
  let recurse = map_calls f in
  match e with
  | E_null | E_this | E_bool _ | E_int _ | E_double _ | E_string _ | E_name _ ->
      e
  | E_field (recv, name) -> E_field (recurse recv, name)
  | E_call (recv, name, args) ->
      f (Option.map recurse recv) name (List.map recurse args)
  | E_new (cls, args) -> E_new (cls, List.map recurse args)
  | E_binary (op, a, b) -> E_binary (op, recurse a, recurse b)
  | E_unary (op, a) -> E_unary (op, recurse a)
  | E_assign (lhs, rhs) -> E_assign (recurse lhs, recurse rhs)
  | E_cast (t, a) -> E_cast (t, recurse a)
  | E_instanceof (a, cls) -> E_instanceof (recurse a, cls)

let rec fold_calls f acc e =
  let recurse acc e = fold_calls f acc e in
  match e with
  | E_null | E_this | E_bool _ | E_int _ | E_double _ | E_string _ | E_name _ ->
      acc
  | E_field (recv, _) -> recurse acc recv
  | E_call (recv, name, args) ->
      let acc = match recv with Some r -> recurse acc r | None -> acc in
      let acc = List.fold_left recurse acc args in
      f acc (recv, name, args)
  | E_new (_, args) -> List.fold_left recurse acc args
  | E_binary (_, a, b) -> recurse (recurse acc a) b
  | E_unary (_, a) -> recurse acc a
  | E_assign (lhs, rhs) -> recurse (recurse acc lhs) rhs
  | E_cast (_, a) -> recurse acc a
  | E_instanceof (a, _) -> recurse acc a
