(** Expressions of the Java-like code model. *)

type t =
  | E_null
  | E_this
  | E_bool of bool
  | E_int of int
  | E_double of float
  | E_string of string  (** a string literal (unquoted contents) *)
  | E_name of string  (** local, parameter, or unqualified field *)
  | E_field of t * string  (** [recv.field] *)
  | E_call of t option * string * t list
      (** [recv.m(args)]; [None] receiver is an unqualified call *)
  | E_new of string * t list  (** [new C(args)] *)
  | E_binary of string * t * t  (** operator text, e.g. ["+"], ["&&"] *)
  | E_unary of string * t  (** prefix operator, e.g. ["!"] *)
  | E_assign of t * t
  | E_cast of Jtype.t * t
  | E_instanceof of t * string

val equal : t -> t -> bool

val map_calls : (t option -> string -> t list -> t) -> t -> t
(** [map_calls f e] rebuilds [e] bottom-up, replacing every call node
    [E_call (recv, name, args)] by [f recv name args] (the receiver and
    arguments are already rewritten). Used by the call-shadow weaver. *)

val fold_calls : ('a -> t option * string * t list -> 'a) -> 'a -> t -> 'a
(** Folds over every call node, outermost last. *)
