type token =
  | T_int of int
  | T_double of float
  | T_string of string
  | T_ident of string
  | T_comment of string
  | T_punct of string
  | T_eof

let token_text = function
  | T_int n -> string_of_int n
  | T_double f -> string_of_float f
  | T_string s -> "\"" ^ s ^ "\""
  | T_ident s -> s
  | T_comment s -> "// " ^ s
  | T_punct p -> p
  | T_eof -> "<eof>"

type located = {
  token : token;
  pos : int;
}

exception Lex_error of string * int

let error pos fmt = Format.kasprintf (fun s -> raise (Lex_error (s, pos))) fmt

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || is_digit c

let two_char_puncts = [ "=="; "!="; "<="; ">="; "&&"; "||" ]

let tokenize src =
  let len = String.length src in
  let out = ref [] in
  let emit pos token = out := { token; pos } :: !out in
  let rec scan i =
    if i >= len then emit i T_eof
    else
      let c = src.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then scan (i + 1)
      else if c = '/' && i + 1 < len && src.[i + 1] = '/' then begin
        let stop =
          match String.index_from_opt src i '\n' with
          | Some j -> j
          | None -> len
        in
        emit i (T_comment (String.trim (String.sub src (i + 2) (stop - i - 2))));
        scan stop
      end
      else if is_digit c then scan_number i
      else if is_ident_start c then scan_ident i
      else if c = '"' then scan_string i
      else begin
        let two =
          if i + 1 < len then
            let candidate = String.sub src i 2 in
            if List.mem candidate two_char_puncts then Some candidate else None
          else None
        in
        match two with
        | Some p ->
            emit i (T_punct p);
            scan (i + 2)
        | None -> (
            match c with
            | ';' | ',' | '.' | '(' | ')' | '{' | '}' | '<' | '>' | '=' | '!'
            | '+' | '-' | '*' | '/' ->
                emit i (T_punct (String.make 1 c));
                scan (i + 1)
            | c -> error i "unexpected character %C" c)
      end
  and scan_number start =
    let rec digits j = if j < len && is_digit src.[j] then digits (j + 1) else j in
    let int_end = digits start in
    if int_end + 1 < len && src.[int_end] = '.' && is_digit src.[int_end + 1]
    then begin
      let frac_end = digits (int_end + 1) in
      (* optional exponent *)
      let stop =
        if
          frac_end < len
          && (src.[frac_end] = 'e' || src.[frac_end] = 'E')
          && frac_end + 1 < len
        then
          let exp_start =
            if src.[frac_end + 1] = '+' || src.[frac_end + 1] = '-' then
              frac_end + 2
            else frac_end + 1
          in
          digits exp_start
        else frac_end
      in
      let text = String.sub src start (stop - start) in
      match float_of_string_opt text with
      | Some f ->
          emit start (T_double f);
          scan stop
      | None -> error start "malformed double %s" text
    end
    else begin
      let text = String.sub src start (int_end - start) in
      match int_of_string_opt text with
      | Some n ->
          emit start (T_int n);
          scan int_end
      | None -> error start "malformed integer %s" text
    end
  and scan_ident start =
    let rec walk j = if j < len && is_ident_char src.[j] then walk (j + 1) else j in
    let stop = walk start in
    emit start (T_ident (String.sub src start (stop - start)));
    scan stop
  and scan_string start =
    let buf = Buffer.create 16 in
    let rec walk j =
      if j >= len then error start "unterminated string literal"
      else
        match src.[j] with
        | '"' ->
            emit start (T_string (Buffer.contents buf));
            scan (j + 1)
        | '\\' ->
            if j + 1 >= len then error j "dangling escape"
            else begin
              (match src.[j + 1] with
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | c -> error j "unknown escape \\%c" c);
              walk (j + 2)
            end
        | c ->
            Buffer.add_char buf c;
            walk (j + 1)
    in
    walk (start + 1)
  in
  scan 0;
  List.rev !out
