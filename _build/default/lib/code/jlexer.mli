(** Lexer for the Java-like source subset that {!Printer} emits. *)

type token =
  | T_int of int
  | T_double of float
  | T_string of string  (** contents, unescaped *)
  | T_ident of string  (** identifiers and keywords *)
  | T_comment of string  (** a [//] line comment's text, trimmed *)
  | T_punct of string
      (** one of [; , . ( ) { } < > = ! & | + - * / == != <= >= && ||] *)
  | T_eof

val token_text : token -> string

type located = {
  token : token;
  pos : int;
}

exception Lex_error of string * int

val tokenize : string -> located list
(** Comments are kept as tokens (the statement parser turns them into
    {!Jstmt.S_comment}); whitespace separates. *)
