exception Parse_error of string * int

type state = {
  toks : Jlexer.located array;
  mutable cur : int;
}

let peek st = st.toks.(st.cur).Jlexer.token
let pos st = st.toks.(st.cur).Jlexer.pos
let advance st = st.cur <- st.cur + 1

let error st fmt =
  let p = pos st in
  Format.kasprintf (fun s -> raise (Parse_error (s, p))) fmt

let eat_punct st p =
  match peek st with
  | Jlexer.T_punct q when String.equal p q -> advance st
  | t -> error st "expected %s, found %s" p (Jlexer.token_text t)

let eat_keyword st kw =
  match peek st with
  | Jlexer.T_ident id when String.equal id kw -> advance st
  | t -> error st "expected %s, found %s" kw (Jlexer.token_text t)

let next_is_punct st p =
  match peek st with Jlexer.T_punct q -> String.equal p q | _ -> false

let next_is_keyword st kw =
  match peek st with Jlexer.T_ident id -> String.equal id kw | _ -> false

let expect_ident st =
  match peek st with
  | Jlexer.T_ident id ->
      advance st;
      id
  | t -> error st "expected an identifier, found %s" (Jlexer.token_text t)

let skip_comments st =
  while match peek st with Jlexer.T_comment _ -> true | _ -> false do
    advance st
  done

(* ---- types ----------------------------------------------------------- *)

let rec parse_type st =
  match peek st with
  | Jlexer.T_ident "void" ->
      advance st;
      Jtype.T_void
  | Jlexer.T_ident "boolean" ->
      advance st;
      Jtype.T_boolean
  | Jlexer.T_ident "int" ->
      advance st;
      Jtype.T_int
  | Jlexer.T_ident "double" ->
      advance st;
      Jtype.T_double
  | Jlexer.T_ident "String" ->
      advance st;
      Jtype.T_string
  | Jlexer.T_ident "List" ->
      advance st;
      eat_punct st "<";
      let inner = parse_type st in
      eat_punct st ">";
      Jtype.T_list inner
  | Jlexer.T_ident name ->
      advance st;
      Jtype.T_named name
  | t -> error st "expected a type, found %s" (Jlexer.token_text t)

(* ---- expressions ------------------------------------------------------ *)

let reserved_expr_keywords =
  [ "new"; "this"; "null"; "true"; "false"; "instanceof" ]

let starts_unary st =
  match peek st with
  | Jlexer.T_int _ | Jlexer.T_double _ | Jlexer.T_string _ -> true
  | Jlexer.T_punct ("(" | "!" | "-") -> true
  | Jlexer.T_ident id -> not (List.mem id [ "instanceof" ])
  | _ -> false

let rec parse_expr st = parse_assign st

and parse_assign st =
  let lhs = parse_or st in
  if next_is_punct st "=" then begin
    advance st;
    Jexpr.E_assign (lhs, parse_assign st)
  end
  else lhs

and parse_or st =
  let rec loop lhs =
    if next_is_punct st "||" then begin
      advance st;
      loop (Jexpr.E_binary ("||", lhs, parse_and st))
    end
    else lhs
  in
  loop (parse_and st)

and parse_and st =
  let rec loop lhs =
    if next_is_punct st "&&" then begin
      advance st;
      loop (Jexpr.E_binary ("&&", lhs, parse_eq st))
    end
    else lhs
  in
  loop (parse_eq st)

and parse_eq st =
  let rec loop lhs =
    match peek st with
    | Jlexer.T_punct (("==" | "!=") as op) ->
        advance st;
        loop (Jexpr.E_binary (op, lhs, parse_rel st))
    | _ -> lhs
  in
  loop (parse_rel st)

and parse_rel st =
  let rec loop lhs =
    match peek st with
    | Jlexer.T_punct (("<" | ">" | "<=" | ">=") as op) ->
        advance st;
        loop (Jexpr.E_binary (op, lhs, parse_add st))
    | Jlexer.T_ident "instanceof" ->
        advance st;
        loop (Jexpr.E_instanceof (lhs, expect_ident st))
    | _ -> lhs
  in
  loop (parse_add st)

and parse_add st =
  let rec loop lhs =
    match peek st with
    | Jlexer.T_punct (("+" | "-") as op) ->
        advance st;
        loop (Jexpr.E_binary (op, lhs, parse_mul st))
    | _ -> lhs
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop lhs =
    match peek st with
    | Jlexer.T_punct (("*" | "/") as op) ->
        advance st;
        loop (Jexpr.E_binary (op, lhs, parse_unary st))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Jlexer.T_punct "!" ->
      advance st;
      Jexpr.E_unary ("!", parse_unary st)
  | Jlexer.T_punct "-" ->
      advance st;
      Jexpr.E_unary ("-", parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec loop recv =
    if next_is_punct st "." then begin
      advance st;
      let name = expect_ident st in
      if next_is_punct st "(" then begin
        advance st;
        let args = parse_args st in
        eat_punct st ")";
        loop (Jexpr.E_call (Some recv, name, args))
      end
      else loop (Jexpr.E_field (recv, name))
    end
    else recv
  in
  loop (parse_primary st)

and parse_args st =
  if next_is_punct st ")" then []
  else
    let rec loop acc =
      let e = parse_expr st in
      if next_is_punct st "," then begin
        advance st;
        loop (e :: acc)
      end
      else List.rev (e :: acc)
    in
    loop []

and parse_primary st =
  match peek st with
  | Jlexer.T_int n ->
      advance st;
      Jexpr.E_int n
  | Jlexer.T_double f ->
      advance st;
      Jexpr.E_double f
  | Jlexer.T_string s ->
      advance st;
      Jexpr.E_string s
  | Jlexer.T_ident "true" ->
      advance st;
      Jexpr.E_bool true
  | Jlexer.T_ident "false" ->
      advance st;
      Jexpr.E_bool false
  | Jlexer.T_ident "null" ->
      advance st;
      Jexpr.E_null
  | Jlexer.T_ident "this" ->
      advance st;
      Jexpr.E_this
  | Jlexer.T_ident "new" ->
      advance st;
      let cls = expect_ident st in
      eat_punct st "(";
      let args = parse_args st in
      eat_punct st ")";
      Jexpr.E_new (cls, args)
  | Jlexer.T_ident id when not (List.mem id reserved_expr_keywords) ->
      advance st;
      if next_is_punct st "(" then begin
        advance st;
        let args = parse_args st in
        eat_punct st ")";
        Jexpr.E_call (None, id, args)
      end
      else Jexpr.E_name id
  | Jlexer.T_punct "(" -> (
      advance st;
      (* cast or parenthesized expression: attempt a cast with backtracking *)
      let snapshot = st.cur in
      let cast =
        match parse_type st with
        | t ->
            if next_is_punct st ")" then begin
              advance st;
              if starts_unary st then Some (Jexpr.E_cast (t, parse_unary st))
              else None
            end
            else None
        | exception Parse_error _ -> None
      in
      match cast with
      | Some e -> e
      | None ->
          st.cur <- snapshot;
          let e = parse_expr st in
          eat_punct st ")";
          e)
  | t -> error st "unexpected %s in expression" (Jlexer.token_text t)

(* ---- statements -------------------------------------------------------- *)

let rec parse_block st =
  eat_punct st "{";
  let rec loop acc =
    if next_is_punct st "}" then begin
      advance st;
      List.rev acc
    end
    else loop (parse_stmt_in st :: acc)
  in
  loop []

and parse_stmt_in st =
  match peek st with
  | Jlexer.T_comment text ->
      advance st;
      Jstmt.S_comment text
  | Jlexer.T_punct "{" -> Jstmt.S_block (parse_block st)
  | Jlexer.T_ident "return" ->
      advance st;
      if next_is_punct st ";" then begin
        advance st;
        Jstmt.S_return None
      end
      else begin
        let e = parse_expr st in
        eat_punct st ";";
        Jstmt.S_return (Some e)
      end
  | Jlexer.T_ident "if" ->
      advance st;
      eat_punct st "(";
      let cond = parse_expr st in
      eat_punct st ")";
      let then_ = parse_block st in
      let else_ =
        if next_is_keyword st "else" then begin
          advance st;
          parse_block st
        end
        else []
      in
      Jstmt.S_if (cond, then_, else_)
  | Jlexer.T_ident "while" ->
      advance st;
      eat_punct st "(";
      let cond = parse_expr st in
      eat_punct st ")";
      Jstmt.S_while (cond, parse_block st)
  | Jlexer.T_ident "throw" ->
      advance st;
      let e = parse_expr st in
      eat_punct st ";";
      Jstmt.S_throw e
  | Jlexer.T_ident "try" ->
      advance st;
      let body = parse_block st in
      let rec catches acc =
        if next_is_keyword st "catch" then begin
          advance st;
          eat_punct st "(";
          let t = parse_type st in
          let name = expect_ident st in
          eat_punct st ")";
          let handler = parse_block st in
          catches ((t, name, handler) :: acc)
        end
        else List.rev acc
      in
      let catch_clauses = catches [] in
      let finally =
        if next_is_keyword st "finally" then begin
          advance st;
          parse_block st
        end
        else []
      in
      Jstmt.S_try (body, catch_clauses, finally)
  | Jlexer.T_ident "synchronized" ->
      advance st;
      eat_punct st "(";
      let lock = parse_expr st in
      eat_punct st ")";
      Jstmt.S_sync (lock, parse_block st)
  | _ -> (
      (* local declaration vs expression statement: backtrack *)
      let snapshot = st.cur in
      let local =
        match parse_type st with
        | t -> (
            match peek st with
            | Jlexer.T_ident name
              when not (List.mem name reserved_expr_keywords) -> (
                advance st;
                match peek st with
                | Jlexer.T_punct "=" ->
                    advance st;
                    let init = parse_expr st in
                    eat_punct st ";";
                    Some (Jstmt.S_local (t, name, Some init))
                | Jlexer.T_punct ";" ->
                    advance st;
                    Some (Jstmt.S_local (t, name, None))
                | _ -> None)
            | _ -> None)
        | exception Parse_error _ -> None
      in
      match local with
      | Some stmt -> stmt
      | None ->
          st.cur <- snapshot;
          let e = parse_expr st in
          eat_punct st ";";
          Jstmt.S_expr e)

(* ---- declarations ------------------------------------------------------- *)

let modifier_keywords =
  [
    ("public", Jdecl.M_public);
    ("private", Jdecl.M_private);
    ("protected", Jdecl.M_protected);
    ("static", Jdecl.M_static);
    ("final", Jdecl.M_final);
    ("abstract", Jdecl.M_abstract);
    ("synchronized", Jdecl.M_synchronized);
  ]

let parse_modifiers st =
  let rec loop acc =
    match peek st with
    | Jlexer.T_ident id when List.mem_assoc id modifier_keywords ->
        (* "synchronized (" begins a statement, not a modifier; callers only
           use parse_modifiers in declaration position so this is safe *)
        advance st;
        loop (List.assoc id modifier_keywords :: acc)
    | _ -> List.rev acc
  in
  loop []

let parse_params st =
  eat_punct st "(";
  if next_is_punct st ")" then begin
    advance st;
    []
  end
  else begin
    let rec loop acc =
      let t = parse_type st in
      let name = expect_ident st in
      let param = { Jdecl.param_name = name; param_type = t } in
      if next_is_punct st "," then begin
        advance st;
        loop (param :: acc)
      end
      else begin
        eat_punct st ")";
        List.rev (param :: acc)
      end
    in
    loop []
  end

let parse_throws st =
  if next_is_keyword st "throws" then begin
    advance st;
    let rec loop acc =
      let name = expect_ident st in
      if next_is_punct st "," then begin
        advance st;
        loop (name :: acc)
      end
      else List.rev (name :: acc)
    in
    loop []
  end
  else []

let parse_member st =
  skip_comments st;
  let mods = parse_modifiers st in
  let t = parse_type st in
  let name = expect_ident st in
  if next_is_punct st "(" then begin
    let params = parse_params st in
    let throws = parse_throws st in
    let body =
      if next_is_punct st ";" then begin
        advance st;
        None
      end
      else Some (parse_block st)
    in
    Either.Right
      {
        Jdecl.method_name = name;
        method_mods = mods;
        return_type = t;
        params;
        throws;
        body;
      }
  end
  else begin
    let init =
      if next_is_punct st "=" then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    eat_punct st ";";
    Either.Left
      { Jdecl.field_name = name; field_type = t; field_mods = mods; field_init = init }
  end

let parse_name_list st =
  let rec loop acc =
    let name = expect_ident st in
    if next_is_punct st "," then begin
      advance st;
      loop (name :: acc)
    end
    else List.rev (name :: acc)
  in
  loop []

let parse_class_rest st mods =
  let name = expect_ident st in
  let extends =
    if next_is_keyword st "extends" then begin
      advance st;
      Some (expect_ident st)
    end
    else None
  in
  let implements =
    if next_is_keyword st "implements" then begin
      advance st;
      parse_name_list st
    end
    else []
  in
  eat_punct st "{";
  let rec members fields methods =
    skip_comments st;
    if next_is_punct st "}" then begin
      advance st;
      (List.rev fields, List.rev methods)
    end
    else
      match parse_member st with
      | Either.Left f -> members (f :: fields) methods
      | Either.Right m -> members fields (m :: methods)
  in
  let fields, methods = members [] [] in
  Jdecl.Class
    { Jdecl.class_name = name; class_mods = mods; extends; implements; fields; methods }

let parse_interface_rest st =
  let name = expect_ident st in
  let extends =
    if next_is_keyword st "extends" then begin
      advance st;
      parse_name_list st
    end
    else []
  in
  eat_punct st "{";
  let rec members acc =
    skip_comments st;
    if next_is_punct st "}" then begin
      advance st;
      List.rev acc
    end
    else
      match parse_member st with
      | Either.Right m -> members (m :: acc)
      | Either.Left _ -> error st "interfaces cannot declare fields here"
  in
  let methods = members [] in
  Jdecl.Interface { Jdecl.iface_name = name; iface_extends = extends; iface_methods = methods }

let parse_type_decl st =
  skip_comments st;
  let mods = parse_modifiers st in
  if next_is_keyword st "class" then begin
    advance st;
    parse_class_rest st mods
  end
  else if next_is_keyword st "interface" then begin
    advance st;
    parse_interface_rest st
  end
  else error st "expected class or interface"

let parse_qname st =
  let rec loop acc =
    let part = expect_ident st in
    if next_is_punct st "." then begin
      advance st;
      loop (part :: acc)
    end
    else String.concat "." (List.rev (part :: acc))
  in
  loop []

let parse_unit_tokens st =
  skip_comments st;
  eat_keyword st "package";
  let package = parse_qname st in
  eat_punct st ";";
  let rec imports acc =
    skip_comments st;
    if next_is_keyword st "import" then begin
      advance st;
      let name = parse_qname st in
      eat_punct st ";";
      imports (name :: acc)
    end
    else List.rev acc
  in
  let imports = imports [] in
  let rec decls acc =
    skip_comments st;
    if peek st = Jlexer.T_eof then List.rev acc
    else decls (parse_type_decl st :: acc)
  in
  Junit.unit_ ~imports ~package (decls [])

let make_state src = { toks = Array.of_list (Jlexer.tokenize src); cur = 0 }

let parse_unit src = parse_unit_tokens (make_state src)

let parse_unit_opt src =
  match parse_unit src with
  | u -> Ok u
  | exception Parse_error (msg, p) ->
      Error (Printf.sprintf "parse error at offset %d: %s" p msg)
  | exception Jlexer.Lex_error (msg, p) ->
      Error (Printf.sprintf "lexical error at offset %d: %s" p msg)

let parse_expr src =
  let st = make_state src in
  let e = parse_expr st in
  if peek st <> Jlexer.T_eof then error st "trailing input";
  e

let parse_stmt src =
  let st = make_state src in
  let s = parse_stmt_in st in
  if peek st <> Jlexer.T_eof then error st "trailing input";
  s
