(** Parser for the Java-like source subset emitted by {!Printer}.

    The subset covers everything the code model can express — compilation
    units, classes/interfaces, fields, methods, the statement forms of
    {!Jstmt}, and the expression forms of {!Jexpr} — so that
    [parse_unit (Printer.unit_to_string u)] reconstructs [u] exactly (the
    round-trip property the test suite enforces). Line comments become
    {!Jstmt.S_comment} inside method bodies and are skipped elsewhere. *)

exception Parse_error of string * int

val parse_unit : string -> Junit.t
(** Parses one compilation unit.
    @raise Parse_error / {!Jlexer.Lex_error} on malformed input. *)

val parse_unit_opt : string -> (Junit.t, string) result

val parse_expr : string -> Jexpr.t
(** Parses a standalone expression (for tests and tooling). *)

val parse_stmt : string -> Jstmt.t
(** Parses a standalone statement. *)
