type t =
  | S_expr of Jexpr.t
  | S_local of Jtype.t * string * Jexpr.t option
  | S_return of Jexpr.t option
  | S_if of Jexpr.t * t list * t list
  | S_while of Jexpr.t * t list
  | S_throw of Jexpr.t
  | S_try of t list * (Jtype.t * string * t list) list * t list
  | S_sync of Jexpr.t * t list
  | S_comment of string
  | S_block of t list

let equal (a : t) (b : t) = a = b

let rec map_expr f stmt =
  let body = List.map (map_expr f) in
  match stmt with
  | S_expr e -> S_expr (f e)
  | S_local (t, name, init) -> S_local (t, name, Option.map f init)
  | S_return e -> S_return (Option.map f e)
  | S_if (cond, then_, else_) -> S_if (f cond, body then_, body else_)
  | S_while (cond, loop) -> S_while (f cond, body loop)
  | S_throw e -> S_throw (f e)
  | S_try (block, catches, finally) ->
      S_try
        ( body block,
          List.map (fun (t, name, stmts) -> (t, name, body stmts)) catches,
          body finally )
  | S_sync (e, block) -> S_sync (f e, body block)
  | S_comment _ -> stmt
  | S_block stmts -> S_block (body stmts)

let rec fold_expr f acc stmt =
  let fold_body acc stmts = List.fold_left (fold_expr f) acc stmts in
  match stmt with
  | S_expr e -> f acc e
  | S_local (_, _, init) -> Option.fold ~none:acc ~some:(f acc) init
  | S_return e -> Option.fold ~none:acc ~some:(f acc) e
  | S_if (cond, then_, else_) -> fold_body (fold_body (f acc cond) then_) else_
  | S_while (cond, loop) -> fold_body (f acc cond) loop
  | S_throw e -> f acc e
  | S_try (block, catches, finally) ->
      let acc = fold_body acc block in
      let acc =
        List.fold_left (fun acc (_, _, stmts) -> fold_body acc stmts) acc catches
      in
      fold_body acc finally
  | S_sync (e, block) -> fold_body (f acc e) block
  | S_comment _ -> acc
  | S_block stmts -> fold_body acc stmts
