(** Statements of the Java-like code model. *)

type t =
  | S_expr of Jexpr.t
  | S_local of Jtype.t * string * Jexpr.t option
      (** local variable declaration with optional initializer *)
  | S_return of Jexpr.t option
  | S_if of Jexpr.t * t list * t list  (** else branch may be empty *)
  | S_while of Jexpr.t * t list
  | S_throw of Jexpr.t
  | S_try of t list * (Jtype.t * string * t list) list * t list
      (** try / catch clauses / finally (may be empty) *)
  | S_sync of Jexpr.t * t list  (** synchronized (e) { … } *)
  | S_comment of string  (** a line comment, kept in the tree *)
  | S_block of t list

val equal : t -> t -> bool

val map_expr : (Jexpr.t -> Jexpr.t) -> t -> t
(** Rewrites every expression in the statement, recursively. *)

val fold_expr : ('a -> Jexpr.t -> 'a) -> 'a -> t -> 'a
(** Folds over every top-level expression position in the statement tree
    (initializers, conditions, returns, …), recursively through nested
    statements. *)
