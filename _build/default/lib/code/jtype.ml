type t =
  | T_void
  | T_boolean
  | T_int
  | T_double
  | T_string
  | T_named of string
  | T_list of t

let rec to_string = function
  | T_void -> "void"
  | T_boolean -> "boolean"
  | T_int -> "int"
  | T_double -> "double"
  | T_string -> "String"
  | T_named n -> n
  | T_list t -> "List<" ^ to_string t ^ ">"

let default_value_text = function
  | T_void -> None
  | T_boolean -> Some "false"
  | T_int -> Some "0"
  | T_double -> Some "0.0"
  | T_string | T_named _ | T_list _ -> Some "null"

let rec of_datatype m = function
  | Mof.Kind.Dt_void -> T_void
  | Mof.Kind.Dt_boolean -> T_boolean
  | Mof.Kind.Dt_integer -> T_int
  | Mof.Kind.Dt_real -> T_double
  | Mof.Kind.Dt_string -> T_string
  | Mof.Kind.Dt_ref id -> (
      match Mof.Model.find m id with
      | Some e -> T_named e.Mof.Element.name
      | None -> T_named ("Unresolved_" ^ Mof.Id.to_string id))
  | Mof.Kind.Dt_collection inner -> T_list (of_datatype m inner)

let equal (a : t) (b : t) = a = b
