(** Types of the Java-like code model. *)

type t =
  | T_void
  | T_boolean
  | T_int
  | T_double
  | T_string  (** java.lang.String *)
  | T_named of string  (** a class or interface by simple name *)
  | T_list of t  (** java.util.List<t> *)

val to_string : t -> string
(** Java surface syntax, e.g. ["List<Account>"]. *)

val default_value_text : t -> string option
(** The literal a generated stub returns: ["0"], ["false"], ["null"], …;
    [None] for [T_void]. *)

val of_datatype : Mof.Model.t -> Mof.Kind.datatype -> t
(** Maps a model datatype: [Real] to [double], [Dt_ref c] to the
    classifier's name, collections to [List<…>]. *)

val equal : t -> t -> bool
