type t = {
  package : string;
  imports : string list;
  decls : Jdecl.type_decl list;
}

type program = t list

let unit_ ?(imports = []) ~package decls = { package; imports; decls }

let classes program =
  List.concat_map
    (fun u ->
      List.filter_map
        (function Jdecl.Class c -> Some c | Jdecl.Interface _ -> None)
        u.decls)
    program

let interfaces program =
  List.concat_map
    (fun u ->
      List.filter_map
        (function Jdecl.Interface i -> Some i | Jdecl.Class _ -> None)
        u.decls)
    program

let find_class program name =
  List.find_opt (fun c -> String.equal c.Jdecl.class_name name) (classes program)

let find_interface program name =
  List.find_opt
    (fun i -> String.equal i.Jdecl.iface_name name)
    (interfaces program)

let update_class program name f =
  List.map
    (fun u ->
      {
        u with
        decls =
          List.map
            (fun d ->
              match d with
              | Jdecl.Class c when String.equal c.Jdecl.class_name name ->
                  Jdecl.Class (f c)
              | Jdecl.Class _ | Jdecl.Interface _ -> d)
            u.decls;
      })
    program

let map_classes f program =
  List.map
    (fun u ->
      {
        u with
        decls =
          List.map
            (fun d ->
              match d with
              | Jdecl.Class c -> Jdecl.Class (f c)
              | Jdecl.Interface _ -> d)
            u.decls;
      })
    program

let total_methods program =
  List.fold_left
    (fun acc c -> acc + List.length c.Jdecl.methods)
    (List.fold_left
       (fun acc i -> acc + List.length i.Jdecl.iface_methods)
       0 (interfaces program))
    (classes program)

let equal (a : program) (b : program) = a = b
