(** Compilation units and programs (sets of units). *)

type t = {
  package : string;
  imports : string list;
  decls : Jdecl.type_decl list;
}

type program = t list

val unit_ : ?imports:string list -> package:string -> Jdecl.type_decl list -> t

val find_class : program -> string -> Jdecl.class_ option
(** First class with the given simple name, across all units. *)

val find_interface : program -> string -> Jdecl.interface_ option

val classes : program -> Jdecl.class_ list
val interfaces : program -> Jdecl.interface_ list

val update_class : program -> string -> (Jdecl.class_ -> Jdecl.class_) -> program
(** Rewrites the named class wherever it appears (identity if absent). *)

val map_classes : (Jdecl.class_ -> Jdecl.class_) -> program -> program

val total_methods : program -> int
(** Number of method declarations, a cheap size metric for reports. *)

val equal : program -> program -> bool
