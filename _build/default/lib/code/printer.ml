let escape_string s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec expr_to_string e =
  let args_to_string args = String.concat ", " (List.map expr_to_string args) in
  match e with
  | Jexpr.E_null -> "null"
  | Jexpr.E_this -> "this"
  | Jexpr.E_bool b -> string_of_bool b
  | Jexpr.E_int n -> string_of_int n
  | Jexpr.E_double f ->
      (* keep a decimal point so the literal re-reads as a double *)
      if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
      else Printf.sprintf "%g" f
  | Jexpr.E_string s -> "\"" ^ escape_string s ^ "\""
  | Jexpr.E_name n -> n
  | Jexpr.E_field (recv, f) -> expr_to_string recv ^ "." ^ f
  | Jexpr.E_call (None, m, args) -> m ^ "(" ^ args_to_string args ^ ")"
  | Jexpr.E_call (Some recv, m, args) ->
      expr_to_string recv ^ "." ^ m ^ "(" ^ args_to_string args ^ ")"
  | Jexpr.E_new (cls, args) -> "new " ^ cls ^ "(" ^ args_to_string args ^ ")"
  | Jexpr.E_binary (op, a, b) ->
      "(" ^ expr_to_string a ^ " " ^ op ^ " " ^ expr_to_string b ^ ")"
  | Jexpr.E_unary (op, a) -> op ^ expr_to_string a
  | Jexpr.E_assign (lhs, rhs) -> expr_to_string lhs ^ " = " ^ expr_to_string rhs
  | Jexpr.E_cast (t, a) -> "((" ^ Jtype.to_string t ^ ") " ^ expr_to_string a ^ ")"
  | Jexpr.E_instanceof (a, cls) -> "(" ^ expr_to_string a ^ " instanceof " ^ cls ^ ")"

let rec stmt_lines depth stmt =
  let pad = String.make (depth * 2) ' ' in
  let block stmts = List.concat_map (stmt_lines (depth + 1)) stmts in
  match stmt with
  | Jstmt.S_expr e -> [ pad ^ expr_to_string e ^ ";" ]
  | Jstmt.S_local (t, name, None) ->
      [ pad ^ Jtype.to_string t ^ " " ^ name ^ ";" ]
  | Jstmt.S_local (t, name, Some init) ->
      [ pad ^ Jtype.to_string t ^ " " ^ name ^ " = " ^ expr_to_string init ^ ";" ]
  | Jstmt.S_return None -> [ pad ^ "return;" ]
  | Jstmt.S_return (Some e) -> [ pad ^ "return " ^ expr_to_string e ^ ";" ]
  | Jstmt.S_if (cond, then_, []) ->
      [ pad ^ "if (" ^ expr_to_string cond ^ ") {" ]
      @ block then_ @ [ pad ^ "}" ]
  | Jstmt.S_if (cond, then_, else_) ->
      [ pad ^ "if (" ^ expr_to_string cond ^ ") {" ]
      @ block then_
      @ [ pad ^ "} else {" ]
      @ block else_ @ [ pad ^ "}" ]
  | Jstmt.S_while (cond, loop) ->
      [ pad ^ "while (" ^ expr_to_string cond ^ ") {" ] @ block loop @ [ pad ^ "}" ]
  | Jstmt.S_throw e -> [ pad ^ "throw " ^ expr_to_string e ^ ";" ]
  | Jstmt.S_try (body, catches, finally) ->
      [ pad ^ "try {" ]
      @ block body
      @ List.concat_map
          (fun (t, name, stmts) ->
            [ pad ^ "} catch (" ^ Jtype.to_string t ^ " " ^ name ^ ") {" ]
            @ block stmts)
          catches
      @ (if finally = [] then [] else (pad ^ "} finally {") :: block finally)
      @ [ pad ^ "}" ]
  | Jstmt.S_sync (e, body) ->
      [ pad ^ "synchronized (" ^ expr_to_string e ^ ") {" ]
      @ block body @ [ pad ^ "}" ]
  | Jstmt.S_comment text -> [ pad ^ "// " ^ text ]
  | Jstmt.S_block stmts -> [ pad ^ "{" ] @ block stmts @ [ pad ^ "}" ]

let stmt_to_string ?(indent = 0) stmt =
  String.concat "\n" (stmt_lines indent stmt)

let mods_prefix mods =
  match mods with
  | [] -> ""
  | _ -> String.concat " " (List.map Jdecl.modifier_to_string mods) ^ " "

let params_to_string params =
  String.concat ", "
    (List.map
       (fun (p : Jdecl.param) ->
         Jtype.to_string p.Jdecl.param_type ^ " " ^ p.Jdecl.param_name)
       params)

let method_lines depth (m : Jdecl.method_) =
  let pad = String.make (depth * 2) ' ' in
  let signature =
    pad ^ mods_prefix m.Jdecl.method_mods
    ^ Jtype.to_string m.Jdecl.return_type
    ^ " " ^ m.Jdecl.method_name ^ "(" ^ params_to_string m.Jdecl.params ^ ")"
    ^
    match m.Jdecl.throws with
    | [] -> ""
    | ts -> " throws " ^ String.concat ", " ts
  in
  match m.Jdecl.body with
  | None -> [ signature ^ ";" ]
  | Some body ->
      [ signature ^ " {" ]
      @ List.concat_map (stmt_lines (depth + 1)) body
      @ [ pad ^ "}" ]

let method_to_string ?(indent = 0) m =
  String.concat "\n" (method_lines indent m)

let field_line depth (f : Jdecl.field) =
  let pad = String.make (depth * 2) ' ' in
  pad ^ mods_prefix f.Jdecl.field_mods
  ^ Jtype.to_string f.Jdecl.field_type
  ^ " " ^ f.Jdecl.field_name
  ^ (match f.Jdecl.field_init with
    | Some init -> " = " ^ expr_to_string init
    | None -> "")
  ^ ";"

let class_lines (c : Jdecl.class_) =
  let header =
    mods_prefix c.Jdecl.class_mods ^ "class " ^ c.Jdecl.class_name
    ^ (match c.Jdecl.extends with Some s -> " extends " ^ s | None -> "")
    ^ (match c.Jdecl.implements with
      | [] -> ""
      | is -> " implements " ^ String.concat ", " is)
    ^ " {"
  in
  [ header ]
  @ List.map (field_line 1) c.Jdecl.fields
  @ (if c.Jdecl.fields = [] || c.Jdecl.methods = [] then [] else [ "" ])
  @ List.concat_map
      (fun m -> method_lines 1 m @ [ "" ])
      c.Jdecl.methods
  @ [ "}" ]

let interface_lines (i : Jdecl.interface_) =
  let header =
    "public interface " ^ i.Jdecl.iface_name
    ^ (match i.Jdecl.iface_extends with
      | [] -> ""
      | es -> " extends " ^ String.concat ", " es)
    ^ " {"
  in
  [ header ] @ List.concat_map (method_lines 1) i.Jdecl.iface_methods @ [ "}" ]

let type_decl_to_string = function
  | Jdecl.Class c -> String.concat "\n" (class_lines c)
  | Jdecl.Interface i -> String.concat "\n" (interface_lines i)

let unit_to_string (u : Junit.t) =
  let lines =
    [ "package " ^ u.Junit.package ^ ";"; "" ]
    @ List.map (fun i -> "import " ^ i ^ ";") u.Junit.imports
    @ (if u.Junit.imports = [] then [] else [ "" ])
    @ List.concat_map (fun d -> [ type_decl_to_string d; "" ]) u.Junit.decls
  in
  String.concat "\n" lines

let program_to_string program =
  String.concat "\n"
    (List.concat_map
       (fun (u : Junit.t) ->
         [ "// file: " ^ u.Junit.package ^ "/"; unit_to_string u ])
       program)
