(** Rendering of the code model as Java-like source text. *)

val expr_to_string : Jexpr.t -> string

val stmt_to_string : ?indent:int -> Jstmt.t -> string
(** [indent] is the starting depth (default 0); two spaces per level. *)

val method_to_string : ?indent:int -> Jdecl.method_ -> string

val type_decl_to_string : Jdecl.type_decl -> string

val unit_to_string : Junit.t -> string
(** A full compilation unit: package, imports, declarations. *)

val program_to_string : Junit.program -> string
(** All units, separated by a [// file:] banner comment each. *)
