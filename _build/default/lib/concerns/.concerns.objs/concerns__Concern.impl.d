lib/concerns/concern.ml: Format String
