lib/concerns/concern.mli: Format
