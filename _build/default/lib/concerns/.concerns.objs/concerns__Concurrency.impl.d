lib/concerns/concurrency.ml: Aspects Code Concern List Mof Ocl Support Transform
