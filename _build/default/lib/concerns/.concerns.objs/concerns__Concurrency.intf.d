lib/concerns/concurrency.mli: Aspects Concern Transform
