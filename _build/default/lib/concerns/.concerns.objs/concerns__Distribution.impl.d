lib/concerns/distribution.ml: Aspects Code Concern List Mof Ocl Support Transform
