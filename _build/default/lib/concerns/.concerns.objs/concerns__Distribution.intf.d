lib/concerns/distribution.mli: Aspects Concern Transform
