lib/concerns/logging.ml: Aspects Code Concern List Mof Ocl Support Transform
