lib/concerns/logging.mli: Aspects Concern Transform
