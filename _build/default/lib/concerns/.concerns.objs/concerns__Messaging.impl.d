lib/concerns/messaging.ml: Aspects Code Concern List Mof Ocl Printf String Support Transform
