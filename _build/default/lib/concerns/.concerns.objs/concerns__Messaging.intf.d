lib/concerns/messaging.mli: Aspects Concern Transform
