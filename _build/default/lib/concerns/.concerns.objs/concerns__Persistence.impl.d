lib/concerns/persistence.ml: Aspects Code Concern List Mof Ocl String Support Transform
