lib/concerns/persistence.mli: Aspects Concern Transform
