lib/concerns/registry.ml: Aspects Concern Concurrency Distribution List Logging Messaging Option Persistence Printf Security String Transactions Transform
