lib/concerns/registry.mli: Aspects Concern Transform
