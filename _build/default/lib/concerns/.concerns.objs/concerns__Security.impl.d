lib/concerns/security.ml: Aspects Code Concern List Mof Ocl String Support Transform
