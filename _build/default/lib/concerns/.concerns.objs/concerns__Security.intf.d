lib/concerns/security.mli: Aspects Concern Transform
