lib/concerns/support.ml: List Mof Transform
