lib/concerns/support.mli: Aspects Mof
