lib/concerns/transactions.ml: Aspects Code Concern List Mof Ocl Printf Support Transform
