lib/concerns/transactions.mli: Aspects Concern Transform
