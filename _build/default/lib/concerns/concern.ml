type t = {
  key : string;
  display : string;
  description : string;
}

let make ?(description = "") ~key ~display () = { key; display; description }
let equal a b = String.equal a.key b.key
let pp ppf t = Format.fprintf ppf "%s (%s)" t.display t.key
