(** Concern identities.

    A concern is one dimension of separation (the paper's C_i): middleware
    services such as distribution, transactions, security, concurrency —
    plus any user-defined dimension. The [key] is the stable identifier that
    links a generic model transformation, its generic aspect, trace entries,
    and workflow colors. *)

type t = {
  key : string;  (** stable identifier, e.g. ["distribution"] *)
  display : string;  (** e.g. ["Distribution"] *)
  description : string;
}

val make : ?description:string -> key:string -> display:string -> unit -> t

val equal : t -> t -> bool
(** Equality by key. *)

val pp : Format.formatter -> t -> unit
