let concern =
  Concern.make ~key:"concurrency" ~display:"Concurrency"
    ~description:
      "Mutual exclusion or reader-writer locking around the operations of \
       selected classes."
    ()

let formals =
  [
    Transform.Params.decl "guarded"
      (Transform.Params.P_list Transform.Params.P_ident)
      ~doc:"classes whose operations are synchronized";
    Transform.Params.decl "policy"
      (Transform.Params.P_enum [ "mutex"; "reader-writer" ])
      ~doc:"locking policy"
      ~default:(Transform.Params.V_string "mutex");
  ]

let preconditions =
  [
    Ocl.Constraint_.make ~name:"guarded-classes-exist"
      "$guarded$->forAll(n | Class.allInstances()->exists(c | c.name = n))";
    Ocl.Constraint_.make ~name:"not-already-guarded"
      "Class.allInstances()->forAll(c | $guarded$->includes(c.name) implies \
       not c.hasStereotype('synchronized'))";
  ]

let postconditions =
  [
    Ocl.Constraint_.make ~name:"synchronized-stereotype-applied"
      "Class.allInstances()->forAll(c | $guarded$->includes(c.name) implies \
       (c.hasStereotype('synchronized') and c.tag('policy') = $policy$))";
    Ocl.Constraint_.make ~name:"lock-manager-exists"
      "Class.allInstances()->exists(c | c.name = 'LockManager')";
  ]

let add_lock_manager m =
  Support.ensure_class m ~name:"LockManager" ~stereotype:"infrastructure"
    (fun m id ->
      let m, _ =
        Support.add_operation_signature m ~owner:id ~name:"acquire"
          ~params:[ ("mode", Mof.Kind.Dt_string) ]
          ~result:Mof.Kind.Dt_void
      in
      let m, _ =
        Support.add_operation_signature m ~owner:id ~name:"release" ~params:[]
          ~result:Mof.Kind.Dt_void
      in
      m)

let rewrite params m =
  let classes = Transform.Params.get_names params "guarded" in
  let policy = Transform.Params.get_string params "policy" in
  let m = add_lock_manager m in
  List.fold_left
    (fun m cname ->
      let cls = Support.find_class_exn m cname in
      let m = Mof.Builder.add_stereotype m cls.Mof.Element.id "synchronized" in
      Mof.Builder.set_tag m cls.Mof.Element.id "policy" policy)
    m classes

let transformation =
  Transform.Gmt.make ~name:"T.concurrency" ~concern:concern.Concern.key
    ~description:concern.Concern.description ~formals ~preconditions
    ~postconditions rewrite

let lock_of_this =
  Code.Jexpr.E_call (Some (Code.Jexpr.E_name "LockManager"), "of", [ Code.Jexpr.E_this ])

let around_body = function
  | "mutex" -> [ Code.Jstmt.S_sync (lock_of_this, [ Aspects.Advice.proceed ]) ]
  | policy ->
      [
        Code.Jstmt.S_expr
          (Code.Jexpr.E_call
             (Some lock_of_this, "acquire", [ Code.Jexpr.E_string policy ]));
        Code.Jstmt.S_try
          ( [ Aspects.Advice.proceed ],
            [],
            [ Code.Jstmt.S_expr (Code.Jexpr.E_call (Some lock_of_this, "release", [])) ]
          );
      ]

let instantiate set =
  let classes = Transform.Params.get_names set "guarded" in
  let policy = Transform.Params.get_string set "policy" in
  let advices =
    Support.per_class_advices ~classes (fun cname ->
        [
          Aspects.Advice.make ~name:("lock-" ^ cname) Aspects.Advice.Around
            (Aspects.Pointcut.execution cname "*")
            (around_body policy);
        ])
  in
  Aspects.Aspect.make ~advices ~name:"ConcurrencyAspect"
    ~concern:concern.Concern.key ()

let generic_aspect =
  Aspects.Generic.make ~name:"A.concurrency" ~concern:concern.Concern.key
    ~formals instantiate
