(** The concurrency concern.

    Model level: introduce one «infrastructure» [LockManager] class and mark
    each configured class «synchronized» with the locking policy as a tagged
    value.

    Code level: per configured class, an around-execution advice —
    under the ["mutex"] policy the original body runs inside
    [synchronized (LockManager.of(this))]; under ["reader-writer"] it runs
    between [acquire]/[release] calls in a try/finally.

    Parameters:
    - [guarded] : list of class names (required)
    - [policy] : ["mutex" | "reader-writer"], default ["mutex"] *)

val concern : Concern.t
val formals : Transform.Params.decl list
val transformation : Transform.Gmt.t
val generic_aspect : Aspects.Generic.t
