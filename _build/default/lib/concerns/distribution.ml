let concern =
  Concern.make ~key:"distribution" ~display:"Distribution"
    ~description:
      "Remote accessibility of selected classes through generated remote \
       interfaces, proxies, and a naming service."
    ()

let formals =
  [
    Transform.Params.decl "remote"
      (Transform.Params.P_list Transform.Params.P_ident)
      ~doc:"classes to make remotely accessible";
    Transform.Params.decl "protocol"
      (Transform.Params.P_enum [ "rmi"; "corba"; "ws" ])
      ~doc:"remote invocation protocol"
      ~default:(Transform.Params.V_string "rmi");
    Transform.Params.decl "registry" Transform.Params.P_string
      ~doc:"naming service address"
      ~default:(Transform.Params.V_string "localhost:1099");
  ]

let preconditions =
  [
    Ocl.Constraint_.make ~name:"remote-classes-exist"
      "$remote$->forAll(n | Class.allInstances()->exists(c | c.name = n))";
    Ocl.Constraint_.make ~name:"not-already-remote"
      "Class.allInstances()->forAll(c | $remote$->includes(c.name) implies \
       not c.hasStereotype('remote'))";
  ]

let postconditions =
  [
    Ocl.Constraint_.make ~name:"remote-interfaces-exist"
      "$remote$->forAll(n | Interface.allInstances()->exists(i | i.name = \
       n.concat('Remote')))";
    Ocl.Constraint_.make ~name:"proxies-exist"
      "$remote$->forAll(n | Class.allInstances()->exists(c | c.name = \
       n.concat('Proxy') and c.hasStereotype('proxy')))";
    Ocl.Constraint_.make ~name:"remote-stereotype-applied"
      "Class.allInstances()->forAll(c | $remote$->includes(c.name) implies \
       c.hasStereotype('remote'))";
    Ocl.Constraint_.make ~name:"naming-service-exists"
      "Class.allInstances()->exists(c | c.name = 'NamingService')";
  ]

let add_naming_service m registry =
  Support.ensure_class m ~name:"NamingService" ~stereotype:"infrastructure"
    (fun m id ->
      let m, _ =
        Support.add_operation_signature m ~owner:id ~name:"bind"
          ~params:[ ("name", Mof.Kind.Dt_string) ]
          ~result:Mof.Kind.Dt_void
      in
      let m, _ =
        Support.add_operation_signature m ~owner:id ~name:"lookup"
          ~params:[ ("name", Mof.Kind.Dt_string) ]
          ~result:Mof.Kind.Dt_string
      in
      Mof.Builder.set_tag m id "registry" registry)

let distribute_class m ~protocol cname =
  let cls = Support.find_class_exn m cname in
  let cls_id = cls.Mof.Element.id in
  let pkg = Support.owning_package m cls in
  let m, iface = Mof.Builder.add_interface m ~owner:pkg ~name:(cname ^ "Remote") in
  let m = Mof.Builder.add_stereotype m iface "remote-interface" in
  let m = Support.copy_public_operations m ~from_class:cls_id ~to_classifier:iface in
  let m = Mof.Builder.add_realization m ~cls:cls_id ~iface in
  let m = Mof.Builder.add_stereotype m cls_id "remote" in
  let m = Mof.Builder.set_tag m cls_id "protocol" protocol in
  let m, proxy = Mof.Builder.add_class m ~owner:pkg ~name:(cname ^ "Proxy") in
  let m = Mof.Builder.add_stereotype m proxy "proxy" in
  let m, _ =
    Mof.Builder.add_attribute m ~cls:proxy ~name:"target"
      ~typ:(Mof.Kind.Dt_ref cls_id)
  in
  let m = Support.copy_public_operations m ~from_class:cls_id ~to_classifier:proxy in
  let m = Mof.Builder.add_realization m ~cls:proxy ~iface in
  let m, _ =
    Mof.Builder.add_dependency m ~owner:pkg ~client:proxy ~supplier:cls_id
      ~stereotype:"delegates"
  in
  m

let rewrite params m =
  let remote = Transform.Params.get_names params "remote" in
  let protocol = Transform.Params.get_string params "protocol" in
  let registry = Transform.Params.get_string params "registry" in
  let m = add_naming_service m registry in
  List.fold_left (fun m cname -> distribute_class m ~protocol cname) m remote

let transformation =
  Transform.Gmt.make ~name:"T.distribution" ~concern:concern.Concern.key
    ~description:concern.Concern.description ~formals ~preconditions
    ~postconditions rewrite

let instantiate set =
  let remote = Transform.Params.get_names set "remote" in
  let protocol = Transform.Params.get_string set "protocol" in
  let registry = Transform.Params.get_string set "registry" in
  let intertypes =
    List.map
      (fun cname ->
        Aspects.Aspect.It_field
          ( cname,
            {
              Code.Jdecl.field_name = "__remoteId";
              field_type = Code.Jtype.T_string;
              field_mods = [ Code.Jdecl.M_private ];
              field_init = None;
            } ))
      remote
  in
  let advices =
    Support.per_class_advices ~classes:remote (fun cname ->
        [
          Aspects.Advice.make ~name:("export-" ^ cname) Aspects.Advice.Before
            (Aspects.Pointcut.execution cname "*")
            [
              Code.Jstmt.S_expr
                (Code.Jexpr.E_call
                   ( Some (Code.Jexpr.E_name "RemoteRuntime"),
                     "ensureExported",
                     [
                       Code.Jexpr.E_this;
                       Code.Jexpr.E_string registry;
                       Code.Jexpr.E_string protocol;
                     ] ));
            ];
        ])
  in
  Aspects.Aspect.make ~intertypes ~advices ~name:"DistributionAspect"
    ~concern:concern.Concern.key ()

let generic_aspect =
  Aspects.Generic.make ~name:"A.distribution" ~concern:concern.Concern.key
    ~formals instantiate
