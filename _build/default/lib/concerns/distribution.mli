(** The distribution concern (the paper's C1).

    Model level (GMT): for every configured class [C], introduce a
    [CRemote] interface carrying [C]'s public operations, a [CProxy] class
    realizing it with a [target : C] attribute and a «delegates» dependency,
    mark [C] «remote», and introduce one shared «infrastructure»
    [NamingService] class.

    Code level (GAC): for every configured class, an inter-type
    [__remoteId] field and a before-execution advice exporting the
    object to the remote runtime with the configured protocol and registry
    address — specialized by the same parameter set as the transformation.

    Parameters (P_1k):
    - [remote] : list of class names to distribute (required)
    - [protocol] : ["rmi" | "corba" | "ws"], default ["rmi"]
    - [registry] : naming-service address, default ["localhost:1099"] *)

val concern : Concern.t
val formals : Transform.Params.decl list
val transformation : Transform.Gmt.t
val generic_aspect : Aspects.Generic.t
