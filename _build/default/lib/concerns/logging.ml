let concern =
  Concern.make ~key:"logging" ~display:"Logging"
    ~description:"Entry/exit tracing of operation executions." ()

let formals =
  [
    Transform.Params.decl "targets"
      (Transform.Params.P_list Transform.Params.P_string)
      ~doc:"class-name patterns to trace"
      ~default:(Transform.Params.V_list [ Transform.Params.V_string "*" ]);
    Transform.Params.decl "level"
      (Transform.Params.P_enum [ "debug"; "info"; "warn" ])
      ~doc:"log level" ~default:(Transform.Params.V_string "info");
  ]

let preconditions =
  [ Ocl.Constraint_.make ~name:"has-targets" "$targets$->notEmpty()" ]

let postconditions =
  [
    Ocl.Constraint_.make ~name:"logger-exists"
      "Class.allInstances()->exists(c | c.name = 'Logger')";
  ]

let rewrite params m =
  let targets = Transform.Params.get_names params "targets" in
  let level = Transform.Params.get_string params "level" in
  let m =
    Support.ensure_class m ~name:"Logger" ~stereotype:"infrastructure"
      (fun m id ->
        let m, _ =
          Support.add_operation_signature m ~owner:id ~name:"log"
            ~params:
              [ ("level", Mof.Kind.Dt_string); ("message", Mof.Kind.Dt_string) ]
            ~result:Mof.Kind.Dt_void
        in
        m)
  in
  (* patterns may be wildcards; stereotype only exact-named classes *)
  List.fold_left
    (fun m pattern ->
      match Mof.Query.find_class m pattern with
      | Some cls ->
          let m = Mof.Builder.add_stereotype m cls.Mof.Element.id "logged" in
          Mof.Builder.set_tag m cls.Mof.Element.id "logLevel" level
      | None -> m)
    m targets

let transformation =
  Transform.Gmt.make ~name:"T.logging" ~concern:concern.Concern.key
    ~description:concern.Concern.description ~formals ~preconditions
    ~postconditions rewrite

let log_call ~level text =
  Code.Jstmt.S_expr
    (Code.Jexpr.E_call
       ( Some (Code.Jexpr.E_name "Logger"),
         "log",
         [
           Code.Jexpr.E_string level;
           Code.Jexpr.E_binary ("+", Code.Jexpr.E_string text, Code.Jexpr.E_name "thisJoinPoint");
         ] ))

let instantiate set =
  let targets = Transform.Params.get_names set "targets" in
  let level = Transform.Params.get_string set "level" in
  let advices =
    Support.per_class_advices ~classes:targets (fun pattern ->
        [
          Aspects.Advice.make ~name:("log-enter-" ^ pattern)
            Aspects.Advice.Before
            (Aspects.Pointcut.execution pattern "*")
            [ log_call ~level "enter " ];
          Aspects.Advice.make ~name:("log-exit-" ^ pattern)
            Aspects.Advice.After_returning
            (Aspects.Pointcut.execution pattern "*")
            [ log_call ~level "exit " ];
        ])
  in
  Aspects.Aspect.make ~advices ~name:"LoggingAspect"
    ~concern:concern.Concern.key ()

let generic_aspect =
  Aspects.Generic.make ~name:"A.logging" ~concern:concern.Concern.key ~formals
    instantiate
