(** The logging/monitoring concern.

    Model level: introduce one «infrastructure» [Logger] class and mark the
    configured classes «logged» with the level as a tagged value.

    Code level: per configured class pattern, [before] and [after returning]
    advice logging entry and exit of every operation execution, using the
    [thisJoinPoint] pseudo-variable.

    Parameters:
    - [targets] : list of class-name patterns, default [["*"]]
    - [level] : ["debug" | "info" | "warn"], default ["info"] *)

val concern : Concern.t
val formals : Transform.Params.decl list
val transformation : Transform.Gmt.t
val generic_aspect : Aspects.Generic.t
