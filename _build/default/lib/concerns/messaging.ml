let concern =
  Concern.make ~key:"messaging" ~display:"Messaging"
    ~description:
      "Asynchronous invocation of selected operations through a message \
       queue."
    ()

let formals =
  [
    Transform.Params.decl "async"
      (Transform.Params.P_list Transform.Params.P_ident)
      ~doc:"operations (Class.operation) to invoke asynchronously";
    Transform.Params.decl "queue" Transform.Params.P_string
      ~doc:"message queue name"
      ~default:(Transform.Params.V_string "default-queue");
  ]

let split_target text =
  match String.index_opt text '.' with
  | Some i ->
      Ok
        ( String.sub text 0 i,
          String.sub text (i + 1) (String.length text - i - 1) )
  | None ->
      Error
        (Printf.sprintf "%s: expected Class.operation" text)

let preconditions =
  [
    (* each Class.operation names an existing operation of that class *)
    Ocl.Constraint_.make ~name:"async-operations-exist"
      "$async$->forAll(n | Operation.allInstances()->exists(o | \
       o.class.name.concat('.').concat(o.name) = n))";
    Ocl.Constraint_.make ~name:"not-already-async"
      "Operation.allInstances()->forAll(o | \
       $async$->includes(o.class.name.concat('.').concat(o.name)) implies \
       not o.hasStereotype('async'))";
  ]

let postconditions =
  [
    Ocl.Constraint_.make ~name:"async-stereotype-applied"
      "Operation.allInstances()->forAll(o | \
       $async$->includes(o.class.name.concat('.').concat(o.name)) implies \
       (o.hasStereotype('async') and o.tag('queue') = $queue$))";
    Ocl.Constraint_.make ~name:"message-queue-exists"
      "Class.allInstances()->exists(c | c.name = 'MessageQueue')";
  ]

let add_queue m =
  Support.ensure_class m ~name:"MessageQueue" ~stereotype:"infrastructure"
    (fun m id ->
      let m, _ =
        Support.add_operation_signature m ~owner:id ~name:"publish"
          ~params:
            [ ("queue", Mof.Kind.Dt_string); ("message", Mof.Kind.Dt_string) ]
          ~result:Mof.Kind.Dt_void
      in
      let m, _ =
        Support.add_operation_signature m ~owner:id ~name:"consume"
          ~params:[ ("queue", Mof.Kind.Dt_string) ]
          ~result:Mof.Kind.Dt_string
      in
      m)

let find_operation m ~cls_name ~op_name =
  match Mof.Query.find_class m cls_name with
  | None -> Transform.Gmt.rewrite_error "class %s not found" cls_name
  | Some cls -> (
      match
        List.find_opt
          (fun (o : Mof.Element.t) -> String.equal o.Mof.Element.name op_name)
          (Mof.Query.operations_of m cls.Mof.Element.id)
      with
      | Some op -> op.Mof.Element.id
      | None ->
          Transform.Gmt.rewrite_error "operation %s.%s not found" cls_name
            op_name)

let rewrite params m =
  let targets = Transform.Params.get_names params "async" in
  let queue = Transform.Params.get_string params "queue" in
  let m = add_queue m in
  List.fold_left
    (fun m target ->
      match split_target target with
      | Error e -> Transform.Gmt.rewrite_error "%s" e
      | Ok (cls_name, op_name) ->
          let op = find_operation m ~cls_name ~op_name in
          let m = Mof.Builder.add_stereotype m op "async" in
          Mof.Builder.set_tag m op "queue" queue)
    m targets

let transformation =
  Transform.Gmt.make ~name:"T.messaging" ~concern:concern.Concern.key
    ~description:concern.Concern.description ~formals ~preconditions
    ~postconditions rewrite

let instantiate set =
  let targets = Transform.Params.get_names set "async" in
  let queue = Transform.Params.get_string set "queue" in
  let advices =
    List.filter_map
      (fun target ->
        match split_target target with
        | Error _ -> None
        | Ok (cls_name, op_name) ->
            Some
              (Aspects.Advice.make
                 ~name:("publish-" ^ target)
                 Aspects.Advice.Before
                 (Aspects.Pointcut.execution cls_name op_name)
                 [
                   Code.Jstmt.S_expr
                     (Code.Jexpr.E_call
                        ( Some (Code.Jexpr.E_name "MessageQueue"),
                          "publish",
                          [
                            Code.Jexpr.E_string queue;
                            Code.Jexpr.E_name "thisJoinPoint";
                          ] ));
                 ]))
      targets
  in
  Aspects.Aspect.make ~advices ~name:"MessagingAspect"
    ~concern:concern.Concern.key ()

let generic_aspect =
  Aspects.Generic.make ~name:"A.messaging" ~concern:concern.Concern.key
    ~formals instantiate
