(** The messaging/communication concern (the first middleware service the
    paper's Section 1 names is "communication").

    Unlike the other concerns, its unit of configuration is the *operation*:
    the parameter names qualified operations ([Class.operation]) that should
    be invoked asynchronously through a message queue.

    Model level: introduce one «infrastructure» [MessageQueue] class
    (publish/consume), mark each configured operation «async» with the queue
    name as a tagged value.

    Code level: per configured operation, a before advice on exactly that
    execution publishing the invocation to the configured queue.

    Parameters:
    - [async] : list of ["Class.operation"] names (required)
    - [queue] : queue name, default ["default-queue"] *)

val concern : Concern.t
val formals : Transform.Params.decl list
val transformation : Transform.Gmt.t
val generic_aspect : Aspects.Generic.t

val split_target : string -> (string * string, string) result
(** ["Account.deposit"] → [Ok ("Account", "deposit")]. *)
