let concern =
  Concern.make ~key:"persistence" ~display:"Persistence"
    ~description:
      "Write-behind persistence with lazy loading for selected classes."
    ()

let formals =
  [
    Transform.Params.decl "persistent"
      (Transform.Params.P_list Transform.Params.P_ident)
      ~doc:"classes whose state is persisted";
    Transform.Params.decl "store"
      (Transform.Params.P_enum [ "relational"; "object-store"; "file" ])
      ~doc:"backing store kind"
      ~default:(Transform.Params.V_string "relational");
    Transform.Params.decl "idAttribute" Transform.Params.P_string
      ~doc:"name of the surrogate identifier attribute"
      ~default:(Transform.Params.V_string "id");
  ]

let preconditions =
  [
    Ocl.Constraint_.make ~name:"persistent-classes-exist"
      "$persistent$->forAll(n | Class.allInstances()->exists(c | c.name = n))";
    Ocl.Constraint_.make ~name:"not-already-persistent"
      "Class.allInstances()->forAll(c | $persistent$->includes(c.name) \
       implies not c.hasStereotype('persistent'))";
  ]

let postconditions =
  [
    Ocl.Constraint_.make ~name:"persistent-stereotype-applied"
      "Class.allInstances()->forAll(c | $persistent$->includes(c.name) \
       implies (c.hasStereotype('persistent') and c.tag('store') = $store$))";
    Ocl.Constraint_.make ~name:"surrogate-id-present"
      "Class.allInstances()->forAll(c | $persistent$->includes(c.name) \
       implies c.attributes->exists(a | a.name = $idAttribute$))";
    Ocl.Constraint_.make ~name:"persistence-manager-exists"
      "Class.allInstances()->exists(c | c.name = 'PersistenceManager')";
  ]

let add_manager m =
  Support.ensure_class m ~name:"PersistenceManager" ~stereotype:"infrastructure"
    (fun m id ->
      let unary name m =
        let m, _ =
          Support.add_operation_signature m ~owner:id ~name
            ~params:[ ("key", Mof.Kind.Dt_string) ]
            ~result:Mof.Kind.Dt_void
        in
        m
      in
      m |> unary "load" |> unary "store" |> unary "delete")

let rewrite params m =
  let classes = Transform.Params.get_names params "persistent" in
  let store = Transform.Params.get_string params "store" in
  let id_attribute = Transform.Params.get_string params "idAttribute" in
  let m = add_manager m in
  List.fold_left
    (fun m cname ->
      let cls = Support.find_class_exn m cname in
      let cls_id = cls.Mof.Element.id in
      let m = Mof.Builder.add_stereotype m cls_id "persistent" in
      let m = Mof.Builder.set_tag m cls_id "store" store in
      let has_id =
        List.exists
          (fun (a : Mof.Element.t) -> String.equal a.Mof.Element.name id_attribute)
          (Mof.Query.attributes_of m cls_id)
      in
      if has_id then m
      else
        let m, attr =
          Mof.Builder.add_attribute m ~cls:cls_id ~name:id_attribute
            ~typ:Mof.Kind.Dt_string
        in
        Mof.Builder.add_stereotype m attr "generated")
    m classes

let transformation =
  Transform.Gmt.make ~name:"T.persistence" ~concern:concern.Concern.key
    ~description:concern.Concern.description ~formals ~preconditions
    ~postconditions rewrite

let manager_call method_name extra =
  Code.Jstmt.S_expr
    (Code.Jexpr.E_call
       ( Some (Code.Jexpr.E_name "PersistenceManager"),
         method_name,
         Code.Jexpr.E_this :: extra ))

let instantiate set =
  let classes = Transform.Params.get_names set "persistent" in
  let store = Transform.Params.get_string set "store" in
  let advices =
    Support.per_class_advices ~classes (fun cname ->
        [
          Aspects.Advice.make
            ~name:("mark-dirty-" ^ cname)
            Aspects.Advice.After_returning
            (Aspects.Pointcut.execution cname "set*")
            [ manager_call "markDirty" [ Code.Jexpr.E_string store ] ];
          Aspects.Advice.make
            ~name:("ensure-loaded-" ^ cname)
            Aspects.Advice.Before
            (Aspects.Pointcut.execution cname "get*")
            [ manager_call "ensureLoaded" [] ];
        ])
  in
  Aspects.Aspect.make ~advices ~name:"PersistenceAspect"
    ~concern:concern.Concern.key ()

let generic_aspect =
  Aspects.Generic.make ~name:"A.persistence" ~concern:concern.Concern.key
    ~formals instantiate
