(** The persistence concern (an extension in the same middleware-services
    family the paper's Section 1 cites from Rouvellou et al.).

    Model level: introduce one «infrastructure» [PersistenceManager] class
    (load/store/delete), mark each configured class «persistent» with the
    backing store as a tagged value, and add a surrogate identifier
    attribute (default [id : String]) when the class has none.

    Code level: per configured class, an after-returning advice on setter
    executions marking the object dirty, and a before advice on getter
    executions ensuring the object is loaded — write-behind with lazy
    loading, parameterized by the same set as the transformation.

    Parameters:
    - [persistent] : list of class names (required)
    - [store] : ["relational" | "object-store" | "file"], default
      ["relational"]
    - [idAttribute] : surrogate key attribute name, default ["id"] *)

val concern : Concern.t
val formals : Transform.Params.decl list
val transformation : Transform.Gmt.t
val generic_aspect : Aspects.Generic.t
