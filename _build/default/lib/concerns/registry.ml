type entry = {
  concern : Concern.t;
  gmt : Transform.Gmt.t;
  gac : Aspects.Generic.t;
}

let builtins =
  [
    {
      concern = Distribution.concern;
      gmt = Distribution.transformation;
      gac = Distribution.generic_aspect;
    };
    {
      concern = Transactions.concern;
      gmt = Transactions.transformation;
      gac = Transactions.generic_aspect;
    };
    {
      concern = Security.concern;
      gmt = Security.transformation;
      gac = Security.generic_aspect;
    };
    {
      concern = Concurrency.concern;
      gmt = Concurrency.transformation;
      gac = Concurrency.generic_aspect;
    };
    {
      concern = Logging.concern;
      gmt = Logging.transformation;
      gac = Logging.generic_aspect;
    };
    {
      concern = Persistence.concern;
      gmt = Persistence.transformation;
      gac = Persistence.generic_aspect;
    };
    {
      concern = Messaging.concern;
      gmt = Messaging.transformation;
      gac = Messaging.generic_aspect;
    };
  ]

let registered : entry list ref = ref []

let all () = builtins @ List.rev !registered

let find key =
  List.find_opt (fun e -> String.equal e.concern.Concern.key key) (all ())

let find_gmt key = Option.map (fun e -> e.gmt) (find key)
let find_gac key = Option.map (fun e -> e.gac) (find key)

let same_formals (a : Transform.Params.decl list) (b : Transform.Params.decl list)
    =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Transform.Params.decl) (y : Transform.Params.decl) ->
         String.equal x.Transform.Params.pname y.Transform.Params.pname
         && x.Transform.Params.ptype = y.Transform.Params.ptype)
       a b

let register entry =
  let key = entry.concern.Concern.key in
  let diags =
    (if find key <> None then [ Printf.sprintf "concern %s already registered" key ]
     else [])
    @ (if not (String.equal entry.gmt.Transform.Gmt.concern key) then
         [
           Printf.sprintf "transformation %s declares concern %s, entry says %s"
             entry.gmt.Transform.Gmt.name entry.gmt.Transform.Gmt.concern key;
         ]
       else [])
    @ (if not (String.equal entry.gac.Aspects.Generic.concern key) then
         [
           Printf.sprintf "generic aspect %s declares concern %s, entry says %s"
             entry.gac.Aspects.Generic.ga_name entry.gac.Aspects.Generic.concern
             key;
         ]
       else [])
    @ (if
         not
           (same_formals entry.gmt.Transform.Gmt.formals
              entry.gac.Aspects.Generic.formals)
       then
         [
           Printf.sprintf
             "transformation and aspect for %s declare different formal \
              parameters — the paper requires one parameter set to \
              specialize both"
             key;
         ]
       else [])
    @ Transform.Gmt.validate_conditions entry.gmt
  in
  match diags with
  | [] ->
      registered := entry :: !registered;
      Ok ()
  | _ -> Error diags

let reset () = registered := []
