(** The concern registry: the catalogue the refinement wizards and the
    pipeline resolve concern keys against.

    Each entry pairs a concern's generic model transformation with its
    generic aspect — Fig. 1's GMT_Ci/GAC_i association — declared over the
    same formal parameters. The five middleware concerns of the paper's
    Section 1 are registered by default; {!register} admits user-defined
    concerns after validating the pairing. *)

type entry = {
  concern : Concern.t;
  gmt : Transform.Gmt.t;
  gac : Aspects.Generic.t;
}

val builtins : entry list
(** distribution, transactions, security, concurrency, logging,
    persistence, messaging — in that order. *)

val all : unit -> entry list
(** Builtins plus everything {!register}ed, registration order. *)

val find : string -> entry option
(** Lookup by concern key. *)

val find_gmt : string -> Transform.Gmt.t option
val find_gac : string -> Aspects.Generic.t option

val register : entry -> (unit, string list) result
(** Adds a user-defined concern. Rejected (with diagnostics) when the key is
    already taken, when transformation/aspect concern keys disagree, when
    their formal parameter lists differ, or when the generic conditions fail
    static validation ({!Transform.Gmt.validate_conditions}). *)

val reset : unit -> unit
(** Drops every registered (non-builtin) entry — for tests. *)
