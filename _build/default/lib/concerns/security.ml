let concern =
  Concern.make ~key:"security" ~display:"Security"
    ~description:
      "Role-based access control on the operations of selected classes."
    ()

let formals =
  [
    Transform.Params.decl "secured"
      (Transform.Params.P_list Transform.Params.P_ident)
      ~doc:"classes whose operations require authorization";
    Transform.Params.decl "roles"
      (Transform.Params.P_list Transform.Params.P_string)
      ~doc:"roles permitted to invoke the secured operations"
      ~default:(Transform.Params.V_list [ Transform.Params.V_string "admin" ]);
    Transform.Params.decl "authentication"
      (Transform.Params.P_enum [ "basic"; "token"; "certificate" ])
      ~doc:"how principals are authenticated"
      ~default:(Transform.Params.V_string "token");
  ]

let preconditions =
  [
    Ocl.Constraint_.make ~name:"secured-classes-exist"
      "$secured$->forAll(n | Class.allInstances()->exists(c | c.name = n))";
    Ocl.Constraint_.make ~name:"not-already-secured"
      "Class.allInstances()->forAll(c | $secured$->includes(c.name) implies \
       not c.hasStereotype('secured'))";
    Ocl.Constraint_.make ~name:"at-least-one-role" "$roles$->notEmpty()";
  ]

let postconditions =
  [
    Ocl.Constraint_.make ~name:"secured-stereotype-applied"
      "Class.allInstances()->forAll(c | $secured$->includes(c.name) implies \
       (c.hasStereotype('secured') and c.hasTag('roles')))";
    Ocl.Constraint_.make ~name:"access-controller-exists"
      "Class.allInstances()->exists(c | c.name = 'AccessController')";
    Ocl.Constraint_.make ~name:"principal-exists"
      "Class.allInstances()->exists(c | c.name = 'Principal')";
  ]

let add_infrastructure m =
  let m =
    Support.ensure_class m ~name:"Principal" ~stereotype:"infrastructure"
      (fun m id ->
        let m, _ =
          Mof.Builder.add_attribute m ~cls:id ~name:"name"
            ~typ:Mof.Kind.Dt_string
        in
        let m, _ =
          Mof.Builder.add_attribute m ~cls:id ~name:"roles"
            ~typ:(Mof.Kind.Dt_collection Mof.Kind.Dt_string)
            ~mult:Mof.Kind.mult_many
        in
        m)
  in
  Support.ensure_class m ~name:"AccessController" ~stereotype:"infrastructure"
    (fun m id ->
      let m, _ =
        Support.add_operation_signature m ~owner:id ~name:"check"
          ~params:
            [
              ("principal", Mof.Kind.Dt_string);
              ("resource", Mof.Kind.Dt_string);
              ("roles", Mof.Kind.Dt_string);
            ]
          ~result:Mof.Kind.Dt_boolean
      in
      m)

let rewrite params m =
  let classes = Transform.Params.get_names params "secured" in
  let roles = Transform.Params.get_names params "roles" in
  let authentication = Transform.Params.get_string params "authentication" in
  let m = add_infrastructure m in
  let controller =
    (Support.find_class_exn m "AccessController").Mof.Element.id
  in
  List.fold_left
    (fun m cname ->
      let cls = Support.find_class_exn m cname in
      let cls_id = cls.Mof.Element.id in
      let pkg = Support.owning_package m cls in
      let m = Mof.Builder.add_stereotype m cls_id "secured" in
      let m = Mof.Builder.set_tag m cls_id "roles" (String.concat "," roles) in
      let m = Mof.Builder.set_tag m cls_id "authentication" authentication in
      let m, _ =
        Mof.Builder.add_dependency m ~owner:pkg ~client:cls_id
          ~supplier:controller ~stereotype:"uses"
      in
      m)
    m classes

let transformation =
  Transform.Gmt.make ~name:"T.security" ~concern:concern.Concern.key
    ~description:concern.Concern.description ~formals ~preconditions
    ~postconditions rewrite

let check_body ~roles ~authentication =
  [
    Code.Jstmt.S_local
      ( Code.Jtype.T_named "Principal",
        "principal",
        Some
          (Code.Jexpr.E_call
             ( Some (Code.Jexpr.E_name "SecurityContext"),
               "currentPrincipal",
               [ Code.Jexpr.E_string authentication ] )) );
    Code.Jstmt.S_expr
      (Code.Jexpr.E_call
         ( Some (Code.Jexpr.E_name "AccessController"),
           "check",
           [
             Code.Jexpr.E_name "principal";
             Code.Jexpr.E_name "thisJoinPoint";
             Code.Jexpr.E_string (String.concat "," roles);
           ] ));
  ]

let instantiate set =
  let classes = Transform.Params.get_names set "secured" in
  let roles = Transform.Params.get_names set "roles" in
  let authentication = Transform.Params.get_string set "authentication" in
  let advices =
    Support.per_class_advices ~classes (fun cname ->
        [
          Aspects.Advice.make ~name:("authorize-" ^ cname) Aspects.Advice.Before
            (Aspects.Pointcut.execution cname "*")
            (check_body ~roles ~authentication);
        ])
  in
  Aspects.Aspect.make ~advices ~name:"SecurityAspect"
    ~concern:concern.Concern.key ()

let generic_aspect =
  Aspects.Generic.make ~name:"A.security" ~concern:concern.Concern.key ~formals
    instantiate
