(** The security concern (the paper's C3).

    Model level: introduce «infrastructure» [Principal] and
    [AccessController] classes, mark each configured class «secured», record
    the permitted roles and authentication mode as tagged values, and add a
    «uses» dependency from each secured class to the access controller.

    Code level: a before-execution advice per configured class that
    resolves the current principal with the configured authentication mode
    and checks it against the configured roles.

    Parameters (P_3k):
    - [secured] : list of class names (required)
    - [roles] : list of role names, default [["admin"]]
    - [authentication] : ["basic" | "token" | "certificate"], default
      ["token"] *)

val concern : Concern.t
val formals : Transform.Params.decl list
val transformation : Transform.Gmt.t
val generic_aspect : Aspects.Generic.t
