let find_class_exn m name =
  match Mof.Query.find_class m name with
  | Some e -> e
  | None -> Transform.Gmt.rewrite_error "class %s not found in model" name

let owning_package m (e : Mof.Element.t) =
  match e.Mof.Element.owner with
  | Some o -> (
      match (Mof.Model.find_exn m o).Mof.Element.kind with
      | Mof.Kind.Package _ -> o
      | _ -> Mof.Model.root m)
  | None -> Mof.Model.root m

let ensure_class ?stereotype m ~name populate =
  match Mof.Query.find_class m name with
  | Some _ -> m
  | None ->
      let m, id = Mof.Builder.add_class m ~owner:(Mof.Model.root m) ~name in
      let m =
        match stereotype with
        | Some s -> Mof.Builder.add_stereotype m id s
        | None -> m
      in
      populate m id

let add_operation_signature m ~owner ~name ~params ~result =
  let m, op = Mof.Builder.add_operation m ~owner ~name in
  let m =
    List.fold_left
      (fun m (pname, ptype) ->
        let m, _ = Mof.Builder.add_parameter m ~op ~name:pname ~typ:ptype in
        m)
      m params
  in
  let m = Mof.Builder.set_result m ~op ~typ:result in
  (m, op)

let copy_public_operations m ~from_class ~to_classifier =
  List.fold_left
    (fun m (op : Mof.Element.t) ->
      let params =
        List.map
          (fun (p : Mof.Element.t) ->
            match p.Mof.Element.kind with
            | Mof.Kind.Parameter { param_type; _ } ->
                (p.Mof.Element.name, param_type)
            | _ -> assert false)
          (Mof.Query.parameters_of m op.Mof.Element.id)
      in
      let result = Mof.Query.result_of m op.Mof.Element.id in
      let m, _ =
        add_operation_signature m ~owner:to_classifier ~name:op.Mof.Element.name
          ~params ~result
      in
      m)
    m
    (Mof.Query.public_operations_of m from_class)

let per_class_advices ~classes template =
  List.concat_map template classes
