(** Shared machinery for writing concern transformations and aspects. *)

val find_class_exn : Mof.Model.t -> string -> Mof.Element.t
(** Class lookup by simple name.
    @raise Transform.Gmt.Rewrite_error when absent — concern rewrites use
    this after their preconditions already guaranteed existence, so a miss
    indicates a precondition/rewrite mismatch worth failing loudly on. *)

val owning_package : Mof.Model.t -> Mof.Element.t -> Mof.Id.t
(** The package that owns a classifier (the root package as fallback). *)

val ensure_class :
  ?stereotype:string ->
  Mof.Model.t ->
  name:string ->
  (Mof.Model.t -> Mof.Id.t -> Mof.Model.t) ->
  Mof.Model.t
(** [ensure_class m ~name populate] creates an infrastructure class under
    the root package and runs [populate] on it — unless a class of that name
    already exists (so repeated concern applications share one
    infrastructure class). *)

val copy_public_operations :
  Mof.Model.t -> from_class:Mof.Id.t -> to_classifier:Mof.Id.t -> Mof.Model.t
(** Replicates the public operations of a class (names, parameters, result
    types) onto another classifier — how a [CRemote] interface or a proxy
    acquires the class's service signature. Accessor-shaped operations are
    copied too; the classifier must accept operations. *)

val add_operation_signature :
  Mof.Model.t ->
  owner:Mof.Id.t ->
  name:string ->
  params:(string * Mof.Kind.datatype) list ->
  result:Mof.Kind.datatype ->
  Mof.Model.t * Mof.Id.t
(** Creates a public operation with the given signature. *)

val per_class_advices :
  classes:string list ->
  (string -> Aspects.Advice.t list) ->
  Aspects.Advice.t list
(** Builds the advice list of a concrete aspect by instantiating a per-class
    template for each configured class name. *)
