let concern =
  Concern.make ~key:"transactions" ~display:"Transactions"
    ~description:
      "Transactional execution of the operations of selected classes, with \
       configurable isolation and propagation."
    ()

let formals =
  [
    Transform.Params.decl "transactional"
      (Transform.Params.P_list Transform.Params.P_ident)
      ~doc:"classes whose operations run in transactions";
    Transform.Params.decl "isolation"
      (Transform.Params.P_enum
         [ "read-committed"; "repeatable-read"; "serializable" ])
      ~doc:"transaction isolation level"
      ~default:(Transform.Params.V_string "serializable");
    Transform.Params.decl "propagation"
      (Transform.Params.P_enum [ "required"; "requires-new"; "supports" ])
      ~doc:"transaction propagation"
      ~default:(Transform.Params.V_string "required");
  ]

let preconditions =
  [
    Ocl.Constraint_.make ~name:"transactional-classes-exist"
      "$transactional$->forAll(n | Class.allInstances()->exists(c | c.name = n))";
    Ocl.Constraint_.make ~name:"not-already-transactional"
      "Class.allInstances()->forAll(c | $transactional$->includes(c.name) \
       implies not c.hasStereotype('transactional'))";
  ]

let postconditions =
  [
    Ocl.Constraint_.make ~name:"transactional-stereotype-applied"
      "Class.allInstances()->forAll(c | $transactional$->includes(c.name) \
       implies (c.hasStereotype('transactional') and c.tag('isolation') = \
       $isolation$))";
    Ocl.Constraint_.make ~name:"transaction-manager-exists"
      "Class.allInstances()->exists(c | c.name = 'TransactionManager')";
  ]

let add_transaction_manager m =
  Support.ensure_class m ~name:"TransactionManager" ~stereotype:"infrastructure"
    (fun m id ->
      let no_params name m =
        let m, _ =
          Support.add_operation_signature m ~owner:id ~name ~params:[]
            ~result:Mof.Kind.Dt_void
        in
        m
      in
      m |> no_params "begin" |> no_params "commit" |> no_params "rollback")

let rewrite params m =
  let classes = Transform.Params.get_names params "transactional" in
  let isolation = Transform.Params.get_string params "isolation" in
  let propagation = Transform.Params.get_string params "propagation" in
  let m = add_transaction_manager m in
  List.fold_left
    (fun m cname ->
      let cls = Support.find_class_exn m cname in
      let cls_id = cls.Mof.Element.id in
      let pkg = Support.owning_package m cls in
      let m = Mof.Builder.add_stereotype m cls_id "transactional" in
      let m = Mof.Builder.set_tag m cls_id "isolation" isolation in
      let m = Mof.Builder.set_tag m cls_id "propagation" propagation in
      let m, _ =
        Mof.Builder.add_constraint m ~owner:pkg
          ~name:(cname ^ "-transactional") ~constrained:[ cls_id ]
          ~body:
            (Printf.sprintf
               "Class.allInstances()->forAll(c | c.name = '%s' implies \
                c.hasStereotype('transactional'))"
               cname)
      in
      m)
    m classes

let transformation =
  Transform.Gmt.make ~name:"T.transactions" ~concern:concern.Concern.key
    ~description:concern.Concern.description ~formals ~preconditions
    ~postconditions rewrite

let tx_around_body ~isolation ~propagation =
  let tx = Code.Jexpr.E_name "tx" in
  [
    Code.Jstmt.S_local
      ( Code.Jtype.T_named "TransactionManager",
        "tx",
        Some
          (Code.Jexpr.E_call
             (Some (Code.Jexpr.E_name "TransactionManager"), "current", [])) );
    Code.Jstmt.S_expr
      (Code.Jexpr.E_call
         ( Some tx,
           "begin",
           [ Code.Jexpr.E_string isolation; Code.Jexpr.E_string propagation ] ));
    Code.Jstmt.S_try
      ( [ Aspects.Advice.proceed; Code.Jstmt.S_expr (Code.Jexpr.E_call (Some tx, "commit", [])) ],
        [
          ( Code.Jtype.T_named "Exception",
            "e",
            [
              Code.Jstmt.S_expr (Code.Jexpr.E_call (Some tx, "rollback", []));
              Code.Jstmt.S_throw (Code.Jexpr.E_name "e");
            ] );
        ],
        [] );
  ]

let instantiate set =
  let classes = Transform.Params.get_names set "transactional" in
  let isolation = Transform.Params.get_string set "isolation" in
  let propagation = Transform.Params.get_string set "propagation" in
  let advices =
    Support.per_class_advices ~classes (fun cname ->
        [
          Aspects.Advice.make ~name:("tx-" ^ cname) Aspects.Advice.Around
            (Aspects.Pointcut.execution cname "*")
            (tx_around_body ~isolation ~propagation);
        ])
  in
  Aspects.Aspect.make ~advices ~name:"TransactionAspect"
    ~concern:concern.Concern.key ()

let generic_aspect =
  Aspects.Generic.make ~name:"A.transactions" ~concern:concern.Concern.key
    ~formals instantiate
