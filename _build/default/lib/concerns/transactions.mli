(** The transactions concern (the paper's C2).

    Model level: introduce one «infrastructure» [TransactionManager] class
    (begin/commit/rollback), mark each configured class «transactional» with
    isolation/propagation tagged values, and attach an OCL constraint
    documenting the transactional invariant.

    Code level: an around-execution advice per configured class that
    begins a transaction with the configured isolation and propagation,
    commits on normal completion, and rolls back on exception — the exact
    shape [8] argues cannot be a *generic* aspect without application
    knowledge; here the knowledge arrives through the shared parameter set.

    Parameters (P_2k):
    - [transactional] : list of class names (required)
    - [isolation] : ["read-committed" | "repeatable-read" | "serializable"],
      default ["serializable"]
    - [propagation] : ["required" | "requires-new" | "supports"], default
      ["required"] *)

val concern : Concern.t
val formals : Transform.Params.decl list
val transformation : Transform.Gmt.t
val generic_aspect : Aspects.Generic.t
