lib/core/artifacts.ml: Aspects Code Filename Fun List Printf String Sys Weaver
