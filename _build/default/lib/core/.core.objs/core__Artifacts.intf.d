lib/core/artifacts.mli: Aspects Code Weaver
