lib/core/level.ml: Mof Option
