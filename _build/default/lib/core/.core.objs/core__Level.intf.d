lib/core/level.mli: Mof
