lib/core/pipeline.ml: Artifacts Aspects Code Concerns Format List Printf Project Repository Transform Weaver Workflow
