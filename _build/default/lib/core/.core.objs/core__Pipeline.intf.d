lib/core/pipeline.mli: Artifacts Aspects Code Project Transform
