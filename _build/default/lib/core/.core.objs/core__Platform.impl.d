lib/core/platform.ml: Aspects Concerns Level List Mof Ocl String Transform
