lib/core/platform.mli: Aspects Concerns Transform
