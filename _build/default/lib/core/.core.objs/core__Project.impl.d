lib/core/project.ml: Level Mof Option Platform Repository Transform Workflow
