lib/core/project.mli: Mof Repository Transform Workflow
