lib/core/shipping.ml: Concerns Filename Fun List Mof Pipeline Platform Printf Project Repository Result String Sys Transform Workflow Xmi
