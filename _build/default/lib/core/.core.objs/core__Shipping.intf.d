lib/core/shipping.mli: Project Transform
