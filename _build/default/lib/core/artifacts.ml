type t = {
  functional : Code.Junit.program;
  generated_aspects : Aspects.Generator.generated list;
  woven : Code.Junit.program;
  applications : Weaver.Weave.application list;
}

let precedence_listing t = Weaver.Precedence.explain t.generated_aspects

let interference t =
  Weaver.Interference.analyze t.generated_aspects t.functional

let summary t =
  Printf.sprintf
    "%d unit(s), %d class(es), %d method(s); %d aspect(s), %d advice \
     application(s)"
    (List.length t.functional)
    (List.length (Code.Junit.classes t.functional))
    (Code.Junit.total_methods t.functional)
    (List.length t.generated_aspects)
    (List.length t.applications)

let render_aspects t =
  String.concat "\n\n"
    (List.map Aspects.Printer.generated_to_string t.generated_aspects)

let render_functional t = Code.Printer.program_to_string t.functional
let render_woven t = Code.Printer.program_to_string t.woven

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_to_dir dir t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  write_file (Filename.concat dir "functional.java") (render_functional t);
  write_file (Filename.concat dir "aspects.aj") (render_aspects t);
  write_file (Filename.concat dir "woven.java") (render_woven t);
  let report =
    String.concat "\n"
      ([ summary t; ""; "aspect precedence:"; precedence_listing t; "" ]
      @ List.map
          (fun (a : Weaver.Weave.application) ->
            Printf.sprintf "%s / %s @ %s" a.Weaver.Weave.aspect_name
              a.Weaver.Weave.advice_name a.Weaver.Weave.at)
          t.applications
      @ [ ""; "interference analysis:"; Weaver.Interference.render (interference t) ])
  in
  write_file (Filename.concat dir "BUILD-REPORT.txt") report
