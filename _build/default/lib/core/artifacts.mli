(** Build artifacts: everything the implementation level of Fig. 1/Fig. 2
    produces — the functional code, the generated concrete aspects, and the
    woven program. *)

type t = {
  functional : Code.Junit.program;  (** code of the functional model only *)
  generated_aspects : Aspects.Generator.generated list;
      (** A_i⟨S_i⟩, in transformation order *)
  woven : Code.Junit.program;  (** functional code with aspects woven in *)
  applications : Weaver.Weave.application list;
      (** every advice application performed by the weaver *)
}

val precedence_listing : t -> string
(** The aspect precedence order, one line per aspect. *)

val interference : t -> Weaver.Interference.report
(** Which join points are advised, by whom, in effective precedence order —
    including those shared between concerns. *)

val summary : t -> string
(** Counts: units, classes, methods, aspects, advice applications. *)

val render_aspects : t -> string
(** All generated aspects as AspectJ-like source. *)

val render_functional : t -> string
val render_woven : t -> string

val write_to_dir : string -> t -> unit
(** Writes [functional.java], [aspects.aj], [woven.java], and
    [BUILD-REPORT.txt] into a directory (created if missing). *)
