type t =
  | Pim
  | Psm of string

let to_string = function
  | Pim -> "PIM"
  | Psm platform -> "PSM(" ^ platform ^ ")"

let mark level m =
  match level with
  | Pim -> Mof.Model.set_level_tag "PIM" m
  | Psm platform ->
      let m = Mof.Model.set_level_tag "PSM" m in
      Mof.Builder.set_tag m (Mof.Model.root m) "platform" platform

let of_model m =
  match Mof.Model.level_tag m with
  | Some "PIM" -> Some Pim
  | Some "PSM" ->
      let root = Mof.Model.find_exn m (Mof.Model.root m) in
      Some
        (Psm (Option.value ~default:"unknown" (Mof.Element.tag "platform" root)))
  | Some _ | None -> None

let is_pim m = of_model m = Some Pim
