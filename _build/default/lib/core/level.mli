(** MDA abstraction levels: platform-independent and platform-specific
    models. The level is recorded as tagged values on the model's root
    package. *)

type t =
  | Pim
  | Psm of string  (** platform key, e.g. ["corba"] *)

val to_string : t -> string
(** ["PIM"] or ["PSM(corba)"]. *)

val mark : t -> Mof.Model.t -> Mof.Model.t
(** Records the level (and platform, for PSMs) on the root package. *)

val of_model : Mof.Model.t -> t option
(** Reads the level back; [None] for unmarked models. *)

val is_pim : Mof.Model.t -> bool
