let platforms = [ "corba"; "j2ee"; "dotnet"; "webservices" ]

let stereotype_for = function
  | "corba" -> "corba-servant"
  | "j2ee" -> "ejb"
  | "dotnet" -> "assembly"
  | "webservices" -> "service"
  | p -> p ^ "-component"

let concern =
  Concerns.Concern.make ~key:"platform" ~display:"Platform projection"
    ~description:"Projection of a PIM onto a selected execution platform." ()

let formals =
  [
    Transform.Params.decl "platform"
      (Transform.Params.P_enum platforms)
      ~doc:"target execution platform";
  ]

let preconditions =
  [
    Ocl.Constraint_.make ~name:"model-is-pim"
      "Package.allInstances()->exists(p | p.tag('level') = 'PIM')";
  ]

let postconditions =
  [
    Ocl.Constraint_.make ~name:"model-is-psm"
      "Package.allInstances()->exists(p | p.tag('level') = 'PSM' and \
       p.tag('platform') = $platform$)";
  ]

let rewrite params m =
  let platform = Transform.Params.get_string params "platform" in
  let m = Level.mark (Level.Psm platform) m in
  let component_stereotype = stereotype_for platform in
  List.fold_left
    (fun m (cls : Mof.Element.t) ->
      if Mof.Element.has_stereotype "infrastructure" cls then m
      else Mof.Builder.add_stereotype m cls.Mof.Element.id component_stereotype)
    m (Mof.Query.classes m)

let transformation =
  Transform.Gmt.make ~name:"T.platform" ~concern:concern.Concerns.Concern.key
    ~description:concern.Concerns.Concern.description ~formals ~preconditions
    ~postconditions rewrite

let generic_aspect =
  Aspects.Generic.make ~name:"A.platform" ~concern:concern.Concerns.Concern.key
    ~formals (fun _set ->
      Aspects.Aspect.make ~name:"PlatformAspect"
        ~concern:concern.Concerns.Concern.key ())

let entry =
  { Concerns.Registry.concern; gmt = transformation; gac = generic_aspect }

let ensure_registered () =
  match Concerns.Registry.find concern.Concerns.Concern.key with
  | Some _ -> ()
  | None -> (
      match Concerns.Registry.register entry with
      | Ok () -> ()
      | Error diags ->
          invalid_arg
            ("platform projection failed to register: "
            ^ String.concat "; " diags))
