(** The PIM-to-PSM projection, packaged as one more generic transformation
    (concern key ["platform"]) so that platform selection flows through the
    same specialize-check-apply machinery as the middleware concerns.

    The projection marks the model as a PSM for the selected platform and
    stereotypes every non-infrastructure class with the platform's component
    model («corba-servant», «ejb», «assembly», «service»). Its associated
    generic aspect is empty — the platform dimension has no cross-cutting
    code of its own; code-level platform knowledge lives in the code
    generator back-end. *)

val platforms : string list
(** ["corba"; "j2ee"; "dotnet"; "webservices"]. *)

val stereotype_for : string -> string
(** The component stereotype a platform applies to classes. *)

val concern : Concerns.Concern.t
val transformation : Transform.Gmt.t
val generic_aspect : Aspects.Generic.t

val entry : Concerns.Registry.entry

val ensure_registered : unit -> unit
(** Registers {!entry} in the concern registry (idempotent). *)
