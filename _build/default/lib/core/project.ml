type t = {
  name : string;
  session : Transform.Engine.session;
  repo : Repository.Repo.t;
  progress : Workflow.State.progress option;
}

let create ?workflow model =
  Platform.ensure_registered ();
  let model =
    match Level.of_model model with
    | Some _ -> model
    | None -> Level.mark Level.Pim model
  in
  {
    name = Mof.Model.name model;
    session = Transform.Engine.start model;
    repo = Repository.Repo.init model;
    progress = Option.map Workflow.State.start workflow;
  }

let model t = t.session.Transform.Engine.current
let initial_model t = t.session.Transform.Engine.initial
let trace t = t.session.Transform.Engine.trace
let applied t = t.session.Transform.Engine.applied
let history t = Repository.History.render t.repo
let coloring t = Workflow.Color.demarcate (model t) (trace t)
