(** A development project: the current model, its refinement session
    (trace), its version repository, and optional workflow guidance. This is
    the unit of state the paper's tool infrastructure manages. *)

type t = {
  name : string;
  session : Transform.Engine.session;
  repo : Repository.Repo.t;
  progress : Workflow.State.progress option;
}

val create : ?workflow:Workflow.State.t -> Mof.Model.t -> t
(** Starts a project on a model. The model is marked PIM when it carries no
    level tag; the repository's root commit holds the (marked) model. Also
    ensures the platform projection is registered ({!Platform}). *)

val model : t -> Mof.Model.t
(** The current (most refined) model. *)

val initial_model : t -> Mof.Model.t

val trace : t -> Transform.Trace.t

val applied : t -> Transform.Cmt.t list
(** Concrete transformations applied so far, in order. *)

val history : t -> string
(** Rendered repository log. *)

val coloring : t -> string
(** The colored concern demarcation of the current model
    ({!Workflow.Color.demarcate}). *)
