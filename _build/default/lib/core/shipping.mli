(** Packaging a refinement for reuse.

    The paper's Section 2 leaves open: "Should we ship only the last, most
    specialized model, together with the implementation, or should we ship
    all the intermediate models, together with the transformations and the
    set of parameters that specialize each transformation?"

    This module ships *both*: every intermediate model version (one XMI per
    repository commit) and a replayable manifest of (concern, parameter
    assignment) steps. A recipient can use the final model as-is, diff any
    two intermediate versions, or — because the manifest names concerns and
    parameters rather than frozen model deltas — replay the refinement
    against the registry, possibly with adjusted parameters: exactly the
    reuse of "models, transformations, and aspects" the paper asks about.

    Package layout:
    {v
    <dir>/initial.xmi       the model the refinement started from
    <dir>/step-<n>.xmi      the model after the n-th transformation
    <dir>/final.xmi         = the highest step (kept for convenience)
    <dir>/MANIFEST          one tab-separated line per step:
                            step <TAB> <concern> <TAB> name=value ...
    v}

    Values in the manifest use the wizard's textual syntax
    ({!Workflow.Wizard.parse_value}), so the declared parameter types from
    the concern registry drive parsing at replay time. *)

val to_wizard_text : Transform.Params.value -> (string, string) result
(** Renders a parameter value in the wizard's input syntax (lists become
    comma-separated items). Values the syntax cannot carry — embedded tabs,
    newlines, or commas inside list items — are reported as errors rather
    than silently mangled. *)

val manifest_of : Project.t -> (string, string) result
(** The manifest text for a project's applied transformations. *)

val ship : dir:string -> Project.t -> (unit, string) result
(** Writes the package (creating [dir] if needed). *)

val load_manifest :
  string -> ((string * (string * string) list) list, string) result
(** Parses manifest text into (concern, raw assignments) steps. *)

val replay : dir:string -> (Project.t, string) result
(** Reads [initial.xmi] and [MANIFEST] and re-runs every step through
    {!Pipeline.refine} (all checks active). The result is a fresh project
    whose final model must equal the shipped [final.xmi] — which {!verify}
    checks. *)

val verify : dir:string -> (bool, string) result
(** Replays the package and compares the outcome against the shipped final
    model. *)
