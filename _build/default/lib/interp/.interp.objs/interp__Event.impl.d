lib/interp/event.ml: Printf String
