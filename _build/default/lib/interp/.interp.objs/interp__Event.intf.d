lib/interp/event.mli:
