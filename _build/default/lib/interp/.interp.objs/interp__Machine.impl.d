lib/interp/machine.ml: Code Event Format Fun Hashtbl List Rvalue Stdlib String
