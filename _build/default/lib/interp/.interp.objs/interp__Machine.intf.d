lib/interp/machine.mli: Code Event Rvalue Stdlib
