lib/interp/rvalue.ml: Code Printf String
