lib/interp/rvalue.mli: Code
