type t = {
  source : string;
  action : string;
  detail : string;
}

let make ~source ~action ~detail = { source; action; detail }

let to_string e = Printf.sprintf "%s.%s(%s)" e.source e.action e.detail

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let matches ?detail ~source ~action e =
  String.equal e.source source
  && String.equal e.action action
  &&
  match detail with None -> true | Some d -> contains e.detail d
