(** Observable events emitted by the interpreter's middleware runtime.

    Every built-in runtime class (transaction manager, logger, lock manager,
    access controller, remote runtime) records what woven advice asks of it,
    so a test can assert the *behaviour* the paper's pipeline promises —
    e.g. that a transactional method emits [begin … commit], that an
    injected fault turns the tail into [rollback], and that the events of a
    higher-precedence concern bracket those of a lower one. *)

type t = {
  source : string;  (** runtime class, e.g. ["TransactionManager"] *)
  action : string;  (** e.g. ["begin"], ["commit"], ["log"] *)
  detail : string;  (** rendered arguments *)
}

val make : source:string -> action:string -> detail:string -> t

val to_string : t -> string
(** ["TransactionManager.begin(serializable, required)"]. *)

val matches : ?detail:string -> source:string -> action:string -> t -> bool
(** Predicate for assertions; [detail] must be a substring when given. *)
