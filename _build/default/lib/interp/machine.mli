(** The code-model interpreter.

    Executes methods of a {!Code.Junit.program} with a mutable heap and a
    middleware runtime whose built-in classes ([TransactionManager],
    [Logger], [LockManager], [AccessController] + [SecurityContext],
    [RemoteRuntime], [NamingService], [PersistenceManager]) record an
    {!Event.t} trace instead of
    talking to real middleware. This makes the effect of woven aspects
    observable and testable end-to-end — the behavioural closure of the
    paper's Fig. 2.

    Supported: all statement and expression forms of the code model; field
    access and assignment; local variables with assignment; [new] (fields
    default-initialized, constructor arguments ignored — the generator emits
    no constructors); virtual dispatch along [extends]; exceptions with
    try/catch/finally ([RuntimeException] conforms to [Exception] conforms
    to [Throwable], program classes conform along their [extends] chain);
    [synchronized] blocks (recorded as [Monitor.enter]/[Monitor.exit]
    events); string concatenation via [+].

    Fault injection: [faults] names program methods that throw a
    [RuntimeException] as soon as they are entered — how tests drive the
    rollback path of the transaction aspect. *)

exception Runtime_error of string
(** Genuine interpreter errors: unknown class/method/field, arity mismatch,
    type confusion. Distinct from in-program Java exceptions, which are
    values. *)

(** Result of a finished execution. *)
type outcome = {
  result : (Rvalue.t, string) Stdlib.result;
      (** [Ok v] on normal completion, [Error class_name] when an exception
          escaped the called method *)
  events : Event.t list;  (** emission order *)
}

type t
(** A machine instance: program + heap + event log. *)

val create : ?faults:(string * string) list -> Code.Junit.program -> t
(** [create ~faults program] prepares a machine; [faults] are
    [(class, method)] pairs that throw on entry. *)

val new_object : t -> string -> Rvalue.t
(** Allocates an instance of a program class (fields default-initialized).
    @raise Runtime_error for unknown classes. *)

val call : t -> recv:Rvalue.t -> string -> Rvalue.t list -> Rvalue.t
(** Invokes a method on an object for callers that want to script several
    calls against one machine; Java exceptions escape as
    [Runtime_error]-wrapped descriptions. Prefer {!run} for single-shot
    use. *)

val events : t -> Event.t list
(** Events recorded so far, in emission order. *)

val run :
  ?faults:(string * string) list ->
  ?args:Rvalue.t list ->
  Code.Junit.program ->
  class_name:string ->
  method_name:string ->
  outcome
(** One-shot convenience: create a machine, instantiate [class_name], invoke
    [method_name] with [args], and return the outcome with the event
    trace.
    @raise Runtime_error only for genuine interpreter errors. *)
