type t =
  | V_null
  | V_bool of bool
  | V_int of int
  | V_double of float
  | V_string of string
  | V_object of int

let default_of = function
  | Code.Jtype.T_void -> V_null
  | Code.Jtype.T_boolean -> V_bool false
  | Code.Jtype.T_int -> V_int 0
  | Code.Jtype.T_double -> V_double 0.0
  | Code.Jtype.T_string | Code.Jtype.T_named _ | Code.Jtype.T_list _ -> V_null

let truthy = function
  | V_bool b -> b
  | v ->
      invalid_arg
        ("Interp.Rvalue.truthy: non-boolean condition "
        ^
        match v with
        | V_null -> "null"
        | V_int _ -> "int"
        | V_double _ -> "double"
        | V_string _ -> "string"
        | V_object _ -> "object"
        | V_bool _ -> assert false)

let to_string = function
  | V_null -> "null"
  | V_bool b -> string_of_bool b
  | V_int n -> string_of_int n
  | V_double f -> Printf.sprintf "%g" f
  | V_string s -> s
  | V_object r -> "@" ^ string_of_int r

let equal a b =
  match (a, b) with
  | V_string x, V_string y -> String.equal x y
  | a, b -> a = b
