(** Runtime values of the code-model interpreter. *)

type t =
  | V_null
  | V_bool of bool
  | V_int of int
  | V_double of float
  | V_string of string
  | V_object of int  (** heap reference *)

val default_of : Code.Jtype.t -> t
(** The value an uninitialized field or stub holds: [false], [0], [0.0],
    [V_null]. [T_void] also yields [V_null] (stubs "return" it). *)

val truthy : t -> bool
(** Java truth: only [V_bool true]. Raises [Invalid_argument] on
    non-booleans — the generated code never branches on those. *)

val to_string : t -> string
(** Java-ish rendering; objects print as [<class#ref>] via the interpreter's
    printer instead, so this renders them as [@ref]. *)

val equal : t -> t -> bool
(** [==] semantics: primitive equality, reference equality for objects,
    string structural equality (interned-literal approximation). *)
