lib/mof/builder.ml: Element Format Id Kind List Model
