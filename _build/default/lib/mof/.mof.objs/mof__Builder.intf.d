lib/mof/builder.mli: Id Kind Model
