lib/mof/diff.ml: Element Format Id Model
