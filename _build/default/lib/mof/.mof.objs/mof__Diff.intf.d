lib/mof/diff.mli: Format Id Model
