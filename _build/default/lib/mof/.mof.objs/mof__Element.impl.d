lib/mof/element.ml: Format Id Kind List Option String
