lib/mof/element.mli: Format Id Kind
