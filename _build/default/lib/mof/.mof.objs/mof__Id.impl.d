lib/mof/id.ml: Format Int Map Set String
