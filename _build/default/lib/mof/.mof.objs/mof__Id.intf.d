lib/mof/id.mli: Format Map Set
