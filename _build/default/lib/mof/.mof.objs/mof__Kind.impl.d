lib/mof/kind.ml: Id List Option String
