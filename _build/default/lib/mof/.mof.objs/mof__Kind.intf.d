lib/mof/kind.mli: Id
