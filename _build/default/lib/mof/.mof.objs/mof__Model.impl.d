lib/mof/model.ml: Element Id Kind List
