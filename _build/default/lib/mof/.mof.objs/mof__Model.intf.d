lib/mof/model.mli: Element Id
