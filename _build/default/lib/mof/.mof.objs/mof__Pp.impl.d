lib/mof/pp.ml: Element Format Id Kind List Model Query String
