lib/mof/pp.mli: Element Format Kind Model
