lib/mof/query.ml: Element Id Kind List Model String
