lib/mof/query.mli: Element Id Kind Model
