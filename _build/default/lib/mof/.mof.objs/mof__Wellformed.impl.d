lib/mof/wellformed.ml: Element Format Hashtbl Id Kind List Model Query String
