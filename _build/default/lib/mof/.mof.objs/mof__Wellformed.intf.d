lib/mof/wellformed.mli: Format Id Model
