exception Builder_error of string

let error fmt = Format.kasprintf (fun s -> raise (Builder_error s)) fmt

(* Create [kind] named [name] under [owner], then link it into the owner's
   containment list with [link]. *)
let create_under m ~owner ~name kind link =
  let m, id = Model.fresh_id m in
  let elt = Element.make ~id ~name ~owner:(Some owner) kind in
  let m = Model.add m elt in
  let m = Model.update m owner (link id) in
  (m, id)

let link_into_package what id owner_elt =
  match owner_elt.Element.kind with
  | Kind.Package { owned } ->
      Element.with_kind (Kind.Package { owned = owned @ [ id ] }) owner_elt
  | k ->
      error "cannot add %s under %s %s" what (Kind.name k) owner_elt.Element.name

let add_package m ~owner ~name =
  create_under m ~owner ~name (Kind.Package { owned = [] })
    (link_into_package "a package")

let add_class ?(is_abstract = false) m ~owner ~name =
  create_under m ~owner ~name
    (Kind.Class
       { is_abstract; attributes = []; operations = []; supers = []; realizes = [] })
    (link_into_package "a class")

let add_interface m ~owner ~name =
  create_under m ~owner ~name
    (Kind.Interface { operations = [] })
    (link_into_package "an interface")

let add_attribute ?(visibility = Kind.Private) ?(mult = Kind.mult_one)
    ?(is_derived = false) ?(is_static = false) ?initial m ~cls ~name ~typ =
  let link id owner_elt =
    match owner_elt.Element.kind with
    | Kind.Class c ->
        Element.with_kind
          (Kind.Class { c with attributes = c.attributes @ [ id ] })
          owner_elt
    | k ->
        error "cannot add attribute %s to %s %s" name (Kind.name k)
          owner_elt.Element.name
  in
  create_under m ~owner:cls ~name
    (Kind.Attribute
       {
         attr_type = typ;
         attr_visibility = visibility;
         attr_mult = mult;
         is_derived;
         is_static;
         initial_value = initial;
       })
    link

let add_operation ?(visibility = Kind.Public) ?(is_query = false)
    ?(is_abstract = false) ?(is_static = false) m ~owner ~name =
  let link id owner_elt =
    match owner_elt.Element.kind with
    | Kind.Class c ->
        Element.with_kind
          (Kind.Class { c with operations = c.operations @ [ id ] })
          owner_elt
    | Kind.Interface { operations } ->
        Element.with_kind
          (Kind.Interface { operations = operations @ [ id ] })
          owner_elt
    | k ->
        error "cannot add operation %s to %s %s" name (Kind.name k)
          owner_elt.Element.name
  in
  create_under m ~owner ~name
    (Kind.Operation
       {
         params = [];
         op_visibility = visibility;
         is_query;
         is_abstract_op = is_abstract;
         is_static_op = is_static;
       })
    link

let add_parameter ?(direction = Kind.Dir_in) m ~op ~name ~typ =
  let link id owner_elt =
    match owner_elt.Element.kind with
    | Kind.Operation o ->
        Element.with_kind
          (Kind.Operation { o with params = o.params @ [ id ] })
          owner_elt
    | k ->
        error "cannot add parameter %s to %s %s" name (Kind.name k)
          owner_elt.Element.name
  in
  create_under m ~owner:op ~name
    (Kind.Parameter { param_type = typ; direction })
    link

let set_result m ~op ~typ =
  let op_elt = Model.find_exn m op in
  let params =
    match op_elt.Element.kind with
    | Kind.Operation o -> o.params
    | k -> error "set_result: %s is a %s, not an operation" op_elt.Element.name (Kind.name k)
  in
  let existing_return =
    List.find_opt
      (fun pid ->
        match (Model.find_exn m pid).Element.kind with
        | Kind.Parameter { direction = Kind.Dir_return; _ } -> true
        | _ -> false)
      params
  in
  match existing_return with
  | Some pid ->
      Model.update m pid (fun p ->
          match p.Element.kind with
          | Kind.Parameter pk ->
              Element.with_kind (Kind.Parameter { pk with param_type = typ }) p
          | _ -> assert false)
  | None ->
      let m, _ =
        add_parameter ~direction:Kind.Dir_return m ~op ~name:"result" ~typ
      in
      m

let class_kind m id what =
  match (Model.find_exn m id).Element.kind with
  | Kind.Class c -> c
  | k -> error "%s: %a is a %s, not a class" what Id.pp id (Kind.name k)

let add_generalization m ~child ~parent =
  let c = class_kind m child "add_generalization (child)" in
  let _ = class_kind m parent "add_generalization (parent)" in
  let child_elt = Model.find_exn m child in
  let owner =
    match child_elt.Element.owner with
    | Some o -> o
    | None -> error "add_generalization: child has no owner"
  in
  let m, gid =
    create_under m ~owner
      ~name:(child_elt.Element.name ^ "->" ^ (Model.find_exn m parent).Element.name)
      (Kind.Generalization { child; parent })
      (link_into_package "a generalization")
  in
  let m =
    if List.exists (Id.equal parent) c.supers then m
    else
      Model.update m child (fun e ->
          Element.with_kind (Kind.Class { c with supers = c.supers @ [ parent ] }) e)
  in
  (m, gid)

let add_realization m ~cls ~iface =
  let c = class_kind m cls "add_realization" in
  (match (Model.find_exn m iface).Element.kind with
  | Kind.Interface _ -> ()
  | k -> error "add_realization: %a is a %s, not an interface" Id.pp iface (Kind.name k));
  if List.exists (Id.equal iface) c.realizes then m
  else
    Model.update m cls (fun e ->
        Element.with_kind (Kind.Class { c with realizes = c.realizes @ [ iface ] }) e)

let add_association m ~owner ~name ~ends =
  if List.length ends < 2 then error "association %s needs at least two ends" name;
  create_under m ~owner ~name (Kind.Association { ends })
    (link_into_package "an association")

let add_dependency ?stereotype m ~owner ~client ~supplier =
  let name =
    (Model.find_exn m client).Element.name
    ^ "->"
    ^ (Model.find_exn m supplier).Element.name
  in
  let m, id =
    create_under m ~owner ~name
      (Kind.Dependency { client; supplier })
      (link_into_package "a dependency")
  in
  let m =
    match stereotype with
    | None -> m
    | Some s -> Model.update m id (Element.add_stereotype s)
  in
  (m, id)

let add_constraint ?(language = "OCL") m ~owner ~name ~constrained ~body =
  create_under m ~owner ~name
    (Kind.Constraint_ { constrained; body; language })
    (link_into_package "a constraint")

let add_enumeration m ~owner ~name ~literals =
  create_under m ~owner ~name
    (Kind.Enumeration { literals })
    (link_into_package "an enumeration")

let add_stereotype m id s = Model.update m id (Element.add_stereotype s)
let set_tag m id key value = Model.update m id (Element.set_tag key value)
let rename m id name = Model.update m id (Element.with_name name)

(* Remove [id] from the containment list of its owner. *)
let unlink_from_owner m id =
  match (Model.find_exn m id).Element.owner with
  | None -> m
  | Some owner ->
      Model.update m owner (fun e ->
          let drop = List.filter (fun x -> not (Id.equal x id)) in
          let kind =
            match e.Element.kind with
            | Kind.Package { owned } -> Kind.Package { owned = drop owned }
            | Kind.Class c ->
                Kind.Class
                  {
                    c with
                    attributes = drop c.attributes;
                    operations = drop c.operations;
                  }
            | Kind.Interface { operations } ->
                Kind.Interface { operations = drop operations }
            | Kind.Operation o -> Kind.Operation { o with params = drop o.params }
            | k -> k
          in
          Element.with_kind kind e)

(* Ids of the directly owned children of [id]. *)
let children m id =
  match (Model.find_exn m id).Element.kind with
  | Kind.Package { owned } -> owned
  | Kind.Class c -> c.attributes @ c.operations
  | Kind.Interface { operations } -> operations
  | Kind.Operation o -> o.params
  | Kind.Attribute _ | Kind.Parameter _ | Kind.Association _
  | Kind.Generalization _ | Kind.Dependency _ | Kind.Constraint_ _
  | Kind.Enumeration _ ->
      []

let delete_element m id =
  let rec delete m id =
    let m = List.fold_left delete m (children m id) in
    Model.remove m id
  in
  let m = unlink_from_owner m id in
  delete m id
