(** High-level model construction.

    All functions keep the bidirectional containment invariant: when a child
    is created under an owner, the child's [owner] field and the owner's
    containment list are updated together. Creation functions return the new
    model and the id of the created element, which callers thread through
    subsequent calls. *)

exception Builder_error of string
(** Raised when a construction request is ill-typed with respect to the
    metamodel (e.g. adding an attribute to a package). *)

val add_package : Model.t -> owner:Id.t -> name:string -> Model.t * Id.t
(** Creates a package inside package [owner]. *)

val add_class :
  ?is_abstract:bool -> Model.t -> owner:Id.t -> name:string -> Model.t * Id.t
(** Creates a class inside package [owner]. *)

val add_interface : Model.t -> owner:Id.t -> name:string -> Model.t * Id.t
(** Creates an interface inside package [owner]. *)

val add_attribute :
  ?visibility:Kind.visibility ->
  ?mult:Kind.multiplicity ->
  ?is_derived:bool ->
  ?is_static:bool ->
  ?initial:string ->
  Model.t ->
  cls:Id.t ->
  name:string ->
  typ:Kind.datatype ->
  Model.t * Id.t
(** Creates an attribute on class [cls]. Visibility defaults to [Private],
    multiplicity to [1]. *)

val add_operation :
  ?visibility:Kind.visibility ->
  ?is_query:bool ->
  ?is_abstract:bool ->
  ?is_static:bool ->
  Model.t ->
  owner:Id.t ->
  name:string ->
  Model.t * Id.t
(** Creates an operation on a class or interface. Visibility defaults to
    [Public]. The result type defaults to void until {!set_result} or a
    return parameter is added. *)

val add_parameter :
  ?direction:Kind.direction ->
  Model.t ->
  op:Id.t ->
  name:string ->
  typ:Kind.datatype ->
  Model.t * Id.t
(** Creates a parameter of operation [op]; direction defaults to [Dir_in]. *)

val set_result : Model.t -> op:Id.t -> typ:Kind.datatype -> Model.t
(** Sets the result type of [op] by creating (or replacing) its return
    parameter. *)

val add_generalization : Model.t -> child:Id.t -> parent:Id.t -> Model.t * Id.t
(** Creates a generalization element and records [parent] in the child's
    [supers] list. Both ends must be classes. *)

val add_realization : Model.t -> cls:Id.t -> iface:Id.t -> Model.t
(** Records that class [cls] realizes interface [iface]. *)

val add_association :
  Model.t ->
  owner:Id.t ->
  name:string ->
  ends:Kind.assoc_end list ->
  Model.t * Id.t
(** Creates an association under package [owner]; at least two ends are
    required. *)

val add_dependency :
  ?stereotype:string ->
  Model.t ->
  owner:Id.t ->
  client:Id.t ->
  supplier:Id.t ->
  Model.t * Id.t
(** Creates a dependency from [client] to [supplier] under package [owner];
    the optional stereotype (e.g. ["use"], ["proxy"]) is attached to the
    dependency element. *)

val add_constraint :
  ?language:string ->
  Model.t ->
  owner:Id.t ->
  name:string ->
  constrained:Id.t list ->
  body:string ->
  Model.t * Id.t
(** Creates a constraint under package [owner]. Language defaults to
    ["OCL"]. *)

val add_enumeration :
  Model.t -> owner:Id.t -> name:string -> literals:string list -> Model.t * Id.t
(** Creates an enumeration under package [owner]; literals are plain names
    carried by the element itself. *)

val add_stereotype : Model.t -> Id.t -> string -> Model.t
(** Attaches a stereotype to an element; idempotent. *)

val set_tag : Model.t -> Id.t -> string -> string -> Model.t
(** Sets a tagged value on an element. *)

val rename : Model.t -> Id.t -> string -> Model.t
(** Renames an element. *)

val delete_element : Model.t -> Id.t -> Model.t
(** Deletes an element and its transitively owned children, and unlinks it
    from its owner's containment list. Cross-references from surviving
    elements (supers, datatypes, association ends, …) are left in place and
    will surface as dangling-reference violations in {!Wellformed.check};
    transformations that delete elements are expected to re-establish
    well-formedness before their postconditions run. *)
