type t = {
  id : Id.t;
  name : string;
  owner : Id.t option;
  kind : Kind.t;
  stereotypes : string list;
  tags : (string * string) list;
}

let make ?(stereotypes = []) ?(tags = []) ~id ~name ~owner kind =
  { id; name; owner; kind; stereotypes; tags }

let has_stereotype s e = List.mem s e.stereotypes

let add_stereotype s e =
  if has_stereotype s e then e else { e with stereotypes = e.stereotypes @ [ s ] }

let remove_stereotype s e =
  { e with stereotypes = List.filter (fun x -> not (String.equal x s)) e.stereotypes }

let tag key e = List.assoc_opt key e.tags

let set_tag key value e =
  let rec replace = function
    | [] -> [ (key, value) ]
    | (k, _) :: rest when String.equal k key -> (k, value) :: rest
    | kv :: rest -> kv :: replace rest
  in
  { e with tags = replace e.tags }

let remove_tag key e =
  { e with tags = List.filter (fun (k, _) -> not (String.equal k key)) e.tags }

let with_name name e = { e with name }
let with_kind kind e = { e with kind }
let metaclass e = Kind.name e.kind

let equal a b =
  Id.equal a.id b.id
  && String.equal a.name b.name
  && Option.equal Id.equal a.owner b.owner
  && Kind.equal a.kind b.kind
  && List.equal String.equal a.stereotypes b.stereotypes
  && List.equal
       (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && String.equal v1 v2)
       a.tags b.tags

let pp ppf e =
  let pp_stereos ppf = function
    | [] -> ()
    | ss -> Format.fprintf ppf "<<%s>> " (String.concat ", " ss)
  in
  Format.fprintf ppf "%a%s %s (%a)" pp_stereos e.stereotypes (metaclass e)
    e.name Id.pp e.id
