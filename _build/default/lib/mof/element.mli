(** Model elements: identity, name, ownership, kind payload, and the
    extension mechanisms (stereotypes, tagged values) that concern-oriented
    transformations use to mark model parts. *)

type t = {
  id : Id.t;
  name : string;
  owner : Id.t option;  (** owning namespace; [None] only for the root *)
  kind : Kind.t;
  stereotypes : string list;  (** e.g. ["remote"; "transactional"] *)
  tags : (string * string) list;  (** tagged values, insertion-ordered *)
}

val make :
  ?stereotypes:string list ->
  ?tags:(string * string) list ->
  id:Id.t ->
  name:string ->
  owner:Id.t option ->
  Kind.t ->
  t
(** [make ~id ~name ~owner kind] is a fresh element. *)

val has_stereotype : string -> t -> bool
(** [has_stereotype s e] is [true] when [e] carries stereotype [s]. *)

val add_stereotype : string -> t -> t
(** Adds a stereotype; idempotent. *)

val remove_stereotype : string -> t -> t

val tag : string -> t -> string option
(** [tag key e] is the value of tagged value [key], if present. *)

val set_tag : string -> string -> t -> t
(** Sets a tagged value, replacing any previous binding of the key. *)

val remove_tag : string -> t -> t

val with_name : string -> t -> t
(** Renames the element. *)

val with_kind : Kind.t -> t -> t
(** Replaces the kind payload (the id, name, owner are preserved). *)

val metaclass : t -> string
(** The metaclass name of the element, see {!Kind.name}. *)

val equal : t -> t -> bool
(** Structural equality, including stereotypes and tags. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering: [<<stereotypes>> Metaclass name (id)]. *)
