type t = int

let of_int n = n
let to_int id = id
let to_string id = "e" ^ string_of_int id

let of_string s =
  let len = String.length s in
  if len < 2 || s.[0] <> 'e' then None
  else
    match int_of_string_opt (String.sub s 1 (len - 1)) with
    | Some n when n >= 0 -> Some n
    | Some _ | None -> None

let equal = Int.equal
let compare = Int.compare
let hash id = id
let pp ppf id = Format.pp_print_string ppf (to_string id)

module Map = Map.Make (Int)
module Set = Set.Make (Int)
