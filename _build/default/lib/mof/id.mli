(** Opaque identifiers for model elements.

    Every element stored in a {!Model.t} carries a unique identifier. Ids are
    allocated by the model store itself ({!Model.fresh_id}); they are stable
    across transformations, which makes them suitable as keys in traces,
    diffs, and XMI serializations. *)

type t
(** The type of element identifiers. *)

val of_int : int -> t
(** [of_int n] is the identifier with ordinal [n]. Intended for the model
    store and the XMI importer; user code should obtain ids from
    {!Model.fresh_id} or from queries. *)

val to_int : t -> int
(** [to_int id] is the ordinal backing [id]. *)

val to_string : t -> string
(** [to_string id] renders [id] as ["e<n>"], the form used in XMI files. *)

val of_string : string -> t option
(** [of_string s] parses the ["e<n>"] form produced by {!to_string}. *)

val equal : t -> t -> bool
(** Structural equality on identifiers. *)

val compare : t -> t -> int
(** Total order on identifiers, by ordinal. *)

val hash : t -> int
(** Hash compatible with {!equal}. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer, same output as {!to_string}. *)

module Map : Map.S with type key = t
(** Maps keyed by identifiers. *)

module Set : Set.S with type elt = t
(** Sets of identifiers. *)
