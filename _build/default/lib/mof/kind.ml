type visibility =
  | Public
  | Private
  | Protected
  | Package_level

let visibility_to_string = function
  | Public -> "public"
  | Private -> "private"
  | Protected -> "protected"
  | Package_level -> "package"

let visibility_of_string = function
  | "public" -> Some Public
  | "private" -> Some Private
  | "protected" -> Some Protected
  | "package" -> Some Package_level
  | _ -> None

type multiplicity = {
  lower : int;
  upper : int option;
}

let mult_one = { lower = 1; upper = Some 1 }
let mult_opt = { lower = 0; upper = Some 1 }
let mult_many = { lower = 0; upper = None }
let mult_some = { lower = 1; upper = None }

let mult_to_string m =
  match m.upper with
  | None -> if m.lower = 0 then "0..*" else string_of_int m.lower ^ "..*"
  | Some u ->
      if m.lower = u then string_of_int u
      else string_of_int m.lower ^ ".." ^ string_of_int u

let mult_of_string s =
  let bound b = if b = "*" then Some None else Option.map Option.some (int_of_string_opt b) in
  match String.index_opt s '.' with
  | None ->
      if s = "*" then Some mult_many
      else
        Option.map (fun n -> { lower = n; upper = Some n }) (int_of_string_opt s)
  | Some i ->
      if i + 1 >= String.length s || s.[i + 1] <> '.' then None
      else
        let lo = String.sub s 0 i in
        let hi = String.sub s (i + 2) (String.length s - i - 2) in
        (match (int_of_string_opt lo, bound hi) with
        | Some lower, Some upper -> Some { lower; upper }
        | _, _ -> None)

let mult_valid m =
  m.lower >= 0
  &&
  match m.upper with
  | None -> true
  | Some u -> u >= m.lower

type datatype =
  | Dt_void
  | Dt_boolean
  | Dt_integer
  | Dt_real
  | Dt_string
  | Dt_ref of Id.t
  | Dt_collection of datatype

let rec datatype_refs = function
  | Dt_void | Dt_boolean | Dt_integer | Dt_real | Dt_string -> []
  | Dt_ref id -> [ id ]
  | Dt_collection dt -> datatype_refs dt

type direction =
  | Dir_in
  | Dir_out
  | Dir_inout
  | Dir_return

let direction_to_string = function
  | Dir_in -> "in"
  | Dir_out -> "out"
  | Dir_inout -> "inout"
  | Dir_return -> "return"

let direction_of_string = function
  | "in" -> Some Dir_in
  | "out" -> Some Dir_out
  | "inout" -> Some Dir_inout
  | "return" -> Some Dir_return
  | _ -> None

type aggregation =
  | Ag_none
  | Ag_shared
  | Ag_composite

let aggregation_to_string = function
  | Ag_none -> "none"
  | Ag_shared -> "shared"
  | Ag_composite -> "composite"

let aggregation_of_string = function
  | "none" -> Some Ag_none
  | "shared" -> Some Ag_shared
  | "composite" -> Some Ag_composite
  | _ -> None

type assoc_end = {
  end_name : string;
  end_type : Id.t;
  end_mult : multiplicity;
  end_navigable : bool;
  end_aggregation : aggregation;
}

type class_payload = {
  is_abstract : bool;
  attributes : Id.t list;
  operations : Id.t list;
  supers : Id.t list;
  realizes : Id.t list;
}

type t =
  | Package of { owned : Id.t list }
  | Class of class_payload
  | Interface of { operations : Id.t list }
  | Attribute of {
      attr_type : datatype;
      attr_visibility : visibility;
      attr_mult : multiplicity;
      is_derived : bool;
      is_static : bool;
      initial_value : string option;
    }
  | Operation of {
      params : Id.t list;
      op_visibility : visibility;
      is_query : bool;
      is_abstract_op : bool;
      is_static_op : bool;
    }
  | Parameter of {
      param_type : datatype;
      direction : direction;
    }
  | Association of { ends : assoc_end list }
  | Generalization of { child : Id.t; parent : Id.t }
  | Dependency of { client : Id.t; supplier : Id.t }
  | Constraint_ of {
      constrained : Id.t list;
      body : string;
      language : string;
    }
  | Enumeration of { literals : string list }

let name = function
  | Package _ -> "Package"
  | Class _ -> "Class"
  | Interface _ -> "Interface"
  | Attribute _ -> "Attribute"
  | Operation _ -> "Operation"
  | Parameter _ -> "Parameter"
  | Association _ -> "Association"
  | Generalization _ -> "Generalization"
  | Dependency _ -> "Dependency"
  | Constraint_ _ -> "Constraint"
  | Enumeration _ -> "Enumeration"

let all_names =
  [
    "Package";
    "Class";
    "Interface";
    "Attribute";
    "Operation";
    "Parameter";
    "Association";
    "Generalization";
    "Dependency";
    "Constraint";
    "Enumeration";
  ]

let refs = function
  | Package { owned } -> owned
  | Class { attributes; operations; supers; realizes; _ } ->
      attributes @ operations @ supers @ realizes
  | Interface { operations } -> operations
  | Attribute { attr_type; _ } -> datatype_refs attr_type
  | Operation { params; _ } -> params
  | Parameter { param_type; _ } -> datatype_refs param_type
  | Association { ends } -> List.map (fun e -> e.end_type) ends
  | Generalization { child; parent } -> [ child; parent ]
  | Dependency { client; supplier } -> [ client; supplier ]
  | Constraint_ { constrained; _ } -> constrained
  | Enumeration _ -> []

let equal (a : t) (b : t) = a = b
