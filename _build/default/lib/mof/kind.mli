(** Element kinds of the UML-core metamodel.

    The metamodel covers the class-diagram subset of UML 1.4 that the paper's
    concern-oriented transformations act upon: packages, classifiers
    (classes, interfaces), structural features (attributes), behavioural
    features (operations with parameters), relationships (associations,
    generalizations, dependencies), and constraints. Stereotypes and tagged
    values live on {!Element.t} rather than here, since any element kind may
    carry them. *)

(** Visibility of a feature or classifier. *)
type visibility =
  | Public
  | Private
  | Protected
  | Package_level

val visibility_to_string : visibility -> string
(** Lower-case UML keyword for a visibility, e.g. ["public"]. *)

val visibility_of_string : string -> visibility option
(** Inverse of {!visibility_to_string}. *)

(** Multiplicity of a feature or association end: [lower .. upper], where
    [upper = None] denotes the unbounded ["*"]. *)
type multiplicity = {
  lower : int;
  upper : int option;
}

val mult_one : multiplicity
(** Exactly one: [1..1]. *)

val mult_opt : multiplicity
(** Optional: [0..1]. *)

val mult_many : multiplicity
(** Any number: [0..*]. *)

val mult_some : multiplicity
(** At least one: [1..*]. *)

val mult_to_string : multiplicity -> string
(** UML surface syntax, e.g. ["0..*"] or ["1"]. *)

val mult_of_string : string -> multiplicity option
(** Inverse of {!mult_to_string}; also accepts the shorthand ["*"]. *)

val mult_valid : multiplicity -> bool
(** A multiplicity is valid when [0 <= lower] and [lower <= upper]. *)

(** Types of attributes, parameters, and operation results. [Dt_ref]
    references a classifier by id; [Dt_collection] is a homogeneous
    unordered collection. *)
type datatype =
  | Dt_void
  | Dt_boolean
  | Dt_integer
  | Dt_real
  | Dt_string
  | Dt_ref of Id.t
  | Dt_collection of datatype

val datatype_refs : datatype -> Id.t list
(** All classifier ids referenced by a datatype, outermost first. *)

(** Direction of an operation parameter. The operation result is modelled as
    a parameter with direction [Dir_return]. *)
type direction =
  | Dir_in
  | Dir_out
  | Dir_inout
  | Dir_return

val direction_to_string : direction -> string
val direction_of_string : string -> direction option

(** Aggregation of an association end. *)
type aggregation =
  | Ag_none
  | Ag_shared
  | Ag_composite

val aggregation_to_string : aggregation -> string
val aggregation_of_string : string -> aggregation option

(** One end of an association: the classifier it touches, its role name,
    multiplicity, navigability, and aggregation. *)
type assoc_end = {
  end_name : string;
  end_type : Id.t;
  end_mult : multiplicity;
  end_navigable : bool;
  end_aggregation : aggregation;
}

(** Payload of a class: named so that queries and transformations can pass
    it around (inline records cannot escape their match). Containment lists
    hold ids of child elements whose [owner] field points back; {!Builder}
    maintains this bidirectional consistency and {!Wellformed} checks it. *)
type class_payload = {
  is_abstract : bool;
  attributes : Id.t list;
  operations : Id.t list;
  supers : Id.t list;  (** ids of superclasses *)
  realizes : Id.t list;  (** ids of realized interfaces *)
}

type t =
  | Package of { owned : Id.t list }
  | Class of class_payload
  | Interface of { operations : Id.t list }
  | Attribute of {
      attr_type : datatype;
      attr_visibility : visibility;
      attr_mult : multiplicity;
      is_derived : bool;
      is_static : bool;
      initial_value : string option;
    }
  | Operation of {
      params : Id.t list;
      op_visibility : visibility;
      is_query : bool;
      is_abstract_op : bool;
      is_static_op : bool;
    }
  | Parameter of {
      param_type : datatype;
      direction : direction;
    }
  | Association of { ends : assoc_end list }
  | Generalization of { child : Id.t; parent : Id.t }
  | Dependency of { client : Id.t; supplier : Id.t }
  | Constraint_ of {
      constrained : Id.t list;
      body : string;  (** constraint text, in [language] *)
      language : string;  (** e.g. ["OCL"] *)
    }
  | Enumeration of { literals : string list }
      (** a closed value type; literals are plain names, not elements *)

val name : t -> string
(** Metaclass name of a kind, e.g. ["Class"], ["Attribute"]. These names are
    the classifier names visible to OCL ([Class.allInstances()], …) and the
    XMI tag names. *)

val all_names : string list
(** Every metaclass name, in a fixed order. *)

val refs : t -> Id.t list
(** Every id mentioned by the kind payload (children and cross-references);
    used by well-formedness checking and diffing. *)

val equal : t -> t -> bool
(** Structural equality of kind payloads. *)
