type t = {
  store : Element.t Id.Map.t;
  root : Id.t;
  next : int;
}

exception Element_not_found of Id.t

let create ~name =
  let root = Id.of_int 0 in
  let root_elt =
    Element.make ~id:root ~name ~owner:None (Kind.Package { owned = [] })
  in
  { store = Id.Map.singleton root root_elt; root; next = 1 }

let root m = m.root

let of_elements ~root ~next elements =
  let store =
    List.fold_left
      (fun store e ->
        let id = e.Element.id in
        if Id.Map.mem id store then
          invalid_arg ("Mof.Model.of_elements: duplicate id " ^ Id.to_string id)
        else if Id.to_int id >= next then
          invalid_arg
            ("Mof.Model.of_elements: id " ^ Id.to_string id
           ^ " exceeds the next-id counter")
        else Id.Map.add id e store)
      Id.Map.empty elements
  in
  if not (Id.Map.mem root store) then
    invalid_arg "Mof.Model.of_elements: root element missing";
  { store; root; next }

let find m id = Id.Map.find_opt id m.store

let find_exn m id =
  match find m id with
  | Some e -> e
  | None -> raise (Element_not_found id)

let name m = (find_exn m m.root).Element.name
let level_tag m = Element.tag "level" (find_exn m m.root)

let mem m id = Id.Map.mem id m.store

let fresh_id m = ({ m with next = m.next + 1 }, Id.of_int m.next)

let add m e =
  let id = e.Element.id in
  if mem m id then
    invalid_arg ("Mof.Model.add: duplicate id " ^ Id.to_string id)
  else { m with store = Id.Map.add id e m.store }

let update m id f =
  let e = find_exn m id in
  { m with store = Id.Map.add id (f e) m.store }

let set_level_tag level m = update m m.root (Element.set_tag "level" level)

let remove m id = { m with store = Id.Map.remove id m.store }

let fold f m init = Id.Map.fold (fun _ e acc -> f e acc) m.store init
let iter f m = Id.Map.iter (fun _ e -> f e) m.store
let elements m = List.map snd (Id.Map.bindings m.store)
let size m = Id.Map.cardinal m.store
let filter p m = List.filter p (elements m)

let equal a b = Id.equal a.root b.root && Id.Map.equal Element.equal a.store b.store
