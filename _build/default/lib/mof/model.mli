(** The model store: an immutable, id-indexed collection of elements with a
    distinguished root package.

    Models are persistent values — every update returns a new model — which
    is what makes transformation traces, repository versions, and undo/redo
    cheap and safe. Fresh ids are drawn from a counter carried by the model
    itself, so transformations are deterministic. *)

type t
(** The type of models. *)

exception Element_not_found of Id.t
(** Raised by the [_exn] accessors. *)

val create : name:string -> t
(** [create ~name] is a model holding a single root package called [name]. *)

val of_elements : root:Id.t -> next:int -> Element.t list -> t
(** Reconstructs a model from a previously serialized element population
    (used by the XMI importer). [next] must exceed every bound id; the
    element list must contain [root]. Raises [Invalid_argument] otherwise,
    or on duplicate ids. *)

val name : t -> string
(** The model name (the root package's name). *)

val root : t -> Id.t
(** Id of the root package. *)

val level_tag : t -> string option
(** The abstraction level recorded on the root package ("PIM", "PSM", …),
    if any; see {!set_level_tag}. *)

val set_level_tag : string -> t -> t
(** Records the abstraction level on the root package. *)

val fresh_id : t -> t * Id.t
(** Allocates a fresh element id. *)

val add : t -> Element.t -> t
(** [add m e] stores [e]. Raises [Invalid_argument] if [e.id] is already
    bound — elements are inserted once and then {!update}d. *)

val mem : t -> Id.t -> bool
val find : t -> Id.t -> Element.t option
val find_exn : t -> Id.t -> Element.t

val update : t -> Id.t -> (Element.t -> Element.t) -> t
(** [update m id f] replaces the element bound to [id] by [f] applied to it.
    @raise Element_not_found if [id] is unbound. *)

val remove : t -> Id.t -> t
(** Removes the binding for [id] (and only that binding; callers are
    responsible for unlinking references, cf. {!Builder.delete_element}). *)

val fold : (Element.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over all elements in id order. *)

val iter : (Element.t -> unit) -> t -> unit
val elements : t -> Element.t list
(** All elements, in id order. *)

val size : t -> int
(** Number of elements. *)

val filter : (Element.t -> bool) -> t -> Element.t list

val equal : t -> t -> bool
(** Structural equality of the element populations and roots (the id counter
    is ignored, so a model equals itself after a no-op transformation). *)
