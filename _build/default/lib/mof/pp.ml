let rec datatype m ppf = function
  | Kind.Dt_void -> Format.pp_print_string ppf "void"
  | Kind.Dt_boolean -> Format.pp_print_string ppf "Boolean"
  | Kind.Dt_integer -> Format.pp_print_string ppf "Integer"
  | Kind.Dt_real -> Format.pp_print_string ppf "Real"
  | Kind.Dt_string -> Format.pp_print_string ppf "String"
  | Kind.Dt_ref id -> (
      match Model.find m id with
      | Some e -> Format.pp_print_string ppf e.Element.name
      | None -> Format.fprintf ppf "?%s" (Id.to_string id))
  | Kind.Dt_collection dt -> Format.fprintf ppf "Set(%a)" (datatype m) dt

let stereotypes ppf = function
  | [] -> ()
  | ss -> Format.fprintf ppf "<<%s>> " (String.concat ", " ss)

let visibility_mark = function
  | Kind.Public -> "+"
  | Kind.Private -> "-"
  | Kind.Protected -> "#"
  | Kind.Package_level -> "~"

let attribute m ppf e =
  match e.Element.kind with
  | Kind.Attribute a ->
      Format.fprintf ppf "%s%a%s : %a [%s]%s"
        (visibility_mark a.attr_visibility)
        stereotypes e.Element.stereotypes e.Element.name (datatype m)
        a.attr_type
        (Kind.mult_to_string a.attr_mult)
        (match a.initial_value with None -> "" | Some v -> " = " ^ v)
  | _ -> ()

let operation m ppf e =
  match e.Element.kind with
  | Kind.Operation o ->
      let params = Query.parameters_of m e.Element.id in
      let pp_param ppf p =
        match p.Element.kind with
        | Kind.Parameter pk ->
            Format.fprintf ppf "%s %s : %a"
              (Kind.direction_to_string pk.direction)
              p.Element.name (datatype m) pk.param_type
        | _ -> ()
      in
      Format.fprintf ppf "%s%a%s(%a) : %a%s"
        (visibility_mark o.op_visibility)
        stereotypes e.Element.stereotypes e.Element.name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_param)
        params (datatype m)
        (Query.result_of m e.Element.id)
        (if o.is_query then " {query}" else "")
  | _ -> ()

let element m ppf e =
  match e.Element.kind with
  | Kind.Attribute _ -> attribute m ppf e
  | Kind.Operation _ -> operation m ppf e
  | Kind.Generalization { child; parent } ->
      Format.fprintf ppf "generalization %s --|> %s"
        (Model.find_exn m child).Element.name
        (Model.find_exn m parent).Element.name
  | Kind.Dependency { client; supplier } ->
      Format.fprintf ppf "%adependency %s ..> %s" stereotypes
        e.Element.stereotypes
        (Model.find_exn m client).Element.name
        (Model.find_exn m supplier).Element.name
  | Kind.Constraint_ { body; language; _ } ->
      Format.fprintf ppf "constraint %s {%s} %s" e.Element.name language body
  | Kind.Association { ends } ->
      let pp_end ppf (en : Kind.assoc_end) =
        Format.fprintf ppf "%s:%s[%s]" en.end_name
          (match Model.find m en.end_type with
          | Some t -> t.Element.name
          | None -> "?")
          (Kind.mult_to_string en.end_mult)
      in
      Format.fprintf ppf "association %s (%a)" e.Element.name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -- ")
           pp_end)
        ends
  | Kind.Enumeration { literals } ->
      Format.fprintf ppf "%aenum %s {%s}" stereotypes e.Element.stereotypes
        e.Element.name
        (String.concat ", " literals)
  | Kind.Package _ | Kind.Class _ | Kind.Interface _ | Kind.Parameter _ ->
      Format.fprintf ppf "%a%s %s" stereotypes e.Element.stereotypes
        (Element.metaclass e) e.Element.name

let model ppf m =
  let rec walk indent id =
    let e = Model.find_exn m id in
    let pad = String.make indent ' ' in
    (match e.Element.kind with
    | Kind.Package _ ->
        Format.fprintf ppf "%s%apackage %s@." pad stereotypes
          e.Element.stereotypes e.Element.name;
        List.iter
          (fun c -> walk (indent + 2) c.Element.id)
          (Query.owned_of m id)
    | Kind.Class c ->
        Format.fprintf ppf "%s%a%sclass %s%s@." pad stereotypes
          e.Element.stereotypes
          (if c.is_abstract then "abstract " else "")
          e.Element.name
          (let supers =
             List.map (fun s -> (Model.find_exn m s).Element.name) c.supers
           and ifaces =
             List.map (fun i -> (Model.find_exn m i).Element.name) c.realizes
           in
           let exts =
             (if supers = [] then []
              else [ "extends " ^ String.concat ", " supers ])
             @
             if ifaces = [] then []
             else [ "implements " ^ String.concat ", " ifaces ]
           in
           if exts = [] then "" else " " ^ String.concat " " exts);
        List.iter
          (fun a -> Format.fprintf ppf "%s  %a@." pad (attribute m) a)
          (Query.attributes_of m id);
        List.iter
          (fun o -> Format.fprintf ppf "%s  %a@." pad (operation m) o)
          (Query.operations_of m id)
    | Kind.Interface _ ->
        Format.fprintf ppf "%s%ainterface %s@." pad stereotypes
          e.Element.stereotypes e.Element.name;
        List.iter
          (fun o -> Format.fprintf ppf "%s  %a@." pad (operation m) o)
          (Query.operations_of m id)
    | Kind.Attribute _ | Kind.Operation _ | Kind.Parameter _ ->
        (* rendered by their owner *)
        ()
    | Kind.Association _ | Kind.Generalization _ | Kind.Dependency _
    | Kind.Constraint_ _ | Kind.Enumeration _ ->
        Format.fprintf ppf "%s%a@." pad (element m) e)
  in
  walk 0 (Model.root m)

let model_to_string m = Format.asprintf "%a" model m
