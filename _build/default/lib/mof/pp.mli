(** Human-readable rendering of models as indented trees. *)

val datatype : Model.t -> Format.formatter -> Kind.datatype -> unit
(** Renders a datatype using classifier names, e.g. ["Account"] for a
    [Dt_ref], ["Set(Integer)"] for a collection. *)

val element : Model.t -> Format.formatter -> Element.t -> unit
(** Renders one element with its features, without recursing into owned
    packages/classes. *)

val model : Format.formatter -> Model.t -> unit
(** Renders a whole model as an indented containment tree. *)

val model_to_string : Model.t -> string
