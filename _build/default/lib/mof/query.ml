let of_metaclass m mc =
  Model.filter (fun e -> String.equal (Element.metaclass e) mc) m

let classes m = of_metaclass m "Class"
let interfaces m = of_metaclass m "Interface"
let packages m = of_metaclass m "Package"
let associations m = of_metaclass m "Association"
let enumerations m = of_metaclass m "Enumeration"
let constraints m = of_metaclass m "Constraint"

let resolve_all m ids = List.map (Model.find_exn m) ids

let attributes_of m id =
  match (Model.find_exn m id).Element.kind with
  | Kind.Class c -> resolve_all m c.attributes
  | _ -> []

let operations_of m id =
  match (Model.find_exn m id).Element.kind with
  | Kind.Class c -> resolve_all m c.operations
  | Kind.Interface { operations } -> resolve_all m operations
  | _ -> []

let all_parameters_of m id =
  match (Model.find_exn m id).Element.kind with
  | Kind.Operation o -> resolve_all m o.params
  | _ -> []

let is_return e =
  match e.Element.kind with
  | Kind.Parameter { direction = Kind.Dir_return; _ } -> true
  | _ -> false

let parameters_of m id =
  List.filter (fun p -> not (is_return p)) (all_parameters_of m id)

let result_of m id =
  match List.find_opt is_return (all_parameters_of m id) with
  | Some { Element.kind = Kind.Parameter { param_type; _ }; _ } -> param_type
  | Some _ | None -> Kind.Dt_void

let public_operations_of m id =
  let is_public e =
    match e.Element.kind with
    | Kind.Operation { op_visibility = Kind.Public; _ } -> true
    | _ -> false
  in
  List.filter is_public (operations_of m id)

let owned_of m id =
  match (Model.find_exn m id).Element.kind with
  | Kind.Package { owned } -> resolve_all m owned
  | _ -> []

let supers_of m id =
  match (Model.find_exn m id).Element.kind with
  | Kind.Class c -> c.supers
  | _ -> []

let supers_transitive m id =
  (* not seeded with [id]: when an inheritance cycle passes through [id],
     the class appears in its own closure, which is what {!Wellformed}
     detects *)
  let rec walk seen queue =
    match queue with
    | [] -> []
    | c :: rest ->
        if Id.Set.mem c seen then walk seen rest
        else c :: walk (Id.Set.add c seen) (rest @ supers_of m c)
  in
  walk Id.Set.empty (supers_of m id)

let realizations_of m id =
  match (Model.find_exn m id).Element.kind with
  | Kind.Class c -> c.realizes
  | _ -> []

let realizers_of m iface =
  List.filter
    (fun e -> List.exists (Id.equal iface) (realizations_of m e.Element.id))
    (classes m)

let owner_chain m id =
  (* nearest owner first *)
  let rec walk acc id =
    match (Model.find_exn m id).Element.owner with
    | None -> List.rev acc
    | Some o -> walk (o :: acc) o
  in
  walk [] id

let qualified_name m id =
  let e = Model.find_exn m id in
  if Id.equal id (Model.root m) then e.Element.name
  else
    let chain = List.rev (owner_chain m id) in
    let chain = List.filter (fun o -> not (Id.equal o (Model.root m))) chain in
    let names = List.map (fun o -> (Model.find_exn m o).Element.name) chain in
    String.concat "." (names @ [ e.Element.name ])

let find_by_qualified_name m qname =
  List.find_opt
    (fun e -> String.equal (qualified_name m e.Element.id) qname)
    (Model.elements m)

let find_named m name =
  Model.filter (fun e -> String.equal e.Element.name name) m

let find_class m name =
  List.find_opt (fun e -> String.equal e.Element.name name) (classes m)

let with_stereotype m s = Model.filter (Element.has_stereotype s) m

let containing_class m id =
  let is_class o =
    match (Model.find_exn m o).Element.kind with
    | Kind.Class _ -> true
    | _ -> false
  in
  List.find_opt is_class (owner_chain m id)
