lib/ocl/ast.ml: Format List String
