lib/ocl/ast.mli: Format
