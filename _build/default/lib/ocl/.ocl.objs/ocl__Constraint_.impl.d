lib/ocl/constraint_.ml: Buffer Env Eval Format List Meta Mof Parser Printf String Value
