lib/ocl/constraint_.mli: Format Mof
