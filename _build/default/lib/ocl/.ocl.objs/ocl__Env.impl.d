lib/ocl/env.ml: List Value
