lib/ocl/env.mli: Value
