lib/ocl/eval.ml: Ast Env Float Format Int List Meta Mof Parser String Value
