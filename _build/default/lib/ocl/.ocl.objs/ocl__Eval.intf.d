lib/ocl/eval.mli: Ast Env Mof Value
