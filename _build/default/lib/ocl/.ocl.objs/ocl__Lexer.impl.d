lib/ocl/lexer.ml: Buffer Format List String Token
