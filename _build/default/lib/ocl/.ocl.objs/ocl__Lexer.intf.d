lib/ocl/lexer.mli: Token
