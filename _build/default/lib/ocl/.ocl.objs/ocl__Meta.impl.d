lib/ocl/meta.ml: Format List Mof String Value
