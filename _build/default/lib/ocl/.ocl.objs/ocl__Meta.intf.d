lib/ocl/meta.mli: Mof Value
