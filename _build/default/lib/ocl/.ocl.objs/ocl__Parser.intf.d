lib/ocl/parser.mli: Ast
