lib/ocl/token.ml:
