lib/ocl/token.mli:
