lib/ocl/typecheck.ml: Ast Format List Meta Mof Parser String
