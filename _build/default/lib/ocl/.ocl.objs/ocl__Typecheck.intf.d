lib/ocl/typecheck.mli: Ast Format
