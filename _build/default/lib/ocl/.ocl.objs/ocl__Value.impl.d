lib/ocl/value.ml: Bool Float Format Int List Mof String
