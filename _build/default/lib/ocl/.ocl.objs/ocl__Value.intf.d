lib/ocl/value.mli: Format Mof
