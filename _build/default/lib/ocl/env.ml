type t = {
  bindings : (string * Value.t) list;
  self_value : Value.t option;
}

let empty = { bindings = []; self_value = None }
let with_self v env = { env with self_value = Some v }
let self env = env.self_value
let bind name v env = { env with bindings = (name, v) :: env.bindings }
let lookup name env = List.assoc_opt name env.bindings
let of_bindings bindings = { bindings; self_value = None }
