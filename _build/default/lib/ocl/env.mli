(** Evaluation environments: variable bindings plus the optional [self]. *)

type t

val empty : t
(** No bindings, no [self]. *)

val with_self : Value.t -> t -> t
(** Sets the value of [self]. *)

val self : t -> Value.t option

val bind : string -> Value.t -> t -> t
(** Binds a variable, shadowing any previous binding. *)

val lookup : string -> t -> Value.t option

val of_bindings : (string * Value.t) list -> t
(** Environment from an association list (no [self]). *)
