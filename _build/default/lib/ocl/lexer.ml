exception Lexical_error of string * int

let error pos fmt = Format.kasprintf (fun s -> raise (Lexical_error (s, pos))) fmt

let keyword_of_ident = function
  | "self" -> Some Token.Kw_self
  | "if" -> Some Token.Kw_if
  | "then" -> Some Token.Kw_then
  | "else" -> Some Token.Kw_else
  | "endif" -> Some Token.Kw_endif
  | "let" -> Some Token.Kw_let
  | "in" -> Some Token.Kw_in
  | "not" -> Some Token.Kw_not
  | "and" -> Some Token.Kw_and
  | "or" -> Some Token.Kw_or
  | "xor" -> Some Token.Kw_xor
  | "implies" -> Some Token.Kw_implies
  | "true" -> Some Token.Kw_true
  | "false" -> Some Token.Kw_false
  | "div" -> Some Token.Kw_div
  | "mod" -> Some Token.Kw_mod
  | _ -> None

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c || c = '$'

let tokenize src =
  let len = String.length src in
  let tokens = ref [] in
  let emit pos token = tokens := { Token.token; pos } :: !tokens in
  let rec scan i =
    if i >= len then emit i Token.Eof
    else
      let c = src.[i] in
      match c with
      | ' ' | '\t' | '\n' | '\r' -> scan (i + 1)
      | '-' when i + 1 < len && src.[i + 1] = '-' ->
          (* comment to end of line *)
          let rec skip j = if j < len && src.[j] <> '\n' then skip (j + 1) else j in
          scan (skip (i + 2))
      | '-' when i + 1 < len && src.[i + 1] = '>' ->
          emit i Token.Arrow;
          scan (i + 2)
      | '-' ->
          emit i Token.Minus;
          scan (i + 1)
      | '.' when i + 1 < len && is_digit src.[i + 1] ->
          scan_number i
      | '.' ->
          emit i Token.Dot;
          scan (i + 1)
      | ',' ->
          emit i Token.Comma;
          scan (i + 1)
      | ';' ->
          emit i Token.Semicolon;
          scan (i + 1)
      | ':' ->
          emit i Token.Colon;
          scan (i + 1)
      | '|' ->
          emit i Token.Pipe;
          scan (i + 1)
      | '(' ->
          emit i Token.Lparen;
          scan (i + 1)
      | ')' ->
          emit i Token.Rparen;
          scan (i + 1)
      | '{' ->
          emit i Token.Lbrace;
          scan (i + 1)
      | '}' ->
          emit i Token.Rbrace;
          scan (i + 1)
      | '=' ->
          emit i Token.Eq;
          scan (i + 1)
      | '<' when i + 1 < len && src.[i + 1] = '>' ->
          emit i Token.Neq;
          scan (i + 2)
      | '<' when i + 1 < len && src.[i + 1] = '=' ->
          emit i Token.Le;
          scan (i + 2)
      | '<' ->
          emit i Token.Lt;
          scan (i + 1)
      | '>' when i + 1 < len && src.[i + 1] = '=' ->
          emit i Token.Ge;
          scan (i + 2)
      | '>' ->
          emit i Token.Gt;
          scan (i + 1)
      | '+' ->
          emit i Token.Plus;
          scan (i + 1)
      | '*' ->
          emit i Token.Star;
          scan (i + 1)
      | '/' ->
          emit i Token.Slash;
          scan (i + 1)
      | '\'' -> scan_string i
      | c when is_digit c -> scan_number i
      | c when is_ident_start c -> scan_ident i
      | c -> error i "unexpected character %C" c
  and scan_number start =
    let rec digits j = if j < len && is_digit src.[j] then digits (j + 1) else j in
    let int_end = digits start in
    let is_real =
      int_end + 1 < len && src.[int_end] = '.' && is_digit src.[int_end + 1]
    in
    if is_real then begin
      let frac_end = digits (int_end + 1) in
      let text = String.sub src start (frac_end - start) in
      match float_of_string_opt text with
      | Some f ->
          emit start (Token.Real f);
          scan frac_end
      | None -> error start "malformed real literal %s" text
    end
    else begin
      let text = String.sub src start (int_end - start) in
      match int_of_string_opt text with
      | Some n ->
          emit start (Token.Int n);
          scan int_end
      | None -> error start "malformed integer literal %s" text
    end
  and scan_string start =
    let buf = Buffer.create 16 in
    let rec walk j =
      if j >= len then error start "unterminated string literal"
      else if src.[j] = '\'' then
        if j + 1 < len && src.[j + 1] = '\'' then begin
          Buffer.add_char buf '\'';
          walk (j + 2)
        end
        else begin
          emit start (Token.String (Buffer.contents buf));
          scan (j + 1)
        end
      else begin
        Buffer.add_char buf src.[j];
        walk (j + 1)
      end
    in
    walk (start + 1)
  and scan_ident start =
    let rec walk j = if j < len && is_ident_char src.[j] then walk (j + 1) else j in
    let stop = walk start in
    let text = String.sub src start (stop - start) in
    (match keyword_of_ident text with
    | Some kw -> emit start kw
    | None -> emit start (Token.Ident text));
    scan stop
  in
  scan 0;
  List.rev !tokens
