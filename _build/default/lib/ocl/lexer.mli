(** Hand-written lexer for the OCL subset. *)

exception Lexical_error of string * int
(** [Lexical_error (message, offset)]. *)

val tokenize : string -> Token.located list
(** [tokenize src] is the token stream of [src], ending with {!Token.Eof}.
    Comments run from ["--"] to end of line. String literals are single
    quoted with [''] as the escaped quote.
    @raise Lexical_error on any malformed input. *)
