(** Reflection of the {!Mof} metamodel into the OCL object space.

    OCL pre/postconditions of model transformations constrain *models*, so
    the evaluator's object population is the set of model elements. This
    module defines the meta-properties each metaclass exposes (what
    [self.name], [self.attributes], … mean) and the classifier extents
    behind [Class.allInstances()]. *)

val property : Mof.Model.t -> Mof.Id.t -> string -> Value.t option
(** [property m id name] is the value of meta-property [name] on element
    [id], or [None] when the metaclass has no such property.

    Properties common to all metaclasses: [name], [qualifiedName],
    [metaclass], [stereotypes] (Set(String)), [tagKeys] (Set(String)),
    [owner] (Element or undefined).

    Per metaclass:
    - Package: [ownedElements]
    - Class: [attributes], [operations], [allOperations], [supers],
      [allSupers], [interfaces], [isAbstract]
    - Interface: [operations], [realizers]
    - Attribute: [type], [visibility], [lower], [upper] (-1 encodes "*"),
      [isDerived], [isStatic], [initial]
    - Operation: [parameters], [visibility], [isQuery], [isAbstract],
      [isStatic], [resultType], [class]
    - Parameter: [type], [direction]
    - Association: [endTypes], [endNames]
    - Generalization: [child], [parent]
    - Dependency: [client], [supplier]
    - Constraint: [body], [language], [constrained]
    - Enumeration: [literals] (Sequence(String)) *)

val operation :
  Mof.Model.t -> Mof.Id.t -> string -> Value.t list -> Value.t option
(** Meta-operations on elements: [hasStereotype(s)], [hasTag(k)], [tag(k)]
    (String or undefined). [None] when the name/arity is not a
    meta-operation. *)

val all_instances : Mof.Model.t -> string -> Value.t option
(** [all_instances m "Class"] is the Set of all class elements; ["Element"]
    yields every element. [None] for unknown classifier names. *)

val is_metaclass : string -> bool
(** Whether a name denotes a metaclass usable in [allInstances] and
    [oclIsKindOf]. ["Element"] is included. *)

val property_names : string -> string list
(** The meta-properties available on a metaclass (including the common
    ones); used by the typechecker. *)
