exception Parse_error of string * int

type state = {
  tokens : Token.located array;
  mutable cursor : int;
}

let peek st = st.tokens.(st.cursor)
let peek_token st = (peek st).Token.token
let advance st = st.cursor <- st.cursor + 1

let error st fmt =
  let pos = (peek st).Token.pos in
  Format.kasprintf (fun s -> raise (Parse_error (s, pos))) fmt

let expect st token =
  if peek_token st = token then advance st
  else
    error st "expected %s but found %s" (Token.to_string token)
      (Token.to_string (peek_token st))

let expect_ident st =
  match peek_token st with
  | Token.Ident name ->
      advance st;
      name
  | t -> error st "expected an identifier but found %s" (Token.to_string t)

(* Lookahead: does the parenthesised argument list starting at the current
   cursor (just after '(') contain a '|' at depth 1 — i.e. is this an
   iterator body rather than plain arguments? *)
let has_toplevel_pipe st =
  let rec scan i depth =
    if i >= Array.length st.tokens then false
    else
      match st.tokens.(i).Token.token with
      | Token.Lparen | Token.Lbrace -> scan (i + 1) (depth + 1)
      | Token.Rparen | Token.Rbrace ->
          if depth = 1 then false else scan (i + 1) (depth - 1)
      | Token.Pipe -> depth = 1 || scan (i + 1) depth
      | Token.Eof -> false
      | _ -> scan (i + 1) depth
  in
  scan st.cursor 1

let rec parse_expr st = parse_implies st

and parse_implies st =
  let lhs = parse_or st in
  if peek_token st = Token.Kw_implies then begin
    advance st;
    (* implies is right-associative *)
    Ast.E_binop (Ast.Op_implies, lhs, parse_implies st)
  end
  else lhs

and parse_or st =
  let rec loop lhs =
    match peek_token st with
    | Token.Kw_or ->
        advance st;
        loop (Ast.E_binop (Ast.Op_or, lhs, parse_and st))
    | Token.Kw_xor ->
        advance st;
        loop (Ast.E_binop (Ast.Op_xor, lhs, parse_and st))
    | _ -> lhs
  in
  loop (parse_and st)

and parse_and st =
  let rec loop lhs =
    if peek_token st = Token.Kw_and then begin
      advance st;
      loop (Ast.E_binop (Ast.Op_and, lhs, parse_rel st))
    end
    else lhs
  in
  loop (parse_rel st)

and parse_rel st =
  let lhs = parse_add st in
  let op =
    match peek_token st with
    | Token.Eq -> Some Ast.Op_eq
    | Token.Neq -> Some Ast.Op_neq
    | Token.Lt -> Some Ast.Op_lt
    | Token.Gt -> Some Ast.Op_gt
    | Token.Le -> Some Ast.Op_le
    | Token.Ge -> Some Ast.Op_ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      Ast.E_binop (op, lhs, parse_add st)

and parse_add st =
  let rec loop lhs =
    match peek_token st with
    | Token.Plus ->
        advance st;
        loop (Ast.E_binop (Ast.Op_add, lhs, parse_mul st))
    | Token.Minus ->
        advance st;
        loop (Ast.E_binop (Ast.Op_sub, lhs, parse_mul st))
    | _ -> lhs
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop lhs =
    match peek_token st with
    | Token.Star ->
        advance st;
        loop (Ast.E_binop (Ast.Op_mul, lhs, parse_unary st))
    | Token.Slash ->
        advance st;
        loop (Ast.E_binop (Ast.Op_div, lhs, parse_unary st))
    | Token.Kw_div ->
        advance st;
        loop (Ast.E_binop (Ast.Op_idiv, lhs, parse_unary st))
    | Token.Kw_mod ->
        advance st;
        loop (Ast.E_binop (Ast.Op_mod, lhs, parse_unary st))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  match peek_token st with
  | Token.Minus ->
      advance st;
      Ast.E_neg (parse_unary st)
  | Token.Kw_not ->
      advance st;
      Ast.E_not (parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec loop receiver =
    match peek_token st with
    | Token.Dot ->
        advance st;
        let name = expect_ident st in
        if peek_token st = Token.Lparen then begin
          advance st;
          let args = parse_args st in
          expect st Token.Rparen;
          loop (Ast.E_call (receiver, name, args))
        end
        else loop (Ast.E_prop (receiver, name))
    | Token.Arrow ->
        advance st;
        let name = expect_ident st in
        expect st Token.Lparen;
        let node =
          if String.equal name "iterate" then parse_iterate st receiver
          else if has_toplevel_pipe st then parse_iterator st receiver name
          else begin
            let args = parse_args st in
            Ast.E_coll_op (receiver, name, args)
          end
        in
        expect st Token.Rparen;
        loop node
    | _ -> receiver
  in
  loop (parse_primary st)

and parse_args st =
  if peek_token st = Token.Rparen then []
  else
    let rec loop acc =
      let e = parse_expr st in
      if peek_token st = Token.Comma then begin
        advance st;
        loop (e :: acc)
      end
      else List.rev (e :: acc)
    in
    loop []

and parse_iterator st receiver name =
  let rec vars acc =
    let v = expect_ident st in
    (* iterator variables may carry an ignored type annotation *)
    (if peek_token st = Token.Colon then begin
       advance st;
       ignore (parse_type_name st)
     end);
    if peek_token st = Token.Comma then begin
      advance st;
      vars (v :: acc)
    end
    else List.rev (v :: acc)
  in
  let vs = vars [] in
  expect st Token.Pipe;
  let body = parse_expr st in
  Ast.E_iter (receiver, name, vs, body)

and parse_iterate st receiver =
  let v = expect_ident st in
  (if peek_token st = Token.Colon then begin
     advance st;
     ignore (parse_type_name st)
   end);
  expect st Token.Semicolon;
  let acc = expect_ident st in
  (if peek_token st = Token.Colon then begin
     advance st;
     ignore (parse_type_name st)
   end);
  expect st Token.Eq;
  let init = parse_expr st in
  expect st Token.Pipe;
  let body = parse_expr st in
  Ast.E_iterate (receiver, v, acc, init, body)

and parse_type_name st =
  (* A type annotation: an identifier optionally applied to a type argument,
     e.g. [Integer], [Set(String)]. Only consumed, not recorded. *)
  let name = expect_ident st in
  if peek_token st = Token.Lparen then begin
    advance st;
    let inner = parse_type_name st in
    expect st Token.Rparen;
    name ^ "(" ^ inner ^ ")"
  end
  else name

and parse_primary st =
  match peek_token st with
  | Token.Int n ->
      advance st;
      Ast.E_int n
  | Token.Real f ->
      advance st;
      Ast.E_real f
  | Token.String s ->
      advance st;
      Ast.E_string s
  | Token.Kw_true ->
      advance st;
      Ast.E_bool true
  | Token.Kw_false ->
      advance st;
      Ast.E_bool false
  | Token.Kw_self ->
      advance st;
      Ast.E_self
  | Token.Lparen ->
      advance st;
      let e = parse_expr st in
      expect st Token.Rparen;
      e
  | Token.Kw_if ->
      advance st;
      let cond = parse_expr st in
      expect st Token.Kw_then;
      let then_ = parse_expr st in
      expect st Token.Kw_else;
      let else_ = parse_expr st in
      expect st Token.Kw_endif;
      Ast.E_if (cond, then_, else_)
  | Token.Kw_let ->
      advance st;
      let v = expect_ident st in
      (if peek_token st = Token.Colon then begin
         advance st;
         ignore (parse_type_name st)
       end);
      expect st Token.Eq;
      let bound = parse_expr st in
      expect st Token.Kw_in;
      let body = parse_expr st in
      Ast.E_let (v, bound, body)
  | Token.Ident name when is_collection_literal st name ->
      advance st;
      expect st Token.Lbrace;
      let items =
        if peek_token st = Token.Rbrace then []
        else
          let rec loop acc =
            let e = parse_expr st in
            if peek_token st = Token.Comma then begin
              advance st;
              loop (e :: acc)
            end
            else List.rev (e :: acc)
          in
          loop []
      in
      expect st Token.Rbrace;
      let kind =
        match name with
        | "Set" -> Ast.Ck_set
        | "Sequence" -> Ast.Ck_sequence
        | "Bag" -> Ast.Ck_bag
        | _ -> assert false
      in
      Ast.E_collection (kind, items)
  | Token.Ident name ->
      advance st;
      Ast.E_var name
  | t -> error st "unexpected %s" (Token.to_string t)

and is_collection_literal st name =
  (String.equal name "Set" || String.equal name "Sequence"
 || String.equal name "Bag")
  && st.cursor + 1 < Array.length st.tokens
  && st.tokens.(st.cursor + 1).Token.token = Token.Lbrace

let parse src =
  let tokens = Array.of_list (Lexer.tokenize src) in
  let st = { tokens; cursor = 0 } in
  let e = parse_expr st in
  if peek_token st <> Token.Eof then
    error st "trailing input starting with %s" (Token.to_string (peek_token st));
  e

let parse_opt src =
  match parse src with
  | e -> Ok e
  | exception Parse_error (msg, pos) ->
      Error (Printf.sprintf "parse error at offset %d: %s" pos msg)
  | exception Lexer.Lexical_error (msg, pos) ->
      Error (Printf.sprintf "lexical error at offset %d: %s" pos msg)
