(** Recursive-descent parser for the OCL subset.

    Grammar (low to high precedence): [implies] < [or]/[xor] < [and] <
    relational < additive < multiplicative < unary < postfix navigation
    ([.] and [->]). Iterator operations ([forAll], [select], …) take the
    [vars | body] form; [iterate] takes [v; acc = init | body]. *)

exception Parse_error of string * int
(** [Parse_error (message, offset)] with the 0-based offset in the source. *)

val parse : string -> Ast.t
(** Parses a complete expression; trailing input is an error.
    @raise Parse_error on syntax errors
    @raise Lexer.Lexical_error on lexical errors. *)

val parse_opt : string -> (Ast.t, string) result
(** Like {!parse}, but packaging lexical and syntax errors as
    [Error message]. *)
