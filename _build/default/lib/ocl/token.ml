type t =
  | Int of int
  | Real of float
  | String of string
  | Ident of string
  | Kw_self
  | Kw_if
  | Kw_then
  | Kw_else
  | Kw_endif
  | Kw_let
  | Kw_in
  | Kw_not
  | Kw_and
  | Kw_or
  | Kw_xor
  | Kw_implies
  | Kw_true
  | Kw_false
  | Kw_div
  | Kw_mod
  | Arrow
  | Dot
  | Comma
  | Semicolon
  | Colon
  | Pipe
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Eq
  | Neq
  | Lt
  | Gt
  | Le
  | Ge
  | Plus
  | Minus
  | Star
  | Slash
  | Eof

type located = {
  token : t;
  pos : int;
}

let to_string = function
  | Int n -> string_of_int n
  | Real f -> string_of_float f
  | String s -> "'" ^ s ^ "'"
  | Ident s -> s
  | Kw_self -> "self"
  | Kw_if -> "if"
  | Kw_then -> "then"
  | Kw_else -> "else"
  | Kw_endif -> "endif"
  | Kw_let -> "let"
  | Kw_in -> "in"
  | Kw_not -> "not"
  | Kw_and -> "and"
  | Kw_or -> "or"
  | Kw_xor -> "xor"
  | Kw_implies -> "implies"
  | Kw_true -> "true"
  | Kw_false -> "false"
  | Kw_div -> "div"
  | Kw_mod -> "mod"
  | Arrow -> "->"
  | Dot -> "."
  | Comma -> ","
  | Semicolon -> ";"
  | Colon -> ":"
  | Pipe -> "|"
  | Lparen -> "("
  | Rparen -> ")"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Eof -> "<eof>"
