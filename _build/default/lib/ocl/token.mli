(** Tokens of the OCL subset, with source positions for error reporting. *)

type t =
  | Int of int
  | Real of float
  | String of string  (** contents, quotes stripped, escapes resolved *)
  | Ident of string  (** identifiers and keywords other than the ones below *)
  | Kw_self
  | Kw_if
  | Kw_then
  | Kw_else
  | Kw_endif
  | Kw_let
  | Kw_in
  | Kw_not
  | Kw_and
  | Kw_or
  | Kw_xor
  | Kw_implies
  | Kw_true
  | Kw_false
  | Kw_div
  | Kw_mod
  | Arrow  (** [->] *)
  | Dot
  | Comma
  | Semicolon
  | Colon
  | Pipe
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Eq
  | Neq  (** [<>] *)
  | Lt
  | Gt
  | Le
  | Ge
  | Plus
  | Minus
  | Star
  | Slash
  | Eof

(** A token paired with the 0-based offset of its first character. *)
type located = {
  token : t;
  pos : int;
}

val to_string : t -> string
(** Surface rendering of a token, for error messages. *)
