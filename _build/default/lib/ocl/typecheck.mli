(** Static checking of OCL expressions.

    The checker infers a type for every sub-expression and reports
    diagnostics for definite errors — unbound variables, unknown
    meta-properties, operand-type mismatches — without rejecting dynamically
    fine programs: wherever the static knowledge runs out ([T_any]), the
    checker stays silent. Transformation authors run it on generic
    constraints at registration time so that configuration errors surface
    before any model is touched. *)

(** Static types. *)
type ty =
  | T_boolean
  | T_integer
  | T_real
  | T_string
  | T_element of string option  (** [Some mc] when the metaclass is known *)
  | T_set of ty
  | T_seq of ty
  | T_bag of ty
  | T_any

val ty_to_string : ty -> string

val conforms : ty -> ty -> bool
(** [conforms a b]: may a value of type [a] be used where [b] is expected?
    [T_integer] conforms to [T_real]; [T_any] conforms both ways; element
    types conform when equal or when the expected metaclass is unknown. *)

type diagnostic = {
  message : string;
  subject : string;  (** rendering of the offending sub-expression *)
}

val pp_diagnostic : Format.formatter -> diagnostic -> unit

val infer : ?self_type:string -> Ast.t -> ty * diagnostic list
(** [infer ~self_type e] types [e] with [self : T_element (Some self_type)].
    Diagnostics come back in source order. *)

val check_source : ?self_type:string -> string -> (ty * diagnostic list, string) result
(** Parse then infer; [Error] carries the parse/lex error message. *)

val well_typed : ?self_type:string -> string -> bool
(** [true] when the source parses and produces no diagnostics. *)
