type t =
  | V_bool of bool
  | V_int of int
  | V_real of float
  | V_string of string
  | V_elem of Mof.Id.t
  | V_set of t list
  | V_seq of t list
  | V_bag of t list
  | V_undefined

let tag_rank = function
  | V_undefined -> 0
  | V_bool _ -> 1
  | V_int _ | V_real _ -> 2
  | V_string _ -> 3
  | V_elem _ -> 4
  | V_set _ -> 5
  | V_seq _ -> 6
  | V_bag _ -> 7

let as_float = function
  | V_int n -> Some (float_of_int n)
  | V_real f -> Some f
  | _ -> None

let rec compare a b =
  match (as_float a, as_float b) with
  | Some x, Some y -> Float.compare x y
  | _, _ -> (
      let ra = tag_rank a and rb = tag_rank b in
      if ra <> rb then Int.compare ra rb
      else
        match (a, b) with
        | V_undefined, V_undefined -> 0
        | V_bool x, V_bool y -> Bool.compare x y
        | V_string x, V_string y -> String.compare x y
        | V_elem x, V_elem y -> Mof.Id.compare x y
        | V_set xs, V_set ys | V_seq xs, V_seq ys | V_bag xs, V_bag ys ->
            List.compare compare xs ys
        | _, _ -> assert false)

let equal a b = compare a b = 0

let sort_values items = List.sort compare items

let dedup items =
  let rec walk = function
    | [] -> []
    | [ x ] -> [ x ]
    | x :: (y :: _ as rest) -> if equal x y then walk rest else x :: walk rest
  in
  walk items

let set items = V_set (dedup (sort_values items))
let seq items = V_seq items
let bag items = V_bag (sort_values items)
let of_bool b = V_bool b
let of_string s = V_string s

let truth = function V_bool b -> Some b | _ -> None

let items = function
  | V_set xs | V_seq xs | V_bag xs -> Some xs
  | V_bool _ | V_int _ | V_real _ | V_string _ | V_elem _ | V_undefined -> None

let is_defined = function V_undefined -> false | _ -> true

let type_name = function
  | V_bool _ -> "Boolean"
  | V_int _ -> "Integer"
  | V_real _ -> "Real"
  | V_string _ -> "String"
  | V_elem _ -> "Element"
  | V_set _ -> "Set"
  | V_seq _ -> "Sequence"
  | V_bag _ -> "Bag"
  | V_undefined -> "OclUndefined"

let rec pp ppf v =
  let pp_items name xs =
    Format.fprintf ppf "%s{%a}" name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp)
      xs
  in
  match v with
  | V_bool b -> Format.pp_print_bool ppf b
  | V_int n -> Format.pp_print_int ppf n
  | V_real f -> Format.fprintf ppf "%g" f
  | V_string s -> Format.fprintf ppf "'%s'" s
  | V_elem id -> Format.fprintf ppf "@@%s" (Mof.Id.to_string id)
  | V_set xs -> pp_items "Set" xs
  | V_seq xs -> pp_items "Sequence" xs
  | V_bag xs -> pp_items "Bag" xs
  | V_undefined -> Format.pp_print_string ppf "OclUndefined"

let to_string v = Format.asprintf "%a" pp v
