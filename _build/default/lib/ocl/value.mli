(** Runtime values of the OCL evaluator.

    Numbers follow OCL's conformance rule: [Integer] conforms to [Real], so
    [1 = 1.0] holds and mixed arithmetic promotes to [Real]. Sets and bags
    are kept in canonical (sorted, for sets deduplicated) order so that
    structural equality is meaningful. [V_undefined] is OclUndefined and
    propagates through most operations. *)

type t =
  | V_bool of bool
  | V_int of int
  | V_real of float
  | V_string of string
  | V_elem of Mof.Id.t  (** a model element *)
  | V_set of t list  (** canonical: sorted, no duplicates *)
  | V_seq of t list
  | V_bag of t list  (** canonical: sorted *)
  | V_undefined

val compare : t -> t -> int
(** Total order used for canonicalisation; numerically coherent across
    [V_int]/[V_real]. *)

val equal : t -> t -> bool
(** OCL equality: numeric across int/real, structural elsewhere. *)

val set : t list -> t
(** [set items] is a canonical [V_set]. *)

val seq : t list -> t
val bag : t list -> t
(** [bag items] is a canonical [V_bag]. *)

val of_bool : bool -> t
val of_string : string -> t

val truth : t -> bool option
(** [truth v] is [Some b] for booleans and [None] otherwise (including
    undefined) — the three-valued-logic view of a value. *)

val items : t -> t list option
(** The elements of a collection value, [None] for scalars. *)

val is_defined : t -> bool

val type_name : t -> string
(** OCL type name of a value: ["Boolean"], ["Integer"], …, ["OclUndefined"].
    Elements answer ["Element"] (their metaclass is model-dependent). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
