lib/repository/commit.ml: Format Mof
