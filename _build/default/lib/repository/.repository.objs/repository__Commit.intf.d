lib/repository/commit.mli: Format Mof
