lib/repository/history.ml: Commit List Mof Repo String
