lib/repository/history.mli: Repo
