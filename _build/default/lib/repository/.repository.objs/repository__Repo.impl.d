lib/repository/repo.ml: Commit Int List Map Mof String
