lib/repository/repo.mli: Commit Mof
