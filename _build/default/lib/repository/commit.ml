type t = {
  id : int;
  parent : int option;
  message : string;
  model : Mof.Model.t;
  diff : Mof.Diff.t;
  transformation : string option;
  concern : string option;
}

let summary t =
  Format.asprintf "#%d %s (%a)%s" t.id t.message Mof.Diff.pp t.diff
    (match t.concern with Some c -> " [" ^ c ^ "]" | None -> "")

let pp ppf t = Format.pp_print_string ppf (summary t)
