(** Commits: immutable model versions with provenance. *)

type t = {
  id : int;
  parent : int option;
  message : string;
  model : Mof.Model.t;
  diff : Mof.Diff.t;  (** against the parent; empty for the root commit *)
  transformation : string option;
      (** concrete transformation that produced this version, if any *)
  concern : string option;
}

val summary : t -> string
(** One line: id, message, diff size. *)

val pp : Format.formatter -> t -> unit
