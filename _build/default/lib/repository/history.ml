let render repo =
  let head_id = (Repo.head repo).Commit.id in
  let tag_names_of id =
    List.filter_map
      (fun (name, tid) -> if tid = id then Some name else None)
      (Repo.tags repo)
  in
  String.concat "\n"
    (List.map
       (fun (c : Commit.t) ->
         let marker = if c.Commit.id = head_id then "* " else "  " in
         let tag_suffix =
           match tag_names_of c.Commit.id with
           | [] -> ""
           | names -> " <" ^ String.concat ", " names ^ ">"
         in
         marker ^ Commit.summary c ^ tag_suffix)
       (Repo.log repo))

let concerns_in_history repo =
  List.fold_left
    (fun acc (c : Commit.t) ->
      match c.Commit.concern with
      | Some key when not (List.mem key acc) -> acc @ [ key ]
      | Some _ | None -> acc)
    []
    (List.rev (Repo.log repo))

let total_churn repo =
  List.fold_left
    (fun acc (c : Commit.t) -> acc + Mof.Diff.cardinal c.Commit.diff)
    0 (Repo.log repo)
