(** Rendering and statistics over repository histories. *)

val render : Repo.t -> string
(** The head-first log, one commit summary per line, head marked with
    [*] and tags shown inline. *)

val concerns_in_history : Repo.t -> string list
(** Concern keys recorded along the head chain, oldest first, without
    duplicates. *)

val total_churn : Repo.t -> int
(** Sum of diff cardinalities along the head chain — how much the model
    moved across all refinements. *)
