(** The versioned model repository with Undo/Redo — the paper's Section 3
    "version management capabilities for the model repository. An Undo/Redo
    facility for model transformations would also be appreciated."

    The repository keeps every committed version; undo moves the head to the
    parent commit without discarding anything, redo walks forward again.
    Committing with a redo path outstanding discards that path (standard
    undo-tree linearization). Tags name commits. *)

type t

val init : Mof.Model.t -> t
(** A repository whose root commit holds the given model. *)

val commit :
  ?transformation:string ->
  ?concern:string ->
  message:string ->
  Mof.Model.t ->
  t ->
  t
(** Appends a new version on top of the head. *)

val head : t -> Commit.t
val head_model : t -> Mof.Model.t

val undo : t -> t option
(** Move head to its parent; [None] at the root. *)

val redo : t -> t option
(** Re-advance head after an undo; [None] when there is nothing to redo. *)

val can_undo : t -> bool
val can_redo : t -> bool

val tag : string -> t -> t
(** Names the head commit. Re-tagging moves the tag. *)

val checkout : string -> t -> t option
(** Moves the head to the commit named by a tag; clears the redo path.
    [None] for unknown tags. *)

val tags : t -> (string * int) list

val find : t -> int -> Commit.t option

val log : t -> Commit.t list
(** Head-first chain of commits from the head to the root. *)

val size : t -> int
(** Number of commits stored. *)

val diff_between : t -> from_id:int -> to_id:int -> Mof.Diff.t option
(** Structural diff between two stored versions. *)
