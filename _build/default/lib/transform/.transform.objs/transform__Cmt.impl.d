lib/transform/cmt.ml: Format Gmt List Ocl Params String
