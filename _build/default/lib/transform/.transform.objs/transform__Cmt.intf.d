lib/transform/cmt.mli: Gmt Mof Ocl Params
