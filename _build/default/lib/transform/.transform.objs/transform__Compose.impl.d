lib/transform/compose.ml: Format Gmt List Ocl Params Printf String
