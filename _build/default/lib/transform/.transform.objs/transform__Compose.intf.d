lib/transform/compose.mli: Gmt Params
