lib/transform/engine.ml: Cmt Format Gmt List Mof Ocl Report Trace
