lib/transform/engine.mli: Cmt Format Mof Ocl Report Trace
