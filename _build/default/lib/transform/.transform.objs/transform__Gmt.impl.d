lib/transform/gmt.ml: Format List Mof Ocl Params Printf
