lib/transform/gmt.mli: Format Mof Ocl Params
