lib/transform/params.ml: Format List Printf String
