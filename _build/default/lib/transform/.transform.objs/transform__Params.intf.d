lib/transform/params.mli: Format
