lib/transform/report.ml: Cmt Format List Mof Params Printf
