lib/transform/report.mli: Cmt Format Mof
