lib/transform/trace.ml: Format List Mof Option String
