lib/transform/trace.mli: Format Mof
