type t = {
  gmt : Gmt.t;
  params : Params.set;
}

let specialize gmt assignments =
  match Params.build gmt.Gmt.formals assignments with
  | Ok params -> Ok { gmt; params }
  | Error problems -> Error problems

let specialize_exn gmt assignments =
  match specialize gmt assignments with
  | Ok t -> t
  | Error problems ->
      invalid_arg
        (Format.asprintf "%s: %a" gmt.Gmt.name
           (Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
              Params.pp_problem)
           problems)

let name t =
  let values =
    List.map
      (fun (_, v) -> Params.value_to_string v)
      (Params.bindings t.params)
  in
  t.gmt.Gmt.name ^ "<" ^ String.concat ", " values ^ ">"

let concern t = t.gmt.Gmt.concern

let close t conditions =
  let bindings = Params.substitution t.params in
  List.map (Ocl.Constraint_.substitute bindings) conditions

let preconditions t = close t t.gmt.Gmt.preconditions
let postconditions t = close t t.gmt.Gmt.postconditions
let rewrite t model = t.gmt.Gmt.rewrite t.params model
