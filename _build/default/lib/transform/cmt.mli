(** Concrete model transformations (the paper's CMT_Ci = GMT_Ci⟨S_i⟩).

    Specialization binds a parameter set to a generic transformation and
    closes the [$holes$] of its pre/postconditions with the parameter
    values. The same parameter set later specializes the concern's generic
    aspect — see {!Aspects.Generator} — which is the paper's answer to the
    semantic-coupling problem. *)

type t = {
  gmt : Gmt.t;
  params : Params.set;
}

val specialize :
  Gmt.t -> (string * Params.value) list -> (t, Params.problem list) result
(** Validates the assignments against the GMT's formals. *)

val specialize_exn : Gmt.t -> (string * Params.value) list -> t
(** @raise Invalid_argument listing the problems. *)

val name : t -> string
(** The concrete name, e.g. ["T.distribution<Account, Teller>"] — GMT name
    plus rendered parameter values, mirroring the paper's T1⟨p11,p12,…⟩
    notation. *)

val concern : t -> string

val preconditions : t -> Ocl.Constraint_.t list
(** Specialized (hole-free) preconditions. *)

val postconditions : t -> Ocl.Constraint_.t list

val rewrite : t -> Mof.Model.t -> Mof.Model.t
(** Applies the underlying rewrite with the bound parameters. No condition
    checking — use {!Engine.apply} for the full checked pipeline.
    @raise Gmt.Rewrite_error *)
