let merge_formals decl_lists =
  let rec merge acc = function
    | [] -> Ok (List.rev acc)
    | (d : Params.decl) :: rest -> (
        match
          List.find_opt
            (fun (d' : Params.decl) -> String.equal d'.Params.pname d.Params.pname)
            acc
        with
        | None -> merge (d :: acc) rest
        | Some d' ->
            if d'.Params.ptype = d.Params.ptype then merge acc rest
            else
              Error
                (Printf.sprintf
                   "parameter %s declared with conflicting types %s and %s"
                   d.Params.pname
                   (Params.ptype_to_string d'.Params.ptype)
                   (Params.ptype_to_string d.Params.ptype)))
  in
  merge [] (List.concat decl_lists)

(* Project a merged parameter set onto one member's formals. *)
let project_params (gmt : Gmt.t) merged =
  let names =
    List.map (fun (d : Params.decl) -> d.Params.pname) gmt.Gmt.formals
  in
  let assignments =
    List.filter (fun (name, _) -> List.mem name names) (Params.bindings merged)
  in
  match Params.build gmt.Gmt.formals assignments with
  | Ok set -> set
  | Error problems ->
      Gmt.rewrite_error "composite member %s: %s" gmt.Gmt.name
        (Format.asprintf "%a"
           (Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
              Params.pp_problem)
           problems)

let check_conditions stage gmt_name set conditions model =
  let bindings = Params.substitution set in
  List.iter
    (fun c ->
      let closed = Ocl.Constraint_.substitute bindings c in
      match Ocl.Constraint_.check model closed with
      | Ocl.Constraint_.Holds -> ()
      | outcome ->
          Gmt.rewrite_error "composite member %s: %s %s %a" gmt_name stage
            closed.Ocl.Constraint_.name Ocl.Constraint_.pp_outcome outcome)
    conditions

let sequence ~name ~concern gmts =
  match gmts with
  | [] -> Error "cannot compose an empty transformation list"
  | first :: _ -> (
      match merge_formals (List.map (fun (g : Gmt.t) -> g.Gmt.formals) gmts) with
      | Error e -> Error e
      | Ok formals ->
          let last = List.nth gmts (List.length gmts - 1) in
          let rewrite merged model =
            List.fold_left
              (fun model (g : Gmt.t) ->
                let set = project_params g merged in
                check_conditions "precondition" g.Gmt.name set
                  g.Gmt.preconditions model;
                let model' = g.Gmt.rewrite set model in
                check_conditions "postcondition" g.Gmt.name set
                  g.Gmt.postconditions model';
                model')
              model gmts
          in
          Ok
            (Gmt.make ~name ~concern
               ~description:
                 ("sequential composition of "
                 ^ String.concat ", "
                     (List.map (fun (g : Gmt.t) -> g.Gmt.name) gmts))
               ~formals
               ~preconditions:first.Gmt.preconditions
               ~postconditions:last.Gmt.postconditions rewrite))
