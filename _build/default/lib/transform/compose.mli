(** Sequential composition of generic transformations.

    The paper leaves open "how several concerns can be composed"; this
    module provides the sequential answer: a composite GMT that applies a
    list of member GMTs in order, against one merged parameter set.

    Formal parameters are merged by name: two members may *share* a
    parameter (same name, same type) — the one-parameter-set idea extended
    across concerns — but a same-named parameter with a different type is a
    composition error.

    Conditions: the composite's declared preconditions are the first
    member's (they constrain the input model, which is all that can be
    promised statically) and its postconditions are the last member's.
    Every member's own pre/postconditions are still checked *during* the
    composite rewrite against the intermediate models; a violation aborts
    the rewrite (surfacing as {!Engine.Rewrite_failed}), so a composite is
    never applied half-way. *)

val sequence :
  name:string -> concern:string -> Gmt.t list -> (Gmt.t, string) result
(** [sequence ~name ~concern gmts] is the composite transformation, or an
    error for an empty list or conflicting formals. *)

val merge_formals : Params.decl list list -> (Params.decl list, string) result
(** The merged declaration list (first occurrence wins for documentation and
    defaults); [Error] on a name declared twice with different types. *)
