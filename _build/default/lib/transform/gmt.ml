exception Rewrite_error of string

let rewrite_error fmt =
  Format.kasprintf (fun s -> raise (Rewrite_error s)) fmt

type t = {
  name : string;
  concern : string;
  description : string;
  formals : Params.decl list;
  preconditions : Ocl.Constraint_.t list;
  postconditions : Ocl.Constraint_.t list;
  rewrite : Params.set -> Mof.Model.t -> Mof.Model.t;
}

let make ?(description = "") ?(preconditions = []) ?(postconditions = []) ~name
    ~concern ~formals rewrite =
  { name; concern; description; formals; preconditions; postconditions; rewrite }

(* A syntactically plausible placeholder literal per parameter type, used to
   close the $holes$ for static typechecking. *)
let rec placeholder_literal = function
  | Params.P_string | Params.P_ident -> "'placeholder'"
  | Params.P_int -> "0"
  | Params.P_bool -> "true"
  | Params.P_enum (case :: _) -> "'" ^ case ^ "'"
  | Params.P_enum [] -> "''"
  | Params.P_list t -> "Set{" ^ placeholder_literal t ^ "}"

let validate_conditions t =
  let bindings =
    List.map (fun d -> (d.Params.pname, placeholder_literal d.Params.ptype)) t.formals
  in
  let check_one (c : Ocl.Constraint_.t) =
    let closed = Ocl.Constraint_.substitute bindings c in
    let leftover = Ocl.Constraint_.holes closed in
    let hole_diags =
      List.map
        (fun h ->
          Printf.sprintf "%s: condition %s references undeclared parameter $%s$"
            t.name c.Ocl.Constraint_.name h)
        leftover
    in
    if hole_diags <> [] then hole_diags
    else
      match
        Ocl.Typecheck.check_source ?self_type:c.Ocl.Constraint_.context
          closed.Ocl.Constraint_.body
      with
      | Error msg ->
          [ Printf.sprintf "%s: condition %s: %s" t.name c.Ocl.Constraint_.name msg ]
      | Ok (_, diags) ->
          List.map
            (fun d ->
              Format.asprintf "%s: condition %s: %a" t.name
                c.Ocl.Constraint_.name Ocl.Typecheck.pp_diagnostic d)
            diags
  in
  List.concat_map check_one (t.preconditions @ t.postconditions)
