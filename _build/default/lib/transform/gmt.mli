(** Generic model transformations (the paper's GMT_Ci).

    A GMT bundles, for one concern dimension: the formal parameters P_ik, a
    model rewrite function, and generic OCL pre/postconditions whose
    [$param$] holes the specialization fills. The rewrite is a pure function
    from a parameter set and a model to a new model — the engine computes
    the diff, checks conditions, and records the trace. *)

exception Rewrite_error of string
(** Raised by rewrite functions when the model, although passing the
    declared preconditions, cannot be transformed (an escape hatch for
    conditions that OCL cannot express). *)

val rewrite_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [rewrite_error fmt …] raises {!Rewrite_error} with a formatted
    message. *)

type t = {
  name : string;  (** e.g. ["T.distribution"] *)
  concern : string;  (** concern key, e.g. ["distribution"] *)
  description : string;
  formals : Params.decl list;
  preconditions : Ocl.Constraint_.t list;  (** generic, with [$holes$] *)
  postconditions : Ocl.Constraint_.t list;
  rewrite : Params.set -> Mof.Model.t -> Mof.Model.t;
}

val make :
  ?description:string ->
  ?preconditions:Ocl.Constraint_.t list ->
  ?postconditions:Ocl.Constraint_.t list ->
  name:string ->
  concern:string ->
  formals:Params.decl list ->
  (Params.set -> Mof.Model.t -> Mof.Model.t) ->
  t

val validate_conditions : t -> string list
(** Statically typechecks every pre/postcondition body (with holes replaced
    by placeholder literals) and returns the diagnostics — run at
    registration time so that broken generic transformations are rejected
    before they ever touch a model. *)
