type ptype =
  | P_string
  | P_int
  | P_bool
  | P_ident
  | P_enum of string list
  | P_list of ptype

let rec ptype_to_string = function
  | P_string -> "string"
  | P_int -> "int"
  | P_bool -> "bool"
  | P_ident -> "ident"
  | P_enum cases -> "enum(" ^ String.concat "|" cases ^ ")"
  | P_list t -> "list(" ^ ptype_to_string t ^ ")"

type value =
  | V_string of string
  | V_int of int
  | V_bool of bool
  | V_ident of string
  | V_list of value list

let rec value_to_string = function
  | V_string s -> "\"" ^ s ^ "\""
  | V_int n -> string_of_int n
  | V_bool b -> string_of_bool b
  | V_ident s -> s
  | V_list vs -> "[" ^ String.concat ", " (List.map value_to_string vs) ^ "]"

let rec value_conforms v t =
  match (v, t) with
  | (V_string _ | V_ident _), (P_string | P_ident) -> true
  | (V_string s | V_ident s), P_enum cases -> List.mem s cases
  | V_int _, P_int -> true
  | V_bool _, P_bool -> true
  | V_list vs, P_list t -> List.for_all (fun v -> value_conforms v t) vs
  | _, _ -> false

type decl = {
  pname : string;
  ptype : ptype;
  doc : string;
  required : bool;
  default : value option;
}

let decl ?(doc = "") ?required ?default pname ptype =
  let required =
    match required with Some r -> r | None -> default = None
  in
  { pname; ptype; doc; required; default }

type set = {
  decls : decl list;
  assigned : (string * value) list;  (* declaration order *)
}

let names s = List.map fst s.assigned
let bindings s = s.assigned

type problem =
  | Missing of string
  | Unknown of string
  | Type_mismatch of string * ptype * value

let pp_problem ppf = function
  | Missing name -> Format.fprintf ppf "required parameter %s is not assigned" name
  | Unknown name -> Format.fprintf ppf "unknown parameter %s" name
  | Type_mismatch (name, t, v) ->
      Format.fprintf ppf "parameter %s expects %s, got %s" name
        (ptype_to_string t) (value_to_string v)

let build decls assignments =
  let unknown =
    List.filter_map
      (fun (name, _) ->
        if List.exists (fun d -> String.equal d.pname name) decls then None
        else Some (Unknown name))
      assignments
  in
  let problems, assigned =
    List.fold_left
      (fun (problems, assigned) d ->
        match List.assoc_opt d.pname assignments with
        | Some v ->
            if value_conforms v d.ptype then
              (problems, (d.pname, v) :: assigned)
            else (Type_mismatch (d.pname, d.ptype, v) :: problems, assigned)
        | None -> (
            match d.default with
            | Some v -> (problems, (d.pname, v) :: assigned)
            | None ->
                if d.required then (Missing d.pname :: problems, assigned)
                else (problems, assigned)))
      ([], []) decls
  in
  match List.rev problems @ unknown with
  | [] -> Ok { decls; assigned = List.rev assigned }
  | problems -> Error problems

let find s name = List.assoc_opt name s.assigned

let get s name =
  match find s name with Some v -> v | None -> raise Not_found

let get_string s name =
  match get s name with
  | V_string v | V_ident v -> v
  | v ->
      invalid_arg
        (Printf.sprintf "parameter %s is not a string: %s" name
           (value_to_string v))

let get_int s name =
  match get s name with
  | V_int n -> n
  | v ->
      invalid_arg
        (Printf.sprintf "parameter %s is not an int: %s" name (value_to_string v))

let get_bool s name =
  match get s name with
  | V_bool b -> b
  | v ->
      invalid_arg
        (Printf.sprintf "parameter %s is not a bool: %s" name
           (value_to_string v))

let get_names s name =
  match get s name with
  | V_list vs ->
      List.map
        (function
          | V_string n | V_ident n -> n
          | v ->
              invalid_arg
                (Printf.sprintf "parameter %s contains a non-name: %s" name
                   (value_to_string v)))
        vs
  | V_string n | V_ident n -> [ n ]
  | v ->
      invalid_arg
        (Printf.sprintf "parameter %s is not a name list: %s" name
           (value_to_string v))

let quote_ocl s = "'" ^ s ^ "'"

let rec to_ocl_literal = function
  | V_string s | V_ident s -> quote_ocl s
  | V_int n -> string_of_int n
  | V_bool b -> string_of_bool b
  | V_list vs -> "Set{" ^ String.concat ", " (List.map to_ocl_literal vs) ^ "}"

let substitution s =
  List.map (fun (name, v) -> (name, to_ocl_literal v)) s.assigned
