(** Typed transformation parameters — the paper's P_ik and S_i.

    A generic transformation for concern [i] declares formal parameters
    (P_i1, P_i2, …); a parameter set S_i assigns values to them and
    specializes both the transformation and (later, with the same set) the
    associated generic aspect. Declarations carry enough structure for the
    wizard-style configuration of Section 3: type, documentation, default,
    and requiredness. *)

(** Parameter types. [P_ident] holds the qualified name of a model element;
    [P_enum] a closed set of keywords. *)
type ptype =
  | P_string
  | P_int
  | P_bool
  | P_ident
  | P_enum of string list
  | P_list of ptype

val ptype_to_string : ptype -> string

(** Parameter values. *)
type value =
  | V_string of string
  | V_int of int
  | V_bool of bool
  | V_ident of string
  | V_list of value list

val value_to_string : value -> string
(** Human-readable rendering, e.g. for reports. *)

val value_conforms : value -> ptype -> bool
(** Does a value fit a parameter type? [V_string] is accepted for [P_enum]
    when it is one of the cases; [V_ident]/[V_string] are interchangeable
    where a name is expected. *)

(** A formal parameter declaration. *)
type decl = {
  pname : string;
  ptype : ptype;
  doc : string;
  required : bool;
  default : value option;
}

val decl :
  ?doc:string -> ?required:bool -> ?default:value -> string -> ptype -> decl
(** [decl name ptype] declares a parameter; [required] defaults to [true]
    when no default is given, [false] otherwise. *)

(** A parameter set S_i: validated assignments to a declaration list. *)
type set

val names : set -> string list
(** Assigned parameter names, declaration order. *)

val bindings : set -> (string * value) list

(** Validation problems found by {!build}. *)
type problem =
  | Missing of string  (** required parameter not assigned *)
  | Unknown of string  (** assignment to an undeclared parameter *)
  | Type_mismatch of string * ptype * value

val pp_problem : Format.formatter -> problem -> unit

val build : decl list -> (string * value) list -> (set, problem list) result
(** Validates assignments against declarations; defaults are filled in. *)

val get : set -> string -> value
(** @raise Not_found for unassigned names (cannot happen for parameters that
    are required or have defaults). *)

val find : set -> string -> value option
val get_string : set -> string -> string
(** Coerces [V_string]/[V_ident]; @raise Invalid_argument otherwise. *)

val get_int : set -> string -> int
val get_bool : set -> string -> bool

val get_names : set -> string -> string list
(** A [P_list P_ident] (or strings) parameter as a name list. *)

val to_ocl_literal : value -> string
(** Renders a value as an OCL literal: strings and idents quote as
    ['text'], lists become [Set{…}]. Used to substitute [$param$] holes in
    generic pre/postconditions. *)

val substitution : set -> (string * string) list
(** [(name, ocl_literal)] bindings for {!Ocl.Constraint_.substitute} — the
    mechanism by which one parameter set specializes the generic
    pre/postconditions along with the transformation itself. *)
