type t = {
  transformation : string;
  concern : string;
  parameters : (string * string) list;
  added : int;
  removed : int;
  modified : int;
}

let make cmt (diff : Mof.Diff.t) =
  {
    transformation = Cmt.name cmt;
    concern = Cmt.concern cmt;
    parameters =
      List.map
        (fun (name, v) -> (name, Params.value_to_string v))
        (Params.bindings cmt.Cmt.params);
    added = Mof.Id.Set.cardinal diff.Mof.Diff.added;
    removed = Mof.Id.Set.cardinal diff.Mof.Diff.removed;
    modified = Mof.Id.Set.cardinal diff.Mof.Diff.modified;
  }

let summary t =
  Printf.sprintf "%s [%s] +%d -%d ~%d" t.transformation t.concern t.added
    t.removed t.modified

let pp ppf t =
  Format.fprintf ppf "%s@." (summary t);
  List.iter
    (fun (name, v) -> Format.fprintf ppf "  %s = %s@." name v)
    t.parameters
