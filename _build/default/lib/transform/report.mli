(** Application reports: what one refinement step did, for tool output and
    the repository log. *)

type t = {
  transformation : string;  (** concrete name, T_i⟨…⟩ *)
  concern : string;
  parameters : (string * string) list;  (** name, rendered value *)
  added : int;
  removed : int;
  modified : int;
}

val make : Cmt.t -> Mof.Diff.t -> t

val summary : t -> string
(** One line: ["T.distribution<...> [distribution] +12 -0 ~3"]. *)

val pp : Format.formatter -> t -> unit
(** Multi-line rendering including parameters. *)
