lib/weaver/interference.ml: Aspects Joinpoint List Matcher Precedence Printf String
