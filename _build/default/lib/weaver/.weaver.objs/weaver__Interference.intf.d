lib/weaver/interference.mli: Aspects Code Joinpoint
