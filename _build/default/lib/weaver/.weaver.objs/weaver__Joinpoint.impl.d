lib/weaver/joinpoint.ml: Code List Option Printf
