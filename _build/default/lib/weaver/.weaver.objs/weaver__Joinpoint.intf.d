lib/weaver/joinpoint.mli: Code
