lib/weaver/matcher.ml: Aspects Joinpoint String
