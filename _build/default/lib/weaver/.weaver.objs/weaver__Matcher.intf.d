lib/weaver/matcher.mli: Aspects Joinpoint
