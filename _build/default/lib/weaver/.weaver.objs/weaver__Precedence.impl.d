lib/weaver/precedence.ml: Aspects Int List Printf String
