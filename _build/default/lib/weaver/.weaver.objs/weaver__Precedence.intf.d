lib/weaver/precedence.mli: Aspects
