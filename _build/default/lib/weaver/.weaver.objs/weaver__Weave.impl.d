lib/weaver/weave.ml: Aspects Code Joinpoint List Matcher Option Precedence String
