lib/weaver/weave.mli: Aspects Code
