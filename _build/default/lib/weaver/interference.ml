type advising = {
  aspect_name : string;
  concern : string;
  advice_name : string;
  time : Aspects.Advice.time;
  precedence : int;
}

type entry = {
  at : Joinpoint.shadow;
  advisers : advising list;
}

type report = {
  entries : entry list;
  shared : entry list;
}

let analyze generated program =
  let ordered = Precedence.order generated in
  let shadows = Joinpoint.execution_shadows program in
  let advisers_of shadow =
    List.concat_map
      (fun (g : Aspects.Generator.generated) ->
        List.filter_map
          (fun (a : Aspects.Advice.t) ->
            if Matcher.matches a.Aspects.Advice.pointcut shadow then
              Some
                {
                  aspect_name =
                    g.Aspects.Generator.aspect.Aspects.Aspect.aspect_name;
                  concern = g.Aspects.Generator.aspect.Aspects.Aspect.concern;
                  advice_name = a.Aspects.Advice.advice_name;
                  time = a.Aspects.Advice.time;
                  precedence = g.Aspects.Generator.seq;
                }
            else None)
          g.Aspects.Generator.aspect.Aspects.Aspect.advices)
      ordered
  in
  let entries =
    List.filter_map
      (fun shadow ->
        match advisers_of shadow with
        | [] -> None
        | advisers -> Some { at = shadow; advisers })
      shadows
  in
  let distinct_concerns entry =
    List.sort_uniq String.compare
      (List.map (fun a -> a.concern) entry.advisers)
  in
  {
    entries;
    shared = List.filter (fun e -> List.length (distinct_concerns e) > 1) entries;
  }

let render report =
  let entry_lines e =
    let shared = List.memq e report.shared in
    (Printf.sprintf "%s %s"
       (if shared then "[!]" else "   ")
       (Joinpoint.describe e.at))
    :: List.map
         (fun a ->
           Printf.sprintf "      %d. %s/%s (%s, %s)" a.precedence a.aspect_name
             a.advice_name a.concern
             (Aspects.Advice.time_to_string a.time))
         e.advisers
  in
  String.concat "\n"
    ((Printf.sprintf "%d advised join point(s), %d shared across concerns"
        (List.length report.entries)
        (List.length report.shared))
    :: List.concat_map entry_lines report.entries)
