(** Aspect interference analysis.

    The paper resolves multi-aspect composition by fixing precedence from
    the transformation order — but a developer still wants to *see* where
    that resolution matters: the join points advised by more than one
    concern. This analysis reports every execution join point with the
    advice that applies to it, in effective precedence order, and flags the
    shared ones. *)

(** Advice applying at one join point. *)
type advising = {
  aspect_name : string;
  concern : string;
  advice_name : string;
  time : Aspects.Advice.time;
  precedence : int;  (** sequence number of the source transformation *)
}

type entry = {
  at : Joinpoint.shadow;
  advisers : advising list;  (** highest precedence first *)
}

type report = {
  entries : entry list;  (** only advised join points, program order *)
  shared : entry list;  (** the subset advised by more than one concern *)
}

val analyze :
  Aspects.Generator.generated list -> Code.Junit.program -> report
(** Matches every generated aspect's advice against the program's execution
    shadows. (Call and field-set shadows are wrapped statements rather than
    interceptable signatures, so interference at those is local and not
    reported here.) *)

val render : report -> string
(** Human-readable listing; shared join points are marked with [!]. *)
