type shadow =
  | Sh_execution of {
      class_name : string;
      method_name : string;
    }
  | Sh_call of {
      within_class : string;
      within_method : string;
      receiver_class : string option;
      method_name : string;
    }
  | Sh_field_set of {
      within_class : string;
      within_method : string;
      target_class : string;
      field_name : string;
    }

let describe = function
  | Sh_execution { class_name; method_name } ->
      Printf.sprintf "execution(%s.%s)" class_name method_name
  | Sh_call { receiver_class; method_name; _ } ->
      Printf.sprintf "call(%s.%s)"
        (Option.value ~default:"?" receiver_class)
        method_name
  | Sh_field_set { target_class; field_name; _ } ->
      Printf.sprintf "set(%s.%s)" target_class field_name

let enclosing_class = function
  | Sh_execution { class_name; _ } -> class_name
  | Sh_call { within_class; _ } -> within_class
  | Sh_field_set { within_class; _ } -> within_class

let execution_shadows program =
  List.concat_map
    (fun (c : Code.Jdecl.class_) ->
      List.filter_map
        (fun (m : Code.Jdecl.method_) ->
          match m.Code.Jdecl.body with
          | Some _ ->
              Some
                (Sh_execution
                   {
                     class_name = c.Code.Jdecl.class_name;
                     method_name = m.Code.Jdecl.method_name;
                   })
          | None -> None)
        c.Code.Jdecl.methods)
    (Code.Junit.classes program)
