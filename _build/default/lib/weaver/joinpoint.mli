(** The join-point model: shadows in the code model where advice can
    apply. *)

type shadow =
  | Sh_execution of {
      class_name : string;
      method_name : string;
    }  (** the execution of a method body *)
  | Sh_call of {
      within_class : string;
      within_method : string;
      receiver_class : string option;
          (** statically resolved receiver class; [None] when the receiver's
              type cannot be resolved *)
      method_name : string;
    }  (** a call site inside a method body *)
  | Sh_field_set of {
      within_class : string;
      within_method : string;
      target_class : string;
      field_name : string;
    }  (** an assignment to a field *)

val describe : shadow -> string
(** AspectJ-style description, e.g. ["execution(Account.withdraw)"] — the
    value of the [thisJoinPoint] pseudo-variable. *)

val enclosing_class : shadow -> string
(** The class the shadow is lexically within (for [within] pointcuts). *)

val execution_shadows : Code.Junit.program -> shadow list
(** Every method-execution shadow of a program (abstract/bodyless methods
    excluded). *)
