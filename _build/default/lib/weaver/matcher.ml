let rec matches pc shadow =
  match (pc, shadow) with
  | Aspects.Pointcut.Execution mp, Joinpoint.Sh_execution { class_name; method_name } ->
      Aspects.Pattern.matches_method mp ~class_name ~method_name
  | Aspects.Pointcut.Call mp, Joinpoint.Sh_call { receiver_class; method_name; _ }
    -> (
      match receiver_class with
      | Some class_name ->
          Aspects.Pattern.matches_method mp ~class_name ~method_name
      | None ->
          String.equal mp.Aspects.Pattern.mp_class "*"
          && Aspects.Pattern.matches mp.Aspects.Pattern.mp_method method_name)
  | ( Aspects.Pointcut.Set_field (cls_pat, field_pat),
      Joinpoint.Sh_field_set { target_class; field_name; _ } ) ->
      Aspects.Pattern.matches cls_pat target_class
      && Aspects.Pattern.matches field_pat field_name
  | Aspects.Pointcut.Within cls_pat, shadow ->
      Aspects.Pattern.matches cls_pat (Joinpoint.enclosing_class shadow)
  | Aspects.Pointcut.And (a, b), shadow -> matches a shadow && matches b shadow
  | Aspects.Pointcut.Or (a, b), shadow -> matches a shadow || matches b shadow
  | Aspects.Pointcut.Not a, shadow -> not (matches a shadow)
  | Aspects.Pointcut.Execution _, (Joinpoint.Sh_call _ | Joinpoint.Sh_field_set _)
  | Aspects.Pointcut.Call _, (Joinpoint.Sh_execution _ | Joinpoint.Sh_field_set _)
  | Aspects.Pointcut.Set_field _, (Joinpoint.Sh_execution _ | Joinpoint.Sh_call _)
    ->
      false
