(** Matching pointcuts against join-point shadows. *)

val matches : Aspects.Pointcut.t -> Joinpoint.shadow -> bool
(** Kinded pointcuts ([execution], [call], [set]) only match shadows of
    their kind; [within] matches any shadow by enclosing class. A [call]
    pointcut whose class pattern is not the universal ["*"] does not match a
    call shadow with an unresolved receiver — the static weaver refuses to
    guess. *)
