let order generated =
  List.stable_sort
    (fun (a : Aspects.Generator.generated) b ->
      Int.compare a.Aspects.Generator.seq b.Aspects.Generator.seq)
    generated

let dominates (a : Aspects.Generator.generated) (b : Aspects.Generator.generated)
    =
  a.Aspects.Generator.seq < b.Aspects.Generator.seq

let explain generated =
  String.concat "\n"
    (List.mapi
       (fun i (g : Aspects.Generator.generated) ->
         Printf.sprintf "%d. %s (from %s)" (i + 1)
           g.Aspects.Generator.aspect.Aspects.Aspect.aspect_name
           g.Aspects.Generator.from_transformation)
       (order generated))
