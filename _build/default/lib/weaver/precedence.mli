(** Aspect precedence.

    The paper fixes precedence by construction: "The order in which
    specialized/concrete aspects will be applied at code level (their
    precedence) is dictated by the order in which the specialized/concrete
    model transformations were applied at model level." Generated aspects
    carry the sequence number of their source transformation; a lower
    sequence number means higher precedence — its advice ends up outermost
    at shared join points. *)

val order : Aspects.Generator.generated list -> Aspects.Generator.generated list
(** Sorted by ascending sequence number (highest precedence first);
    stable. *)

val dominates :
  Aspects.Generator.generated -> Aspects.Generator.generated -> bool
(** [dominates a b] when [a] has higher precedence than [b]. *)

val explain : Aspects.Generator.generated list -> string
(** Human-readable precedence listing. *)
