(** The static weaver: applies concrete aspects to a program.

    Weaving proceeds per aspect in *reverse* precedence order, so that the
    highest-precedence aspect (the concern whose transformation was applied
    first) wraps all others at shared join points:
    - inter-type fields and methods are added to matching classes;
    - [before] execution advice is prepended to the method body;
    - [after] execution advice is woven as [try { body } finally { advice }];
    - [after returning] advice is inserted before the trailing [return] (or
      appended when the body does not end in a return);
    - [around] execution advice replaces the body by the advice body with
      the [proceed()] marker statement replaced by the original body;
    - [call] and [set] advice wraps the innermost statement containing a
      matching shadow with before/after statements.

    Advice bodies may use two pseudo-variables, rewritten at each woven
    shadow: [thisJoinPoint] becomes a string literal describing the join
    point and [targetName] the enclosing class name. *)

(** One advice application, for reports. *)
type application = {
  aspect_name : string;
  advice_name : string;
  at : string;  (** shadow description *)
}

type result = {
  program : Code.Junit.program;
  applications : application list;  (** weave order *)
}

val weave_one : Aspects.Aspect.t -> Code.Junit.program -> result
(** Weaves a single aspect. *)

val weave :
  Aspects.Generator.generated list -> Code.Junit.program -> result
(** Orders the generated aspects by precedence and weaves them all. *)
