lib/workflow/color.ml: Buffer Format List Mof Option Printf String Transform
