lib/workflow/color.mli: Mof Transform
