lib/workflow/derive.ml: List Printf State String
