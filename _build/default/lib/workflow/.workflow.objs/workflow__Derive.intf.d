lib/workflow/derive.mli: State
