lib/workflow/guidance.ml: List Printf State String Transform
