lib/workflow/guidance.mli: State Transform
