lib/workflow/state.ml: List Printf String
