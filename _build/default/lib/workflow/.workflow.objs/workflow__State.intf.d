lib/workflow/state.mli:
