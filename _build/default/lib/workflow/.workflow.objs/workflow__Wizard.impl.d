lib/workflow/wizard.ml: List Option Printf String Transform
