lib/workflow/wizard.mli: Transform
