type palette = (string * string) list

let default_colors =
  [ "red"; "blue"; "green"; "orange"; "purple"; "teal"; "magenta"; "olive" ]

let assign concerns =
  let count = List.length default_colors in
  List.mapi
    (fun i concern -> (concern, List.nth default_colors (i mod count)))
    concerns

let of_trace trace = assign (Transform.Trace.concerns_applied trace)

let color_of palette trace id =
  match Transform.Trace.introduced_by trace id with
  | Some concern -> List.assoc_opt concern palette
  | None -> None

let legend palette =
  String.concat "\n"
    (List.map (fun (concern, color) -> color ^ " — " ^ concern) palette)

let escape_html s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let demarcate_html model trace =
  let palette = of_trace trace in
  let row (e : Mof.Element.t) =
    let label =
      escape_html (Mof.Element.metaclass e ^ " " ^ e.Mof.Element.name)
    in
    match color_of palette trace e.Mof.Element.id with
    | Some color ->
        Printf.sprintf
          "<li style=\"color:%s\"><b>%s</b> <small>(%s)</small></li>" color
          label
          (escape_html
             (Option.value ~default:""
                (Transform.Trace.introduced_by trace e.Mof.Element.id)))
    | None -> Printf.sprintf "<li>%s</li>" label
  in
  let legend_rows =
    List.map
      (fun (concern, color) ->
        let count =
          Mof.Id.Set.cardinal (Transform.Trace.concern_space trace ~concern)
        in
        Printf.sprintf
          "<tr><td style=\"color:%s\"><b>%s</b></td><td>%s</td><td>%d \
           element(s)</td></tr>"
          color color (escape_html concern) count)
      palette
  in
  String.concat "\n"
    ([
       "<!doctype html>";
       "<html><head><meta charset=\"utf-8\"><title>Concern demarcation: "
       ^ escape_html (Mof.Model.name model)
       ^ "</title></head><body>";
       "<h1>Concern demarcation &mdash; " ^ escape_html (Mof.Model.name model) ^ "</h1>";
       "<h2>Legend</h2>";
       "<table border=\"1\" cellpadding=\"4\">";
       "<tr><th>color</th><th>concern</th><th>space size</th></tr>";
     ]
    @ legend_rows
    @ [ "</table>"; "<h2>Model elements</h2>"; "<ul>" ]
    @ List.map row (Mof.Model.elements model)
    @ [ "</ul>"; "</body></html>" ])

let demarcate model trace =
  let palette = of_trace trace in
  let lines =
    List.filter_map
      (fun (e : Mof.Element.t) ->
        let rendered =
          Format.asprintf "%s %s" (Mof.Element.metaclass e) e.Mof.Element.name
        in
        match color_of palette trace e.Mof.Element.id with
        | Some color -> Some ("[" ^ color ^ "] " ^ rendered)
        | None -> Some rendered)
      (Mof.Model.elements model)
  in
  String.concat "\n" (lines @ [ "--"; legend palette ])
