(** Concern coloring — the paper's Section 3 visual requirement: "Visual
    tools capable of demarcating model parts that have been added to the
    model through different specialized/concrete transformations by using
    different colors. An association list between these colors and the
    concerns that have already been covered would be helpful."

    Colors are assigned to concerns in first-application order from a fixed
    palette; element colors come from the transformation trace. *)

type palette = (string * string) list
(** concern key → color name. *)

val default_colors : string list
(** The rotation used by {!assign}: red, blue, green, … (reused cyclically
    past its length). *)

val assign : string list -> palette
(** [assign concerns] pairs each concern with the next palette color. *)

val of_trace : Transform.Trace.t -> palette
(** Palette for the concerns a trace has applied, in application order. *)

val color_of : palette -> Transform.Trace.t -> Mof.Id.t -> string option
(** The color of an element: that of the concern whose transformation
    created it; [None] for functional (untraced) elements. *)

val legend : palette -> string
(** The association list, one [color — concern] line per entry. *)

val demarcate : Mof.Model.t -> Transform.Trace.t -> string
(** A model listing in which every concern-introduced element is prefixed
    with its color, e.g. ["[red] Class AccountProxy"], and functional
    elements are unmarked. Ends with the legend. *)

val demarcate_html : Mof.Model.t -> Transform.Trace.t -> string
(** The same demarcation as a standalone HTML page — the closest a CLI tool
    gets to the paper's "visual tools capable of demarcating model parts …
    by using different colors": one row per element, colored by the
    introducing concern, with the color/concern association list and the
    per-concern element counts. Element names are HTML-escaped. *)
