let middleware_dependencies =
  [
    ("distribution", []);
    ("transactions", [ "distribution" ]);
    ("security", [ "distribution" ]);
    ("concurrency", []);
    ("logging", []);
  ]

let from_dependencies ?(optional = []) specs =
  let names = List.map fst specs in
  let duplicate =
    let rec find seen = function
      | [] -> None
      | n :: rest -> if List.mem n seen then Some n else find (n :: seen) rest
    in
    find [] names
  in
  let unknown =
    List.concat_map
      (fun (_, deps) -> List.filter (fun d -> not (List.mem d names)) deps)
      specs
  in
  match (duplicate, unknown) with
  | Some n, _ -> Error (Printf.sprintf "concern %s declared twice" n)
  | None, d :: _ -> Error (Printf.sprintf "unknown prerequisite %s" d)
  | None, [] ->
      (* Kahn's algorithm with declaration-order tie-breaking *)
      let rec place ordered remaining =
        match remaining with
        | [] -> Ok (List.rev ordered)
        | _ -> (
            let ready =
              List.find_opt
                (fun (_, deps) ->
                  List.for_all (fun d -> List.mem d ordered) deps)
                remaining
            in
            match ready with
            | Some (name, _) ->
                place (name :: ordered)
                  (List.filter (fun (n, _) -> not (String.equal n name)) remaining)
            | None ->
                Error
                  (Printf.sprintf "dependency cycle among: %s"
                     (String.concat ", " (List.map fst remaining))))
      in
      (match place [] specs with
      | Error e -> Error e
      | Ok ordered ->
          Ok
            (State.workflow
               (List.map
                  (fun concern ->
                    State.step
                      ~optional:(List.mem concern optional)
                      ~name:("apply-" ^ concern) [ concern ])
                  ordered)))
