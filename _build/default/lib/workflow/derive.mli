(** Deriving a workflow from concern dependencies.

    The paper wants the workflow model to "define which generic
    transformations can be applied at a certain refinement step, and
    therefore … determine the allowed sequence of transformations". Rather
    than writing step lists by hand, a project can declare *why* an order
    exists — concern B needs concern A's model elements — and derive the
    workflow from those prerequisites. *)

val from_dependencies :
  ?optional:string list ->
  (string * string list) list ->
  (State.t, string) result
(** [from_dependencies specs] builds a single-choice-per-step workflow from
    [(concern, prerequisites)] pairs using a stable topological order
    (declaration order breaks ties). Concerns listed in [optional] become
    optional steps. Errors: a prerequisite naming an undeclared concern, a
    concern declared twice, or a dependency cycle (the cycle's members are
    named). *)

val middleware_dependencies : (string * string list) list
(** The dependencies behind {!State.middleware_default}: transactions and
    security presuppose distribution; concurrency and logging are free. *)
