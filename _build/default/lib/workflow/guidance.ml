let next_options = State.options

let describe p =
  let done_lines =
    List.map
      (fun (step, concern) -> Printf.sprintf "  [x] %s: %s" step concern)
      (State.completed p)
  in
  let current =
    match State.current_step p with
    | Some s ->
        [
          Printf.sprintf "  [ ] %s: choose one of %s%s" s.State.step_name
            (String.concat ", " s.State.choices)
            (if s.State.optional then " (optional)" else "");
        ]
    | None -> [ "  workflow complete" ]
  in
  let remaining = State.remaining_concerns p in
  String.concat "\n"
    (("refinement progress:" :: done_lines)
    @ current
    @ [ "  remaining concerns: " ^ String.concat ", " remaining ])

let consistent_with_trace p trace =
  let from_workflow = State.applied_concerns p in
  let from_trace =
    List.map
      (fun (e : Transform.Trace.entry) -> e.Transform.Trace.concern)
      (Transform.Trace.entries trace)
  in
  List.equal String.equal from_workflow from_trace
