(** Developer guidance over a workflow in progress. *)

val next_options : State.progress -> string list
(** Concerns applicable right now (current step, plus later steps reachable
    through optional ones). *)

val describe : State.progress -> string
(** Multi-line status: completed steps, current options, remaining
    concerns. *)

val consistent_with_trace : State.progress -> Transform.Trace.t -> bool
(** Whether the concerns recorded by the workflow match the transformation
    trace, in order — a cross-check between the guidance layer and the
    engine. *)
