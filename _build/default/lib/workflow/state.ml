type step = {
  step_name : string;
  choices : string list;
  optional : bool;
}

let step ?(optional = false) ~name choices =
  { step_name = name; choices; optional }

type t = { steps : step list }

let workflow steps = { steps }

let middleware_default =
  workflow
    [
      step ~name:"distribute" [ "distribution" ];
      step ~name:"make-transactional" [ "transactions" ];
      step ~name:"secure" [ "security" ];
      step ~optional:true ~name:"synchronize" [ "concurrency" ];
      step ~optional:true ~name:"instrument" [ "logging" ];
    ]

type progress = {
  definition : t;
  done_rev : (string * string) list;  (** (step, concern), most recent first *)
  position : int;  (** index of the next unsatisfied step *)
}

let start definition = { definition; done_rev = []; position = 0 }
let definition p = p.definition

let current_step p = List.nth_opt p.definition.steps p.position

let rec find_admitting steps position concern =
  match List.nth_opt steps position with
  | None -> None
  | Some s ->
      if List.mem concern s.choices then Some (position, s)
      else if s.optional then find_admitting steps (position + 1) concern
      else None

let advance p ~concern =
  match find_admitting p.definition.steps p.position concern with
  | Some (position, s) ->
      Ok
        {
          p with
          done_rev = (s.step_name, concern) :: p.done_rev;
          position = position + 1;
        }
  | None -> (
      match current_step p with
      | Some s ->
          Error
            (Printf.sprintf
               "concern %s is not admissible at step %s (expected one of: %s)"
               concern s.step_name
               (String.concat ", " s.choices))
      | None ->
          Error
            (Printf.sprintf "workflow is complete; concern %s not expected"
               concern))

let completed p = List.rev p.done_rev
let applied_concerns p = List.map snd (completed p)

let is_complete p =
  let rec all_optional i =
    match List.nth_opt p.definition.steps i with
    | None -> true
    | Some s -> s.optional && all_optional (i + 1)
  in
  all_optional p.position

let options p =
  let rec collect i acc =
    match List.nth_opt p.definition.steps i with
    | None -> acc
    | Some s ->
        let acc =
          List.fold_left
            (fun acc c -> if List.mem c acc then acc else acc @ [ c ])
            acc s.choices
        in
        if s.optional then collect (i + 1) acc else acc
  in
  collect p.position []

let remaining_concerns p =
  let rec collect i acc =
    match List.nth_opt p.definition.steps i with
    | None -> acc
    | Some s ->
        collect (i + 1)
          (List.fold_left
             (fun acc c -> if List.mem c acc then acc else acc @ [ c ])
             acc s.choices)
  in
  collect p.position []
