(** The refinement workflow model — the paper's Section 3 guidance
    requirement: "A workflow model could track the refinement of a PIM or
    PSM through transformations. The workflow model could define which
    generic transformations can be applied at a certain refinement step, and
    therefore could determine the allowed sequence of transformations."

    A workflow is a sequence of steps, each naming the concerns admissible
    at that point. Progress tracks which concern was chosen at each
    completed step. Optional steps may be skipped. *)

type step = {
  step_name : string;
  choices : string list;  (** concern keys admissible at this step *)
  optional : bool;
}

val step : ?optional:bool -> name:string -> string list -> step

type t = { steps : step list }

val workflow : step list -> t

val middleware_default : t
(** The workflow the paper's running example follows: distribution, then
    transactions, then security, with optional concurrency and logging
    steps at the end. *)

type progress

val start : t -> progress

val definition : progress -> t
(** The workflow a progress value tracks. *)

val current_step : progress -> step option
(** The next step to satisfy; [None] when the workflow is complete. *)

val advance : progress -> concern:string -> (progress, string) result
(** Records that [concern] was applied. The concern must be admissible at
    the current step, or at a later step reachable by skipping only
    optional steps (the skipped steps are consumed). *)

val completed : progress -> (string * string) list
(** (step name, concern applied) pairs so far. *)

val applied_concerns : progress -> string list

val is_complete : progress -> bool
(** All non-optional steps satisfied. *)

val remaining_concerns : progress -> string list
(** Concerns still applicable at the current and later steps — the paper's
    "list of the remaining concerns". *)

val options : progress -> string list
(** Concerns admissible for the very next {!advance}: the current step's
    choices plus those of later steps reachable by skipping only optional
    steps. *)
