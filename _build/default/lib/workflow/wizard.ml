type question = {
  parameter : string;
  type_hint : string;
  doc : string;
  default_hint : string option;
}

let questions decls =
  List.map
    (fun (d : Transform.Params.decl) ->
      {
        parameter = d.Transform.Params.pname;
        type_hint = Transform.Params.ptype_to_string d.Transform.Params.ptype;
        doc = d.Transform.Params.doc;
        default_hint =
          Option.map Transform.Params.value_to_string d.Transform.Params.default;
      })
    decls

let render_questions decls =
  String.concat "\n"
    (List.map
       (fun q ->
         Printf.sprintf "  %s : %s — %s%s" q.parameter q.type_hint q.doc
           (match q.default_hint with
           | Some d -> " (default " ^ d ^ ")"
           | None -> " (required)"))
       (questions decls))

let rec parse_value ptype text =
  match ptype with
  | Transform.Params.P_string -> Ok (Transform.Params.V_string text)
  | Transform.Params.P_ident -> Ok (Transform.Params.V_ident text)
  | Transform.Params.P_int -> (
      match int_of_string_opt text with
      | Some n -> Ok (Transform.Params.V_int n)
      | None -> Error (Printf.sprintf "%s is not an integer" text))
  | Transform.Params.P_bool -> (
      match text with
      | "true" -> Ok (Transform.Params.V_bool true)
      | "false" -> Ok (Transform.Params.V_bool false)
      | _ -> Error (Printf.sprintf "%s is not a boolean" text))
  | Transform.Params.P_enum cases ->
      if List.mem text cases then Ok (Transform.Params.V_string text)
      else
        Error
          (Printf.sprintf "%s is not one of %s" text (String.concat "|" cases))
  | Transform.Params.P_list inner ->
      let items =
        List.filter
          (fun s -> not (String.equal s ""))
          (List.map String.trim (String.split_on_char ',' text))
      in
      let rec parse_all acc = function
        | [] -> Ok (Transform.Params.V_list (List.rev acc))
        | item :: rest -> (
            match parse_value inner item with
            | Ok v -> parse_all (v :: acc) rest
            | Error e -> Error e)
      in
      parse_all [] items

let parse_assignment decls text =
  match String.index_opt text '=' with
  | None -> Error (Printf.sprintf "expected name=value, got %s" text)
  | Some i -> (
      let name = String.sub text 0 i in
      let raw = String.sub text (i + 1) (String.length text - i - 1) in
      match
        List.find_opt
          (fun (d : Transform.Params.decl) ->
            String.equal d.Transform.Params.pname name)
          decls
      with
      | None -> Error (Printf.sprintf "unknown parameter %s" name)
      | Some d -> (
          match parse_value d.Transform.Params.ptype raw with
          | Ok v -> Ok (name, v)
          | Error e -> Error (Printf.sprintf "parameter %s: %s" name e)))

let parse_assignments decls texts =
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | text :: rest -> (
        match parse_assignment decls text with
        | Ok pair -> loop (pair :: acc) rest
        | Error e -> Error e)
  in
  loop [] texts
