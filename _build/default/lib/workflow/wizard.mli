(** Wizard support — the paper's "concern-oriented wizards for configuring
    the generic model transformations along a concern-dimension", in
    CLI form: question generation from formal parameter declarations and
    parsing of textual assignments. *)

(** One configuration question. *)
type question = {
  parameter : string;
  type_hint : string;  (** rendered parameter type *)
  doc : string;
  default_hint : string option;  (** rendered default, when present *)
}

val questions : Transform.Params.decl list -> question list

val render_questions : Transform.Params.decl list -> string
(** The wizard prompt text, one line per parameter. *)

val parse_value :
  Transform.Params.ptype -> string -> (Transform.Params.value, string) result
(** Parses textual input against a parameter type: ["true"] for booleans,
    decimal integers, comma-separated items for lists, enum keywords
    verbatim. *)

val parse_assignment :
  Transform.Params.decl list ->
  string ->
  (string * Transform.Params.value, string) result
(** Parses ["name=text"] using the declared type of [name]. *)

val parse_assignments :
  Transform.Params.decl list ->
  string list ->
  ((string * Transform.Params.value) list, string) result
(** All-or-nothing parsing of a list of ["name=text"] inputs. *)
