lib/xmi/dtype.ml: Mof Option String
