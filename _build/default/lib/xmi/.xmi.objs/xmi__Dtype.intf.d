lib/xmi/dtype.mli: Mof
