lib/xmi/export.ml: Dtype Fun List Mof String Xml Xml_printer
