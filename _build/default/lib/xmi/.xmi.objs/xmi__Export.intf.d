lib/xmi/export.mli: Mof Xml
