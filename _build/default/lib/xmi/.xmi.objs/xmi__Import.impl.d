lib/xmi/import.ml: Dtype Format Fun List Mof Option String Xml Xml_parser
