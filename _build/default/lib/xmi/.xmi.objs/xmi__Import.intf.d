lib/xmi/import.mli: Mof Xml
