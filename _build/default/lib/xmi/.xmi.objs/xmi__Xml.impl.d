lib/xmi/xml.ml: List String
