lib/xmi/xml.mli:
