lib/xmi/xml_parser.ml: Buffer Char Format List String Xml
