lib/xmi/xml_parser.mli: Xml
