lib/xmi/xml_printer.ml: Buffer List String Xml
