lib/xmi/xml_printer.mli: Xml
