let rec to_string = function
  | Mof.Kind.Dt_void -> "void"
  | Mof.Kind.Dt_boolean -> "Boolean"
  | Mof.Kind.Dt_integer -> "Integer"
  | Mof.Kind.Dt_real -> "Real"
  | Mof.Kind.Dt_string -> "String"
  | Mof.Kind.Dt_ref id -> "ref:" ^ Mof.Id.to_string id
  | Mof.Kind.Dt_collection inner -> "Set(" ^ to_string inner ^ ")"

let rec of_string s =
  match s with
  | "void" -> Some Mof.Kind.Dt_void
  | "Boolean" -> Some Mof.Kind.Dt_boolean
  | "Integer" -> Some Mof.Kind.Dt_integer
  | "Real" -> Some Mof.Kind.Dt_real
  | "String" -> Some Mof.Kind.Dt_string
  | _ ->
      if String.length s > 4 && String.sub s 0 4 = "ref:" then
        Option.map
          (fun id -> Mof.Kind.Dt_ref id)
          (Mof.Id.of_string (String.sub s 4 (String.length s - 4)))
      else if
        String.length s > 5
        && String.sub s 0 4 = "Set("
        && s.[String.length s - 1] = ')'
      then
        Option.map
          (fun inner -> Mof.Kind.Dt_collection inner)
          (of_string (String.sub s 4 (String.length s - 5)))
      else None
