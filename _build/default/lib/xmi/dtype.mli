(** Textual form of {!Mof.Kind.datatype} used in XMI attributes. *)

val to_string : Mof.Kind.datatype -> string
(** ["void"], ["Boolean"], …, ["ref:e5"] for classifier references, and
    ["Set(<inner>)"] for collections. *)

val of_string : string -> Mof.Kind.datatype option
(** Inverse of {!to_string}. *)
