(** XMI export: models to interchange documents.

    The document follows the XMI 1.2 envelope ([XMI]/[XMI.header]/
    [XMI.content]) with one tag per metaclass. Containment is nesting;
    cross-references (supers, datatypes, constrained elements) are id-valued
    attributes. Stereotypes and tagged values become [Stereotype] and
    [TaggedValue] child nodes, so any element can carry them — the property
    the concern transformations rely on. *)

val to_xml : Mof.Model.t -> Xml.t
(** The XMI document of a model. *)

val to_string : Mof.Model.t -> string
(** Pretty-printed XMI text, including the XML declaration. *)

val write_file : string -> Mof.Model.t -> unit
(** Writes {!to_string} to a file. *)
