(** XMI import: interchange documents back to models.

    [import (Export.to_string m)] reconstructs a model structurally equal to
    [m] — ids, containment order, stereotypes, tagged values, and constraint
    bodies included. This round-trip property is what tool interoperability
    (the paper's Section 3 XMI requirement) rests on, and it is enforced by
    property-based tests. *)

exception Import_error of string

val of_xml : Xml.t -> Mof.Model.t
(** Reconstructs a model from a parsed XMI document.
    @raise Import_error when the document is not valid XMI produced by
    {!Export} (missing attributes, unknown tags, malformed ids, …). *)

val from_string : string -> Mof.Model.t
(** Parse then {!of_xml}.
    @raise Xml_parser.Xml_error on malformed XML
    @raise Import_error on malformed XMI. *)

val read_file : string -> Mof.Model.t
