type t =
  | Elem of {
      tag : string;
      attrs : (string * string) list;
      children : t list;
    }
  | Text of string

let elem ?(attrs = []) tag children = Elem { tag; attrs; children }
let text s = Text s

let tag = function Elem { tag; _ } -> Some tag | Text _ -> None

let attr name = function
  | Elem { attrs; _ } -> List.assoc_opt name attrs
  | Text _ -> None

let attr_exn name node =
  match attr name node with Some v -> v | None -> raise Not_found

let children = function Elem { children; _ } -> children | Text _ -> []

let child_elems node =
  List.filter (fun c -> match c with Elem _ -> true | Text _ -> false) (children node)

let find_child wanted node =
  List.find_opt
    (fun c -> match tag c with Some t -> String.equal t wanted | None -> false)
    (children node)

let find_children wanted node =
  List.filter
    (fun c -> match tag c with Some t -> String.equal t wanted | None -> false)
    (children node)

let text_content node =
  String.concat ""
    (List.filter_map
       (fun c -> match c with Text s -> Some s | Elem _ -> None)
       (children node))

let rec equal a b =
  match (a, b) with
  | Text x, Text y -> String.equal x y
  | Elem x, Elem y ->
      String.equal x.tag y.tag
      && List.equal
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && String.equal v1 v2)
           x.attrs y.attrs
      && List.equal equal x.children y.children
  | _, _ -> false
