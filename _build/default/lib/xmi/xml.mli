(** A small XML document model: the subset XMI interchange needs.

    Namespace prefixes are treated as part of names (["XMI.content"] is just
    a tag). Attribute order is preserved. *)

type t =
  | Elem of {
      tag : string;
      attrs : (string * string) list;
      children : t list;
    }
  | Text of string

val elem : ?attrs:(string * string) list -> string -> t list -> t
(** [elem tag children] is an element node. *)

val text : string -> t

val tag : t -> string option
(** The tag of an element node, [None] for text. *)

val attr : string -> t -> string option
(** Attribute lookup on an element node. *)

val attr_exn : string -> t -> string
(** @raise Not_found when absent or on a text node. *)

val children : t -> t list
(** Children of an element node, [] for text. *)

val child_elems : t -> t list
(** Children that are element nodes, skipping whitespace-only text. *)

val find_child : string -> t -> t option
(** First child element with the given tag. *)

val find_children : string -> t -> t list
(** All child elements with the given tag, in order. *)

val text_content : t -> string
(** Concatenated text of the node's direct text children. *)

val equal : t -> t -> bool
