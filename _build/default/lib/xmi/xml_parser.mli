(** XML parser for the interchange subset: prolog, comments, CDATA,
    elements, attributes (single or double quoted), character data, and the
    five predefined entities plus decimal/hex character references.

    Not supported (not needed for XMI interchange): DTDs, processing
    instructions other than the prolog, namespace resolution. *)

exception Xml_error of string * int
(** [Xml_error (message, offset)]. *)

val parse : string -> Xml.t
(** Parses a document and returns its root element. Whitespace-only text
    between elements is dropped; other text is kept verbatim.
    @raise Xml_error on malformed input. *)

val unescape : string -> string
(** Resolves entity and character references in attribute or text content.
    @raise Xml_error on malformed references. *)
