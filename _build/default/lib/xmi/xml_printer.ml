let escape common s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when common -> Buffer.add_string buf "&quot;"
      | '\'' when common -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_attr s = escape true s
let escape_text s = escape false s

let to_string ?(indent = 2) ?(declaration = true) root =
  let buf = Buffer.create 1024 in
  if declaration then
    Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  let pad depth = Buffer.add_string buf (String.make (depth * indent) ' ') in
  let add_attrs attrs =
    List.iter
      (fun (k, v) ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_attr v);
        Buffer.add_char buf '"')
      attrs
  in
  let only_text children =
    children <> [] && List.for_all (function Xml.Text _ -> true | Xml.Elem _ -> false) children
  in
  let rec render depth node =
    match node with
    | Xml.Text s ->
        pad depth;
        Buffer.add_string buf (escape_text s);
        Buffer.add_char buf '\n'
    | Xml.Elem { tag; attrs; children } ->
        pad depth;
        Buffer.add_char buf '<';
        Buffer.add_string buf tag;
        add_attrs attrs;
        if children = [] then Buffer.add_string buf "/>\n"
        else if only_text children then begin
          Buffer.add_char buf '>';
          List.iter
            (function
              | Xml.Text s -> Buffer.add_string buf (escape_text s)
              | Xml.Elem _ -> assert false)
            children;
          Buffer.add_string buf ("</" ^ tag ^ ">\n")
        end
        else begin
          Buffer.add_string buf ">\n";
          List.iter (render (depth + 1)) children;
          pad depth;
          Buffer.add_string buf ("</" ^ tag ^ ">\n")
        end
  in
  render 0 root;
  Buffer.contents buf
