(** Serialization of XML documents. *)

val escape_attr : string -> string
(** Escapes ampersand, angle brackets, and both quote characters for
    attribute-value position. *)

val escape_text : string -> string
(** Escapes ampersand and angle brackets for character-data position. *)

val to_string : ?indent:int -> ?declaration:bool -> Xml.t -> string
(** Pretty-prints a document. [indent] (default 2) controls nesting;
    [declaration] (default true) prepends the [<?xml …?>] prolog. Elements
    with only text children print inline so that round-tripping preserves
    their text exactly. *)
