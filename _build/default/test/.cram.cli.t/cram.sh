  $ mdweave sample bank.xmi
  $ mdweave info bank.xmi
  $ mdweave apply bank.xmi -c distribution -p remote=Account -o bank2.xmi
  $ mdweave check bank2.xmi -e "Class.allInstances()->exists(c | c.hasStereotype('remote'))"
  $ mdweave check bank.xmi -e "Class.allInstances()->exists(c | c.hasStereotype('remote'))"
  $ mdweave build bank.xmi -s "distribution: remote=Account|Teller" -s "transactions: transactional=Account" -o out
  $ ls out
  $ mdweave joinpoints bank.xmi --pointcut "execution(Teller.*)"
  $ mdweave run bank.xmi -s "transactions: transactional=Account" --class Account --method deposit
  $ mdweave run bank.xmi -s "transactions: transactional=Account" --class Account --method deposit --fault Account.deposit
  $ mdweave ship bank.xmi -s "distribution: remote=Account" -s "security: secured=Account, roles=clerk|manager" -o pkg
  $ cat pkg/MANIFEST
  $ mdweave replay pkg
  $ mdweave color bank.xmi -s "distribution: remote=Teller" --html demarcation.html | tail -4
  $ grep -c "li style" demarcation.html
  $ grep -A2 "interference analysis:" out/BUILD-REPORT.txt | head -2
  $ mdweave stats bank.xmi -s "distribution: remote=Account" -s "transactions: transactional=Account" | tail -7
