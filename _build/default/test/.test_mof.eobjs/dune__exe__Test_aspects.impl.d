test/test_aspects.ml: Alcotest Aspects Code Gen List QCheck2 QCheck_alcotest Result String Transform
