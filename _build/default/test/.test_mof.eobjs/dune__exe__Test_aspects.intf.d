test/test_aspects.mli:
