test/test_code.ml: Alcotest Code Core Fixtures Gen List Mof QCheck2 QCheck_alcotest Result String Transform
