test/test_code.mli:
