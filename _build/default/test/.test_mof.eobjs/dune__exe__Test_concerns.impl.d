test/test_concerns.ml: Alcotest Aspects Concerns Fixtures Format Gen List Mof Ocl QCheck2 QCheck_alcotest Result String Transform Xmi
