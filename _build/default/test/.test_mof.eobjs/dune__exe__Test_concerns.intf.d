test/test_concerns.mli:
