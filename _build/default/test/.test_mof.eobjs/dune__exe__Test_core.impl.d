test/test_core.ml: Alcotest Array Aspects Code Concerns Core Filename Fixtures Format Fun List Mof Option Printf Random Result String Sys Transform Unix Weaver Workflow
