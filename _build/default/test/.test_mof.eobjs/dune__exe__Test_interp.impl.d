test/test_interp.ml: Alcotest Code Core Fixtures Interp List Result Transform Weaver
