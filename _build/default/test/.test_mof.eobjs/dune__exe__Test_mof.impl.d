test/test_mof.ml: Alcotest Fixtures Format Fun Gen List Mof QCheck2 QCheck_alcotest String
