test/test_mof.mli:
