test/test_ocl.ml: Alcotest Fixtures Format Gen List Mof Ocl Printf QCheck2 QCheck_alcotest String
