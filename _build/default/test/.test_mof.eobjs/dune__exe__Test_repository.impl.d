test/test_repository.ml: Alcotest Fixtures List Mof Option Repository String
