test/test_transform.ml: Alcotest Cmt Compose Engine Fixtures Format Gen Gmt List Mof Ocl Params QCheck2 QCheck_alcotest Report Result String Trace Transform
