test/test_weaver.ml: Alcotest Aspects Code Gen List Option QCheck2 QCheck_alcotest String Weaver
