test/test_weaver.mli:
