test/test_workflow.ml: Alcotest Concerns Fixtures List Mof Result String Transform Workflow
