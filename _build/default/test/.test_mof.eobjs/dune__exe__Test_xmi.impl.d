test/test_xmi.ml: Alcotest Concerns Filename Fixtures Fun Gen List Mof QCheck2 QCheck_alcotest String Sys Transform Xmi
