The mdweave CLI, end to end: sample model, inspection, wizard listing,
single transformation, OCL checking, full build, join-point queries, and
interpreted execution of the woven program.

  $ mdweave sample bank.xmi
  wrote sample banking PIM to bank.xmi

  $ mdweave info bank.xmi
  model: banking (13 elements, level PIM)
  package banking
    class Account
      -balance : Real [1]
      +deposit(in amount : Real) : void
      +withdraw(in amount : Real) : Boolean
    class Teller
      +transfer(in from : Account, in target : Account, in amount : Real) : void
  well-formed: yes

  $ mdweave apply bank.xmi -c distribution -p remote=Account -o bank2.xmi
  T.distribution<[Account], "rmi", "localhost:1099"> [distribution] +23 -0 ~2
  -> bank2.xmi

  $ mdweave check bank2.xmi -e "Class.allInstances()->exists(c | c.hasStereotype('remote'))"
  holds

  $ mdweave check bank.xmi -e "Class.allInstances()->exists(c | c.hasStereotype('remote'))"
  fails
  [1]

  $ mdweave build bank.xmi -s "distribution: remote=Account|Teller" -s "transactions: transactional=Account" -o out
  T.distribution<[Account, Teller], "rmi", "localhost:1099"> [distribution] +37 -0 ~3
  T.transactions<[Account], "serializable", "required"> [transactions] +8 -0 ~2
  1 unit(s), 2 class(es), 5 method(s); 2 aspect(s), 9 advice application(s)
  artifacts written to out

  $ ls out
  BUILD-REPORT.txt
  aspects.aj
  functional.java
  refined.xmi
  woven.java

  $ mdweave joinpoints bank.xmi --pointcut "execution(Teller.*)"
  execution(Teller.transfer)
  1 of 5 execution join point(s) match execution(Teller.*)

  $ mdweave run bank.xmi -s "transactions: transactional=Account" --class Account --method deposit
  T.transactions<[Account], "serializable", "required"> [transactions] +8 -0 ~2
  executing woven Account.deposit (1 default argument(s))
    TransactionManager.begin(serializable, required)
    TransactionManager.commit()
  -> returned null

  $ mdweave run bank.xmi -s "transactions: transactional=Account" --class Account --method deposit --fault Account.deposit
  T.transactions<[Account], "serializable", "required"> [transactions] +8 -0 ~2
  executing woven Account.deposit (1 default argument(s))
    FaultInjector.throw(Account.deposit)
  -> threw RuntimeException
  [1]

  $ mdweave ship bank.xmi -s "distribution: remote=Account" -s "security: secured=Account, roles=clerk|manager" -o pkg
  T.distribution<[Account], "rmi", "localhost:1099"> [distribution] +23 -0 ~2
  T.security<[Account], ["clerk", "manager"], "token"> [security] +10 -0 ~2
  shipped 2 step(s) to pkg

  $ cat pkg/MANIFEST
  step	distribution	remote=Account	protocol=rmi	registry=localhost:1099
  step	security	secured=Account	roles=clerk,manager	authentication=token

  $ mdweave replay pkg
  replay verified: final model reproduced

  $ mdweave color bank.xmi -s "distribution: remote=Teller" --html demarcation.html | tail -4
  [red] Dependency TellerProxy->Teller
  --
  red — distribution
  HTML demarcation written to demarcation.html

  $ grep -c "li style" demarcation.html
  21

  $ grep -A2 "interference analysis:" out/BUILD-REPORT.txt | head -2
  interference analysis:
  5 advised join point(s), 4 shared across concerns

  $ mdweave stats bank.xmi -s "distribution: remote=Account" -s "transactions: transactional=Account" | tail -7
  model: banking (PIM)
  elements: 44 total
    1 package(s), 5 class(es), 1 interface(s), 0 enumeration(s)
    0 association(s), 1 constraint(s)
  concerns applied: distribution, transactions
    distribution   25 element(s) in its concern space
    transactions   10 element(s) in its concern space
