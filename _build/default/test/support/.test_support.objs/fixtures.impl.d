test/support/fixtures.ml: List Mof Printf
