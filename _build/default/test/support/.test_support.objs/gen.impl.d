test/support/gen.ml: Aspects List Mof Ocl Printf QCheck2 String
