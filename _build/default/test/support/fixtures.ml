(* Model fixtures shared across the test suites. *)

(* The banking PIM used throughout: two service classes, a data class, an
   association, a generalization, and a constraint — one element of every
   interesting kind. *)
let banking () =
  let m = Mof.Model.create ~name:"banking" in
  let root = Mof.Model.root m in
  let m, bank = Mof.Builder.add_package m ~owner:root ~name:"bank" in
  let m, acct = Mof.Builder.add_class m ~owner:bank ~name:"Account" in
  let m, balance =
    Mof.Builder.add_attribute m ~cls:acct ~name:"balance" ~typ:Mof.Kind.Dt_real
  in
  let m, _ =
    Mof.Builder.add_attribute m ~cls:acct ~name:"number"
      ~typ:Mof.Kind.Dt_string ~visibility:Mof.Kind.Public
  in
  let m, dep = Mof.Builder.add_operation m ~owner:acct ~name:"deposit" in
  let m, _ =
    Mof.Builder.add_parameter m ~op:dep ~name:"amount" ~typ:Mof.Kind.Dt_real
  in
  let m, wd = Mof.Builder.add_operation m ~owner:acct ~name:"withdraw" in
  let m, _ =
    Mof.Builder.add_parameter m ~op:wd ~name:"amount" ~typ:Mof.Kind.Dt_real
  in
  let m = Mof.Builder.set_result m ~op:wd ~typ:Mof.Kind.Dt_boolean in
  let m, savings = Mof.Builder.add_class m ~owner:bank ~name:"SavingsAccount" in
  let m, _ = Mof.Builder.add_generalization m ~child:savings ~parent:acct in
  let m, teller = Mof.Builder.add_class m ~owner:bank ~name:"Teller" in
  let m, tr = Mof.Builder.add_operation m ~owner:teller ~name:"transfer" in
  let m, _ =
    Mof.Builder.add_parameter m ~op:tr ~name:"from" ~typ:(Mof.Kind.Dt_ref acct)
  in
  let m, _ =
    Mof.Builder.add_parameter m ~op:tr ~name:"target" ~typ:(Mof.Kind.Dt_ref acct)
  in
  let m, _ =
    Mof.Builder.add_parameter m ~op:tr ~name:"amount" ~typ:Mof.Kind.Dt_real
  in
  let m, customer = Mof.Builder.add_class m ~owner:bank ~name:"Customer" in
  let m, _ =
    Mof.Builder.add_attribute m ~cls:customer ~name:"name" ~typ:Mof.Kind.Dt_string
  in
  let m, _ =
    Mof.Builder.add_association m ~owner:bank ~name:"holds"
      ~ends:
        [
          {
            Mof.Kind.end_name = "owner";
            end_type = customer;
            end_mult = Mof.Kind.mult_one;
            end_navigable = true;
            end_aggregation = Mof.Kind.Ag_none;
          };
          {
            Mof.Kind.end_name = "accounts";
            end_type = acct;
            end_mult = Mof.Kind.mult_many;
            end_navigable = true;
            end_aggregation = Mof.Kind.Ag_composite;
          };
        ]
  in
  let m, _ =
    Mof.Builder.add_constraint m ~owner:bank ~name:"positive-balance"
      ~constrained:[ balance ]
      ~body:"Attribute.allInstances()->forAll(a | a.lower >= 0)"
  in
  m

(* Handy handles into the banking fixture. *)
let class_id m name =
  match Mof.Query.find_class m name with
  | Some e -> e.Mof.Element.id
  | None -> failwith ("fixture class missing: " ^ name)

(* A synthetic model with [n] classes, each carrying [attrs] attributes and
   [ops] operations with one parameter — the scaling workload for benches
   and property tests. *)
let synthetic ?(attrs = 3) ?(ops = 3) n =
  let m = Mof.Model.create ~name:"synthetic" in
  let root = Mof.Model.root m in
  let rec add_class m i =
    if i >= n then m
    else
      let m, cls =
        Mof.Builder.add_class m ~owner:root ~name:(Printf.sprintf "C%d" i)
      in
      let rec add_attr m j =
        if j >= attrs then m
        else
          let m, _ =
            Mof.Builder.add_attribute m ~cls ~name:(Printf.sprintf "f%d" j)
              ~typ:(if j mod 2 = 0 then Mof.Kind.Dt_integer else Mof.Kind.Dt_string)
          in
          add_attr m (j + 1)
      in
      let rec add_op m j =
        if j >= ops then m
        else
          let m, op =
            Mof.Builder.add_operation m ~owner:cls ~name:(Printf.sprintf "m%d" j)
          in
          let m, _ =
            Mof.Builder.add_parameter m ~op ~name:"x" ~typ:Mof.Kind.Dt_integer
          in
          let m = Mof.Builder.set_result m ~op ~typ:Mof.Kind.Dt_integer in
          add_op m (j + 1)
      in
      add_class (add_op (add_attr m 0) 0) (i + 1)
  in
  add_class m 0

let class_names m =
  List.map (fun (e : Mof.Element.t) -> e.Mof.Element.name) (Mof.Query.classes m)
