(* Tests for the aspect model: patterns, pointcuts, advice, aspects, generic
   aspects, the generator, and the printer. *)

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ---- patterns ------------------------------------------------------------ *)

let pattern_tests =
  [
    Alcotest.test_case "literal patterns match exactly" `Quick (fun () ->
        check cb "same" true (Aspects.Pattern.matches "Account" "Account");
        check cb "different" false (Aspects.Pattern.matches "Account" "Account2");
        check cb "prefix" false (Aspects.Pattern.matches "Acc" "Account"));
    Alcotest.test_case "star positions" `Quick (fun () ->
        check cb "suffix star" true (Aspects.Pattern.matches "Account*" "AccountProxy");
        check cb "prefix star" true (Aspects.Pattern.matches "*Proxy" "AccountProxy");
        check cb "middle star" true (Aspects.Pattern.matches "A*y" "AccountProxy");
        check cb "both stars" true (Aspects.Pattern.matches "*count*" "AccountProxy");
        check cb "bare star" true (Aspects.Pattern.matches "*" "anything");
        check cb "star matches empty" true (Aspects.Pattern.matches "Account*" "Account"));
    Alcotest.test_case "multiple stars" `Quick (fun () ->
        check cb "a*b*c" true (Aspects.Pattern.matches "a*b*c" "aXXbYYc");
        check cb "a*b*c strict" false (Aspects.Pattern.matches "a*b*c" "aXXcYYb"));
    Alcotest.test_case "empty cases" `Quick (fun () ->
        check cb "empty/empty" true (Aspects.Pattern.matches "" "");
        check cb "empty pattern" false (Aspects.Pattern.matches "" "x");
        check cb "star/empty" true (Aspects.Pattern.matches "*" ""));
    Alcotest.test_case "method patterns" `Quick (fun () ->
        let mp = Aspects.Pattern.method_pattern "Account" "set*" in
        check cb "match" true
          (Aspects.Pattern.matches_method mp ~class_name:"Account"
             ~method_name:"setBalance");
        check cb "class mismatch" false
          (Aspects.Pattern.matches_method mp ~class_name:"Teller"
             ~method_name:"setBalance");
        check cs "rendering" "Account.set*"
          (Aspects.Pattern.method_pattern_to_string mp));
    Alcotest.test_case "is_wildcard" `Quick (fun () ->
        check cb "yes" true (Aspects.Pattern.is_wildcard "a*");
        check cb "no" false (Aspects.Pattern.is_wildcard "ab"));
  ]

let pattern_properties =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck2.Test.make ~name:"star matches everything" ~count:100
        Gen.pattern_and_name_gen (fun (_, name) ->
          Aspects.Pattern.matches "*" name);
      QCheck2.Test.make ~name:"a literal matches itself" ~count:100
        Gen.pattern_and_name_gen (fun (_, name) ->
          Aspects.Pattern.matches name name);
      QCheck2.Test.make ~name:"pattern*: prefix extension still matches"
        ~count:100 Gen.pattern_and_name_gen (fun (_, name) ->
          Aspects.Pattern.matches (name ^ "*") (name ^ "suffix"));
    ]

(* ---- pointcuts ------------------------------------------------------------ *)

let pointcut_tests =
  [
    Alcotest.test_case "rendering" `Quick (fun () ->
        let open Aspects.Pointcut in
        check cs "execution" "execution(Account.set*)"
          (to_string (execution "Account" "set*"));
        check cs "combined"
          "(execution(A.*) && !within(B))"
          (to_string (execution "A" "*" &&& not_ (within "B")));
        check cs "or" "(call(A.f) || set(A.x))"
          (to_string (call "A" "f" ||| set_field "A" "x")));
    Alcotest.test_case "execution_patterns collects positively" `Quick
      (fun () ->
        let open Aspects.Pointcut in
        let pc = execution "A" "f" &&& (execution "B" "g" ||| within "C") in
        check ci "two" 2 (List.length (execution_patterns pc));
        check ci "not under negation" 0
          (List.length (execution_patterns (not_ (execution "A" "f")))));
  ]

(* ---- pointcut parser ------------------------------------------------------- *)

let pointcut_parser_tests =
  let parse_ok src =
    match Aspects.Pointcut_parser.parse src with
    | Ok pc -> pc
    | Error e -> Alcotest.fail e
  in
  [
    Alcotest.test_case "primitives" `Quick (fun () ->
        check cb "execution" true
          (parse_ok "execution(Account.set*)"
          = Aspects.Pointcut.execution "Account" "set*");
        check cb "call" true
          (parse_ok "call(Helper.run)" = Aspects.Pointcut.call "Helper" "run");
        check cb "set" true
          (parse_ok "set(C.f)" = Aspects.Pointcut.set_field "C" "f");
        check cb "within" true
          (parse_ok "within(*Proxy)" = Aspects.Pointcut.within "*Proxy"));
    Alcotest.test_case "combinators and precedence" `Quick (fun () ->
        let open Aspects.Pointcut in
        check cb "and binds tighter than or" true
          (parse_ok "within(A) || within(B) && within(C)"
          = (within "A" ||| (within "B" &&& within "C")));
        check cb "negation" true
          (parse_ok "!within(A) && execution(B.*)"
          = (not_ (within "A") &&& execution "B" "*"));
        check cb "parentheses" true
          (parse_ok "(within(A) || within(B)) && within(C)"
          = ((within "A" ||| within "B") &&& within "C")));
    Alcotest.test_case "round trip through to_string" `Quick (fun () ->
        let open Aspects.Pointcut in
        List.iter
          (fun pc ->
            check cb (to_string pc) true (parse_ok (to_string pc) = pc))
          [
            execution "Account" "set*";
            call "A" "f" &&& not_ (within "B");
            set_field "C" "f" ||| (execution "D" "*" &&& within "E*");
            not_ (not_ (within "X"));
          ]);
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"random pointcuts round trip" ~count:200
         Gen.pointcut_gen (fun pc ->
           match Aspects.Pointcut_parser.parse (Aspects.Pointcut.to_string pc) with
           | Ok pc' -> pc' = pc
           | Error _ -> false));
    Alcotest.test_case "errors are reported, not raised" `Quick (fun () ->
        List.iter
          (fun src ->
            check cb src true
              (Result.is_error (Aspects.Pointcut_parser.parse src)))
          [
            "";
            "execution(Account)";
            "frobnicate(A.b)";
            "within(A) &&";
            "within(A) extra";
            "(within(A)";
          ]);
  ]

(* ---- advice ---------------------------------------------------------------- *)

let advice_tests =
  [
    Alcotest.test_case "proceed detection, direct and nested" `Quick (fun () ->
        let direct =
          Aspects.Advice.make Aspects.Advice.Around
            (Aspects.Pointcut.execution "A" "*")
            [ Aspects.Advice.proceed ]
        in
        check cb "direct" true (Aspects.Advice.mentions_proceed direct);
        let nested =
          Aspects.Advice.make Aspects.Advice.Around
            (Aspects.Pointcut.execution "A" "*")
            [
              Code.Jstmt.S_try
                ( [ Code.Jstmt.S_if (Code.Jexpr.E_bool true, [ Aspects.Advice.proceed ], []) ],
                  [],
                  [] );
            ]
        in
        check cb "nested" true (Aspects.Advice.mentions_proceed nested);
        let without =
          Aspects.Advice.make Aspects.Advice.Before
            (Aspects.Pointcut.execution "A" "*")
            [ Code.Jstmt.S_comment "nothing" ]
        in
        check cb "absent" false (Aspects.Advice.mentions_proceed without));
    Alcotest.test_case "default names are informative" `Quick (fun () ->
        let a =
          Aspects.Advice.make Aspects.Advice.Before
            (Aspects.Pointcut.execution "A" "f")
            []
        in
        check cs "name" "before: execution(A.f)" a.Aspects.Advice.advice_name);
  ]

(* ---- aspect validation ------------------------------------------------------ *)

let aspect_tests =
  [
    Alcotest.test_case "around without proceed flagged" `Quick (fun () ->
        let aspect =
          Aspects.Aspect.make ~name:"Bad" ~concern:"c"
            ~advices:
              [
                Aspects.Advice.make Aspects.Advice.Around
                  (Aspects.Pointcut.execution "A" "*")
                  [ Code.Jstmt.S_comment "no proceed" ];
              ]
            ()
        in
        check cb "flagged" true (Aspects.Aspect.validate aspect <> []));
    Alcotest.test_case "before with proceed flagged" `Quick (fun () ->
        let aspect =
          Aspects.Aspect.make ~name:"Bad" ~concern:"c"
            ~advices:
              [
                Aspects.Advice.make Aspects.Advice.Before
                  (Aspects.Pointcut.execution "A" "*")
                  [ Aspects.Advice.proceed ];
              ]
            ()
        in
        check cb "flagged" true (Aspects.Aspect.validate aspect <> []));
    Alcotest.test_case "duplicate inter-type fields flagged" `Quick (fun () ->
        let field =
          {
            Code.Jdecl.field_name = "x";
            field_type = Code.Jtype.T_int;
            field_mods = [];
            field_init = None;
          }
        in
        let aspect =
          Aspects.Aspect.make ~name:"Bad" ~concern:"c"
            ~intertypes:
              [ Aspects.Aspect.It_field ("A", field); Aspects.Aspect.It_field ("A", field) ]
            ()
        in
        check cb "flagged" true (Aspects.Aspect.validate aspect <> []));
    Alcotest.test_case "clean aspect validates" `Quick (fun () ->
        let aspect =
          Aspects.Aspect.make ~name:"Good" ~concern:"c"
            ~advices:
              [
                Aspects.Advice.make Aspects.Advice.Around
                  (Aspects.Pointcut.execution "A" "*")
                  [ Aspects.Advice.proceed ];
              ]
            ()
        in
        check (Alcotest.list cs) "no diags" [] (Aspects.Aspect.validate aspect));
  ]

(* ---- generic aspects + generator --------------------------------------------- *)

let counting_gac =
  Aspects.Generic.make ~name:"A.count" ~concern:"counting"
    ~formals:
      [ Transform.Params.decl "targets" (Transform.Params.P_list Transform.Params.P_ident) ]
    (fun set ->
      let targets = Transform.Params.get_names set "targets" in
      Aspects.Aspect.make ~name:"Counting" ~concern:"counting"
        ~advices:
          (List.map
             (fun t ->
               Aspects.Advice.make Aspects.Advice.Before
                 (Aspects.Pointcut.execution t "*")
                 [])
             targets)
        ())

let counting_gmt =
  Transform.Gmt.make ~name:"T.count" ~concern:"counting"
    ~formals:
      [ Transform.Params.decl "targets" (Transform.Params.P_list Transform.Params.P_ident) ]
    (fun _ m -> m)

let generic_tests =
  [
    Alcotest.test_case "specialize validates assignments" `Quick (fun () ->
        check cb "missing rejected" true
          (Result.is_error (Aspects.Generic.specialize counting_gac []));
        match
          Aspects.Generic.specialize counting_gac
            [
              ( "targets",
                Transform.Params.V_list
                  [ Transform.Params.V_ident "A"; Transform.Params.V_ident "B" ] );
            ]
        with
        | Ok aspect -> check ci "two advices" 2 (Aspects.Aspect.advice_count aspect)
        | Error _ -> Alcotest.fail "should specialize");
    Alcotest.test_case "from_cmt reuses the transformation's parameter set"
      `Quick (fun () ->
        let cmt =
          Transform.Cmt.specialize_exn counting_gmt
            [ ("targets", Transform.Params.V_list [ Transform.Params.V_ident "X" ]) ]
        in
        let g = Aspects.Generator.from_cmt counting_gac ~seq:3 cmt in
        check ci "seq stamped" 3 g.Aspects.Generator.seq;
        check ci "one advice" 1
          (Aspects.Aspect.advice_count g.Aspects.Generator.aspect);
        check cs "provenance" "T.count<[X]>" g.Aspects.Generator.from_transformation);
    Alcotest.test_case "from_cmt rejects concern mismatches" `Quick (fun () ->
        let other_gmt =
          Transform.Gmt.make ~name:"T.other" ~concern:"other" ~formals:[]
            (fun _ m -> m)
        in
        let cmt = Transform.Cmt.specialize_exn other_gmt [] in
        check cb "raises" true
          (try
             ignore (Aspects.Generator.from_cmt counting_gac ~seq:1 cmt);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "from_trace resolves through the lookup" `Quick (fun () ->
        let cmt =
          Transform.Cmt.specialize_exn counting_gmt
            [ ("targets", Transform.Params.V_list [ Transform.Params.V_ident "X" ]) ]
        in
        let lookup = function "counting" -> Some counting_gac | _ -> None in
        (match Aspects.Generator.from_trace ~lookup [ cmt; cmt ] with
        | Ok gs ->
            check (Alcotest.list ci) "seqs" [ 1; 2 ]
              (List.map (fun g -> g.Aspects.Generator.seq) gs)
        | Error e -> Alcotest.fail e);
        match Aspects.Generator.from_trace ~lookup:(fun _ -> None) [ cmt ] with
        | Error msg -> check cb "mentions concern" true (contains msg "counting")
        | Ok _ -> Alcotest.fail "expected missing-aspect error");
  ]

(* ---- printer ------------------------------------------------------------------ *)

let printer_tests =
  [
    Alcotest.test_case "full aspect rendering" `Quick (fun () ->
        let aspect =
          Aspects.Aspect.make ~name:"Demo" ~concern:"demo"
            ~intertypes:
              [
                Aspects.Aspect.It_field
                  ( "Account",
                    {
                      Code.Jdecl.field_name = "marker";
                      field_type = Code.Jtype.T_string;
                      field_mods = [ Code.Jdecl.M_private ];
                      field_init = None;
                    } );
              ]
            ~advices:
              [
                Aspects.Advice.make Aspects.Advice.Before
                  (Aspects.Pointcut.execution "Account" "*")
                  [ Code.Jstmt.S_comment "hello" ];
              ]
            ()
        in
        let text = Aspects.Printer.to_string aspect in
        List.iter
          (fun needle -> check cb needle true (contains text needle))
          [
            "public aspect Demo {";
            "// concern: demo";
            "private String Account.marker;";
            "before() : execution(Account.*) {";
            "// hello";
          ]);
    Alcotest.test_case "around advice renders with Object around()" `Quick
      (fun () ->
        let a =
          Aspects.Advice.make Aspects.Advice.Around
            (Aspects.Pointcut.execution "A" "*")
            [ Aspects.Advice.proceed ]
        in
        check cb "header" true
          (contains (Aspects.Printer.advice_to_string a) "Object around() :"));
    Alcotest.test_case "inter-type methods render with the target pattern"
      `Quick (fun () ->
        let aspect =
          Aspects.Aspect.make ~name:"It" ~concern:"c"
            ~intertypes:
              [
                Aspects.Aspect.It_method
                  ( "Account*",
                    {
                      Code.Jdecl.method_name = "ping";
                      method_mods = [ Code.Jdecl.M_public ];
                      return_type = Code.Jtype.T_boolean;
                      params = [];
                      throws = [];
                      body = Some [ Code.Jstmt.S_return (Some (Code.Jexpr.E_bool true)) ];
                    } );
              ]
            ()
        in
        let text = Aspects.Printer.to_string aspect in
        check cb "pattern-qualified signature" true
          (contains text "public boolean Account*.ping()"));
    Alcotest.test_case "generated header records provenance" `Quick (fun () ->
        let cmt =
          Transform.Cmt.specialize_exn counting_gmt
            [ ("targets", Transform.Params.V_list [ Transform.Params.V_ident "X" ]) ]
        in
        let g = Aspects.Generator.from_cmt counting_gac ~seq:2 cmt in
        let text = Aspects.Printer.generated_to_string g in
        check cb "from" true (contains text "generated from T.count<[X]>");
        check cb "precedence" true (contains text "(precedence 2)"));
  ]

let () =
  Alcotest.run "aspects"
    [
      ("patterns", pattern_tests @ pattern_properties);
      ("pointcuts", pointcut_tests);
      ("pointcut-parser", pointcut_parser_tests);
      ("advice", advice_tests);
      ("aspect", aspect_tests);
      ("generic", generic_tests);
      ("printer", printer_tests);
    ]
