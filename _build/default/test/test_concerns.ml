(* Tests for the concern library: each built-in concern's transformation and
   generic aspect, plus the registry. *)

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

let v_names names =
  Transform.Params.V_list (List.map (fun n -> Transform.Params.V_ident n) names)

let apply_exn gmt assignments m =
  let cmt = Transform.Cmt.specialize_exn gmt assignments in
  match Transform.Engine.apply cmt m with
  | Ok outcome -> outcome.Transform.Engine.model
  | Error f ->
      Alcotest.fail (Format.asprintf "%a" Transform.Engine.pp_failure f)

let apply_fails gmt assignments m =
  let cmt = Transform.Cmt.specialize_exn gmt assignments in
  match Transform.Engine.apply cmt m with
  | Ok _ -> false
  | Error _ -> true

let ocl m src = Ocl.Eval.eval_string m Ocl.Env.empty src

let holds m src =
  match ocl m src with Ocl.Value.V_bool b -> b | _ -> false

(* ---- meta: every builtin's generic conditions typecheck ----------------- *)

let meta_tests =
  [
    Alcotest.test_case "all builtin conditions pass static validation" `Quick
      (fun () ->
        List.iter
          (fun (e : Concerns.Registry.entry) ->
            check (Alcotest.list cs)
              e.Concerns.Registry.gmt.Transform.Gmt.name []
              (Transform.Gmt.validate_conditions e.Concerns.Registry.gmt))
          Concerns.Registry.builtins);
    Alcotest.test_case "every builtin aspect shares its GMT's formals" `Quick
      (fun () ->
        List.iter
          (fun (e : Concerns.Registry.entry) ->
            let gmt_names =
              List.map
                (fun (d : Transform.Params.decl) -> d.Transform.Params.pname)
                e.Concerns.Registry.gmt.Transform.Gmt.formals
            in
            let gac_names =
              List.map
                (fun (d : Transform.Params.decl) -> d.Transform.Params.pname)
                e.Concerns.Registry.gac.Aspects.Generic.formals
            in
            check (Alcotest.list cs) e.Concerns.Registry.concern.Concerns.Concern.key
              gmt_names gac_names)
          Concerns.Registry.builtins);
    Alcotest.test_case "builtin concrete aspects validate cleanly" `Quick
      (fun () ->
        (* instantiate each aspect with plausible parameters and run the
           aspect sanity checks *)
        let instantiations =
          [
            ( Concerns.Distribution.generic_aspect,
              [ ("remote", v_names [ "Account" ]) ] );
            ( Concerns.Transactions.generic_aspect,
              [ ("transactional", v_names [ "Account" ]) ] );
            ( Concerns.Security.generic_aspect,
              [ ("secured", v_names [ "Account" ]) ] );
            ( Concerns.Concurrency.generic_aspect,
              [ ("guarded", v_names [ "Account" ]) ] );
            (Concerns.Logging.generic_aspect, []);
          ]
        in
        List.iter
          (fun (gac, assignments) ->
            match Aspects.Generic.specialize gac assignments with
            | Ok aspect ->
                check (Alcotest.list cs) gac.Aspects.Generic.ga_name []
                  (Aspects.Aspect.validate aspect)
            | Error _ -> Alcotest.fail gac.Aspects.Generic.ga_name)
          instantiations);
  ]

(* ---- distribution -------------------------------------------------------- *)

let distribution_tests =
  let gmt = Concerns.Distribution.transformation in
  [
    Alcotest.test_case "introduces interface, proxy, naming service" `Quick
      (fun () ->
        let m =
          apply_exn gmt [ ("remote", v_names [ "Account" ]) ] (Fixtures.banking ())
        in
        check cb "interface" true
          (holds m
             "Interface.allInstances()->exists(i | i.name = 'AccountRemote')");
        check cb "proxy" true
          (holds m
             "Class.allInstances()->exists(c | c.name = 'AccountProxy' and \
              c.hasStereotype('proxy'))");
        check cb "naming service" true
          (holds m "Class.allInstances()->exists(c | c.name = 'NamingService')");
        check cb "remote stereotype" true
          (holds m
             "Class.allInstances()->any(c | c.name = \
              'Account').hasStereotype('remote')"));
    Alcotest.test_case "copies the public operation signatures" `Quick (fun () ->
        let m =
          apply_exn gmt [ ("remote", v_names [ "Account" ]) ] (Fixtures.banking ())
        in
        check cb "withdraw on the interface" true
          (holds m
             "Interface.allInstances()->any(i | i.name = \
              'AccountRemote').operations->exists(o | o.name = 'withdraw' and \
              o.resultType = 'Boolean' and o.parameters->size() = 1)");
        check cb "proxy mirrors the ops" true
          (holds m
             "Class.allInstances()->any(c | c.name = \
              'AccountProxy').operations->exists(o | o.name = 'deposit')"));
    Alcotest.test_case "proxy has a typed target attribute and dependency"
      `Quick (fun () ->
        let m =
          apply_exn gmt [ ("remote", v_names [ "Account" ]) ] (Fixtures.banking ())
        in
        check cb "target : Account" true
          (holds m
             "Class.allInstances()->any(c | c.name = \
              'AccountProxy').attributes->exists(a | a.name = 'target' and \
              a.type = 'Account')");
        check cb "delegates dependency" true
          (holds m
             "Dependency.allInstances()->exists(d | \
              d.hasStereotype('delegates') and d.client.name = 'AccountProxy' \
              and d.supplier.name = 'Account')"));
    Alcotest.test_case "protocol and registry recorded as tags" `Quick (fun () ->
        let m =
          apply_exn gmt
            [
              ("remote", v_names [ "Account" ]);
              ("protocol", Transform.Params.V_string "corba");
              ("registry", Transform.Params.V_string "host:9999");
            ]
            (Fixtures.banking ())
        in
        check cb "protocol" true
          (holds m
             "Class.allInstances()->any(c | c.name = 'Account').tag('protocol') \
              = 'corba'");
        check cb "registry" true
          (holds m
             "Class.allInstances()->any(c | c.name = \
              'NamingService').tag('registry') = 'host:9999'"));
    Alcotest.test_case "missing class fails the precondition" `Quick (fun () ->
        check cb "fails" true
          (apply_fails gmt [ ("remote", v_names [ "Ghost" ]) ] (Fixtures.banking ())));
    Alcotest.test_case "re-application is refused" `Quick (fun () ->
        let m =
          apply_exn gmt [ ("remote", v_names [ "Account" ]) ] (Fixtures.banking ())
        in
        check cb "fails" true (apply_fails gmt [ ("remote", v_names [ "Account" ]) ] m));
    Alcotest.test_case "aspect is specialized by the same parameters" `Quick
      (fun () ->
        match
          Aspects.Generic.specialize Concerns.Distribution.generic_aspect
            [
              ("remote", v_names [ "Account"; "Teller" ]);
              ("registry", Transform.Params.V_string "r:1");
            ]
        with
        | Ok aspect ->
            check ci "one advice per class" 2 (Aspects.Aspect.advice_count aspect);
            check ci "one intertype per class" 2
              (List.length aspect.Aspects.Aspect.intertypes)
        | Error _ -> Alcotest.fail "specialization failed");
  ]

(* ---- transactions --------------------------------------------------------- *)

let transactions_tests =
  let gmt = Concerns.Transactions.transformation in
  [
    Alcotest.test_case "marks classes and adds the manager" `Quick (fun () ->
        let m =
          apply_exn gmt
            [ ("transactional", v_names [ "Account"; "Teller" ]) ]
            (Fixtures.banking ())
        in
        check cb "stereotypes" true
          (holds m
             "Class.allInstances()->select(c | \
              c.hasStereotype('transactional'))->size() = 2");
        check cb "manager" true
          (holds m
             "Class.allInstances()->any(c | c.name = \
              'TransactionManager').operations->collect(o | \
              o.name)->includesAll(Sequence{'begin','commit','rollback'})");
        check cb "isolation default" true
          (holds m
             "Class.allInstances()->any(c | c.name = \
              'Account').tag('isolation') = 'serializable'"));
    Alcotest.test_case "adds a documenting constraint per class" `Quick
      (fun () ->
        let m =
          apply_exn gmt [ ("transactional", v_names [ "Account" ]) ]
            (Fixtures.banking ())
        in
        check cb "constraint" true
          (holds m
             "Constraint.allInstances()->exists(k | k.name = \
              'Account-transactional')");
        (* and the generated constraint itself holds on the model *)
        let k =
          Ocl.Constraint_.make ~name:"generated"
            "Class.allInstances()->forAll(c | c.name = 'Account' implies \
             c.hasStereotype('transactional'))"
        in
        check cb "generated holds" true (Ocl.Constraint_.holds m k));
    Alcotest.test_case "around advice begins, commits, rolls back" `Quick
      (fun () ->
        match
          Aspects.Generic.specialize Concerns.Transactions.generic_aspect
            [
              ("transactional", v_names [ "Account" ]);
              ("isolation", Transform.Params.V_string "repeatable-read");
            ]
        with
        | Ok aspect ->
            let advice = List.hd aspect.Aspects.Aspect.advices in
            check cb "around" true (advice.Aspects.Advice.time = Aspects.Advice.Around);
            check cb "has proceed" true (Aspects.Advice.mentions_proceed advice);
            let text = Aspects.Printer.advice_to_string advice in
            let contains needle =
              let nl = String.length needle and hl = String.length text in
              let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
              go 0
            in
            check cb "begin" true (contains "tx.begin(\"repeatable-read\"");
            check cb "rollback" true (contains "tx.rollback()")
        | Error _ -> Alcotest.fail "specialization failed");
    Alcotest.test_case "invalid isolation rejected" `Quick (fun () ->
        check cb "rejected" true
          (Result.is_error
             (Transform.Cmt.specialize gmt
                [
                  ("transactional", v_names [ "Account" ]);
                  ("isolation", Transform.Params.V_string "dirty-read");
                ])));
  ]

(* ---- security -------------------------------------------------------------- *)

let security_tests =
  let gmt = Concerns.Security.transformation in
  [
    Alcotest.test_case "marks classes, adds infrastructure and dependency"
      `Quick (fun () ->
        let m =
          apply_exn gmt
            [
              ("secured", v_names [ "Teller" ]);
              ( "roles",
                Transform.Params.V_list
                  [ Transform.Params.V_string "teller"; Transform.Params.V_string "boss" ] );
            ]
            (Fixtures.banking ())
        in
        check cb "stereotype" true
          (holds m
             "Class.allInstances()->any(c | c.name = \
              'Teller').hasStereotype('secured')");
        check cb "roles tag" true
          (holds m
             "Class.allInstances()->any(c | c.name = 'Teller').tag('roles') = \
              'teller,boss'");
        check cb "principal and controller" true
          (holds m
             "Class.allInstances()->exists(c | c.name = 'Principal') and \
              Class.allInstances()->exists(c | c.name = 'AccessController')");
        check cb "uses dependency" true
          (holds m
             "Dependency.allInstances()->exists(d | d.hasStereotype('uses') \
              and d.client.name = 'Teller')"));
    Alcotest.test_case "empty role list fails the precondition" `Quick (fun () ->
        check cb "fails" true
          (apply_fails gmt
             [
               ("secured", v_names [ "Teller" ]);
               ("roles", Transform.Params.V_list []);
             ]
             (Fixtures.banking ())));
    Alcotest.test_case "before advice checks roles and authentication" `Quick
      (fun () ->
        match
          Aspects.Generic.specialize Concerns.Security.generic_aspect
            [
              ("secured", v_names [ "Teller" ]);
              ("authentication", Transform.Params.V_string "basic");
            ]
        with
        | Ok aspect ->
            let text = Aspects.Printer.to_string aspect in
            let contains needle =
              let nl = String.length needle and hl = String.length text in
              let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
              go 0
            in
            check cb "authentication" true (contains "\"basic\"");
            check cb "roles default" true (contains "\"admin\"");
            check cb "before" true (contains "before()")
        | Error _ -> Alcotest.fail "specialization failed");
  ]

(* ---- concurrency / logging -------------------------------------------------- *)

let concurrency_tests =
  let gmt = Concerns.Concurrency.transformation in
  [
    Alcotest.test_case "marks classes with the policy" `Quick (fun () ->
        let m =
          apply_exn gmt
            [
              ("guarded", v_names [ "Account" ]);
              ("policy", Transform.Params.V_string "reader-writer");
            ]
            (Fixtures.banking ())
        in
        check cb "stereotype and tag" true
          (holds m
             "Class.allInstances()->any(c | c.name = \
              'Account').tag('policy') = 'reader-writer'");
        check cb "lock manager" true
          (holds m "Class.allInstances()->exists(c | c.name = 'LockManager')"));
    Alcotest.test_case "mutex weaves synchronized, rw weaves try/finally" `Quick
      (fun () ->
        let text policy =
          match
            Aspects.Generic.specialize Concerns.Concurrency.generic_aspect
              [
                ("guarded", v_names [ "Account" ]);
                ("policy", Transform.Params.V_string policy);
              ]
          with
          | Ok aspect -> Aspects.Printer.to_string aspect
          | Error _ -> Alcotest.fail "specialization failed"
        in
        let contains hay needle =
          let nl = String.length needle and hl = String.length hay in
          let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
          go 0
        in
        check cb "mutex" true (contains (text "mutex") "synchronized (LockManager.of(this))");
        check cb "rw acquire" true (contains (text "reader-writer") ".acquire(\"reader-writer\")");
        check cb "rw release" true (contains (text "reader-writer") ".release()"));
  ]

let logging_tests =
  let gmt = Concerns.Logging.transformation in
  [
    Alcotest.test_case "adds the logger and marks exact-named targets" `Quick
      (fun () ->
        let m =
          apply_exn gmt
            [
              ( "targets",
                Transform.Params.V_list
                  [ Transform.Params.V_string "Account"; Transform.Params.V_string "No*" ] );
            ]
            (Fixtures.banking ())
        in
        check cb "logger" true
          (holds m "Class.allInstances()->exists(c | c.name = 'Logger')");
        check cb "exact target marked" true
          (holds m
             "Class.allInstances()->any(c | c.name = \
              'Account').hasStereotype('logged')"));
    Alcotest.test_case "defaults cover everything at info level" `Quick
      (fun () ->
        match Aspects.Generic.specialize Concerns.Logging.generic_aspect [] with
        | Ok aspect ->
            check ci "enter+exit advice" 2 (Aspects.Aspect.advice_count aspect)
        | Error _ -> Alcotest.fail "specialization failed");
  ]

(* ---- persistence ----------------------------------------------------------- *)

let persistence_tests =
  let gmt = Concerns.Persistence.transformation in
  [
    Alcotest.test_case "marks classes, adds surrogate id and manager" `Quick
      (fun () ->
        let m =
          apply_exn gmt
            [
              ("persistent", v_names [ "Account" ]);
              ("store", Transform.Params.V_string "object-store");
            ]
            (Fixtures.banking ())
        in
        check cb "stereotype and store" true
          (holds m
             "Class.allInstances()->any(c | c.name = 'Account').tag('store') \
              = 'object-store'");
        check cb "surrogate id" true
          (holds m
             "Class.allInstances()->any(c | c.name = \
              'Account').attributes->exists(a | a.name = 'id' and \
              a.hasStereotype('generated'))");
        check cb "manager" true
          (holds m
             "Class.allInstances()->exists(c | c.name = 'PersistenceManager')"));
    Alcotest.test_case "an existing id attribute is kept, not duplicated"
      `Quick (fun () ->
        let m0 = Fixtures.banking () in
        let acct = Fixtures.class_id m0 "Account" in
        let m0, _ =
          Mof.Builder.add_attribute m0 ~cls:acct ~name:"id"
            ~typ:Mof.Kind.Dt_integer
        in
        let m = apply_exn gmt [ ("persistent", v_names [ "Account" ]) ] m0 in
        check cb "one id attribute" true
          (holds m
             "Class.allInstances()->any(c | c.name = \
              'Account').attributes->select(a | a.name = 'id')->size() = 1");
        check cb "original type kept" true
          (holds m
             "Class.allInstances()->any(c | c.name = \
              'Account').attributes->any(a | a.name = 'id').type = 'Integer'"));
    Alcotest.test_case "re-application is refused" `Quick (fun () ->
        let m = apply_exn gmt [ ("persistent", v_names [ "Account" ]) ] (Fixtures.banking ()) in
        check cb "fails" true
          (apply_fails gmt [ ("persistent", v_names [ "Account" ]) ] m));
    Alcotest.test_case "aspect targets setters and getters" `Quick (fun () ->
        match
          Aspects.Generic.specialize Concerns.Persistence.generic_aspect
            [ ("persistent", v_names [ "Account" ]) ]
        with
        | Ok aspect ->
            check ci "two advices" 2 (Aspects.Aspect.advice_count aspect);
            let text = Aspects.Printer.to_string aspect in
            let contains needle =
              let nl = String.length needle and hl = String.length text in
              let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
              go 0
            in
            check cb "set pointcut" true (contains "execution(Account.set*)");
            check cb "get pointcut" true (contains "execution(Account.get*)");
            check cb "store parameter" true (contains "\"relational\"")
        | Error _ -> Alcotest.fail "specialization failed");
  ]

(* ---- messaging -------------------------------------------------------------- *)

let messaging_tests =
  let gmt = Concerns.Messaging.transformation in
  [
    Alcotest.test_case "split_target" `Quick (fun () ->
        check cb "ok" true
          (Concerns.Messaging.split_target "Account.deposit"
          = Ok ("Account", "deposit"));
        check cb "missing dot" true
          (Result.is_error (Concerns.Messaging.split_target "deposit")));
    Alcotest.test_case "marks operations and adds the queue" `Quick (fun () ->
        let m =
          apply_exn gmt
            [
              ("async", v_names [ "Account.deposit" ]);
              ("queue", Transform.Params.V_string "payments");
            ]
            (Fixtures.banking ())
        in
        check cb "operation marked" true
          (holds m
             "Operation.allInstances()->exists(o | o.name = 'deposit' and \
              o.hasStereotype('async') and o.tag('queue') = 'payments')");
        check cb "other operations untouched" true
          (holds m
             "Operation.allInstances()->select(o | \
              o.hasStereotype('async'))->size() = 1");
        check cb "queue class" true
          (holds m "Class.allInstances()->exists(c | c.name = 'MessageQueue')"));
    Alcotest.test_case "nonexistent operation fails the precondition" `Quick
      (fun () ->
        check cb "fails" true
          (apply_fails gmt
             [ ("async", v_names [ "Account.frobnicate" ]) ]
             (Fixtures.banking ())));
    Alcotest.test_case "aspect targets exactly the configured operation" `Quick
      (fun () ->
        match
          Aspects.Generic.specialize Concerns.Messaging.generic_aspect
            [ ("async", v_names [ "Account.deposit" ]) ]
        with
        | Ok aspect ->
            check ci "one advice" 1 (Aspects.Aspect.advice_count aspect);
            let text = Aspects.Printer.to_string aspect in
            let contains needle =
              let nl = String.length needle and hl = String.length text in
              let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
              go 0
            in
            check cb "pointcut" true (contains "execution(Account.deposit)");
            check cb "queue in body" true (contains "\"default-queue\"")
        | Error _ -> Alcotest.fail "specialization failed");
  ]

(* ---- registry ---------------------------------------------------------------- *)

let custom_entry key =
  let concern = Concerns.Concern.make ~key ~display:key () in
  let gmt =
    Transform.Gmt.make ~name:("T." ^ key) ~concern:key ~formals:[] (fun _ m -> m)
  in
  let gac =
    Aspects.Generic.make ~name:("A." ^ key) ~concern:key ~formals:[] (fun _ ->
        Aspects.Aspect.make ~name:key ~concern:key ())
  in
  { Concerns.Registry.concern; gmt; gac }

let registry_tests =
  [
    Alcotest.test_case "builtins are registered" `Quick (fun () ->
        Concerns.Registry.reset ();
        List.iter
          (fun key -> check cb key true (Concerns.Registry.find key <> None))
          [
            "distribution";
            "transactions";
            "security";
            "concurrency";
            "logging";
            "persistence";
            "messaging";
          ]);
    Alcotest.test_case "find_gmt and find_gac agree" `Quick (fun () ->
        check cb "gmt" true (Concerns.Registry.find_gmt "security" <> None);
        check cb "gac" true (Concerns.Registry.find_gac "security" <> None);
        check cb "unknown" true (Concerns.Registry.find "nope" = None));
    Alcotest.test_case "custom registration round trip" `Quick (fun () ->
        Concerns.Registry.reset ();
        (match Concerns.Registry.register (custom_entry "caching") with
        | Ok () -> ()
        | Error ds -> Alcotest.fail (String.concat "; " ds));
        check cb "registered" true (Concerns.Registry.find "caching" <> None);
        Concerns.Registry.reset ();
        check cb "reset drops it" true (Concerns.Registry.find "caching" = None));
    Alcotest.test_case "duplicate key rejected" `Quick (fun () ->
        Concerns.Registry.reset ();
        check cb "rejected" true
          (Result.is_error (Concerns.Registry.register (custom_entry "security"))));
    Alcotest.test_case "mismatched concern keys rejected" `Quick (fun () ->
        Concerns.Registry.reset ();
        let entry = custom_entry "fresh" in
        let bad =
          { entry with Concerns.Registry.gmt = (custom_entry "other").Concerns.Registry.gmt }
        in
        check cb "rejected" true (Result.is_error (Concerns.Registry.register bad)));
    Alcotest.test_case "mismatched formals rejected" `Quick (fun () ->
        Concerns.Registry.reset ();
        let entry = custom_entry "fresh2" in
        let gmt_with_param =
          Transform.Gmt.make ~name:"T.fresh2" ~concern:"fresh2"
            ~formals:[ Transform.Params.decl "p" Transform.Params.P_int ]
            (fun _ m -> m)
        in
        let bad = { entry with Concerns.Registry.gmt = gmt_with_param } in
        check cb "rejected" true (Result.is_error (Concerns.Registry.register bad)));
    Alcotest.test_case "broken generic conditions rejected" `Quick (fun () ->
        Concerns.Registry.reset ();
        let entry = custom_entry "fresh3" in
        let bad_gmt =
          Transform.Gmt.make ~name:"T.fresh3" ~concern:"fresh3" ~formals:[]
            ~preconditions:[ Ocl.Constraint_.make ~name:"oops" "1 +" ]
            (fun _ m -> m)
        in
        check cb "rejected" true
          (Result.is_error
             (Concerns.Registry.register { entry with Concerns.Registry.gmt = bad_gmt })));
  ]

(* ---- cross-concern composition ----------------------------------------------- *)

let composition_tests =
  [
    Alcotest.test_case "the Fig. 2 sequence composes" `Quick (fun () ->
        let m = Fixtures.banking () in
        let m =
          apply_exn Concerns.Distribution.transformation
            [ ("remote", v_names [ "Account"; "Teller" ]) ]
            m
        in
        let m =
          apply_exn Concerns.Transactions.transformation
            [ ("transactional", v_names [ "Account" ]) ]
            m
        in
        let m =
          apply_exn Concerns.Security.transformation
            [ ("secured", v_names [ "Teller" ]) ]
            m
        in
        check cb "well-formed after all three" true (Mof.Wellformed.is_wellformed m);
        check cb "all marks present" true
          (holds m
             "Class.allInstances()->exists(c | c.hasStereotype('remote')) and \
              Class.allInstances()->exists(c | \
              c.hasStereotype('transactional')) and \
              Class.allInstances()->exists(c | c.hasStereotype('secured'))"));
    Alcotest.test_case "infrastructure classes are shared, not duplicated"
      `Quick (fun () ->
        let m = Fixtures.banking () in
        let m =
          apply_exn Concerns.Security.transformation
            [ ("secured", v_names [ "Teller" ]) ]
            m
        in
        let m =
          apply_exn Concerns.Security.transformation
            [ ("secured", v_names [ "Account" ]) ]
            m
        in
        check cb "one controller" true
          (holds m
             "Class.allInstances()->select(c | c.name = \
              'AccessController')->size() = 1"));
    Alcotest.test_case "transforming a proxy class is possible downstream"
      `Quick (fun () ->
        (* concern spaces can stack: secure the generated proxy *)
        let m = Fixtures.banking () in
        let m =
          apply_exn Concerns.Distribution.transformation
            [ ("remote", v_names [ "Account" ]) ]
            m
        in
        let m =
          apply_exn Concerns.Security.transformation
            [ ("secured", v_names [ "AccountProxy" ]) ]
            m
        in
        check cb "proxy secured" true
          (holds m
             "Class.allInstances()->any(c | c.name = \
              'AccountProxy').hasStereotype('secured')"));
  ]

(* ---- properties --------------------------------------------------------------- *)

let property_tests =
  let apply_to gmt assignments m =
    let cmt = Transform.Cmt.specialize_exn gmt assignments in
    Transform.Engine.apply cmt m
  in
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck2.Test.make
        ~name:"distribution keeps random models well-formed" ~count:25
        Gen.model_gen (fun m ->
          match
            apply_to Concerns.Distribution.transformation
              [ ("remote", v_names [ "R0" ]) ]
              m
          with
          | Ok outcome -> Mof.Wellformed.is_wellformed outcome.Transform.Engine.model
          | Error _ -> false);
      QCheck2.Test.make
        ~name:"transactions keeps random models well-formed" ~count:25
        Gen.model_gen (fun m ->
          match
            apply_to Concerns.Transactions.transformation
              [ ("transactional", v_names [ "R0" ]) ]
              m
          with
          | Ok outcome -> Mof.Wellformed.is_wellformed outcome.Transform.Engine.model
          | Error _ -> false);
      QCheck2.Test.make
        ~name:"refined random models still round trip through XMI" ~count:25
        Gen.model_gen (fun m ->
          match
            apply_to Concerns.Security.transformation
              [ ("secured", v_names [ "R0" ]) ]
              m
          with
          | Ok outcome ->
              let refined = outcome.Transform.Engine.model in
              Mof.Model.equal refined
                (Xmi.Import.from_string (Xmi.Export.to_string refined))
          | Error _ -> false);
      QCheck2.Test.make
        ~name:"a concern's diff never removes elements" ~count:25 Gen.model_gen
        (fun m ->
          match
            apply_to Concerns.Concurrency.transformation
              [ ("guarded", v_names [ "R0" ]) ]
              m
          with
          | Ok outcome ->
              Mof.Id.Set.is_empty outcome.Transform.Engine.diff.Mof.Diff.removed
          | Error _ -> false);
    ]

let () =
  Alcotest.run "concerns"
    [
      ("meta", meta_tests);
      ("distribution", distribution_tests);
      ("transactions", transactions_tests);
      ("security", security_tests);
      ("concurrency", concurrency_tests);
      ("logging", logging_tests);
      ("persistence", persistence_tests);
      ("messaging", messaging_tests);
      ("registry", registry_tests);
      ("composition", composition_tests);
      ("properties", property_tests);
    ]
