(* Tests for the versioned model repository: commits, undo/redo, tags,
   history rendering. *)

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* A repository with three versions: initial banking, +One, +Two. *)
let three_versions () =
  let m0 = Fixtures.banking () in
  let repo = Repository.Repo.init m0 in
  let m1, _ = Mof.Builder.add_class m0 ~owner:(Mof.Model.root m0) ~name:"One" in
  let repo = Repository.Repo.commit ~concern:"a" ~message:"add One" m1 repo in
  let m2, _ = Mof.Builder.add_class m1 ~owner:(Mof.Model.root m1) ~name:"Two" in
  let repo = Repository.Repo.commit ~concern:"b" ~message:"add Two" m2 repo in
  (repo, m0, m1, m2)

let repo_tests =
  [
    Alcotest.test_case "init stores the root commit" `Quick (fun () ->
        let m = Fixtures.banking () in
        let repo = Repository.Repo.init m in
        check ci "one commit" 1 (Repository.Repo.size repo);
        check cb "head model" true (Mof.Model.equal m (Repository.Repo.head_model repo));
        check cb "no undo" false (Repository.Repo.can_undo repo));
    Alcotest.test_case "commits chain and log is head-first" `Quick (fun () ->
        let repo, _, _, m2 = three_versions () in
        check ci "three commits" 3 (Repository.Repo.size repo);
        check cb "head is m2" true (Mof.Model.equal m2 (Repository.Repo.head_model repo));
        let log = Repository.Repo.log repo in
        check (Alcotest.list cs) "messages head-first"
          [ "add Two"; "add One"; "initial model" ]
          (List.map (fun c -> c.Repository.Commit.message) log));
    Alcotest.test_case "diffs recorded against the parent" `Quick (fun () ->
        let repo, _, _, _ = three_versions () in
        let head = Repository.Repo.head repo in
        check ci "one class added" 1
          (Mof.Id.Set.cardinal head.Repository.Commit.diff.Mof.Diff.added));
    Alcotest.test_case "undo and redo move the head" `Quick (fun () ->
        let repo, m0, m1, m2 = three_versions () in
        let repo = Option.get (Repository.Repo.undo repo) in
        check cb "back to m1" true (Mof.Model.equal m1 (Repository.Repo.head_model repo));
        check cb "can redo" true (Repository.Repo.can_redo repo);
        let repo = Option.get (Repository.Repo.undo repo) in
        check cb "back to m0" true (Mof.Model.equal m0 (Repository.Repo.head_model repo));
        check cb "undo exhausted" true (Repository.Repo.undo repo = None);
        let repo = Option.get (Repository.Repo.redo repo) in
        let repo = Option.get (Repository.Repo.redo repo) in
        check cb "forward to m2" true (Mof.Model.equal m2 (Repository.Repo.head_model repo));
        check cb "redo exhausted" true (Repository.Repo.redo repo = None));
    Alcotest.test_case "commit clears the redo path" `Quick (fun () ->
        let repo, _, m1, _ = three_versions () in
        let repo = Option.get (Repository.Repo.undo repo) in
        let m1', _ = Mof.Builder.add_class m1 ~owner:(Mof.Model.root m1) ~name:"Branch" in
        let repo = Repository.Repo.commit ~message:"branch" m1' repo in
        check cb "no redo" false (Repository.Repo.can_redo repo);
        (* nothing is lost: all four commits remain stored *)
        check ci "four commits" 4 (Repository.Repo.size repo));
    Alcotest.test_case "tags name and recall versions" `Quick (fun () ->
        let repo, _, m1, m2 = three_versions () in
        let repo = Option.get (Repository.Repo.undo repo) in
        let repo = Repository.Repo.tag "stable" repo in
        let repo = Option.get (Repository.Repo.redo repo) in
        check cb "at head again" true (Mof.Model.equal m2 (Repository.Repo.head_model repo));
        let repo = Option.get (Repository.Repo.checkout "stable" repo) in
        check cb "checked out" true (Mof.Model.equal m1 (Repository.Repo.head_model repo));
        check cb "unknown tag" true (Repository.Repo.checkout "nope" repo = None));
    Alcotest.test_case "re-tagging moves the tag" `Quick (fun () ->
        let repo, _, _, _ = three_versions () in
        let repo = Repository.Repo.tag "mark" repo in
        let repo = Option.get (Repository.Repo.undo repo) in
        let repo = Repository.Repo.tag "mark" repo in
        check ci "one binding" 1 (List.length (Repository.Repo.tags repo)));
    Alcotest.test_case "commit after checkout branches from the tag" `Quick
      (fun () ->
        let repo, _, m1, _ = three_versions () in
        let repo = Option.get (Repository.Repo.undo repo) in
        let repo = Repository.Repo.tag "base" repo in
        let repo = Option.get (Repository.Repo.redo repo) in
        let repo = Option.get (Repository.Repo.checkout "base" repo) in
        let m1', _ = Mof.Builder.add_class m1 ~owner:(Mof.Model.root m1) ~name:"Side" in
        let repo = Repository.Repo.commit ~message:"side" m1' repo in
        let log = Repository.Repo.log repo in
        check (Alcotest.list cs) "side chain"
          [ "side"; "add One"; "initial model" ]
          (List.map (fun c -> c.Repository.Commit.message) log);
        (* the other branch's commits are still stored *)
        check ci "all commits kept" 4 (Repository.Repo.size repo));
    Alcotest.test_case "diff_between" `Quick (fun () ->
        let repo, _, _, _ = three_versions () in
        match Repository.Repo.diff_between repo ~from_id:0 ~to_id:2 with
        | Some d -> check ci "two added" 2 (Mof.Id.Set.cardinal d.Mof.Diff.added)
        | None -> Alcotest.fail "diff failed");
    Alcotest.test_case "diff_between unknown ids" `Quick (fun () ->
        let repo, _, _, _ = three_versions () in
        check cb "none" true (Repository.Repo.diff_between repo ~from_id:0 ~to_id:99 = None));
  ]

let history_tests =
  [
    Alcotest.test_case "render marks the head and shows tags" `Quick (fun () ->
        let repo, _, _, _ = three_versions () in
        let repo = Repository.Repo.tag "v1" repo in
        let text = Repository.History.render repo in
        check cb "head marker" true (contains text "* #2 add Two");
        check cb "tag shown" true (contains text "<v1>");
        check cb "root listed" true (contains text "#0 initial model"));
    Alcotest.test_case "concerns_in_history oldest-first without duplicates"
      `Quick (fun () ->
        let repo, _, _, m2 = three_versions () in
        let m3, _ = Mof.Builder.add_class m2 ~owner:(Mof.Model.root m2) ~name:"Three" in
        let repo = Repository.Repo.commit ~concern:"a" ~message:"again" m3 repo in
        check (Alcotest.list cs) "order" [ "a"; "b" ]
          (Repository.History.concerns_in_history repo));
    Alcotest.test_case "total_churn sums the diffs" `Quick (fun () ->
        let repo, _, _, _ = three_versions () in
        (* each commit adds one class and modifies its owner package *)
        check ci "churn" 4 (Repository.History.total_churn repo));
  ]

let () =
  Alcotest.run "repository"
    [ ("repo", repo_tests); ("history", history_tests) ]
