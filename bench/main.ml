(* The benchmark harness: one experiment per figure/claim of the paper (see
   DESIGN.md Section 3 and EXPERIMENTS.md for the index).

   The paper is a position paper with no measured evaluation, so E1 and E2
   regenerate its two figures as executable artifacts and the remaining
   experiments quantify the Section 3 infrastructure requirements, three
   ablations, and the interpreted runtime overhead. Output: one row per benchmark, nanoseconds per run estimated
   by OLS over monotonic-clock samples. *)

open Bechamel
open Toolkit

let v_names names =
  Transform.Params.V_list (List.map (fun n -> Transform.Params.V_ident n) names)

(* ---- workload builders -------------------------------------------------- *)

let synthetic = Fixtures.synthetic

(* the Fig. 2 banking pipeline, reusable *)
let fig2_project () =
  let project = Core.Project.create (Fixtures.banking ()) in
  let refine project concern params =
    match Core.Pipeline.refine project ~concern ~params with
    | Ok (project, _) -> project
    | Error e -> failwith (Core.Pipeline.error_to_string e)
  in
  let project =
    refine project "distribution" [ ("remote", v_names [ "Account"; "Teller" ]) ]
  in
  let project =
    refine project "transactions" [ ("transactional", v_names [ "Account" ]) ]
  in
  refine project "security" [ ("secured", v_names [ "Teller" ]) ]

let tx_cmt_for target =
  Transform.Cmt.specialize_exn Concerns.Transactions.transformation
    [ ("transactional", v_names [ target ]) ]

(* ---- E1: Fig. 1 — one refinement step ----------------------------------- *)

let e1_tests =
  let step m =
    (* specialize GMT -> CMT, checked apply, generate CAC from the same S *)
    let cmt = tx_cmt_for "C0" in
    match Transform.Engine.apply cmt m with
    | Ok outcome ->
        let cac =
          Aspects.Generator.from_cmt Concerns.Transactions.generic_aspect ~seq:1
            cmt
        in
        ignore outcome;
        ignore cac
    | Error f -> failwith (Format.asprintf "%a" Transform.Engine.pp_failure f)
  in
  List.map
    (fun n ->
      let m = synthetic n in
      Test.make
        ~name:(Printf.sprintf "fig1/refine-step:%d-classes" n)
        (Staged.stage (fun () -> step m)))
    [ 10; 50; 100; 200 ]

(* ---- E2: Fig. 2 — full three-concern pipeline ---------------------------- *)

let e2_tests =
  [
    Test.make ~name:"fig2/pipeline:refine-3-concerns"
      (Staged.stage (fun () -> ignore (fig2_project ())));
    Test.make ~name:"fig2/pipeline:build-artifacts"
      (let project = fig2_project () in
       Staged.stage (fun () ->
           match Core.Pipeline.build project with
           | Ok a -> ignore a
           | Error e -> failwith (Core.Pipeline.error_to_string e)));
    Test.make ~name:"fig2/pipeline:end-to-end"
      (Staged.stage (fun () ->
           let project = fig2_project () in
           match Core.Pipeline.build project with
           | Ok a -> ignore a
           | Error e -> failwith (Core.Pipeline.error_to_string e)));
    Test.make ~name:"fig2/pipeline:pim-construction-baseline"
      (Staged.stage (fun () -> ignore (Fixtures.banking ())));
    Test.make ~name:"fig2/pipeline:coloring"
      (let project = fig2_project () in
       Staged.stage (fun () -> ignore (Core.Project.coloring project)));
  ]

(* ---- E3: OCL precondition evaluation cost -------------------------------- *)

let e3_tests =
  let precondition =
    Ocl.Constraint_.make ~name:"fresh"
      "Set{'C0', 'C1'}->forAll(n | Class.allInstances()->exists(c | c.name = n))"
  in
  let heavy =
    Ocl.Constraint_.make ~name:"heavy"
      "Class.allInstances()->forAll(c | c.operations->forAll(o | \
       o.parameters->forAll(p | p.type <> '')))"
  in
  List.concat_map
    (fun n ->
      let m = synthetic n in
      [
        Test.make
          ~name:(Printf.sprintf "ocl/eval:precondition:%d-classes" n)
          (Staged.stage (fun () -> ignore (Ocl.Constraint_.check m precondition)));
        Test.make
          ~name:(Printf.sprintf "ocl/eval:nested-forall:%d-classes" n)
          (Staged.stage (fun () -> ignore (Ocl.Constraint_.check m heavy)));
      ])
    [ 10; 50; 100 ]
  @ [
      Test.make ~name:"ocl/eval:parse-only"
        (Staged.stage (fun () ->
             ignore
               (Ocl.Parser.parse
                  "Class.allInstances()->forAll(c | c.attributes->forAll(a | \
                   a.lower >= 0))")));
    ]

(* ---- E4: XMI round-trip throughput ---------------------------------------- *)

let e4_tests =
  List.concat_map
    (fun n ->
      let m = synthetic n in
      let text = Xmi.Export.to_string m in
      [
        Test.make
          ~name:(Printf.sprintf "xmi/roundtrip:export:%d-classes" n)
          (Staged.stage (fun () -> ignore (Xmi.Export.to_string m)));
        Test.make
          ~name:(Printf.sprintf "xmi/roundtrip:import:%d-classes" n)
          (Staged.stage (fun () -> ignore (Xmi.Import.from_string text)));
      ])
    [ 10; 50; 100 ]

(* ---- E5: weaving cost vs number of aspects --------------------------------- *)

(* Shared by E5 and E16: the paper's logging concern specialized to every
   class, replicated with distinct sequence numbers to scale aspect count. *)
let logging_set =
  match
    Transform.Params.build Concerns.Logging.formals
      [ ("targets", Transform.Params.V_list [ Transform.Params.V_string "*" ]) ]
  with
  | Ok set -> set
  | Error _ -> assert false

let logging_aspect i =
  {
    Aspects.Generator.aspect =
      Aspects.Generic.specialize_with_set Concerns.Logging.generic_aspect
        logging_set;
    from_transformation = Printf.sprintf "T.logging#%d" i;
    seq = i;
  }

let e5_tests =
  let program = Code.Generator.generate (synthetic 50) in
  List.map
    (fun k ->
      let aspects = List.init k (fun i -> logging_aspect (i + 1)) in
      Test.make
        ~name:(Printf.sprintf "weave/scale:%d-aspects" k)
        (Staged.stage (fun () -> ignore (Weaver.Weave.weave aspects program))))
    [ 1; 2; 4; 8 ]
  @ List.map
      (fun n ->
        let program_n = Code.Generator.generate (synthetic n) in
        let aspects = [ logging_aspect 1 ] in
        Test.make
          ~name:(Printf.sprintf "weave/scale:program-size:%d-classes" n)
          (Staged.stage (fun () -> ignore (Weaver.Weave.weave aspects program_n))))
      [ 10; 50; 100 ]
  @ [
      Test.make ~name:"weave/scale:join-point-enumeration"
        (Staged.stage (fun () ->
             ignore (Weaver.Joinpoint.execution_shadows program)));
    ]

(* ---- E6: repository commit/undo/redo/diff ----------------------------------- *)

let e6_tests =
  let base = synthetic 20 in
  let chain =
    let rec build acc m i =
      if i = 0 then List.rev acc
      else
        let m', _ =
          Mof.Builder.add_class m ~owner:(Mof.Model.root m)
            ~name:(Printf.sprintf "V%d" i)
        in
        build (m' :: acc) m' (i - 1)
    in
    build [] base 20
  in
  let full_repo =
    List.fold_left
      (fun repo m -> Repository.Repo.commit ~message:"step" m repo)
      (Repository.Repo.init base) chain
  in
  [
    Test.make ~name:"repo/history:commit-chain-20"
      (Staged.stage (fun () ->
           ignore
             (List.fold_left
                (fun repo m -> Repository.Repo.commit ~message:"step" m repo)
                (Repository.Repo.init base) chain)));
    Test.make ~name:"repo/history:undo-redo-roundtrip"
      (Staged.stage (fun () ->
           let r = Option.get (Repository.Repo.undo full_repo) in
           let r = Option.get (Repository.Repo.undo r) in
           let r = Option.get (Repository.Repo.redo r) in
           ignore (Option.get (Repository.Repo.redo r))));
    Test.make ~name:"repo/history:diff-ends"
      (Staged.stage (fun () ->
           ignore (Repository.Repo.diff_between full_repo ~from_id:0 ~to_id:20)));
    Test.make ~name:"repo/history:render-log"
      (Staged.stage (fun () -> ignore (Repository.History.render full_repo)));
  ]

(* ---- E7: ablation — cost of pre/postcondition checking ----------------------- *)

let e7_tests =
  List.concat_map
    (fun n ->
      let m = synthetic n in
      let cmt = tx_cmt_for "C0" in
      [
        Test.make
          ~name:(Printf.sprintf "ablation/precheck:with-checks:%d-classes" n)
          (Staged.stage (fun () ->
               match Transform.Engine.apply cmt m with
               | Ok _ -> ()
               | Error f ->
                   failwith (Format.asprintf "%a" Transform.Engine.pp_failure f)));
        Test.make
          ~name:(Printf.sprintf "ablation/precheck:no-checks:%d-classes" n)
          (Staged.stage (fun () ->
               match
                 Transform.Engine.apply ~checks:Transform.Engine.no_checks cmt m
               with
               | Ok _ -> ()
               | Error f ->
                   failwith (Format.asprintf "%a" Transform.Engine.pp_failure f)));
        Test.make
          ~name:(Printf.sprintf "ablation/precheck:full-wf:%d-classes" n)
          (Staged.stage (fun () ->
               match
                 Transform.Engine.apply ~checks:Transform.Engine.full_checks cmt
                   m
               with
               | Ok _ -> ()
               | Error f ->
                   failwith (Format.asprintf "%a" Transform.Engine.pp_failure f)));
      ])
    [ 10; 50; 100 ]

(* ---- E8: ablation — aspect route vs monolithic generation -------------------- *)

let e8_tests =
  let project = fig2_project () in
  let reconfigured () =
    (* change one concern's parameters: the paper's architecture only
       regenerates that aspect and re-weaves *)
    let p = Option.get (Core.Pipeline.undo project) in
    match
      Core.Pipeline.refine p ~concern:"security"
        ~params:
          [
            ("secured", v_names [ "Teller" ]);
            ( "roles",
              Transform.Params.V_list [ Transform.Params.V_string "auditor" ] );
          ]
    with
    | Ok (p, _) -> p
    | Error e -> failwith (Core.Pipeline.error_to_string e)
  in
  [
    Test.make ~name:"ablation/monolithic:aspect-route-build"
      (Staged.stage (fun () ->
           match Core.Pipeline.build project with
           | Ok a -> ignore a
           | Error e -> failwith (Core.Pipeline.error_to_string e)));
    Test.make ~name:"ablation/monolithic:monolithic-codegen"
      (Staged.stage (fun () -> ignore (Core.Pipeline.monolithic_code project)));
    Test.make ~name:"ablation/monolithic:reconfigure-aspect-route"
      (Staged.stage (fun () ->
           let p = reconfigured () in
           match Core.Pipeline.build p with
           | Ok a -> ignore a
           | Error e -> failwith (Core.Pipeline.error_to_string e)));
    Test.make ~name:"ablation/monolithic:reconfigure-monolithic"
      (Staged.stage (fun () ->
           let p = reconfigured () in
           ignore (Core.Pipeline.monolithic_code p)));
  ]

(* ---- E9: runtime overhead of woven concerns (interpreter) ------------------ *)

let e9_tests =
  let project = fig2_project () in
  let functional = Core.Pipeline.functional_code project in
  let woven =
    match Core.Pipeline.build project with
    | Ok a -> a.Core.Artifacts.woven
    | Error e -> failwith (Core.Pipeline.error_to_string e)
  in
  let deposit program =
    ignore
      (Interp.Machine.run program ~class_name:"Account" ~method_name:"deposit"
         ~args:[ Interp.Rvalue.V_double 10.0 ])
  in
  [
    Test.make ~name:"runtime/overhead:unwoven-deposit"
      (Staged.stage (fun () -> deposit functional));
    Test.make ~name:"runtime/overhead:woven-deposit"
      (Staged.stage (fun () -> deposit woven));
    Test.make ~name:"runtime/overhead:fault-injection-path"
      (Staged.stage (fun () ->
           ignore
             (Interp.Machine.run ~faults:[ ("Account", "getBalance") ] woven
                ~class_name:"Account" ~method_name:"getBalance")));
  ]

(* ---- E10: ablation — composed vs sequential transformation -------------- *)

let e10_tests =
  let m = Fixtures.banking () in
  let tx = Concerns.Transactions.transformation in
  let sec = Concerns.Security.transformation in
  let composite =
    match
      Transform.Compose.sequence ~name:"T.tx-sec" ~concern:"composite"
        [ tx; sec ]
    with
    | Ok gmt -> gmt
    | Error e -> failwith e
  in
  let assignments =
    [
      ("transactional", v_names [ "Account" ]);
      ("secured", v_names [ "Teller" ]);
    ]
  in
  let composite_cmt = Transform.Cmt.specialize_exn composite assignments in
  let tx_cmt =
    Transform.Cmt.specialize_exn tx [ ("transactional", v_names [ "Account" ]) ]
  in
  let sec_cmt =
    Transform.Cmt.specialize_exn sec [ ("secured", v_names [ "Teller" ]) ]
  in
  [
    Test.make ~name:"ablation/compose:composite-apply"
      (Staged.stage (fun () ->
           match Transform.Engine.apply composite_cmt m with
           | Ok _ -> ()
           | Error f ->
               failwith (Format.asprintf "%a" Transform.Engine.pp_failure f)));
    Test.make ~name:"ablation/compose:sequential-apply"
      (Staged.stage (fun () ->
           match Transform.Engine.run m [ tx_cmt; sec_cmt ] with
           | Ok _ -> ()
           | Error (_, f) ->
               failwith (Format.asprintf "%a" Transform.Engine.pp_failure f)));
  ]

(* ---- E11: indexed store — lookup, diff and scoped WF scaling ------------- *)

(* Each synthetic class carries 13 elements (3 attributes, 3 operations with
   parameter and return), so 8/77/769 classes give models of ~10^2, 10^3 and
   10^4 elements. Every pair contrasts the indexed/incremental path the
   engine now takes by default with the full-scan baseline it replaced. *)
let e11_tests =
  List.concat_map
    (fun n ->
      let m = synthetic n in
      let size = Mof.Model.size m in
      let target = Printf.sprintf "C%d" (n - 1) in
      let target_id =
        match Mof.Query.find_class m target with
        | Some e -> e.Mof.Element.id
        | None -> failwith "synthetic target class missing"
      in
      let edited = Mof.Builder.add_stereotype m target_id "touched" in
      let touched =
        Mof.Diff.touched (Mof.Diff.compute ~old_model:m ~new_model:edited)
      in
      [
        Test.make ~name:(Printf.sprintf "store/index:find-class:%d-elements" size)
          (Staged.stage (fun () -> ignore (Mof.Query.find_class m target)));
        Test.make ~name:(Printf.sprintf "store/scan:find-class:%d-elements" size)
          (Staged.stage (fun () ->
               ignore
                 (List.find_opt
                    (fun (e : Mof.Element.t) ->
                      Mof.Element.metaclass e = "Class"
                      && String.equal e.Mof.Element.name target)
                    (Mof.Model.elements m))));
        Test.make ~name:(Printf.sprintf "store/journal:diff:%d-elements" size)
          (Staged.stage (fun () ->
               ignore (Mof.Diff.compute ~old_model:m ~new_model:edited)));
        Test.make ~name:(Printf.sprintf "store/scan:diff:%d-elements" size)
          (Staged.stage (fun () ->
               ignore (Mof.Diff.compute_scan ~old_model:m ~new_model:edited)));
        Test.make
          ~name:(Printf.sprintf "store/scoped:wellformed:%d-elements" size)
          (Staged.stage (fun () ->
               ignore (Mof.Wellformed.check_touched edited ~touched)));
        Test.make ~name:(Printf.sprintf "store/full:wellformed:%d-elements" size)
          (Staged.stage (fun () -> ignore (Mof.Wellformed.check edited)));
      ])
    [ 8; 77; 769 ]

(* ---- E13: ablation — OCL compile/extent caches and the query planner -------- *)

(* Each layer of the PR-4 OCL stack, isolated: the planner (index probes vs
   naive extent folds), the extent cache (warm vs forced-cold), and the
   compile cache (parse-once vs re-lex). `cold` rows go through
   [check_naive], which re-parses and recomputes extents every call — the
   pre-PR-4 shape. Engine-level rows show the same ablations through
   [Transform.Engine.apply], matching E7's workload. *)
let e13_tests =
  let probe =
    Ocl.Constraint_.make ~name:"probe"
      "Class.allInstances()->exists(c | c.name = 'C0')"
  in
  let walk =
    Ocl.Constraint_.make ~name:"walk"
      "Set{'C0', 'C1'}->forAll(n | Class.allInstances()->exists(c | c.name = n))"
  in
  let parse_body =
    "Class.allInstances()->forAll(c | c.attributes->forAll(a | a.lower >= 0))"
  in
  let apply ?checks cmt m =
    match
      match checks with
      | None -> Transform.Engine.apply cmt m
      | Some checks -> Transform.Engine.apply ~checks cmt m
    with
    | Ok _ -> ()
    | Error f -> failwith (Format.asprintf "%a" Transform.Engine.pp_failure f)
  in
  List.concat_map
    (fun n ->
      let m = synthetic n in
      let cmt = tx_cmt_for "C0" in
      [
        Test.make
          ~name:(Printf.sprintf "ocl/probe:planned+cached:%d-classes" n)
          (Staged.stage (fun () -> ignore (Ocl.Constraint_.check m probe)));
        Test.make ~name:(Printf.sprintf "ocl/probe:no-planner:%d-classes" n)
          (Staged.stage (fun () ->
               Ocl.Eval.with_no_planner (fun () ->
                   ignore (Ocl.Constraint_.check m probe))));
        Test.make ~name:(Printf.sprintf "ocl/probe:cold:%d-classes" n)
          (Staged.stage (fun () -> ignore (Ocl.Constraint_.check_naive m probe)));
        Test.make ~name:(Printf.sprintf "ocl/walk:planned+cached:%d-classes" n)
          (Staged.stage (fun () -> ignore (Ocl.Constraint_.check m walk)));
        Test.make ~name:(Printf.sprintf "ocl/walk:cold:%d-classes" n)
          (Staged.stage (fun () -> ignore (Ocl.Constraint_.check_naive m walk)));
        Test.make
          ~name:(Printf.sprintf "ablation/ocl:engine-no-planner:%d-classes" n)
          (Staged.stage (fun () ->
               apply ~checks:Transform.Engine.no_planner_checks cmt m));
        Test.make
          ~name:(Printf.sprintf "ablation/ocl:engine-cold-cache:%d-classes" n)
          (Staged.stage (fun () ->
               Ocl.Meta.with_extent_cache false (fun () ->
                   Ocl.Compile.with_cache false (fun () -> apply cmt m))));
      ])
    [ 10; 50; 100 ]
  @ [
      Test.make ~name:"ocl/parse:cached"
        (Staged.stage (fun () -> ignore (Ocl.Compile.compile_exn parse_body)));
      Test.make ~name:"ocl/parse:uncached"
        (Staged.stage (fun () -> ignore (Ocl.Parser.parse parse_body)));
      (let m = synthetic 100 in
       Test.make ~name:"ocl/extent:cached:100-classes"
         (Staged.stage (fun () -> ignore (Ocl.Meta.all_instances m "Class"))));
      (let m = synthetic 100 in
       Test.make ~name:"ocl/extent:cold:100-classes"
         (Staged.stage (fun () ->
              Ocl.Meta.with_extent_cache false (fun () ->
                  ignore (Ocl.Meta.all_instances m "Class")))));
    ]

(* ---- harness ------------------------------------------------------------- *)

let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None ()

(* ---- machine-readable snapshot (BENCH_pr9.json) -------------------------- *)

(* One `{experiment, metric, value, unit}` row per measurement, accumulated
   alongside the human-readable table; see EXPERIMENTS.md for the schema. *)
let snapshot : (string * Obs.Metric.row) list ref = ref []

let add_row ~experiment ~metric ~value ~unit_ =
  snapshot := (experiment, { Obs.Metric.metric; value; unit_ }) :: !snapshot

let write_snapshot path =
  let entries = List.rev !snapshot in
  let json =
    "[\n"
    ^ String.concat ",\n"
        (List.map
           (fun (e, r) -> Obs.Metric.row_to_json ~experiment:e r)
           entries)
    ^ "\n]\n"
  in
  Obs.Sink.write_file path json;
  Printf.printf "bench snapshot: %s (%d rows)\n%!" path (List.length entries)

(* BENCH_ONLY=E7,E13 (comma-separated, whitespace-tolerant) reruns selected
   experiments in isolation — used to bound run-to-run variance when
   comparing snapshots. *)
let selected_experiments =
  match Sys.getenv_opt "BENCH_ONLY" with
  | None | Some "" -> None
  | Some s -> (
      match
        String.split_on_char ',' s
        |> List.map String.trim
        |> List.filter (fun e -> e <> "")
      with
      | [] -> None
      | only -> Some only)

(* Start every experiment group from a collected heap. Allocation-heavy
   groups otherwise inherit the previous groups' deferred major-GC debt
   (floating garbage, not a leak — live heap stays ~15MB across the whole
   run), and the incremental major collector pays it off inside the timed
   region: E16's full-weave rows measured 4x slower in the full run than
   under BENCH_ONLY until the heap was settled here. *)
let settle_gc () = Gc.compact ()

let run_group_timed ~experiment title tests =
  Printf.printf "== %s ==\n%!" title;
  settle_gc ();
  let t0 = Obs.Clock.now_ns () in
  let a0 = Gc.allocated_bytes () in
  let grouped = Test.make_grouped ~name:"" ~fmt:"%s%s" tests in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some [ e ] -> e
        | Some _ | None -> Float.nan
      in
      let r2 = Option.value ~default:Float.nan (Analyze.OLS.r_square ols) in
      add_row ~experiment ~metric:name ~value:estimate ~unit_:"ns/run";
      Printf.printf "  %-55s %12.1f ns/run   (r2=%.4f)\n%!" name estimate r2)
    rows;
  add_row ~experiment ~metric:"group.wall"
    ~value:(Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0) /. 1e9)
    ~unit_:"s";
  add_row ~experiment ~metric:"group.alloc"
    ~value:(Gc.allocated_bytes () -. a0)
    ~unit_:"bytes";
  print_newline ()

let run_group ~experiment title tests =
  match selected_experiments with
  | Some only when not (List.mem experiment only) -> ()
  | _ -> run_group_timed ~experiment title tests

(* ---- E14: parallel batch refinement — domain-pool throughput scaling ----- *)

(* Bechamel's per-run OLS is the wrong shape for whole-batch wall time, so
   E14 times [Par.Batch.apply_all] directly: one warmup run then three
   timed runs per (arm, jobs) cell, keeping the fastest. jobs=1 is the
   in-process sequential path (no pool, no domains); wider cells reuse one
   pool per width so pool construction stays out of the measurement. The
   speedup rows are relative to the same arm's jobs-1 cell, and
   host.domains records how many cores the host actually offers — the
   scaling ceiling is min(jobs, cores), so on a single-core host every
   speedup row sits near 1.0 by physics, not by bug. *)
let run_e14 () =
  let experiment = "E14" in
  match selected_experiments with
  | Some only when not (List.mem experiment only) -> ()
  | _ ->
      Printf.printf
        "== E14 parallel batch: domain-pool throughput scaling ==\n%!";
      settle_gc ();
      let t0 = Obs.Clock.now_ns () in
      let a0 = Gc.allocated_bytes () in
      let models = Par.Workload.models ~classes:50 16 in
      let nmodels = float_of_int (List.length models) in
      let cmts = [ tx_cmt_for "C0" ] in
      let arms =
        [ ("checked", None); ("unchecked", Some Transform.Engine.no_checks) ]
      in
      List.iter
        (fun (arm, checks) ->
          let time_batch ?pool () =
            let run () =
              List.iter
                (function
                  | Ok _ -> ()
                  | Error (_, f) ->
                      failwith
                        (Format.asprintf "%a" Transform.Engine.pp_failure f))
                (Par.Batch.apply_all ?pool ?checks ~cmts models)
            in
            run ();
            (* warmup: fill the parse/extent caches of every domain *)
            let best = ref Int64.max_int in
            for _ = 1 to 3 do
              let t = Obs.Clock.now_ns () in
              run ();
              let d = Int64.sub (Obs.Clock.now_ns ()) t in
              if d < !best then best := d
            done;
            Int64.to_float !best
          in
          let base = ref Float.nan in
          List.iter
            (fun jobs ->
              let ns =
                if jobs = 1 then time_batch ()
                else
                  Par.Pool.with_pool ~jobs (fun p -> time_batch ~pool:p ())
              in
              if jobs = 1 then base := ns;
              let throughput = nmodels /. (ns /. 1e9) in
              let speedup = !base /. ns in
              let name = Printf.sprintf "batch/apply:%s:jobs-%d" arm jobs in
              add_row ~experiment ~metric:name ~value:ns ~unit_:"ns/run";
              add_row ~experiment
                ~metric:(Printf.sprintf "batch/throughput:%s:jobs-%d" arm jobs)
                ~value:throughput ~unit_:"models/s";
              add_row ~experiment
                ~metric:(Printf.sprintf "batch/speedup:%s:jobs-%d" arm jobs)
                ~value:speedup ~unit_:"x";
              Printf.printf "  %-55s %12.1f ns/run   (%.1f models/s, %.2fx)\n%!"
                name ns throughput speedup)
            [ 1; 2; 4; 8 ])
        arms;
      add_row ~experiment ~metric:"host.domains"
        ~value:(float_of_int (Domain.recommended_domain_count ()))
        ~unit_:"domains";
      add_row ~experiment ~metric:"group.wall"
        ~value:(Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0) /. 1e9)
        ~unit_:"s";
      add_row ~experiment ~metric:"group.alloc"
        ~value:(Gc.allocated_bytes () -. a0)
        ~unit_:"bytes";
      print_newline ()

(* ---- E15: content-addressed store vs full-copy at 10k-commit histories --- *)

(* Whole-history builds, timed directly like E14: a bounded ~200-element
   model takes one single-class rename per commit, so the content-addressed
   store grows by roughly one object per commit while the full-copy
   baseline re-pays the whole model at every commit. One warmup build then
   three timed builds per implementation, fastest kept; the size rows come
   from the final build, and the ratio rows are the acceptance criterion
   (the snapshot must be an order of magnitude smaller than the full-copy
   estimate at a 10k-commit history). *)
let run_e15 () =
  let experiment = "E15" in
  match selected_experiments with
  | Some only when not (List.mem experiment only) -> ()
  | _ ->
      Printf.printf
        "== E15 repository: content-addressed store vs full copy ==\n%!";
      settle_gc ();
      let t0 = Obs.Clock.now_ns () in
      let a0 = Gc.allocated_bytes () in
      let commits = 10_000 in
      let base = synthetic 25 in
      let ids =
        Array.of_list (Mof.Id.Set.elements (Mof.Model.by_kind base "Class"))
      in
      let mutate m i =
        let slot = i mod Array.length ids in
        Mof.Builder.rename m ids.(slot) (Printf.sprintf "C%d_v%d" slot i)
      in
      let time_build build =
        ignore (build ());
        let best = ref Int64.max_int in
        let last = ref None in
        for _ = 1 to 3 do
          let t = Obs.Clock.now_ns () in
          let r = build () in
          let d = Int64.sub (Obs.Clock.now_ns ()) t in
          if d < !best then best := d;
          last := Some r
        done;
        (Int64.to_float !best, Option.get !last)
      in
      let build_cas () =
        let rec go repo i =
          if i > commits then repo
          else
            let m = mutate (Repository.Repo.head_model repo) i in
            go (Repository.Repo.commit ~message:"step" m repo) (i + 1)
        in
        go (Repository.Repo.init base) 1
      in
      let build_naive () =
        let rec go repo i =
          if i > commits then repo
          else
            let m = mutate (Repository.Naive.head_model repo) i in
            go (Repository.Naive.commit ~message:"step" m repo) (i + 1)
        in
        go (Repository.Naive.init base) 1
      in
      let row_arm arm ns =
        let per_s = float_of_int commits /. (ns /. 1e9) in
        add_row ~experiment
          ~metric:(Printf.sprintf "repo/build-10k:%s" arm)
          ~value:ns ~unit_:"ns/run";
        add_row ~experiment
          ~metric:(Printf.sprintf "repo/commits:%s" arm)
          ~value:per_s ~unit_:"commits/s";
        Printf.printf "  %-55s %12.1f ns/run   (%.0f commits/s)\n%!"
          (Printf.sprintf "repo/build-10k:%s" arm)
          ns per_s
      in
      let cas_ns, cas = time_build build_cas in
      row_arm "cas" cas_ns;
      let naive_ns, naive = time_build build_naive in
      row_arm "naive" naive_ns;
      let store_bytes = float_of_int (Repository.Repo.store_bytes cas) in
      let snapshot_bytes =
        float_of_int (String.length (Repository.Repo.save cas))
      in
      let naive_bytes =
        float_of_int (Repository.Naive.estimated_bytes naive)
      in
      let size name v =
        add_row ~experiment ~metric:name ~value:v ~unit_:"bytes";
        Printf.printf "  %-55s %12.0f bytes\n%!" name v
      in
      size "repo/store.bytes:cas" store_bytes;
      size "repo/snapshot.bytes:cas" snapshot_bytes;
      size "repo/store.bytes:naive-full-copy" naive_bytes;
      let ratio name v =
        add_row ~experiment ~metric:name ~value:v ~unit_:"x";
        Printf.printf "  %-55s %12.1fx\n%!" name v
      in
      ratio "repo/size-advantage:naive-over-store" (naive_bytes /. store_bytes);
      ratio "repo/size-advantage:naive-over-snapshot"
        (naive_bytes /. snapshot_bytes);
      add_row ~experiment ~metric:"group.wall"
        ~value:(Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0) /. 1e9)
        ~unit_:"s";
      add_row ~experiment ~metric:"group.alloc"
        ~value:(Gc.allocated_bytes () -. a0)
        ~unit_:"bytes";
      print_newline ()

(* ---- E16: incremental re-weave and the joinpoint index -------------------- *)

(* Whole-weave wall time, measured directly like E14/E15 (warmup run, then
   best of three): 8 logging aspects over a 100-class program, with a
   single-method edit between weaves. Four arms separate the two
   optimizations: [full-indexed] is the production path, [full-scan] drops
   the joinpoint index (the weave_one fold), [initial] is the incremental
   weaver paying its cache-building cost cold, and [reweave] re-weaves
   after the one-method edit against a warm state. The acceptance
   criterion is the reweave-vs-full speedup row (target: >= 5x). *)
let run_e16 () =
  let experiment = "E16" in
  match selected_experiments with
  | Some only when not (List.mem experiment only) -> ()
  | _ ->
      Printf.printf
        "== E16 weaver: incremental re-weave and joinpoint index ==\n%!";
      settle_gc ();
      let t0 = Obs.Clock.now_ns () in
      let a0 = Gc.allocated_bytes () in
      let program = Code.Generator.generate (synthetic 100) in
      let aspects = List.init 8 (fun i -> logging_aspect (i + 1)) in
      let target =
        match Code.Junit.classes program with
        | c :: _ -> c.Code.Jdecl.class_name
        | [] -> failwith "synthetic program has no classes"
      in
      (* one-joinpoint edit: append a statement to the target's first
         bodied method; untouched classes stay physically shared *)
      let edited =
        Code.Junit.update_class program target (fun c ->
            {
              c with
              Code.Jdecl.methods =
                (match c.Code.Jdecl.methods with
                | m :: rest ->
                    {
                      m with
                      Code.Jdecl.body =
                        Some
                          (Option.value ~default:[] m.Code.Jdecl.body
                          @ [ Code.Jstmt.S_comment "edited" ]);
                    }
                    :: rest
                | [] -> []);
            })
      in
      let time f =
        ignore (f ());
        let best = ref Int64.max_int in
        for _ = 1 to 3 do
          (* settle before every rep: these allocation-heavy rows otherwise
             time whatever major-GC debt and heap growth the surrounding
             groups left behind, and full-run numbers drift 3-9x above the
             same row under BENCH_ONLY (and above the gate baseline) *)
          settle_gc ();
          let t = Obs.Clock.now_ns () in
          ignore (f ());
          let d = Int64.sub (Obs.Clock.now_ns ()) t in
          if d < !best then best := d
        done;
        Int64.to_float !best
      in
      let row name ns =
        add_row ~experiment ~metric:name ~value:ns ~unit_:"ns/run";
        Printf.printf "  %-55s %12.1f ns/run\n%!" name ns
      in
      let st = Weaver.Weave.initial aspects program in
      let full_ns = time (fun () -> Weaver.Weave.weave aspects edited) in
      row "weave/full-indexed:8-aspects-100-classes" full_ns;
      let qs0 = Gc.quick_stat () in
      let scan_ns = time (fun () -> Weaver.Weave.weave_scan aspects edited) in
      let qs1 = Gc.quick_stat () in
      Printf.printf
        "  [dbg] metrics=%b majors=%d minors=%d heap_words=%d\n%!"
        (Obs.Metric.enabled ())
        (qs1.Gc.major_collections - qs0.Gc.major_collections)
        (qs1.Gc.minor_collections - qs0.Gc.minor_collections)
        qs1.Gc.heap_words;
      row "weave/full-scan:no-index-ablation" scan_ns;
      let init_ns = time (fun () -> Weaver.Weave.initial aspects edited) in
      row "weave/initial:cold-incremental-ablation" init_ns;
      let re_ns = time (fun () -> Weaver.Weave.reweave st edited) in
      row "weave/reweave:one-method-edit" re_ns;
      let ratio name v =
        add_row ~experiment ~metric:name ~value:v ~unit_:"x";
        Printf.printf "  %-55s %12.1fx\n%!" name v
      in
      ratio "weave/speedup:reweave-vs-full-indexed" (full_ns /. re_ns);
      ratio "weave/speedup:reweave-vs-full-scan" (scan_ns /. re_ns);
      ratio "weave/speedup:indexed-vs-scan" (scan_ns /. full_ns);
      (* the logging concern is all-wildcard, so the arm above never
         probes; a literal-pointcut set shows what the index buys when
         the probe path engages *)
      let literal_aspects =
        List.init 8 (fun i ->
            {
              Aspects.Generator.aspect =
                Aspects.Aspect.make
                  ~name:(Printf.sprintf "L%d" i)
                  ~concern:"bench"
                  ~advices:
                    [
                      Aspects.Advice.make Aspects.Advice.Before
                        (Aspects.Pointcut.execution
                           (Printf.sprintf "C%d" (i * 12))
                           (Printf.sprintf "m%d" (i mod 3)))
                        [ Code.Jstmt.S_comment "probe" ];
                    ]
                  ();
              from_transformation = Printf.sprintf "T.lit#%d" i;
              seq = i + 1;
            })
      in
      let lit_full_ns =
        time (fun () -> Weaver.Weave.weave literal_aspects edited)
      in
      row "weave/full-indexed:literal-pointcuts" lit_full_ns;
      let lit_scan_ns =
        time (fun () -> Weaver.Weave.weave_scan literal_aspects edited)
      in
      row "weave/full-scan:literal-pointcuts" lit_scan_ns;
      ratio "weave/speedup:indexed-vs-scan:literal"
        (lit_scan_ns /. lit_full_ns);
      (* per-pointcut-kind matcher breakdown: one compiled/tree pair per
         kind over the program's full shadow set, so a slowdown in one
         decider specialization can't hide inside an aggregate row *)
      let shadows = Weaver.Joinpoint.all_shadows edited in
      let n_shadows = float_of_int (List.length shadows) in
      let kind_rows =
        [
          ("execution", Aspects.Pointcut.execution "C*" "m*");
          ("call", Aspects.Pointcut.call "*" "log");
          ("set", Aspects.Pointcut.set_field "C*" "f");
          ("within", Aspects.Pointcut.within "C1*");
          ( "composite",
            Aspects.Pointcut.And
              ( Aspects.Pointcut.execution "C*" "*",
                Aspects.Pointcut.Not (Aspects.Pointcut.within "C9*") ) );
        ]
      in
      List.iter
        (fun (kind, pc) ->
          let sweeps = 100. in
          (* partial application stages the decider-cache lookup (and the
             tree baseline's no-op staging) once per sweep, like the
             weaver's own [List.filter (Matcher.matches pc)] call sites *)
          let sweep matches () =
            for _ = 1 to 100 do
              let d = matches pc in
              List.iter (fun s -> ignore (d s)) shadows
            done
          in
          let dec_ns =
            time (sweep Weaver.Matcher.decider) /. (sweeps *. n_shadows)
          in
          row (Printf.sprintf "match/%s:compiled" kind) dec_ns;
          let tree_ns =
            time (sweep Weaver.Matcher.matches_tree) /. (sweeps *. n_shadows)
          in
          row (Printf.sprintf "match/%s:tree" kind) tree_ns;
          ratio (Printf.sprintf "match/speedup:%s" kind) (tree_ns /. dec_ns))
        kind_rows;
      add_row ~experiment ~metric:"group.wall"
        ~value:(Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0) /. 1e9)
        ~unit_:"s";
      add_row ~experiment ~metric:"group.alloc"
        ~value:(Gc.allocated_bytes () -. a0)
        ~unit_:"bytes";
      print_newline ()

(* ---- E17: service observability — commit latency and metric overhead ----- *)

(* Two questions about the observability layer itself: what do session
   commit latencies look like through the Obs.Hist quantile lens as writer
   contention grows (jobs 1 vs 4 — all writers share one commit mutex),
   and what does leaving the metric registry on cost against the null-sink
   default. The quantile rows report in plain "ns", deliberately outside
   the regression gate's direction map — tail latencies on shared CI
   runners are too noisy to gate; the per-commit wall rows use "ns/run"
   and are gated. *)
let run_e17 () =
  let experiment = "E17" in
  match selected_experiments with
  | Some only when not (List.mem experiment only) -> ()
  | _ ->
      Printf.printf
        "== E17 service observability: commit latency and overhead ==\n%!";
      settle_gc ();
      let t0 = Obs.Clock.now_ns () in
      let a0 = Gc.allocated_bytes () in
      let base = synthetic 25 in
      let commits = 200 in
      let fail_svc e = failwith (Repository.Service.error_to_string e) in
      let serve ~jobs () =
        let svc = Repository.Service.create (Repository.Repo.init base) in
        let sessions = List.init jobs Fun.id in
        List.iter
          (fun s ->
            match
              Repository.Service.create_branch svc (Printf.sprintf "b%d" s)
            with
            | Ok _ -> ()
            | Error e -> fail_svc e)
          sessions;
        let session s =
          let branch = Printf.sprintf "b%d" s in
          for i = 1 to commits do
            let view = Repository.Service.snapshot svc in
            match Repository.Repo.branch_head view branch with
            | None -> failwith "branch vanished"
            | Some id -> (
                let m =
                  match Repository.Repo.model_at view id with
                  | Some m -> m
                  | None -> failwith "head not stored"
                in
                let m, _ =
                  Mof.Builder.add_class m ~owner:(Mof.Model.root m)
                    ~name:(Printf.sprintf "S%dC%d" s i)
                in
                match
                  Repository.Service.commit svc ~branch ~message:"bench" m
                with
                | Ok _ -> ()
                | Error e -> fail_svc e)
          done
        in
        if jobs > 1 then
          Par.Pool.with_pool ~jobs (fun p ->
              ignore (Par.Pool.map p session sessions))
        else List.iter session sessions
      in
      let commit_hist () =
        List.find_map
          (function
            | (name, _), Obs.Metric.Histogram { hist; _ }
              when String.equal name "repo.session.commit.latency_ns" ->
                Some hist
            | _ -> None)
          (Obs.Metric.dump ())
      in
      (* quantiles per contention level; worker shards merge exactly into
         the submitting domain at pool join, so the histogram covers every
         session's commits *)
      List.iter
        (fun jobs ->
          Obs.Metric.enable ();
          serve ~jobs ();
          (match commit_hist () with
          | None -> failwith "commit latency histogram not recorded"
          | Some h ->
              let s = Obs.Hist.snapshot h in
              let q name v =
                let metric =
                  Printf.sprintf "serve/commit-latency:%s:jobs-%d" name jobs
                in
                add_row ~experiment ~metric ~value:v ~unit_:"ns";
                Printf.printf "  %-55s %12.0f ns\n%!" metric v
              in
              q "p50" s.Obs.Hist.s_p50;
              q "p90" s.Obs.Hist.s_p90;
              q "p99" s.Obs.Hist.s_p99;
              q "max" s.Obs.Hist.s_max);
          Obs.Metric.disable ();
          Obs.Metric.reset ())
        [ 1; 4 ];
      (* metric-registry overhead on the same single-session workload:
         warmup, best of three, per committed model *)
      let time f =
        f ();
        let best = ref Int64.max_int in
        for _ = 1 to 3 do
          settle_gc ();
          let t = Obs.Clock.now_ns () in
          f ();
          let d = Int64.sub (Obs.Clock.now_ns ()) t in
          if d < !best then best := d
        done;
        Int64.to_float !best
      in
      let per_commit ns = ns /. float_of_int commits in
      (* the latency phase above just churned 5x200 commits through domain
         pools; re-settle so the overhead rows don't time its GC debt *)
      settle_gc ();
      let off_ns = per_commit (time (serve ~jobs:1)) in
      Obs.Metric.enable ();
      let on_ns = per_commit (time (serve ~jobs:1)) in
      Obs.Metric.disable ();
      Obs.Metric.reset ();
      let row name v unit_ =
        add_row ~experiment ~metric:name ~value:v ~unit_;
        Printf.printf "  %-55s %12.1f %s\n%!" name v unit_
      in
      row "serve/commit:obs-off" off_ns "ns/run";
      row "serve/commit:obs-metrics" on_ns "ns/run";
      (* informational ratio, not "x": lower is better here and "x" rows
         gate higher-better *)
      row "serve/overhead:metrics-vs-off" (on_ns /. off_ns) "ratio";
      add_row ~experiment ~metric:"group.wall"
        ~value:(Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0) /. 1e9)
        ~unit_:"s";
      add_row ~experiment ~metric:"group.alloc"
        ~value:(Gc.allocated_bytes () -. a0)
        ~unit_:"bytes";
      print_newline ()

(* Counter totals from one representative instrumented run (the Fig. 2
   pipeline end to end plus an XMI round trip). Collected *after* the timed
   groups, so metric recording never perturbs the measurements above. *)
(* ---- E18: bytecode execution layer — compiled vs tree-walking ------------- *)

(* The PR-9 ablation: every row is a [Vm.with_vm true]/[false] pair over
   the same warm state, so the delta is purely execute-compiled vs
   walk-the-tree — parse, planner and extent caches are shared by both
   arms. OCL rows mirror E3/E13 shapes (the acceptance criterion is >= 2x
   on at least one of them), the matcher row covers the decider tier, the
   interp rows cover compiled method bodies (loop-heavy and call-heavy),
   and the pipeline row is E2's end-to-end build under both engines.
   Direct best-of-three timing over an iteration batch, like E14-E16. *)
let run_e18 () =
  let experiment = "E18" in
  match selected_experiments with
  | Some only when not (List.mem experiment only) -> ()
  | _ ->
      Printf.printf
        "== E18 bytecode execution layer: compiled vs tree-walking ==\n%!";
      settle_gc ();
      let t0 = Obs.Clock.now_ns () in
      let a0 = Gc.allocated_bytes () in
      let time f =
        ignore (f ());
        let best = ref Int64.max_int in
        for _ = 1 to 3 do
          (* settle before every rep: these allocation-heavy rows otherwise
             time whatever major-GC debt and heap growth the surrounding
             groups left behind, and full-run numbers drift 3-9x above the
             same row under BENCH_ONLY (and above the gate baseline) *)
          settle_gc ();
          let t = Obs.Clock.now_ns () in
          ignore (f ());
          let d = Int64.sub (Obs.Clock.now_ns ()) t in
          if d < !best then best := d
        done;
        Int64.to_float !best
      in
      let row name ns =
        add_row ~experiment ~metric:name ~value:ns ~unit_:"ns/run";
        Printf.printf "  %-55s %12.1f ns/run\n%!" name ns
      in
      let ratio name v =
        add_row ~experiment ~metric:name ~value:v ~unit_:"x";
        Printf.printf "  %-55s %12.1fx\n%!" name v
      in
      (* one compiled/tree pair per workload; tree first so the compiled
         arm cannot be the one paying any residual warmup *)
      let arms name ~iters f =
        let batch () =
          for _ = 1 to iters do
            f ()
          done
        in
        let per = float_of_int iters in
        let tree_ns = Vm.with_vm false (fun () -> time batch) /. per in
        row (name ^ ":tree") tree_ns;
        let vm_ns = Vm.with_vm true (fun () -> time batch) /. per in
        row (name ^ ":vm") vm_ns;
        ratio ("speedup:" ^ name) (tree_ns /. vm_ns)
      in
      (* OCL tier: E3's eval shapes plus E13's walk, all on the 100-class
         model, plus a collection/arithmetic body whose cost is pure
         interpretation *)
      let m = synthetic 100 in
      let precondition =
        Ocl.Constraint_.make ~name:"fresh"
          "Set{'C0', 'C1'}->forAll(n | Class.allInstances()->exists(c | \
           c.name = n))"
      in
      let heavy =
        Ocl.Constraint_.make ~name:"heavy"
          "Class.allInstances()->forAll(c | c.operations->forAll(o | \
           o.parameters->forAll(p | p.type <> '')))"
      in
      let iterate =
        Ocl.Constraint_.make ~name:"iterate"
          "Sequence{1, 2, 3, 4, 5, 6, 7, 8}->iterate(n; a : Integer = 0 | a \
           + n * n) = 204 and Sequence{1, 2, 3, 4}->collect(n | n * 2)->sum() \
           = 20"
      in
      arms "ocl/eval:precondition:100-classes" ~iters:200 (fun () ->
          ignore (Ocl.Constraint_.check m precondition));
      arms "ocl/eval:nested-forall:100-classes" ~iters:50 (fun () ->
          ignore (Ocl.Constraint_.check m heavy));
      arms "ocl/eval:iterate-arith" ~iters:2000 (fun () ->
          ignore (Ocl.Constraint_.check m iterate));
      (* the environment-bound shape: let-bound thresholds consulted from
         an iterator body. The walker pays an assoc-list walk (generic
         equality per entry) for every variable access plus two env
         allocations per iteration; the compiled form reads slots. *)
      let deep_env =
        Ocl.Constraint_.make ~name:"deep-env"
          "let lo : Integer = 1 in let hi : Integer = 9 in let scale : \
           Integer = 2 in let bias : Integer = 3 in let cap : Integer = 100 \
           in Sequence{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, \
           16}->iterate(n; a : Integer = 0 | a + ((n * scale + bias - lo) * \
           hi)) < cap * 100"
      in
      arms "ocl/eval:let-iterate:deep-env" ~iters:2000 (fun () ->
          ignore (Ocl.Constraint_.check m deep_env));
      (* matcher tier: a composite pointcut over the full shadow set *)
      let program = Code.Generator.generate m in
      let shadows = Weaver.Joinpoint.all_shadows program in
      let pc =
        Aspects.Pointcut.Or
          ( Aspects.Pointcut.execution "C*" "m*",
            Aspects.Pointcut.And
              ( Aspects.Pointcut.call "*" "*0",
                Aspects.Pointcut.Not (Aspects.Pointcut.within "C1*") ) )
      in
      arms "match/all-shadows:composite" ~iters:200 (fun () ->
          let d = Weaver.Matcher.matches pc in
          List.iter (fun s -> ignore (d s)) shadows);
      (* interp tier: a loop-and-call-heavy method executed end to end —
         the body cache is warm in both arms, the walker just re-walks *)
      let bench_program =
        let mk_method ?(params = []) name body =
          {
            Code.Jdecl.method_name = name;
            method_mods = [ Code.Jdecl.M_public ];
            return_type = Code.Jtype.T_int;
            params;
            throws = [];
            body = Some body;
          }
        in
        let e n = Code.Jexpr.E_name n in
        let num n = Code.Jexpr.E_int n in
        let bin op a b = Code.Jexpr.E_binary (op, a, b) in
        let set name v = Code.Jstmt.S_expr (Code.Jexpr.E_assign (e name, v)) in
        [
          Code.Junit.unit_ ~package:"bench"
            [
              Code.Jdecl.Class
                {
                  Code.Jdecl.class_name = "Bench";
                  class_mods = [ Code.Jdecl.M_public ];
                  extends = None;
                  implements = [];
                  fields =
                    [
                      {
                        Code.Jdecl.field_name = "f";
                        field_type = Code.Jtype.T_int;
                        field_mods = [ Code.Jdecl.M_private ];
                        field_init = None;
                      };
                    ];
                  methods =
                    [
                      mk_method "step"
                        [
                          Code.Jstmt.S_local
                            (Code.Jtype.T_int, "x", Some (num 1));
                          Code.Jstmt.S_return (Some (bin "+" (e "x") (num 1)));
                        ];
                      mk_method "run"
                        ~params:
                          [
                            {
                              Code.Jdecl.param_name = "n";
                              param_type = Code.Jtype.T_int;
                            };
                          ]
                        [
                          set "f" (num 0);
                          Code.Jstmt.S_while
                            ( bin "<" (e "f") (e "n"),
                              [
                                set "f"
                                  (bin "+" (e "f")
                                     (Code.Jexpr.E_call
                                        (Some Code.Jexpr.E_this, "step", [])));
                              ] );
                          Code.Jstmt.S_return (Some (e "f"));
                        ];
                    ];
                };
            ];
        ]
      in
      arms "interp/loop-calls:1000-iterations" ~iters:20 (fun () ->
          ignore
            (Interp.Machine.run ~args:[ Interp.Rvalue.V_int 2000 ]
               bench_program ~class_name:"Bench" ~method_name:"run"));
      (* E2's end-to-end pipeline under both engines: weaving and
         constraint checking ride the compiled paths, everything else is
         shared, so the win here is diluted but must not be a loss *)
      arms "fig2/pipeline:end-to-end" ~iters:10 (fun () ->
          let project = fig2_project () in
          match Core.Pipeline.build project with
          | Ok a -> ignore a
          | Error e -> failwith (Core.Pipeline.error_to_string e));
      add_row ~experiment ~metric:"group.wall"
        ~value:(Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0) /. 1e9)
        ~unit_:"s";
      add_row ~experiment ~metric:"group.alloc"
        ~value:(Gc.allocated_bytes () -. a0)
        ~unit_:"bytes";
      print_newline ()

let collect_counters () =
  Obs.Metric.enable ();
  let project = fig2_project () in
  (match Core.Pipeline.build project with
  | Ok _ -> ()
  | Error e -> failwith (Core.Pipeline.error_to_string e));
  let text = Xmi.Export.to_string (Core.Project.model project) in
  ignore (Xmi.Import.from_string text);
  List.iter
    (fun (r : Obs.Metric.row) ->
      add_row ~experiment:"counters" ~metric:r.Obs.Metric.metric
        ~value:r.Obs.Metric.value ~unit_:r.Obs.Metric.unit_)
    (Obs.Metric.rows ());
  Obs.Metric.disable ();
  Obs.Metric.reset ()

let () =
  print_endline
    "mdweave benchmark harness — experiments E1..E18 (see EXPERIMENTS.md; \
     E12 is the fuzz harness, driven by bin/check_cli)";
  print_newline ();
  run_group ~experiment:"E1"
    "E1  Fig.1: one refinement step (specialize+check+apply+CAC)" e1_tests;
  run_group ~experiment:"E2"
    "E2  Fig.2: three-concern pipeline on the banking PIM" e2_tests;
  run_group ~experiment:"E3"
    "E3  OCL evaluation cost (Section 2 pre/postconditions)" e3_tests;
  run_group ~experiment:"E4" "E4  XMI round-trip (Section 3 interchange)"
    e4_tests;
  run_group ~experiment:"E5" "E5  weaving cost vs number of aspects" e5_tests;
  run_group ~experiment:"E6"
    "E6  repository commit/undo/redo/diff (Section 3)" e6_tests;
  run_group ~experiment:"E7" "E7  ablation: pre/postcondition checking cost"
    e7_tests;
  run_group ~experiment:"E8"
    "E8  ablation: aspect route vs monolithic generation" e8_tests;
  run_group ~experiment:"E9"
    "E9  runtime overhead of woven concerns (interpreted)" e9_tests;
  run_group ~experiment:"E10"
    "E10 ablation: composed vs sequential transformations" e10_tests;
  run_group ~experiment:"E11"
    "E11 indexed store: lookup, diff and scoped WF scaling" e11_tests;
  run_group ~experiment:"E13"
    "E13 ablation: OCL compile/extent caches and query planner" e13_tests;
  run_e14 ();
  run_e15 ();
  run_e16 ();
  run_e17 ();
  run_e18 ();
  collect_counters ();
  write_snapshot "BENCH_pr9.json"
