(* Standalone regression gate over two benchmark snapshots — the same
   engine as `mdweave bench-diff`, kept as its own executable so CI can
   gate without building the full CLI:

     dune exec bench/regress.exe -- BENCH_pr7.json BENCH_pr8.json 25

   Exit 0 when every gated row is within tolerance, 1 on any regression,
   2 on usage/parse errors. The optional third argument is the tolerance
   in percent (default 10). *)

let read path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg ->
      prerr_endline ("regress: " ^ msg);
      exit 2
  | text -> (
      match Obs.Regress.parse text with
      | Ok rows -> rows
      | Error msg ->
          prerr_endline (Printf.sprintf "regress: %s: %s" path msg);
          exit 2)

let () =
  let old_file, new_file, tolerance =
    match Array.to_list Sys.argv with
    | [ _; o; n ] -> (o, n, 10.)
    | [ _; o; n; t ] -> (
        match float_of_string_opt t with
        | Some t -> (o, n, t)
        | None ->
            prerr_endline ("regress: bad tolerance " ^ t);
            exit 2)
    | _ ->
        prerr_endline "usage: regress OLD.json NEW.json [TOLERANCE_PCT]";
        exit 2
  in
  let entries =
    Obs.Regress.compare_snapshots ~tolerance (read old_file) (read new_file)
  in
  print_string (Obs.Regress.render ~tolerance entries);
  exit (Obs.Regress.gate entries)
