(* check — long-run driver for the metamorphic fuzz harness.

   Runs each oracle for a given number of randomized cases, prints
   throughput, and on failure prints the shrunk reproducer and exits 1.
   Every case is replayable from (oracle, seed, case index); see
   lib/check/harness.mli. *)

let () =
  let seed = ref 42 in
  let count = ref 10_000 in
  let oracles = ref [] in
  let list_only = ref false in
  let quiet = ref false in
  let spec =
    [
      ("--seed", Arg.Set_int seed, "N  run seed (default 42)");
      ("--count", Arg.Set_int count, "N  cases per oracle (default 10000)");
      ( "--oracle",
        Arg.String (fun s -> oracles := s :: !oracles),
        "NAME  run only this oracle (repeatable); default: all" );
      ("--list", Arg.Set list_only, "  list oracle names and exit");
      ("--quiet", Arg.Set quiet, "  suppress per-oracle progress");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "check [--seed N] [--count N] [--oracle NAME]...";
  if !list_only then begin
    List.iter (fun (o : Check.Oracle.t) -> print_endline o.name) Check.Oracle.all;
    exit 0
  end;
  let selected =
    match !oracles with
    | [] -> Check.Oracle.all
    | names ->
        List.rev_map
          (fun n ->
            match Check.Oracle.find n with
            | Some o -> o
            | None ->
                Printf.eprintf "check: unknown oracle %S (try --list)\n" n;
                exit 2)
          names
  in
  let seed64 = Int64.of_int !seed in
  let failed = ref false in
  List.iter
    (fun (o : Check.Oracle.t) ->
      let progress i =
        if not !quiet then begin
          Printf.printf "\r%-6s %d/%d" o.name i !count;
          flush stdout
        end
      in
      let finish (s : Check.Harness.stats) =
        let rate =
          if s.elapsed > 0. then float_of_int s.cases /. s.elapsed else 0.
        in
        Printf.printf "\r%-6s %d cases in %.2fs (%.0f cases/s)\n" o.name
          s.cases s.elapsed rate
      in
      match Check.Harness.run ~progress o ~seed:seed64 ~count:!count with
      | Ok stats -> finish stats
      | Error (f, stats) ->
          finish stats;
          failed := true;
          Format.printf "%a@." Check.Harness.pp_failure f)
    selected;
  if !failed then exit 1
