(* check — long-run driver for the metamorphic fuzz harness.

   Runs each oracle for a given number of randomized cases, prints
   throughput, and on failure prints the shrunk reproducer and exits 1.
   Every case is replayable from (oracle, seed, case index); see
   lib/check/harness.mli. *)

(* A hidden always-failing oracle: `--oracle selftest-fail` exercises the
   failure path end to end (shrinking, reproducer printing, exit code 1)
   without needing a real bug — the cram suite locks the exit code with it. *)
let selftest_fail : Check.Oracle.t =
  {
    Check.Oracle.name = "selftest-fail";
    check =
      Check.Oracle.Model_check
        (fun ~aux:_ ~base:_ ~edits:_ ->
          Error "[selftest] forced failure (exit-code self-test)");
  }

let () =
  let seed = ref 42 in
  let count = ref 10_000 in
  let oracles = ref [] in
  let list_only = ref false in
  let quiet = ref false in
  let trace = ref "" in
  let jobs = ref 0 in
  let spec =
    [
      ("--seed", Arg.Set_int seed, "N  run seed (default 42)");
      ("--count", Arg.Set_int count, "N  cases per oracle (default 10000)");
      ( "--oracle",
        Arg.String (fun s -> oracles := s :: !oracles),
        "NAME  run only this oracle (repeatable); default: all" );
      ("--list", Arg.Set list_only, "  list oracle names and exit");
      ("--quiet", Arg.Set quiet, "  suppress per-oracle progress");
      ( "--jobs",
        Arg.Set_int jobs,
        "N  domains for running oracles (default: min of core count and \
         oracle count)" );
      ( "--trace",
        Arg.Set_string trace,
        "FILE  write a Chrome trace-event file of the run" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "check [--seed N] [--count N] [--oracle NAME]... [--jobs N] [--trace \
     FILE]";
  if !list_only then begin
    List.iter (fun (o : Check.Oracle.t) -> print_endline o.name) Check.Oracle.all;
    exit 0
  end;
  let selected =
    match !oracles with
    | [] -> Check.Oracle.all
    | names ->
        List.rev_map
          (fun n ->
            match Check.Oracle.find n with
            | Some o -> o
            | None when n = selftest_fail.Check.Oracle.name -> selftest_fail
            | None ->
                Printf.eprintf "check: unknown oracle %S (try --list)\n" n;
                exit 2)
          names
  in
  let chrome =
    if !trace = "" then None
    else begin
      let sink, render = Obs.Sink.chrome () in
      Obs.set_sink sink;
      Some (!trace, render)
    end
  in
  let seed64 = Int64.of_int !seed in
  let failed = ref false in
  let finish (o : Check.Oracle.t) (s : Check.Harness.stats) =
    let rate =
      if s.elapsed > 0. then float_of_int s.cases /. s.elapsed else 0.
    in
    Printf.printf "\r%-6s %d cases in %.2fs (%.0f cases/s)\n" o.name s.cases
      s.elapsed rate
  in
  let report (o : Check.Oracle.t) = function
    | Ok stats -> finish o stats
    | Error ((f : Check.Harness.failure), stats) ->
        finish o stats;
        failed := true;
        Format.printf "%a@." Check.Harness.pp_failure f
  in
  (* Oracles run through a bounded Par.Pool (results come back in oracle
     order) instead of the old one-unchecked-domain-per-oracle spawn, so
     nine requested oracles no longer mean nine concurrent domains on a
     two-core box; --jobs caps the pool explicitly. Sequential fallback
     when there is nothing to parallelize or when tracing: the Obs sink is
     domain-local and pool workers start on the null sink, so a traced run
     must stay in the domain that owns the chrome sink. Per-oracle
     progress is only printed sequentially for the same reason; the joined
     summary lines are identical either way. *)
  let host_domains = Domain.recommended_domain_count () in
  let jobs =
    let cap = if !jobs > 0 then !jobs else host_domains in
    max 1 (min cap (List.length selected))
  in
  (* the run header records the effective parallelism so a logged run is
     reconstructible: the default is host-dependent, not a constant *)
  if not !quiet then
    Printf.printf "run: seed %d, %d cases per oracle, %d oracle(s), jobs %d (host domains %d)\n%!"
      !seed !count (List.length selected) jobs host_domains;
  if jobs < 2 || chrome <> None then
    List.iter
      (fun (o : Check.Oracle.t) ->
        let progress i =
          if not !quiet then begin
            Printf.printf "\r%-6s %d/%d" o.name i !count;
            flush stdout
          end
        in
        report o (Check.Harness.run ~progress o ~seed:seed64 ~count:!count))
      selected
  else
    Par.Pool.with_pool ~jobs (fun pool ->
        Par.Pool.map pool
          (fun (o : Check.Oracle.t) ->
            (o, Check.Harness.run o ~seed:seed64 ~count:!count))
          selected)
    |> List.iter (fun (o, r) -> report o r);
  (* The [vm] oracle's guarantee is only as strong as the opcodes the fuzz
     cases actually reach, so assert full opcode coverage whenever it ran
     with enough cases to make full coverage a fair demand (the CI smoke
     battery runs 500). Totals aggregate across all pool domains. *)
  let vm_ran =
    List.exists (fun (o : Check.Oracle.t) -> o.name = "vm") selected
  in
  if vm_ran && !count >= 500 then begin
    let missing = ref [] in
    let parts =
      List.map
        (fun p ->
          let counts = Vm.Profile.counts p in
          let zero = List.filter (fun (_, n) -> n = 0) counts in
          List.iter
            (fun (nm, _) ->
              missing := (Vm.Profile.prefix p ^ "." ^ nm) :: !missing)
            zero;
          Printf.sprintf "%s %d/%d" (Vm.Profile.prefix p)
            (List.length counts - List.length zero)
            (List.length counts))
        (Vm.Profile.all ())
    in
    Printf.printf "vm coverage: %s\n" (String.concat ", " parts);
    if !missing <> [] then begin
      Printf.printf "vm coverage FAILED, opcodes never executed: %s\n"
        (String.concat ", " (List.rev !missing));
      failed := true
    end
  end;
  (match chrome with
  | Some (path, render) ->
      Obs.set_sink Obs.Sink.Null;
      Obs.Sink.write_file path (render ());
      Printf.printf "trace written to %s\n" path
  | None -> ());
  if !failed then exit 1
