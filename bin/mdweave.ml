(* mdweave — the tool front-end for the concern-oriented refinement
   infrastructure (the CLI realization of the paper's Section 3 wizards).

   Commands:
     sample    write a sample banking PIM as XMI
     info      inspect an XMI model (tree, level, well-formedness)
     concerns  list registered concerns and their parameter wizards
     apply     apply one concern transformation to an XMI model
     check     evaluate an OCL constraint against an XMI model
     codegen   generate code (functional or monolithic) from an XMI model
     build     apply a transformation sequence and emit code + aspects
     batch     refine many independent models concurrently (domain pool)
     stats     summarize a model, or render a metrics snapshot as a table
     trace     summarize / slice JSONL traces per request or session
     bench-diff  gate two benchmark snapshots against a tolerance
     workflow  middleware-workflow guidance with interference verdicts
     repo      versioned model repository on a content-addressed snapshot *)

open Cmdliner

let read_model path =
  try Ok (Xmi.Import.read_file path) with
  | Xmi.Import.Import_error msg -> Error ("XMI import: " ^ msg)
  | Xmi.Xml_parser.Xml_error (msg, pos) ->
      Error (Printf.sprintf "XML parse error at offset %d: %s" pos msg)
  | Sys_error msg -> Error msg

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline ("mdweave: " ^ msg);
      exit 1

(* ---- observability plumbing ------------------------------------------ *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record the run as a trace file: $(docv) ending in .jsonl gets \
           one JSON event per line (sliceable with $(b,mdweave trace)); \
           any other name gets the Chrome trace-event format (open in \
           chrome://tracing or https://ui.perfetto.dev)")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Record run counters and histograms as JSON rows \
           ({metric, value, unit})")

let expo_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats" ] ~docv:"FILE"
        ~doc:
          "Write a Prometheus-style text exposition of the run's counters \
           and latency histograms — including the bytecode tier's \
           vm_compile_* and vm_exec_* counters — to $(docv) ('-' for \
           stdout); implies metric collection")

let no_vm_arg =
  Arg.(
    value & flag
    & info [ "no-vm" ]
        ~doc:
          "Ablation: evaluate OCL constraints, pointcut matches and \
           interpreted method bodies with the tree-walking baselines \
           instead of the compiled bytecode tiers (see DESIGN.md, §12)")

let jsonl_of_events events =
  String.concat "" (List.map (fun e -> Obs.Event.to_json e ^ "\n") events)

(* Install the requested sinks around [f]; artifacts are written on normal
   completion (a run that dies via [or_die] leaves none behind). The trace
   format follows the extension: .jsonl streams raw events (the format
   `mdweave trace` reads back), anything else renders a Chrome trace.
   [no_vm] flips the process-wide ablation default before any worker
   domain spawns; the VM opcode profiles are flushed into the metric
   registry before either artifact is rendered, so [--metrics] rows and
   the [--stats] exposition both carry the vm.* counters. *)
let with_obs ~trace ~metrics ~stats ~no_vm f =
  if no_vm then Vm.set_default false;
  let capture =
    Option.map
      (fun path ->
        let sink, events = Obs.Sink.memory () in
        Obs.set_sink sink;
        (path, events))
      trace
  in
  if Option.is_some metrics || Option.is_some stats then Obs.Metric.enable ();
  let v = f () in
  (match capture with
  | Some (path, events) ->
      Obs.set_sink Obs.Sink.Null;
      let events = events () in
      Obs.Sink.write_file path
        (if Filename.check_suffix path ".jsonl" then jsonl_of_events events
         else Obs.Sink.chrome_of_events events);
      Printf.printf "trace written to %s\n" path
  | None -> ());
  Vm.Profile.publish_all ();
  (match stats with
  | None -> ()
  | Some "-" -> print_string (Obs.Expo.render ())
  | Some path ->
      Obs.Sink.write_file path (Obs.Expo.render ());
      Printf.printf "stats written to %s\n" path);
  (match metrics with
  | Some path ->
      Obs.Metric.disable ();
      Obs.Sink.write_file path (Obs.Metric.rows_to_json (Obs.Metric.rows ()));
      Obs.Metric.reset ();
      Printf.printf "metrics written to %s\n" path
  | None -> ());
  v

(* ---- sample ---------------------------------------------------------- *)

let sample_pim () =
  let m = Mof.Model.create ~name:"banking" in
  let root = Mof.Model.root m in
  let m, acct = Mof.Builder.add_class m ~owner:root ~name:"Account" in
  let m, _ =
    Mof.Builder.add_attribute m ~cls:acct ~name:"balance" ~typ:Mof.Kind.Dt_real
  in
  let m, dep = Mof.Builder.add_operation m ~owner:acct ~name:"deposit" in
  let m, _ =
    Mof.Builder.add_parameter m ~op:dep ~name:"amount" ~typ:Mof.Kind.Dt_real
  in
  let m, wd = Mof.Builder.add_operation m ~owner:acct ~name:"withdraw" in
  let m, _ =
    Mof.Builder.add_parameter m ~op:wd ~name:"amount" ~typ:Mof.Kind.Dt_real
  in
  let m = Mof.Builder.set_result m ~op:wd ~typ:Mof.Kind.Dt_boolean in
  let m, teller = Mof.Builder.add_class m ~owner:root ~name:"Teller" in
  let m, tr = Mof.Builder.add_operation m ~owner:teller ~name:"transfer" in
  let m, _ =
    Mof.Builder.add_parameter m ~op:tr ~name:"from" ~typ:(Mof.Kind.Dt_ref acct)
  in
  let m, _ =
    Mof.Builder.add_parameter m ~op:tr ~name:"target" ~typ:(Mof.Kind.Dt_ref acct)
  in
  let m, _ =
    Mof.Builder.add_parameter m ~op:tr ~name:"amount" ~typ:Mof.Kind.Dt_real
  in
  Core.Level.mark Core.Level.Pim m

let sample_cmd =
  let out =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")
  in
  let run out =
    Xmi.Export.write_file out (sample_pim ());
    Printf.printf "wrote sample banking PIM to %s\n" out
  in
  Cmd.v (Cmd.info "sample" ~doc:"Write a sample banking PIM as XMI")
    Term.(const run $ out)

(* ---- info ------------------------------------------------------------ *)

let info_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let run file =
    let m = or_die (read_model file) in
    Printf.printf "model: %s (%d elements, level %s)\n" (Mof.Model.name m)
      (Mof.Model.size m)
      (match Core.Level.of_model m with
      | Some l -> Core.Level.to_string l
      | None -> "unmarked");
    print_string (Mof.Pp.model_to_string m);
    match Mof.Wellformed.check m with
    | [] -> print_endline "well-formed: yes"
    | violations ->
        print_endline "well-formed: NO";
        List.iter
          (fun v ->
            Format.printf "  %a@." Mof.Wellformed.pp_violation v)
          violations
  in
  Cmd.v (Cmd.info "info" ~doc:"Inspect an XMI model") Term.(const run $ file)

(* ---- concerns -------------------------------------------------------- *)

let concerns_cmd =
  let run () =
    Core.Platform.ensure_registered ();
    List.iter
      (fun (e : Concerns.Registry.entry) ->
        Format.printf "%a@.  %s@.%s@.@." Concerns.Concern.pp
          e.Concerns.Registry.concern
          e.Concerns.Registry.concern.Concerns.Concern.description
          (Workflow.Wizard.render_questions
             e.Concerns.Registry.gmt.Transform.Gmt.formals))
      (Concerns.Registry.all ())
  in
  Cmd.v
    (Cmd.info "concerns"
       ~doc:"List registered concerns and their configuration wizards")
    Term.(const run $ const ())


(* ---- apply ----------------------------------------------------------- *)

let concern_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "c"; "concern" ] ~docv:"CONCERN" ~doc:"Concern key to apply")

let param_args =
  Arg.(
    value & opt_all string []
    & info [ "p"; "param" ] ~docv:"NAME=VALUE"
        ~doc:"Parameter assignment (repeatable); lists are comma-separated")

let out_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path")

let resolve_cmt concern params =
  match Concerns.Registry.find_gmt concern with
  | None -> Error (Printf.sprintf "unknown concern %s" concern)
  | Some gmt -> (
      match
        Workflow.Wizard.parse_assignments gmt.Transform.Gmt.formals params
      with
      | Error e -> Error e
      | Ok assignments -> (
          match Transform.Cmt.specialize gmt assignments with
          | Ok cmt -> Ok (cmt, assignments)
          | Error problems ->
              Error
                (Format.asprintf "%a"
                   (Format.pp_print_list
                      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
                      Transform.Params.pp_problem)
                   problems)))

let apply_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file concern params out trace metrics stats no_vm =
    Core.Platform.ensure_registered ();
    with_obs ~trace ~metrics ~stats ~no_vm @@ fun () ->
    let m = or_die (read_model file) in
    let cmt, _ = or_die (resolve_cmt concern params) in
    match Transform.Engine.apply cmt m with
    | Error failure ->
        or_die (Error (Format.asprintf "%a" Transform.Engine.pp_failure failure))
    | Ok outcome ->
        Xmi.Export.write_file out outcome.Transform.Engine.model;
        Printf.printf "%s\n-> %s\n"
          (Transform.Report.summary outcome.Transform.Engine.report)
          out
  in
  Cmd.v
    (Cmd.info "apply" ~doc:"Apply one concern transformation to an XMI model")
    Term.(
      const run $ file $ concern_arg $ param_args $ out_arg $ trace_arg
      $ metrics_arg $ expo_arg $ no_vm_arg)

(* ---- check ----------------------------------------------------------- *)

let check_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let expr =
    Arg.(
      required
      & opt (some string) None
      & info [ "e"; "expr" ] ~docv:"OCL" ~doc:"OCL constraint body")
  in
  let context =
    Arg.(
      value
      & opt (some string) None
      & info [ "context" ] ~docv:"METACLASS"
          ~doc:"Evaluate per instance of this metaclass with self bound")
  in
  let run file expr context =
    let m = or_die (read_model file) in
    let c = Ocl.Constraint_.make ?context ~name:"cli" expr in
    Format.printf "%a@." Ocl.Constraint_.pp_outcome (Ocl.Constraint_.check m c);
    match Ocl.Constraint_.check m c with
    | Ocl.Constraint_.Holds -> ()
    | _ -> exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Evaluate an OCL constraint against an XMI model")
    Term.(const run $ file $ expr $ context)

(* ---- codegen --------------------------------------------------------- *)

let codegen_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let monolithic =
    Arg.(
      value & flag
      & info [ "monolithic" ]
          ~doc:"Include concern-introduced elements (no aspect route)")
  in
  let run file monolithic =
    let m = or_die (read_model file) in
    let options =
      if monolithic then
        { Code.Generator.accessors = true; exclude_stereotypes = [] }
      else
        {
          Code.Generator.accessors = true;
          exclude_stereotypes = Core.Pipeline.exclude_stereotypes;
        }
    in
    print_string (Code.Printer.program_to_string (Code.Generator.generate ~options m))
  in
  Cmd.v
    (Cmd.info "codegen" ~doc:"Generate Java-like code from an XMI model")
    Term.(const run $ file $ monolithic)

(* ---- build ----------------------------------------------------------- *)

let parse_step text =
  match String.index_opt text ':' with
  | None -> Error (Printf.sprintf "step %s: expected CONCERN:PARAMS" text)
  | Some i ->
      let concern = String.trim (String.sub text 0 i) in
      let rest = String.sub text (i + 1) (String.length text - i - 1) in
      (* parameters are NAME=V pairs separated by commas at top level; list
         values use | as the item separator to avoid ambiguity *)
      let params =
        List.filter
          (fun s -> not (String.equal s ""))
          (List.map String.trim (String.split_on_char ',' rest))
      in
      let params =
        List.map (String.map (fun c -> if c = '|' then ',' else c)) params
      in
      Ok (concern, params)

let refined_project m steps =
  let project = Core.Project.create m in
  List.fold_left
    (fun project text ->
      let concern, raw_params = or_die (parse_step text) in
      let _, assignments = or_die (resolve_cmt concern raw_params) in
      match Core.Pipeline.refine project ~concern ~params:assignments with
      | Ok (project, report) ->
          print_endline (Transform.Report.summary report);
          project
      | Error e -> or_die (Error (Core.Pipeline.error_to_string e)))
    project steps

let steps_arg =
  Arg.(
    value & opt_all string []
    & info [ "s"; "step" ] ~docv:"CONCERN:NAME=V,NAME=V"
        ~doc:
          "A refinement step: concern key, colon, comma-separated parameter \
           assignments; list items use | as the separator (repeatable, \
           applied in order)")

let build_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let steps =
    Arg.(
      value & opt_all string []
      & info [ "s"; "step" ] ~docv:"CONCERN:NAME=V,NAME=V"
          ~doc:
            "A refinement step: concern key, colon, semicolon-free \
             comma-separated parameter assignments (repeatable, applied in \
             order)")
  in
  let outdir =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Artifact output directory")
  in
  let explain_interference =
    Arg.(
      value & flag
      & info
          [ "explain-interference" ]
          ~doc:
            "Print the critical-pair interference report — every advised \
             join point and, for every aspect pair, whether their weaves \
             provably commute")
  in
  let run file steps outdir explain trace metrics stats no_vm =
    Core.Platform.ensure_registered ();
    with_obs ~trace ~metrics ~stats ~no_vm @@ fun () ->
    let m = or_die (read_model file) in
    let project = refined_project m steps in
    let artifacts =
      or_die
        (Result.map_error Core.Pipeline.error_to_string
           (Core.Pipeline.build project))
    in
    Core.Artifacts.write_to_dir outdir artifacts;
    Xmi.Export.write_file
      (Filename.concat outdir "refined.xmi")
      (Core.Project.model project);
    print_endline (Core.Artifacts.summary artifacts);
    if explain then (
      print_endline "interference analysis:";
      print_endline
        (Weaver.Interference.render (Core.Artifacts.interference artifacts)));
    Printf.printf "artifacts written to %s\n" outdir
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:"Apply a transformation sequence and emit code, aspects, woven \
             output")
    Term.(
      const run $ file $ steps $ outdir $ explain_interference $ trace_arg
      $ metrics_arg $ expo_arg $ no_vm_arg)

(* ---- batch ------------------------------------------------------------ *)

let batch_cmd =
  let files = Arg.(value & pos_all string [] & info [] ~docv:"FILE") in
  let synthetic =
    Arg.(
      value & opt int 0
      & info [ "synthetic" ] ~docv:"N"
          ~doc:
            "Append $(docv) generated models (batch0, batch1, ...) to the \
             batch")
  in
  let classes =
    Arg.(
      value & opt int 20
      & info [ "classes" ] ~docv:"K"
          ~doc:"Classes per generated model (with $(b,--synthetic))")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Domains refining concurrently; 1 stays in-process with no \
             pool. Results always come back in submission order.")
  in
  let outdir =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"DIR"
          ~doc:"Write each refined model as DIR/NAME.xmi")
  in
  let run files synthetic classes jobs steps outdir trace metrics stats no_vm =
    Core.Platform.ensure_registered ();
    let failures =
      with_obs ~trace ~metrics ~stats ~no_vm @@ fun () ->
      let steps =
        List.map
          (fun text ->
            let concern, raw = or_die (parse_step text) in
            let _, assignments = or_die (resolve_cmt concern raw) in
            Par.Batch.step ~concern ~params:assignments)
          steps
      in
      (* Items keep their submission order throughout; a file that fails to
         read stays in the report as its own error line and the rest of the
         batch still runs. *)
      let items =
        List.map
          (fun f ->
            (Filename.remove_extension (Filename.basename f), read_model f))
          files
        @ List.mapi
            (fun i m -> (Printf.sprintf "batch%d" i, Ok m))
            (Par.Workload.models ~classes synthetic)
      in
      if items = [] then
        or_die (Error "batch: no models (give FILES and/or --synthetic N)");
      let readable =
        List.filter_map (fun (_, r) -> Result.to_option r) items
      in
      let refine pool = Par.Batch.refine_all ?pool ~steps readable in
      let outcomes =
        if jobs > 1 && List.length readable > 1 then
          Par.Pool.with_pool ~jobs (fun p -> refine (Some p))
        else refine None
      in
      (match outdir with
      | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
      | _ -> ());
      let failures = ref 0 in
      let report_ok name project =
        match outdir with
        | Some dir ->
            let path = Filename.concat dir (name ^ ".xmi") in
            Xmi.Export.write_file path (Core.Project.model project);
            Printf.printf "%s: ok -> %s\n" name path
        | None -> Printf.printf "%s: ok\n" name
      in
      let rec walk items outcomes =
        match (items, outcomes) with
        | [], _ -> ()
        | (name, Error msg) :: rest, outcomes ->
            incr failures;
            Printf.printf "%s: ERROR %s\n" name msg;
            walk rest outcomes
        | (name, Ok _) :: rest, outcome :: outcomes ->
            (match outcome with
            | Ok project -> report_ok name project
            | Error e ->
                incr failures;
                Printf.printf "%s: ERROR %s\n" name
                  (Core.Pipeline.error_to_string e));
            walk rest outcomes
        | (_, Ok _) :: _, [] -> assert false
      in
      walk items outcomes;
      Printf.printf "%d/%d ok (jobs=%d)\n"
        (List.length items - !failures)
        (List.length items) jobs;
      !failures
    in
    if failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Refine a batch of independent models concurrently on a domain \
          pool; results are reported in submission order and one failing \
          item never poisons the rest")
    Term.(
      const run $ files $ synthetic $ classes $ jobs $ steps_arg $ outdir
      $ trace_arg $ metrics_arg $ expo_arg $ no_vm_arg)

(* ---- joinpoints -------------------------------------------------------- *)

let joinpoints_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let pointcut =
    Arg.(
      required
      & opt (some string) None
      & info [ "pointcut" ] ~docv:"POINTCUT"
          ~doc:
            "Pointcut expression, e.g. \"execution(Account.set*) && \
             !within(*Proxy)\"")
  in
  let run file steps pointcut_text =
    Core.Platform.ensure_registered ();
    let m = or_die (read_model file) in
    let project = refined_project m steps in
    let pc =
      match Aspects.Pointcut_parser.parse pointcut_text with
      | Ok pc -> pc
      | Error e -> or_die (Error e)
    in
    let program = Core.Pipeline.functional_code project in
    let shadows = Weaver.Joinpoint.all_shadows program in
    let matching = List.filter (Weaver.Matcher.matches pc) shadows in
    List.iter
      (fun shadow -> print_endline (Weaver.Joinpoint.describe shadow))
      matching;
    Printf.printf "%d of %d join point(s) match %s\n" (List.length matching)
      (List.length shadows)
      (Aspects.Pointcut.to_string pc)
  in
  Cmd.v
    (Cmd.info "joinpoints"
       ~doc:
         "List the join points (execution, call, field-set) of the \
          generated functional code matching a pointcut")
    Term.(const run $ file $ steps_arg $ pointcut)

(* ---- run ----------------------------------------------------------------- *)

let run_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let class_name =
    Arg.(
      required
      & opt (some string) None
      & info [ "class" ] ~docv:"CLASS" ~doc:"Class to instantiate")
  in
  let method_name =
    Arg.(
      required
      & opt (some string) None
      & info [ "method" ] ~docv:"METHOD" ~doc:"Method to invoke")
  in
  let faults =
    Arg.(
      value & opt_all string []
      & info [ "fault" ] ~docv:"CLASS.METHOD"
          ~doc:"Inject a RuntimeException on entering this method (repeatable)")
  in
  let run file steps class_name method_name fault_specs trace metrics stats
      no_vm =
    Core.Platform.ensure_registered ();
    with_obs ~trace ~metrics ~stats ~no_vm @@ fun () ->
    let m = or_die (read_model file) in
    let project = refined_project m steps in
    let artifacts =
      or_die
        (Result.map_error Core.Pipeline.error_to_string
           (Core.Pipeline.build project))
    in
    let faults =
      List.map
        (fun spec ->
          match String.index_opt spec '.' with
          | Some i ->
              ( String.sub spec 0 i,
                String.sub spec (i + 1) (String.length spec - i - 1) )
          | None -> or_die (Error (spec ^ ": expected CLASS.METHOD")))
        fault_specs
    in
    let find_method_arity () =
      match Code.Junit.find_class artifacts.Core.Artifacts.woven class_name with
      | None -> or_die (Error ("unknown class " ^ class_name))
      | Some c -> (
          match Code.Jdecl.find_method c method_name with
          | None ->
              or_die
                (Error
                   (Printf.sprintf "class %s has no method %s" class_name
                      method_name))
          | Some mth ->
              List.map
                (fun (p : Code.Jdecl.param) ->
                  Interp.Rvalue.default_of p.Code.Jdecl.param_type)
                mth.Code.Jdecl.params)
    in
    let args = find_method_arity () in
    let outcome =
      Interp.Machine.run ~faults ~args artifacts.Core.Artifacts.woven
        ~class_name ~method_name
    in
    Printf.printf "executing woven %s.%s (%d default argument(s))\n" class_name
      method_name (List.length args);
    List.iter
      (fun e -> Printf.printf "  %s\n" (Interp.Event.to_string e))
      outcome.Interp.Machine.events;
    match outcome.Interp.Machine.result with
    | Ok v -> Printf.printf "-> returned %s\n" (Interp.Rvalue.to_string v)
    | Error cls ->
        Printf.printf "-> threw %s\n" cls;
        exit 1
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Interpret a method of the woven program against the recording \
          middleware runtime")
    Term.(
      const run $ file $ steps_arg $ class_name $ method_name $ faults
      $ trace_arg $ metrics_arg $ expo_arg $ no_vm_arg)

(* ---- color ----------------------------------------------------------------- *)

let color_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let html =
    Arg.(
      value
      & opt (some string) None
      & info [ "html" ] ~docv:"FILE" ~doc:"Also write an HTML demarcation page")
  in
  let run file steps html =
    Core.Platform.ensure_registered ();
    let m = or_die (read_model file) in
    let project = refined_project m steps in
    print_endline (Core.Project.coloring project);
    match html with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            output_string oc
              (Workflow.Color.demarcate_html (Core.Project.model project)
                 (Core.Project.trace project)));
        Printf.printf "HTML demarcation written to %s\n" path
  in
  Cmd.v
    (Cmd.info "color"
       ~doc:
         "Demarcate the concern spaces of a refined model by color (text, \
          optionally HTML)")
    Term.(const run $ file $ steps_arg $ html)

(* ---- ship / replay -------------------------------------------------------- *)

let ship_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let outdir =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Package output directory")
  in
  let run file steps outdir =
    Core.Platform.ensure_registered ();
    let m = or_die (read_model file) in
    let project = refined_project m steps in
    (match Core.Shipping.ship ~dir:outdir project with
    | Ok () -> ()
    | Error e -> or_die (Error e));
    Printf.printf "shipped %d step(s) to %s\n"
      (List.length (Core.Project.applied project))
      outdir
  in
  Cmd.v
    (Cmd.info "ship"
       ~doc:
         "Package a refinement: every intermediate model plus a replayable \
          manifest of concerns and parameter sets")
    Term.(const run $ file $ steps_arg $ outdir)

let replay_cmd =
  let dir = Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR") in
  let run dir =
    match Core.Shipping.verify ~dir with
    | Ok true -> print_endline "replay verified: final model reproduced"
    | Ok false ->
        print_endline "replay DIVERGED from the shipped final model";
        exit 1
    | Error e -> or_die (Error e)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay a shipped refinement package and verify the final model")
    Term.(const run $ dir)

(* ---- stats ------------------------------------------------------------ *)

let stats_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  (* One command, two inputs, told apart by content: a metrics snapshot
     (JSON array from `--metrics` or a BENCH_*.json) renders as a table,
     anything else is an XMI model summarized with its concern spaces. *)
  let render_snapshot text =
    let rows = or_die (Obs.Regress.parse text) in
    let have_experiments =
      List.exists (fun r -> r.Obs.Regress.experiment <> "") rows
    in
    Printf.printf "metrics snapshot: %d row(s)\n" (List.length rows);
    List.iter
      (fun (r : Obs.Regress.row) ->
        if have_experiments then
          Printf.printf "  %-9s %-56s %14s %s\n" r.experiment r.metric
            (Obs.Regress.number r.value) r.unit_
        else
          Printf.printf "  %-56s %14s %s\n" r.metric
            (Obs.Regress.number r.value) r.unit_)
      rows
  in
  let looks_like_snapshot text =
    let rec first i =
      if i >= String.length text then None
      else
        match text.[i] with
        | ' ' | '\t' | '\n' | '\r' -> first (i + 1)
        | c -> Some c
    in
    match first 0 with Some ('[' | '{') -> true | _ -> false
  in
  let model_stats file steps =
    Core.Platform.ensure_registered ();
    let m = or_die (read_model file) in
    let project = refined_project m steps in
    let model = Core.Project.model project in
    let count f = List.length (f model) in
    Printf.printf "model: %s (%s)\n" (Mof.Model.name model)
      (match Core.Level.of_model model with
      | Some l -> Core.Level.to_string l
      | None -> "unmarked");
    Printf.printf "elements: %d total\n" (Mof.Model.size model);
    Printf.printf
      "  %d package(s), %d class(es), %d interface(s), %d enumeration(s)\n"
      (count Mof.Query.packages) (count Mof.Query.classes)
      (count Mof.Query.interfaces)
      (count Mof.Query.enumerations);
    Printf.printf "  %d association(s), %d constraint(s)\n"
      (count Mof.Query.associations)
      (count Mof.Query.constraints);
    let trace = Core.Project.trace project in
    let concerns = Transform.Trace.concerns_applied trace in
    Printf.printf "concerns applied: %s\n"
      (if concerns = [] then "none" else String.concat ", " concerns);
    List.iter
      (fun concern ->
        Printf.printf "  %-14s %d element(s) in its concern space\n" concern
          (Mof.Id.Set.cardinal (Transform.Trace.concern_space trace ~concern)))
      concerns
  in
  let run file steps =
    let text =
      match In_channel.with_open_bin file In_channel.input_all with
      | exception Sys_error msg -> or_die (Error msg)
      | text -> text
    in
    if looks_like_snapshot text then render_snapshot text
    else model_stats file steps
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Summarize a model and its concern spaces, or render a metrics \
          snapshot (from $(b,--metrics) or a BENCH file) as a table")
    Term.(const run $ file $ steps_arg)

(* ---- trace ------------------------------------------------------------ *)

let read_text path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> or_die (Error msg)
  | text -> text

let read_trace path = or_die (Obs.Trace.parse (read_text path))

let trace_file_pos =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.jsonl")

let trace_summarize_cmd =
  let run file = print_string (Obs.Trace.summarize (read_trace file)) in
  Cmd.v
    (Cmd.info "summarize"
       ~doc:
         "Roll a JSONL trace up: per-category wall/alloc totals and the \
          critical path of every request")
    Term.(const run $ trace_file_pos)

let trace_slice_cmd =
  let request =
    Arg.(
      value
      & opt (some int) None
      & info [ "request" ] ~docv:"ID" ~doc:"Keep events of this request only")
  in
  let session =
    Arg.(
      value
      & opt (some int) None
      & info [ "session" ] ~docv:"ID" ~doc:"Keep events of this session only")
  in
  let run file req sess =
    if req = None && sess = None then
      or_die (Error "trace slice: give --request and/or --session");
    List.iter
      (fun e -> print_endline (Obs.Event.to_json e))
      (Obs.Trace.slice ?req ?sess (read_trace file))
  in
  Cmd.v
    (Cmd.info "slice"
       ~doc:
         "Filter a JSONL trace down to one request or session; output is \
          again JSONL")
    Term.(const run $ trace_file_pos $ request $ session)

let trace_cmd =
  let default = Term.(ret (const (`Help (`Pager, Some "trace")))) in
  Cmd.group ~default
    (Cmd.info "trace"
       ~doc:
         "Analyze JSONL traces recorded with --trace FILE.jsonl: summarize \
          or slice per request/session")
    [ trace_summarize_cmd; trace_slice_cmd ]

(* ---- bench-diff -------------------------------------------------------- *)

let bench_diff_cmd =
  let old_pos =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD.json")
  in
  let new_pos =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW.json")
  in
  let tolerance =
    Arg.(
      value & opt float 10.
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:
            "Relative drift accepted on gated rows before a row counts as \
             regressed (percent)")
  in
  let run old_file new_file tolerance =
    let olds = or_die (Obs.Regress.parse (read_text old_file)) in
    let news = or_die (Obs.Regress.parse (read_text new_file)) in
    let entries = Obs.Regress.compare_snapshots ~tolerance olds news in
    print_string (Obs.Regress.render ~tolerance entries);
    exit (Obs.Regress.gate entries)
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two benchmark snapshots; exit 1 when any timed or \
          throughput row regressed beyond the tolerance (counters and \
          resource rows are informational)")
    Term.(const run $ old_pos $ new_pos $ tolerance)

(* ---- workflow ---------------------------------------------------------- *)

let workflow_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file steps =
    Core.Platform.ensure_registered ();
    let m = or_die (read_model file) in
    let project = refined_project m steps in
    (* replay the applied concerns through the middleware workflow *)
    let progress =
      List.fold_left
        (fun p concern ->
          match Workflow.State.advance p ~concern with
          | Ok p -> p
          | Error msg ->
              Printf.printf "  note: %s\n" msg;
              p)
        (Workflow.State.start Workflow.State.middleware_default)
        (Transform.Trace.concerns_applied (Core.Project.trace project))
    in
    print_endline (Workflow.Guidance.describe progress);
    (* and say where the order the workflow fixes actually matters *)
    let artifacts =
      or_die
        (Result.map_error Core.Pipeline.error_to_string
           (Core.Pipeline.build project))
    in
    let report = Core.Artifacts.interference artifacts in
    print_endline
      (Workflow.Guidance.interference_brief
         (List.map
            (fun (p : Weaver.Interference.pair) ->
              {
                Workflow.Guidance.pair_left = p.Weaver.Interference.left;
                pair_right = p.Weaver.Interference.right;
                pair_conflict =
                  (match p.Weaver.Interference.verdict with
                  | Weaver.Interference.Independent -> None
                  | Weaver.Interference.Conflicting { reason; _ } ->
                      Some reason);
              })
            report.Weaver.Interference.pairs))
  in
  Cmd.v
    (Cmd.info "workflow"
       ~doc:
         "Show middleware-workflow guidance for a refinement in progress: \
          completed steps, admissible next concerns, and which concern \
          orderings are load-bearing per the interference analysis")
    Term.(const run $ file $ steps_arg)

(* ---- repo ------------------------------------------------------------ *)

(* The repository front-end: a .mdr file is the binary snapshot of a
   content-addressed model repository (Repository.Repo.save/load). Every
   command loads the snapshot, operates, and writes it back, so the file
   is the durable store and the CLI is a session against it. *)

let read_repo path =
  match
    In_channel.with_open_bin path In_channel.input_all
  with
  | exception Sys_error msg -> Error msg
  | data -> Repository.Repo.load data

let write_repo path repo =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (Repository.Repo.save repo))

let store_pos =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"STORE.mdr")

let repo_stats repo =
  Printf.sprintf "%d commit(s), %d object(s), %d byte(s) in store"
    (Repository.Repo.size repo)
    (Repository.Repo.store_objects repo)
    (Repository.Repo.store_bytes repo)

let repo_init_cmd =
  let model = Arg.(required & pos 0 (some file) None & info [] ~docv:"MODEL") in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"STORE.mdr" ~doc:"Snapshot path to create")
  in
  let branch =
    Arg.(
      value & opt string "main"
      & info [ "branch" ] ~docv:"NAME" ~doc:"Initial branch name")
  in
  let run model out branch =
    let m = or_die (read_model model) in
    let repo = Repository.Repo.init ~branch m in
    write_repo out repo;
    Printf.printf "initialized %s: %s\n" out (repo_stats repo)
  in
  Cmd.v
    (Cmd.info "init" ~doc:"Create a repository snapshot from an XMI model")
    Term.(const run $ model $ out $ branch)

let repo_commit_cmd =
  let model = Arg.(required & pos 1 (some file) None & info [] ~docv:"MODEL") in
  let message =
    Arg.(
      required
      & opt (some string) None
      & info [ "m"; "message" ] ~docv:"MSG" ~doc:"Commit message")
  in
  let branch =
    Arg.(
      value
      & opt (some string) None
      & info [ "branch" ] ~docv:"NAME"
          ~doc:"Commit on this branch instead of the current head")
  in
  let concern =
    Arg.(
      value
      & opt (some string) None
      & info [ "concern" ] ~docv:"KEY" ~doc:"Concern to record on the commit")
  in
  let run store model message branch concern trace metrics stats no_vm =
    with_obs ~trace ~metrics ~stats ~no_vm @@ fun () ->
    let repo = or_die (read_repo store) in
    let m = or_die (read_model model) in
    let repo =
      match branch with
      | None -> Repository.Repo.commit ?concern ~message m repo
      | Some branch ->
          or_die
            (Result.map_error Repository.Repo.checkout_error_to_string
               (Repository.Repo.commit_on ~branch ?concern ~message m repo))
    in
    write_repo store repo;
    Printf.printf "[%s] %s\n"
      (Repository.Repo.branch repo)
      (Repository.Commit.summary (Repository.Repo.head repo))
  in
  Cmd.v
    (Cmd.info "commit" ~doc:"Commit an XMI model as a new version")
    Term.(
      const run $ store_pos $ model $ message $ branch $ concern $ trace_arg
      $ metrics_arg $ expo_arg $ no_vm_arg)

let repo_log_cmd =
  let run store =
    let repo = or_die (read_repo store) in
    print_endline (Repository.History.render repo)
  in
  Cmd.v
    (Cmd.info "log" ~doc:"Show the head-first commit chain with tags")
    Term.(const run $ store_pos)

let repo_tag_cmd =
  let tag_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NAME")
  in
  let run store name =
    let repo = or_die (read_repo store) in
    let repo = Repository.Repo.tag name repo in
    write_repo store repo;
    Printf.printf "tagged #%d as %s\n"
      (Repository.Repo.head repo).Repository.Commit.id name
  in
  Cmd.v
    (Cmd.info "tag" ~doc:"Name the head commit")
    Term.(const run $ store_pos $ tag_arg)

let repo_checkout_cmd =
  let tag_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"TAG")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Also export the checked-out model as XMI")
  in
  let run store name out =
    let repo = or_die (read_repo store) in
    let repo =
      or_die
        (Result.map_error Repository.Repo.checkout_error_to_string
           (Repository.Repo.checkout name repo))
    in
    write_repo store repo;
    Printf.printf "checked out %s at #%d\n" name
      (Repository.Repo.head repo).Repository.Commit.id;
    match out with
    | None -> ()
    | Some path ->
        Xmi.Export.write_file path (Repository.Repo.head_model repo);
        Printf.printf "-> %s\n" path
  in
  Cmd.v
    (Cmd.info "checkout" ~doc:"Move the head to a tagged commit")
    Term.(const run $ store_pos $ tag_arg $ out)

let repo_save_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Destination snapshot path")
  in
  let run store out =
    let data =
      match In_channel.with_open_bin store In_channel.input_all with
      | exception Sys_error msg -> or_die (Error msg)
      | data -> data
    in
    let repo = or_die (Repository.Repo.load data) in
    let rendered = Repository.Repo.save repo in
    if not (String.equal rendered data) then
      or_die (Error "snapshot is not canonical: save after load differs");
    Out_channel.with_open_bin out (fun oc ->
        Out_channel.output_string oc rendered);
    Printf.printf "verified byte fixpoint, wrote %s (%d bytes)\n" out
      (String.length rendered)
  in
  Cmd.v
    (Cmd.info "save"
       ~doc:"Re-render a snapshot, verifying the save/load byte fixpoint")
    Term.(const run $ store_pos $ out)

let repo_load_cmd =
  let run store =
    let repo = or_die (read_repo store) in
    let head = Repository.Repo.head repo in
    Printf.printf "head: #%d on %s\n" head.Repository.Commit.id
      (Repository.Repo.branch repo);
    Printf.printf "%s\n" (repo_stats repo);
    List.iter
      (fun (name, id) -> Printf.printf "branch %s -> #%d\n" name id)
      (Repository.Repo.branches repo);
    List.iter
      (fun (name, id) -> Printf.printf "tag %s -> #%d\n" name id)
      (Repository.Repo.tags repo)
  in
  Cmd.v
    (Cmd.info "load" ~doc:"Load a snapshot and summarize its contents")
    Term.(const run $ store_pos)

let repo_serve_cmd =
  let jobs =
    Arg.(
      value & opt int 2
      & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Concurrent session domains")
  in
  let commits =
    Arg.(
      value & opt int 3
      & info [ "commits" ] ~docv:"K" ~doc:"Commits per session")
  in
  let run store jobs commits stats trace metrics no_vm =
    with_obs ~trace ~metrics ~stats ~no_vm @@ fun () ->
    let tracing = Option.is_some trace in
    let repo = or_die (read_repo store) in
    let svc = Repository.Service.create repo in
    let sessions = List.init (max 1 jobs) Fun.id in
    (* branches first: create_branch points at the moving head *)
    List.iter
      (fun s ->
        match
          Repository.Service.create_branch svc (Printf.sprintf "sess%d" s)
        with
        | Ok _ -> ()
        | Error e -> or_die (Error (Repository.Service.error_to_string e)))
      sessions;
    (* Each session is a numbered Obs session; every snapshot+commit round
       trip is one request, so the trace slices per session (branch) or per
       request (round trip). Worker domains start on the null sink, so when
       tracing each session records into its own memory sink and the events
       are replayed into the main sink after the join. *)
    let session s =
      let branch = Printf.sprintf "sess%d" s in
      let rec go i =
        if i > commits then Ok ()
        else
          let round () =
            let view = Repository.Service.snapshot svc in
            match Repository.Repo.branch_head view branch with
            | None -> Error (branch ^ " vanished")
            | Some head_id -> (
                match Repository.Repo.model_at view head_id with
                | None -> Error (branch ^ " head not stored")
                | Some base -> (
                    let m, _ =
                      Mof.Builder.add_class base ~owner:(Mof.Model.root base)
                        ~name:(Printf.sprintf "S%dC%d" s i)
                    in
                    match
                      Repository.Service.commit svc ~branch
                        ~message:(Printf.sprintf "session %d commit %d" s i)
                        m
                    with
                    | Ok _ -> Ok ()
                    | Error e -> Error (Repository.Service.error_to_string e)))
          in
          match Obs.with_request round with
          | Ok () -> go (i + 1)
          | Error _ as e -> e
      in
      Obs.with_session ~id:(s + 1) @@ fun () ->
      if tracing then
        let sink, events = Obs.Sink.memory () in
        let r = Obs.with_sink sink (fun () -> go 1) in
        (r, events ())
      else (go 1, [])
    in
    let results =
      if jobs > 1 then
        Par.Pool.with_pool ~jobs (fun pool -> Par.Pool.map pool session sessions)
      else List.map session sessions
    in
    let main_sink = Obs.sink () in
    List.iter
      (fun (_, events) -> List.iter (Obs.Sink.emit main_sink) events)
      results;
    List.iter
      (function Ok (), _ -> () | Error msg, _ -> or_die (Error msg))
      results;
    let final = Repository.Service.snapshot svc in
    write_repo store final;
    List.iter
      (fun s ->
        let branch = Printf.sprintf "sess%d" s in
        match Repository.Repo.branch_head final branch with
        | None -> ()
        | Some id ->
            let elements =
              match Repository.Repo.model_at final id with
              | Some m -> Mof.Model.size m
              | None -> 0
            in
            Printf.printf "branch %s: %d commit(s), head model %d element(s)\n"
              branch commits elements)
      sessions;
    Printf.printf "served %d session(s): %s\n" (List.length sessions)
      (repo_stats final)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run concurrent sessions against the repository: each commits on \
          its own branch through the session service; $(b,--stats) exposes \
          the run's latency histograms Prometheus-style")
    Term.(
      const run $ store_pos $ jobs $ commits $ expo_arg $ trace_arg
      $ metrics_arg $ no_vm_arg)

let repo_cmd =
  let default = Term.(ret (const (`Help (`Pager, Some "repo")))) in
  Cmd.group ~default
    (Cmd.info "repo"
       ~doc:
         "Versioned model repository: content-addressed snapshots, tags, \
          branches, concurrent sessions")
    [
      repo_init_cmd;
      repo_commit_cmd;
      repo_log_cmd;
      repo_tag_cmd;
      repo_checkout_cmd;
      repo_save_cmd;
      repo_load_cmd;
      repo_serve_cmd;
    ]

(* ---- main ------------------------------------------------------------ *)

let () =
  let doc = "generic concern-oriented model transformations meet AOP" in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "mdweave" ~version:"1.0.0" ~doc)
          [
            sample_cmd;
            info_cmd;
            concerns_cmd;
            apply_cmd;
            check_cmd;
            codegen_cmd;
            build_cmd;
            batch_cmd;
            joinpoints_cmd;
            run_cmd;
            ship_cmd;
            replay_cmd;
            color_cmd;
            stats_cmd;
            trace_cmd;
            bench_diff_cmd;
            workflow_cmd;
            repo_cmd;
          ]))
