(* An online auction system refined with concurrency, security, and
   logging. Demonstrates, beyond the banking scenario:
   - XMI export/import of the refined model (Section 3 interchange),
   - the Undo/Redo facility of the model repository,
   - evaluating ad-hoc OCL queries against the refined model. *)

let pim () =
  let m = Mof.Model.create ~name:"auctions" in
  let root = Mof.Model.root m in
  let m, auction = Mof.Builder.add_class m ~owner:root ~name:"Auction" in
  let m, _ =
    Mof.Builder.add_attribute m ~cls:auction ~name:"highestBid"
      ~typ:Mof.Kind.Dt_real
  in
  let m, _ =
    Mof.Builder.add_attribute m ~cls:auction ~name:"open"
      ~typ:Mof.Kind.Dt_boolean ~initial:"true"
  in
  let m, bid = Mof.Builder.add_operation m ~owner:auction ~name:"placeBid" in
  let m, _ =
    Mof.Builder.add_parameter m ~op:bid ~name:"amount" ~typ:Mof.Kind.Dt_real
  in
  let m = Mof.Builder.set_result m ~op:bid ~typ:Mof.Kind.Dt_boolean in
  let m, close = Mof.Builder.add_operation m ~owner:auction ~name:"close" in
  let m = Mof.Builder.set_result m ~op:close ~typ:Mof.Kind.Dt_void in
  let m, bidder = Mof.Builder.add_class m ~owner:root ~name:"Bidder" in
  let m, _ =
    Mof.Builder.add_attribute m ~cls:bidder ~name:"alias" ~typ:Mof.Kind.Dt_string
  in
  let m, reg = Mof.Builder.add_operation m ~owner:bidder ~name:"register" in
  let m, _ =
    Mof.Builder.add_parameter m ~op:reg ~name:"email" ~typ:Mof.Kind.Dt_string
  in
  m

let refine project ~concern ~params =
  match Core.Pipeline.refine project ~concern ~params with
  | Ok (project, report) ->
      Printf.printf "applied: %s\n" (Transform.Report.summary report);
      project
  | Error e -> failwith (Core.Pipeline.error_to_string e)

let () =
  let open Transform.Params in
  let project = Core.Project.create (pim ()) in

  let project =
    refine project ~concern:"concurrency"
      ~params:
        [
          ("guarded", V_list [ V_ident "Auction" ]);
          ("policy", V_string "reader-writer");
        ]
  in
  let project =
    refine project ~concern:"security"
      ~params:
        [
          ("secured", V_list [ V_ident "Auction"; V_ident "Bidder" ]);
          ("roles", V_list [ V_string "registered-bidder" ]);
        ]
  in
  let project =
    refine project ~concern:"logging"
      ~params:[ ("targets", V_list [ V_string "*" ]); ("level", V_string "debug") ]
  in

  (* XMI round-trip of the refined model *)
  let xmi_text = Xmi.Export.to_string (Core.Project.model project) in
  let reimported = Xmi.Import.from_string xmi_text in
  Printf.printf "\nXMI round-trip: %d bytes, equal = %b\n"
    (String.length xmi_text)
    (Mof.Model.equal (Core.Project.model project) reimported);

  (* Ad-hoc OCL over the refined model *)
  let queries =
    [
      "Class.allInstances()->select(c | c.hasStereotype('synchronized'))->collect(c | c.name)";
      "Class.allInstances()->select(c | c.hasStereotype('secured'))->size()";
      "Class.allInstances()->exists(c | c.name = 'LockManager')";
    ]
  in
  print_endline "\nOCL queries over the refined model:";
  List.iter
    (fun q ->
      let v = Ocl.Eval.eval_string reimported Ocl.Env.empty q in
      Printf.printf "  %s\n    = %s\n" q (Ocl.Value.to_string v))
    queries;

  (* Undo / redo *)
  print_endline "\nrepository before undo:";
  print_endline (Core.Project.history project);
  let project' =
    match Core.Pipeline.undo project with
    | Some p -> p
    | None -> failwith "nothing to undo"
  in
  Printf.printf "\nafter undo: %d transformations applied, redo target: %s\n"
    (List.length (Core.Project.applied project'))
    (Option.value ~default:"none" (Core.Pipeline.redo_info project'));

  (* build the undone project: logging aspect should be absent *)
  match Core.Pipeline.build project' with
  | Error e -> failwith (Core.Pipeline.error_to_string e)
  | Ok artifacts ->
      print_endline "\nartifacts after undo:";
      print_endline (Core.Artifacts.summary artifacts);
      print_endline (Core.Artifacts.precedence_listing artifacts)
