(* The paper's running example (Fig. 2): a banking system refined along
   three middleware concern-dimensions — C1 distribution, C2 transactions,
   C3 security — as transformations T1<p11,...>, T2<...>, T3<...> with
   automatically generated aspects A1, A2, A3 whose precedence is the
   transformation application order. Follows the default middleware
   workflow, showing the guidance and the concern coloring along the way. *)

let pim () =
  let m = Mof.Model.create ~name:"banking" in
  let root = Mof.Model.root m in
  let m, bank = Mof.Builder.add_package m ~owner:root ~name:"bank" in
  let m, acct = Mof.Builder.add_class m ~owner:bank ~name:"Account" in
  let m, _ =
    Mof.Builder.add_attribute m ~cls:acct ~name:"number" ~typ:Mof.Kind.Dt_string
  in
  let m, _ =
    Mof.Builder.add_attribute m ~cls:acct ~name:"balance" ~typ:Mof.Kind.Dt_real
  in
  let m, dep = Mof.Builder.add_operation m ~owner:acct ~name:"deposit" in
  let m, _ =
    Mof.Builder.add_parameter m ~op:dep ~name:"amount" ~typ:Mof.Kind.Dt_real
  in
  let m, wd = Mof.Builder.add_operation m ~owner:acct ~name:"withdraw" in
  let m, _ =
    Mof.Builder.add_parameter m ~op:wd ~name:"amount" ~typ:Mof.Kind.Dt_real
  in
  let m = Mof.Builder.set_result m ~op:wd ~typ:Mof.Kind.Dt_boolean in
  let m, teller = Mof.Builder.add_class m ~owner:bank ~name:"Teller" in
  let m, tr = Mof.Builder.add_operation m ~owner:teller ~name:"transfer" in
  let m, _ =
    Mof.Builder.add_parameter m ~op:tr ~name:"from" ~typ:(Mof.Kind.Dt_ref acct)
  in
  let m, _ =
    Mof.Builder.add_parameter m ~op:tr ~name:"target" ~typ:(Mof.Kind.Dt_ref acct)
  in
  let m, _ =
    Mof.Builder.add_parameter m ~op:tr ~name:"amount" ~typ:Mof.Kind.Dt_real
  in
  let m, customer = Mof.Builder.add_class m ~owner:bank ~name:"Customer" in
  let m, _ =
    Mof.Builder.add_attribute m ~cls:customer ~name:"name" ~typ:Mof.Kind.Dt_string
  in
  let m, _ =
    Mof.Builder.add_association m ~owner:bank ~name:"holds"
      ~ends:
        [
          {
            Mof.Kind.end_name = "owner";
            end_type = customer;
            end_mult = Mof.Kind.mult_one;
            end_navigable = true;
            end_aggregation = Mof.Kind.Ag_none;
          };
          {
            Mof.Kind.end_name = "accounts";
            end_type = acct;
            end_mult = Mof.Kind.mult_many;
            end_navigable = true;
            end_aggregation = Mof.Kind.Ag_none;
          };
        ]
  in
  m

let show_guidance project =
  match project.Core.Project.progress with
  | Some p -> print_endline (Workflow.Guidance.describe p)
  | None -> ()

let refine project ~concern ~params =
  let project, report =
    match Core.Pipeline.refine project ~concern ~params with
    | Ok result -> result
    | Error e -> failwith (Core.Pipeline.error_to_string e)
  in
  Printf.printf "\napplied: %s\n" (Transform.Report.summary report);
  show_guidance project;
  project

let () =
  let open Transform.Params in
  let project =
    Core.Project.create ~workflow:Workflow.State.middleware_default (pim ())
  in
  print_endline "== banking PIM ==";
  print_string (Mof.Pp.model_to_string (Core.Project.model project));
  show_guidance project;

  (* T1: distribution, S1 = {remote, protocol, registry} *)
  let project =
    refine project ~concern:"distribution"
      ~params:
        [
          ("remote", V_list [ V_ident "Account"; V_ident "Teller" ]);
          ("protocol", V_string "corba");
          ("registry", V_string "bankhost:2809");
        ]
  in
  (* T2: transactions, S2 *)
  let project =
    refine project ~concern:"transactions"
      ~params:
        [
          ("transactional", V_list [ V_ident "Account"; V_ident "Teller" ]);
          ("isolation", V_string "serializable");
          ("propagation", V_string "required");
        ]
  in
  (* T3: security, S3 *)
  let project =
    refine project ~concern:"security"
      ~params:
        [
          ("secured", V_list [ V_ident "Teller" ]);
          ("roles", V_list [ V_string "teller"; V_string "branch-manager" ]);
          ("authentication", V_string "certificate");
        ]
  in

  print_endline "\n== concern demarcation (Section 3 coloring) ==";
  print_endline (Core.Project.coloring project);

  print_endline "\n== repository history ==";
  print_endline (Core.Project.history project);

  print_endline "\n== build: functional code + A1, A2, A3 + weave ==";
  match Core.Pipeline.build project with
  | Error e -> failwith (Core.Pipeline.error_to_string e)
  | Ok artifacts ->
      print_endline (Core.Artifacts.summary artifacts);
      print_endline "\naspect precedence (= transformation order):";
      print_endline (Core.Artifacts.precedence_listing artifacts);
      print_endline "\n== A1/A2/A3 ==";
      print_endline (Core.Artifacts.render_aspects artifacts);
      print_endline "== woven Teller.transfer ==";
      (match Code.Junit.find_class artifacts.Core.Artifacts.woven "Teller" with
      | Some c -> (
          match Code.Jdecl.find_method c "transfer" with
          | Some m -> print_endline (Code.Printer.method_to_string m)
          | None -> ())
      | None -> ());
      print_endline "\n== advice applications ==";
      List.iter
        (fun (a : Weaver.Weave.application) ->
          Printf.printf "%s / %s @ %s\n" a.Weaver.Weave.aspect_name
            a.Weaver.Weave.advice_name a.Weaver.Weave.at)
        artifacts.Core.Artifacts.applications
