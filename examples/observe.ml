(* Observing the woven system at runtime.

   The previous examples show the *artifacts* of the pipeline; this one
   executes them. The code-model interpreter runs the woven banking program
   against a middleware runtime that records events, making the paper's
   claims observable:
   - each concern's advice fires, parameterized by its S_i,
   - advice order at shared join points equals transformation order,
   - an injected fault flips the transaction tail from commit to rollback. *)

let v_names names =
  Transform.Params.V_list (List.map (fun n -> Transform.Params.V_ident n) names)

let refine project concern params =
  match Core.Pipeline.refine project ~concern ~params with
  | Ok (project, report) ->
      Printf.printf "applied: %s\n" (Transform.Report.summary report);
      project
  | Error e -> failwith (Core.Pipeline.error_to_string e)

let banking_pim () =
  let m = Mof.Model.create ~name:"banking" in
  let root = Mof.Model.root m in
  let m, acct = Mof.Builder.add_class m ~owner:root ~name:"Account" in
  let m, _ =
    Mof.Builder.add_attribute m ~cls:acct ~name:"balance" ~typ:Mof.Kind.Dt_real
  in
  let m, dep = Mof.Builder.add_operation m ~owner:acct ~name:"deposit" in
  let m, _ =
    Mof.Builder.add_parameter m ~op:dep ~name:"amount" ~typ:Mof.Kind.Dt_real
  in
  let m, audit = Mof.Builder.add_operation m ~owner:acct ~name:"audit" in
  ignore audit;
  m

let print_events label events =
  Printf.printf "\n%s:\n" label;
  List.iter
    (fun e -> Printf.printf "  %s\n" (Interp.Event.to_string e))
    events

let () =
  let project = Core.Project.create (banking_pim ()) in
  let project =
    refine project "distribution"
      [
        ("remote", v_names [ "Account" ]);
        ("registry", Transform.Params.V_string "bankhost:2809");
      ]
  in
  let project =
    refine project "transactions"
      [
        ("transactional", v_names [ "Account" ]);
        ("isolation", Transform.Params.V_string "repeatable-read");
      ]
  in
  let project =
    refine project "logging"
      [ ("targets", Transform.Params.V_list [ Transform.Params.V_string "Account" ]) ]
  in

  (* route the deposit stub through the audit helper so a fault can be
     injected inside the transactional region *)
  let functional =
    Code.Junit.update_class
      (Core.Pipeline.functional_code project)
      "Account"
      (Code.Jdecl.map_methods (fun m ->
           if m.Code.Jdecl.method_name = "deposit" then
             {
               m with
               Code.Jdecl.body =
                 Some [ Code.Jstmt.S_expr (Code.Jexpr.E_call (None, "audit", [])) ];
             }
           else m))
  in
  let generated =
    match Core.Pipeline.aspects project with Ok g -> g | Error e -> failwith (Core.Pipeline.error_to_string e)
  in
  let woven = (Weaver.Weave.weave generated functional).Weaver.Weave.program in

  (* 1. the happy path: export, log-enter, begin, …, commit, log-exit *)
  let ok =
    Interp.Machine.run woven ~class_name:"Account" ~method_name:"deposit"
      ~args:[ Interp.Rvalue.V_double 100.0 ]
  in
  print_events "deposit(100.0) — normal run" ok.Interp.Machine.events;

  (* 2. fault injection: audit throws inside the transaction *)
  let faulty =
    Interp.Machine.run
      ~faults:[ ("Account", "audit") ]
      woven ~class_name:"Account" ~method_name:"deposit"
      ~args:[ Interp.Rvalue.V_double 100.0 ]
  in
  print_events "deposit(100.0) — audit fault injected" faulty.Interp.Machine.events;
  Printf.printf "\nresult: %s\n"
    (match faulty.Interp.Machine.result with
    | Ok v -> "returned " ^ Interp.Rvalue.to_string v
    | Error cls -> "threw " ^ cls)
