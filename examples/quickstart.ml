(* Quickstart: one concern, end to end.

   Builds a two-class PIM, applies the transactions concern to it with a
   parameter set S, and shows the three artifacts of the paper's Fig. 1:
   the refined model (CMT applied), the generated concrete aspect (CAC,
   specialized by the same S), and the woven code. *)

let pim () =
  let m = Mof.Model.create ~name:"shop" in
  let root = Mof.Model.root m in
  let m, order = Mof.Builder.add_class m ~owner:root ~name:"Order" in
  let m, _ =
    Mof.Builder.add_attribute m ~cls:order ~name:"total" ~typ:Mof.Kind.Dt_real
  in
  let m, op = Mof.Builder.add_operation m ~owner:order ~name:"checkout" in
  let m = Mof.Builder.set_result m ~op ~typ:Mof.Kind.Dt_boolean in
  let m, cart = Mof.Builder.add_class m ~owner:root ~name:"Cart" in
  let m, add = Mof.Builder.add_operation m ~owner:cart ~name:"addItem" in
  let m, _ =
    Mof.Builder.add_parameter m ~op:add ~name:"sku" ~typ:Mof.Kind.Dt_string
  in
  m

let () =
  let project = Core.Project.create (pim ()) in

  (* One Fig. 1 refinement step: GMT(transactions) + S -> CMT, applied. *)
  let params =
    [
      ("transactional", Transform.Params.V_list [ Transform.Params.V_ident "Order" ]);
      ("isolation", Transform.Params.V_string "repeatable-read");
    ]
  in
  let project, report =
    match Core.Pipeline.refine project ~concern:"transactions" ~params with
    | Ok result -> result
    | Error e -> failwith (Core.Pipeline.error_to_string e)
  in
  print_endline "== refinement report ==";
  print_endline (Transform.Report.summary report);

  print_endline "\n== refined model ==";
  print_string (Mof.Pp.model_to_string (Core.Project.model project));

  print_endline "\n== generated artifacts ==";
  match Core.Pipeline.build project with
  | Error e -> failwith (Core.Pipeline.error_to_string e)
  | Ok artifacts ->
      print_endline (Core.Artifacts.summary artifacts);
      print_endline "\n== concrete aspect (same parameter set) ==";
      print_endline (Core.Artifacts.render_aspects artifacts);
      print_endline "== woven Order.checkout ==";
      (match Code.Junit.find_class artifacts.Core.Artifacts.woven "Order" with
      | Some c -> (
          match Code.Jdecl.find_method c "checkout" with
          | Some m -> print_endline (Code.Printer.method_to_string m)
          | None -> ())
      | None -> ())
