(* A travel-booking system demonstrating the PIM-to-PSM projection and the
   ablation the paper's architecture implies: the same refined model built
   (a) the paper's way — functional code generator + aspect generators +
   weaving — and (b) the monolithic way — one code generator over the most
   specialized PSM, concern elements included, no aspects.

   The point the comparison makes executable: when one concern's parameters
   change, route (a) regenerates one aspect and re-weaves the unchanged
   functional code, while route (b) must re-derive everything from the
   model. *)

let pim () =
  let m = Mof.Model.create ~name:"travel" in
  let root = Mof.Model.root m in
  let m, booking = Mof.Builder.add_class m ~owner:root ~name:"Booking" in
  let m, _ =
    Mof.Builder.add_attribute m ~cls:booking ~name:"reference"
      ~typ:Mof.Kind.Dt_string
  in
  let m, confirm = Mof.Builder.add_operation m ~owner:booking ~name:"confirm" in
  let m = Mof.Builder.set_result m ~op:confirm ~typ:Mof.Kind.Dt_boolean in
  let m, cancel = Mof.Builder.add_operation m ~owner:booking ~name:"cancel" in
  let m = Mof.Builder.set_result m ~op:cancel ~typ:Mof.Kind.Dt_void in
  let m, itin = Mof.Builder.add_class m ~owner:root ~name:"Itinerary" in
  let m, add = Mof.Builder.add_operation m ~owner:itin ~name:"addLeg" in
  let m, _ =
    Mof.Builder.add_parameter m ~op:add ~name:"origin" ~typ:Mof.Kind.Dt_string
  in
  let m, _ =
    Mof.Builder.add_parameter m ~op:add ~name:"destination"
      ~typ:Mof.Kind.Dt_string
  in
  m

let refine project ~concern ~params =
  match Core.Pipeline.refine project ~concern ~params with
  | Ok (project, report) ->
      Printf.printf "applied: %s\n" (Transform.Report.summary report);
      project
  | Error e -> failwith (Core.Pipeline.error_to_string e)

let level_string project =
  match Core.Level.of_model (Core.Project.model project) with
  | Some l -> Core.Level.to_string l
  | None -> "unmarked"

let build_exn project =
  match Core.Pipeline.build project with
  | Ok artifacts -> artifacts
  | Error e -> failwith (Core.Pipeline.error_to_string e)

let () =
  let open Transform.Params in
  let project = Core.Project.create (pim ()) in
  Printf.printf "level before projection: %s\n" (level_string project);

  (* middleware concerns first, then the platform projection PIM -> PSM *)
  let project =
    refine project ~concern:"transactions"
      ~params:[ ("transactional", V_list [ V_ident "Booking" ]) ]
  in
  let project =
    refine project ~concern:"logging"
      ~params:
        [
          ("targets", V_list [ V_string "Booking"; V_string "Itinerary" ]);
          ("level", V_string "info");
        ]
  in
  let project =
    refine project ~concern:"platform"
      ~params:[ ("platform", V_string "corba") ]
  in
  Printf.printf "level after projection:  %s\n" (level_string project);
  Printf.printf "Booking stereotypes: %s\n"
    (match Mof.Query.find_class (Core.Project.model project) "Booking" with
    | Some c -> String.concat ", " c.Mof.Element.stereotypes
    | None -> "?");

  (* (a) the paper's route: functional code + aspects + weaving *)
  let artifacts = build_exn project in
  print_endline "\nroute (a) — functional codegen + aspect generators + weave:";
  print_endline (Core.Artifacts.summary artifacts);

  (* (b) the monolithic route: one generator over the refined PSM *)
  let monolithic = Core.Pipeline.monolithic_code project in
  Printf.printf
    "\nroute (b) — monolithic codegen over the full PSM: %d class(es), %d \
     method(s), 0 aspects\n"
    (List.length (Code.Junit.classes monolithic))
    (Code.Junit.total_methods monolithic);

  (* change one concern's parameters: only that aspect regenerates in (a) *)
  let project' =
    match Core.Pipeline.undo project with
    | Some p -> p (* drop platform projection *)
    | None -> failwith "undo"
  in
  let project' =
    match Core.Pipeline.undo project' with
    | Some p -> p (* drop logging *)
    | None -> failwith "undo"
  in
  let project' =
    refine project' ~concern:"logging"
      ~params:
        [
          ("targets", V_list [ V_string "Booking" ]);
          ("level", V_string "warn");
        ]
  in
  let artifacts' = build_exn project' in
  print_endline
    "\nafter reconfiguring the logging concern (targets/level changed):";
  print_endline (Core.Artifacts.precedence_listing artifacts');
  Printf.printf "functional code unchanged: %b\n"
    (Code.Junit.equal artifacts.Core.Artifacts.functional
       artifacts'.Core.Artifacts.functional)
