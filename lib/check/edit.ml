type dt =
  | D_void
  | D_boolean
  | D_integer
  | D_real
  | D_string
  | D_ref of int
  | D_collection of dt

type op =
  | Add_package of { owner : int; name : string }
  | Add_class of { owner : int; name : string; abstract : bool }
  | Add_interface of { owner : int; name : string }
  | Add_attribute of {
      cls : int;
      name : string;
      typ : dt;
      static : bool;
      initial : string option;
    }
  | Add_operation of { owner : int; name : string; abstract : bool; query : bool }
  | Add_parameter of { op : int; name : string; typ : dt }
  | Set_result of { op : int; typ : dt }
  | Add_generalization of { child : int; parent : int }
  | Add_realization of { cls : int; iface : int }
  | Add_association of { owner : int; name : string; from_ : int; to_ : int }
  | Add_enumeration of { owner : int; name : string; literals : string list }
  | Add_constraint of {
      owner : int;
      name : string;
      constrained : int list;
      body : string;
    }
  | Add_stereotype of { target : int; stereotype : string }
  | Remove_stereotype of { target : int; stereotype : string }
  | Set_tag of { target : int; key : string; value : string }
  | Remove_tag of { target : int; key : string }
  | Rename of { target : int; name : string }
  | Delete of { target : int }

type script = op list

let creates = function
  | Add_package _ | Add_class _ | Add_interface _ | Add_attribute _
  | Add_operation _ | Add_parameter _ | Add_generalization _
  | Add_association _ | Add_enumeration _ | Add_constraint _ ->
      true
  | Set_result _ | Add_realization _ | Add_stereotype _ | Remove_stereotype _
  | Set_tag _ | Remove_tag _ | Rename _ | Delete _ ->
      false

let slot_count script =
  1 + List.fold_left (fun n op -> if creates op then n + 1 else n) 0 script

(* Slots bound so far, newest last. Ids of deleted elements stay in the
   table; ops aimed at them fail element lookup and are skipped. *)
type slots = { mutable bound : Mof.Id.t array; mutable len : int }

let slots_make root =
  { bound = Array.make 16 root; len = 1 }

let slots_get s i = if i >= 0 && i < s.len then Some s.bound.(i) else None

let slots_push s id =
  if s.len = Array.length s.bound then begin
    let bigger = Array.make (2 * s.len) id in
    Array.blit s.bound 0 bigger 0 s.len;
    s.bound <- bigger
  end;
  s.bound.(s.len) <- id;
  s.len <- s.len + 1

let rec resolve_dt slots = function
  | D_void -> Some Mof.Kind.Dt_void
  | D_boolean -> Some Mof.Kind.Dt_boolean
  | D_integer -> Some Mof.Kind.Dt_integer
  | D_real -> Some Mof.Kind.Dt_real
  | D_string -> Some Mof.Kind.Dt_string
  | D_ref slot -> Option.map (fun id -> Mof.Kind.Dt_ref id) (slots_get slots slot)
  | D_collection d ->
      Option.map (fun d -> Mof.Kind.Dt_collection d) (resolve_dt slots d)

let apply_slots slots m script =
  let step m op =
    (* unresolved slots and metamodel-invalid requests make the op a no-op;
       the builder's own exceptions are the authoritative applicability
       check, so a bare try covers every case uniformly *)
    try
      match op with
      | Add_package { owner; name } -> (
          match slots_get slots owner with
          | None -> m
          | Some owner ->
              let m, id = Mof.Builder.add_package m ~owner ~name in
              slots_push slots id;
              m)
      | Add_class { owner; name; abstract } -> (
          match slots_get slots owner with
          | None -> m
          | Some owner ->
              let m, id =
                Mof.Builder.add_class ~is_abstract:abstract m ~owner ~name
              in
              slots_push slots id;
              m)
      | Add_interface { owner; name } -> (
          match slots_get slots owner with
          | None -> m
          | Some owner ->
              let m, id = Mof.Builder.add_interface m ~owner ~name in
              slots_push slots id;
              m)
      | Add_attribute { cls; name; typ; static; initial } -> (
          match (slots_get slots cls, resolve_dt slots typ) with
          | Some cls, Some typ ->
              let m, id =
                Mof.Builder.add_attribute ?initial ~is_static:static m ~cls
                  ~name ~typ
              in
              slots_push slots id;
              m
          | _ -> m)
      | Add_operation { owner; name; abstract; query } -> (
          match slots_get slots owner with
          | None -> m
          | Some owner ->
              let m, id =
                Mof.Builder.add_operation ~is_abstract:abstract ~is_query:query
                  m ~owner ~name
              in
              slots_push slots id;
              m)
      | Add_parameter { op; name; typ } -> (
          match (slots_get slots op, resolve_dt slots typ) with
          | Some op, Some typ ->
              let m, id = Mof.Builder.add_parameter m ~op ~name ~typ in
              slots_push slots id;
              m
          | _ -> m)
      | Set_result { op; typ } -> (
          match (slots_get slots op, resolve_dt slots typ) with
          | Some op, Some typ -> Mof.Builder.set_result m ~op ~typ
          | _ -> m)
      | Add_generalization { child; parent } -> (
          match (slots_get slots child, slots_get slots parent) with
          | Some child, Some parent ->
              let m, id = Mof.Builder.add_generalization m ~child ~parent in
              slots_push slots id;
              m
          | _ -> m)
      | Add_realization { cls; iface } -> (
          match (slots_get slots cls, slots_get slots iface) with
          | Some cls, Some iface -> Mof.Builder.add_realization m ~cls ~iface
          | _ -> m)
      | Add_association { owner; name; from_; to_ } -> (
          match (slots_get slots owner, slots_get slots from_, slots_get slots to_)
          with
          | Some owner, Some a, Some b ->
              let end_ name ty =
                {
                  Mof.Kind.end_name = name;
                  end_type = ty;
                  end_mult = Mof.Kind.mult_many;
                  end_navigable = true;
                  end_aggregation = Mof.Kind.Ag_none;
                }
              in
              let m, id =
                Mof.Builder.add_association m ~owner ~name
                  ~ends:[ end_ "source" a; end_ "target" b ]
              in
              slots_push slots id;
              m
          | _ -> m)
      | Add_enumeration { owner; name; literals } -> (
          match slots_get slots owner with
          | None -> m
          | Some owner ->
              let m, id = Mof.Builder.add_enumeration m ~owner ~name ~literals in
              slots_push slots id;
              m)
      | Add_constraint { owner; name; constrained; body } -> (
          match slots_get slots owner with
          | None -> m
          | Some owner ->
              let constrained = List.filter_map (slots_get slots) constrained in
              let m, id =
                Mof.Builder.add_constraint m ~owner ~name ~constrained ~body
              in
              slots_push slots id;
              m)
      | Add_stereotype { target; stereotype } -> (
          match slots_get slots target with
          | None -> m
          | Some id -> Mof.Builder.add_stereotype m id stereotype)
      | Remove_stereotype { target; stereotype } -> (
          match slots_get slots target with
          | None -> m
          | Some id ->
              Mof.Model.update m id (Mof.Element.remove_stereotype stereotype))
      | Set_tag { target; key; value } -> (
          match slots_get slots target with
          | None -> m
          | Some id -> Mof.Builder.set_tag m id key value)
      | Remove_tag { target; key } -> (
          match slots_get slots target with
          | None -> m
          | Some id -> Mof.Model.update m id (Mof.Element.remove_tag key))
      | Rename { target; name } -> (
          match slots_get slots target with
          | None -> m
          | Some id -> Mof.Builder.rename m id name)
      | Delete { target } -> (
          match slots_get slots target with
          | None -> m
          | Some id ->
              if Mof.Id.equal id (Mof.Model.root m) then m
              else Mof.Builder.delete_element m id)
    with Mof.Builder.Builder_error _ | Mof.Model.Element_not_found _ -> m
  in
  List.fold_left step m script

let apply m script = apply_slots (slots_make (Mof.Model.root m)) m script

let apply_with_slots m script =
  let slots = slots_make (Mof.Model.root m) in
  let m = apply_slots slots m script in
  (m, Array.sub slots.bound 0 slots.len)

let apply_from m ~slots script =
  let table = slots_make (Mof.Model.root m) in
  Array.iteri (fun i id -> if i > 0 then slots_push table id) slots;
  apply_slots table m script

(* ---- pretty printing ---------------------------------------------------- *)

let rec pp_dt ppf = function
  | D_void -> Format.pp_print_string ppf "void"
  | D_boolean -> Format.pp_print_string ppf "bool"
  | D_integer -> Format.pp_print_string ppf "int"
  | D_real -> Format.pp_print_string ppf "real"
  | D_string -> Format.pp_print_string ppf "string"
  | D_ref slot -> Format.fprintf ppf "ref:#%d" slot
  | D_collection d -> Format.fprintf ppf "coll(%a)" pp_dt d

let pp_op ppf = function
  | Add_package { owner; name } ->
      Format.fprintf ppf "add-package #%d %S" owner name
  | Add_class { owner; name; abstract } ->
      Format.fprintf ppf "add-class #%d %S%s" owner name
        (if abstract then " abstract" else "")
  | Add_interface { owner; name } ->
      Format.fprintf ppf "add-interface #%d %S" owner name
  | Add_attribute { cls; name; typ; static; initial } ->
      Format.fprintf ppf "add-attribute #%d %S : %a%s%s" cls name pp_dt typ
        (if static then " static" else "")
        (match initial with Some v -> Printf.sprintf " = %S" v | None -> "")
  | Add_operation { owner; name; abstract; query } ->
      Format.fprintf ppf "add-operation #%d %S%s%s" owner name
        (if abstract then " abstract" else "")
        (if query then " query" else "")
  | Add_parameter { op; name; typ } ->
      Format.fprintf ppf "add-parameter #%d %S : %a" op name pp_dt typ
  | Set_result { op; typ } -> Format.fprintf ppf "set-result #%d %a" op pp_dt typ
  | Add_generalization { child; parent } ->
      Format.fprintf ppf "add-generalization #%d -> #%d" child parent
  | Add_realization { cls; iface } ->
      Format.fprintf ppf "add-realization #%d -> #%d" cls iface
  | Add_association { owner; name; from_; to_ } ->
      Format.fprintf ppf "add-association #%d %S #%d--#%d" owner name from_ to_
  | Add_enumeration { owner; name; literals } ->
      Format.fprintf ppf "add-enumeration #%d %S {%s}" owner name
        (String.concat "," (List.map (Printf.sprintf "%S") literals))
  | Add_constraint { owner; name; constrained; body } ->
      Format.fprintf ppf "add-constraint #%d %S on [%s] body %S" owner name
        (String.concat ";" (List.map (Printf.sprintf "#%d") constrained))
        body
  | Add_stereotype { target; stereotype } ->
      Format.fprintf ppf "add-stereotype #%d %S" target stereotype
  | Remove_stereotype { target; stereotype } ->
      Format.fprintf ppf "remove-stereotype #%d %S" target stereotype
  | Set_tag { target; key; value } ->
      Format.fprintf ppf "set-tag #%d %S = %S" target key value
  | Remove_tag { target; key } ->
      Format.fprintf ppf "remove-tag #%d %S" target key
  | Rename { target; name } -> Format.fprintf ppf "rename #%d %S" target name
  | Delete { target } -> Format.fprintf ppf "delete #%d" target

let pp ppf script =
  List.iteri
    (fun i op -> Format.fprintf ppf "%3d. %a@." i pp_op op)
    script

let to_string script = Format.asprintf "%a" pp script
