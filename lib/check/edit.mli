(** Edit scripts: serializable sequences of model operations.

    A script is the fuzzer's unit of generation, replay, and shrinking. Ops
    reference elements by *slot* — the ordinal of the creation op that
    produced them (slot 0 is the root package) — so a script is
    self-contained: it can be pretty-printed into a reproducer, re-applied
    to a fresh store, and remains applicable (if not semantics-preserving)
    under arbitrary sublist shrinking. Ops whose slots are unresolvable or
    whose target has the wrong kind are skipped; {!apply} is total. *)

(** Datatype spec; [D_ref] names a slot. *)
type dt =
  | D_void
  | D_boolean
  | D_integer
  | D_real
  | D_string
  | D_ref of int
  | D_collection of dt

type op =
  | Add_package of { owner : int; name : string }
  | Add_class of { owner : int; name : string; abstract : bool }
  | Add_interface of { owner : int; name : string }
  | Add_attribute of {
      cls : int;
      name : string;
      typ : dt;
      static : bool;
      initial : string option;
    }
  | Add_operation of { owner : int; name : string; abstract : bool; query : bool }
  | Add_parameter of { op : int; name : string; typ : dt }
  | Set_result of { op : int; typ : dt }
  | Add_generalization of { child : int; parent : int }
  | Add_realization of { cls : int; iface : int }
  | Add_association of { owner : int; name : string; from_ : int; to_ : int }
  | Add_enumeration of { owner : int; name : string; literals : string list }
  | Add_constraint of {
      owner : int;
      name : string;
      constrained : int list;
      body : string;
    }
  | Add_stereotype of { target : int; stereotype : string }
  | Remove_stereotype of { target : int; stereotype : string }
  | Set_tag of { target : int; key : string; value : string }
  | Remove_tag of { target : int; key : string }
  | Rename of { target : int; name : string }
  | Delete of { target : int }

type script = op list

val creates : op -> bool
(** Whether the op binds a new slot when it succeeds. *)

val slot_count : script -> int
(** Upper bound on the number of slots a script can bind, root included
    (assumes every creation succeeds — true for generator-produced base
    scripts). *)

val apply : Mof.Model.t -> script -> Mof.Model.t
(** Applies the ops in order. Slot 0 is the model root; each successful
    creation op binds the next slot. Inapplicable ops (unresolved slot,
    wrong target kind, deleting the root) are skipped and bind nothing.
    Total: never raises. *)

val apply_with_slots : Mof.Model.t -> script -> Mof.Model.t * Mof.Id.t array
(** Like {!apply}, also returning the bound slot table (index [i] is the id
    bound to slot [i]; index 0 is the root). *)

val apply_from : Mof.Model.t -> slots:Mof.Id.t array -> script -> Mof.Model.t
(** Applies a script whose slot references start from a previously bound
    table (as returned by {!apply_with_slots}) — how an edit script
    continues a base script: slots below [Array.length slots] resolve into
    the base, new creations bind slots after it. *)

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> script -> unit
val to_string : script -> string
