(* ---- string pools ------------------------------------------------------- *)

(* Dotted, accented, CJK, emoji, XML-hostile: every pool entry is non-blank
   and newline-free (names travel in XML attributes). *)
let name_bases =
  [
    "alpha"; "Beta"; "gamma"; "Délta"; "épsilon"; "naïve"; "größe"; "émigré";
    "店番"; "😀smile"; "dot.ted"; "a.b.c"; "am&persand"; "less<than";
    "quo\"te"; "apos'trophe"; "two words"; "tab\tchar"; "über"; "Ωmega";
  ]

let stereotype_pool =
  [ "remote"; "transactional"; "sécurisé"; "日志"; "a&b"; "dotted.stereo" ]

let tag_keys = [ "doc"; "note"; "lévél"; "origin&x" ]

let tag_values =
  [
    "plain"; "café 😀"; "line one\nline two"; "a < b & \"c\" 'd'";
    "trailing space "; "…ellipsis…"; "&#fake;ref"; "]]>cdata-bait";
  ]

let constraint_bodies =
  [
    "inv: self.x < 1 & self.y > 0";
    "inv: name <> 'été'";
    "pre: 1 < 2 && \"quoted\"";
    "post: café 😀 <&> done";
    "inv: literal&#65;not-a-ref";
  ]

let initial_values = [ "0"; "<empty>"; "'é'"; "a&b"; "😀" ]

let fresh_name rng counter =
  let base = Prng.choose rng name_bases in
  incr counter;
  Printf.sprintf "%s_%d" base !counter

(* ---- slot bookkeeping ---------------------------------------------------- *)

type info =
  | I_pkg
  | I_cls of bool  (* abstract? *)
  | I_ifc
  | I_opn
  | I_other

type slot = { info : info; s_name : string; s_owner : int }

(* Gen-time mirror of Edit.apply's slot table, assuming every creation
   succeeds (true for constructive base scripts; harmless over-approximation
   for edit scripts, whose dangling references are skipped at apply time). *)
let scan root_name script =
  let slots = ref [ { info = I_pkg; s_name = root_name; s_owner = -1 } ] in
  let push s = slots := !slots @ [ s ] in
  List.iter
    (fun op ->
      match (op : Edit.op) with
      | Edit.Add_package { owner; name } ->
          push { info = I_pkg; s_name = name; s_owner = owner }
      | Edit.Add_class { owner; name; abstract } ->
          push { info = I_cls abstract; s_name = name; s_owner = owner }
      | Edit.Add_interface { owner; name } ->
          push { info = I_ifc; s_name = name; s_owner = owner }
      | Edit.Add_attribute { cls; name; _ } ->
          push { info = I_other; s_name = name; s_owner = cls }
      | Edit.Add_operation { owner; name; _ } ->
          push { info = I_opn; s_name = name; s_owner = owner }
      | Edit.Add_parameter { op; name; _ } ->
          push { info = I_other; s_name = name; s_owner = op }
      | Edit.Add_generalization { child; _ } ->
          push { info = I_other; s_name = "gen"; s_owner = child }
      | Edit.Add_association { owner; name; _ }
      | Edit.Add_enumeration { owner; name; _ }
      | Edit.Add_constraint { owner; name; _ } ->
          push { info = I_other; s_name = name; s_owner = owner }
      | Edit.Set_result _ | Edit.Add_realization _ | Edit.Add_stereotype _
      | Edit.Remove_stereotype _ | Edit.Set_tag _ | Edit.Remove_tag _
      | Edit.Rename _ | Edit.Delete _ ->
          ())
    script;
  Array.of_list !slots

let indices_of pred slots =
  let acc = ref [] in
  Array.iteri (fun i s -> if pred s then acc := i :: !acc) slots;
  List.rev !acc

(* ---- base scripts -------------------------------------------------------- *)

let random_dt rng classifiers =
  let scalar () =
    Prng.choose rng
      [ Edit.D_boolean; Edit.D_integer; Edit.D_real; Edit.D_string ]
  in
  match classifiers with
  | [] -> scalar ()
  | _ ->
      if Prng.chance rng 1 3 then
        let r = Edit.D_ref (Prng.choose rng classifiers) in
        if Prng.chance rng 1 4 then Edit.D_collection r else r
      else scalar ()

let base_script rng =
  let counter = ref 0 in
  let size = Prng.range rng 4 22 in
  let ops = ref [] in
  let emit op = ops := op :: !ops in
  (* mutable mirrors of the slot table *)
  let slots = ref [| { info = I_pkg; s_name = "fuzz"; s_owner = -1 } |] in
  let push s = slots := Array.append !slots [| s |] in
  let pkgs () = indices_of (fun s -> s.info = I_pkg) !slots in
  let classes () =
    indices_of (fun s -> match s.info with I_cls _ -> true | _ -> false) !slots
  in
  let abstract_classes () =
    indices_of (fun s -> s.info = I_cls true) !slots
  in
  let ifaces () = indices_of (fun s -> s.info = I_ifc) !slots in
  let opns () = indices_of (fun s -> s.info = I_opn) !slots in
  let gen_pairs = ref [] in
  for _ = 1 to size do
    let roll = Prng.int rng 100 in
    if roll < 14 then begin
      let owner = Prng.choose rng (pkgs ()) in
      let name = fresh_name rng counter in
      emit (Edit.Add_package { owner; name });
      push { info = I_pkg; s_name = name; s_owner = owner }
    end
    else if roll < 34 then begin
      let owner = Prng.choose rng (pkgs ()) in
      let name = fresh_name rng counter in
      let abstract = Prng.chance rng 1 4 in
      emit (Edit.Add_class { owner; name; abstract });
      push { info = I_cls abstract; s_name = name; s_owner = owner }
    end
    else if roll < 41 then begin
      let owner = Prng.choose rng (pkgs ()) in
      let name = fresh_name rng counter in
      emit (Edit.Add_interface { owner; name });
      push { info = I_ifc; s_name = name; s_owner = owner }
    end
    else if roll < 55 then begin
      match classes () with
      | [] -> ()
      | cs ->
          let cls = Prng.choose rng cs in
          let name = fresh_name rng counter in
          let typ = random_dt rng (classes () @ ifaces ()) in
          let static = Prng.chance rng 1 6 in
          let initial =
            if Prng.chance rng 1 4 then Some (Prng.choose rng initial_values)
            else None
          in
          emit (Edit.Add_attribute { cls; name; typ; static; initial });
          push { info = I_other; s_name = name; s_owner = cls }
    end
    else if roll < 67 then begin
      match classes () @ ifaces () with
      | [] -> ()
      | owners ->
          let owner = Prng.choose rng owners in
          let name = fresh_name rng counter in
          (* abstract operations only where a concrete class cannot end up
             holding them, keeping the base well-formed *)
          let may_abstract =
            (!slots).(owner).info = I_ifc
            || List.mem owner (abstract_classes ())
          in
          let abstract = may_abstract && Prng.chance rng 1 3 in
          let query = Prng.chance rng 1 4 in
          emit (Edit.Add_operation { owner; name; abstract; query });
          push { info = I_opn; s_name = name; s_owner = owner }
    end
    else if roll < 74 then begin
      match opns () with
      | [] -> ()
      | os ->
          let op = Prng.choose rng os in
          if Prng.bool rng then begin
            let name = fresh_name rng counter in
            let typ = random_dt rng (classes ()) in
            emit (Edit.Add_parameter { op; name; typ });
            push { info = I_other; s_name = name; s_owner = op }
          end
          else emit (Edit.Set_result { op; typ = random_dt rng (classes ()) })
    end
    else if roll < 80 then begin
      (* generalization from a later to a strictly earlier class: acyclic by
         construction, and each (child, parent) pair at most once so the
         derived "C->P" element names stay unique among siblings *)
      match classes () with
      | [] | [ _ ] -> ()
      | cs ->
          let child = Prng.choose rng cs in
          let earlier = List.filter (fun p -> p < child) cs in
          (match earlier with
          | [] -> ()
          | _ ->
              let parent = Prng.choose rng earlier in
              if not (List.mem (child, parent) !gen_pairs) then begin
                gen_pairs := (child, parent) :: !gen_pairs;
                emit (Edit.Add_generalization { child; parent });
                push { info = I_other; s_name = "gen"; s_owner = child }
              end)
    end
    else if roll < 84 then begin
      match (classes (), ifaces ()) with
      | cls :: _, ifc :: _ ->
          emit
            (Edit.Add_realization
               { cls = Prng.choose rng (cls :: classes ()); iface = ifc })
      | _ -> ()
    end
    else if roll < 88 then begin
      match classes () with
      | [] -> ()
      | cs ->
          let owner = Prng.choose rng (pkgs ()) in
          let name = fresh_name rng counter in
          let from_ = Prng.choose rng cs and to_ = Prng.choose rng cs in
          emit (Edit.Add_association { owner; name; from_; to_ });
          push { info = I_other; s_name = name; s_owner = owner }
    end
    else if roll < 91 then begin
      let owner = Prng.choose rng (pkgs ()) in
      let name = fresh_name rng counter in
      let literals =
        List.init (Prng.range rng 1 4) (fun _ -> fresh_name rng counter)
      in
      emit (Edit.Add_enumeration { owner; name; literals });
      push { info = I_other; s_name = name; s_owner = owner }
    end
    else if roll < 94 then begin
      let owner = Prng.choose rng (pkgs ()) in
      let name = fresh_name rng counter in
      let body = Prng.choose rng constraint_bodies in
      let all = Array.length !slots in
      let constrained =
        List.init (Prng.int rng 3) (fun _ -> Prng.int rng all)
      in
      emit (Edit.Add_constraint { owner; name; constrained; body });
      push { info = I_other; s_name = name; s_owner = owner }
    end
    else if roll < 97 then
      emit
        (Edit.Add_stereotype
           {
             target = Prng.int rng (Array.length !slots);
             stereotype = Prng.choose rng stereotype_pool;
           })
    else
      emit
        (Edit.Set_tag
           {
             target = Prng.int rng (Array.length !slots);
             key = Prng.choose rng tag_keys;
             value = Prng.choose rng tag_values;
           })
  done;
  (* occasionally plant a qualified-name collision: a root-level class whose
     dotted simple name spells the path of a nested element *)
  (if Prng.chance rng 1 4 then
     let nested =
       indices_of
         (fun s -> s.s_owner > 0 && (!slots).(s.s_owner).s_owner = 0)
         !slots
     in
     match nested with
     | [] -> ()
     | _ ->
         let j = Prng.choose rng nested in
         let owner_name = (!slots).((!slots).(j).s_owner).s_name in
         let name = owner_name ^ "." ^ (!slots).(j).s_name in
         emit (Edit.Add_class { owner = 0; name; abstract = false }));
  List.rev !ops

(* ---- edit scripts -------------------------------------------------------- *)

let edit_script rng ~base =
  let counter = ref 10_000 in
  let slots = ref (scan "fuzz" base) in
  let push s = slots := Array.append !slots [| s |] in
  let total () = Array.length !slots in
  let any () = Prng.int rng (total ()) in
  let existing_name () = (!slots).(any ()).s_name in
  let size = Prng.range rng 1 12 in
  let ops = ref [] in
  let emit op = ops := op :: !ops in
  for _ = 1 to size do
    let roll = Prng.int rng 100 in
    if roll < 12 then emit (Edit.Delete { target = any () })
    else if roll < 22 then begin
      (* rename: fresh, colliding, dotted-colliding, or empty *)
      let target = any () in
      let name =
        let r = Prng.int rng 10 in
        if r < 4 then fresh_name rng counter
        else if r < 7 then existing_name ()
        else if r < 9 then
          let j = any () in
          let o = (!slots).(j).s_owner in
          if o >= 0 then (!slots).(o).s_name ^ "." ^ (!slots).(j).s_name
          else fresh_name rng counter
        else ""
      in
      emit (Edit.Rename { target; name })
    end
    else if roll < 32 then begin
      (* generalization in an arbitrary direction: cycles allowed *)
      emit (Edit.Add_generalization { child = any (); parent = any () })
    end
    else if roll < 42 then begin
      let owner = any () in
      let name = fresh_name rng counter in
      let abstract = Prng.chance rng 1 3 in
      emit (Edit.Add_class { owner; name; abstract });
      push { info = I_cls abstract; s_name = name; s_owner = owner }
    end
    else if roll < 50 then begin
      let cls = any () in
      let name =
        if Prng.chance rng 1 4 then existing_name ()
        else fresh_name rng counter
      in
      emit
        (Edit.Add_attribute
           {
             cls;
             name;
             typ = random_dt rng [ any () ];
             static = Prng.bool rng;
             initial =
               (if Prng.bool rng then Some (Prng.choose rng initial_values)
                else None);
           });
      push { info = I_other; s_name = name; s_owner = cls }
    end
    else if roll < 58 then begin
      let owner = any () in
      let name =
        if Prng.chance rng 1 4 then existing_name ()
        else fresh_name rng counter
      in
      (* abstract operations may land on concrete classes here: the edited
         model is allowed to be ill-formed *)
      emit
        (Edit.Add_operation
           { owner; name; abstract = Prng.chance rng 1 3; query = Prng.bool rng });
      push { info = I_opn; s_name = name; s_owner = owner }
    end
    else if roll < 64 then begin
      let owner = any () in
      let name = fresh_name rng counter in
      let lit = fresh_name rng counter in
      let literals =
        if Prng.chance rng 1 3 then [ lit; lit ]  (* duplicate literal *)
        else [ lit; fresh_name rng counter ]
      in
      emit (Edit.Add_enumeration { owner; name; literals });
      push { info = I_other; s_name = name; s_owner = owner }
    end
    else if roll < 72 then
      emit
        (Edit.Add_stereotype
           { target = any (); stereotype = Prng.choose rng stereotype_pool })
    else if roll < 78 then
      emit
        (Edit.Remove_stereotype
           { target = any (); stereotype = Prng.choose rng stereotype_pool })
    else if roll < 86 then
      emit
        (Edit.Set_tag
           {
             target = any ();
             key = Prng.choose rng tag_keys;
             value = Prng.choose rng tag_values;
           })
    else if roll < 90 then
      emit (Edit.Remove_tag { target = any (); key = Prng.choose rng tag_keys })
    else if roll < 95 then begin
      let owner = any () in
      let name = fresh_name rng counter in
      emit (Edit.Add_package { owner; name });
      push { info = I_pkg; s_name = name; s_owner = owner }
    end
    else begin
      let owner = any () in
      let name = fresh_name rng counter in
      emit
        (Edit.Add_constraint
           {
             owner;
             name;
             constrained = [ any (); any () ];
             body = Prng.choose rng constraint_bodies;
           });
      push { info = I_other; s_name = name; s_owner = owner }
    end
  done;
  List.rev !ops

(* ---- weaving cases ------------------------------------------------------- *)

let method_names = [ "m0"; "m1"; "m2"; "deposit" ]
let class_names = [ "C0"; "C1"; "C2"; "Account" ]

let random_body rng cls =
  let stmt i =
    match Prng.int rng 9 with
    | 0 ->
        Code.Jstmt.S_local
          (Code.Jtype.T_int, Printf.sprintf "v%d" i, Some (Code.Jexpr.E_int i))
    | 1 ->
        Code.Jstmt.S_expr
          (Code.Jexpr.E_call (None, Prng.choose rng method_names, []))
    | 2 ->
        Code.Jstmt.S_expr
          (Code.Jexpr.E_call
             (Some Code.Jexpr.E_this, Prng.choose rng method_names, []))
    | 3 ->
        Code.Jstmt.S_expr
          (Code.Jexpr.E_assign
             (Code.Jexpr.E_field (Code.Jexpr.E_this, "f"), Code.Jexpr.E_int i))
    | 4 ->
        (* [mystery] is never a parameter, field or local, so the receiver
           does not resolve — exercises the wildcard matching of
           unknown-receiver call shadows. *)
        Code.Jstmt.S_expr
          (Code.Jexpr.E_call
             ( Some (Code.Jexpr.E_name "mystery"),
               Prng.choose rng method_names,
               [] ))
    | 5 ->
        Code.Jstmt.S_if
          ( Code.Jexpr.E_binary
              ("<", Code.Jexpr.E_name "f", Code.Jexpr.E_int 10),
            [
              Code.Jstmt.S_expr
                (Code.Jexpr.E_call (None, Prng.choose rng method_names, []));
            ],
            [] )
    | 6 ->
        (* shadows under try/catch/finally: a call in the handler and a
           field set in the finally block *)
        Code.Jstmt.S_try
          ( [ Code.Jstmt.S_throw (Code.Jexpr.E_new ("RuntimeException", [])) ],
            [
              ( Code.Jtype.T_named "RuntimeException",
                "e",
                [
                  Code.Jstmt.S_expr
                    (Code.Jexpr.E_call (None, Prng.choose rng method_names, []));
                ] );
            ],
            [
              Code.Jstmt.S_expr
                (Code.Jexpr.E_assign
                   ( Code.Jexpr.E_field (Code.Jexpr.E_this, "f"),
                     Code.Jexpr.E_int 0 ));
            ] )
    | 7 ->
        Code.Jstmt.S_while
          ( Code.Jexpr.E_binary
              ("<", Code.Jexpr.E_name "f", Code.Jexpr.E_int 3),
            [
              Code.Jstmt.S_expr
                (Code.Jexpr.E_assign
                   ( Code.Jexpr.E_field (Code.Jexpr.E_this, "f"),
                     Code.Jexpr.E_binary
                       ("+", Code.Jexpr.E_name "f", Code.Jexpr.E_int 1) ));
            ] )
    | _ ->
        Code.Jstmt.S_sync
          ( Code.Jexpr.E_this,
            [
              Code.Jstmt.S_block
                [
                  Code.Jstmt.S_expr
                    (Code.Jexpr.E_call
                       (Some Code.Jexpr.E_this, Prng.choose rng method_names, []));
                ];
            ] )
  in
  let n = Prng.range rng 1 4 in
  let body = List.init n stmt in
  if Prng.bool rng then
    body
    @ [
        Code.Jstmt.S_return
          (Some (Code.Jexpr.E_field (Code.Jexpr.E_this, "f")));
      ]
  else body @ [ Code.Jstmt.S_comment ("end of " ^ cls) ]

let random_class rng name =
  let methods =
    List.filter_map
      (fun mname ->
        if Prng.chance rng 2 3 then
          Some
            {
              Code.Jdecl.method_name = mname;
              method_mods = [ Code.Jdecl.M_public ];
              return_type = Code.Jtype.T_int;
              params = [];
              throws = [];
              body = Some (random_body rng name);
            }
        else None)
      method_names
  in
  {
    Code.Jdecl.class_name = name;
    class_mods = [ Code.Jdecl.M_public ];
    extends = None;
    implements = [];
    fields =
      [
        {
          Code.Jdecl.field_name = "f";
          field_type = Code.Jtype.T_int;
          field_mods = [ Code.Jdecl.M_private ];
          field_init = Some (Code.Jexpr.E_int 0);
        };
      ];
    methods;
  }

(* Shapes chosen to land in every decider pattern specialization:
   literal, bare "*", prefix, suffix, infix ("*..*") and the generic
   multi-star DP fallback ("m*t", "*e*0"). *)
let pattern_pool =
  [
    "C0"; "C1"; "C*"; "Account"; "Acc*"; "*"; "*0"; "m0"; "m*"; "de*"; "deposit";
    "*epos*"; "*0*"; "m*t"; "*e*0"; "d*p*t";
  ]

let random_pointcut rng =
  let pat () = Prng.choose rng pattern_pool in
  let leaf () =
    match Prng.int rng 6 with
    | 0 -> Aspects.Pointcut.execution (pat ()) (pat ())
    | 1 -> Aspects.Pointcut.call (pat ()) (pat ())
    | 2 -> Aspects.Pointcut.set_field (pat ()) "f"
    | 3 ->
        (* wildcard class: also selects calls whose receiver class does
           not resolve, so the optimistic-match path gets fuzzed *)
        Aspects.Pointcut.call "*" (pat ())
    | 4 -> Aspects.Pointcut.set_field "*" "f"
    | _ -> Aspects.Pointcut.execution (pat ()) "*"
  in
  match Prng.int rng 10 with
  | 0 -> Aspects.Pointcut.And (leaf (), Aspects.Pointcut.within (pat ()))
  | 1 -> Aspects.Pointcut.Or (leaf (), leaf ())
  | 2 ->
      Aspects.Pointcut.And
        (leaf (), Aspects.Pointcut.Not (Aspects.Pointcut.within (pat ())))
  | 3 ->
      (* negation directly over every leaf kind, not just [within]: the
         compiled-decider oracle needs [Not] observed against execution,
         call and set shadows alike *)
      Aspects.Pointcut.Not (leaf ())
  | 4 -> Aspects.Pointcut.Or (Aspects.Pointcut.Not (leaf ()), leaf ())
  | _ -> leaf ()

let log_call text =
  Code.Jstmt.S_expr
    (Code.Jexpr.E_call
       ( None,
         "log",
         [ Code.Jexpr.E_name "thisJoinPoint"; Code.Jexpr.E_string text ] ))

let random_advice rng i =
  let time =
    Prng.choose rng
      Aspects.Advice.[ Before; After; After_returning; Around ]
  in
  let tag = Printf.sprintf "adv%d" i in
  let body =
    match time with
    | Aspects.Advice.Around -> [ log_call tag; Aspects.Advice.proceed ]
    | _ -> [ log_call tag ]
  in
  Aspects.Advice.make ~name:tag time (random_pointcut rng) body

type weave_case = {
  program : Code.Junit.program;
  aspects : Aspects.Generator.generated list;
}

let weave_case rng =
  let n_classes = Prng.range rng 1 3 in
  let classes =
    List.filteri (fun i _ -> i < n_classes) class_names
    |> List.map (fun name -> Code.Jdecl.Class (random_class rng name))
  in
  let program = [ Code.Junit.unit_ ~package:"fuzz" classes ] in
  let n_aspects = Prng.range rng 1 4 in
  let seqs = Prng.shuffle rng (List.init n_aspects (fun i -> i)) in
  let aspects =
    List.mapi
      (fun i seq ->
        let name = Printf.sprintf "A%d" i in
        let intertypes =
          if Prng.chance rng 1 4 then
            [
              Aspects.Aspect.It_field
                ( Prng.choose rng [ "C*"; "*" ],
                  {
                    Code.Jdecl.field_name = "it_" ^ name;
                    field_type = Code.Jtype.T_int;
                    field_mods = [ Code.Jdecl.M_private ];
                    field_init = None;
                  } );
            ]
          else []
        in
        let advices =
          List.init (Prng.range rng 1 2) (fun j -> random_advice rng j)
        in
        {
          Aspects.Generator.aspect =
            Aspects.Aspect.make ~intertypes ~advices ~name ~concern:"fuzz" ();
          from_transformation = Printf.sprintf "T%d" i;
          seq;
        })
      seqs
  in
  { program; aspects }

let pp_weave_case ppf { program; aspects } =
  Format.fprintf ppf "aspects (name/seq):@.";
  List.iter
    (fun (g : Aspects.Generator.generated) ->
      Format.fprintf ppf "  %s seq=%d advices=%d@."
        g.Aspects.Generator.aspect.Aspects.Aspect.aspect_name
        g.Aspects.Generator.seq
        (List.length g.Aspects.Generator.aspect.Aspects.Aspect.advices))
    aspects;
  Format.fprintf ppf "program:@.%s@." (Code.Printer.program_to_string program)

(* One structural edit to a program, for the incremental-weave oracle.
   Edits go through [Code.Junit.update_class] or rebuild a single unit, so
   every declaration the edit does not touch is returned physically
   unchanged — exactly the sharing the incremental weaver's watermark
   fast-path keys on. Degenerate draws (no class, no method to hit) fall
   back to the identity, which the oracle tolerates. *)
let program_edit rng (program : Code.Junit.program) =
  let classes = Code.Junit.classes program in
  let pick_class () =
    match classes with [] -> None | l -> Some (Prng.choose rng l)
  in
  match Prng.int rng 7 with
  | 0 -> (
      (* replace one method body *)
      match pick_class () with
      | Some c when c.Code.Jdecl.methods <> [] ->
          let m = Prng.choose rng c.Code.Jdecl.methods in
          Code.Junit.update_class program c.Code.Jdecl.class_name (fun c ->
              {
                c with
                Code.Jdecl.methods =
                  List.map
                    (fun m' ->
                      if m' == m then
                        {
                          m with
                          Code.Jdecl.body =
                            Some (random_body rng c.Code.Jdecl.class_name);
                        }
                      else m')
                    c.Code.Jdecl.methods;
              })
      | _ -> program)
  | 1 -> (
      (* add a method *)
      match pick_class () with
      | Some c ->
          let mname = Prng.choose rng method_names in
          let body = random_body rng c.Code.Jdecl.class_name in
          Code.Junit.update_class program c.Code.Jdecl.class_name (fun c ->
              Code.Jdecl.add_method
                {
                  Code.Jdecl.method_name = mname;
                  method_mods = [ Code.Jdecl.M_public ];
                  return_type = Code.Jtype.T_int;
                  params = [];
                  throws = [];
                  body = Some body;
                }
                c)
      | None -> program)
  | 2 -> (
      (* remove a method *)
      match pick_class () with
      | Some c when c.Code.Jdecl.methods <> [] ->
          let m = Prng.choose rng c.Code.Jdecl.methods in
          Code.Junit.update_class program c.Code.Jdecl.class_name (fun c ->
              {
                c with
                Code.Jdecl.methods =
                  List.filter (fun m' -> m' != m) c.Code.Jdecl.methods;
              })
      | _ -> program)
  | 3 -> (
      (* add a field *)
      match pick_class () with
      | Some c ->
          Code.Junit.update_class program c.Code.Jdecl.class_name (fun c ->
              Code.Jdecl.add_field
                {
                  Code.Jdecl.field_name = Printf.sprintf "g%d" (Prng.int rng 3);
                  field_type = Code.Jtype.T_int;
                  field_mods = [ Code.Jdecl.M_private ];
                  field_init = Some (Code.Jexpr.E_int 0);
                }
                c)
      | None -> program)
  | 4 -> (
      (* add a class (possibly shadowing an existing name) *)
      let fresh = random_class rng (Prng.choose rng class_names) in
      match program with
      | u :: rest ->
          { u with Code.Junit.decls = u.Code.Junit.decls @ [ Code.Jdecl.Class fresh ] }
          :: rest
      | [] -> [ Code.Junit.unit_ ~package:"fuzz" [ Code.Jdecl.Class fresh ] ])
  | 5 -> (
      (* remove a class *)
      match pick_class () with
      | Some c ->
          List.map
            (fun u ->
              {
                u with
                Code.Junit.decls =
                  List.filter
                    (function
                      | Code.Jdecl.Class c' -> c' != c
                      | Code.Jdecl.Interface _ -> true)
                    u.Code.Junit.decls;
              })
            program
      | None -> program)
  | _ -> (
      (* rename a class *)
      match pick_class () with
      | Some c ->
          let name = Prng.choose rng class_names in
          Code.Junit.update_class program c.Code.Jdecl.class_name (fun c ->
              { c with Code.Jdecl.class_name = name })
      | None -> program)

(* ---- runnable programs for the vm oracle ---------------------------------- *)

(* [weave_case] programs may recurse unboundedly (m0 freely calls m0) —
   fine for structural oracles, fatal for executing them. The interpreter
   differential of the [vm] oracle instead draws from this generator:
   every loop counts an own-purpose local upward, recursion decreases an
   explicit argument, and methods otherwise call only strictly-later
   methods, so every run terminates. The statement templates are chosen to
   reach every compiled node kind — locals and both field fallbacks, all
   operators, try/throw/catch/finally, while, synchronized, nested blocks,
   builtin and object receivers, null dereference and division by zero,
   casts, instanceof, doubles, strings, and bounded recursion. *)

module E = Code.Jexpr
module S = Code.Jstmt
module T = Code.Jtype

type interp_case = {
  ip_program : Code.Junit.program;
  ip_entry : string * string;  (* class, method *)
  ip_args : Interp.Rvalue.t list;
  ip_faults : (string * string) list;
}

let jmethod ?(params = []) name body =
  {
    Code.Jdecl.method_name = name;
    method_mods = [ Code.Jdecl.M_public ];
    return_type = T.T_int;
    params;
    throws = [];
    body = Some body;
  }

let jfield name =
  {
    Code.Jdecl.field_name = name;
    field_type = T.T_int;
    field_mods = [ Code.Jdecl.M_private ];
    field_init = None;
  }

let jclass ?extends name ~fields ~methods =
  {
    Code.Jdecl.class_name = name;
    class_mods = [ Code.Jdecl.M_public ];
    extends;
    implements = [];
    fields;
    methods;
  }

let interp_helper_class =
  jclass "Helper" ~fields:[ jfield "c" ]
    ~methods:
      [
        jmethod "inc"
          [
            S.S_expr
              (E.E_assign (E.E_name "c", E.E_binary ("+", E.E_name "c", E.E_int 1)));
            S.S_return (Some (E.E_name "c"));
          ];
        jmethod "get" [ S.S_return (Some (E.E_field (E.E_this, "c"))) ];
      ]

let interp_base_class =
  jclass "Base" ~fields:[]
    ~methods:[ jmethod "base" [ S.S_return (Some (E.E_int 7)) ] ]

(* rec(n): n bounded recursive self-calls through [this]. *)
let interp_rec_method =
  jmethod "rec"
    ~params:[ { Code.Jdecl.param_name = "n"; param_type = T.T_int } ]
    [
      S.S_if
        ( E.E_binary ("<", E.E_int 0, E.E_name "n"),
          [
            S.S_expr
              (E.E_call
                 (Some E.E_this, "rec", [ E.E_binary ("-", E.E_name "n", E.E_int 1) ]));
            S.S_expr
              (E.E_assign (E.E_name "f", E.E_binary ("+", E.E_name "f", E.E_int 1)));
          ],
          [] );
      S.S_return (Some (E.E_name "f"));
    ]

let bump_f by = S.S_expr (E.E_assign (E.E_name "f", E.E_binary ("+", E.E_name "f", by)))

let logger args = S.S_expr (E.E_call (Some (E.E_name "Logger"), "log", args))

let rec interp_stmts rng ~midx ~depth ~fresh : S.t list =
  incr fresh;
  let v = Printf.sprintf "x%d" !fresh in
  let ev = Printf.sprintf "e%d" !fresh in
  let sub () =
    if depth > 0 then interp_stmts rng ~midx ~depth:(depth - 1) ~fresh
    else [ bump_f (E.E_int 1) ]
  in
  match Prng.int rng 17 with
  | 0 ->
      [
        S.S_local (T.T_int, v, Some (E.E_binary ("+", E.E_name "f", E.E_int !fresh)));
        S.S_expr (E.E_assign (E.E_name v, E.E_binary ("*", E.E_name v, E.E_int 2)));
        S.S_expr (E.E_assign (E.E_name "f", E.E_name v));
      ]
  | 1 ->
      [
        S.S_expr
          (E.E_assign
             ( E.E_field (E.E_this, "f"),
               E.E_binary ("+", E.E_field (E.E_this, "f"), E.E_int 1) ));
      ]
  | 2 -> [ bump_f (E.E_int (-1)) ]
  | 3 ->
      [
        S.S_if
          ( E.E_binary
              ( "&&",
                E.E_binary ("<", E.E_name "f", E.E_int 40),
                E.E_unary ("!", E.E_binary ("==", E.E_name "f", E.E_int 9999)) ),
            sub (), sub () );
      ]
  | 4 ->
      [
        S.S_local (T.T_int, v, Some (E.E_int 0));
        S.S_while
          ( E.E_binary ("<", E.E_name v, E.E_int 2),
            S.S_expr (E.E_assign (E.E_name v, E.E_binary ("+", E.E_name v, E.E_int 1)))
            :: sub () );
      ]
  | 5 ->
      [
        S.S_try
          ( [
              S.S_if
                ( E.E_binary ("<", E.E_name "f", E.E_int 100000),
                  [ S.S_throw (E.E_new ("RuntimeException", [])) ],
                  [] );
            ],
            [
              ( T.T_named "Exception",
                ev,
                [
                  logger
                    [
                      E.E_binary
                        ("+", E.E_string "i", E.E_instanceof (E.E_name ev, "Throwable"));
                    ];
                ] );
            ],
            [ bump_f (E.E_int 1) ] );
      ]
  | 6 ->
      [
        S.S_local (T.T_int, v, Some (E.E_int 0));
        S.S_try
          ( [ S.S_expr (E.E_assign (E.E_name v, E.E_binary ("/", E.E_int 1, E.E_name v))) ],
            [ (T.T_named "RuntimeException", ev, [ logger [ E.E_string "div" ] ]) ],
            [] );
      ]
  | 7 ->
      [
        S.S_sync
          ((if Prng.bool rng then E.E_this else E.E_new ("Helper", [])), sub ());
      ]
  | 8 -> [ S.S_block (sub ()) ]
  | 9 ->
      [
        S.S_local (T.T_named "Helper", v, Some (E.E_new ("Helper", [ E.E_int 1 ])));
        S.S_expr (E.E_call (Some (E.E_name v), "inc", []));
        bump_f (E.E_call (Some (E.E_name v), "get", []));
      ]
  | 10 ->
      [
        S.S_local (T.T_named "Helper", v, Some E.E_null);
        S.S_try
          ( [ S.S_expr (E.E_call (Some (E.E_name v), "get", [])) ],
            [ (T.T_named "RuntimeException", ev, [ bump_f (E.E_int 2) ]) ],
            [] );
      ]
  | 11 ->
      let callee =
        if midx < 3 then Printf.sprintf "m%d" (midx + 1 + Prng.int rng (3 - midx))
        else "base"
      in
      if Prng.bool rng then [ S.S_expr (E.E_call (None, callee, [])) ]
      else [ bump_f (E.E_call (Some E.E_this, callee, [])) ]
  | 12 -> [ bump_f (E.E_call (Some E.E_this, "rec", [ E.E_int (Prng.range rng 1 3) ])) ]
  | 13 ->
      [
        S.S_local (T.T_double, v, Some (E.E_double 1.5));
        S.S_expr
          (E.E_assign
             ( E.E_name v,
               E.E_binary
                 ( "-",
                   E.E_binary ("*", E.E_name v, E.E_double 2.0),
                   E.E_unary ("-", E.E_double 1.0) ) ));
        S.S_expr (E.E_cast (T.T_int, E.E_name v));
      ]
  | 14 ->
      [
        S.S_local (T.T_string, v, Some (E.E_string "a"));
        S.S_expr (E.E_assign (E.E_name v, E.E_binary ("+", E.E_name v, E.E_name "f")));
        S.S_if
          ( E.E_binary
              ( "||",
                E.E_binary ("==", E.E_name v, E.E_string "a0"),
                E.E_binary ("!=", E.E_name "f", E.E_int (-1)) ),
            [ logger [ E.E_name v ] ], [] );
      ]
  | 15 -> (
      match Prng.int rng 6 with
      | 0 ->
          [
            S.S_expr
              (E.E_call
                 ( Some (E.E_call (Some (E.E_name "TransactionManager"), "current", [])),
                   "begin", [] ));
            S.S_expr
              (E.E_call
                 ( Some (E.E_call (Some (E.E_name "TransactionManager"), "current", [])),
                   "commit", [] ));
          ]
      | 1 ->
          [
            S.S_expr
              (E.E_call
                 ( Some (E.E_call (Some (E.E_name "LockManager"), "of", [ E.E_string "x" ])),
                   "acquire", [] ));
          ]
      | 2 ->
          [ S.S_expr (E.E_call (Some (E.E_name "AccessController"), "check", [ E.E_bool true ])) ]
      | 3 ->
          [
            S.S_local
              ( T.T_string, v,
                Some (E.E_call (Some (E.E_name "NamingService"), "lookup", [ E.E_string "n" ])) );
          ]
      | 4 ->
          [ S.S_expr (E.E_call (Some (E.E_name "MessageQueue"), "publish", [ E.E_name "f" ])) ]
      | _ ->
          [ S.S_expr (E.E_call (Some (E.E_name "SecurityContext"), "currentPrincipal", [])) ])
  | _ ->
      [
        S.S_local (T.T_boolean, v, Some (E.E_bool false));
        S.S_if (E.E_unary ("!", E.E_name v), [ logger [ E.E_null ] ], []);
      ]

let interp_body rng ~midx =
  let fresh = ref 0 in
  let n = Prng.range rng 2 4 in
  List.concat (List.init n (fun _ -> interp_stmts rng ~midx ~depth:1 ~fresh))
  @ [ S.S_return (Some (E.E_name "f")) ]

let interp_case rng =
  let methods =
    List.init 4 (fun i ->
        let body = interp_body rng ~midx:i in
        let body =
          if i = 0 then S.S_expr (E.E_assign (E.E_name "f", E.E_name "p")) :: body
          else body
        in
        let params =
          if i = 0 then [ { Code.Jdecl.param_name = "p"; param_type = T.T_int } ]
          else []
        in
        jmethod ~params (Printf.sprintf "m%d" i) body)
    @ [ interp_rec_method ]
  in
  let main = jclass "Main" ~extends:"Base" ~fields:[ jfield "f" ] ~methods in
  let program =
    [
      Code.Junit.unit_ ~package:"vmfuzz"
        [
          Code.Jdecl.Class interp_base_class;
          Code.Jdecl.Class interp_helper_class;
          Code.Jdecl.Class main;
        ];
    ]
  in
  let ip_faults =
    if Prng.chance rng 1 3 then
      [ ("Main", Printf.sprintf "m%d" (1 + Prng.int rng 3)) ]
    else []
  in
  let ip_args =
    (* occasionally no argument at all: the arity-mismatch error path must
       agree between compiled and tree-walked invocation too *)
    if Prng.chance rng 1 8 then []
    else [ Interp.Rvalue.V_int (Prng.int rng 5) ]
  in
  { ip_program = program; ip_entry = ("Main", "m0"); ip_args; ip_faults }

(* Aspects whose advice bodies are runnable (the [Logger] builtin rather
   than the structural oracles' unresolvable [log(thisJoinPoint, ...)]),
   so woven programs execute end to end and advice effects land in the
   event trace both execution engines must reproduce. *)
let runnable_aspects rng =
  List.init (Prng.range rng 1 2) (fun i ->
      let time =
        Prng.choose rng Aspects.Advice.[ Before; After; After_returning; Around ]
      in
      let tag = Printf.sprintf "vmadv%d" i in
      let body =
        match time with
        | Aspects.Advice.Around ->
            [ logger [ E.E_string tag ]; Aspects.Advice.proceed ]
        | _ -> [ logger [ E.E_string tag ] ]
      in
      let advice = Aspects.Advice.make ~name:tag time (random_pointcut rng) body in
      {
        Aspects.Generator.aspect =
          Aspects.Aspect.make ~advices:[ advice ] ~name:(Printf.sprintf "V%d" i)
            ~concern:"fuzz" ();
        from_transformation = Printf.sprintf "VT%d" i;
        seq = i;
      })

(* ---- character-reference armoring ---------------------------------------- *)

(* Decode one UTF-8 scalar starting at [i]; [None] for malformed bytes. *)
let utf8_decode s i =
  let len = String.length s in
  let byte k = Char.code s.[k] in
  let cont k = k < len && byte k land 0xC0 = 0x80 in
  let b0 = byte i in
  if b0 < 0x80 then Some (b0, 1)
  else if b0 land 0xE0 = 0xC0 && cont (i + 1) then
    let cp = ((b0 land 0x1F) lsl 6) lor (byte (i + 1) land 0x3F) in
    if cp >= 0x80 then Some (cp, 2) else None
  else if b0 land 0xF0 = 0xE0 && cont (i + 1) && cont (i + 2) then
    let cp =
      ((b0 land 0x0F) lsl 12)
      lor ((byte (i + 1) land 0x3F) lsl 6)
      lor (byte (i + 2) land 0x3F)
    in
    if cp >= 0x800 && not (cp >= 0xD800 && cp <= 0xDFFF) then Some (cp, 3)
    else None
  else if
    b0 land 0xF8 = 0xF0 && cont (i + 1) && cont (i + 2) && cont (i + 3)
  then
    let cp =
      ((b0 land 0x07) lsl 18)
      lor ((byte (i + 1) land 0x3F) lsl 12)
      lor ((byte (i + 2) land 0x3F) lsl 6)
      lor (byte (i + 3) land 0x3F)
    in
    if cp >= 0x10000 && cp <= 0x10FFFF then Some (cp, 4) else None
  else None

let armor_string rng buf ~in_attr s =
  let len = String.length s in
  let plain c =
    match c with
    | '&' -> Buffer.add_string buf "&amp;"
    | '<' -> Buffer.add_string buf "&lt;"
    | '>' -> Buffer.add_string buf "&gt;"
    | '"' when in_attr -> Buffer.add_string buf "&quot;"
    | '\'' when in_attr -> Buffer.add_string buf "&apos;"
    | c -> Buffer.add_char buf c
  in
  let rec walk i =
    if i < len then
      match utf8_decode s i with
      | Some (cp, width) ->
          if Prng.chance rng 1 4 then begin
            if Prng.bool rng then Buffer.add_string buf (Printf.sprintf "&#%d;" cp)
            else Buffer.add_string buf (Printf.sprintf "&#x%X;" cp);
            walk (i + width)
          end
          else begin
            for k = i to i + width - 1 do
              plain s.[k]
            done;
            walk (i + width)
          end
      | None ->
          (* malformed byte: pass through untouched *)
          Buffer.add_char buf s.[i];
          walk (i + 1)
  in
  walk 0

let armor rng tree =
  let buf = Buffer.create 1024 in
  let rec render node =
    match (node : Xmi.Xml.t) with
    | Xmi.Xml.Text s -> armor_string rng buf ~in_attr:false s
    | Xmi.Xml.Elem { tag; attrs; children } ->
        Buffer.add_char buf '<';
        Buffer.add_string buf tag;
        List.iter
          (fun (k, v) ->
            Buffer.add_char buf ' ';
            Buffer.add_string buf k;
            Buffer.add_string buf "=\"";
            armor_string rng buf ~in_attr:true v;
            Buffer.add_char buf '"')
          attrs;
        if children = [] then Buffer.add_string buf "/>"
        else begin
          Buffer.add_char buf '>';
          List.iter render children;
          Buffer.add_string buf "</";
          Buffer.add_string buf tag;
          Buffer.add_char buf '>'
        end
  in
  render tree;
  Buffer.contents buf

(* ---- OCL constraint generation for the differential oracle ---------------- *)

(* Names mentioned anywhere in the scripts: the interesting probe targets
   are names that exist in the base, names the edits introduce or rename
   to, and names that exist nowhere — the pools below mix all three. *)
let script_names script =
  List.filter_map
    (fun (op : Edit.op) ->
      match op with
      | Edit.Add_package { name; _ }
      | Edit.Add_class { name; _ }
      | Edit.Add_interface { name; _ }
      | Edit.Add_attribute { name; _ }
      | Edit.Add_operation { name; _ }
      | Edit.Add_parameter { name; _ }
      | Edit.Add_association { name; _ }
      | Edit.Add_enumeration { name; _ }
      | Edit.Add_constraint { name; _ }
      | Edit.Rename { name; _ } -> Some name
      | _ -> None)
    script

let ocl_metaclasses =
  [ "Class"; "Interface"; "Attribute"; "Operation"; "Package"; "Enumeration";
    "Constraint"; "Element" ]

(* Bodies stress every path the compile/plan/extent layer takes: the three
   planner shapes (both equality orientations, probe inside an outer
   iterator, rhs depending on an outer binding or on [self], guarded
   forAll with a literal guard), shapes the planner must refuse (iterator
   variable on both sides, shadowed classifier, a guard mentioning the
   iterator), plain extent walks, and ill-formed bodies — whose parse
   and evaluation errors must also agree between the cached and naive
   paths. Generated names include the XML-hostile pool entries (quotes,
   '&', spaces), so some bodies are deliberately unparseable. *)
let ocl_constraint rng ~names i =
  let name () = Prng.choose rng names in
  let mc () = Prng.choose rng ocl_metaclasses in
  let lit () = Printf.sprintf "'%s'" (name ()) in
  let cname = Printf.sprintf "c%d" i in
  let template = Prng.int rng 25 in
  let body, context =
    match template with
    | 0 ->
        (Printf.sprintf "%s.allInstances()->exists(x | x.name = %s)" (mc ())
           (lit ()), None)
    | 1 ->
        (Printf.sprintf "%s.allInstances()->exists(x | %s = x.name)" (mc ())
           (lit ()), None)
    | 2 ->
        (Printf.sprintf "%s.allInstances()->select(x | x.name = %s)->size() >= %d"
           (mc ()) (lit ()) (Prng.int rng 3), None)
    | 3 ->
        (Printf.sprintf "Sequence{%s, %s}->forAll(n | %s.allInstances()->exists(x | x.name = n))"
           (lit ()) (lit ()) (mc ()), None)
    | 4 ->
        (Printf.sprintf "%s.allInstances()->forAll(x | x.name.size() >= 0)"
           (mc ()), None)
    | 5 ->
        (* shadowed classifier: the probe must fall back to the fold, which
           errors identically on both paths *)
        let k = mc () in
        (Printf.sprintf "let %s = Sequence{%s} in %s.allInstances()->exists(x | x.name = %s)"
           k (lit ()) k (lit ()), None)
    | 6 ->
        (* iterator variable on both sides: not planable *)
        (Printf.sprintf "%s.allInstances()->select(x | x.name = x.name)->size() = %s.allInstances()->size()"
           (mc ()) (mc ()), None)
    | 7 ->
        (* unbound rhs: errors on a non-empty extent, false on an empty one *)
        (Printf.sprintf "%s.allInstances()->exists(x | x.name = missing%d)"
           (mc ()) (Prng.int rng 3), None)
    | 8 ->
        (Printf.sprintf "Class.allInstances()->exists(c | c.name = self.name)",
         Some (mc ()))
    | 9 ->
        (Printf.sprintf "self.name = %s implies self.name.size() >= 0" (lit ()),
         Some "Class")
    | 10 ->
        (Printf.sprintf "Element.allInstances()->select(x | x.name = %s)->notEmpty()"
           (lit ()), None)
    | 11 ->
        (* the guarded-forAll planner shape, literal guard *)
        (Printf.sprintf
           "%s.allInstances()->forAll(x | Set{%s, %s}->includes(x.name) implies x.name.size() >= 0)"
           (mc ()) (lit ()) (lit ()), None)
    | 12 ->
        (* guarded forAll with a consequent that errors on matched
           elements: the probe must raise exactly what the fold raises *)
        (Printf.sprintf
           "%s.allInstances()->forAll(x | Sequence{%s}->includes(x.name) implies x.nope)"
           (mc ()) (lit ()), None)
    | 13 ->
        (* guard mentions the iterator variable: not planable *)
        (Printf.sprintf
           "%s.allInstances()->forAll(x | Set{x.name, %s}->includes(x.name) implies x.name.size() >= 0)"
           (mc ()) (lit ()), None)
    | 14 ->
        (Printf.sprintf "%s.allInstances()->exists(x | x.name = %s.concat('%d'))"
           (mc ()) (lit ()) (Prng.int rng 2), None)
    (* 15.. exist for the [vm] oracle: together with 0-14 they reach every
       bytecode opcode — if/not/neg/xor, iterate, every iterator form, the
       type ops, string and numeric calls, Bag literals, and the arithmetic
       operators — so compiled and tree-walked evaluation are compared over
       the whole instruction set, not just the planner shapes. *)
    | 15 ->
        (Printf.sprintf
           "(if not (%s.allInstances()->isEmpty()) then - 1 < 0 else 1 < 0 \
            endif) xor %d = 2"
           (mc ()) (Prng.int rng 3), None)
    | 16 ->
        (Printf.sprintf
           "%s.allInstances()->iterate(x; acc : Integer = 0 | acc + 1) = \
            %s.allInstances()->size() and (3 * 4 + 10) mod 5 = 2 and 7 div 2 \
            = 3 and 9 - 2 = 7"
           (mc ()) (mc ()), None)
    | 17 ->
        (Printf.sprintf
           "%s.allInstances()->sortedBy(x | x.name)->collect(x | \
            x.name.size())->sum() >= 0"
           (mc ()), None)
    | 18 ->
        (Printf.sprintf
           "%s.allInstances()->isUnique(x | x.name) or \
            %s.allInstances()->one(x | x.name = %s) or \
            %s.allInstances()->reject(x | true)->isEmpty()"
           (mc ()) (mc ()) (lit ()) (mc ()), None)
    | 19 ->
        (Printf.sprintf
           "%s.allInstances()->select(x | x.oclIsKindOf(Class))->forAll(x | \
            x.oclAsType(Element).oclIsTypeOf(Class) or true) and \
            %s.allInstances()->any(x | x.name = %s).oclIsUndefined() = \
            %s.allInstances()->select(x | x.name = %s)->isEmpty()"
           (mc ()) (mc ()) (lit ()) (mc ()) (lit ()), None)
    | 20 ->
        (Printf.sprintf
           "Sequence{Sequence{1, 2}, Sequence{%d}}->flatten()->reverse()->at(1) \
            >= 0 and Set{1, 2}->union(Set{3})->including(%d)->size() >= 3"
           (Prng.int rng 4) (Prng.int rng 6), None)
    | 21 ->
        (Printf.sprintf
           "%s.toUpper().toLower().size() >= 0 and (0 - %d).abs() >= 0 and \
            (2.5).floor() = 2 and %s.substring(1, 1).size() = 1"
           (lit ()) (Prng.int rng 5) (lit ()), None)
    | 22 ->
        (Printf.sprintf
           "%s.allInstances()->forAll(x, y | x.name = y.name implies y.name = \
            x.name) and Sequence{1, 2, 3}->iterate(n; a : Integer = 1 | a * \
            n) = 6"
           (mc ()), None)
    | 23 ->
        (Printf.sprintf
           "Bag{1, 2, 2}->count(2) = 2 and Bag{1, %d}->excludes(9) and \
            Sequence{1, %d}->max() >= 1 and Sequence{2}->min() = 2"
           (Prng.int rng 4) (Prng.int rng 4), None)
    | _ ->
        (Printf.sprintf
           "%s.allInstances()->closure(x | Sequence{})->size() >= 0 and \
            Sequence{1}->prepend(0)->append(%d)->last() >= 0 and \
            Sequence{5, 6}->first() = 5"
           (mc ()) (Prng.int rng 7), None)
  in
  Ocl.Constraint_.make ?context ~name:cname body

let ocl_constraints rng ~base ~edits =
  let names =
    match script_names base @ script_names edits with
    | [] -> [ "orphan" ]
    | ns -> "NoSuchName" :: ns
  in
  List.init (Prng.range rng 4 8) (ocl_constraint rng ~names)
