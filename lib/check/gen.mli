(** Random case generators for the fuzz harness.

    All generators draw exclusively from a {!Prng.t}, so a case is fully
    determined by its seed. Strings come from pools that deliberately
    include dotted names, non-ASCII UTF-8 (accents, CJK, an emoji),
    XML-hostile characters ([&], [<], quotes) and embedded whitespace —
    the inputs the XMI layer and the name indexes historically got wrong. *)

val base_script : Prng.t -> Edit.script
(** A constructive script that, applied to a fresh model, yields a
    well-formed base: unique (suffix-numbered) names, generalizations only
    from later to earlier classes, abstract operations only on interfaces
    or abstract classes. Any sublist of a base script still yields a
    well-formed model, which is what makes greedy script shrinking sound
    for the oracles that require a clean base. *)

val edit_script : Prng.t -> base:Edit.script -> Edit.script
(** An arbitrary edit script over the slots of [base] (plus its own
    creations): constructive ops mixed with deletions, renames to
    colliding/empty/dotted names, cyclic generalizations, duplicate
    enumeration literals — edits that may break well-formedness, which is
    exactly what the scoped-WF and diff oracles must track faithfully. *)

(** A weaving case: a small program plus concrete aspects with pairwise
    distinct sequence numbers (the paper's transformation order). *)
type weave_case = {
  program : Code.Junit.program;
  aspects : Aspects.Generator.generated list;
}

val weave_case : Prng.t -> weave_case

val pp_weave_case : Format.formatter -> weave_case -> unit

val random_pointcut : Prng.t -> Aspects.Pointcut.t
(** One random pointcut over the generator's pattern vocabulary: every
    leaf kind, [And]/[Or] combinations, and [Not] over each leaf. Drives
    the matcher differential of the [vm] oracle. *)

(** A runnable interpreter case for the [vm] oracle: a terminating
    program (counted loops, recursion only on an explicitly decreasing
    argument, inter-method calls only to strictly-later methods) whose
    statement templates collectively reach every compiled node kind of
    {!Interp.Machine}. *)
type interp_case = {
  ip_program : Code.Junit.program;
  ip_entry : string * string;  (** class, method *)
  ip_args : Interp.Rvalue.t list;
  ip_faults : (string * string) list;
}

val interp_case : Prng.t -> interp_case

val runnable_aspects : Prng.t -> Aspects.Generator.generated list
(** Aspects whose advice bodies execute end to end (they log through the
    [Logger] builtin rather than calling unresolvable helpers), for
    differentials that run woven programs. *)

val program_edit : Prng.t -> Code.Junit.program -> Code.Junit.program
(** One random structural edit: replace a method body, add/remove a
    method, add a field, add/remove/rename a class. Declarations the edit
    does not touch are returned physically unchanged — the sharing the
    incremental weaver's watermark keys on — and degenerate draws fall
    back to the identity. Drives the [weave-inc] oracle. *)

val armor : Prng.t -> Xmi.Xml.t -> string
(** Renders an XML tree with a random subset of the characters in text and
    attribute values written as numeric character references
    ([&#233;]/[&#xE9;]), the rest escaped conventionally. Parsing the
    armored rendering must yield the same tree as parsing the plain
    rendering — the metamorphic relation that catches character-reference
    decoding bugs. *)

val ocl_constraints :
  Prng.t -> base:Edit.script -> edits:Edit.script -> Ocl.Constraint_.t list
(** Random OCL constraints for the [ocl] differential oracle: planner
    shapes (both equality orientations, probes under outer iterators and
    contexts), shapes the planner must refuse (shadowed classifiers,
    iterator-dependent right-hand sides), plain extent walks, and
    ill-formed bodies. Probe targets are drawn from the names the scripts
    mention plus a never-existing one. *)
