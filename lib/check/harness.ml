type failure = {
  oracle : string;
  seed : int64;
  case : int;
  message : string;
  repro : string;
  shrunk_ops : int;
}

type stats = { cases : int; elapsed : float }

(* Stable, platform-independent name salt (Hashtbl.hash is not guaranteed
   stable across versions; a seed derived from it would not replay). *)
let salt_of_name name =
  let h = ref 0L in
  String.iter
    (fun c -> h := Int64.add (Int64.mul !h 131L) (Int64.of_int (Char.code c)))
    name;
  Int64.to_int !h

let case_seed ~oracle ~seed i = Prng.mix (Prng.mix seed (salt_of_name oracle)) i

(* Auxiliary stream: a constant offset from the case seed, so a check's
   internal randomness replays identically during shrinking. *)
let aux_of cs = Prng.mix cs 0x5EED

(* An oracle that raises is itself a finding (checkers must be total);
   capture it as a failure with its own tag so shrinking cannot drift
   between a crash and an ordinary relation mismatch. *)
let guard name f =
  try f () with
  | (Stack_overflow | Out_of_memory) as e -> raise e
  | exn ->
      Error (Printf.sprintf "[%s-crash] uncaught exception: %s" name
               (Printexc.to_string exn))

let run ?(progress = fun _ -> ()) (oracle : Oracle.t) ~seed ~count =
  Obs.span ~cat:"check" "check.oracle"
    ~args:[ ("oracle", Obs.Event.V_string oracle.Oracle.name) ]
  @@ fun () ->
  let labels = [ ("oracle", oracle.Oracle.name) ] in
  (* wall clock, not [Sys.time]: oracles run on parallel domains and
     process CPU time would charge every domain's work to each of them *)
  let t0 = Unix.gettimeofday () in
  let stats i =
    Obs.incr "check.cases" labels ~by:(float_of_int i);
    { cases = i; elapsed = Unix.gettimeofday () -. t0 }
  in
  let fail ~case ~message ~repro ~shrunk_ops =
    Obs.incr "check.failures" labels;
    if Obs.enabled () then
      Obs.event ~cat:"check" "check.failure"
        ~args:
          [
            ("oracle", Obs.Event.V_string oracle.Oracle.name);
            ("case", Obs.Event.V_int case);
            ("shrunk_ops", Obs.Event.V_int shrunk_ops);
          ];
    { oracle = oracle.Oracle.name; seed; case; message; repro; shrunk_ops }
  in
  match oracle.Oracle.check with
  | Oracle.Model_check check ->
      let rec cases i =
        if i >= count then Ok (stats count)
        else begin
          if i > 0 && i mod 500 = 0 then progress i;
          let cs = case_seed ~oracle:oracle.Oracle.name ~seed i in
          let rng = Prng.make cs in
          let base = Gen.base_script rng in
          let edits = Gen.edit_script rng ~base in
          let aux = aux_of cs in
          match guard oracle.Oracle.name (fun () -> check ~aux ~base ~edits) with
          | Ok () -> cases (i + 1)
          | Error message ->
              let tag = Oracle.tag_of message in
              let fails_like ~base ~edits =
                Obs.incr "check.shrink.attempts" labels;
                match
                  guard oracle.Oracle.name (fun () -> check ~aux ~base ~edits)
                with
                | Ok () -> false
                | Error m -> Oracle.tag_of m = tag
              in
              (* shrink the edit script first (it usually carries the bug),
                 then the base under the shrunk edits *)
              let edits =
                Shrink.list ~still_fails:(fun e -> fails_like ~base ~edits:e) edits
              in
              let base =
                Shrink.list ~still_fails:(fun b -> fails_like ~base:b ~edits) base
              in
              let message =
                match
                  guard oracle.Oracle.name (fun () -> check ~aux ~base ~edits)
                with
                | Error m -> m
                | Ok () -> message
              in
              let repro =
                Printf.sprintf "base script:\n%sedit script:\n%s"
                  (Edit.to_string base) (Edit.to_string edits)
              in
              Error
                ( fail ~case:i ~message ~repro
                    ~shrunk_ops:(List.length base + List.length edits),
                  stats (i + 1) )
        end
      in
      cases 0
  | Oracle.Weave_check check ->
      let rec cases i =
        if i >= count then Ok (stats count)
        else begin
          if i > 0 && i mod 500 = 0 then progress i;
          let cs = case_seed ~oracle:oracle.Oracle.name ~seed i in
          let wc = Gen.weave_case (Prng.make cs) in
          let aux = aux_of cs in
          match guard oracle.Oracle.name (fun () -> check ~aux wc) with
          | Ok () -> cases (i + 1)
          | Error message ->
              let tag = Oracle.tag_of message in
              (* shrink the aspect list; the program is small already *)
              let aspects =
                Shrink.list
                  ~still_fails:(fun aspects ->
                    Obs.incr "check.shrink.attempts" labels;
                    match
                      guard oracle.Oracle.name (fun () ->
                          check ~aux { wc with Gen.aspects })
                    with
                    | Ok () -> false
                    | Error m -> Oracle.tag_of m = tag)
                  wc.Gen.aspects
              in
              let wc = { wc with Gen.aspects } in
              let message =
                match guard oracle.Oracle.name (fun () -> check ~aux wc) with
                | Error m -> m
                | Ok () -> message
              in
              let repro = Format.asprintf "%a" Gen.pp_weave_case wc in
              Error
                ( fail ~case:i ~message ~repro
                    ~shrunk_ops:(List.length aspects),
                  stats (i + 1) )
        end
      in
      cases 0

let run_all ?(progress = fun _ _ -> ()) ~seed ~count oracles =
  List.map
    (fun (o : Oracle.t) ->
      (o.Oracle.name, run ~progress:(progress o.Oracle.name) o ~seed ~count))
    oracles

let pp_failure ppf f =
  Format.fprintf ppf
    "oracle %s failed at case %d (seed %Ld)@.%s@.reproducer (%d ops):@.%s"
    f.oracle f.case f.seed f.message f.shrunk_ops f.repro
