(** The fuzz driver: generate, check, shrink, report.

    Case [i] of a run with seed [s] is generated from
    [Prng.mix (Prng.mix s (hash of the oracle name)) i], so any failure is
    replayable from [(oracle, seed, index)] alone — the triple every report
    carries. Auxiliary randomness inside a check (armoring choices, shuffle
    orders) comes from a further derived constant, so re-running a case
    during shrinking is deterministic. *)

type failure = {
  oracle : string;
  seed : int64;  (** the run seed, as given *)
  case : int;  (** index of the failing case within the run *)
  message : string;  (** tagged failure message from the oracle *)
  repro : string;  (** shrunk reproducer, pretty-printed *)
  shrunk_ops : int;  (** size of the shrunk reproducer, in ops *)
}

type stats = {
  cases : int;  (** cases executed (including the failing one, if any) *)
  elapsed : float;  (** seconds of wall-clock time *)
}

val run :
  ?progress:(int -> unit) ->
  Oracle.t ->
  seed:int64 ->
  count:int ->
  (stats, failure * stats) result
(** Runs [count] cases of one oracle. Stops at the first failure, shrinks
    its scripts greedily (edit script first, then base script) while
    requiring the same failure tag, and returns the reproducer.
    [progress] is called every 500 cases. *)

val run_all :
  ?progress:(string -> int -> unit) ->
  seed:int64 ->
  count:int ->
  Oracle.t list ->
  (string * (stats, failure * stats) result) list
(** [run] over each oracle in turn; never raises. *)

val pp_failure : Format.formatter -> failure -> unit
