type check =
  | Model_check of
      (aux:int64 -> base:Edit.script -> edits:Edit.script -> (unit, string) result)
  | Weave_check of (aux:int64 -> Gen.weave_case -> (unit, string) result)

type t = { name : string; check : check }

let tag_of msg =
  if String.length msg > 0 && msg.[0] = '[' then
    match String.index_opt msg ']' with
    | Some i -> String.sub msg 0 (i + 1)
    | None -> msg
  else msg

let build ~base ~edits =
  let base_m, slots =
    Edit.apply_with_slots (Mof.Model.create ~name:"fuzz") base
  in
  let m' = Edit.apply_from base_m ~slots edits in
  (base_m, m')

let pp_violations ppf vs =
  List.iter (fun v -> Format.fprintf ppf "@.  %a" Mof.Wellformed.pp_violation v) vs

(* ---- R1: journal diff vs full scan -------------------------------------- *)

let check_diff ~aux:_ ~base ~edits =
  let base_m, m' = build ~base ~edits in
  let fast = Mof.Diff.compute ~old_model:base_m ~new_model:m' in
  let scan = Mof.Diff.compute_scan ~old_model:base_m ~new_model:m' in
  let eq = Mof.Id.Set.equal in
  if
    eq fast.Mof.Diff.added scan.Mof.Diff.added
    && eq fast.Mof.Diff.removed scan.Mof.Diff.removed
    && eq fast.Mof.Diff.modified scan.Mof.Diff.modified
  then Ok ()
  else
    Error
      (Format.asprintf "[diff] journal replay %a disagrees with scan %a"
         Mof.Diff.pp fast Mof.Diff.pp scan)

(* ---- R2: scoped well-formedness vs full check --------------------------- *)

let check_wf ~aux:_ ~base ~edits =
  let base_m, m' = build ~base ~edits in
  match Mof.Wellformed.check base_m with
  | _ :: _ as vs ->
      (* the generator promises clean bases; a violation here is a
         generator bug, not a checker bug *)
      Error (Format.asprintf "[gen] base model not well-formed:%a" pp_violations vs)
  | [] ->
      let touched =
        Mof.Diff.touched (Mof.Diff.compute_scan ~old_model:base_m ~new_model:m')
      in
      let scoped = Mof.Wellformed.check_touched m' ~touched in
      let full = Mof.Wellformed.check m' in
      if scoped = full then Ok ()
      else
        Error
          (Format.asprintf
             "[wf] scoped check disagrees with full check@.scoped:%a@.full:%a"
             pp_violations scoped pp_violations full)

(* ---- R3: XMI round trip and char-ref armoring ---------------------------- *)

let check_xmi ~aux ~base ~edits =
  let _, m' = build ~base ~edits in
  let s1 = Xmi.Export.to_string m' in
  match Xmi.Import.from_string s1 with
  | exception Xmi.Xml_parser.Xml_error (msg, pos) ->
      Error (Printf.sprintf "[xmi] reimport: parse error at %d: %s" pos msg)
  | exception Xmi.Import.Import_error msg ->
      Error (Printf.sprintf "[xmi] reimport failed: %s" msg)
  | m2 -> (
      let s2 = Xmi.Export.to_string m2 in
      if not (String.equal s1 s2) then
        Error "[xmi] second export is not byte-identical to the first"
      else if not (Mof.Model.equal m' m2) then
        Error "[xmi] reimported model differs structurally"
      else
        let tree = Xmi.Export.to_xml m' in
        let armored = Gen.armor (Prng.make aux) tree in
        match Xmi.Xml_parser.parse armored with
        | exception Xmi.Xml_parser.Xml_error (msg, pos) ->
            Error
              (Printf.sprintf "[xmi] armored rendering: parse error at %d: %s"
                 pos msg)
        | t_armored ->
            let t_plain = Xmi.Xml_parser.parse s1 in
            if Xmi.Xml.equal t_armored t_plain then Ok ()
            else
              Error
                "[xmi] parsing the char-ref-armored rendering differs from \
                 parsing the plain one")

(* ---- R4: indexes, extents, and qualified-name lookup vs fresh scans ------ *)

module Sm = Map.Make (String)
module Im = Mof.Id.Map

let check_query ~aux:_ ~base ~edits =
  let _, m' = build ~base ~edits in
  let elems = Mof.Model.elements m' in
  let bucket m key id =
    Sm.update key
      (fun s -> Some (Mof.Id.Set.add id (Option.value ~default:Mof.Id.Set.empty s)))
      m
  in
  let ibucket m key id =
    Im.update key
      (fun s -> Some (Mof.Id.Set.add id (Option.value ~default:Mof.Id.Set.empty s)))
      m
  in
  let by_kind, by_name, by_st, owned, refs =
    List.fold_left
      (fun (k, n, s, o, r) (e : Mof.Element.t) ->
        let k = bucket k (Mof.Kind.name e.kind) e.id in
        let n = bucket n e.name e.id in
        let s =
          List.fold_left (fun s st -> bucket s st e.id) s e.stereotypes
        in
        let o =
          match e.owner with Some ow -> ibucket o ow e.id | None -> o
        in
        let r =
          List.fold_left (fun r t -> ibucket r t e.id) r (Mof.Kind.refs e.kind)
        in
        (k, n, s, o, r))
      (Sm.empty, Sm.empty, Sm.empty, Im.empty, Im.empty)
      elems
  in
  let fail = ref None in
  let record msg = if !fail = None then fail := Some msg in
  let compare_sm label lookup expected =
    Sm.iter
      (fun key want ->
        let got = lookup m' key in
        if not (Mof.Id.Set.equal got want) then
          record
            (Printf.sprintf "[query] %s index disagrees with scan at key %S"
               label key))
      expected
  in
  let compare_im label lookup expected =
    Im.iter
      (fun key want ->
        let got = lookup m' key in
        if not (Mof.Id.Set.equal got want) then
          record
            (Printf.sprintf "[query] %s index disagrees with scan at id %s"
               label (Mof.Id.to_string key)))
      expected
  in
  compare_sm "by_kind" Mof.Model.by_kind by_kind;
  compare_sm "by_name" Mof.Model.by_name by_name;
  compare_sm "by_stereotype" Mof.Model.by_stereotype by_st;
  compare_im "owned_by" Mof.Model.owned_by owned;
  compare_im "referrers" Mof.Model.referrers refs;
  (* classifier extents: Meta.all_instances vs the scan-built extent *)
  Sm.iter
    (fun kname want ->
      match Ocl.Meta.all_instances m' kname with
      | None -> record (Printf.sprintf "[query] no extent for metaclass %S" kname)
      | Some v ->
          let expect =
            Ocl.Value.set
              (List.map (fun id -> Ocl.Value.V_elem id) (Mof.Id.Set.elements want))
          in
          if not (Ocl.Value.equal v expect) then
            record
              (Printf.sprintf "[query] allInstances(%s) disagrees with scan"
                 kname))
    by_kind;
  (match Ocl.Meta.all_instances m' "Element" with
  | None -> record "[query] no extent for Element"
  | Some v ->
      let expect =
        Ocl.Value.set
          (List.map (fun (e : Mof.Element.t) -> Ocl.Value.V_elem e.id) elems)
      in
      if not (Ocl.Value.equal v expect) then
        record "[query] allInstances(Element) disagrees with scan");
  (* a from-scratch rebuild of the store must be indistinguishable *)
  (match
     Mof.Model.of_elements ~root:(Mof.Model.root m') ~next:(Mof.Model.next m')
       elems
   with
  | exception Invalid_argument msg ->
      record (Printf.sprintf "[query] of_elements rebuild rejected: %s" msg)
  | rebuilt ->
      if not (Mof.Model.equal m' rebuilt) then
        record "[query] of_elements rebuild differs from original");
  (* qualified-name lookup: indexed resolution vs the scan-based spec —
     among all elements sharing the printed qualified name, the one with
     the deepest owner chain wins, ties to the lowest id *)
  let by_qname =
    List.fold_left
      (fun m (e : Mof.Element.t) ->
        bucket m (Mof.Query.qualified_name m' e.id) e.id)
      Sm.empty elems
  in
  Sm.iter
    (fun qname ids ->
      let depth id = List.length (Mof.Query.owner_chain m' id) in
      let best =
        List.fold_left
          (fun acc id ->
            match acc with
            | None -> Some id
            | Some b ->
                let db = depth b and di = depth id in
                if di > db then Some id
                else if di = db && Mof.Id.compare id b < 0 then Some id
                else acc)
          None
          (Mof.Id.Set.elements ids)
      in
      match (Mof.Query.find_by_qualified_name m' qname, best) with
      | Some e, Some want when Mof.Id.equal e.Mof.Element.id want -> ()
      | got, _ ->
          record
            (Printf.sprintf
               "[query] find_by_qualified_name %S resolved to %s, scan spec \
                says %s"
               qname
               (match got with
               | Some e -> Mof.Id.to_string e.Mof.Element.id
               | None -> "none")
               (match best with
               | Some id -> Mof.Id.to_string id
               | None -> "none")))
    by_qname;
  match !fail with None -> Ok () | Some msg -> Error msg

(* ---- R5: cached/planned OCL evaluation vs cold naive evaluation ---------- *)

(* Troya-style metamorphic guard on the OCL execution cache: for random
   models and random constraints, [Constraint_.check] (memoized parse,
   planner probes, watermark-validated extents) must agree exactly with
   [Constraint_.check_naive] (fresh parse, raw AST, recomputed extents).
   The base model is checked first and the edited model second, so the
   extent cache is warm with base-model state when the edited model
   arrives — precisely the handoff a broken invalidation gets wrong. *)

let check_ocl ~aux ~base ~edits =
  let base_m, m' = build ~base ~edits in
  let rng = Prng.make aux in
  let constraints = Gen.ocl_constraints rng ~base ~edits in
  let pp_outcome = Ocl.Constraint_.pp_outcome in
  let compare_on which m (c : Ocl.Constraint_.t) =
    let cached = Ocl.Constraint_.check m c in
    let naive = Ocl.Constraint_.check_naive m c in
    if cached = naive then None
    else
      Some
        (Format.asprintf
           "[ocl] cached/planned check disagrees with naive eval on the %s \
            model@.constraint %s: %s@.  cached: %a@.  naive:  %a"
           which c.Ocl.Constraint_.name c.Ocl.Constraint_.body pp_outcome
           cached pp_outcome naive)
  in
  let rec first_mismatch = function
    | [] -> Ok ()
    | c :: rest -> (
        match compare_on "base" base_m c with
        | Some msg -> Error msg
        | None -> (
            match compare_on "edited" m' c with
            | Some msg -> Error msg
            | None -> first_mismatch rest))
  in
  first_mismatch constraints

(* ---- R6: weaving order is precedence, not list order --------------------- *)

let check_weave ~aux (wc : Gen.weave_case) =
  let rng = Prng.make aux in
  let r1 = Weaver.Weave.weave wc.aspects wc.program in
  let shuffled = Prng.shuffle rng wc.aspects in
  let r2 = Weaver.Weave.weave shuffled wc.program in
  if not (Code.Junit.equal r1.Weaver.Weave.program r2.Weaver.Weave.program)
  then Error "[weave] woven program changed under aspect-list shuffle"
  else if r1.Weaver.Weave.applications <> r2.Weaver.Weave.applications then
    Error "[weave] application report changed under aspect-list shuffle"
  else
    let ordered = Weaver.Precedence.order wc.aspects in
    let manual =
      List.fold_left
        (fun prog (g : Aspects.Generator.generated) ->
          (Weaver.Weave.weave_one g.Aspects.Generator.aspect prog)
            .Weaver.Weave.program)
        wc.program (List.rev ordered)
    in
    if Code.Junit.equal r1.Weaver.Weave.program manual then Ok ()
    else
      Error
        "[weave] weave differs from the weave_one fold over reverse \
         precedence order"

(* ---- R7: batch-parallel ≡ per-item sequential --------------------------- *)

(* Pools are cached per size, so a long differential run drives every case
   through the *same* worker domains — exactly the situation in which leaked
   domain-local state (parse cache, extent cache, span counters) between
   batches would surface as a divergence. *)
let pools : (int, Par.Pool.t) Hashtbl.t = Hashtbl.create 4

let pool jobs =
  match Hashtbl.find_opt pools jobs with
  | Some p -> p
  | None ->
      let p = Par.Pool.create ~jobs () in
      Hashtbl.add pools jobs p;
      p

(* Merged counter totals of a drained shard, minus the rows whose value is
   per-domain cache warmth (which worker ran which item is a scheduling
   accident, so parse/extent hit-miss splits are outside the contract). *)
let counter_totals (shard : Obs.Metric.shard) =
  List.filter_map
    (fun ((name, labels), cell) ->
      match (cell : Obs.Metric.cell) with
      | Obs.Metric.Counter { total; _ } ->
          let warmth =
            List.exists
              (fun p ->
                String.length name >= String.length p
                && String.sub name 0 (String.length p) = p)
              [ "ocl.parse."; "ocl.extent." ]
          in
          if warmth then None else Some ((name, labels), total)
      | _ -> None)
    shard
  |> List.sort compare

let pp_totals ppf totals =
  List.iter
    (fun ((name, _), total) -> Format.fprintf ppf "@.  %s = %g" name total)
    totals

let same_outcome a b =
  match ((a : Par.Batch.outcome), (b : Par.Batch.outcome)) with
  | Ok p, Ok q -> Mof.Model.equal (Core.Project.model p) (Core.Project.model q)
  | Error e, Error f ->
      Core.Pipeline.error_to_string e = Core.Pipeline.error_to_string f
  | _ -> false

let outcome_tag = function
  | Ok _ -> "ok"
  | Error e -> "error: " ^ Core.Pipeline.error_to_string e

let check_par ~aux ~base ~edits =
  let base_m, slots =
    Edit.apply_with_slots (Mof.Model.create ~name:"fuzz") base
  in
  let m' = Edit.apply_from base_m ~slots edits in
  let half =
    let n = List.length edits / 2 in
    Edit.apply_from base_m ~slots (List.filteri (fun i _ -> i < n) edits)
  in
  let models = [ base_m; m'; half ] in
  let steps =
    let logging =
      Par.Batch.step ~concern:"logging"
        ~params:
          [ ("targets", Transform.Params.V_list [ Transform.Params.V_string "*" ]) ]
    in
    let tx names =
      Par.Batch.step ~concern:"transactions"
        ~params:
          [
            ( "transactional",
              Transform.Params.V_list
                (List.map (fun n -> Transform.Params.V_ident n) names) );
          ]
    in
    let classes =
      List.map (fun c -> c.Mof.Element.name) (Mof.Query.classes m')
    in
    let some_class =
      match classes with [] -> "NoSuchClass" | c :: _ -> c
    in
    match Int64.to_int (Int64.logand aux 0x3L) with
    | 0 -> [ logging ]
    | 1 -> [ tx [ "NoSuchClass" ] ] (* poisoned: precondition must fail *)
    | 2 -> [ logging; tx [ some_class ] ]
    | _ -> [ tx [ some_class ]; logging ]
  in
  (* Window the metric registry so the comparison sees only what the two
     batch runs emit; whatever was accumulating before is put back after. *)
  let was_on = Obs.Metric.enabled () in
  let outer = Obs.Metric.drain () in
  Obs.Metric.enable ();
  Fun.protect
    ~finally:(fun () ->
      if not was_on then Obs.Metric.disable ();
      Obs.Metric.absorb outer)
  @@ fun () ->
  let seq = Par.Batch.refine_all_traced ~steps models in
  let seq_totals = counter_totals (Obs.Metric.drain ()) in
  let par2 = Par.Batch.refine_all_traced ~pool:(pool 2) ~steps models in
  let par2_totals = counter_totals (Obs.Metric.drain ()) in
  let par3 = Par.Batch.refine_all ~pool:(pool 3) ~steps models in
  ignore (Obs.Metric.drain ());
  let rec first_mismatch i = function
    | [], [] -> Ok ()
    | (o_seq, ev_seq) :: rest_seq, (o_par, ev_par) :: rest_par ->
        if not (same_outcome o_seq o_par) then
          Error
            (Printf.sprintf
               "[par] item %d: sequential %s but 2-domain pool %s" i
               (outcome_tag o_seq) (outcome_tag o_par))
        else if
          List.map Obs.Event.normalize ev_seq
          <> List.map Obs.Event.normalize ev_par
        then
          Error
            (Printf.sprintf
               "[par] item %d: normalized trace differs between sequential \
                and 2-domain runs (%d vs %d events)"
               i (List.length ev_seq) (List.length ev_par))
        else first_mismatch (i + 1) (rest_seq, rest_par)
    | _ ->
        Error
          (Printf.sprintf "[par] batch length changed: %d items in, %d out"
             (List.length seq) (List.length par2))
  in
  match first_mismatch 0 (seq, par2) with
  | Error _ as e -> e
  | Ok () ->
      if
        not
          (List.for_all2
             (fun (o_seq, _) o_par -> same_outcome o_seq o_par)
             seq par3)
      then Error "[par] 3-domain pool outcomes diverge from sequential"
      else if seq_totals <> par2_totals then
        Error
          (Format.asprintf
             "[par] merged counters differ@.sequential:%a@.2-domain:%a"
             pp_totals seq_totals pp_totals par2_totals)
      else Ok ()

let all =
  [
    { name = "diff"; check = Model_check check_diff };
    { name = "wf"; check = Model_check check_wf };
    { name = "xmi"; check = Model_check check_xmi };
    { name = "query"; check = Model_check check_query };
    { name = "ocl"; check = Model_check check_ocl };
    { name = "weave"; check = Weave_check check_weave };
    { name = "par"; check = Model_check check_par };
  ]

let find name = List.find_opt (fun o -> o.name = name) all
