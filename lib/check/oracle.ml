type check =
  | Model_check of
      (aux:int64 -> base:Edit.script -> edits:Edit.script -> (unit, string) result)
  | Weave_check of (aux:int64 -> Gen.weave_case -> (unit, string) result)

type t = { name : string; check : check }

let tag_of msg =
  if String.length msg > 0 && msg.[0] = '[' then
    match String.index_opt msg ']' with
    | Some i -> String.sub msg 0 (i + 1)
    | None -> msg
  else msg

let build ~base ~edits =
  let base_m, slots =
    Edit.apply_with_slots (Mof.Model.create ~name:"fuzz") base
  in
  let m' = Edit.apply_from base_m ~slots edits in
  (base_m, m')

let pp_violations ppf vs =
  List.iter (fun v -> Format.fprintf ppf "@.  %a" Mof.Wellformed.pp_violation v) vs

(* ---- R1: journal diff vs full scan -------------------------------------- *)

let check_diff ~aux:_ ~base ~edits =
  let base_m, m' = build ~base ~edits in
  let fast = Mof.Diff.compute ~old_model:base_m ~new_model:m' in
  let scan = Mof.Diff.compute_scan ~old_model:base_m ~new_model:m' in
  let eq = Mof.Id.Set.equal in
  if
    eq fast.Mof.Diff.added scan.Mof.Diff.added
    && eq fast.Mof.Diff.removed scan.Mof.Diff.removed
    && eq fast.Mof.Diff.modified scan.Mof.Diff.modified
  then Ok ()
  else
    Error
      (Format.asprintf "[diff] journal replay %a disagrees with scan %a"
         Mof.Diff.pp fast Mof.Diff.pp scan)

(* ---- R2: scoped well-formedness vs full check --------------------------- *)

let check_wf ~aux:_ ~base ~edits =
  let base_m, m' = build ~base ~edits in
  match Mof.Wellformed.check base_m with
  | _ :: _ as vs ->
      (* the generator promises clean bases; a violation here is a
         generator bug, not a checker bug *)
      Error (Format.asprintf "[gen] base model not well-formed:%a" pp_violations vs)
  | [] ->
      let touched =
        Mof.Diff.touched (Mof.Diff.compute_scan ~old_model:base_m ~new_model:m')
      in
      let scoped = Mof.Wellformed.check_touched m' ~touched in
      let full = Mof.Wellformed.check m' in
      if scoped = full then Ok ()
      else
        Error
          (Format.asprintf
             "[wf] scoped check disagrees with full check@.scoped:%a@.full:%a"
             pp_violations scoped pp_violations full)

(* ---- R3: XMI round trip and char-ref armoring ---------------------------- *)

let check_xmi ~aux ~base ~edits =
  let _, m' = build ~base ~edits in
  let s1 = Xmi.Export.to_string m' in
  match Xmi.Import.from_string s1 with
  | exception Xmi.Xml_parser.Xml_error (msg, pos) ->
      Error (Printf.sprintf "[xmi] reimport: parse error at %d: %s" pos msg)
  | exception Xmi.Import.Import_error msg ->
      Error (Printf.sprintf "[xmi] reimport failed: %s" msg)
  | m2 -> (
      let s2 = Xmi.Export.to_string m2 in
      if not (String.equal s1 s2) then
        Error "[xmi] second export is not byte-identical to the first"
      else if not (Mof.Model.equal m' m2) then
        Error "[xmi] reimported model differs structurally"
      else
        let tree = Xmi.Export.to_xml m' in
        let armored = Gen.armor (Prng.make aux) tree in
        match Xmi.Xml_parser.parse armored with
        | exception Xmi.Xml_parser.Xml_error (msg, pos) ->
            Error
              (Printf.sprintf "[xmi] armored rendering: parse error at %d: %s"
                 pos msg)
        | t_armored ->
            let t_plain = Xmi.Xml_parser.parse s1 in
            if Xmi.Xml.equal t_armored t_plain then Ok ()
            else
              Error
                "[xmi] parsing the char-ref-armored rendering differs from \
                 parsing the plain one")

(* ---- R4: indexes, extents, and qualified-name lookup vs fresh scans ------ *)

module Sm = Map.Make (String)
module Im = Mof.Id.Map

let check_query ~aux:_ ~base ~edits =
  let _, m' = build ~base ~edits in
  let elems = Mof.Model.elements m' in
  let bucket m key id =
    Sm.update key
      (fun s -> Some (Mof.Id.Set.add id (Option.value ~default:Mof.Id.Set.empty s)))
      m
  in
  let ibucket m key id =
    Im.update key
      (fun s -> Some (Mof.Id.Set.add id (Option.value ~default:Mof.Id.Set.empty s)))
      m
  in
  let by_kind, by_name, by_st, owned, refs =
    List.fold_left
      (fun (k, n, s, o, r) (e : Mof.Element.t) ->
        let k = bucket k (Mof.Kind.name e.kind) e.id in
        let n = bucket n e.name e.id in
        let s =
          List.fold_left (fun s st -> bucket s st e.id) s e.stereotypes
        in
        let o =
          match e.owner with Some ow -> ibucket o ow e.id | None -> o
        in
        let r =
          List.fold_left (fun r t -> ibucket r t e.id) r (Mof.Kind.refs e.kind)
        in
        (k, n, s, o, r))
      (Sm.empty, Sm.empty, Sm.empty, Im.empty, Im.empty)
      elems
  in
  let fail = ref None in
  let record msg = if !fail = None then fail := Some msg in
  let compare_sm label lookup expected =
    Sm.iter
      (fun key want ->
        let got = lookup m' key in
        if not (Mof.Id.Set.equal got want) then
          record
            (Printf.sprintf "[query] %s index disagrees with scan at key %S"
               label key))
      expected
  in
  let compare_im label lookup expected =
    Im.iter
      (fun key want ->
        let got = lookup m' key in
        if not (Mof.Id.Set.equal got want) then
          record
            (Printf.sprintf "[query] %s index disagrees with scan at id %s"
               label (Mof.Id.to_string key)))
      expected
  in
  compare_sm "by_kind" Mof.Model.by_kind by_kind;
  compare_sm "by_name" Mof.Model.by_name by_name;
  compare_sm "by_stereotype" Mof.Model.by_stereotype by_st;
  compare_im "owned_by" Mof.Model.owned_by owned;
  compare_im "referrers" Mof.Model.referrers refs;
  (* classifier extents: Meta.all_instances vs the scan-built extent *)
  Sm.iter
    (fun kname want ->
      match Ocl.Meta.all_instances m' kname with
      | None -> record (Printf.sprintf "[query] no extent for metaclass %S" kname)
      | Some v ->
          let expect =
            Ocl.Value.set
              (List.map (fun id -> Ocl.Value.V_elem id) (Mof.Id.Set.elements want))
          in
          if not (Ocl.Value.equal v expect) then
            record
              (Printf.sprintf "[query] allInstances(%s) disagrees with scan"
                 kname))
    by_kind;
  (match Ocl.Meta.all_instances m' "Element" with
  | None -> record "[query] no extent for Element"
  | Some v ->
      let expect =
        Ocl.Value.set
          (List.map (fun (e : Mof.Element.t) -> Ocl.Value.V_elem e.id) elems)
      in
      if not (Ocl.Value.equal v expect) then
        record "[query] allInstances(Element) disagrees with scan");
  (* a from-scratch rebuild of the store must be indistinguishable *)
  (match
     Mof.Model.of_elements ~root:(Mof.Model.root m') ~next:(Mof.Model.next m')
       elems
   with
  | exception Invalid_argument msg ->
      record (Printf.sprintf "[query] of_elements rebuild rejected: %s" msg)
  | rebuilt ->
      if not (Mof.Model.equal m' rebuilt) then
        record "[query] of_elements rebuild differs from original");
  (* qualified-name lookup: indexed resolution vs the scan-based spec —
     among all elements sharing the printed qualified name, the one with
     the deepest owner chain wins, ties to the lowest id *)
  let by_qname =
    List.fold_left
      (fun m (e : Mof.Element.t) ->
        bucket m (Mof.Query.qualified_name m' e.id) e.id)
      Sm.empty elems
  in
  Sm.iter
    (fun qname ids ->
      let depth id = List.length (Mof.Query.owner_chain m' id) in
      let best =
        List.fold_left
          (fun acc id ->
            match acc with
            | None -> Some id
            | Some b ->
                let db = depth b and di = depth id in
                if di > db then Some id
                else if di = db && Mof.Id.compare id b < 0 then Some id
                else acc)
          None
          (Mof.Id.Set.elements ids)
      in
      match (Mof.Query.find_by_qualified_name m' qname, best) with
      | Some e, Some want when Mof.Id.equal e.Mof.Element.id want -> ()
      | got, _ ->
          record
            (Printf.sprintf
               "[query] find_by_qualified_name %S resolved to %s, scan spec \
                says %s"
               qname
               (match got with
               | Some e -> Mof.Id.to_string e.Mof.Element.id
               | None -> "none")
               (match best with
               | Some id -> Mof.Id.to_string id
               | None -> "none")))
    by_qname;
  match !fail with None -> Ok () | Some msg -> Error msg

(* ---- R5: cached/planned OCL evaluation vs cold naive evaluation ---------- *)

(* Troya-style metamorphic guard on the OCL execution cache: for random
   models and random constraints, [Constraint_.check] (memoized parse,
   planner probes, watermark-validated extents) must agree exactly with
   [Constraint_.check_naive] (fresh parse, raw AST, recomputed extents).
   The base model is checked first and the edited model second, so the
   extent cache is warm with base-model state when the edited model
   arrives — precisely the handoff a broken invalidation gets wrong. *)

let check_ocl ~aux ~base ~edits =
  let base_m, m' = build ~base ~edits in
  let rng = Prng.make aux in
  let constraints = Gen.ocl_constraints rng ~base ~edits in
  let pp_outcome = Ocl.Constraint_.pp_outcome in
  let compare_on which m (c : Ocl.Constraint_.t) =
    let cached = Ocl.Constraint_.check m c in
    let naive = Ocl.Constraint_.check_naive m c in
    if cached = naive then None
    else
      Some
        (Format.asprintf
           "[ocl] cached/planned check disagrees with naive eval on the %s \
            model@.constraint %s: %s@.  cached: %a@.  naive:  %a"
           which c.Ocl.Constraint_.name c.Ocl.Constraint_.body pp_outcome
           cached pp_outcome naive)
  in
  let rec first_mismatch = function
    | [] -> Ok ()
    | c :: rest -> (
        match compare_on "base" base_m c with
        | Some msg -> Error msg
        | None -> (
            match compare_on "edited" m' c with
            | Some msg -> Error msg
            | None -> first_mismatch rest))
  in
  first_mismatch constraints

(* ---- R6: weaving order is precedence, not list order --------------------- *)

let check_weave ~aux (wc : Gen.weave_case) =
  let rng = Prng.make aux in
  let r1 = Weaver.Weave.weave wc.aspects wc.program in
  let shuffled = Prng.shuffle rng wc.aspects in
  let r2 = Weaver.Weave.weave shuffled wc.program in
  if not (Code.Junit.equal r1.Weaver.Weave.program r2.Weaver.Weave.program)
  then Error "[weave] woven program changed under aspect-list shuffle"
  else if r1.Weaver.Weave.applications <> r2.Weaver.Weave.applications then
    Error "[weave] application report changed under aspect-list shuffle"
  else
    let ordered = Weaver.Precedence.order wc.aspects in
    let manual =
      List.fold_left
        (fun prog (g : Aspects.Generator.generated) ->
          (Weaver.Weave.weave_one g.Aspects.Generator.aspect prog)
            .Weaver.Weave.program)
        wc.program (List.rev ordered)
    in
    if not (Code.Junit.equal r1.Weaver.Weave.program manual) then
      Error
        "[weave] weave differs from the weave_one fold over reverse \
         precedence order"
    else
      (* The interference analysis makes a strong claim only one way:
         [Independent] promises the two weaves commute. Hold it to that —
         every reported-independent pair must produce the same program in
         either order. (Conflicting is conservative and never checked.) *)
      let report = Weaver.Interference.analyze wc.aspects wc.program in
      let aspect_named name =
        List.find_map
          (fun (g : Aspects.Generator.generated) ->
            let a = g.Aspects.Generator.aspect in
            if String.equal a.Aspects.Aspect.aspect_name name then Some a
            else None)
          wc.aspects
      in
      let commutes a b =
        let once x p = (Weaver.Weave.weave_one x p).Weaver.Weave.program in
        Code.Junit.equal
          (once a (once b wc.program))
          (once b (once a wc.program))
      in
      let rec pairs_ok = function
        | [] -> Ok ()
        | (p : Weaver.Interference.pair) :: rest -> (
            match p.Weaver.Interference.verdict with
            | Weaver.Interference.Conflicting _ -> pairs_ok rest
            | Weaver.Interference.Independent -> (
                match (aspect_named p.left, aspect_named p.right) with
                | Some a, Some b when not (commutes a b) ->
                    Error
                      (Printf.sprintf
                         "[weave] pair %s / %s reported independent but the \
                          weaves do not commute"
                         p.Weaver.Interference.left p.Weaver.Interference.right)
                | _ -> pairs_ok rest))
      in
      pairs_ok report.Weaver.Interference.pairs

(* ---- R9: incremental re-weave ≡ full weave ------------------------------ *)

(* An incremental weaver earns its keep only if its output is
   indistinguishable from throwing the cache away: same program, same
   application report, after any sequence of edits. Edits come from
   [Gen.program_edit], which preserves physical sharing on untouched
   declarations (the watermark fast path) but may also rebuild, rename,
   duplicate or delete classes — the hostile cases for cache keying. *)

let weave_results_agree tag (r1 : Weaver.Weave.result)
    (r2 : Weaver.Weave.result) =
  if not (Code.Junit.equal r1.Weaver.Weave.program r2.Weaver.Weave.program)
  then
    Error
      (Printf.sprintf "[weave-inc] %s: woven program differs from full weave"
         tag)
  else if r1.Weaver.Weave.applications <> r2.Weaver.Weave.applications then
    Error
      (Printf.sprintf
         "[weave-inc] %s: application report differs from full weave" tag)
  else Ok ()

let check_weave_inc ~aux (wc : Gen.weave_case) =
  let rng = Prng.make aux in
  let scan p = Weaver.Weave.weave_scan wc.aspects p in
  let steps = Prng.range rng 1 3 in
  let rec go st program i =
    if i > steps then Ok ()
    else
      let program = Gen.program_edit rng program in
      let st = Weaver.Weave.reweave st program in
      match
        weave_results_agree
          (Printf.sprintf "after edit %d" i)
          (Weaver.Weave.result_of st) (scan program)
      with
      | Error _ as e -> e
      | Ok () -> go st program (i + 1)
  in
  let st = Weaver.Weave.initial wc.aspects wc.program in
  match
    weave_results_agree "initial" (Weaver.Weave.result_of st) (scan wc.program)
  with
  | Error _ as e -> e
  | Ok () -> go st wc.program 1

(* ---- R7: batch-parallel ≡ per-item sequential --------------------------- *)

(* Pools are cached per size, so a long differential run drives every case
   through the *same* worker domains — exactly the situation in which leaked
   domain-local state (parse cache, extent cache, span counters) between
   batches would surface as a divergence. The cache is domain-local: the
   check driver may run the [par] and [repo] oracles concurrently on
   different pool workers, and Par.Pool rejects two in-flight maps on one
   pool (the shared table itself would race, too). *)
let pools_key : (int, Par.Pool.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let pool jobs =
  let pools = Domain.DLS.get pools_key in
  match Hashtbl.find_opt pools jobs with
  | Some p -> p
  | None ->
      let p = Par.Pool.create ~jobs () in
      Hashtbl.add pools jobs p;
      p

(* Merged counter totals of a drained shard, minus the rows whose value is
   per-domain cache warmth (which worker ran which item is a scheduling
   accident, so parse/extent hit-miss splits are outside the contract). *)
let counter_totals (shard : Obs.Metric.shard) =
  List.filter_map
    (fun ((name, labels), cell) ->
      match (cell : Obs.Metric.cell) with
      | Obs.Metric.Counter { total; _ } ->
          let warmth =
            List.exists
              (fun p ->
                String.length name >= String.length p
                && String.sub name 0 (String.length p) = p)
              [ "ocl.parse."; "ocl.extent."; "vm.compile." ]
          in
          if warmth then None else Some ((name, labels), total)
      | _ -> None)
    shard
  |> List.sort compare

let pp_totals ppf totals =
  List.iter
    (fun ((name, _), total) -> Format.fprintf ppf "@.  %s = %g" name total)
    totals

let same_outcome a b =
  match ((a : Par.Batch.outcome), (b : Par.Batch.outcome)) with
  | Ok p, Ok q -> Mof.Model.equal (Core.Project.model p) (Core.Project.model q)
  | Error e, Error f ->
      Core.Pipeline.error_to_string e = Core.Pipeline.error_to_string f
  | _ -> false

let outcome_tag = function
  | Ok _ -> "ok"
  | Error e -> "error: " ^ Core.Pipeline.error_to_string e

let check_par ~aux ~base ~edits =
  let base_m, slots =
    Edit.apply_with_slots (Mof.Model.create ~name:"fuzz") base
  in
  let m' = Edit.apply_from base_m ~slots edits in
  let half =
    let n = List.length edits / 2 in
    Edit.apply_from base_m ~slots (List.filteri (fun i _ -> i < n) edits)
  in
  let models = [ base_m; m'; half ] in
  let steps =
    let logging =
      Par.Batch.step ~concern:"logging"
        ~params:
          [ ("targets", Transform.Params.V_list [ Transform.Params.V_string "*" ]) ]
    in
    let tx names =
      Par.Batch.step ~concern:"transactions"
        ~params:
          [
            ( "transactional",
              Transform.Params.V_list
                (List.map (fun n -> Transform.Params.V_ident n) names) );
          ]
    in
    let classes =
      List.map (fun c -> c.Mof.Element.name) (Mof.Query.classes m')
    in
    let some_class =
      match classes with [] -> "NoSuchClass" | c :: _ -> c
    in
    match Int64.to_int (Int64.logand aux 0x3L) with
    | 0 -> [ logging ]
    | 1 -> [ tx [ "NoSuchClass" ] ] (* poisoned: precondition must fail *)
    | 2 -> [ logging; tx [ some_class ] ]
    | _ -> [ tx [ some_class ]; logging ]
  in
  (* Window the metric registry so the comparison sees only what the two
     batch runs emit; whatever was accumulating before is put back after. *)
  let was_on = Obs.Metric.enabled () in
  let outer = Obs.Metric.drain () in
  Obs.Metric.enable ();
  Fun.protect
    ~finally:(fun () ->
      if not was_on then Obs.Metric.disable ();
      Obs.Metric.absorb outer)
  @@ fun () ->
  let seq = Par.Batch.refine_all_traced ~steps models in
  let seq_totals = counter_totals (Obs.Metric.drain ()) in
  let par2 = Par.Batch.refine_all_traced ~pool:(pool 2) ~steps models in
  let par2_totals = counter_totals (Obs.Metric.drain ()) in
  let par3 = Par.Batch.refine_all ~pool:(pool 3) ~steps models in
  ignore (Obs.Metric.drain ());
  let rec first_mismatch i = function
    | [], [] -> Ok ()
    | (o_seq, ev_seq) :: rest_seq, (o_par, ev_par) :: rest_par ->
        if not (same_outcome o_seq o_par) then
          Error
            (Printf.sprintf
               "[par] item %d: sequential %s but 2-domain pool %s" i
               (outcome_tag o_seq) (outcome_tag o_par))
        else if
          List.map Obs.Event.normalize ev_seq
          <> List.map Obs.Event.normalize ev_par
        then
          Error
            (Printf.sprintf
               "[par] item %d: normalized trace differs between sequential \
                and 2-domain runs (%d vs %d events)"
               i (List.length ev_seq) (List.length ev_par))
        else first_mismatch (i + 1) (rest_seq, rest_par)
    | _ ->
        Error
          (Printf.sprintf "[par] batch length changed: %d items in, %d out"
             (List.length seq) (List.length par2))
  in
  match first_mismatch 0 (seq, par2) with
  | Error _ as e -> e
  | Ok () ->
      if
        not
          (List.for_all2
             (fun (o_seq, _) o_par -> same_outcome o_seq o_par)
             seq par3)
      then Error "[par] 3-domain pool outcomes diverge from sequential"
      else if seq_totals <> par2_totals then
        Error
          (Format.asprintf
             "[par] merged counters differ@.sequential:%a@.2-domain:%a"
             pp_totals seq_totals pp_totals par2_totals)
      else Ok ()

(* ---- R8: content-addressed repo ≡ naive full-copy repo ------------------ *)

(* The CAS repository (hash-consed store, shared trees, stored diffs,
   composed diff_between, binary snapshots, concurrent sessions) against
   the embedded-model baseline it replaced. The whole observable surface
   must agree at every step of a random commit/undo/redo/tag/checkout
   script; then the snapshot round trip must be a byte fixpoint, identical
   commits must not grow the store, and a burst of concurrent sessions
   through a cached pool must linearize per branch. *)

module R = Repository.Repo
module N = Repository.Naive

let repo_tag_name k = Printf.sprintf "t%d" k

(* One deterministic mutation of [m]; cycles through add / rename / delete
   so trees exercise added, modified, and removed bindings. *)
let repo_mutate rng m =
  let classes = Mof.Model.by_kind m "Class" in
  match Prng.int rng 3 with
  | 1 when not (Mof.Id.Set.is_empty classes) ->
      let id = Prng.choose rng (Mof.Id.Set.elements classes) in
      let n = Prng.int rng 10_000 in
      Mof.Model.update m id (fun e ->
          { e with Mof.Element.name = Printf.sprintf "Renamed%d" n })
  | 2 when Mof.Id.Set.cardinal classes > 1 ->
      Mof.Builder.delete_element m (Mof.Id.Set.max_elt classes)
  | _ ->
      fst
        (Mof.Builder.add_class m ~owner:(Mof.Model.root m)
           ~name:(Printf.sprintf "Fuzz%d" (Prng.int rng 1_000_000)))

let repo_agree step cas naive =
  let fail fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "[repo] step %d: %s" step m)) fmt
  in
  if not (Mof.Model.equal (R.head_model cas) (N.head_model naive)) then
    fail "head models differ"
  else if R.size cas <> N.size naive then
    fail "sizes differ: cas %d, naive %d" (R.size cas) (N.size naive)
  else if R.can_undo cas <> N.can_undo naive then fail "can_undo differs"
  else if R.can_redo cas <> N.can_redo naive then fail "can_redo differs"
  else if R.tags cas <> List.sort compare (N.tags naive) then
    fail "tag bindings differ"
  else if
    List.map (fun c -> c.Repository.Commit.message) (R.log cas)
    <> List.map (fun (c : N.commit) -> c.message) (N.log naive)
  then fail "log messages differ"
  else Ok ()

let repo_diff_eq (a : Mof.Diff.t) (b : Mof.Diff.t) =
  Mof.Id.Set.equal a.added b.added
  && Mof.Id.Set.equal a.removed b.removed
  && Mof.Id.Set.equal a.modified b.modified

let ( let* ) r f = Result.bind r f

let repo_script rng cas naive =
  let steps = Prng.range rng 6 24 in
  let rec go i cas naive =
    if i >= steps then Ok (cas, naive)
    else
      let pair =
        match Prng.int rng 6 with
        | 0 | 1 ->
            let m = repo_mutate rng (R.head_model cas) in
            let message = Printf.sprintf "c%d" i in
            Ok (R.commit ~message m cas, N.commit ~message m naive)
        | 2 -> (
            match (R.undo cas, N.undo naive) with
            | Some c, Some n -> Ok (c, n)
            | None, None -> Ok (cas, naive)
            | _ -> Error (Printf.sprintf "[repo] step %d: undo disagreement" i))
        | 3 -> (
            match (R.redo cas, N.redo naive) with
            | Some c, Some n -> Ok (c, n)
            | None, None -> Ok (cas, naive)
            | _ -> Error (Printf.sprintf "[repo] step %d: redo disagreement" i))
        | 4 ->
            let name = repo_tag_name (Prng.int rng 3) in
            Ok (R.tag name cas, N.tag name naive)
        | _ -> (
            let name = repo_tag_name (Prng.int rng 4) in
            match (R.checkout name cas, N.checkout name naive) with
            | Ok c, Some n -> Ok (c, n)
            | Error (R.Unknown_tag _), None -> Ok (cas, naive)
            | _ ->
                Error (Printf.sprintf "[repo] step %d: checkout disagreement" i))
      in
      let* cas, naive = pair in
      let* () = repo_agree i cas naive in
      go (i + 1) cas naive
  in
  go 0 cas naive

let repo_check_diffs cas naive =
  let head = (R.head cas).Repository.Commit.id in
  let pairs = [ (0, head); (head, 0); (0, 0) ] in
  List.fold_left
    (fun acc (from_id, to_id) ->
      let* () = acc in
      match
        ( R.diff_between cas ~from_id ~to_id,
          R.diff_between_scan cas ~from_id ~to_id,
          N.diff_between naive ~from_id ~to_id )
      with
      | Some composed, Some scanned, Some reference ->
          if not (repo_diff_eq composed scanned) then
            Error
              (Printf.sprintf
                 "[repo] composed diff %d->%d disagrees with the scan" from_id
                 to_id)
          else if not (repo_diff_eq composed reference) then
            Error
              (Printf.sprintf
                 "[repo] diff %d->%d disagrees with the naive recompute"
                 from_id to_id)
          else Ok ()
      | _ -> Error "[repo] diff_between availability differs")
    (Ok ()) pairs

let repo_check_snapshot cas =
  let s1 = R.save cas in
  match R.load s1 with
  | Error e -> Error (Printf.sprintf "[repo] snapshot load failed: %s" e)
  | Ok r2 ->
      if not (String.equal (R.save r2) s1) then
        Error "[repo] save after load is not byte-identical"
      else if not (Mof.Model.equal (R.head_model cas) (R.head_model r2)) then
        Error "[repo] reloaded head model differs"
      else if R.tags cas <> R.tags r2 || R.branches cas <> R.branches r2 then
        Error "[repo] reloaded tags or branches differ"
      else Ok ()

let repo_check_sharing cas =
  let objects = R.store_objects cas and bytes = R.store_bytes cas in
  let m = R.head_model cas in
  let r = R.commit ~message:"same" m (R.commit ~message:"same" m cas) in
  if R.store_objects r <> objects || R.store_bytes r <> bytes then
    Error "[repo] identical commits grew the object store"
  else Ok ()

(* Three sessions, each committing twice to its own branch through a
   cached pool: afterwards the service must hold every commit, and each
   branch's chain must read exactly [s:1; s:2] on top of what was there —
   the per-branch linearization the one-writer-lock promises. *)
let repo_check_sessions cas =
  let svc = Repository.Service.create cas in
  let base_size = R.size (Repository.Service.snapshot svc) in
  let branch s = Printf.sprintf "sess%d" s in
  let sessions = [ 0; 1; 2 ] in
  let* () =
    List.fold_left
      (fun acc s ->
        let* () = acc in
        match Repository.Service.create_branch svc (branch s) with
        | Ok _ -> Ok ()
        | Error e ->
            Error ("[repo] create_branch: " ^ Repository.Service.error_to_string e))
      (Ok ()) sessions
  in
  let run s =
    let rec go i =
      if i > 2 then Ok ()
      else
        let view = Repository.Service.snapshot svc in
        match R.branch_head view (branch s) with
        | None -> Error "branch vanished"
        | Some head_id -> (
            match R.model_at view head_id with
            | None -> Error "branch head not stored"
            | Some base -> (
                let m, _ =
                  Mof.Builder.add_class base ~owner:(Mof.Model.root base)
                    ~name:(Printf.sprintf "S%dC%d" s i)
                in
                match
                  Repository.Service.commit svc ~branch:(branch s)
                    ~message:(Printf.sprintf "s%d:%d" s i)
                    m
                with
                | Ok _ -> go (i + 1)
                | Error e -> Error (Repository.Service.error_to_string e)))
    in
    go 1
  in
  let results = Par.Pool.map (pool 3) run sessions in
  let* () =
    List.fold_left
      (fun acc r ->
        let* () = acc in
        match r with
        | Ok () -> Ok ()
        | Error msg -> Error ("[repo] session failed: " ^ msg))
      (Ok ()) results
  in
  let final = Repository.Service.snapshot svc in
  if R.size final <> base_size + 6 then
    Error
      (Printf.sprintf "[repo] expected %d commits after sessions, found %d"
         (base_size + 6) (R.size final))
  else
    List.fold_left
      (fun acc s ->
        let* () = acc in
        match R.branch_head final (branch s) with
        | None -> Error "[repo] session branch missing after run"
        | Some head_id ->
            let rec chain acc id =
              match R.find final id with
              | None -> acc
              | Some c -> (
                  match c.Repository.Commit.parent with
                  | None -> c.Repository.Commit.message :: acc
                  | Some p -> chain (c.Repository.Commit.message :: acc) p)
            in
            let tail =
              let all = chain [] head_id in
              let n = List.length all in
              List.filteri (fun i _ -> i >= n - 2) all
            in
            if tail <> [ Printf.sprintf "s%d:1" s; Printf.sprintf "s%d:2" s ]
            then Error (Printf.sprintf "[repo] branch %s chain out of order" (branch s))
            else Ok ())
      (Ok ()) sessions

let check_repo ~aux ~base ~edits =
  let base_m, m' = build ~base ~edits in
  let rng = Prng.make aux in
  let cas = R.init base_m and naive = N.init base_m in
  (* first commit is the edited model itself — derived from the base with
     journal lineage intact, so the replay diff path is on the hook *)
  let cas = R.commit ~message:"edits" m' cas
  and naive = N.commit ~message:"edits" m' naive in
  let* () = repo_agree (-1) cas naive in
  let* cas, naive = repo_script rng cas naive in
  let* () = repo_check_diffs cas naive in
  let* () = repo_check_snapshot cas in
  let* () = repo_check_sharing cas in
  repo_check_sessions cas

(* ---- R10: compiled execution ≡ tree-walking execution --------------------- *)

(* Pins all three tiers of the bytecode layer to their tree-walking
   baselines on identical inputs: pointcut deciders vs the pointcut AST
   walk (every shadow of the case program × every pointcut in sight),
   compiled method bodies vs the statement walker (raw and woven runnable
   programs — results AND middleware event traces must agree), and
   VM-compiled OCL constraints vs the one-pass naive evaluator. *)

let vm_interp_arm ~compiled (ic : Gen.interp_case) ~aspects =
  let program =
    match aspects with
    | [] -> ic.Gen.ip_program
    | _ -> (Weaver.Weave.weave aspects ic.Gen.ip_program).Weaver.Weave.program
  in
  let class_name, method_name = ic.Gen.ip_entry in
  Vm.with_vm compiled (fun () ->
      try
        let o =
          Interp.Machine.run ~faults:ic.Gen.ip_faults ~args:ic.Gen.ip_args
            program ~class_name ~method_name
        in
        (o.Interp.Machine.result, o.Interp.Machine.events)
      with
      | Interp.Machine.Runtime_error msg -> (Error ("runtime: " ^ msg), [])
      | Invalid_argument msg -> (Error ("invalid: " ^ msg), []))

let vm_outcome_to_string (result, events) =
  let r =
    match result with
    | Ok v -> "ok " ^ Interp.Rvalue.to_string v
    | Error e -> "error " ^ e
  in
  r ^ " / " ^ String.concat "; " (List.map Interp.Event.to_string events)

let check_vm ~aux (wc : Gen.weave_case) =
  let rng = Prng.make aux in
  (* matcher tier: decider ≡ tree walk *)
  let shadows = Weaver.Joinpoint.all_shadows wc.program in
  let pointcuts =
    List.concat_map
      (fun (g : Aspects.Generator.generated) ->
        List.map
          (fun (a : Aspects.Advice.t) -> a.Aspects.Advice.pointcut)
          g.Aspects.Generator.aspect.Aspects.Aspect.advices)
      wc.aspects
    @ List.init 4 (fun _ -> Gen.random_pointcut rng)
  in
  let matcher_mismatch =
    List.find_map
      (fun pc ->
        List.find_map
          (fun shadow ->
            let compiled = Weaver.Matcher.decider pc shadow in
            let tree = Weaver.Matcher.matches_tree pc shadow in
            if compiled = tree then None
            else
              Some
                (Printf.sprintf
                   "[vm] matcher decider disagrees with tree walk: %s (decider \
                    %b, tree %b)"
                   (Aspects.Pointcut.to_string pc) compiled tree))
          shadows)
      pointcuts
  in
  match matcher_mismatch with
  | Some msg -> Error msg
  | None -> (
      (* interpreter tier: compiled bodies ≡ statement walker, on the raw
         program and on a woven one (so advice bodies and re-woven shapes
         go through compilation too) *)
      let ic = Gen.interp_case rng in
      let aspect_arms = [ []; Gen.runnable_aspects rng ] in
      let interp_mismatch =
        List.find_map
          (fun aspects ->
            let walked = vm_interp_arm ~compiled:false ic ~aspects in
            let compiled = vm_interp_arm ~compiled:true ic ~aspects in
            if walked = compiled then None
            else
              Some
                (Printf.sprintf
                   "[vm] compiled body disagrees with walker (%s)\n\
                   \  walker:   %s\n\
                   \  compiled: %s"
                   (if aspects = [] then "raw program" else "woven program")
                   (vm_outcome_to_string walked)
                   (vm_outcome_to_string compiled)))
          aspect_arms
      in
      match interp_mismatch with
      | Some msg -> Error msg
      | None ->
          (* OCL tier: bytecode ≡ naive evaluator over fresh models *)
          let base = Gen.base_script rng in
          let edits = Gen.edit_script rng ~base in
          let base_m, m' = build ~base ~edits in
          let constraints = Gen.ocl_constraints rng ~base ~edits in
          let pp_outcome = Ocl.Constraint_.pp_outcome in
          let compare_on which m (c : Ocl.Constraint_.t) =
            let bytecode = Vm.with_vm true (fun () -> Ocl.Constraint_.check m c) in
            let naive = Vm.with_vm false (fun () -> Ocl.Constraint_.check m c) in
            if bytecode = naive then None
            else
              Some
                (Format.asprintf
                   "[vm] OCL bytecode disagrees with tree walk on the %s \
                    model@.constraint %s: %s@.  bytecode: %a@.  tree:     %a"
                   which c.Ocl.Constraint_.name c.Ocl.Constraint_.body
                   pp_outcome bytecode pp_outcome naive)
          in
          let rec first_mismatch = function
            | [] -> Ok ()
            | c :: rest -> (
                match compare_on "base" base_m c with
                | Some msg -> Error msg
                | None -> (
                    match compare_on "edited" m' c with
                    | Some msg -> Error msg
                    | None -> first_mismatch rest))
          in
          first_mismatch constraints)

let all =
  [
    { name = "diff"; check = Model_check check_diff };
    { name = "wf"; check = Model_check check_wf };
    { name = "xmi"; check = Model_check check_xmi };
    { name = "query"; check = Model_check check_query };
    { name = "ocl"; check = Model_check check_ocl };
    { name = "weave"; check = Weave_check check_weave };
    { name = "weave-inc"; check = Weave_check check_weave_inc };
    { name = "par"; check = Model_check check_par };
    { name = "repo"; check = Model_check check_repo };
    { name = "vm"; check = Weave_check check_vm };
  ]

let find name = List.find_opt (fun o -> o.name = name) all
