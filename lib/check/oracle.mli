(** The metamorphic/differential oracle suite.

    Each oracle states a relation between two computations of the same fact
    — an incremental path against its full-scan baseline, or a pipeline
    against its algebraic decomposition — so no oracle needs to know the
    "right answer", only that the two paths must agree:

    - [diff]: journal-replay {!Mof.Diff.compute} ≡ {!Mof.Diff.compute_scan};
    - [wf]: scoped {!Mof.Wellformed.check_touched} ≡ full check on models
      edited from a clean base;
    - [xmi]: export → import → export is a fixpoint (byte-identical second
      export), reimport is {!Mof.Model.equal}, and parsing a
      character-reference-armored rendering equals parsing the plain one;
    - [query]: every secondary index, {!Ocl.Meta.all_instances} extent, and
      {!Mof.Query.find_by_qualified_name} lookup ≡ a fresh full scan;
    - [ocl]: {!Ocl.Constraint_.check} — memoized parse, planner probes,
      watermark-validated extent cache — ≡ {!Ocl.Constraint_.check_naive}
      (fresh parse, raw AST, recomputed extents) on random constraints
      over the base and the edited model, checked in that order so stale
      cache state would be caught;
    - [weave]: {!Weaver.Weave.weave} is invariant under aspect-list
      shuffling and equals the fold of {!Weaver.Weave.weave_one} over the
      reverse precedence order; additionally every aspect pair the
      interference analysis ({!Weaver.Interference.analyze}) reports
      [Independent] must commute under [weave_one] — the one direction in
      which the conservative analysis makes a strong claim;
    - [weave-inc]: {!Weaver.Weave.initial} followed by
      {!Weaver.Weave.reweave} over 1–3 random structural edits
      ({!Gen.program_edit}) ≡ {!Weaver.Weave.weave_scan} from scratch on
      every intermediate program — same woven program {e and} same
      application report, so the watermark cache may never skip a class it
      should re-weave nor distort the report's order;
    - [par]: a batch of refinements pushed through a {!Par.Pool} of 2 and 3
      domains ≡ the same batch applied sequentially in the submitting
      domain — per-item outcomes ({!Mof.Model.equal} on success, rendered
      {!Core.Pipeline.error} on failure), per-item traces after
      {!Obs.Event.normalize}, and merged counter totals (minus per-domain
      cache hit/miss splits, which are scheduling accidents) must all
      agree, with pools cached across cases so leaked domain-local state
      would be caught;
    - [repo]: the content-addressed {!Repository.Repo} ≡ the full-copy
      {!Repository.Naive} baseline over random commit/undo/redo/tag/
      checkout scripts — head model, sizes, undo/redo availability, tags,
      and log must agree at every step, composed {!Repository.Repo.diff_between}
      must equal both its scan form and the naive recompute, the binary
      snapshot must round-trip as a byte fixpoint, identical commits must
      not grow the object store, and concurrent sessions through a cached
      pool must linearize per branch.

    Failure messages begin with a bracketed tag ([[diff]], [[wf]], [[xmi]],
    [[query]], [[ocl]], [[weave]], [[weave-inc]], [[par]], [[repo]],
    [[gen]]); the shrinker only accepts candidates failing with the
    original tag. *)

type check =
  | Model_check of
      (aux:int64 -> base:Edit.script -> edits:Edit.script -> (unit, string) result)
      (** [aux] seeds any auxiliary randomness the relation needs (e.g.
          armoring choices), so replays during shrinking are deterministic. *)
  | Weave_check of (aux:int64 -> Gen.weave_case -> (unit, string) result)

type t = { name : string; check : check }

val all : t list
(** The nine oracles, in documentation order. *)

val find : string -> t option

val tag_of : string -> string
(** The leading [[tag]] of a failure message (the whole message when it has
    none). *)
