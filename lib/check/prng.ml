(* splitmix64 (Steele, Lea, Flood 2014): tiny state, good equidistribution,
   and trivially splittable — exactly what deterministic replay needs. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let next_of state =
  let s = Int64.add state golden in
  let z = s in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  (s, Int64.logxor z (Int64.shift_right_logical z 31))

let make seed = { state = seed }
let of_int n = make (Int64.of_int n)

let bits64 g =
  let state, z = next_of g.state in
  g.state <- state;
  z

let mix seed salt =
  let _, z = next_of (Int64.add seed (Int64.mul (Int64.of_int salt) golden)) in
  z

let split g = make (bits64 g)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* mask to non-negative, then reduce; bias is irrelevant at fuzz bounds *)
  let v = Int64.to_int (Int64.logand (bits64 g) 0x3FFFFFFFFFFFFFFFL) in
  v mod bound

let range g lo hi =
  if hi < lo then invalid_arg "Prng.range: empty range";
  lo + int g (hi - lo + 1)

let bool g = Int64.logand (bits64 g) 1L = 1L

let chance g num den = int g den < num

let choose g xs =
  match xs with
  | [] -> invalid_arg "Prng.choose: empty list"
  | xs -> List.nth xs (int g (List.length xs))

let shuffle g xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
