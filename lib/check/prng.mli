(** A seeded, splittable pseudo-random number generator (splitmix64).

    The harness never touches [Stdlib.Random]: every random decision flows
    from an explicit 64-bit seed, so any failing fuzz case is replayable
    from the (seed, case index) pair printed in the failure report. *)

type t
(** Mutable generator state. *)

val make : int64 -> t
(** A generator seeded with the given value. Equal seeds yield equal
    streams. *)

val of_int : int -> t

val mix : int64 -> int -> int64
(** [mix seed salt] derives a new seed deterministically; used to give every
    fuzz case (and every auxiliary stream inside a case) its own independent
    seed. *)

val split : t -> t
(** A new generator whose stream is independent of the parent's future
    draws. *)

val bits64 : t -> int64
(** The next raw 64-bit draw. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val range : t -> int -> int -> int
(** [range g lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val bool : t -> bool

val chance : t -> int -> int -> bool
(** [chance g num den] is true with probability [num/den]. *)

val choose : t -> 'a list -> 'a
(** Uniform pick from a non-empty list. Raises [Invalid_argument] on []. *)

val shuffle : t -> 'a list -> 'a list
(** A uniform permutation. *)
