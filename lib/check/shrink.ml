let drop_range xs lo len =
  List.filteri (fun i _ -> i < lo || i >= lo + len) xs

(* One pass: try removing chunks of [size] at each offset, left to right.
   Returns the first smaller failing candidate, if any. *)
let try_chunks ~still_fails xs size =
  let n = List.length xs in
  let rec at lo =
    if lo >= n then None
    else
      let candidate = drop_range xs lo (min size (n - lo)) in
      if still_fails candidate then Some candidate else at (lo + size)
  in
  at 0

let list ~still_fails xs =
  if not (still_fails xs) then xs
  else
    let rec loop xs size =
      if size < 1 then xs
      else
        match try_chunks ~still_fails xs size with
        | Some smaller ->
            (* progress: restart chunk search at a size fitted to the
               shorter list *)
            let size' = min size (max 1 (List.length smaller / 2)) in
            loop smaller size'
        | None -> loop xs (size / 2)
    in
    loop xs (max 1 (List.length xs / 2))
