(** Greedy list shrinking for failing edit scripts.

    Delta-debugging style: first try dropping exponentially shrinking
    chunks, then single elements, restarting whenever a candidate still
    fails. [still_fails] decides acceptance — callers make it require the
    same failure tag as the original, so shrinking cannot drift onto an
    unrelated bug. *)

val list : still_fails:('a list -> bool) -> 'a list -> 'a list
(** Smallest sublist found (order preserved). The result still satisfies
    [still_fails] unless the input itself did not, in which case the input
    is returned unchanged. *)
