type error =
  | Unknown_concern of string
  | Invalid_params of {
      transformation : string;
      problems : Transform.Params.problem list;
    }
  | Workflow_violation of { concern : string; reason : string }
  | Engine_failure of {
      transformation : string;
      failure : Transform.Engine.failure;
    }
  | Aspect_generation of string

exception Pipeline_error of error

let pp_error ppf = function
  | Unknown_concern c -> Format.fprintf ppf "unknown concern %s" c
  | Invalid_params { transformation; problems } ->
      Format.fprintf ppf "%s: %a" transformation
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           Transform.Params.pp_problem)
        problems
  | Workflow_violation { concern = _; reason } ->
      Format.pp_print_string ppf reason
  | Engine_failure { transformation; failure } ->
      Format.fprintf ppf "%s: %a" transformation Transform.Engine.pp_failure
        failure
  | Aspect_generation msg -> Format.pp_print_string ppf msg

let error_to_string e = Format.asprintf "%a" pp_error e

let refine project ~concern ~params =
  Obs.span ~cat:"pipeline" "pipeline.refine"
    ~args:[ ("concern", Obs.Event.V_string concern) ]
  @@ fun () ->
  match Concerns.Registry.find_gmt concern with
  | None -> Error (Unknown_concern concern)
  | Some gmt -> (
      match Transform.Cmt.specialize gmt params with
      | Error problems ->
          Error
            (Invalid_params { transformation = gmt.Transform.Gmt.name; problems })
      | Ok cmt -> (
          let progress_result =
            match project.Project.progress with
            | None -> Ok None
            | Some p -> (
                match Workflow.State.advance p ~concern with
                | Ok p -> Ok (Some p)
                | Error reason -> Error (Workflow_violation { concern; reason }))
          in
          match progress_result with
          | Error e -> Error e
          | Ok progress -> (
              match Transform.Engine.step project.Project.session cmt with
              | Error failure ->
                  Error
                    (Engine_failure
                       { transformation = Transform.Cmt.name cmt; failure })
              | Ok session ->
                  let report =
                    match List.rev session.Transform.Engine.reports with
                    | r :: _ -> r
                    | [] -> assert false
                  in
                  let repo =
                    Repository.Repo.commit
                      ~transformation:(Transform.Cmt.name cmt)
                      ~concern
                      ~message:("apply " ^ Transform.Cmt.name cmt)
                      session.Transform.Engine.current project.Project.repo
                  in
                  Ok ({ project with Project.session; repo; progress }, report))))

let refine_exn project ~concern ~params =
  match refine project ~concern ~params with
  | Ok (project, _) -> project
  | Error e -> raise (Pipeline_error e)

let undo project =
  match List.rev project.Project.session.Transform.Engine.applied with
  | [] -> None
  | _last :: earlier_rev ->
      let remaining = List.rev earlier_rev in
      (match Repository.Repo.undo project.Project.repo with
      | None -> None
      | Some repo ->
          let session =
            {
              project.Project.session with
              Transform.Engine.current = Repository.Repo.head_model repo;
              trace =
                Transform.Trace.drop_last
                  project.Project.session.Transform.Engine.trace;
              applied = remaining;
              reports =
                (match List.rev project.Project.session.Transform.Engine.reports with
                | [] -> []
                | _ :: rest -> List.rev rest);
            }
          in
          let progress =
            (* replay the remaining concern sequence over a fresh progress *)
            match project.Project.progress with
            | None -> None
            | Some p ->
                let fresh = Workflow.State.start (Workflow.State.definition p) in
                Some
                  (List.fold_left
                     (fun acc cmt ->
                       match
                         Workflow.State.advance acc
                           ~concern:(Transform.Cmt.concern cmt)
                       with
                       | Ok acc -> acc
                       | Error _ -> acc)
                     fresh remaining)
          in
          Some { project with Project.session; repo; progress })

let redo_info project =
  match Repository.Repo.redo project.Project.repo with
  | None -> None
  | Some repo -> Some (Repository.Repo.head repo).Repository.Commit.message

let exclude_stereotypes = [ "infrastructure"; "proxy"; "remote-interface" ]

let functional_code project =
  Obs.span ~cat:"pipeline" "pipeline.codegen"
    ~args:[ ("mode", Obs.Event.V_string "functional") ]
  @@ fun () ->
  Code.Generator.generate
    ~options:{ Code.Generator.accessors = true; exclude_stereotypes }
    (Project.model project)

let monolithic_code project =
  Obs.span ~cat:"pipeline" "pipeline.codegen"
    ~args:[ ("mode", Obs.Event.V_string "monolithic") ]
  @@ fun () ->
  Code.Generator.generate
    ~options:{ Code.Generator.accessors = true; exclude_stereotypes = [] }
    (Project.model project)

let aspects project =
  Obs.span ~cat:"pipeline" "pipeline.aspects" @@ fun () ->
  match
    Aspects.Generator.from_trace ~lookup:Concerns.Registry.find_gac
      (Project.applied project)
  with
  | Ok generated ->
      Obs.incr "pipeline.aspects.generated" []
        ~by:(float_of_int (List.length generated));
      Ok generated
  | Error msg -> Error (Aspect_generation msg)

let build project =
  Obs.span ~cat:"pipeline" "pipeline.build" @@ fun () ->
  match aspects project with
  | Error e -> Error e
  | Ok generated ->
      let functional = functional_code project in
      let { Weaver.Weave.program = woven; applications } =
        Weaver.Weave.weave generated functional
      in
      Ok
        {
          Artifacts.functional;
          generated_aspects = generated;
          woven;
          applications;
        }
