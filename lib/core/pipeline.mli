(** The refinement pipeline — the paper's contribution, executable.

    One {!refine} call is one Fig. 1 refinement step: resolve the concern's
    generic transformation GMT_Ci from the registry, specialize it with the
    parameter set S_i into CMT_Ci, check the specialized preconditions,
    apply, check the specialized postconditions and well-formedness, record
    the trace entry and the repository commit, and advance the workflow.

    {!build} is Fig. 2 end-to-end: generate the functional code, generate
    one concrete aspect A_i⟨S_i⟩ per applied transformation from the same
    parameter sets, order them by transformation order, and weave. *)

(** Why a pipeline step was refused. The model is untouched in every case,
    so callers can report the error and keep the project. *)
type error =
  | Unknown_concern of string
  | Invalid_params of {
      transformation : string;
      problems : Transform.Params.problem list;
    }  (** parameter validation refused the specialization *)
  | Workflow_violation of { concern : string; reason : string }
      (** the concern is not admissible at the current workflow step *)
  | Engine_failure of {
      transformation : string;
      failure : Transform.Engine.failure;
    }  (** failed pre/postconditions, broken well-formedness, or rewrite *)
  | Aspect_generation of string
      (** no generic aspect registered for an applied transformation *)

exception Pipeline_error of error

val pp_error : Format.formatter -> error -> unit
(** Human-readable rendering; mentions the offending parameter, workflow
    step, or condition by name. *)

val error_to_string : error -> string

val refine :
  Project.t ->
  concern:string ->
  params:(string * Transform.Params.value) list ->
  (Project.t * Transform.Report.t, error) result
(** One refinement step. Fails (model untouched) on: unknown concern,
    parameter validation problems, workflow violations, failed
    pre/postconditions, broken well-formedness. *)

val refine_exn :
  Project.t ->
  concern:string ->
  params:(string * Transform.Params.value) list ->
  Project.t
(** @raise Pipeline_error with the typed error. *)

val undo : Project.t -> Project.t option
(** Reverts the last refinement: repository head moves back, the trace
    loses its last entry, the session model reverts. [None] when nothing
    has been applied. (The workflow progress, when present, is rebuilt from
    the remaining applied concerns.) *)

val redo_info : Project.t -> string option
(** The message of the commit a repository redo would restore, if any —
    full redo re-applies through {!refine} so that all checks re-run. *)

val exclude_stereotypes : string list
(** Stereotypes marking model elements that belong to concern spaces rather
    than the functional model: ["infrastructure"], ["proxy"],
    ["remote-interface"]. *)

val functional_code : Project.t -> Code.Junit.program
(** Code for the functional model only — concern-introduced classifiers are
    excluded. *)

val monolithic_code : Project.t -> Code.Junit.program
(** Code for the *whole* refined model, concern elements included, with no
    aspects — the single-code-generator baseline the paper argues against
    (used by the ablation experiment). *)

val aspects :
  Project.t -> (Aspects.Generator.generated list, error) result
(** One concrete aspect per applied transformation, specialized by the
    transformation's own parameter set, in application order. *)

val build : Project.t -> (Artifacts.t, error) result
(** Functional code + aspect generation + weaving. *)
