let ( let* ) = Result.bind

let contains_char s c = String.contains s c

let check_plain text =
  if contains_char text '\t' || contains_char text '\n' then
    Error (Printf.sprintf "value %S cannot be shipped (embedded separator)" text)
  else Ok text

let rec to_wizard_text = function
  | Transform.Params.V_string s | Transform.Params.V_ident s -> check_plain s
  | Transform.Params.V_int n -> Ok (string_of_int n)
  | Transform.Params.V_bool b -> Ok (string_of_bool b)
  | Transform.Params.V_list items ->
      let rec render acc = function
        | [] -> Ok (String.concat "," (List.rev acc))
        | item :: rest ->
            let* text = to_wizard_text item in
            if contains_char text ',' then
              Error
                (Printf.sprintf "list item %S cannot be shipped (embedded comma)"
                   text)
            else render (text :: acc) rest
      in
      render [] items

let manifest_of project =
  let rec lines acc = function
    | [] -> Ok (List.rev acc)
    | cmt :: rest ->
        let concern = Transform.Cmt.concern cmt in
        let rec fields acc = function
          | [] -> Ok (List.rev acc)
          | (name, value) :: bindings ->
              let* text = to_wizard_text value in
              fields ((name ^ "=" ^ text) :: acc) bindings
        in
        let* assignments =
          fields [] (Transform.Params.bindings cmt.Transform.Cmt.params)
        in
        lines
          (String.concat "\t" (("step" :: [ concern ]) @ assignments) :: acc)
          rest
  in
  let* ls = lines [] (Project.applied project) in
  Ok (String.concat "\n" ls ^ if ls = [] then "" else "\n")

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      really_input_string ic len)

let ship ~dir project =
  let* manifest = manifest_of project in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Xmi.Export.write_file
    (Filename.concat dir "initial.xmi")
    (Project.initial_model project);
  (* one XMI per applied step, replayed from the repository log *)
  let repo = project.Project.repo in
  let commits = List.rev (Repository.Repo.log repo) in
  List.iteri
    (fun i (c : Repository.Commit.t) ->
      if i > 0 then
        match Repository.Repo.model_at repo c.Repository.Commit.id with
        | Some model ->
            Xmi.Export.write_file
              (Filename.concat dir (Printf.sprintf "step-%d.xmi" i))
              model
        | None -> assert false (* commits from [log] are stored *))
    commits;
  Xmi.Export.write_file (Filename.concat dir "final.xmi") (Project.model project);
  write_file (Filename.concat dir "MANIFEST") manifest;
  Ok ()

let load_manifest text =
  let lines =
    List.filter
      (fun l -> not (String.equal (String.trim l) ""))
      (String.split_on_char '\n' text)
  in
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match String.split_on_char '\t' line with
        | "step" :: concern :: raw_assignments ->
            let rec split acc = function
              | [] -> Ok (List.rev acc)
              | field :: fields -> (
                  match String.index_opt field '=' with
                  | Some i ->
                      split
                        (( String.sub field 0 i,
                           String.sub field (i + 1) (String.length field - i - 1)
                         )
                        :: acc)
                        fields
                  | None ->
                      Error
                        (Printf.sprintf "malformed manifest field %S" field))
            in
            let* assignments = split [] raw_assignments in
            parse ((concern, assignments) :: acc) rest
        | _ -> Error (Printf.sprintf "malformed manifest line %S" line))
  in
  parse [] lines

let replay ~dir =
  Platform.ensure_registered ();
  let* manifest =
    match read_file (Filename.concat dir "MANIFEST") with
    | text -> Ok text
    | exception Sys_error e -> Error e
  in
  let* steps = load_manifest manifest in
  let* initial =
    match Xmi.Import.read_file (Filename.concat dir "initial.xmi") with
    | m -> Ok m
    | exception Xmi.Import.Import_error e -> Error e
    | exception Xmi.Xml_parser.Xml_error (e, _) -> Error e
    | exception Sys_error e -> Error e
  in
  List.fold_left
    (fun acc (concern, raw_assignments) ->
      let* project = acc in
      let* gmt =
        match Concerns.Registry.find_gmt concern with
        | Some gmt -> Ok gmt
        | None -> Error (Printf.sprintf "unknown concern %s in manifest" concern)
      in
      let* params =
        Workflow.Wizard.parse_assignments gmt.Transform.Gmt.formals
          (List.map (fun (n, v) -> n ^ "=" ^ v) raw_assignments)
      in
      match Pipeline.refine project ~concern ~params with
      | Ok (project, _) -> Ok project
      | Error e -> Error (Pipeline.error_to_string e))
    (Ok (Project.create initial))
    steps

let verify ~dir =
  let* replayed = replay ~dir in
  let* shipped =
    match Xmi.Import.read_file (Filename.concat dir "final.xmi") with
    | m -> Ok m
    | exception Xmi.Import.Import_error e -> Error e
    | exception Sys_error e -> Error e
  in
  Ok (Mof.Model.equal (Project.model replayed) shipped)
