exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

(* Java-level control flow, carried by OCaml exceptions. *)
exception Java_throw of Rvalue.t * string (* value, class name *)
exception Java_return of Rvalue.t

type obj = {
  obj_class : string;
  fields : (string, Rvalue.t) Hashtbl.t;
}

type t = {
  program : Code.Junit.program;
  heap : (int, obj) Hashtbl.t;
  mutable next_ref : int;
  mutable log : Event.t list; (* reversed *)
  faults : (string * string) list;
}

type outcome = {
  result : (Rvalue.t, string) Stdlib.result;
  events : Event.t list;
}

let record st ~source ~action ~detail =
  st.log <- Event.make ~source ~action ~detail :: st.log

let events st = List.rev st.log

(* ---- classes and dispatch ---------------------------------------------- *)

let find_class st name = Code.Junit.find_class st.program name

let rec method_of st class_name method_name =
  match find_class st class_name with
  | None -> None
  | Some c -> (
      match Code.Jdecl.find_method c method_name with
      | Some m -> Some (c, m)
      | None -> (
          match c.Code.Jdecl.extends with
          | Some super -> method_of st super method_name
          | None -> None))

(* exception conformance: program extends chain, plus the builtin
   RuntimeException <: Exception <: Throwable ladder *)
let rec conforms_to st sub super =
  String.equal sub super
  || (match (sub, super) with
     | "RuntimeException", ("Exception" | "Throwable") -> true
     | "Exception", "Throwable" -> true
     | _ -> false)
  ||
  match find_class st sub with
  | Some { Code.Jdecl.extends = Some parent; _ } -> conforms_to st parent super
  | Some _ | None -> false

let heap_obj st r =
  match Hashtbl.find_opt st.heap r with
  | Some o -> o
  | None -> error "dangling heap reference @%d" r

let class_of_value st = function
  | Rvalue.V_object r -> (heap_obj st r).obj_class
  | Rvalue.V_string _ -> "String"
  | Rvalue.V_null -> "null"
  | Rvalue.V_bool _ -> "boolean"
  | Rvalue.V_int _ -> "int"
  | Rvalue.V_double _ -> "double"

let allocate st class_name field_decls =
  let fields = Hashtbl.create 8 in
  List.iter
    (fun (f : Code.Jdecl.field) ->
      Hashtbl.replace fields f.Code.Jdecl.field_name
        (Rvalue.default_of f.Code.Jdecl.field_type))
    field_decls;
  let r = st.next_ref in
  st.next_ref <- r + 1;
  Hashtbl.replace st.heap r { obj_class = class_name; fields };
  Rvalue.V_object r

(* fields of a class including inherited ones *)
let rec all_fields st class_name =
  match find_class st class_name with
  | None -> []
  | Some c ->
      (match c.Code.Jdecl.extends with
      | Some super -> all_fields st super
      | None -> [])
      @ c.Code.Jdecl.fields

let new_object st class_name =
  match find_class st class_name with
  | Some _ -> allocate st class_name (all_fields st class_name)
  | None -> (
      (* runtime exception classes can be instantiated without declaration *)
      match class_name with
      | "RuntimeException" | "Exception" | "Throwable" | "Error" ->
          allocate st class_name []
      | _ -> error "unknown class %s" class_name)

(* ---- builtin middleware runtime ------------------------------------------ *)

let builtin_receivers =
  [
    "TransactionManager";
    "Logger";
    "LockManager";
    "AccessController";
    "SecurityContext";
    "RemoteRuntime";
    "NamingService";
    "PersistenceManager";
    "MessageQueue";
  ]

let is_builtin_receiver name = List.mem name builtin_receivers

let detail_of st args =
  String.concat ", "
    (List.map
       (fun v ->
         match v with
         | Rvalue.V_object _ -> class_of_value st v
         | v -> Rvalue.to_string v)
       args)

(* a singleton instance per builtin "manager" class *)
let singleton st class_name =
  let key = "__singleton_" ^ class_name in
  let existing =
    Hashtbl.fold
      (fun r o acc -> if o.obj_class = key then Some (Rvalue.V_object r) else acc)
      st.heap None
  in
  match existing with
  | Some v -> v
  | None -> allocate st key []

let builtin_static st class_name method_name args =
  let detail = detail_of st args in
  match (class_name, method_name) with
  | "TransactionManager", "current" -> Some (singleton st "TransactionManager")
  | "Logger", "log" ->
      record st ~source:"Logger" ~action:"log" ~detail;
      Some Rvalue.V_null
  | "LockManager", "of" -> Some (singleton st "LockManager")
  | "AccessController", "check" ->
      record st ~source:"AccessController" ~action:"check" ~detail;
      Some (Rvalue.V_bool true)
  | "SecurityContext", "currentPrincipal" ->
      record st ~source:"SecurityContext" ~action:"currentPrincipal" ~detail;
      Some (singleton st "Principal")
  | "RemoteRuntime", "ensureExported" ->
      record st ~source:"RemoteRuntime" ~action:"ensureExported" ~detail;
      Some Rvalue.V_null
  | "NamingService", ("bind" | "lookup") ->
      record st ~source:"NamingService" ~action:method_name ~detail;
      Some (Rvalue.V_string "naming:handle")
  | "PersistenceManager", ("markDirty" | "ensureLoaded" | "load" | "store" | "delete")
    ->
      record st ~source:"PersistenceManager" ~action:method_name ~detail;
      Some Rvalue.V_null
  | "MessageQueue", ("publish" | "consume") ->
      record st ~source:"MessageQueue" ~action:method_name ~detail;
      Some Rvalue.V_null
  | _, _ -> None

(* instance methods of builtin singletons *)
let builtin_instance st obj_class method_name args =
  let detail = detail_of st args in
  match (obj_class, method_name) with
  | "__singleton_TransactionManager", ("begin" | "commit" | "rollback") ->
      record st ~source:"TransactionManager" ~action:method_name ~detail;
      Some Rvalue.V_null
  | "__singleton_LockManager", ("acquire" | "release") ->
      record st ~source:"LockManager" ~action:method_name ~detail;
      Some Rvalue.V_null
  | _, _ -> None

(* ---- environments --------------------------------------------------------- *)

type env = {
  vars : (string, Rvalue.t ref) Hashtbl.t;
  this : Rvalue.t;
}

let lookup_var env name = Hashtbl.find_opt env.vars name

let declare env name v = Hashtbl.replace env.vars name (ref v)

(* ---- evaluation ------------------------------------------------------------ *)

let arith op a b =
  match (op, a, b) with
  | "+", Rvalue.V_string x, y -> Rvalue.V_string (x ^ Rvalue.to_string y)
  | "+", x, Rvalue.V_string y -> Rvalue.V_string (Rvalue.to_string x ^ y)
  | "+", Rvalue.V_int x, Rvalue.V_int y -> Rvalue.V_int (x + y)
  | "-", Rvalue.V_int x, Rvalue.V_int y -> Rvalue.V_int (x - y)
  | "*", Rvalue.V_int x, Rvalue.V_int y -> Rvalue.V_int (x * y)
  | "/", Rvalue.V_int x, Rvalue.V_int y ->
      if y = 0 then raise (Java_throw (Rvalue.V_null, "RuntimeException"))
      else Rvalue.V_int (x / y)
  | "+", Rvalue.V_double x, Rvalue.V_double y -> Rvalue.V_double (x +. y)
  | "-", Rvalue.V_double x, Rvalue.V_double y -> Rvalue.V_double (x -. y)
  | "*", Rvalue.V_double x, Rvalue.V_double y -> Rvalue.V_double (x *. y)
  | "/", Rvalue.V_double x, Rvalue.V_double y -> Rvalue.V_double (x /. y)
  | "+", Rvalue.V_int x, Rvalue.V_double y -> Rvalue.V_double (float_of_int x +. y)
  | "+", Rvalue.V_double x, Rvalue.V_int y -> Rvalue.V_double (x +. float_of_int y)
  | "-", Rvalue.V_int x, Rvalue.V_double y -> Rvalue.V_double (float_of_int x -. y)
  | "-", Rvalue.V_double x, Rvalue.V_int y -> Rvalue.V_double (x -. float_of_int y)
  | "*", Rvalue.V_int x, Rvalue.V_double y -> Rvalue.V_double (float_of_int x *. y)
  | "*", Rvalue.V_double x, Rvalue.V_int y -> Rvalue.V_double (x *. float_of_int y)
  | "/", Rvalue.V_int x, Rvalue.V_double y -> Rvalue.V_double (float_of_int x /. y)
  | "/", Rvalue.V_double x, Rvalue.V_int y -> Rvalue.V_double (x /. float_of_int y)
  | _ -> error "unsupported arithmetic %s on %s and %s" op (Rvalue.to_string a) (Rvalue.to_string b)

let compare_num op a b =
  let as_float = function
    | Rvalue.V_int n -> float_of_int n
    | Rvalue.V_double f -> f
    | v -> error "comparison %s on non-number %s" op (Rvalue.to_string v)
  in
  let x = as_float a and y = as_float b in
  Rvalue.V_bool
    (match op with
    | "<" -> x < y
    | ">" -> x > y
    | "<=" -> x <= y
    | ">=" -> x >= y
    | _ -> assert false)

(* ---- compiled method bodies ---------------------------------------------- *)

(* Method bodies are closure-compiled on first call: every name that any
   declaration site in the method could bind (parameters, [S_local]s
   anywhere in the body, catch variables) gets a fixed slot in a per-call
   frame, and each AST node becomes a closure over pre-resolved slots and
   pre-dispatched operators. A slot holds [None] until its declaration
   actually executes — Java declaration is dynamic here (an [S_local]
   inside an untaken branch never runs), and an undeclared name falls back
   to field-on-this exactly like the tree walker's Hashtbl miss. Since the
   walker's method scope is flat ([declare] is [Hashtbl.replace] — one
   binding per name, never popped), slot-per-name is an exact model, not
   an approximation.

   The tree walker below stays verbatim as the differential baseline: the
   [vm] oracle runs both under [Vm.with_vm] and compares outcome and event
   trace, and [--no-vm] routes production back to it. *)

type frame = {
  slots : Rvalue.t ref option array;
  self : Rvalue.t;
  prof : int array;
}

(* Per-node-kind execution counters ([vm.exec.interp.<op>]); the check
   driver's coverage assertion requires every one reachable from the
   generator's method-body templates. *)
let op_names =
  [
    "const";
    "this";
    "local";
    "field_this";
    "field";
    "call_builtin";
    "call";
    "call_this";
    "new";
    "and";
    "or";
    "eq";
    "cmp";
    "arith";
    "not";
    "neg";
    "assign_local";
    "assign_field";
    "cast";
    "instanceof";
    "s_expr";
    "s_local";
    "s_return";
    "s_if";
    "s_while";
    "s_throw";
    "s_try";
    "s_sync";
    "s_block";
  ]

let profile = Vm.Profile.create ~prefix:"interp" op_names

let o_const = 0
let o_this = 1
let o_local = 2
let o_field_this = 3
let o_field = 4
let o_call_builtin = 5
let o_call = 6
let o_call_this = 7
let o_new = 8
let o_and = 9
let o_or = 10
let o_eq = 11
let o_cmp = 12
let o_arith = 13
let o_not = 14
let o_neg = 15
let o_assign_local = 16
let o_assign_field = 17
let o_cast = 18
let o_instanceof = 19
let o_s_expr = 20
let o_s_local = 21
let o_s_return = 22
let o_s_if = 23
let o_s_while = 24
let o_s_throw = 25
let o_s_try = 26
let o_s_sync = 27
let o_s_block = 28

(* The walker's [E_name] / assignment fallback for names with no live
   local binding: unqualified field access on [this]. Error messages match
   the walker character for character. *)
let read_name_fallback st fr n =
  match fr.self with
  | Rvalue.V_object r -> (
      let o = heap_obj st r in
      match Hashtbl.find_opt o.fields n with
      | Some v -> v
      | None -> error "unknown variable or field %s" n)
  | _ -> error "unknown variable %s" n

let write_name_fallback st fr n v =
  match fr.self with
  | Rvalue.V_object r ->
      let o = heap_obj st r in
      Hashtbl.replace o.fields n v;
      v
  | _ -> error "assignment to unknown variable %s" n

type cmethod = {
  cm_params : int array; (* slot per parameter, in declaration order *)
  cm_nslots : int;
  cm_body : t -> frame -> unit;
}

(* Bodies are cached per *physical* method record, domain-locally.
   Incremental re-weave rebuilds only the classes an aspect touched and
   shares the rest of the program structurally, so physical keying
   invalidates exactly the rewoven methods and keeps everything else
   warm. A structural key would be wrong the other way: two woven
   variants of one method are structurally distinct but a method equal
   across weaves must not recompile. *)
module Mtbl = Hashtbl.Make (struct
  type t = Code.Jdecl.method_

  let equal = ( == )

  (* Hash only the name: [Hashtbl.hash] on the whole record walks the
     body AST on every lookup, which shows up on hot invoke paths.
     Collisions between same-named methods of different classes are
     resolved by the physical-equality check. *)
  let hash m = Hashtbl.hash m.Code.Jdecl.method_name
end)

let body_cache_capacity = 4096

let body_cache_key : cmethod Mtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Mtbl.create 64)

let rec eval st env (e : Code.Jexpr.t) : Rvalue.t =
  match e with
  | Code.Jexpr.E_null -> Rvalue.V_null
  | Code.Jexpr.E_this -> env.this
  | Code.Jexpr.E_bool b -> Rvalue.V_bool b
  | Code.Jexpr.E_int n -> Rvalue.V_int n
  | Code.Jexpr.E_double f -> Rvalue.V_double f
  | Code.Jexpr.E_string s -> Rvalue.V_string s
  | Code.Jexpr.E_name n -> (
      match lookup_var env n with
      | Some r -> !r
      | None -> (
          (* unqualified field access on this *)
          match env.this with
          | Rvalue.V_object r -> (
              let o = heap_obj st r in
              match Hashtbl.find_opt o.fields n with
              | Some v -> v
              | None -> error "unknown variable or field %s" n)
          | _ -> error "unknown variable %s" n))
  | Code.Jexpr.E_field (recv, f) -> (
      match eval st env recv with
      | Rvalue.V_object r -> (
          let o = heap_obj st r in
          match Hashtbl.find_opt o.fields f with
          | Some v -> v
          | None -> error "class %s has no field %s" o.obj_class f)
      | Rvalue.V_null -> raise (Java_throw (Rvalue.V_null, "RuntimeException"))
      | v -> error "field access .%s on %s" f (Rvalue.to_string v))
  | Code.Jexpr.E_call (recv, name, args) -> eval_call st env recv name args
  | Code.Jexpr.E_new (cls, args) ->
      ignore (List.map (eval st env) args);
      new_object st cls
  | Code.Jexpr.E_binary (op, a, b) -> eval_binary st env op a b
  | Code.Jexpr.E_unary (op, a) -> (
      match (op, eval st env a) with
      | "!", Rvalue.V_bool b -> Rvalue.V_bool (not b)
      | "-", Rvalue.V_int n -> Rvalue.V_int (-n)
      | "-", Rvalue.V_double f -> Rvalue.V_double (-.f)
      | op, v -> error "unsupported unary %s on %s" op (Rvalue.to_string v))
  | Code.Jexpr.E_assign (lhs, rhs) -> (
      let v = eval st env rhs in
      match lhs with
      | Code.Jexpr.E_name n -> (
          match lookup_var env n with
          | Some r ->
              r := v;
              v
          | None -> (
              match env.this with
              | Rvalue.V_object r ->
                  let o = heap_obj st r in
                  Hashtbl.replace o.fields n v;
                  v
              | _ -> error "assignment to unknown variable %s" n))
      | Code.Jexpr.E_field (recv, f) -> (
          match eval st env recv with
          | Rvalue.V_object r ->
              let o = heap_obj st r in
              Hashtbl.replace o.fields f v;
              v
          | Rvalue.V_null -> raise (Java_throw (Rvalue.V_null, "RuntimeException"))
          | other -> error "assignment to field of %s" (Rvalue.to_string other))
      | _ -> error "unsupported assignment target")
  | Code.Jexpr.E_cast (_, a) -> eval st env a
  | Code.Jexpr.E_instanceof (a, cls) -> (
      match eval st env a with
      | Rvalue.V_object r ->
          Rvalue.V_bool (conforms_to st (heap_obj st r).obj_class cls)
      | Rvalue.V_null -> Rvalue.V_bool false
      | _ -> Rvalue.V_bool false)

and eval_binary st env op a b =
  match op with
  | "&&" ->
      if Rvalue.truthy (eval st env a) then eval st env b else Rvalue.V_bool false
  | "||" ->
      if Rvalue.truthy (eval st env a) then Rvalue.V_bool true else eval st env b
  | "==" -> Rvalue.V_bool (Rvalue.equal (eval st env a) (eval st env b))
  | "!=" -> Rvalue.V_bool (not (Rvalue.equal (eval st env a) (eval st env b)))
  | "<" | ">" | "<=" | ">=" -> compare_num op (eval st env a) (eval st env b)
  | "+" | "-" | "*" | "/" -> arith op (eval st env a) (eval st env b)
  | op -> error "unsupported operator %s" op

and eval_call st env recv name args =
  match recv with
  | Some (Code.Jexpr.E_name cls) when is_builtin_receiver cls -> (
      let arg_values = List.map (eval st env) args in
      match builtin_static st cls name arg_values with
      | Some v -> v
      | None -> error "builtin %s has no method %s" cls name)
  | Some recv_expr -> (
      let recv_value = eval st env recv_expr in
      let arg_values = List.map (eval st env) args in
      match recv_value with
      | Rvalue.V_object r -> (
          let o = heap_obj st r in
          match builtin_instance st o.obj_class name arg_values with
          | Some v -> v
          | None -> invoke st recv_value o.obj_class name arg_values)
      | Rvalue.V_null -> raise (Java_throw (Rvalue.V_null, "RuntimeException"))
      | v -> error "method call .%s on %s" name (Rvalue.to_string v))
  | None -> (
      (* unqualified: a method on this *)
      let arg_values = List.map (eval st env) args in
      match env.this with
      | Rvalue.V_object r ->
          invoke st env.this (heap_obj st r).obj_class name arg_values
      | _ -> error "unqualified call %s with no this" name)

and invoke st this class_name method_name arg_values =
  match method_of st class_name method_name with
  | None -> error "class %s has no method %s" class_name method_name
  | Some (owner, m) -> (
      if List.mem (owner.Code.Jdecl.class_name, method_name) st.faults then begin
        record st ~source:"FaultInjector" ~action:"throw"
          ~detail:(owner.Code.Jdecl.class_name ^ "." ^ method_name);
        raise (Java_throw (new_object st "RuntimeException", "RuntimeException"))
      end;
      match m.Code.Jdecl.body with
      | None -> Rvalue.default_of m.Code.Jdecl.return_type
      | Some _ when Vm.enabled () ->
          invoke_compiled st this class_name method_name m arg_values
      | Some body -> (
          let env = { vars = Hashtbl.create 8; this } in
          (try
             List.iter2
               (fun (p : Code.Jdecl.param) v -> declare env p.Code.Jdecl.param_name v)
               m.Code.Jdecl.params arg_values
           with Invalid_argument _ ->
             error "arity mismatch calling %s.%s" class_name method_name);
          try
            exec_block st env body;
            Rvalue.default_of m.Code.Jdecl.return_type
          with Java_return v -> v))

and exec_block st env stmts = List.iter (exec st env) stmts

and exec st env (stmt : Code.Jstmt.t) =
  match stmt with
  | Code.Jstmt.S_expr e -> ignore (eval st env e)
  | Code.Jstmt.S_local (_, name, init) ->
      let v =
        match init with Some e -> eval st env e | None -> Rvalue.V_null
      in
      declare env name v
  | Code.Jstmt.S_return None -> raise (Java_return Rvalue.V_null)
  | Code.Jstmt.S_return (Some e) -> raise (Java_return (eval st env e))
  | Code.Jstmt.S_if (cond, then_, else_) ->
      if Rvalue.truthy (eval st env cond) then exec_block st env then_
      else exec_block st env else_
  | Code.Jstmt.S_while (cond, body) ->
      while Rvalue.truthy (eval st env cond) do
        exec_block st env body
      done
  | Code.Jstmt.S_throw e -> (
      match eval st env e with
      | Rvalue.V_object r as v -> raise (Java_throw (v, (heap_obj st r).obj_class))
      | v -> raise (Java_throw (v, "RuntimeException")))
  | Code.Jstmt.S_try (body, catches, finally) -> (
      let run_finally () = exec_block st env finally in
      match exec_block st env body with
      | () -> run_finally ()
      | exception Java_throw (v, cls) -> (
          let handler =
            List.find_opt
              (fun (t, _, _) ->
                match t with
                | Code.Jtype.T_named catch_cls -> conforms_to st cls catch_cls
                | _ -> false)
              catches
          in
          match handler with
          | Some (_, var, handler_body) -> (
              declare env var v;
              match exec_block st env handler_body with
              | () -> run_finally ()
              | exception e ->
                  run_finally ();
                  raise e)
          | None ->
              run_finally ();
              raise (Java_throw (v, cls)))
      | exception e ->
          (* Java_return or an interpreter error: finally still runs *)
          run_finally ();
          raise e)
  | Code.Jstmt.S_sync (lock, body) ->
      let v = eval st env lock in
      record st ~source:"Monitor" ~action:"enter" ~detail:(class_of_value st v);
      Fun.protect
        ~finally:(fun () ->
          record st ~source:"Monitor" ~action:"exit" ~detail:(class_of_value st v))
        (fun () -> exec_block st env body)
  | Code.Jstmt.S_comment _ -> ()
  | Code.Jstmt.S_block stmts -> exec_block st env stmts

(* ---- compilation ------------------------------------------------------------ *)

and invoke_compiled st this class_name method_name m arg_values =
  let cm = compiled_method m in
  let fr =
    {
      slots = Array.make (max cm.cm_nslots 1) None;
      self = this;
      prof = Vm.Profile.shard profile;
    }
  in
  if Array.length cm.cm_params <> List.length arg_values then
    error "arity mismatch calling %s.%s" class_name method_name;
  List.iteri
    (fun i v -> fr.slots.(cm.cm_params.(i)) <- Some (ref v))
    arg_values;
  try
    cm.cm_body st fr;
    Rvalue.default_of m.Code.Jdecl.return_type
  with Java_return v -> v

and compiled_method m =
  let table = Domain.DLS.get body_cache_key in
  match Mtbl.find_opt table m with
  | Some cm -> cm
  | None ->
      Obs.incr "vm.compile.interp" [];
      let cm = compile_method m in
      if Mtbl.length table >= body_cache_capacity then Mtbl.reset table;
      Mtbl.add table m cm;
      cm

and compile_method (m : Code.Jdecl.method_) : cmethod =
  let body = match m.Code.Jdecl.body with Some b -> b | None -> [] in
  (* Slot assignment: first-occurrence order over every possible
     declaration site. Duplicate names share a slot, like the walker's
     single Hashtbl binding. *)
  let slots : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let nslots = ref 0 in
  let bind name =
    if not (Hashtbl.mem slots name) then begin
      Hashtbl.add slots name !nslots;
      incr nslots
    end
  in
  List.iter
    (fun (p : Code.Jdecl.param) -> bind p.Code.Jdecl.param_name)
    m.Code.Jdecl.params;
  let rec scan (s : Code.Jstmt.t) =
    match s with
    | Code.Jstmt.S_local (_, name, _) -> bind name
    | Code.Jstmt.S_if (_, then_, else_) ->
        List.iter scan then_;
        List.iter scan else_
    | Code.Jstmt.S_while (_, b) -> List.iter scan b
    | Code.Jstmt.S_try (b, catches, finally) ->
        List.iter scan b;
        List.iter
          (fun (_, var, hb) ->
            bind var;
            List.iter scan hb)
          catches;
        List.iter scan finally
    | Code.Jstmt.S_sync (_, b) -> List.iter scan b
    | Code.Jstmt.S_block b -> List.iter scan b
    | Code.Jstmt.S_expr _ | Code.Jstmt.S_return _ | Code.Jstmt.S_throw _
    | Code.Jstmt.S_comment _ ->
        ()
  in
  List.iter scan body;
  let slot name = Hashtbl.find_opt slots name in
  let rec cexpr (e : Code.Jexpr.t) : t -> frame -> Rvalue.t =
    match e with
    | Code.Jexpr.E_null ->
        fun _ fr ->
          Vm.Profile.hit fr.prof o_const;
          Rvalue.V_null
    | Code.Jexpr.E_bool b ->
        let v = Rvalue.V_bool b in
        fun _ fr ->
          Vm.Profile.hit fr.prof o_const;
          v
    | Code.Jexpr.E_int n ->
        let v = Rvalue.V_int n in
        fun _ fr ->
          Vm.Profile.hit fr.prof o_const;
          v
    | Code.Jexpr.E_double f ->
        let v = Rvalue.V_double f in
        fun _ fr ->
          Vm.Profile.hit fr.prof o_const;
          v
    | Code.Jexpr.E_string s ->
        let v = Rvalue.V_string s in
        fun _ fr ->
          Vm.Profile.hit fr.prof o_const;
          v
    | Code.Jexpr.E_this ->
        fun _ fr ->
          Vm.Profile.hit fr.prof o_this;
          fr.self
    | Code.Jexpr.E_name n -> (
        match slot n with
        | Some i ->
            fun st fr -> (
              match fr.slots.(i) with
              | Some r ->
                  Vm.Profile.hit fr.prof o_local;
                  !r
              | None ->
                  Vm.Profile.hit fr.prof o_field_this;
                  read_name_fallback st fr n)
        | None ->
            fun st fr ->
              Vm.Profile.hit fr.prof o_field_this;
              read_name_fallback st fr n)
    | Code.Jexpr.E_field (recv, f) -> (
        let crecv = cexpr recv in
        fun st fr ->
          Vm.Profile.hit fr.prof o_field;
          match crecv st fr with
          | Rvalue.V_object r -> (
              let o = heap_obj st r in
              match Hashtbl.find_opt o.fields f with
              | Some v -> v
              | None -> error "class %s has no field %s" o.obj_class f)
          | Rvalue.V_null ->
              raise (Java_throw (Rvalue.V_null, "RuntimeException"))
          | v -> error "field access .%s on %s" f (Rvalue.to_string v))
    | Code.Jexpr.E_call (recv, name, args) -> ccall recv name args
    | Code.Jexpr.E_new (cls, args) ->
        let cargs = List.map cexpr args in
        fun st fr ->
          Vm.Profile.hit fr.prof o_new;
          List.iter (fun c -> ignore (c st fr)) cargs;
          new_object st cls
    | Code.Jexpr.E_binary (op, a, b) -> (
        match op with
        | "&&" ->
            let ca = cexpr a and cb = cexpr b in
            fun st fr ->
              Vm.Profile.hit fr.prof o_and;
              if Rvalue.truthy (ca st fr) then cb st fr else Rvalue.V_bool false
        | "||" ->
            let ca = cexpr a and cb = cexpr b in
            fun st fr ->
              Vm.Profile.hit fr.prof o_or;
              if Rvalue.truthy (ca st fr) then Rvalue.V_bool true else cb st fr
        (* The strict operators below evaluate the RIGHT operand first:
           the walker passes both operand evaluations as arguments to
           [Rvalue.equal]/[compare_num]/[arith], and OCaml evaluates
           function arguments right-to-left. Side effects in operands
           (method calls mutating fields) make the order observable, and
           the compiled path must reproduce it exactly. *)
        | "==" ->
            let ca = cexpr a and cb = cexpr b in
            fun st fr ->
              Vm.Profile.hit fr.prof o_eq;
              let vb = cb st fr in
              let va = ca st fr in
              Rvalue.V_bool (Rvalue.equal va vb)
        | "!=" ->
            let ca = cexpr a and cb = cexpr b in
            fun st fr ->
              Vm.Profile.hit fr.prof o_eq;
              let vb = cb st fr in
              let va = ca st fr in
              Rvalue.V_bool (not (Rvalue.equal va vb))
        | "<" | ">" | "<=" | ">=" ->
            let ca = cexpr a and cb = cexpr b in
            fun st fr ->
              Vm.Profile.hit fr.prof o_cmp;
              let vb = cb st fr in
              let va = ca st fr in
              compare_num op va vb
        | "+" | "-" | "*" | "/" ->
            let ca = cexpr a and cb = cexpr b in
            fun st fr ->
              Vm.Profile.hit fr.prof o_arith;
              let vb = cb st fr in
              let va = ca st fr in
              arith op va vb
        | op -> fun _ _ -> error "unsupported operator %s" op)
    | Code.Jexpr.E_unary (op, a) -> (
        let ca = cexpr a in
        match op with
        | "!" -> (
            fun st fr ->
              Vm.Profile.hit fr.prof o_not;
              match ca st fr with
              | Rvalue.V_bool b -> Rvalue.V_bool (not b)
              | v -> error "unsupported unary ! on %s" (Rvalue.to_string v))
        | "-" -> (
            fun st fr ->
              Vm.Profile.hit fr.prof o_neg;
              match ca st fr with
              | Rvalue.V_int n -> Rvalue.V_int (-n)
              | Rvalue.V_double f -> Rvalue.V_double (-.f)
              | v -> error "unsupported unary - on %s" (Rvalue.to_string v))
        | op ->
            fun st fr ->
              let v = ca st fr in
              error "unsupported unary %s on %s" op (Rvalue.to_string v))
    | Code.Jexpr.E_assign (lhs, rhs) -> (
        let crhs = cexpr rhs in
        match lhs with
        | Code.Jexpr.E_name n -> (
            match slot n with
            | Some i ->
                fun st fr -> (
                  let v = crhs st fr in
                  match fr.slots.(i) with
                  | Some r ->
                      Vm.Profile.hit fr.prof o_assign_local;
                      r := v;
                      v
                  | None ->
                      Vm.Profile.hit fr.prof o_assign_field;
                      write_name_fallback st fr n v)
            | None ->
                fun st fr ->
                  let v = crhs st fr in
                  Vm.Profile.hit fr.prof o_assign_field;
                  write_name_fallback st fr n v)
        | Code.Jexpr.E_field (recv, f) -> (
            let crecv = cexpr recv in
            fun st fr ->
              let v = crhs st fr in
              Vm.Profile.hit fr.prof o_assign_field;
              match crecv st fr with
              | Rvalue.V_object r ->
                  let o = heap_obj st r in
                  Hashtbl.replace o.fields f v;
                  v
              | Rvalue.V_null ->
                  raise (Java_throw (Rvalue.V_null, "RuntimeException"))
              | other ->
                  error "assignment to field of %s" (Rvalue.to_string other))
        | _ ->
            fun st fr ->
              ignore (crhs st fr);
              error "unsupported assignment target")
    | Code.Jexpr.E_cast (_, a) ->
        let ca = cexpr a in
        fun st fr ->
          Vm.Profile.hit fr.prof o_cast;
          ca st fr
    | Code.Jexpr.E_instanceof (a, cls) -> (
        let ca = cexpr a in
        fun st fr ->
          Vm.Profile.hit fr.prof o_instanceof;
          match ca st fr with
          | Rvalue.V_object r ->
              Rvalue.V_bool (conforms_to st (heap_obj st r).obj_class cls)
          | Rvalue.V_null -> Rvalue.V_bool false
          | _ -> Rvalue.V_bool false)
  and ccall recv name args =
    let cargs = List.map cexpr args in
    let eval_args st fr = List.map (fun c -> c st fr) cargs in
    match recv with
    | Some (Code.Jexpr.E_name cls) when is_builtin_receiver cls -> (
        (* The walker's builtin-receiver test is purely syntactic (a local
           named [Logger] does not shadow the builtin), so it moves to
           compile time. *)
        fun st fr ->
          Vm.Profile.hit fr.prof o_call_builtin;
          let arg_values = eval_args st fr in
          match builtin_static st cls name arg_values with
          | Some v -> v
          | None -> error "builtin %s has no method %s" cls name)
    | Some recv_expr -> (
        let crecv = cexpr recv_expr in
        fun st fr ->
          Vm.Profile.hit fr.prof o_call;
          let recv_value = crecv st fr in
          let arg_values = eval_args st fr in
          match recv_value with
          | Rvalue.V_object r -> (
              let o = heap_obj st r in
              match builtin_instance st o.obj_class name arg_values with
              | Some v -> v
              | None -> invoke st recv_value o.obj_class name arg_values)
          | Rvalue.V_null ->
              raise (Java_throw (Rvalue.V_null, "RuntimeException"))
          | v -> error "method call .%s on %s" name (Rvalue.to_string v))
    | None -> (
        fun st fr ->
          Vm.Profile.hit fr.prof o_call_this;
          let arg_values = eval_args st fr in
          match fr.self with
          | Rvalue.V_object r ->
              invoke st fr.self (heap_obj st r).obj_class name arg_values
          | _ -> error "unqualified call %s with no this" name)
  and cstmt (s : Code.Jstmt.t) : t -> frame -> unit =
    match s with
    | Code.Jstmt.S_expr e ->
        let ce = cexpr e in
        fun st fr ->
          Vm.Profile.hit fr.prof o_s_expr;
          ignore (ce st fr)
    | Code.Jstmt.S_local (_, name, init) ->
        let i =
          match slot name with Some i -> i | None -> assert false
          (* scanned above *)
        in
        let cinit =
          match init with
          | Some e -> cexpr e
          | None -> fun _ _ -> Rvalue.V_null
        in
        fun st fr ->
          Vm.Profile.hit fr.prof o_s_local;
          let v = cinit st fr in
          fr.slots.(i) <- Some (ref v)
    | Code.Jstmt.S_return None ->
        fun _ fr ->
          Vm.Profile.hit fr.prof o_s_return;
          raise (Java_return Rvalue.V_null)
    | Code.Jstmt.S_return (Some e) ->
        let ce = cexpr e in
        fun st fr ->
          Vm.Profile.hit fr.prof o_s_return;
          raise (Java_return (ce st fr))
    | Code.Jstmt.S_if (cond, then_, else_) ->
        let ccond = cexpr cond in
        let cthen = cblock then_ and celse = cblock else_ in
        fun st fr ->
          Vm.Profile.hit fr.prof o_s_if;
          if Rvalue.truthy (ccond st fr) then cthen st fr else celse st fr
    | Code.Jstmt.S_while (cond, body) ->
        let ccond = cexpr cond in
        let cbody = cblock body in
        fun st fr ->
          Vm.Profile.hit fr.prof o_s_while;
          while Rvalue.truthy (ccond st fr) do
            cbody st fr
          done
    | Code.Jstmt.S_throw e -> (
        let ce = cexpr e in
        fun st fr ->
          Vm.Profile.hit fr.prof o_s_throw;
          match ce st fr with
          | Rvalue.V_object r as v ->
              raise (Java_throw (v, (heap_obj st r).obj_class))
          | v -> raise (Java_throw (v, "RuntimeException")))
    | Code.Jstmt.S_try (body, catches, finally) -> (
        let cbody = cblock body in
        let ccatches =
          List.map
            (fun (ty, var, hb) ->
              let i =
                match slot var with Some i -> i | None -> assert false
              in
              (ty, i, cblock hb))
            catches
        in
        let cfin = cblock finally in
        fun st fr ->
          Vm.Profile.hit fr.prof o_s_try;
          let run_finally () = cfin st fr in
          match cbody st fr with
          | () -> run_finally ()
          | exception Java_throw (v, cls) -> (
              let handler =
                List.find_opt
                  (fun (ty, _, _) ->
                    match ty with
                    | Code.Jtype.T_named catch_cls ->
                        conforms_to st cls catch_cls
                    | _ -> false)
                  ccatches
              in
              match handler with
              | Some (_, var_slot, chandler) -> (
                  fr.slots.(var_slot) <- Some (ref v);
                  match chandler st fr with
                  | () -> run_finally ()
                  | exception e ->
                      run_finally ();
                      raise e)
              | None ->
                  run_finally ();
                  raise (Java_throw (v, cls)))
          | exception e ->
              run_finally ();
              raise e)
    | Code.Jstmt.S_sync (lock, body) ->
        let clock = cexpr lock in
        let cbody = cblock body in
        fun st fr ->
          Vm.Profile.hit fr.prof o_s_sync;
          let v = clock st fr in
          record st ~source:"Monitor" ~action:"enter"
            ~detail:(class_of_value st v);
          Fun.protect
            ~finally:(fun () ->
              record st ~source:"Monitor" ~action:"exit"
                ~detail:(class_of_value st v))
            (fun () -> cbody st fr)
    | Code.Jstmt.S_comment _ -> fun _ _ -> ()
    | Code.Jstmt.S_block stmts ->
        let cb = cblock stmts in
        fun st fr ->
          Vm.Profile.hit fr.prof o_s_block;
          cb st fr
  and cblock stmts =
    let arr = Array.of_list (List.map cstmt stmts) in
    let n = Array.length arr in
    fun st fr ->
      for i = 0 to n - 1 do
        (Array.unsafe_get arr i) st fr
      done
  in
  {
    cm_params =
      Array.of_list
        (List.map
           (fun (p : Code.Jdecl.param) ->
             Hashtbl.find slots p.Code.Jdecl.param_name)
           m.Code.Jdecl.params);
    cm_nslots = !nslots;
    cm_body = cblock body;
  }

(* ---- public API ------------------------------------------------------------- *)

let create ?(faults = []) program =
  { program; heap = Hashtbl.create 64; next_ref = 0; log = []; faults }

let call st ~recv name args =
  match recv with
  | Rvalue.V_object r -> invoke st recv (heap_obj st r).obj_class name args
  | v -> error "call on non-object %s" (Rvalue.to_string v)

let run ?(faults = []) ?(args = []) program ~class_name ~method_name =
  let st = create ~faults program in
  let this = new_object st class_name in
  let result =
    match invoke st this class_name method_name args with
    | v -> Ok v
    | exception Java_throw (_, cls) -> Error cls
  in
  { result; events = events st }
