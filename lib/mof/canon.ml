(* Canonical element codec. One rendering per element value: field order is
   declaration order, ints are unsigned LEB128, strings length-prefixed,
   kind constructors carry fixed tag bytes. Changing any tag or field order
   is a snapshot-format break — the repository fixpoint test will catch it,
   but old snapshots will not load; bump the snapshot magic when you must. *)

exception Corrupt of string

(* ---- writer primitives --------------------------------------------------- *)

let w_int b n =
  if n < 0 then invalid_arg "Mof.Canon.w_int: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char b (Char.chr n)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let w_str b s =
  w_int b (String.length s);
  Buffer.add_string b s

let w_bool b v = Buffer.add_char b (if v then '\001' else '\000')

let w_opt w b = function
  | None -> Buffer.add_char b '\000'
  | Some v ->
      Buffer.add_char b '\001';
      w b v

let w_list w b l =
  w_int b (List.length l);
  List.iter (w b) l

let w_id b id = w_int b (Id.to_int id)

(* ---- reader primitives --------------------------------------------------- *)

type reader = { src : string; mutable pos : int }

let reader ?(pos = 0) src = { src; pos }
let pos r = r.pos
let at_end r = r.pos >= String.length r.src

let byte r =
  if r.pos >= String.length r.src then raise (Corrupt "truncated input");
  let c = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

let r_int r =
  let rec go shift acc =
    if shift > 56 then raise (Corrupt "varint too wide");
    let b = byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let r_bytes r n =
  if n < 0 || r.pos + n > String.length r.src then
    raise (Corrupt "truncated bytes");
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let r_str r = r_bytes r (r_int r)

let r_bool r =
  match byte r with
  | 0 -> false
  | 1 -> true
  | n -> raise (Corrupt (Printf.sprintf "bad bool byte %d" n))

let r_opt rd r =
  match byte r with
  | 0 -> None
  | 1 -> Some (rd r)
  | n -> raise (Corrupt (Printf.sprintf "bad option byte %d" n))

let r_list rd r =
  let n = r_int r in
  List.init n (fun _ -> rd r)

let r_id r = Id.of_int (r_int r)

(* ---- enums --------------------------------------------------------------- *)

let visibility_tag = function
  | Kind.Public -> 0
  | Kind.Private -> 1
  | Kind.Protected -> 2
  | Kind.Package_level -> 3

let visibility_of_tag = function
  | 0 -> Kind.Public
  | 1 -> Kind.Private
  | 2 -> Kind.Protected
  | 3 -> Kind.Package_level
  | n -> raise (Corrupt (Printf.sprintf "bad visibility tag %d" n))

let direction_tag = function
  | Kind.Dir_in -> 0
  | Kind.Dir_out -> 1
  | Kind.Dir_inout -> 2
  | Kind.Dir_return -> 3

let direction_of_tag = function
  | 0 -> Kind.Dir_in
  | 1 -> Kind.Dir_out
  | 2 -> Kind.Dir_inout
  | 3 -> Kind.Dir_return
  | n -> raise (Corrupt (Printf.sprintf "bad direction tag %d" n))

let aggregation_tag = function
  | Kind.Ag_none -> 0
  | Kind.Ag_shared -> 1
  | Kind.Ag_composite -> 2

let aggregation_of_tag = function
  | 0 -> Kind.Ag_none
  | 1 -> Kind.Ag_shared
  | 2 -> Kind.Ag_composite
  | n -> raise (Corrupt (Printf.sprintf "bad aggregation tag %d" n))

let w_mult b (m : Kind.multiplicity) =
  w_int b m.Kind.lower;
  w_opt w_int b m.Kind.upper

let r_mult r =
  let lower = r_int r in
  let upper = r_opt r_int r in
  { Kind.lower; upper }

let rec w_datatype b = function
  | Kind.Dt_void -> w_int b 0
  | Kind.Dt_boolean -> w_int b 1
  | Kind.Dt_integer -> w_int b 2
  | Kind.Dt_real -> w_int b 3
  | Kind.Dt_string -> w_int b 4
  | Kind.Dt_ref id ->
      w_int b 5;
      w_id b id
  | Kind.Dt_collection dt ->
      w_int b 6;
      w_datatype b dt

let rec r_datatype r =
  match r_int r with
  | 0 -> Kind.Dt_void
  | 1 -> Kind.Dt_boolean
  | 2 -> Kind.Dt_integer
  | 3 -> Kind.Dt_real
  | 4 -> Kind.Dt_string
  | 5 -> Kind.Dt_ref (r_id r)
  | 6 -> Kind.Dt_collection (r_datatype r)
  | n -> raise (Corrupt (Printf.sprintf "bad datatype tag %d" n))

(* ---- kinds --------------------------------------------------------------- *)

let w_assoc_end b (e : Kind.assoc_end) =
  w_str b e.Kind.end_name;
  w_id b e.Kind.end_type;
  w_mult b e.Kind.end_mult;
  w_bool b e.Kind.end_navigable;
  w_int b (aggregation_tag e.Kind.end_aggregation)

let r_assoc_end r =
  let end_name = r_str r in
  let end_type = r_id r in
  let end_mult = r_mult r in
  let end_navigable = r_bool r in
  let end_aggregation = aggregation_of_tag (r_int r) in
  { Kind.end_name; end_type; end_mult; end_navigable; end_aggregation }

let w_kind b = function
  | Kind.Package { owned } ->
      w_int b 0;
      w_list w_id b owned
  | Kind.Class p ->
      w_int b 1;
      w_bool b p.Kind.is_abstract;
      w_list w_id b p.Kind.attributes;
      w_list w_id b p.Kind.operations;
      w_list w_id b p.Kind.supers;
      w_list w_id b p.Kind.realizes
  | Kind.Interface { operations } ->
      w_int b 2;
      w_list w_id b operations
  | Kind.Attribute
      { attr_type; attr_visibility; attr_mult; is_derived; is_static; initial_value }
    ->
      w_int b 3;
      w_datatype b attr_type;
      w_int b (visibility_tag attr_visibility);
      w_mult b attr_mult;
      w_bool b is_derived;
      w_bool b is_static;
      w_opt w_str b initial_value
  | Kind.Operation { params; op_visibility; is_query; is_abstract_op; is_static_op }
    ->
      w_int b 4;
      w_list w_id b params;
      w_int b (visibility_tag op_visibility);
      w_bool b is_query;
      w_bool b is_abstract_op;
      w_bool b is_static_op
  | Kind.Parameter { param_type; direction } ->
      w_int b 5;
      w_datatype b param_type;
      w_int b (direction_tag direction)
  | Kind.Association { ends } ->
      w_int b 6;
      w_list w_assoc_end b ends
  | Kind.Generalization { child; parent } ->
      w_int b 7;
      w_id b child;
      w_id b parent
  | Kind.Dependency { client; supplier } ->
      w_int b 8;
      w_id b client;
      w_id b supplier
  | Kind.Constraint_ { constrained; body; language } ->
      w_int b 9;
      w_list w_id b constrained;
      w_str b body;
      w_str b language
  | Kind.Enumeration { literals } ->
      w_int b 10;
      w_list w_str b literals

let r_kind r =
  match r_int r with
  | 0 -> Kind.Package { owned = r_list r_id r }
  | 1 ->
      let is_abstract = r_bool r in
      let attributes = r_list r_id r in
      let operations = r_list r_id r in
      let supers = r_list r_id r in
      let realizes = r_list r_id r in
      Kind.Class { is_abstract; attributes; operations; supers; realizes }
  | 2 -> Kind.Interface { operations = r_list r_id r }
  | 3 ->
      let attr_type = r_datatype r in
      let attr_visibility = visibility_of_tag (r_int r) in
      let attr_mult = r_mult r in
      let is_derived = r_bool r in
      let is_static = r_bool r in
      let initial_value = r_opt r_str r in
      Kind.Attribute
        { attr_type; attr_visibility; attr_mult; is_derived; is_static; initial_value }
  | 4 ->
      let params = r_list r_id r in
      let op_visibility = visibility_of_tag (r_int r) in
      let is_query = r_bool r in
      let is_abstract_op = r_bool r in
      let is_static_op = r_bool r in
      Kind.Operation { params; op_visibility; is_query; is_abstract_op; is_static_op }
  | 5 ->
      let param_type = r_datatype r in
      let direction = direction_of_tag (r_int r) in
      Kind.Parameter { param_type; direction }
  | 6 -> Kind.Association { ends = r_list r_assoc_end r }
  | 7 ->
      let child = r_id r in
      let parent = r_id r in
      Kind.Generalization { child; parent }
  | 8 ->
      let client = r_id r in
      let supplier = r_id r in
      Kind.Dependency { client; supplier }
  | 9 ->
      let constrained = r_list r_id r in
      let body = r_str r in
      let language = r_str r in
      Kind.Constraint_ { constrained; body; language }
  | 10 -> Kind.Enumeration { literals = r_list r_str r }
  | n -> raise (Corrupt (Printf.sprintf "bad kind tag %d" n))

(* ---- elements ------------------------------------------------------------ *)

let w_pair b (k, v) =
  w_str b k;
  w_str b v

let r_pair r =
  let k = r_str r in
  let v = r_str r in
  (k, v)

let write_element b (e : Element.t) =
  w_id b e.Element.id;
  w_str b e.Element.name;
  w_opt w_id b e.Element.owner;
  w_kind b e.Element.kind;
  w_list w_str b e.Element.stereotypes;
  w_list w_pair b e.Element.tags

let read_element r =
  let id = r_id r in
  let name = r_str r in
  let owner = r_opt r_id r in
  let kind = r_kind r in
  let stereotypes = r_list r_str r in
  let tags = r_list r_pair r in
  Element.make ~stereotypes ~tags ~id ~name ~owner kind

let element_bytes e =
  let b = Buffer.create 64 in
  write_element b e;
  Buffer.contents b

let digest e = Digest.string (element_bytes e)
let digest_size = 16
let digest_hex = Digest.to_hex
