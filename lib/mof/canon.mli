(** Canonical binary serialization and content digests for elements.

    Every element has exactly one canonical byte rendering: fields in
    declaration order, unsigned LEB128 varints for non-negative integers,
    length-prefixed UTF-8 for strings, a fixed tag byte per kind
    constructor, and list fields length-prefixed in their stored order
    (stereotype and tagged-value order is part of {!Element.equal}, so it
    is part of the rendering too). The contract the repository's object
    store builds on:

    - [element_bytes a = element_bytes b] iff [Element.equal a b];
    - [read_element (reader (element_bytes e)) = e] — the codec is a
      bijection onto its image;
    - the rendering never changes silently: it is locked by the
      repository snapshot fixpoint test and the [repo] differential
      oracle.

    {!digest} is the 16-byte MD5 of the canonical bytes — the content
    address under which the repository's store hash-conses elements.
    MD5 is used as a content-addressing hash (collision resistance against
    adversarial inputs is not part of the threat model of an in-process
    model store; what matters is stability and speed).

    The low-level writer/reader primitives are exposed so the repository
    snapshot format can reuse one wire discipline instead of inventing a
    second. *)

exception Corrupt of string
(** Raised by the reader on truncated or malformed input. *)

(** {2 Writer primitives} *)

val w_int : Buffer.t -> int -> unit
(** Unsigned LEB128. Raises [Invalid_argument] on negative input. *)

val w_str : Buffer.t -> string -> unit
(** Length-prefixed raw bytes. *)

val w_bool : Buffer.t -> bool -> unit

val w_opt : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a option -> unit

val w_list : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a list -> unit
(** Count-prefixed; items in list order. *)

val w_id : Buffer.t -> Id.t -> unit

(** {2 Reader primitives} *)

type reader

val reader : ?pos:int -> string -> reader
val pos : reader -> int
val at_end : reader -> bool

val r_int : reader -> int
val r_str : reader -> string
val r_bool : reader -> bool
val r_opt : (reader -> 'a) -> reader -> 'a option
val r_list : (reader -> 'a) -> reader -> 'a list
val r_id : reader -> Id.t

val r_bytes : reader -> int -> string
(** [r_bytes r n] consumes exactly [n] raw bytes. *)

(** {2 Elements} *)

val write_element : Buffer.t -> Element.t -> unit
val read_element : reader -> Element.t

val element_bytes : Element.t -> string
(** The canonical rendering of one element. *)

val digest : Element.t -> string
(** 16-byte raw MD5 of {!element_bytes}. *)

val digest_size : int
(** Byte width of {!digest}: 16. *)

val digest_hex : string -> string
(** Lowercase hex of a raw digest (display only). *)
