type t = {
  added : Id.Set.t;
  removed : Id.Set.t;
  modified : Id.Set.t;
}

let empty = { added = Id.Set.empty; removed = Id.Set.empty; modified = Id.Set.empty }

let is_empty d =
  Id.Set.is_empty d.added && Id.Set.is_empty d.removed && Id.Set.is_empty d.modified

let compute_scan ~old_model ~new_model =
  let classify e acc =
    let id = e.Element.id in
    match Model.find old_model id with
    | None -> { acc with added = Id.Set.add id acc.added }
    | Some old_e ->
        if Element.equal old_e e then acc
        else { acc with modified = Id.Set.add id acc.modified }
  in
  let acc = Model.fold classify new_model empty in
  let removed =
    Model.fold
      (fun e acc ->
        if Model.mem new_model e.Element.id then acc
        else Id.Set.add e.Element.id acc)
      old_model Id.Set.empty
  in
  { acc with removed }

(* Classify only the journalled candidates: an id touched since the old
   model's watermark is added/removed/modified according to where it is
   bound now; anything touched and touched back (or touched without change)
   drops out on the equality check. *)
let compute_journal ~old_model ~new_model touched =
  Id.Set.fold
    (fun id acc ->
      match (Model.find old_model id, Model.find new_model id) with
      | None, Some _ -> { acc with added = Id.Set.add id acc.added }
      | Some _, None -> { acc with removed = Id.Set.add id acc.removed }
      | Some old_e, Some new_e ->
          if Element.equal old_e new_e then acc
          else { acc with modified = Id.Set.add id acc.modified }
      | None, None -> acc)
    touched empty

let compute ~old_model ~new_model =
  match Model.touched_since new_model (Model.watermark old_model) with
  | Some touched -> compute_journal ~old_model ~new_model touched
  | None -> compute_scan ~old_model ~new_model

let union a b =
  let added = Id.Set.union a.added b.added in
  {
    added;
    removed = Id.Set.union a.removed b.removed;
    modified = Id.Set.diff (Id.Set.union a.modified b.modified) added;
  }

let touched d = Id.Set.union d.added (Id.Set.union d.removed d.modified)
let cardinal d = Id.Set.cardinal (touched d)

let pp ppf d =
  Format.fprintf ppf "+%d -%d ~%d" (Id.Set.cardinal d.added)
    (Id.Set.cardinal d.removed) (Id.Set.cardinal d.modified)
