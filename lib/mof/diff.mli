(** Structural difference between two models.

    Diffs power three of the paper's Section 3 requirements: repository
    history, the Undo/Redo facility, and the colored demarcation of model
    parts introduced by each concrete transformation. *)

type t = {
  added : Id.Set.t;  (** ids bound in the new model only *)
  removed : Id.Set.t;  (** ids bound in the old model only *)
  modified : Id.Set.t;  (** ids bound in both, with different elements *)
}

val empty : t

val is_empty : t -> bool

val compute : old_model:Model.t -> new_model:Model.t -> t
(** [compute ~old_model ~new_model] classifies every id bound in either
    model. When [new_model] was derived from [old_model] (the common case:
    a transformation's output against its input, or consecutive repository
    versions), the classification replays the update journal and costs
    O(changes); unrelated models fall back to {!compute_scan}. Both paths
    produce identical diffs. *)

val compute_scan : old_model:Model.t -> new_model:Model.t -> t
(** The journal-free double fold over both populations, O(|old| + |new|).
    Exposed as the baseline for the E11 experiment and the consistency
    tests; {!compute} is never worse than this. *)

val union : t -> t -> t
(** Pointwise union; an id both added and later modified counts as added. *)

val touched : t -> Id.Set.t
(** All ids mentioned by the diff. *)

val cardinal : t -> int
(** Number of touched ids. *)

val pp : Format.formatter -> t -> unit
(** Summary rendering, e.g. [+12 -0 ~3]. *)
