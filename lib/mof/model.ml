module Smap = Map.Make (String)

(* Secondary indexes over the element population. Every index is derived
   from the store and maintained incrementally by [add]/[update]/[remove]:
   the invariant is that rebuilding an index from a full scan of [store]
   yields exactly the maps below (asserted by the randomized consistency
   test in test_mof.ml). Buckets never hold empty sets — a key with no
   members is absent. *)
type indexes = {
  ix_kind : Id.Set.t Smap.t;  (* metaclass name -> ids of that kind *)
  ix_name : Id.Set.t Smap.t;  (* simple name -> ids bearing it *)
  ix_stereotype : Id.Set.t Smap.t;  (* stereotype -> ids carrying it *)
  ix_owner : Id.Set.t Id.Map.t;  (* owner id -> ids whose [owner] field is it *)
  ix_referrers : Id.Set.t Id.Map.t;
      (* target id -> ids whose [Kind.refs] mention it; keyed by the target
         whether or not the target is currently bound, so dangling
         references stay discoverable after a removal *)
}

type t = {
  store : Element.t Id.Map.t;
  root : Id.t;
  next : int;
  idx : indexes;
  origin : unit ref;
      (* lineage token: all models derived by add/update/remove share their
         ancestor's [origin]; create/of_elements mint a fresh one *)
  rev : int;  (* bumped once per mutation *)
  journal : (int * Id.t) list;
      (* touched ids, newest first, each stamped with the revision that
         touched it; a descendant's journal extends its ancestor's by
         prepending, which is what makes watermark comparison O(changes) *)
}

type watermark = {
  w_origin : unit ref;
  w_rev : int;
  w_tail : (int * Id.t) list;
}

exception Element_not_found of Id.t

let empty_indexes =
  {
    ix_kind = Smap.empty;
    ix_name = Smap.empty;
    ix_stereotype = Smap.empty;
    ix_owner = Id.Map.empty;
    ix_referrers = Id.Map.empty;
  }

let sbucket_add key id map =
  Smap.update key
    (function
      | None -> Some (Id.Set.singleton id) | Some s -> Some (Id.Set.add id s))
    map

let sbucket_drop key id map =
  Smap.update key
    (function
      | None -> None
      | Some s ->
          let s = Id.Set.remove id s in
          if Id.Set.is_empty s then None else Some s)
    map

let ibucket_add key id map =
  Id.Map.update key
    (function
      | None -> Some (Id.Set.singleton id) | Some s -> Some (Id.Set.add id s))
    map

let ibucket_drop key id map =
  Id.Map.update key
    (function
      | None -> None
      | Some s ->
          let s = Id.Set.remove id s in
          if Id.Set.is_empty s then None else Some s)
    map

let index_element e idx =
  let id = e.Element.id in
  {
    ix_kind = sbucket_add (Kind.name e.Element.kind) id idx.ix_kind;
    ix_name = sbucket_add e.Element.name id idx.ix_name;
    ix_stereotype =
      List.fold_left
        (fun acc s -> sbucket_add s id acc)
        idx.ix_stereotype e.Element.stereotypes;
    ix_owner =
      (match e.Element.owner with
      | Some o -> ibucket_add o id idx.ix_owner
      | None -> idx.ix_owner);
    ix_referrers =
      List.fold_left
        (fun acc target -> ibucket_add target id acc)
        idx.ix_referrers
        (Kind.refs e.Element.kind);
  }

let unindex_element e idx =
  let id = e.Element.id in
  {
    ix_kind = sbucket_drop (Kind.name e.Element.kind) id idx.ix_kind;
    ix_name = sbucket_drop e.Element.name id idx.ix_name;
    ix_stereotype =
      List.fold_left
        (fun acc s -> sbucket_drop s id acc)
        idx.ix_stereotype e.Element.stereotypes;
    ix_owner =
      (match e.Element.owner with
      | Some o -> ibucket_drop o id idx.ix_owner
      | None -> idx.ix_owner);
    ix_referrers =
      List.fold_left
        (fun acc target -> ibucket_drop target id acc)
        idx.ix_referrers
        (Kind.refs e.Element.kind);
  }

(* One journal entry per mutation, even when the new element is equal to the
   old one: consumers classify journal candidates against both models, so a
   spurious entry costs one comparison, never a wrong diff. *)
let touch m id = { m with rev = m.rev + 1; journal = (m.rev + 1, id) :: m.journal }

let create ~name =
  let root = Id.of_int 0 in
  let root_elt =
    Element.make ~id:root ~name ~owner:None (Kind.Package { owned = [] })
  in
  {
    store = Id.Map.singleton root root_elt;
    root;
    next = 1;
    idx = index_element root_elt empty_indexes;
    origin = ref ();
    rev = 0;
    journal = [];
  }

let root m = m.root

let of_elements ~root ~next elements =
  let store, idx =
    List.fold_left
      (fun (store, idx) e ->
        let id = e.Element.id in
        if Id.Map.mem id store then
          invalid_arg ("Mof.Model.of_elements: duplicate id " ^ Id.to_string id)
        else if Id.to_int id >= next then
          invalid_arg
            ("Mof.Model.of_elements: id " ^ Id.to_string id
           ^ " exceeds the next-id counter")
        else (Id.Map.add id e store, index_element e idx))
      (Id.Map.empty, empty_indexes)
      elements
  in
  if not (Id.Map.mem root store) then
    invalid_arg "Mof.Model.of_elements: root element missing";
  { store; root; next; idx; origin = ref (); rev = 0; journal = [] }

let find m id = Id.Map.find_opt id m.store

let find_exn m id =
  match find m id with
  | Some e -> e
  | None -> raise (Element_not_found id)

let name m = (find_exn m m.root).Element.name
let level_tag m = Element.tag "level" (find_exn m m.root)

let mem m id = Id.Map.mem id m.store

let next m = m.next

let fresh_id m = ({ m with next = m.next + 1 }, Id.of_int m.next)

let add m e =
  let id = e.Element.id in
  if mem m id then
    invalid_arg ("Mof.Model.add: duplicate id " ^ Id.to_string id)
  else
    touch
      {
        m with
        store = Id.Map.add id e m.store;
        (* keep the invariant that [next] exceeds every bound id, so
           [next] is directly serializable (see Xmi.Export) *)
        next = max m.next (Id.to_int id + 1);
        idx = index_element e m.idx;
      }
      id

let update m id f =
  let e = find_exn m id in
  let e' = f e in
  touch
    {
      m with
      store = Id.Map.add id e' m.store;
      idx = index_element e' (unindex_element e m.idx);
    }
    id

let set_level_tag level m = update m m.root (Element.set_tag "level" level)

let remove m id =
  match find m id with
  | None -> m
  | Some e ->
      touch
        { m with store = Id.Map.remove id m.store; idx = unindex_element e m.idx }
        id

(* ---- indexed lookups ---------------------------------------------------- *)

let set_of = function None -> Id.Set.empty | Some s -> s

let by_kind m kind = set_of (Smap.find_opt kind m.idx.ix_kind)
let by_name m name = set_of (Smap.find_opt name m.idx.ix_name)
let by_stereotype m s = set_of (Smap.find_opt s m.idx.ix_stereotype)
let owned_by m id = set_of (Id.Map.find_opt id m.idx.ix_owner)
let referrers m id = set_of (Id.Map.find_opt id m.idx.ix_referrers)

(* ---- journal ------------------------------------------------------------ *)

let watermark m = { w_origin = m.origin; w_rev = m.rev; w_tail = m.journal }

(* Physical identity of the journal head is the strongest population
   witness the store offers: every mutation goes through [touch], which
   prepends a fresh cell, so two models sharing [origin] and the very same
   journal list hold the same element population. [fresh_id] bumps only
   [next], hence the extra check — two such models have equal stores all
   the same, which is what extent caching needs. *)
let same_state m w = w.w_origin == m.origin && w.w_tail == m.journal

let touched_since m w =
  if not (w.w_origin == m.origin) then None
  else
    let rec strip acc = function
      | (r, id) :: rest when r > w.w_rev -> strip (Id.Set.add id acc) rest
      | rest ->
          (* [m] descends from the watermarked model exactly when, after
             stripping the newer entries, we are looking at the very list the
             watermark captured *)
          if rest == w.w_tail then Some acc else None
    in
    strip Id.Set.empty m.journal

(* ---- whole-population traversal ----------------------------------------- *)

let fold f m init = Id.Map.fold (fun _ e acc -> f e acc) m.store init
let iter f m = Id.Map.iter (fun _ e -> f e) m.store
let elements m = List.map snd (Id.Map.bindings m.store)
let size m = Id.Map.cardinal m.store
let filter p m = List.filter p (elements m)

let equal a b = Id.equal a.root b.root && Id.Map.equal Element.equal a.store b.store
