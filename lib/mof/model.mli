(** The model store: an immutable, id-indexed collection of elements with a
    distinguished root package, secondary indexes, and an update journal.

    Models are persistent values — every update returns a new model — which
    is what makes transformation traces, repository versions, and undo/redo
    cheap and safe. Fresh ids are drawn from a counter carried by the model
    itself, so transformations are deterministic.

    {2 Indexes}

    Beyond the primary id map, every model maintains four secondary indexes,
    updated incrementally by {!add}, {!update} and {!remove}:

    - {!by_kind}: metaclass name → ids ({!Kind.name} of the element's kind);
    - {!by_name}: simple name → ids;
    - {!by_stereotype}: stereotype → ids carrying it;
    - {!owned_by}: owner id → ids whose [owner] field designates it;
    - {!referrers}: target id → ids whose {!Kind.refs} mention it. The key
      is the {e target}, bound or not, so the referrers of a removed element
      remain discoverable (how {!Wellformed.check_touched} finds dangling
      references after a deletion).

    Index maintenance is O(k log n) per mutation for an element with k index
    keys; every lookup is O(log n) and returns a set whose elements come
    back in ascending id order, matching the historical scan order of
    {!fold}/{!elements}. The invariant — each index equals the map a full
    scan of the store would rebuild — is asserted by the randomized
    consistency test in [test_mof.ml].

    {2 Journal and watermarks}

    Every mutation stamps the touched id into a journal. {!watermark}
    captures the current journal position; {!touched_since} later replays
    the ids touched after that position in O(changes), independent of model
    size — the basis of incremental {!Diff.compute} and scoped
    {!Wellformed.check_touched}. A watermark is only meaningful against
    models {e derived} from the watermarked one (same [create]/
    [of_elements] lineage, mutations applied on top); [touched_since]
    detects unrelated or divergent models and returns [None] so callers can
    fall back to a full scan. Journal entries are never dropped: a
    long-lived refinement session grows the journal by one small cons cell
    per mutation. *)

type t
(** The type of models. *)

exception Element_not_found of Id.t
(** Raised by the [_exn] accessors. *)

val create : name:string -> t
(** [create ~name] is a model holding a single root package called [name]. *)

val of_elements : root:Id.t -> next:int -> Element.t list -> t
(** Reconstructs a model from a previously serialized element population
    (used by the XMI importer), rebuilding all indexes. [next] must exceed
    every bound id; the element list must contain [root]. Raises
    [Invalid_argument] otherwise, or on duplicate ids. The reconstructed
    model starts a fresh lineage: its journal is empty and watermarks taken
    from other models do not apply to it. *)

val name : t -> string
(** The model name (the root package's name). O(log n). *)

val root : t -> Id.t
(** Id of the root package. O(1). *)

val level_tag : t -> string option
(** The abstraction level recorded on the root package ("PIM", "PSM", …),
    if any; see {!set_level_tag}. *)

val set_level_tag : string -> t -> t
(** Records the abstraction level on the root package. *)

val next : t -> int
(** The next-id counter. Strictly greater than every bound id (maintained
    by {!add}), so it can be serialized directly and fed back to
    {!of_elements}. *)

val fresh_id : t -> t * Id.t
(** Allocates a fresh element id. Does not journal (nothing is bound yet). *)

val add : t -> Element.t -> t
(** [add m e] stores [e], indexes it, and journals [e.id]. Raises
    [Invalid_argument] if [e.id] is already bound — elements are inserted
    once and then {!update}d. O(k log n) for k index keys. *)

val mem : t -> Id.t -> bool
(** O(log n). *)

val find : t -> Id.t -> Element.t option
(** O(log n). *)

val find_exn : t -> Id.t -> Element.t

val update : t -> Id.t -> (Element.t -> Element.t) -> t
(** [update m id f] replaces the element bound to [id] by [f] applied to
    it, reindexes the changed keys, and journals [id].
    @raise Element_not_found if [id] is unbound. *)

val remove : t -> Id.t -> t
(** Removes the binding for [id] (and only that binding; callers are
    responsible for unlinking references, cf. {!Builder.delete_element}),
    drops its index entries, and journals [id]. Removing an unbound id is a
    no-op that leaves the journal untouched. *)

(** {2 Indexed lookups}

    All lookups are O(log n) and never raise; an unknown key yields the
    empty set. [Id.Set.elements] of any result is in ascending id order. *)

val by_kind : t -> string -> Id.Set.t
(** Ids of all elements whose metaclass ({!Kind.name}) is the given name. *)

val by_name : t -> string -> Id.Set.t
(** Ids of all elements with the given simple name. *)

val by_stereotype : t -> string -> Id.Set.t
(** Ids of all elements carrying the given stereotype. *)

val owned_by : t -> Id.t -> Id.Set.t
(** Ids of all elements whose [owner] field designates the given id (the
    owner-field view of containment; the payload view is the owner's own
    containment lists). *)

val referrers : t -> Id.t -> Id.Set.t
(** Ids of all elements whose {!Kind.refs} mention the given id. Defined
    whether or not the target is bound. *)

(** {2 Journal} *)

type watermark
(** A position in a model's update journal (O(1) to take and to hold). *)

val watermark : t -> watermark
(** The current journal position. *)

val same_state : t -> watermark -> bool
(** [same_state m w] is [true] exactly when [m]'s element population is the
    one the watermark was taken over: same lineage and not a single
    mutation in between (physical identity of the journal position, so the
    test is O(1) and conservative — unrelated or divergent models always
    compare [false]). This is the invalidation test for caches keyed by a
    model's contents, e.g. classifier extents. *)

val touched_since : t -> watermark -> Id.Set.t option
(** [touched_since m w] is [Some ids] — every id touched by a mutation
    applied after [w] was taken — when [m] was derived from the watermarked
    model by a chain of {!add}/{!update}/{!remove}; [None] when the models
    are unrelated or divergent (caller falls back to a full comparison).
    O(changes since [w]). *)

(** {2 Whole-population traversal}

    All O(n); prefer the indexed lookups on hot paths. *)

val fold : (Element.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over all elements in id order. *)

val iter : (Element.t -> unit) -> t -> unit

val elements : t -> Element.t list
(** All elements, in id order. *)

val size : t -> int
(** Number of elements. *)

val filter : (Element.t -> bool) -> t -> Element.t list

val equal : t -> t -> bool
(** Structural equality of the element populations and roots (the id
    counter, indexes, and journal are ignored, so a model equals itself
    after a no-op transformation and after an XMI round trip). *)
