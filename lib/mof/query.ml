let resolve_all m ids = List.map (Model.find_exn m) ids

(* Materialize an index bucket as elements; Id.Set.elements is ascending, so
   the result order is byte-identical to the historical full-scan order. *)
let resolve_set m ids = resolve_all m (Id.Set.elements ids)

let of_metaclass m mc = resolve_set m (Model.by_kind m mc)

let classes m = of_metaclass m "Class"
let interfaces m = of_metaclass m "Interface"
let packages m = of_metaclass m "Package"
let associations m = of_metaclass m "Association"
let enumerations m = of_metaclass m "Enumeration"
let constraints m = of_metaclass m "Constraint"

let attributes_of m id =
  match (Model.find_exn m id).Element.kind with
  | Kind.Class c -> resolve_all m c.attributes
  | _ -> []

let operations_of m id =
  match (Model.find_exn m id).Element.kind with
  | Kind.Class c -> resolve_all m c.operations
  | Kind.Interface { operations } -> resolve_all m operations
  | _ -> []

let all_parameters_of m id =
  match (Model.find_exn m id).Element.kind with
  | Kind.Operation o -> resolve_all m o.params
  | _ -> []

let is_return e =
  match e.Element.kind with
  | Kind.Parameter { direction = Kind.Dir_return; _ } -> true
  | _ -> false

let parameters_of m id =
  List.filter (fun p -> not (is_return p)) (all_parameters_of m id)

let result_of m id =
  match List.find_opt is_return (all_parameters_of m id) with
  | Some { Element.kind = Kind.Parameter { param_type; _ }; _ } -> param_type
  | Some _ | None -> Kind.Dt_void

let public_operations_of m id =
  let is_public e =
    match e.Element.kind with
    | Kind.Operation { op_visibility = Kind.Public; _ } -> true
    | _ -> false
  in
  List.filter is_public (operations_of m id)

let owned_of m id =
  match (Model.find_exn m id).Element.kind with
  | Kind.Package { owned } -> resolve_all m owned
  | _ -> []

let supers_of m id =
  match (Model.find_exn m id).Element.kind with
  | Kind.Class c -> c.supers
  | _ -> []

let supers_transitive m id =
  (* not seeded with [id]: when an inheritance cycle passes through [id],
     the class appears in its own closure, which is what {!Wellformed}
     detects *)
  let supers c =
    (* total: a dangling super (deleted class still referenced) is kept in
       the closure but not expanded — it is Wellformed's Dangling_reference
       rule that reports it, so the traversal must survive it *)
    match Model.find m c with
    | Some { Element.kind = Kind.Class cl; _ } -> cl.Kind.supers
    | Some _ | None -> []
  in
  let rec walk seen queue =
    match queue with
    | [] -> []
    | c :: rest ->
        if Id.Set.mem c seen then walk seen rest
        else c :: walk (Id.Set.add c seen) (rest @ supers c)
  in
  walk Id.Set.empty (supers_of m id)

let realizations_of m id =
  match (Model.find_exn m id).Element.kind with
  | Kind.Class c -> c.realizes
  | _ -> []

let realizers_of m iface =
  List.filter
    (fun e -> List.exists (Id.equal iface) (realizations_of m e.Element.id))
    (classes m)

let owner_chain m id =
  (* nearest owner first *)
  let rec walk acc id =
    match (Model.find_exn m id).Element.owner with
    | None -> List.rev acc
    | Some o -> walk (o :: acc) o
  in
  walk [] id

let qualified_name m id =
  let e = Model.find_exn m id in
  if Id.equal id (Model.root m) then e.Element.name
  else
    let chain = List.rev (owner_chain m id) in
    let chain = List.filter (fun o -> not (Id.equal o (Model.root m))) chain in
    let names = List.map (fun o -> (Model.find_exn m o).Element.name) chain in
    String.concat "." (names @ [ e.Element.name ])

let find_by_qualified_name m qname =
  (* A matching element's simple name is the join of some suffix of the
     dot-split of [qname] (the whole of it for the root, or for names that
     themselves contain dots), so the name index narrows the candidates to
     those few ids; each is then verified against its actual qualified name.
     O(d·(log n + c·d)) for path depth d and c same-named candidates, vs the
     historical scan's O(n·d). *)
  let rec suffixes = function
    | [] -> []
    | _ :: rest as segments -> String.concat "." segments :: suffixes rest
  in
  let candidates =
    List.fold_left
      (fun acc name -> Id.Set.union acc (Model.by_name m name))
      Id.Set.empty
      (suffixes (String.split_on_char '.' qname))
  in
  (* Several elements can print the same qualified name when a simple name
     embeds a dot (a root-level class "bank.Account" vs a class "Account"
     in package "bank"). Prefer the structural reading — the deepest owner
     chain — so the package-join interpretation always beats a dotted
     simple name; ties (true duplicates) go to the lowest id. The old
     first-in-id-order rule made the winner depend on creation order. *)
  let depth id = List.length (owner_chain m id) in
  Id.Set.elements candidates
  |> List.filter (fun id -> String.equal (qualified_name m id) qname)
  |> List.fold_left
       (fun best id ->
         match best with
         | Some b when depth b >= depth id -> best
         | _ -> Some id)
       None
  |> Option.map (Model.find_exn m)

let find_named m name = resolve_set m (Model.by_name m name)

let find_class m name =
  Option.map (Model.find_exn m)
    (Id.Set.min_elt_opt
       (Id.Set.inter (Model.by_kind m "Class") (Model.by_name m name)))

let with_stereotype m s = resolve_set m (Model.by_stereotype m s)

let containing_class m id =
  let is_class o =
    match (Model.find_exn m o).Element.kind with
    | Kind.Class _ -> true
    | _ -> false
  in
  List.find_opt is_class (owner_chain m id)
