(** Read-only navigation over models: classifier listings, feature lookups,
    qualified names, and inheritance closure.

    All listings come back in ascending id order — the order the historical
    full-scan implementations produced — but are now served from the model's
    secondary indexes ({!Model.by_kind}, {!Model.by_name},
    {!Model.by_stereotype}), so a lookup costs O(log n + r) for r results
    instead of O(n). The byte-for-byte agreement with a full scan is pinned
    by the randomized consistency test in [test_mof.ml]. *)

val classes : Model.t -> Element.t list
(** All class elements, in id order. O(log n + r). *)

val interfaces : Model.t -> Element.t list
val packages : Model.t -> Element.t list
val associations : Model.t -> Element.t list
val constraints : Model.t -> Element.t list
val enumerations : Model.t -> Element.t list

val of_metaclass : Model.t -> string -> Element.t list
(** [of_metaclass m "Class"] is all elements whose metaclass has that name;
    unknown names yield the empty list. Served by {!Model.by_kind}. *)

val attributes_of : Model.t -> Id.t -> Element.t list
(** Attributes owned directly by a class (empty for other kinds). *)

val operations_of : Model.t -> Id.t -> Element.t list
(** Operations owned directly by a class or interface. *)

val parameters_of : Model.t -> Id.t -> Element.t list
(** Parameters of an operation, excluding the return parameter. *)

val result_of : Model.t -> Id.t -> Kind.datatype
(** Result type of an operation: the type of its return parameter, or
    [Dt_void] when it has none. *)

val public_operations_of : Model.t -> Id.t -> Element.t list
(** Operations of a classifier with [Public] visibility. *)

val owned_of : Model.t -> Id.t -> Element.t list
(** Direct contents of a package. *)

val supers_of : Model.t -> Id.t -> Id.t list
(** Direct superclasses of a class. *)

val supers_transitive : Model.t -> Id.t -> Id.t list
(** Transitive superclass closure of a class, nearest first, without
    duplicates. Cycles terminate; a class on an inheritance cycle through
    itself appears in its own closure (how {!Wellformed} detects cycles).
    Dangling super ids (a referenced class that was deleted) stay in the
    closure but are not expanded, so the traversal is total on ill-formed
    models. *)

val realizations_of : Model.t -> Id.t -> Id.t list
(** Interfaces realized by a class. *)

val realizers_of : Model.t -> Id.t -> Element.t list
(** Classes that realize a given interface. *)

val qualified_name : Model.t -> Id.t -> string
(** Dot-separated path from the root package (excluded) to the element,
    e.g. ["bank.Account.balance"]. The root element's qualified name is its
    own name. O(depth). *)

val find_by_qualified_name : Model.t -> string -> Element.t option
(** Inverse of {!qualified_name}. Resolved through the name index:
    candidates are the elements whose simple name is a dot-suffix of the
    path, each verified against its actual qualified name — O(d·(log n +
    c·d)) for depth d and c candidates, not a model scan. When several
    elements print the same qualified name (a simple name embedding [.] can
    collide with a package join), the structurally deepest one wins — the
    package-path reading beats the dotted-simple-name reading — with ties
    broken by lowest id. *)

val find_named : Model.t -> string -> Element.t list
(** All elements with the given simple name. Served by {!Model.by_name}. *)

val find_class : Model.t -> string -> Element.t option
(** First class with the given simple name (intersection of the kind and
    name indexes). *)

val with_stereotype : Model.t -> string -> Element.t list
(** All elements carrying the given stereotype. Served by
    {!Model.by_stereotype}. *)

val owner_chain : Model.t -> Id.t -> Id.t list
(** Owners from the element's direct owner up to the root, nearest first. *)

val containing_class : Model.t -> Id.t -> Id.t option
(** Nearest enclosing class of an element, if any. *)
