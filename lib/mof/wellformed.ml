type rule =
  | Dangling_reference
  | Owner_mismatch
  | Duplicate_name
  | Inheritance_cycle
  | Invalid_multiplicity
  | Malformed_association
  | Abstract_leaf
  | Empty_name
  | Duplicate_literal

type violation = {
  subject : Id.t;
  rule : rule;
  message : string;
}

let rule_name = function
  | Dangling_reference -> "dangling-reference"
  | Owner_mismatch -> "owner-mismatch"
  | Duplicate_name -> "duplicate-name"
  | Inheritance_cycle -> "inheritance-cycle"
  | Invalid_multiplicity -> "invalid-multiplicity"
  | Malformed_association -> "malformed-association"
  | Abstract_leaf -> "abstract-leaf"
  | Empty_name -> "empty-name"
  | Duplicate_literal -> "duplicate-literal"

let violation subject rule fmt =
  Format.kasprintf (fun message -> { subject; rule; message }) fmt

(* Containment children as recorded in the parent's kind payload. *)
let containment_children e =
  match e.Element.kind with
  | Kind.Package { owned } -> owned
  | Kind.Class c -> c.attributes @ c.operations
  | Kind.Interface { operations } -> operations
  | Kind.Operation o -> o.params
  | Kind.Attribute _ | Kind.Parameter _ | Kind.Association _
  | Kind.Generalization _ | Kind.Dependency _ | Kind.Constraint_ _
  | Kind.Enumeration _ ->
      []

let check_references m e =
  List.filter_map
    (fun id ->
      if Model.mem m id then None
      else
        Some
          (violation e.Element.id Dangling_reference
             "%s %s references unbound id %s" (Element.metaclass e)
             e.Element.name (Id.to_string id)))
    (Kind.refs e.Element.kind)

let check_owner m e =
  match e.Element.owner with
  | None ->
      if Id.equal e.Element.id (Model.root m) then []
      else
        [
          violation e.Element.id Owner_mismatch "%s %s has no owner"
            (Element.metaclass e) e.Element.name;
        ]
  | Some owner -> (
      match Model.find m owner with
      | None ->
          [
            violation e.Element.id Owner_mismatch
              "%s %s owned by unbound id %s" (Element.metaclass e)
              e.Element.name (Id.to_string owner);
          ]
      | Some owner_elt ->
          let listed =
            List.exists (Id.equal e.Element.id) (containment_children owner_elt)
          in
          if listed then []
          else
            [
              violation e.Element.id Owner_mismatch
                "%s %s missing from containment list of %s"
                (Element.metaclass e) e.Element.name owner_elt.Element.name;
            ])

let check_duplicates m e =
  let children = containment_children e in
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun cid ->
      match Model.find m cid with
      | None -> None
      | Some c ->
          let key = (Element.metaclass c, c.Element.name) in
          if Hashtbl.mem seen key then
            Some
              (violation cid Duplicate_name "duplicate %s %s in %s"
                 (Element.metaclass c) c.Element.name e.Element.name)
          else (
            Hashtbl.add seen key ();
            None))
    children

let check_inheritance m e =
  match e.Element.kind with
  | Kind.Class _ ->
      let closure = Query.supers_transitive m e.Element.id in
      if List.exists (Id.equal e.Element.id) closure then
        [
          violation e.Element.id Inheritance_cycle
            "class %s participates in an inheritance cycle" e.Element.name;
        ]
      else []
  | _ -> []

let check_multiplicity e =
  let bad m = not (Kind.mult_valid m) in
  match e.Element.kind with
  | Kind.Attribute { attr_mult; _ } when bad attr_mult ->
      [
        violation e.Element.id Invalid_multiplicity
          "attribute %s has invalid multiplicity %s" e.Element.name
          (Kind.mult_to_string attr_mult);
      ]
  | Kind.Association { ends } ->
      List.filter_map
        (fun (en : Kind.assoc_end) ->
          if bad en.end_mult then
            Some
              (violation e.Element.id Invalid_multiplicity
                 "association end %s has invalid multiplicity %s" en.end_name
                 (Kind.mult_to_string en.end_mult))
          else None)
        ends
  | _ -> []

let check_association e =
  match e.Element.kind with
  | Kind.Association { ends } when List.length ends < 2 ->
      [
        violation e.Element.id Malformed_association
          "association %s has %d end(s); at least two are required"
          e.Element.name (List.length ends);
      ]
  | _ -> []

let check_abstract m e =
  match e.Element.kind with
  | Kind.Class { is_abstract = false; operations; _ } ->
      let abstract_op oid =
        match (Model.find_exn m oid).Element.kind with
        | Kind.Operation { is_abstract_op = true; _ } -> true
        | _ -> false
      in
      (match List.find_opt abstract_op operations with
      | Some oid ->
          [
            violation e.Element.id Abstract_leaf
              "concrete class %s declares abstract operation %s" e.Element.name
              (Model.find_exn m oid).Element.name;
          ]
      | None -> [])
  | _ -> []

let check_literals e =
  match e.Element.kind with
  | Kind.Enumeration { literals } ->
      let sorted = List.sort_uniq String.compare literals in
      if List.length sorted = List.length literals then []
      else
        [
          violation e.Element.id Duplicate_literal
            "enumeration %s declares a literal twice" e.Element.name;
        ]
  | _ -> []

let check_name e =
  if String.equal e.Element.name "" then
    [ violation e.Element.id Empty_name "%s has an empty name" (Element.metaclass e) ]
  else []

let check_element m e =
  check_name e
  @ check_references m e
  @ check_owner m e
  @ check_duplicates m e
  @ check_inheritance m e
  @ check_multiplicity e
  @ check_association e
  @ check_abstract m e
  @ check_literals e

let check m = Model.fold (fun e acc -> acc @ check_element m e) m []

let is_wellformed m = check m = []

(* Transitive subclasses of the seed ids, walked over the reverse-reference
   index restricted to inheritance edges. A change to a class's supers can
   flip the Inheritance_cycle verdict of every class whose superclass
   closure passes through it — exactly its transitive subclasses. *)
let subclasses_closure m seeds =
  let subclasses_of id =
    Id.Set.filter
      (fun r ->
        match Model.find m r with
        | Some { Element.kind = Kind.Class c; _ } ->
            List.exists (Id.equal id) c.supers
        | Some _ | None -> false)
      (Model.referrers m id)
  in
  let rec walk seen = function
    | [] -> seen
    | id :: rest ->
        let fresh = Id.Set.diff (subclasses_of id) seen in
        walk (Id.Set.union seen fresh) (Id.Set.elements fresh @ rest)
  in
  walk seeds (Id.Set.elements seeds)

(* The ids whose rule verdicts can depend on a touched id:
   - the touched elements themselves (every local rule);
   - their referrers, one hop (Dangling_reference after a removal or
     re-addition; Duplicate_name and Abstract_leaf, which an owner checks by
     reading its children's payloads — the owner references its children);
   - the elements whose [owner] field designates a touched id
     (Owner_mismatch is checked on the child but decided by the owner's
     containment lists);
   - transitive subclasses of touched ids (Inheritance_cycle).
   This over-approximates — re-checking an unaffected element is merely
   redundant work — but never under-approximates: every rule reads only the
   element itself, its reference targets, its owner's payload, or its
   superclass closure, and each of those dependencies is covered above. *)
let scope_of m touched =
  let direct =
    Id.Set.fold
      (fun id acc ->
        Id.Set.union (Model.referrers m id) (Id.Set.union (Model.owned_by m id) acc))
      touched touched
  in
  Id.Set.filter (Model.mem m) (Id.Set.union direct (subclasses_closure m touched))

let check_touched m ~touched =
  (* Id.Set.fold visits ids in ascending order, so the violations of scoped
     elements appear in exactly the order the full [check] lists them. *)
  Id.Set.fold
    (fun id acc -> acc @ check_element m (Model.find_exn m id))
    (scope_of m touched) []

let pp_violation ppf v =
  Format.fprintf ppf "[%s] %s: %s" (rule_name v.rule) (Id.to_string v.subject)
    v.message
