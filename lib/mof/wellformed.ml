type rule =
  | Dangling_reference
  | Owner_mismatch
  | Duplicate_name
  | Inheritance_cycle
  | Invalid_multiplicity
  | Malformed_association
  | Abstract_leaf
  | Empty_name
  | Duplicate_literal

type violation = {
  subject : Id.t;
  rule : rule;
  message : string;
}

let rule_name = function
  | Dangling_reference -> "dangling-reference"
  | Owner_mismatch -> "owner-mismatch"
  | Duplicate_name -> "duplicate-name"
  | Inheritance_cycle -> "inheritance-cycle"
  | Invalid_multiplicity -> "invalid-multiplicity"
  | Malformed_association -> "malformed-association"
  | Abstract_leaf -> "abstract-leaf"
  | Empty_name -> "empty-name"
  | Duplicate_literal -> "duplicate-literal"

let violation subject rule fmt =
  Format.kasprintf (fun message -> { subject; rule; message }) fmt

(* Containment children as recorded in the parent's kind payload. *)
let containment_children e =
  match e.Element.kind with
  | Kind.Package { owned } -> owned
  | Kind.Class c -> c.attributes @ c.operations
  | Kind.Interface { operations } -> operations
  | Kind.Operation o -> o.params
  | Kind.Attribute _ | Kind.Parameter _ | Kind.Association _
  | Kind.Generalization _ | Kind.Dependency _ | Kind.Constraint_ _
  | Kind.Enumeration _ ->
      []

let check_references m e =
  List.filter_map
    (fun id ->
      if Model.mem m id then None
      else
        Some
          (violation e.Element.id Dangling_reference
             "%s %s references unbound id %s" (Element.metaclass e)
             e.Element.name (Id.to_string id)))
    (Kind.refs e.Element.kind)

(* Membership in an owner's containment lists (the payload view — distinct
   from the [owned_by] index, which is the owner-field view the rule is
   checking against). Memoized per check run: a scoped or full check visits
   every child of an owner, and scanning the owner's lists once per child
   is quadratic in its fan-out. *)
let listed_memo () =
  let tbl = Hashtbl.create 16 in
  fun (owner_elt : Element.t) child ->
    let set =
      match Hashtbl.find_opt tbl owner_elt.Element.id with
      | Some s -> s
      | None ->
          let s = Id.Set.of_list (containment_children owner_elt) in
          Hashtbl.add tbl owner_elt.Element.id s;
          s
    in
    Id.Set.mem child set

let check_owner ~listed m e =
  match e.Element.owner with
  | None ->
      if Id.equal e.Element.id (Model.root m) then []
      else
        [
          violation e.Element.id Owner_mismatch "%s %s has no owner"
            (Element.metaclass e) e.Element.name;
        ]
  | Some owner -> (
      match Model.find m owner with
      | None ->
          [
            violation e.Element.id Owner_mismatch
              "%s %s owned by unbound id %s" (Element.metaclass e)
              e.Element.name (Id.to_string owner);
          ]
      | Some owner_elt ->
          if listed owner_elt e.Element.id then []
          else
            [
              violation e.Element.id Owner_mismatch
                "%s %s missing from containment list of %s"
                (Element.metaclass e) e.Element.name owner_elt.Element.name;
            ])

let check_duplicates m e =
  let children = containment_children e in
  (* a linear scan over the already-seen keys for ordinary fan-outs: most
     elements own a handful of children, and a per-call hash table (array
     allocation plus generic hashing of string pairs) costs more than the
     handful of string comparisons; wide owners (packages) keep the table *)
  let dup =
    if List.compare_length_with children 16 <= 0 then begin
      let seen = ref [] in
      fun mc nm ->
        if
          List.exists
            (fun (m0, n0) -> String.equal m0 mc && String.equal n0 nm)
            !seen
        then true
        else begin
          seen := (mc, nm) :: !seen;
          false
        end
    end
    else begin
      let seen = Hashtbl.create 16 in
      fun mc nm ->
        let key = (mc, nm) in
        if Hashtbl.mem seen key then true
        else begin
          Hashtbl.add seen key ();
          false
        end
    end
  in
  List.filter_map
    (fun cid ->
      match Model.find m cid with
      | None -> None
      | Some c ->
          if dup (Element.metaclass c) c.Element.name then
            Some
              (violation cid Duplicate_name "duplicate %s %s in %s"
                 (Element.metaclass c) c.Element.name e.Element.name)
          else None)
    children

let check_inheritance m e =
  match e.Element.kind with
  | Kind.Class _ ->
      let closure = Query.supers_transitive m e.Element.id in
      if List.exists (Id.equal e.Element.id) closure then
        [
          violation e.Element.id Inheritance_cycle
            "class %s participates in an inheritance cycle" e.Element.name;
        ]
      else []
  | _ -> []

let check_multiplicity e =
  let bad m = not (Kind.mult_valid m) in
  match e.Element.kind with
  | Kind.Attribute { attr_mult; _ } when bad attr_mult ->
      [
        violation e.Element.id Invalid_multiplicity
          "attribute %s has invalid multiplicity %s" e.Element.name
          (Kind.mult_to_string attr_mult);
      ]
  | Kind.Association { ends } ->
      List.filter_map
        (fun (en : Kind.assoc_end) ->
          if bad en.end_mult then
            Some
              (violation e.Element.id Invalid_multiplicity
                 "association end %s has invalid multiplicity %s" en.end_name
                 (Kind.mult_to_string en.end_mult))
          else None)
        ends
  | _ -> []

let check_association e =
  match e.Element.kind with
  | Kind.Association { ends } when List.length ends < 2 ->
      [
        violation e.Element.id Malformed_association
          "association %s has %d end(s); at least two are required"
          e.Element.name (List.length ends);
      ]
  | _ -> []

let check_abstract m e =
  match e.Element.kind with
  | Kind.Class { is_abstract = false; operations; _ } ->
      let abstract_op oid =
        match (Model.find_exn m oid).Element.kind with
        | Kind.Operation { is_abstract_op = true; _ } -> true
        | _ -> false
      in
      (match List.find_opt abstract_op operations with
      | Some oid ->
          [
            violation e.Element.id Abstract_leaf
              "concrete class %s declares abstract operation %s" e.Element.name
              (Model.find_exn m oid).Element.name;
          ]
      | None -> [])
  | _ -> []

let check_literals e =
  match e.Element.kind with
  | Kind.Enumeration { literals } ->
      let sorted = List.sort_uniq String.compare literals in
      if List.length sorted = List.length literals then []
      else
        [
          violation e.Element.id Duplicate_literal
            "enumeration %s declares a literal twice" e.Element.name;
        ]
  | _ -> []

let check_name e =
  if String.equal e.Element.name "" then
    [ violation e.Element.id Empty_name "%s has an empty name" (Element.metaclass e) ]
  else []

let check_element ~listed m e =
  check_name e
  @ check_references m e
  @ check_owner ~listed m e
  @ check_duplicates m e
  @ check_inheritance m e
  @ check_multiplicity e
  @ check_association e
  @ check_abstract m e
  @ check_literals e

let check m =
  let listed = listed_memo () in
  Model.fold (fun e acc -> acc @ check_element ~listed m e) m []

let is_wellformed m = check m = []

(* Transitive subclasses of the seed ids, walked over the reverse-reference
   index restricted to inheritance edges. A change to a class's supers can
   flip the Inheritance_cycle verdict of every class whose superclass
   closure passes through it — exactly its transitive subclasses. *)
let subclasses_closure m seeds =
  let subclasses_of id =
    Id.Set.filter
      (fun r ->
        match Model.find m r with
        | Some { Element.kind = Kind.Class c; _ } ->
            List.exists (Id.equal id) c.supers
        | Some _ | None -> false)
      (Model.referrers m id)
  in
  let rec walk seen = function
    | [] -> seen
    | id :: rest ->
        let fresh = Id.Set.diff (subclasses_of id) seen in
        walk (Id.Set.union seen fresh) (Id.Set.elements fresh @ rest)
  in
  walk seeds (Id.Set.elements seeds)

(* The ids whose rule verdicts can depend on a touched id, split by how
   much re-checking each needs:

   - full re-check: the touched elements themselves (every local rule);
     their referrers, one hop (Dangling_reference after a removal or
     re-addition; Duplicate_name and Abstract_leaf, which an owner checks by
     reading its children's payloads — the owner references its children);
     and transitive subclasses of touched ids (Inheritance_cycle);

   - owner check only: the elements whose [owner] field designates a
     touched id. An untouched child's payload-local rules cannot flip, and
     every cross-element rule except Owner_mismatch reaches the child
     through refs — covered by the referrer hop above. Only the owner's
     containment lists, which Owner_mismatch reads, may have changed under
     it, so re-running the other eight rules on every child of a touched
     owner (all classes of a package that gained one constraint, say) is
     pure waste.

   This over-approximates — re-checking an unaffected element is merely
   redundant work — but never under-approximates: every rule reads only the
   element itself, its reference targets, its owner's payload, or its
   superclass closure, and each of those dependencies is covered above. *)
let scope_of m touched =
  let full =
    Id.Set.fold
      (fun id acc -> Id.Set.union (Model.referrers m id) acc)
      touched touched
  in
  let full = Id.Set.union full (subclasses_closure m touched) in
  let owner_only =
    Id.Set.fold
      (fun id acc -> Id.Set.union (Model.owned_by m id) acc)
      touched Id.Set.empty
  in
  (Id.Set.filter (Model.mem m) (Id.Set.union full owner_only), full)

let check_touched m ~touched =
  (* Id.Set.fold visits ids in ascending order, so the violations of scoped
     elements appear in exactly the order the full [check] lists them —
     Owner_mismatch is emitted while checking the child on both paths. *)
  let scope, full = scope_of m touched in
  let listed = listed_memo () in
  Id.Set.fold
    (fun id acc ->
      let e = Model.find_exn m id in
      if Id.Set.mem id full then acc @ check_element ~listed m e
      else acc @ check_owner ~listed m e)
    scope []

let pp_violation ppf v =
  Format.fprintf ppf "[%s] %s: %s" (rule_name v.rule) (Id.to_string v.subject)
    v.message
