(** Well-formedness checking.

    A transformation engine needs a cheap, complete structural check to run
    between a transformation's OCL postconditions and the commit of the new
    model version. The checks here are those UML 1.4 well-formedness rules
    that the metamodel can express. *)

(** One violation, locating the offending element and describing the rule
    broken. *)
type violation = {
  subject : Id.t;
  rule : rule;
  message : string;
}

and rule =
  | Dangling_reference  (** an id mentioned by an element is unbound *)
  | Owner_mismatch  (** containment list and [owner] field disagree *)
  | Duplicate_name  (** two same-kind siblings share a name *)
  | Inheritance_cycle  (** a class is its own transitive superclass *)
  | Invalid_multiplicity  (** lower bound negative or above upper *)
  | Malformed_association  (** fewer than two ends *)
  | Abstract_leaf  (** concrete class with abstract operations *)
  | Empty_name  (** element with an empty name *)
  | Duplicate_literal  (** an enumeration declares a literal twice *)

val rule_name : rule -> string
(** Stable identifier of a rule, e.g. ["dangling-reference"]. *)

val check : Model.t -> violation list
(** All violations in the model, in deterministic order (elements in
    ascending id order, rules in a fixed order per element). An empty list
    means the model is well-formed. O(model). *)

val check_touched : Model.t -> touched:Id.Set.t -> violation list
(** Re-validates only the region of the model whose verdicts can depend on
    the [touched] ids (typically {!Diff.touched} of a journal diff): the
    touched elements, their referrers, the elements they own, and their
    transitive subclasses. Cost is proportional to that region, not the
    model. Sound for incremental use: if the model was well-formed before
    the touching mutations, [check_touched] reports exactly what {!check}
    would — any violation a mutation can introduce is anchored at an element
    in the scoped region. Violations outside the region that predate the
    mutations are (by design) not re-reported. *)

val is_wellformed : Model.t -> bool
(** [is_wellformed m] is [check m = []]. *)

val pp_violation : Format.formatter -> violation -> unit
