(* Time and allocation sources for the observability layer.

   The repo has no opam dependency for a true CLOCK_MONOTONIC (bechamel's
   clock is bench-only), so timestamps come from the wall clock in integer
   nanoseconds, clamped to be non-decreasing: span arithmetic never sees
   time move backwards, which is all the trace formats require. *)

let last = ref 0L

let now_ns () =
  let t = Int64.of_float (Unix.gettimeofday () *. 1e9) in
  let t = if Int64.compare t !last < 0 then !last else t in
  last := t;
  t

(* Total bytes allocated on the OCaml heaps since program start; deltas of
   this across a span give its allocation cost. Reads GC counters only —
   no collection is triggered. *)
let allocated_bytes () = Gc.allocated_bytes ()
