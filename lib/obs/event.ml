(* The one structured telemetry record every sink consumes.

   Events carry a deterministic sequence number and nesting depth next to
   the (nondeterministic) timestamp, so two identical runs produce
   identical event lists after [normalize]. *)

type value =
  | V_string of string
  | V_int of int
  | V_float of float
  | V_bool of bool

type kind =
  | Span_begin
  | Span_end of { wall_ns : int64; alloc_bytes : float }
  | Instant

type t = {
  seq : int;
  ts_ns : int64;
  dom : int;  (** id of the domain that emitted the event *)
  req : int;  (** request id the event belongs to, 0 = none *)
  sess : int;  (** session id the event belongs to, 0 = none *)
  depth : int;
  cat : string;
  name : string;
  kind : kind;
  args : (string * value) list;
}

let phase = function Span_begin -> "B" | Span_end _ -> "E" | Instant -> "i"

(* Strip the fields that vary between identical runs (timestamps, measured
   durations, allocation counts, the domain id — which worker of a pool
   ran an item is a scheduling accident — and the request/session ids,
   whose process-wide allocation order depends on that same scheduling);
   everything left must replay exactly. *)
let normalize e =
  {
    e with
    ts_ns = 0L;
    dom = 0;
    req = 0;
    sess = 0;
    kind =
      (match e.kind with
      | Span_end _ -> Span_end { wall_ns = 0L; alloc_bytes = 0. }
      | k -> k);
  }

(* ---- minimal JSON rendering (no dependency) --------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ json_escape s ^ "\""

let json_float f =
  if not (Float.is_finite f) then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let value_to_json = function
  | V_string s -> json_string s
  | V_int i -> string_of_int i
  | V_float f -> json_float f
  | V_bool b -> if b then "true" else "false"

let args_to_json args =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> json_string k ^ ":" ^ value_to_json v) args)
  ^ "}"

(* One flat JSONL object per event (the line-oriented sink format).
   [req]/[sess] are emitted only when set, so traces without request
   context render byte-identically to the pre-request format. *)
let to_json e =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"seq\":%d,\"ts_ns\":%Ld,\"dom\":%d,\"depth\":%d,\"ph\":%s,\"cat\":%s,\"name\":%s"
       e.seq e.ts_ns e.dom e.depth
       (json_string (phase e.kind))
       (json_string e.cat) (json_string e.name));
  if e.req <> 0 then Buffer.add_string buf (Printf.sprintf ",\"req\":%d" e.req);
  if e.sess <> 0 then
    Buffer.add_string buf (Printf.sprintf ",\"sess\":%d" e.sess);
  (match e.kind with
  | Span_end { wall_ns; alloc_bytes } ->
      Buffer.add_string buf
        (Printf.sprintf ",\"wall_ns\":%Ld,\"alloc_bytes\":%s" wall_ns
           (json_float alloc_bytes))
  | Span_begin | Instant -> ());
  if e.args <> [] then (
    Buffer.add_string buf ",\"args\":";
    Buffer.add_string buf (args_to_json e.args));
  Buffer.add_char buf '}';
  Buffer.contents buf
