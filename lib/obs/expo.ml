(* Prometheus-style text exposition of the metric registry.

   One deterministic document (entries sorted by metric name, then label
   string): counters and gauges render as single samples, histograms as
   the standard `_bucket{le="..."}`/`_sum`/`_count` triple with cumulative
   bucket counts, only the non-empty buckets plus the mandatory
   `le="+Inf"` emitted — the log-linear layout has 960 buckets and a
   latency distribution touches a handful.

   Metric names are sanitized to the Prometheus grammar (letters, digits,
   '_' and ':', not starting with a digit): every other character becomes
   '_', so `repo.session.commit.latency_ns` exposes as
   `repo_session_commit_latency_ns`. *)

let sanitize name =
  let mapped =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      name
  in
  if mapped = "" then "_"
  else
    match mapped.[0] with
    | '0' .. '9' -> "_" ^ mapped
    | _ -> mapped

let escape_label_value v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels labels =
  match labels with
  | [] -> ""
  | ls ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label_value v))
             ls)
      ^ "}"

(* `le` joins the user labels on bucket lines. *)
let render_labels_le labels le =
  let le_txt =
    if Float.is_integer le && Float.abs le < 1e15 then
      Printf.sprintf "%.0f" le
    else Printf.sprintf "%g" le
  in
  render_labels (labels @ [ ("le", le_txt) ])

let number f =
  if not (Float.is_finite f) then
    if f > 0. then "+Inf" else if f < 0. then "-Inf" else "NaN"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let add_cell buf seen_types name labels (cell : Metric.cell) =
  let sname = sanitize name in
  let type_line kind =
    if not (List.mem sname !seen_types) then begin
      seen_types := sname :: !seen_types;
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" sname kind)
    end
  in
  match cell with
  | Metric.Counter { total; _ } ->
      type_line "counter";
      Buffer.add_string buf
        (Printf.sprintf "%s%s %s\n" sname (render_labels labels) (number total))
  | Metric.Gauge { value; _ } ->
      type_line "gauge";
      Buffer.add_string buf
        (Printf.sprintf "%s%s %s\n" sname (render_labels labels) (number value))
  | Metric.Histogram { hist; _ } ->
      type_line "histogram";
      let cumulative = ref 0 in
      List.iter
        (fun (_, upper, count) ->
          cumulative := !cumulative + count;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" sname
               (render_labels_le labels upper)
               !cumulative))
        (Hist.buckets hist);
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket%s %d\n" sname
           (render_labels (labels @ [ ("le", "+Inf") ]))
           (Hist.count hist));
      Buffer.add_string buf
        (Printf.sprintf "%s_sum%s %s\n" sname (render_labels labels)
           (number (Hist.sum hist)));
      Buffer.add_string buf
        (Printf.sprintf "%s_count%s %d\n" sname (render_labels labels)
           (Hist.count hist))

let render_shard (shard : Metric.shard) =
  let ordered =
    List.sort
      (fun ((a, la), _) ((b, lb), _) ->
        match String.compare a b with
        | 0 -> compare la lb
        | c -> c)
      shard
  in
  let buf = Buffer.create 1024 in
  let seen_types = ref [] in
  List.iter
    (fun ((name, labels), cell) -> add_cell buf seen_types name labels cell)
    ordered;
  Buffer.contents buf

(* The calling domain's registry view — exact run totals once every
   parallel phase has been joined (see metric.ml's merge contract). *)
let render () = render_shard (Metric.dump ())
