(* A minimal JSON reader for the formats this library itself writes —
   JSONL trace events and `{experiment, metric, value, unit}` snapshot
   rows. Full RFC 8259 value grammar (so hand-edited inputs parse too),
   no dependency, errors as [Error msg] with the offending offset.

   This is a *reader for our own output*, not a general-purpose JSON
   library: numbers collapse to float, and \u escapes decode only the
   basic plane (surrogate pairs pass through as two code points) — both
   exactly what {!Event.to_json}/{!Metric.row_to_json} can produce. *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

exception Bad of string

let parse (s : string) : (value, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> incr pos
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    String.iter (fun c -> expect c) word;
    v
  in
  let hex_digit () =
    match peek () with
    | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') as c ->
        incr pos;
        let c = Option.get c in
        if c <= '9' then Char.code c - Char.code '0'
        else (Char.code (Char.lowercase_ascii c) - Char.code 'a') + 10
    | _ -> fail "bad \\u escape"
  in
  let string_ () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec chars () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> incr pos
      | Some '\\' -> (
          incr pos;
          match peek () with
          | Some '"' -> incr pos; Buffer.add_char buf '"'; chars ()
          | Some '\\' -> incr pos; Buffer.add_char buf '\\'; chars ()
          | Some '/' -> incr pos; Buffer.add_char buf '/'; chars ()
          | Some 'b' -> incr pos; Buffer.add_char buf '\b'; chars ()
          | Some 'f' -> incr pos; Buffer.add_char buf '\012'; chars ()
          | Some 'n' -> incr pos; Buffer.add_char buf '\n'; chars ()
          | Some 'r' -> incr pos; Buffer.add_char buf '\r'; chars ()
          | Some 't' -> incr pos; Buffer.add_char buf '\t'; chars ()
          | Some 'u' ->
              incr pos;
              let c =
                let a = hex_digit () in
                let b = hex_digit () in
                let c = hex_digit () in
                let d = hex_digit () in
                (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d
              in
              (* UTF-8 encode the code point *)
              if c < 0x80 then Buffer.add_char buf (Char.chr c)
              else if c < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
              end;
              chars ()
          | _ -> fail "bad escape")
      | Some c ->
          incr pos;
          Buffer.add_char buf c;
          chars ()
    in
    chars ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let consume () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
          incr pos;
          true
      | _ -> false
    in
    while consume () do
      ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec value () =
    skip_ws ();
    let v =
      match peek () with
      | Some '{' -> obj ()
      | Some '[' -> arr ()
      | Some '"' -> Str (string_ ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> number ()
      | _ -> fail "expected value"
    in
    skip_ws ();
    v
  and obj () =
    expect '{';
    skip_ws ();
    match peek () with
    | Some '}' ->
        incr pos;
        Obj []
    | _ ->
        let rec members acc =
          skip_ws ();
          let k = string_ () in
          skip_ws ();
          expect ':';
          let v = value () in
          match peek () with
          | Some ',' ->
              incr pos;
              members ((k, v) :: acc)
          | _ ->
              expect '}';
              Obj (List.rev ((k, v) :: acc))
        in
        members []
  and arr () =
    expect '[';
    skip_ws ();
    match peek () with
    | Some ']' ->
        incr pos;
        Arr []
    | _ ->
        let rec elements acc =
          let v = value () in
          match peek () with
          | Some ',' ->
              incr pos;
              elements (v :: acc)
          | _ ->
              expect ']';
              Arr (List.rev (v :: acc))
        in
        elements []
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ---- accessors over parsed objects ------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let str_field ?default key obj =
  match (member key obj, default) with
  | Some (Str s), _ -> Some s
  | _, d -> d

let num_field ?default key obj =
  match (member key obj, default) with
  | Some (Num f), _ -> Some f
  | _, d -> d

let int_field ?(default = 0) key obj =
  match member key obj with Some (Num f) -> int_of_float f | _ -> default
