(* Fixed-layout log-linear latency histogram (HDR-style).

   Values are quantized to non-negative integers (nanoseconds in practice)
   and land in one of 960 buckets: the first 16 buckets are exact
   (0..15), and every later power-of-two range is split into 16 linear
   sub-buckets, so the relative quantization error is bounded by 1/16
   (6.25%) at any magnitude up to 2^62. The layout is a pure function of
   the value — no rescaling, no allocation after [create] — which is what
   makes two histograms recorded on different domains mergeable by
   element-wise addition ({!merge_into}, the {!Metric.drain}/[absorb]
   shard protocol) with *exact* counts: merge order can never change a
   bucket total.

   Quantiles are estimated from the bucket counts: the reported value is
   the upper bound of the bucket holding the rank, clamped to the true
   recorded maximum, so a quantile is never below the bucket's real
   contents and never above anything actually observed. *)

let sub_bits = 4
let sub = 1 lsl sub_bits (* 16 linear sub-buckets per power-of-two range *)
let bucket_count = (63 - sub_bits + 1) * sub (* index 959 is the last *)

type t = {
  counts : int array;
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

let create () =
  {
    counts = Array.make bucket_count 0;
    count = 0;
    sum = 0.;
    min = infinity;
    max = neg_infinity;
  }

let copy t = { t with counts = Array.copy t.counts }

let count t = t.count
let sum t = t.sum
let min_value t = t.min
let max_value t = t.max
let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count

(* Position of the most significant bit of [n] (n > 0). *)
let msb n =
  let rec go n i = if n = 1 then i else go (n lsr 1) (i + 1) in
  go n 0

(* Negative and non-finite samples clamp to 0; anything past 2^62 lands in
   the last bucket. Telemetry must be total. *)
let index_of_value v =
  let n =
    if Float.is_nan v || v <= 0. then 0
    else if v >= 4.611686018427387904e18 (* 2^62 *) then max_int
    else int_of_float v
  in
  if n < sub then n
  else
    let m = msb n in
    let idx = (((m - sub_bits) + 1) * sub) + ((n lsr (m - sub_bits)) - sub) in
    if idx >= bucket_count then bucket_count - 1 else idx

(* Smallest value mapping to bucket [idx]; the bucket's upper bound is the
   next bucket's lower bound minus one quantum. *)
let lower_bound idx =
  if idx < sub then float_of_int idx
  else
    let g = idx lsr sub_bits in
    let r = idx land (sub - 1) in
    Int64.to_float (Int64.shift_left (Int64.of_int (sub + r)) (g - 1))

let upper_bound idx =
  if idx + 1 >= bucket_count then lower_bound idx *. 2.
  else lower_bound (idx + 1)

let observe t v =
  t.counts.(index_of_value v) <- t.counts.(index_of_value v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min then t.min <- v;
  if v > t.max then t.max <- v

let merge_into ~into src =
  Array.iteri
    (fun i c -> if c <> 0 then into.counts.(i) <- into.counts.(i) + c)
    src.counts;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.min < into.min then into.min <- src.min;
  if src.max > into.max then into.max <- src.max

(* [quantile t q] for q in [0,1]: the value at rank ceil(q*count), by the
   nearest-rank definition, up to bucket quantization. *)
let quantile t q =
  if t.count = 0 then 0.
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank =
      let r = int_of_float (ceil (q *. float_of_int t.count)) in
      if r < 1 then 1 else if r > t.count then t.count else r
    in
    let rec walk idx seen =
      if idx >= bucket_count then t.max
      else
        let seen = seen + t.counts.(idx) in
        if seen >= rank then
          let v = upper_bound idx in
          if v > t.max then t.max else v
        else walk (idx + 1) seen
    in
    walk 0 0
  end

(* Non-empty buckets, lowest first: (lower, upper, count). The raw layout
   for exposition and debugging; cumulative counts are the caller's
   business (Prometheus wants them cumulative, tables want them plain). *)
let buckets t =
  let acc = ref [] in
  for idx = bucket_count - 1 downto 0 do
    if t.counts.(idx) <> 0 then
      acc := (lower_bound idx, upper_bound idx, t.counts.(idx)) :: !acc
  done;
  !acc

type snapshot = {
  s_count : int;
  s_sum : float;
  s_min : float;
  s_max : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
}

let snapshot t =
  {
    s_count = t.count;
    s_sum = t.sum;
    s_min = (if t.count = 0 then 0. else t.min);
    s_max = (if t.count = 0 then 0. else t.max);
    s_p50 = quantile t 0.5;
    s_p90 = quantile t 0.9;
    s_p99 = quantile t 0.99;
  }
