(* Counters, gauges and histograms keyed by (name, labels).

   Recording is off by default: every entry point checks one atomic flag
   before touching the registry, so uninstrumented runs pay a memory read
   per call site. Histograms are full log-linear bucket vectors ({!Hist}):
   count/sum/min/max plus p50/p90/p99 quantile estimates in the snapshot
   rows, and the raw buckets for the Prometheus-style exposition
   ({!Expo}).

   The registry is sharded per domain (Domain.DLS): every domain records
   into its own hash table, so instrumented code running on a pool of
   worker domains never contends on — or races — a shared structure. The
   merge contract is explicit: a worker {!drain}s its shard when it
   finishes a parallel job, and the submitting domain {!absorb}s the
   drained shards at join. After the join, the submitter's registry holds
   exact totals (counters and histograms are commutative merges; a gauge
   keeps the last absorbed write, matching its last-write-wins reading).
   [rows] therefore reports the calling domain's view — which is the whole
   run's view exactly when every parallel phase has been joined. *)

type labels = (string * string) list

type cell =
  | Counter of { mutable total : float; c_unit : string }
  | Gauge of { mutable value : float; g_unit : string }
  | Histogram of { hist : Hist.t; o_unit : string }

(* The switch is global (an enable in the submitting domain must be seen by
   pool workers it spawns work onto); the data is domain-local. *)
let on = Atomic.make false
let enable () = Atomic.set on true
let disable () = Atomic.set on false
let enabled () = Atomic.get on

let registry_key : ((string * labels, cell) Hashtbl.t) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let registry () = Domain.DLS.get registry_key
let reset () = Hashtbl.reset (registry ())

let find_or_add key make =
  let registry = registry () in
  match Hashtbl.find_opt registry key with
  | Some c -> c
  | None ->
      let c = make () in
      Hashtbl.add registry key c;
      c

(* A kind clash (same key used as counter and histogram) drops the sample:
   telemetry must never raise out of an instrumented hot path. *)

let incr ?(by = 1.) ?(unit_ = "count") name labels =
  if Atomic.get on then
    match
      find_or_add (name, labels) (fun () -> Counter { total = 0.; c_unit = unit_ })
    with
    | Counter c -> c.total <- c.total +. by
    | Gauge _ | Histogram _ -> ()

let set ?(unit_ = "value") name labels v =
  if Atomic.get on then
    match
      find_or_add (name, labels) (fun () -> Gauge { value = v; g_unit = unit_ })
    with
    | Gauge g -> g.value <- v
    | Counter _ | Histogram _ -> ()

let observe ?(unit_ = "ns") name labels v =
  if Atomic.get on then
    match
      find_or_add (name, labels) (fun () ->
          Histogram { hist = Hist.create (); o_unit = unit_ })
    with
    | Histogram { hist; _ } -> Hist.observe hist v
    | Counter _ | Gauge _ -> ()

(* ---- shards: drain on the worker, absorb at the join --------------------- *)

type shard = ((string * labels) * cell) list

let drain () : shard =
  let registry = registry () in
  let cells = Hashtbl.fold (fun k c acc -> (k, c) :: acc) registry [] in
  Hashtbl.reset registry;
  cells

let absorb (shard : shard) =
  List.iter
    (fun (key, cell) ->
      match (find_or_add key (fun () -> cell), cell) with
      | c, c' when c == c' -> () (* key was absent: the cell moved over *)
      | Counter c, Counter { total; _ } -> c.total <- c.total +. total
      | Gauge g, Gauge { value; _ } -> g.value <- value
      | Histogram { hist = h; _ }, Histogram { hist = h'; _ } ->
          Hist.merge_into ~into:h h'
      | _, _ -> () (* kind clash across shards: drop, as recording does *))
    shard

(* Non-destructive view of the calling domain's registry — what {!Expo}
   renders. Cells are live; callers must not hold them across records. *)
let dump () : shard =
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) (registry ()) []

(* ---- snapshots --------------------------------------------------------- *)

type row = { metric : string; value : float; unit_ : string }

let qualified name labels =
  match labels with
  | [] -> name
  | ls ->
      name ^ "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) ls)
      ^ "}"

let rows () =
  let all =
    Hashtbl.fold
      (fun (name, labels) cell acc ->
        let q = qualified name labels in
        match cell with
        | Counter { total; c_unit } -> { metric = q; value = total; unit_ = c_unit } :: acc
        | Gauge { value; g_unit } -> { metric = q; value; unit_ = g_unit } :: acc
        | Histogram { hist; o_unit } ->
            let r suffix value unit_ =
              { metric = q ^ "." ^ suffix; value; unit_ }
            in
            let s = Hist.snapshot hist in
            r "count" (float_of_int s.Hist.s_count) "count"
            :: r "sum" s.Hist.s_sum o_unit
            :: r "min" s.Hist.s_min o_unit
            :: r "max" s.Hist.s_max o_unit
            :: r "mean" (Hist.mean hist) o_unit
            :: r "p50" s.Hist.s_p50 o_unit
            :: r "p90" s.Hist.s_p90 o_unit
            :: r "p99" s.Hist.s_p99 o_unit
            :: acc)
      (registry ()) []
  in
  List.sort (fun a b -> String.compare a.metric b.metric) all

(* One row per line, `{experiment, metric, value, unit}` — the BENCH_*.json
   snapshot schema (experiment omitted when not supplied). *)
let row_to_json ?experiment r =
  let exp =
    match experiment with
    | Some e -> Printf.sprintf "\"experiment\":%s," (Event.json_string e)
    | None -> ""
  in
  Printf.sprintf "{%s\"metric\":%s,\"value\":%s,\"unit\":%s}" exp
    (Event.json_string r.metric)
    (Event.json_float r.value)
    (Event.json_string r.unit_)

let rows_to_json ?experiment rows =
  "[\n" ^ String.concat ",\n" (List.map (row_to_json ?experiment) rows) ^ "\n]\n"
