(* Obs — the pipeline-wide observability façade.

   One sink per domain receives spans and structured events; one metric
   registry shard per domain receives counters/gauges/histograms (see
   metric.ml for the drain/absorb merge contract). Both are off by default
   (null sink, metrics disabled), and every entry point short-circuits on
   that default before doing any work, so instrumented hot paths stay
   within the < 3% overhead budget (DESIGN.md §7).

   The sink is domain-local (Domain.DLS): a freshly spawned domain always
   starts on the null sink, so pool workers never race a buffering sink
   installed by the main domain. A worker that wants its work traced
   installs its own sink (see Par.Batch's traced runs); events carry the
   emitting domain's id either way.

   Call-site discipline: span/event *arguments* are evaluated by the
   caller, so anything more expensive than a field read must be guarded
   with [enabled ()] (for the sink) or [Metric.enabled ()] (for the
   registry) at the call site. *)

module Clock = Clock
module Event = Event
module Hist = Hist
module Metric = Metric
module Span = Span
module Sink = Sink
module Expo = Expo
module Trace = Trace
module Regress = Regress

let current : Sink.t Domain.DLS.key = Domain.DLS.new_key (fun () -> Sink.Null)

let set_sink s = Domain.DLS.set current s
let sink () = Domain.DLS.get current
let enabled () = not (Sink.is_null (Domain.DLS.get current))

(* Back to the quiescent default: null sink, fresh span numbering, metrics
   disabled and emptied — all for the calling domain (the metrics switch is
   global). Tests use this between cases. *)
let reset () =
  set_sink Sink.Null;
  Span.reset ();
  Span.clear_request ();
  Metric.disable ();
  Metric.reset ()

(* Run [f] with [s] installed, restoring the previous sink after — the
   scoped form used by tests and the CLI front-ends. *)
let with_sink s f =
  let prev = sink () in
  set_sink s;
  Fun.protect ~finally:(fun () -> set_sink prev) f

let event ?(cat = "app") ?(args = []) name =
  match Domain.DLS.get current with
  | Sink.Null -> ()
  | s -> Sink.emit s (Span.instant ~cat ~name ~args)

let span ?(cat = "app") ?(args = []) name f =
  match Domain.DLS.get current with
  | Sink.Null -> f ()
  | s -> (
      let emit = Sink.emit s in
      let sp = Span.enter ~cat ~name ~args emit in
      match f () with
      | v ->
          Span.leave sp emit;
          v
      | exception exn ->
          Span.leave sp emit;
          raise exn)

(* Metric shorthands (each checks the metrics switch internally). *)
let incr ?by ?unit_ name labels = Metric.incr ?by ?unit_ name labels
let gauge ?unit_ name labels v = Metric.set ?unit_ name labels v
let observe ?unit_ name labels v = Metric.observe ?unit_ name labels v

(* Request-context shorthands: every event emitted by [f] (on this domain)
   carries the request/session id, so a JSONL trace can be sliced per
   request. [with_request] allocates a fresh process-wide id unless given
   one; both nest and restore the previous context on exit. *)
let with_request ?id f = Span.with_request ?id f
let with_session ~id f = Span.with_session ~id f
let request_id () = Span.request_id ()
let session_id () = Span.session_id ()
