(* Perf-regression gate over benchmark snapshots.

   A snapshot is the JSON array bench/main.ml writes: rows of
   `{experiment, metric, value, unit}`. [compare_snapshots] lines up an
   old and a new snapshot by (experiment, metric) key and classifies every
   shared row against a relative tolerance; [render] prints the verdict
   table and [gate] reduces it to an exit status (any Regressed → 1).

   Direction comes from the unit, not the metric name, so new experiments
   are gated without touching this file:

     ns/run                    lower is better
     models/s commits/s cases/s x
                               higher is better
     anything else             informational (counters, group.* resource
                               rows, host facts — reported, never gated) *)

type direction = Lower_better | Higher_better | Informational

let direction_of_unit = function
  | "ns/run" -> Lower_better
  | "models/s" | "commits/s" | "cases/s" | "x" -> Higher_better
  | _ -> Informational

type row = { experiment : string; metric : string; value : float; unit_ : string }

type verdict =
  | Improved
  | Ok_within
  | Regressed
  | Info
  | Added  (** only in the new snapshot *)
  | Removed  (** only in the old snapshot *)

type entry = {
  key : string * string;  (** experiment, metric *)
  unit_ : string;
  old_value : float option;
  new_value : float option;
  delta_pct : float option;  (** (new - old) / old * 100 *)
  verdict : verdict;
}

(* ---- snapshot parsing ---------------------------------------------------- *)

let parse (text : string) : (row list, string) result =
  match Flatjson.parse text with
  | Error e -> Error e
  | Ok (Flatjson.Arr items) ->
      let rec rows acc i = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            match
              ( Flatjson.str_field "metric" item,
                Flatjson.num_field "value" item,
                Flatjson.str_field "unit" item )
            with
            | Some metric, Some value, Some unit_ ->
                (* experiment is absent in `--metrics` run files; present in
                   BENCH_*.json *)
                let experiment =
                  Option.value ~default:""
                    (Flatjson.str_field "experiment" item)
                in
                rows ({ experiment; metric; value; unit_ } :: acc) (i + 1) rest
            | _ -> Error (Printf.sprintf "row %d: not a snapshot row" i))
      in
      rows [] 0 items
  | Ok _ -> Error "snapshot must be a JSON array of rows"

(* ---- comparison ----------------------------------------------------------- *)

let classify ~tolerance unit_ old_v new_v =
  let delta_pct =
    if Float.abs old_v > 0. then (new_v -. old_v) /. Float.abs old_v *. 100.
    else if new_v = old_v then 0.
    else Float.infinity
  in
  let verdict =
    match direction_of_unit unit_ with
    | Informational -> Info
    | Lower_better ->
        if delta_pct > tolerance then Regressed
        else if delta_pct < -.tolerance then Improved
        else Ok_within
    | Higher_better ->
        if delta_pct < -.tolerance then Regressed
        else if delta_pct > tolerance then Improved
        else Ok_within
  in
  (delta_pct, verdict)

(* [tolerance] is a relative percentage: 10. accepts a ±10% drift on every
   gated row. Rows present on only one side are reported (Added/Removed)
   but never fail the gate — a growing benchmark suite is not a
   regression. *)
let compare_snapshots ~tolerance (old_rows : row list) (new_rows : row list) :
    entry list =
  let key r = (r.experiment, r.metric) in
  let olds = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace olds (key r) r) old_rows;
  let news = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace news (key r) r) new_rows;
  let shared_and_added =
    List.map
      (fun nr ->
        match Hashtbl.find_opt olds (key nr) with
        | Some orow ->
            let delta, verdict =
              classify ~tolerance nr.unit_ orow.value nr.value
            in
            {
              key = key nr;
              unit_ = nr.unit_;
              old_value = Some orow.value;
              new_value = Some nr.value;
              delta_pct = Some delta;
              verdict;
            }
        | None ->
            {
              key = key nr;
              unit_ = nr.unit_;
              old_value = None;
              new_value = Some nr.value;
              delta_pct = None;
              verdict = Added;
            })
      new_rows
  in
  let removed =
    List.filter_map
      (fun orow ->
        if Hashtbl.mem news (key orow) then None
        else
          Some
            {
              key = key orow;
              unit_ = orow.unit_;
              old_value = Some orow.value;
              new_value = None;
              delta_pct = None;
              verdict = Removed;
            })
      old_rows
  in
  List.sort
    (fun a b -> compare a.key b.key)
    (shared_and_added @ removed)

(* ---- rendering ------------------------------------------------------------ *)

let verdict_label = function
  | Improved -> "improved"
  | Ok_within -> "ok"
  | Regressed -> "REGRESSED"
  | Info -> "info"
  | Added -> "added"
  | Removed -> "removed"

let number f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.4g" f

let render ~tolerance (entries : entry list) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "bench-diff: %d row(s), tolerance %.0f%%\n"
       (List.length entries) tolerance);
  List.iter
    (fun e ->
      let exp, metric = e.key in
      Buffer.add_string buf
        (Printf.sprintf "  %-9s %-10s %-52s %12s -> %-12s %8s (%s)\n"
           (verdict_label e.verdict) exp metric
           (match e.old_value with Some v -> number v | None -> "-")
           (match e.new_value with Some v -> number v | None -> "-")
           (match e.delta_pct with
           | Some d when Float.is_finite d -> Printf.sprintf "%+.1f%%" d
           | Some _ -> "+inf%"
           | None -> "-")
           e.unit_))
    entries;
  let count v = List.length (List.filter (fun e -> e.verdict = v) entries) in
  Buffer.add_string buf
    (Printf.sprintf
       "summary: %d regressed, %d improved, %d ok, %d info, %d added, %d \
        removed\n"
       (count Regressed) (count Improved) (count Ok_within) (count Info)
       (count Added) (count Removed));
  Buffer.contents buf

let regressed entries =
  List.exists (fun e -> e.verdict = Regressed) entries

(* Exit status for the CLI: 0 clean, 1 when any gated row regressed. *)
let gate entries = if regressed entries then 1 else 0
