(* Pluggable event consumers.

   [Null] is the default and is matched *before* any event is constructed
   (see obs.ml), so uninstrumented runs pay one pattern match per call
   site. The other sinks are plain closures: an in-memory recorder for
   tests, a JSONL streamer, and a buffered Chrome trace-event exporter
   whose output opens directly in chrome://tracing or Perfetto. *)

type t = Null | Emit of (Event.t -> unit)

let is_null = function Null -> true | Emit _ -> false
let emit t e = match t with Null -> () | Emit f -> f e

(* In-memory sink; the second component replays what was recorded. *)
let memory () =
  let acc = ref [] in
  (Emit (fun e -> acc := e :: !acc), fun () -> List.rev !acc)

(* Stream one JSON object per line into [buf]. *)
let jsonl buf =
  Emit
    (fun e ->
      Buffer.add_string buf (Event.to_json e);
      Buffer.add_char buf '\n')

(* ---- Chrome trace-event format ---------------------------------------- *)

(* Timestamps are microseconds relative to the first event, which keeps the
   numbers small and the viewer timeline anchored at zero. *)
let chrome_of_events events =
  let t0 = match events with [] -> 0L | e :: _ -> e.Event.ts_ns in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i (e : Event.t) ->
      if i > 0 then Buffer.add_char buf ',';
      let ts_us = Int64.to_float (Int64.sub e.Event.ts_ns t0) /. 1e3 in
      let args =
        (match e.Event.kind with
        | Event.Span_end { wall_ns; alloc_bytes } ->
            [
              ("wall_ns", Event.V_float (Int64.to_float wall_ns));
              ("alloc_bytes", Event.V_float alloc_bytes);
            ]
        | Event.Span_begin | Event.Instant -> [])
        @ (if e.Event.req <> 0 then [ ("req", Event.V_int e.Event.req) ] else [])
        @ (if e.Event.sess <> 0 then [ ("sess", Event.V_int e.Event.sess) ]
           else [])
        @ e.Event.args
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":%s,\"cat\":%s,\"ph\":%s,%s\"pid\":1,\"tid\":%d,\"ts\":%.3f%s}"
           (Event.json_string e.Event.name)
           (Event.json_string e.Event.cat)
           (Event.json_string (Event.phase e.Event.kind))
           (match e.Event.kind with
           | Event.Instant -> "\"s\":\"t\","
           | Event.Span_begin | Event.Span_end _ -> "")
           (e.Event.dom + 1)
           ts_us
           (if args = [] then "" else ",\"args\":" ^ Event.args_to_json args)))
    events;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(* Buffering exporter: feed it as a sink during the run, render the full
   trace document at the end. *)
let chrome () =
  let sink, events = memory () in
  (sink, fun () -> chrome_of_events (events ()))

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
