(* Hierarchical span bookkeeping: one sequence counter and nesting depth
   per domain (Domain.DLS), shared with instant events so each domain's
   event stream has a total, deterministic order. Per-domain state is what
   lets a pool of worker domains trace concurrently without racing a global
   counter; the emitting domain's id is stamped on every event. Timing
   (wall ns) and allocation deltas are captured between [enter] and
   [leave]. *)

type open_span = { name : string; cat : string; t0 : int64; a0 : float }

type state = {
  mutable seq : int;
  mutable depth : int;
  mutable req : int;  (** current request id, 0 = no request in scope *)
  mutable sess : int;  (** current session id, 0 = no session in scope *)
}

let state_key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { seq = 0; depth = 0; req = 0; sess = 0 })

let state () = Domain.DLS.get state_key
let seq () = (state ()).seq
let depth () = (state ()).depth
let request_id () = (state ()).req
let session_id () = (state ()).sess

(* [reset] renumbers (seq/depth) only: a scoped capture that restarts
   numbering must not lose the ambient request context it runs under. *)
let reset () =
  let st = state () in
  st.seq <- 0;
  st.depth <- 0

let clear_request () =
  let st = state () in
  st.req <- 0;
  st.sess <- 0

(* Request ids are allocated process-wide: two concurrent sessions must
   never share one, whatever domain runs them. The allocation order under
   a pool is a scheduling accident, which is why [Event.normalize] zeroes
   the ids — determinism oracles compare traces modulo request numbering. *)
let req_counter = Atomic.make 1
let fresh_request_id () = Atomic.fetch_and_add req_counter 1

let with_context get set v f =
  let st = state () in
  let prev = get st in
  set st v;
  Fun.protect ~finally:(fun () -> set st prev) f

let with_request ?id f =
  let id = match id with Some id -> id | None -> fresh_request_id () in
  with_context (fun st -> st.req) (fun st v -> st.req <- v) id f

let with_session ~id f =
  with_context (fun st -> st.sess) (fun st v -> st.sess <- v) id f

(* Save/restore of the local counters, so a scoped trace capture (one batch
   item recorded into its own sink) can renumber from zero without
   corrupting the bookkeeping of whatever outer spans are open. *)
type snapshot = { s_seq : int; s_depth : int; s_req : int; s_sess : int }

let save () =
  let st = state () in
  { s_seq = st.seq; s_depth = st.depth; s_req = st.req; s_sess = st.sess }

let restore snap =
  let st = state () in
  st.seq <- snap.s_seq;
  st.depth <- snap.s_depth;
  st.req <- snap.s_req;
  st.sess <- snap.s_sess

let next_seq st =
  st.seq <- st.seq + 1;
  st.seq

let dom_id () = (Domain.self () :> int)

let instant ~cat ~name ~args =
  let st = state () in
  {
    Event.seq = next_seq st;
    ts_ns = Clock.now_ns ();
    dom = dom_id ();
    req = st.req;
    sess = st.sess;
    depth = st.depth;
    cat;
    name;
    kind = Event.Instant;
    args;
  }

let enter ~cat ~name ~args emit =
  let st = state () in
  let e =
    {
      Event.seq = next_seq st;
      ts_ns = Clock.now_ns ();
      dom = dom_id ();
      req = st.req;
      sess = st.sess;
      depth = st.depth;
      cat;
      name;
      kind = Event.Span_begin;
      args;
    }
  in
  st.depth <- st.depth + 1;
  emit e;
  { name; cat; t0 = e.Event.ts_ns; a0 = Clock.allocated_bytes () }

let leave sp emit =
  let st = state () in
  let now = Clock.now_ns () in
  let wall_ns = Int64.sub now sp.t0 in
  let alloc_bytes = Clock.allocated_bytes () -. sp.a0 in
  st.depth <- (if st.depth > 0 then st.depth - 1 else 0);
  emit
    {
      Event.seq = next_seq st;
      ts_ns = now;
      dom = dom_id ();
      req = st.req;
      sess = st.sess;
      depth = st.depth;
      cat = sp.cat;
      name = sp.name;
      kind = Event.Span_end { wall_ns; alloc_bytes };
      args = [];
    }
