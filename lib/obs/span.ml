(* Hierarchical span bookkeeping: one global sequence counter and nesting
   depth, shared with instant events so the full event stream has a total,
   deterministic order. Timing (wall ns) and allocation deltas are captured
   between [enter] and [leave]. *)

type open_span = { name : string; cat : string; t0 : int64; a0 : float }

let seq = ref 0
let depth = ref 0

let reset () =
  seq := 0;
  depth := 0

let next_seq () =
  incr seq;
  !seq

let instant ~cat ~name ~args =
  {
    Event.seq = next_seq ();
    ts_ns = Clock.now_ns ();
    depth = !depth;
    cat;
    name;
    kind = Event.Instant;
    args;
  }

let enter ~cat ~name ~args emit =
  let e =
    {
      Event.seq = next_seq ();
      ts_ns = Clock.now_ns ();
      depth = !depth;
      cat;
      name;
      kind = Event.Span_begin;
      args;
    }
  in
  depth := !depth + 1;
  emit e;
  { name; cat; t0 = e.Event.ts_ns; a0 = Clock.allocated_bytes () }

let leave sp emit =
  let now = Clock.now_ns () in
  let wall_ns = Int64.sub now sp.t0 in
  let alloc_bytes = Clock.allocated_bytes () -. sp.a0 in
  depth := (if !depth > 0 then !depth - 1 else 0);
  emit
    {
      Event.seq = next_seq ();
      ts_ns = now;
      depth = !depth;
      cat = sp.cat;
      name = sp.name;
      kind = Event.Span_end { wall_ns; alloc_bytes };
      args = [];
    }
