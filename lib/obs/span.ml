(* Hierarchical span bookkeeping: one sequence counter and nesting depth
   per domain (Domain.DLS), shared with instant events so each domain's
   event stream has a total, deterministic order. Per-domain state is what
   lets a pool of worker domains trace concurrently without racing a global
   counter; the emitting domain's id is stamped on every event. Timing
   (wall ns) and allocation deltas are captured between [enter] and
   [leave]. *)

type open_span = { name : string; cat : string; t0 : int64; a0 : float }

type state = { mutable seq : int; mutable depth : int }

let state_key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { seq = 0; depth = 0 })

let state () = Domain.DLS.get state_key
let seq () = (state ()).seq
let depth () = (state ()).depth

let reset () =
  let st = state () in
  st.seq <- 0;
  st.depth <- 0

(* Save/restore of the local counters, so a scoped trace capture (one batch
   item recorded into its own sink) can renumber from zero without
   corrupting the bookkeeping of whatever outer spans are open. *)
type snapshot = { s_seq : int; s_depth : int }

let save () =
  let st = state () in
  { s_seq = st.seq; s_depth = st.depth }

let restore snap =
  let st = state () in
  st.seq <- snap.s_seq;
  st.depth <- snap.s_depth

let next_seq st =
  st.seq <- st.seq + 1;
  st.seq

let dom_id () = (Domain.self () :> int)

let instant ~cat ~name ~args =
  let st = state () in
  {
    Event.seq = next_seq st;
    ts_ns = Clock.now_ns ();
    dom = dom_id ();
    depth = st.depth;
    cat;
    name;
    kind = Event.Instant;
    args;
  }

let enter ~cat ~name ~args emit =
  let st = state () in
  let e =
    {
      Event.seq = next_seq st;
      ts_ns = Clock.now_ns ();
      dom = dom_id ();
      depth = st.depth;
      cat;
      name;
      kind = Event.Span_begin;
      args;
    }
  in
  st.depth <- st.depth + 1;
  emit e;
  { name; cat; t0 = e.Event.ts_ns; a0 = Clock.allocated_bytes () }

let leave sp emit =
  let st = state () in
  let now = Clock.now_ns () in
  let wall_ns = Int64.sub now sp.t0 in
  let alloc_bytes = Clock.allocated_bytes () -. sp.a0 in
  st.depth <- (if st.depth > 0 then st.depth - 1 else 0);
  emit
    {
      Event.seq = next_seq st;
      ts_ns = now;
      dom = dom_id ();
      depth = st.depth;
      cat = sp.cat;
      name = sp.name;
      kind = Event.Span_end { wall_ns; alloc_bytes };
      args = [];
    }
