(* Offline analysis over JSONL traces — the read side of {!Event.to_json}.

   [parse] turns a JSONL document back into events; [spans] rebuilds the
   span forest per domain (begin/end pairing is positional: events of one
   domain are totally ordered by [seq], so a stack is exact);
   [summarize] rolls wall/alloc up per category and computes the critical
   path of every request; [slice] filters the raw events by request or
   session id. Together they make a `--trace FILE.jsonl` run queryable:

     mdweave trace summarize serve.trace.jsonl
     mdweave trace slice serve.trace.jsonl --request 3 *)

(* ---- parsing ------------------------------------------------------------ *)

let value_of_json : Flatjson.value -> Event.value option = function
  | Flatjson.Str s -> Some (Event.V_string s)
  | Flatjson.Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Some (Event.V_int (int_of_float f))
      else Some (Event.V_float f)
  | Flatjson.Bool b -> Some (Event.V_bool b)
  | Flatjson.Null | Flatjson.Arr _ | Flatjson.Obj _ -> None

let event_of_json (j : Flatjson.value) : (Event.t, string) result =
  match j with
  | Flatjson.Obj _ ->
      let kind =
        match Flatjson.str_field "ph" j with
        | Some "B" -> Ok Event.Span_begin
        | Some "E" ->
            Ok
              (Event.Span_end
                 {
                   wall_ns =
                     Int64.of_float
                       (Option.value ~default:0.
                          (Flatjson.num_field "wall_ns" j));
                   alloc_bytes =
                     Option.value ~default:0.
                       (Flatjson.num_field "alloc_bytes" j);
                 })
        | Some "i" -> Ok Event.Instant
        | Some ph -> Error (Printf.sprintf "unknown phase %S" ph)
        | None -> Error "missing \"ph\""
      in
      Result.map
        (fun kind ->
          {
            Event.seq = Flatjson.int_field "seq" j;
            ts_ns =
              Int64.of_float
                (Option.value ~default:0. (Flatjson.num_field "ts_ns" j));
            dom = Flatjson.int_field "dom" j;
            req = Flatjson.int_field "req" j;
            sess = Flatjson.int_field "sess" j;
            depth = Flatjson.int_field "depth" j;
            cat = Option.value ~default:"" (Flatjson.str_field "cat" j);
            name = Option.value ~default:"" (Flatjson.str_field "name" j);
            kind;
            args =
              (match Flatjson.member "args" j with
              | Some (Flatjson.Obj fields) ->
                  List.filter_map
                    (fun (k, v) ->
                      Option.map (fun v -> (k, v)) (value_of_json v))
                    fields
              | _ -> []);
          })
        kind
  | _ -> Error "not a JSON object"

(* Whole-document parse; blank lines are ignored, any bad line fails with
   its (1-based) line number. *)
let parse (text : string) : (Event.t list, string) result =
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then go (lineno + 1) acc rest
        else
          let parsed =
            match Flatjson.parse line with
            | Ok j -> event_of_json j
            | Error e -> Error e
          in
          (match parsed with
          | Ok e -> go (lineno + 1) (e :: acc) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 [] (String.split_on_char '\n' text)

(* ---- span forest --------------------------------------------------------- *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_req : int;
  sp_sess : int;
  sp_wall_ns : int64;
  sp_alloc : float;
  sp_children : span list;  (** in trace order *)
}

(* Events are replayed per domain in [seq] order; a begin pushes a frame,
   an end pops it. Unbalanced ends (a truncated capture) close into the
   roots rather than erroring: analysis over a partial trace must still
   answer. *)
let spans (events : Event.t list) : span list =
  let by_dom = Hashtbl.create 4 in
  List.iter
    (fun (e : Event.t) ->
      let k = e.Event.dom in
      Hashtbl.replace by_dom k
        (e :: (Option.value ~default:[] (Hashtbl.find_opt by_dom k))))
    events;
  let dom_roots dom_events =
    let ordered =
      List.sort
        (fun (a : Event.t) (b : Event.t) -> compare a.Event.seq b.Event.seq)
        dom_events
    in
    (* stack frames: (begin event, children so far, reversed) *)
    let rec walk stack roots = function
      | [] ->
          (* unterminated frames surface as roots with zero wall *)
          let rec unwind stack roots =
            match stack with
            | [] -> roots
            | (b, kids) :: rest ->
                let node =
                  {
                    sp_name = b.Event.name;
                    sp_cat = b.Event.cat;
                    sp_req = b.Event.req;
                    sp_sess = b.Event.sess;
                    sp_wall_ns = 0L;
                    sp_alloc = 0.;
                    sp_children = List.rev kids;
                  }
                in
                (match rest with
                | [] -> unwind [] (node :: roots)
                | (b', kids') :: rest' ->
                    unwind ((b', node :: kids') :: rest') roots)
          in
          List.rev (unwind stack roots)
      | (e : Event.t) :: rest -> (
          match e.Event.kind with
          | Event.Span_begin -> walk ((e, []) :: stack) roots rest
          | Event.Instant -> walk stack roots rest
          | Event.Span_end { wall_ns; alloc_bytes } -> (
              match stack with
              | [] -> walk [] roots rest (* stray end: drop *)
              | (b, kids) :: stack' ->
                  let node =
                    {
                      sp_name = b.Event.name;
                      sp_cat = b.Event.cat;
                      sp_req = b.Event.req;
                      sp_sess = b.Event.sess;
                      sp_wall_ns = wall_ns;
                      sp_alloc = alloc_bytes;
                      sp_children = List.rev kids;
                    }
                  in
                  (match stack' with
                  | [] -> walk [] (node :: roots) rest
                  | (b', kids') :: rest' ->
                      walk ((b', node :: kids') :: rest') roots rest)))
    in
    walk [] [] ordered
  in
  Hashtbl.fold (fun _ evs acc -> dom_roots evs @ acc) by_dom []

(* ---- rollups ------------------------------------------------------------- *)

type cat_row = {
  cr_cat : string;
  cr_spans : int;  (** all spans of the category *)
  cr_wall_ns : int64;  (** category-topmost spans only: no double count *)
  cr_alloc : float;
  cr_instants : int;
}

let by_category (events : Event.t list) : cat_row list =
  let table : (string, cat_row) Hashtbl.t = Hashtbl.create 8 in
  let get cat =
    match Hashtbl.find_opt table cat with
    | Some r -> r
    | None ->
        let r =
          { cr_cat = cat; cr_spans = 0; cr_wall_ns = 0L; cr_alloc = 0.;
            cr_instants = 0 }
        in
        Hashtbl.replace table cat r;
        r
  in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Instant ->
          let r = get e.Event.cat in
          Hashtbl.replace table e.Event.cat
            { r with cr_instants = r.cr_instants + 1 }
      | Event.Span_begin | Event.Span_end _ -> ())
    events;
  (* wall/alloc from the span forest: a span only contributes to its
     category's total when its parent is a different category, so nested
     same-category spans are not double counted *)
  let rec walk parent_cat node =
    let r = get node.sp_cat in
    let top = not (String.equal parent_cat node.sp_cat) in
    Hashtbl.replace table node.sp_cat
      {
        r with
        cr_spans = r.cr_spans + 1;
        cr_wall_ns =
          (if top then Int64.add r.cr_wall_ns node.sp_wall_ns
           else r.cr_wall_ns);
        cr_alloc = (if top then r.cr_alloc +. node.sp_alloc else r.cr_alloc);
      };
    List.iter (walk node.sp_cat) node.sp_children
  in
  List.iter (walk "") (spans events);
  List.sort
    (fun a b -> String.compare a.cr_cat b.cr_cat)
    (Hashtbl.fold (fun _ r acc -> r :: acc) table [])

type request_row = {
  rr_req : int;
  rr_sess : int;
  rr_events : int;
  rr_wall_ns : int64;  (** sum of the request's root spans *)
  rr_critical_path : string list;
      (** names down the heaviest child at each level of the heaviest root *)
}

let by_request (events : Event.t list) : request_row list =
  let reqs = Hashtbl.create 8 in
  List.iter
    (fun (e : Event.t) ->
      if e.Event.req <> 0 then
        let count, sess =
          Option.value ~default:(0, e.Event.sess)
            (Hashtbl.find_opt reqs e.Event.req)
        in
        let sess = if sess <> 0 then sess else e.Event.sess in
        Hashtbl.replace reqs e.Event.req (count + 1, sess))
    events;
  let roots = spans events in
  let rec critical node =
    node.sp_name
    ::
    (match
       List.fold_left
         (fun best child ->
           match best with
           | Some b when Int64.compare b.sp_wall_ns child.sp_wall_ns >= 0 ->
               best
           | _ -> Some child)
         None node.sp_children
     with
    | Some heaviest -> critical heaviest
    | None -> [])
  in
  Hashtbl.fold
    (fun req (count, sess) acc ->
      let own = List.filter (fun r -> r.sp_req = req) roots in
      let wall =
        List.fold_left (fun acc r -> Int64.add acc r.sp_wall_ns) 0L own
      in
      let path =
        match
          List.fold_left
            (fun best r ->
              match best with
              | Some b when Int64.compare b.sp_wall_ns r.sp_wall_ns >= 0 ->
                  best
              | _ -> Some r)
            None own
        with
        | Some heaviest -> critical heaviest
        | None -> []
      in
      {
        rr_req = req;
        rr_sess = sess;
        rr_events = count;
        rr_wall_ns = wall;
        rr_critical_path = path;
      }
      :: acc)
    reqs []
  |> List.sort (fun a b -> compare a.rr_req b.rr_req)

(* ---- summary rendering ---------------------------------------------------- *)

let distinct f events =
  List.sort_uniq compare (List.filter_map f events) |> List.length

let summarize (events : Event.t list) : string =
  let buf = Buffer.create 1024 in
  let doms =
    distinct (fun (e : Event.t) -> Some e.Event.dom) events
  in
  let reqs =
    distinct
      (fun (e : Event.t) ->
        if e.Event.req = 0 then None else Some e.Event.req)
      events
  in
  let sessions =
    distinct
      (fun (e : Event.t) ->
        if e.Event.sess = 0 then None else Some e.Event.sess)
      events
  in
  Buffer.add_string buf
    (Printf.sprintf
       "trace: %d event(s), %d domain(s), %d request(s), %d session(s)\n"
       (List.length events) doms reqs sessions);
  let cats = by_category events in
  if cats <> [] then begin
    Buffer.add_string buf "per-category (wall is category-topmost spans):\n";
    List.iter
      (fun r ->
        Buffer.add_string buf
          (Printf.sprintf
             "  %-10s %5d span(s) %5d event(s)  wall %10Ldns  alloc %12.0fB\n"
             r.cr_cat r.cr_spans r.cr_instants r.cr_wall_ns r.cr_alloc))
      cats
  end;
  let rows = by_request events in
  if rows <> [] then begin
    Buffer.add_string buf "per-request critical path:\n";
    List.iter
      (fun r ->
        Buffer.add_string buf
          (Printf.sprintf "  req %-4d sess %-3d %3d event(s)  wall %10Ldns  %s\n"
             r.rr_req r.rr_sess r.rr_events r.rr_wall_ns
             (if r.rr_critical_path = [] then "-"
              else String.concat " > " r.rr_critical_path)))
      rows
  end;
  Buffer.contents buf

(* ---- slicing -------------------------------------------------------------- *)

(* Keep events matching every given filter; re-rendered by the caller via
   {!Event.to_json}, so a slice of a JSONL trace is again a JSONL trace. *)
let slice ?req ?sess (events : Event.t list) : Event.t list =
  List.filter
    (fun (e : Event.t) ->
      (match req with None -> true | Some r -> e.Event.req = r)
      && match sess with None -> true | Some s -> e.Event.sess = s)
    events
