type collection_kind =
  | Ck_set
  | Ck_sequence
  | Ck_bag

let collection_kind_name = function
  | Ck_set -> "Set"
  | Ck_sequence -> "Sequence"
  | Ck_bag -> "Bag"

type binop =
  | Op_implies
  | Op_or
  | Op_xor
  | Op_and
  | Op_eq
  | Op_neq
  | Op_lt
  | Op_gt
  | Op_le
  | Op_ge
  | Op_add
  | Op_sub
  | Op_mul
  | Op_div
  | Op_idiv
  | Op_mod

let binop_name = function
  | Op_implies -> "implies"
  | Op_or -> "or"
  | Op_xor -> "xor"
  | Op_and -> "and"
  | Op_eq -> "="
  | Op_neq -> "<>"
  | Op_lt -> "<"
  | Op_gt -> ">"
  | Op_le -> "<="
  | Op_ge -> ">="
  | Op_add -> "+"
  | Op_sub -> "-"
  | Op_mul -> "*"
  | Op_div -> "/"
  | Op_idiv -> "div"
  | Op_mod -> "mod"

type t =
  | E_int of int
  | E_real of float
  | E_string of string
  | E_bool of bool
  | E_self
  | E_var of string
  | E_collection of collection_kind * t list
  | E_if of t * t * t
  | E_let of string * t * t
  | E_binop of binop * t * t
  | E_not of t
  | E_neg of t
  | E_prop of t * string
  | E_call of t * string * t list
  | E_coll_op of t * string * t list
  | E_iter of t * string * string list * t
  | E_iterate of t * string * string * t * t
  | E_probe_exists_name of string * t * t
  | E_probe_select_name of string * t * t
  | E_probe_forall_guard of string * string list * string * t * t

let iterator_names =
  [
    "forAll";
    "exists";
    "select";
    "reject";
    "collect";
    "one";
    "any";
    "isUnique";
    "sortedBy";
    "closure";
  ]

let rec pp ppf e =
  let pp_args ppf args =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      pp ppf args
  in
  match e with
  | E_int n -> Format.pp_print_int ppf n
  | E_real f -> Format.fprintf ppf "%g" f
  | E_string s -> Format.fprintf ppf "'%s'" s
  | E_bool b -> Format.pp_print_bool ppf b
  | E_self -> Format.pp_print_string ppf "self"
  | E_var v -> Format.pp_print_string ppf v
  | E_collection (ck, items) ->
      Format.fprintf ppf "%s{%a}" (collection_kind_name ck) pp_args items
  | E_if (c, t, f) ->
      Format.fprintf ppf "(if %a then %a else %a endif)" pp c pp t pp f
  | E_let (v, bound, body) ->
      Format.fprintf ppf "(let %s = %a in %a)" v pp bound pp body
  | E_binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp a (binop_name op) pp b
  | E_not e -> Format.fprintf ppf "(not %a)" pp e
  | E_neg e -> Format.fprintf ppf "(-%a)" pp e
  | E_prop (e, name) -> Format.fprintf ppf "%a.%s" pp e name
  | E_call (e, name, args) -> Format.fprintf ppf "%a.%s(%a)" pp e name pp_args args
  | E_coll_op (e, name, args) ->
      Format.fprintf ppf "%a->%s(%a)" pp e name pp_args args
  | E_iter (e, name, vars, body) ->
      Format.fprintf ppf "%a->%s(%s | %a)" pp e name (String.concat ", " vars)
        pp body
  | E_iterate (e, v, acc, init, body) ->
      Format.fprintf ppf "%a->iterate(%s; %s = %a | %a)" pp e v acc pp init pp
        body
  | E_probe_exists_name (_, _, orig)
  | E_probe_select_name (_, _, orig)
  | E_probe_forall_guard (_, _, _, _, orig) ->
      (* planner nodes render as the surface syntax they were derived
         from, so reproducers and error messages never leak plan IR *)
      pp ppf orig

let to_string e = Format.asprintf "%a" pp e

let rec fold_vars f e acc =
  let fold_list es acc = List.fold_left (fun acc e -> fold_vars f e acc) acc es in
  match e with
  | E_int _ | E_real _ | E_string _ | E_bool _ | E_self -> acc
  | E_var v -> f v acc
  | E_collection (_, items) -> fold_list items acc
  | E_if (c, t, e') -> fold_vars f e' (fold_vars f t (fold_vars f c acc))
  | E_let (v, bound, body) -> fold_vars f body (f v (fold_vars f bound acc))
  | E_binop (_, a, b) -> fold_vars f b (fold_vars f a acc)
  | E_not e' | E_neg e' | E_prop (e', _) -> fold_vars f e' acc
  | E_call (e', _, args) | E_coll_op (e', _, args) ->
      fold_list args (fold_vars f e' acc)
  | E_iter (e', _, vars, body) ->
      fold_vars f body (List.fold_left (fun acc v -> f v acc) (fold_vars f e' acc) vars)
  | E_iterate (e', v, acc_var, init, body) ->
      fold_vars f body (f acc_var (f v (fold_vars f init (fold_vars f e' acc))))
  | E_probe_exists_name (_, _, orig)
  | E_probe_select_name (_, _, orig)
  | E_probe_forall_guard (_, _, _, _, orig) ->
      fold_vars f orig acc
