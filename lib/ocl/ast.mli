(** Abstract syntax of the OCL subset. *)

(** Kind of a collection literal or value. *)
type collection_kind =
  | Ck_set
  | Ck_sequence
  | Ck_bag

val collection_kind_name : collection_kind -> string

(** Binary operators, in increasing binding strength: implies; or/xor; and;
    relational; additive; multiplicative. *)
type binop =
  | Op_implies
  | Op_or
  | Op_xor
  | Op_and
  | Op_eq
  | Op_neq
  | Op_lt
  | Op_gt
  | Op_le
  | Op_ge
  | Op_add
  | Op_sub
  | Op_mul
  | Op_div
  | Op_idiv
  | Op_mod

val binop_name : binop -> string

type t =
  | E_int of int
  | E_real of float
  | E_string of string
  | E_bool of bool
  | E_self
  | E_var of string
  | E_collection of collection_kind * t list
      (** [Set{...}], [Sequence{...}], [Bag{...}] *)
  | E_if of t * t * t
  | E_let of string * t * t
  | E_binop of binop * t * t
  | E_not of t
  | E_neg of t
  | E_prop of t * string  (** [e.name] — property navigation *)
  | E_call of t * string * t list  (** [e.name(args)] — operation call *)
  | E_coll_op of t * string * t list
      (** [e->name(args)] — collection operation with plain arguments *)
  | E_iter of t * string * string list * t
      (** [e->name(v1, v2 | body)] — iterator such as forAll/select/… *)
  | E_iterate of t * string * string * t * t
      (** [e->iterate(v; acc = init | body)] *)
  | E_probe_exists_name of string * t * t
      (** Planner IR, never produced by the parser:
          [K.allInstances()->exists(x | x.name = rhs)] rewritten to a
          name-index probe. Fields: classifier, [rhs], original
          expression (evaluated as fallback, printed, folded over). *)
  | E_probe_select_name of string * t * t
      (** Planner IR for [K.allInstances()->select(x | x.name = rhs)]. *)
  | E_probe_forall_guard of string * string list * string * t * t
      (** Planner IR for
          [K.allInstances()->forAll(x | LIT->includes(x.name) implies body)]
          where [LIT] is a literal collection of string constants: only
          elements whose name occurs in [LIT] can have a non-vacuous body
          (implies short-circuits on a false antecedent), so the walk
          narrows to name-index probes of the literal names. Fields:
          classifier, literal names, iterator variable, consequent body,
          original expression. *)

val iterator_names : string list
(** Names recognised as iterator operations. *)

val pp : Format.formatter -> t -> unit
(** Re-render an expression in OCL concrete syntax (fully parenthesised). *)

val to_string : t -> string

val fold_vars : (string -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over every free or bound variable occurrence, in syntax order. *)
