(* The OCL bytecode layer: a pure-data compilation of a planned AST into
   flat instruction blocks executed by a small stack machine.

   Shape of a program: [blocks] is an array of instruction arrays —
   block 0 is the entry, and every lazily-evaluated subtree (an [if]
   arm, the rhs of a short-circuiting connective, a collection-op
   argument, an iterator body, a probe's original form) gets its own
   block referenced by index. There are no intra-block jumps: a block
   runs start to end and leaves exactly one value on the shared operand
   stack. Variables are slot-addressed — every binder in the program
   gets a unique slot in one flat frame, assigned at compile time, so
   lookups are array reads instead of assoc-list walks. Constants live
   in a structurally-deduplicated pool.

   Compilation is a pure function of the AST (no timestamps, no
   hashing-order dependence): same tree, same program — the determinism
   property the QCheck test pins across domains. Free variables compile
   to [I_global] lookups against the caller's base environment, and the
   planner's probe nodes keep their dynamic guards: a probe whose
   classifier is *statically* shadowed compiles to its original form,
   one that is not carries both the probe and the original as blocks and
   decides per run ([Prim.no_planner] / base-env shadowing), exactly as
   the tree-walker does. *)

type instr =
  | I_const of int  (** push pool constant *)
  | I_self
  | I_load of int  (** push slot *)
  | I_store of int  (** pop into slot *)
  | I_global of string  (** base-environment lookup *)
  | I_collection of Ast.collection_kind * int  (** pop n items *)
  | I_if of int * int  (** then-block, else-block *)
  | I_and of int  (** rhs block, lazily executed *)
  | I_or of int
  | I_implies of int
  | I_binop of Ast.binop  (** strict: xor, =, <>, <, >, <=, >=, arith *)
  | I_not
  | I_neg
  | I_prop of string
  | I_call of string * int  (** name, arg count (args above receiver) *)
  | I_type_op of string * string  (** oclIsKindOf/oclIsTypeOf/oclAsType, type *)
  | I_all_instances of string
  | I_coll_op of string * int array  (** name, argument blocks *)
  | I_iter of string * int array * int  (** name, var slots, body block *)
  | I_iterate of int * int * int * int
      (** var slot, acc slot, init block, body block *)
  | I_probe_exists of string * int * int  (** classifier, rhs blk, orig blk *)
  | I_probe_select of string * int * int
  | I_probe_forall of string * string list * int * int * int
      (** classifier, guard names, var slot, body blk, orig blk *)

type program = {
  blocks : instr array array;  (** block 0 is the entry *)
  pool : Value.t array;
  nslots : int;
}

(* ---- opcode profile ------------------------------------------------------ *)

let op_names =
  [
    "const";
    "self";
    "load";
    "store";
    "global";
    "collection";
    "if";
    "and";
    "or";
    "implies";
    "binop";
    "not";
    "neg";
    "prop";
    "call";
    "type_op";
    "all_instances";
    "coll_op";
    "iter";
    "iterate";
    "probe_exists";
    "probe_select";
    "probe_forall";
  ]

let op_index = function
  | I_const _ -> 0
  | I_self -> 1
  | I_load _ -> 2
  | I_store _ -> 3
  | I_global _ -> 4
  | I_collection _ -> 5
  | I_if _ -> 6
  | I_and _ -> 7
  | I_or _ -> 8
  | I_implies _ -> 9
  | I_binop _ -> 10
  | I_not -> 11
  | I_neg -> 12
  | I_prop _ -> 13
  | I_call _ -> 14
  | I_type_op _ -> 15
  | I_all_instances _ -> 16
  | I_coll_op _ -> 17
  | I_iter _ -> 18
  | I_iterate _ -> 19
  | I_probe_exists _ -> 20
  | I_probe_select _ -> 21
  | I_probe_forall _ -> 22

let profile = Vm.Profile.create ~prefix:"ocl" op_names

(* ---- compiler ------------------------------------------------------------ *)

let compile ast =
  let pool = Vm.Pool.create () in
  let scope = Vm.Scope.create () in
  let blocks : (int, instr array) Hashtbl.t = Hashtbl.create 16 in
  let next_block = ref 0 in
  let alloc_block () =
    let id = !next_block in
    incr next_block;
    id
  in
  let define id rev_instrs = Hashtbl.replace blocks id (Array.of_list (List.rev rev_instrs)) in
  let const v acc = I_const (Vm.Pool.intern pool v) :: acc in
  let rec emit acc e =
    match e with
    | Ast.E_int n -> const (Value.V_int n) acc
    | Ast.E_real f -> const (Value.V_real f) acc
    | Ast.E_string s -> const (Value.V_string s) acc
    | Ast.E_bool b -> const (Value.V_bool b) acc
    | Ast.E_self -> I_self :: acc
    | Ast.E_var v -> (
        match Vm.Scope.lookup scope v with
        | Some slot -> I_load slot :: acc
        | None -> I_global v :: acc)
    | Ast.E_collection (kind, items) ->
        let acc = List.fold_left emit acc items in
        I_collection (kind, List.length items) :: acc
    | Ast.E_if (c, t, f) ->
        let acc = emit acc c in
        I_if (block t, block f) :: acc
    | Ast.E_let (v, bound, body) ->
        let acc = emit acc bound in
        let slot = Vm.Scope.bind scope v in
        let acc = emit (I_store slot :: acc) body in
        Vm.Scope.unbind scope 1;
        acc
    | Ast.E_not e' -> I_not :: emit acc e'
    | Ast.E_neg e' -> I_neg :: emit acc e'
    | Ast.E_binop (op, a, b) -> (
        let acc = emit acc a in
        match op with
        | Ast.Op_and -> I_and (block b) :: acc
        | Ast.Op_or -> I_or (block b) :: acc
        | Ast.Op_implies -> I_implies (block b) :: acc
        | _ -> I_binop op :: emit acc b)
    | Ast.E_prop (recv, name) -> I_prop name :: emit acc recv
    | Ast.E_call (Ast.E_var c, "allInstances", [])
      when Vm.Scope.lookup scope c = None ->
        (* same syntactic shape the walker special-cases; whether [c] is
           shadowed by the *base* environment is re-checked per run *)
        I_all_instances c :: acc
    | Ast.E_call (recv, (("oclIsKindOf" | "oclIsTypeOf" | "oclAsType") as name), [ Ast.E_var ty ])
      ->
        (* the type argument is syntactic, never evaluated *)
        I_type_op (name, ty) :: emit acc recv
    | Ast.E_call (recv, name, args) ->
        let acc = emit acc recv in
        let acc = List.fold_left emit acc args in
        I_call (name, List.length args) :: acc
    | Ast.E_coll_op (recv, name, args) ->
        let acc = emit acc recv in
        I_coll_op (name, Array.of_list (List.map block args)) :: acc
    | Ast.E_iter (recv, name, vars, body) ->
        let acc = emit acc recv in
        let slots = List.map (Vm.Scope.bind scope) vars in
        let body_block = block body in
        Vm.Scope.unbind scope (List.length vars);
        I_iter (name, Array.of_list slots, body_block) :: acc
    | Ast.E_iterate (recv, v, acc_var, init, body) ->
        let acc = emit acc recv in
        let init_block = block init in
        let acc_slot = Vm.Scope.bind scope acc_var in
        let v_slot = Vm.Scope.bind scope v in
        let body_block = block body in
        Vm.Scope.unbind scope 2;
        I_iterate (v_slot, acc_slot, init_block, body_block) :: acc
    | Ast.E_probe_exists_name (classifier, rhs, orig) ->
        if Vm.Scope.lookup scope classifier <> None then emit acc orig
        else I_probe_exists (classifier, block rhs, block orig) :: acc
    | Ast.E_probe_select_name (classifier, rhs, orig) ->
        if Vm.Scope.lookup scope classifier <> None then emit acc orig
        else I_probe_select (classifier, block rhs, block orig) :: acc
    | Ast.E_probe_forall_guard (classifier, names, var, body, orig) ->
        if Vm.Scope.lookup scope classifier <> None then emit acc orig
        else begin
          let orig_block = block orig in
          let var_slot = Vm.Scope.bind scope var in
          let body_block = block body in
          Vm.Scope.unbind scope 1;
          I_probe_forall (classifier, names, var_slot, body_block, orig_block)
          :: acc
        end
  and block e =
    let id = alloc_block () in
    define id (emit [] e);
    id
  in
  let entry = alloc_block () in
  define entry (emit [] ast);
  Obs.incr "vm.compile.ocl" [];
  {
    blocks = Array.init !next_block (fun i -> Hashtbl.find blocks i);
    pool = Vm.Pool.to_array pool;
    nslots = Vm.Scope.nslots scope;
  }

(* ---- executor ------------------------------------------------------------ *)

(* The operand stack lives as raw fields of the state rather than behind
   {!Vm.Stack}: without flambda a cross-module call per operand push/pop
   costs more than cheap opcodes like [I_load] execute, so the dispatch
   loop uses the [@inline] helpers below. Popped slots are not cleared —
   the stack is short-lived and bounded by expression depth, so the
   retained values are gone at the next push or the end of the run. *)
type state = {
  blocks : instr array array;
  pool : Value.t array;
  slots : Value.t array;
  mutable ops : Value.t array;
  mutable sp : int;
  base : Env.t;
  m : Mof.Model.t;
  prof : int array;
}

let grow st =
  let n = Array.length st.ops in
  let bigger = Array.make (2 * n) Value.V_undefined in
  Array.blit st.ops 0 bigger 0 n;
  st.ops <- bigger

let[@inline] push st v =
  if st.sp >= Array.length st.ops then grow st;
  Array.unsafe_set st.ops st.sp v;
  st.sp <- st.sp + 1

(* the safe read turns a stack-discipline compiler bug into
   [Invalid_argument] instead of undefined behaviour *)
let[@inline] pop st =
  let sp = st.sp - 1 in
  st.sp <- sp;
  st.ops.(sp)

(* pop [n] values into a list, restoring push order *)
let rec pop_list st n acc =
  if n = 0 then acc else pop_list st (n - 1) (pop st :: acc)
let rec exec st b =
  let code = st.blocks.(b) in
  for i = 0 to Array.length code - 1 do
    step st (Array.unsafe_get code i)
  done

and exec_value st b =
  exec st b;
  pop st

and step st instr =
  Vm.Profile.hit st.prof (op_index instr);
  match instr with
  | I_const i -> push st (Array.unsafe_get st.pool i)
  | I_self -> (
      match Env.self st.base with
      | Some v -> push st v
      | None -> Prim.error "self is not bound in this context")
  | I_load slot -> push st (Array.unsafe_get st.slots slot)
  | I_store slot -> Array.unsafe_set st.slots slot (pop st)
  | I_global v -> (
      match Env.lookup v st.base with
      | Some value -> push st value
      | None -> Prim.error "unknown variable %s" v)
  | I_collection (kind, n) -> (
      let values = pop_list st n [] in
      match kind with
      | Ast.Ck_set -> push st (Value.set values)
      | Ast.Ck_sequence -> push st (Value.seq values)
      | Ast.Ck_bag -> push st (Value.bag values))
  | I_if (tb, eb) ->
      let c = pop st in
      push st
        (Prim.if3 c
           ~then_:(fun () -> exec_value st tb)
           ~else_:(fun () -> exec_value st eb))
  | I_and b ->
      let va = pop st in
      push st (Prim.and_step va ~rhs:(fun () -> exec_value st b))
  | I_or b ->
      let va = pop st in
      push st (Prim.or_step va ~rhs:(fun () -> exec_value st b))
  | I_implies b ->
      let va = pop st in
      push st
        (Prim.implies_step va ~rhs:(fun () -> exec_value st b))
  | I_binop op ->
      let vb = pop st in
      let va = pop st in
      push st (Prim.strict_binop op va vb)
  | I_not -> push st (Prim.not3 (pop st))
  | I_neg -> push st (Prim.neg (pop st))
  | I_prop name ->
      push st (Prim.prop st.m (pop st) name)
  | I_call (name, n) ->
      let args = pop_list st n [] in
      let v = pop st in
      push st (Prim.call st.m v name args)
  | I_type_op (name, ty) ->
      push st (Prim.type_op st.m name ty (pop st))
  | I_all_instances c -> (
      (* the walker's runtime check: a base-env binding shadows the
         classifier and turns this back into an ordinary call *)
      match Env.lookup c st.base with
      | Some v -> push st (Prim.call st.m v "allInstances" [])
      | None -> push st (Prim.all_instances st.m c))
  | I_coll_op (name, arg_blocks) ->
      let v = pop st in
      push st
        (Prim.coll_op name v ~args:(fun () ->
             List.map (exec_value st) (Array.to_list arg_blocks)))
  | I_iter (name, var_slots, body) ->
      let v = pop st in
      let eval_one item =
        Array.unsafe_set st.slots (Array.unsafe_get var_slots 0) item;
        exec_value st body
      in
      let eval_tuple tuple =
        List.iteri (fun i item -> st.slots.(var_slots.(i)) <- item) tuple;
        exec_value st body
      in
      push st
        (Prim.iter name v ~nvars:(Array.length var_slots) ~eval_one ~eval_tuple)
  | I_iterate (v_slot, acc_slot, init_block, body_block) ->
      let recv = pop st in
      push st
        (Prim.iterate recv
           ~init:(fun () -> exec_value st init_block)
           ~step:(fun acc_value item ->
             st.slots.(acc_slot) <- acc_value;
             st.slots.(v_slot) <- item;
             exec_value st body_block))
  | I_probe_exists (classifier, rhs_b, orig_b) ->
      push st
        (if Prim.no_planner () || Env.lookup classifier st.base <> None then
           exec_value st orig_b
         else Prim.probe_exists st.m classifier ~rhs:(fun () -> exec_value st rhs_b))
  | I_probe_select (classifier, rhs_b, orig_b) ->
      push st
        (if Prim.no_planner () || Env.lookup classifier st.base <> None then
           exec_value st orig_b
         else Prim.probe_select st.m classifier ~rhs:(fun () -> exec_value st rhs_b))
  | I_probe_forall (classifier, names, var_slot, body_b, orig_b) ->
      push st
        (if Prim.no_planner () || Env.lookup classifier st.base <> None then
           exec_value st orig_b
         else
           Prim.probe_forall st.m classifier names ~body:(fun id ->
               st.slots.(var_slot) <- Value.V_elem id;
               exec_value st body_b))

let run m env (prog : program) =
  let st =
    {
      blocks = prog.blocks;
      pool = prog.pool;
      slots = Array.make (max prog.nslots 1) Value.V_undefined;
      ops = Array.make 16 Value.V_undefined;
      sp = 0;
      base = env;
      m;
      prof = Vm.Profile.shard profile;
    }
  in
  exec_value st 0
