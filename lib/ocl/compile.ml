(* The compiled-constraint cache: body string -> parsed + planned AST.

   Constraint bodies are tiny but checked constantly — the engine
   re-evaluates the same pre/postcondition strings on every step — so the
   parse and the planner rewrite are done once per distinct body and
   memoized. The cache is domain-local (Domain.DLS): the check driver runs
   oracles on parallel domains and a shared table would race; per-domain
   tables cost one cold parse per domain instead.

   Parse failures are cached too (as the raising exception), so an
   ill-formed body does not defeat the cache, and callers observe the
   exact exception an uncached parse would have raised. *)

type t = {
  src : string;
  ast : Ast.t;
  planned : Ast.t;
  probes : int;
  code : Bytecode.program Lazy.t;
}

(* Bytecode is compiled on first execution, not at parse time: the
   typecheck/diagnostic paths that only look at [ast]/[planned] never
   pay for it, and the lazy cell memoizes inside the cached handle so a
   body is compiled once per domain, like the parse itself. *)
let code t = Lazy.force t.code

let capacity = 1024

let table_key : (string, (t, exn) result) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let enabled_key = Domain.DLS.new_key (fun () -> ref true)

let cache_enabled () = !(Domain.DLS.get enabled_key)

let with_cache b f =
  let flag = Domain.DLS.get enabled_key in
  let prev = !flag in
  flag := b;
  Fun.protect ~finally:(fun () -> flag := prev) f

let compile_uncached src =
  match Parser.parse src with
  | ast ->
      let planned, probes = Plan.optimize_count ast in
      Ok { src; ast; planned; probes; code = lazy (Bytecode.compile planned) }
  | exception ((Parser.Parse_error _ | Lexer.Lexical_error _) as e) -> Error e

let compile_exn src =
  if not (cache_enabled ()) then
    match compile_uncached src with Ok c -> c | Error e -> raise e
  else
    let table = Domain.DLS.get table_key in
    match Hashtbl.find_opt table src with
    | Some r -> (
        Obs.incr "ocl.parse.hit" [];
        match r with Ok c -> c | Error e -> raise e)
    | None -> (
        Obs.incr "ocl.parse.miss" [];
        let r = compile_uncached src in
        (* bodies are a small working set in practice; on pathological
           churn, dropping the whole table keeps the memory bound without
           an eviction order to maintain *)
        if Hashtbl.length table >= capacity then Hashtbl.reset table;
        Hashtbl.add table src r;
        match r with Ok c -> c | Error e -> raise e)

(* Same message format as [Parser.parse_opt], so switching a caller from
   parse_opt to the cache changes no diagnostics. *)
let compile src =
  match compile_exn src with
  | c -> Ok c
  | exception Parser.Parse_error (msg, pos) ->
      Error (Printf.sprintf "parse error at offset %d: %s" pos msg)
  | exception Lexer.Lexical_error (msg, pos) ->
      Error (Printf.sprintf "lexical error at offset %d: %s" pos msg)
