(** Parse-once constraint compilation.

    A compiled handle carries the raw AST (what {!Typecheck} sees), the
    planner-rewritten AST (what {!Eval} executes) and the number of probe
    sites the planner found. Handles are memoized per distinct source
    string in a domain-local table, so repeated checks of the same
    constraint body — the engine's steady state — never re-lex. Counters:
    [ocl.parse.hit] / [ocl.parse.miss]. *)

type t = {
  src : string;  (** the body string the handle was compiled from *)
  ast : Ast.t;  (** parser output, untouched *)
  planned : Ast.t;  (** after {!Plan.optimize} *)
  probes : int;  (** probe sites the planner rewrote *)
  code : Bytecode.program Lazy.t;
      (** bytecode for [planned], compiled on first force — use {!code} *)
}

val code : t -> Bytecode.program
(** The handle's bytecode, compiling (once) on first use. *)

val compile : string -> (t, string) result
(** Memoized compile; error messages are identical to
    [Parser.parse_opt]'s. *)

val compile_exn : string -> t
(** Memoized compile raising the exact exception an uncached
    [Parser.parse] would have raised ({!Parser.Parse_error} or
    [Lexer.Lexical_error]). *)

val with_cache : bool -> (unit -> 'a) -> 'a
(** Scoped enable/disable of the memo table (ablation and cold-cache
    benchmarks); the flag is domain-local. *)

val cache_enabled : unit -> bool
