type t = {
  name : string;
  context : string option;
  body : string;
}

let make ?context ~name body = { name; context; body }

(* Scan [$key$] holes; '$' inside identifiers is produced by our own lexer
   only for substituted text, so a simple scan is enough. *)
let fold_holes f acc body =
  let len = String.length body in
  let rec walk acc i =
    if i >= len then acc
    else if body.[i] = '$' then (
      match String.index_from_opt body (i + 1) '$' with
      | None -> acc
      | Some j ->
          let key = String.sub body (i + 1) (j - i - 1) in
          walk (f key acc) (j + 1))
    else walk acc (i + 1)
  in
  walk acc 0

let holes c =
  let keys = List.rev (fold_holes (fun k acc -> k :: acc) [] c.body) in
  List.fold_left (fun acc k -> if List.mem k acc then acc else acc @ [ k ]) [] keys

let substitute bindings c =
  let buf = Buffer.create (String.length c.body) in
  let len = String.length c.body in
  let rec walk i =
    if i >= len then ()
    else if c.body.[i] = '$' then (
      match String.index_from_opt c.body (i + 1) '$' with
      | None -> Buffer.add_substring buf c.body i (len - i)
      | Some j -> (
          let key = String.sub c.body (i + 1) (j - i - 1) in
          match List.assoc_opt key bindings with
          | Some value ->
              Buffer.add_string buf value;
              walk (j + 1)
          | None ->
              Buffer.add_substring buf c.body i (j - i + 1);
              walk (j + 1)))
    else (
      Buffer.add_char buf c.body.[i];
      walk (i + 1))
  in
  walk 0;
  { c with body = Buffer.contents buf }

type outcome =
  | Holds
  | Fails of string list
  | Ill_formed of string

(* Outcome of evaluating a body; [eval_in] closes over how (compiled
   handle on the VM for [check], raw-AST tree walk for [check_naive]) so
   the two paths can only differ through the caches, planner and
   execution layer under test. *)
let outcome_of m c eval_in =
  match c.context with
      | None -> (
          match eval_in Env.empty with
          | Value.V_bool true -> Holds
          | Value.V_bool false | Value.V_undefined -> Fails []
          | v ->
              Ill_formed
                (Printf.sprintf "%s: constraint evaluated to non-Boolean %s"
                   c.name (Value.type_name v))
          | exception Eval.Eval_error msg ->
              Ill_formed (Printf.sprintf "%s: %s" c.name msg))
      | Some metaclass -> (
          match Meta.all_instances m metaclass with
          | None ->
              Ill_formed
                (Printf.sprintf "%s: unknown context metaclass %s" c.name
                   metaclass)
          | Some instances -> (
              let ids =
                match Value.items instances with Some xs -> xs | None -> []
              in
              let violating =
                List.filter_map
                  (fun v ->
                    match v with
                    | Value.V_elem id -> (
                        let env = Env.with_self v Env.empty in
                        match eval_in env with
                        | Value.V_bool true -> None
                        | _ -> Some (Mof.Query.qualified_name m id))
                    | _ -> None)
                  ids
              in
              match violating with
              | [] -> Holds
              | _ -> Fails violating)
          | exception Eval.Eval_error msg ->
              Ill_formed (Printf.sprintf "%s: %s" c.name msg))

(* The production path: memoized parse + planner rewrite, extents served
   from the watermark-validated cache. *)
let check m c =
  match Compile.compile c.body with
  | Error msg -> Ill_formed (Printf.sprintf "%s: %s" c.name msg)
  | Ok compiled -> outcome_of m c (fun env -> Eval.eval_parsed m env compiled)

(* The baseline the [ocl] differential oracle compares against: a fresh
   parse (no memo table), the raw unplanned AST, and extents recomputed
   from the model on every use. Everything the tentpole added is off. *)
let check_naive m c =
  Meta.with_extent_cache false @@ fun () ->
  match Parser.parse_opt c.body with
  | Error msg -> Ill_formed (Printf.sprintf "%s: %s" c.name msg)
  | Ok expr -> outcome_of m c (fun env -> Eval.eval m env expr)

let check m c =
  Obs.span ~cat:"ocl" "ocl.check"
    ~args:[ ("constraint", Obs.Event.V_string c.name) ]
  @@ fun () ->
  let outcome =
    try check m c with Eval.Eval_error msg ->
      Ill_formed (Printf.sprintf "%s: %s" c.name msg)
  in
  (match outcome with
  | Holds -> Obs.incr "ocl.check.holds" []
  | Fails _ -> Obs.incr "ocl.check.fails" []
  | Ill_formed _ -> Obs.incr "ocl.check.ill_formed" []);
  outcome

let holds m c = check m c = Holds

let pp_outcome ppf = function
  | Holds -> Format.pp_print_string ppf "holds"
  | Fails [] -> Format.pp_print_string ppf "fails"
  | Fails subjects ->
      Format.fprintf ppf "fails for %s" (String.concat ", " subjects)
  | Ill_formed msg -> Format.fprintf ppf "ill-formed: %s" msg
