(** Named OCL constraints over models, with the contextual-instance
    semantics pre/postconditions need and the [$param$] substitution that
    turns a *generic* condition into a *concrete* one (the paper: "a
    configuration of a generic transformation … also specializes these
    conditions"). *)

type t = {
  name : string;
  context : string option;
      (** when [Some mc], the body is evaluated once per instance of
          metaclass [mc] with [self] bound; the constraint holds when the
          body holds for every instance. When [None], the body is evaluated
          once with no [self]. *)
  body : string;  (** OCL source text, possibly containing [$param$] holes *)
}

val make : ?context:string -> name:string -> string -> t
(** [make ~name body] is a constraint. *)

val substitute : (string * string) list -> t -> t
(** [substitute bindings c] replaces every [$key$] hole in the body by its
    binding. Unbound holes are left in place (they surface as parse or
    evaluation errors, which is intentional: a generic constraint must be
    fully specialized before checking). *)

val holes : t -> string list
(** The [$param$] hole names appearing in the body, in order, without
    duplicates. *)

(** Outcome of checking one constraint. *)
type outcome =
  | Holds
  | Fails of string list
      (** qualified names (or ids) of the instances violating the body;
          empty for a context-free constraint that fails *)
  | Ill_formed of string  (** parse or evaluation error *)

val check : Mof.Model.t -> t -> outcome
(** Evaluates the constraint against a model, through the compiled-body
    memo table ({!Compile}), the planner-rewritten AST and the
    watermark-validated extent cache ({!Meta.all_instances}). *)

val check_naive : Mof.Model.t -> t -> outcome
(** The uncached baseline: re-parses the body, evaluates the raw AST (no
    planner probes) and recomputes every classifier extent. Must agree
    with {!check} on every model — the differential relation the [ocl]
    fuzz oracle enforces. *)

val holds : Mof.Model.t -> t -> bool
(** [holds m c] is [check m c = Holds]. *)

val pp_outcome : Format.formatter -> outcome -> unit
