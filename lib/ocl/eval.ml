(* The tree-walking evaluator. Since the bytecode layer landed this is
   the differential baseline (and the [Vm.with_vm false] ablation arm):
   all value-level semantics live in [Prim], shared with the bytecode
   executor, so the two paths can only differ in how operands are
   produced. Operand evaluation is pinned left-to-right for the same
   reason — the compiled code evaluates left to right, so the walker
   must too, down to which operand's error surfaces first. *)

exception Eval_error = Prim.Eval_error

let error = Prim.error
let no_planner = Prim.no_planner
let set_no_planner = Prim.set_no_planner
let with_no_planner = Prim.with_no_planner

let rec eval m env e =
  match e with
  | Ast.E_int n -> Value.V_int n
  | Ast.E_real f -> Value.V_real f
  | Ast.E_string s -> Value.V_string s
  | Ast.E_bool b -> Value.V_bool b
  | Ast.E_self -> (
      match Env.self env with
      | Some v -> v
      | None -> error "self is not bound in this context")
  | Ast.E_var v -> (
      match Env.lookup v env with
      | Some value -> value
      | None -> error "unknown variable %s" v)
  | Ast.E_collection (kind, items) ->
      let values = List.map (eval m env) items in
      (match kind with
      | Ast.Ck_set -> Value.set values
      | Ast.Ck_sequence -> Value.seq values
      | Ast.Ck_bag -> Value.bag values)
  | Ast.E_if (c, t, f) ->
      Prim.if3 (eval m env c)
        ~then_:(fun () -> eval m env t)
        ~else_:(fun () -> eval m env f)
  | Ast.E_let (v, bound, body) ->
      let value = eval m env bound in
      eval m (Env.bind v value env) body
  | Ast.E_not e' -> Prim.not3 (eval m env e')
  | Ast.E_neg e' -> Prim.neg (eval m env e')
  | Ast.E_binop (op, a, b) -> (
      match op with
      | Ast.Op_and -> Prim.and_step (eval m env a) ~rhs:(fun () -> eval m env b)
      | Ast.Op_or -> Prim.or_step (eval m env a) ~rhs:(fun () -> eval m env b)
      | Ast.Op_implies ->
          Prim.implies_step (eval m env a) ~rhs:(fun () -> eval m env b)
      | _ ->
          let va = eval m env a in
          let vb = eval m env b in
          Prim.strict_binop op va vb)
  | Ast.E_prop (recv, name) -> Prim.prop m (eval m env recv) name
  | Ast.E_call (recv, name, args) -> (
      (* Classifier.allInstances(): the receiver is a metaclass name, not
         a variable — resolve before ordinary evaluation. *)
      match (recv, name, args) with
      | Ast.E_var c, "allInstances", [] when Env.lookup c env = None ->
          Prim.all_instances m c
      | _, ("oclIsKindOf" | "oclIsTypeOf" | "oclAsType"), [ Ast.E_var ty ] ->
          Prim.type_op m name ty (eval m env recv)
      | _, _, _ ->
          let v = eval m env recv in
          let arg_values = List.map (eval m env) args in
          Prim.call m v name arg_values)
  | Ast.E_coll_op (recv, name, args) ->
      Prim.coll_op name (eval m env recv) ~args:(fun () ->
          List.map (eval m env) args)
  | Ast.E_iter (recv, name, vars, body) ->
      let v = eval m env recv in
      let eval_one item =
        match vars with
        | [ var ] -> eval m (Env.bind var item env) body
        | _ -> assert false (* Prim.iter only calls this when nvars = 1 *)
      in
      let eval_tuple tuple =
        let env =
          List.fold_left2
            (fun env var item -> Env.bind var item env)
            env vars tuple
        in
        eval m env body
      in
      Prim.iter name v ~nvars:(List.length vars) ~eval_one ~eval_tuple
  | Ast.E_probe_exists_name (classifier, rhs, orig) ->
      (* equivalence guards: the planner proved the shape at compile time,
         but only the evaluation environment knows whether the classifier
         name is shadowed *)
      if no_planner () || Env.lookup classifier env <> None then eval m env orig
      else Prim.probe_exists m classifier ~rhs:(fun () -> eval m env rhs)
  | Ast.E_probe_select_name (classifier, rhs, orig) ->
      if no_planner () || Env.lookup classifier env <> None then eval m env orig
      else Prim.probe_select m classifier ~rhs:(fun () -> eval m env rhs)
  | Ast.E_probe_forall_guard (classifier, names, var, body, orig) ->
      if no_planner () || Env.lookup classifier env <> None then eval m env orig
      else
        Prim.probe_forall m classifier names ~body:(fun id ->
            eval m (Env.bind var (Value.V_elem id) env) body)
  | Ast.E_iterate (recv, v, acc, init, body) ->
      Prim.iterate (eval m env recv)
        ~init:(fun () -> eval m env init)
        ~step:(fun acc_value item ->
          eval m (Env.bind v item (Env.bind acc acc_value env)) body)

(* Count top-level evaluations (one per constraint body / context instance),
   not recursive descents — the recursion above still calls the inner
   [eval] directly. *)
let eval m env e =
  Obs.incr "ocl.eval" [];
  eval m env e

(* The production entry point: compiled handles execute on the bytecode
   VM unless the [Vm] ablation flag routes them back through the walker.
   Both arms count one [ocl.eval] per top-level evaluation. *)
let eval_parsed m env (c : Compile.t) =
  if Vm.enabled () then begin
    Obs.incr "ocl.eval" [];
    Bytecode.run m env (Compile.code c)
  end
  else eval m env c.Compile.planned

(* Through the compile cache: repeated sources hit the memoized (parsed,
   planned, compiled) handle instead of re-lexing; parse failures
   re-raise the exact exception an uncached [Parser.parse] would have. *)
let eval_string m env src = eval_parsed m env (Compile.compile_exn src)

let holds m env src =
  match eval_string m env src with Value.V_bool true -> true | _ -> false
