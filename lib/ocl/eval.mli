(** Evaluator for the OCL subset over a {!Mof.Model}.

    Semantics follow OCL 1.x where the subset overlaps:
    - [Integer] conforms to [Real]; mixed arithmetic promotes.
    - Boolean connectives use three-valued logic: [true or undefined] is
      [true], [false and undefined] is [false], [false implies x] is [true];
      otherwise undefined operands yield undefined.
    - Property navigation on a collection is the implicit-collect shorthand
      and flattens one level.
    - Division by zero, out-of-range [at], and navigation on undefined yield
      [V_undefined] rather than raising.

    Genuinely ill-formed programs — unknown variables, unknown properties,
    wrongly-typed operator applications — raise {!Eval_error} so that broken
    constraints fail loudly instead of silently evaluating to undefined. *)

exception Eval_error of string

val eval : Mof.Model.t -> Env.t -> Ast.t -> Value.t
(** [eval m env e] evaluates [e] against model [m].
    @raise Eval_error as described above. *)

val eval_parsed : Mof.Model.t -> Env.t -> Compile.t -> Value.t
(** Evaluate a compiled handle (its planned AST); what every caller with a
    reusable constraint should hold instead of a source string. *)

val eval_string : Mof.Model.t -> Env.t -> string -> Value.t
(** Compile (memoized — no re-lexing of repeated sources) then evaluate.
    @raise Parser.Parse_error / {!Eval_error}. *)

val no_planner : unit -> bool
(** Whether the planner ablation is active on this domain. *)

val set_no_planner : bool -> unit

val with_no_planner : (unit -> 'a) -> 'a
(** Runs [f] with planner probes disabled (probe nodes evaluate their
    embedded original extent folds) — the ablation switch mirroring
    [Engine.full_checks]; domain-local. *)

val holds : Mof.Model.t -> Env.t -> string -> bool
(** [holds m env src] parses and evaluates [src] and is [true] exactly when
    the result is [V_bool true]. Undefined counts as not holding. *)
