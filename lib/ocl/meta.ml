let elem_seq ids = Value.seq (List.map (fun id -> Value.V_elem id) ids)
let elem_set ids = Value.set (List.map (fun id -> Value.V_elem id) ids)
let string_set ss = Value.set (List.map Value.of_string ss)

let datatype_value m dt = Value.V_string (Format.asprintf "%a" (Mof.Pp.datatype m) dt)

let common_property m (e : Mof.Element.t) = function
  | "name" -> Some (Value.V_string e.Mof.Element.name)
  | "qualifiedName" ->
      Some (Value.V_string (Mof.Query.qualified_name m e.Mof.Element.id))
  | "metaclass" -> Some (Value.V_string (Mof.Element.metaclass e))
  | "stereotypes" -> Some (string_set e.Mof.Element.stereotypes)
  | "tagKeys" -> Some (string_set (List.map fst e.Mof.Element.tags))
  | "owner" ->
      Some
        (match e.Mof.Element.owner with
        | Some o -> Value.V_elem o
        | None -> Value.V_undefined)
  | _ -> None

let kind_property m (e : Mof.Element.t) name =
  let id = e.Mof.Element.id in
  match (e.Mof.Element.kind, name) with
  | Mof.Kind.Package { owned }, "ownedElements" -> Some (elem_seq owned)
  | Mof.Kind.Class c, "attributes" -> Some (elem_seq c.attributes)
  | Mof.Kind.Class c, "operations" -> Some (elem_seq c.operations)
  | Mof.Kind.Class _, "allOperations" ->
      let own =
        List.map (fun o -> o.Mof.Element.id) (Mof.Query.operations_of m id)
      in
      let inherited =
        List.concat_map
          (fun s ->
            List.map (fun o -> o.Mof.Element.id) (Mof.Query.operations_of m s))
          (Mof.Query.supers_transitive m id)
      in
      Some (elem_seq (own @ inherited))
  | Mof.Kind.Class c, "supers" -> Some (elem_set c.supers)
  | Mof.Kind.Class _, "allSupers" ->
      Some (elem_set (Mof.Query.supers_transitive m id))
  | Mof.Kind.Class c, "interfaces" -> Some (elem_set c.realizes)
  | Mof.Kind.Class c, "isAbstract" -> Some (Value.V_bool c.is_abstract)
  | Mof.Kind.Interface { operations }, "operations" -> Some (elem_seq operations)
  | Mof.Kind.Interface _, "realizers" ->
      Some
        (elem_set
           (List.map (fun r -> r.Mof.Element.id) (Mof.Query.realizers_of m id)))
  | Mof.Kind.Attribute a, "type" -> Some (datatype_value m a.attr_type)
  | Mof.Kind.Attribute a, "visibility" ->
      Some (Value.V_string (Mof.Kind.visibility_to_string a.attr_visibility))
  | Mof.Kind.Attribute a, "lower" -> Some (Value.V_int a.attr_mult.Mof.Kind.lower)
  | Mof.Kind.Attribute a, "upper" ->
      Some
        (Value.V_int
           (match a.attr_mult.Mof.Kind.upper with None -> -1 | Some u -> u))
  | Mof.Kind.Attribute a, "isDerived" -> Some (Value.V_bool a.is_derived)
  | Mof.Kind.Attribute a, "isStatic" -> Some (Value.V_bool a.is_static)
  | Mof.Kind.Attribute a, "initial" ->
      Some
        (match a.initial_value with
        | Some v -> Value.V_string v
        | None -> Value.V_undefined)
  | Mof.Kind.Operation _, "parameters" ->
      Some
        (elem_seq
           (List.map (fun p -> p.Mof.Element.id) (Mof.Query.parameters_of m id)))
  | Mof.Kind.Operation o, "visibility" ->
      Some (Value.V_string (Mof.Kind.visibility_to_string o.op_visibility))
  | Mof.Kind.Operation o, "isQuery" -> Some (Value.V_bool o.is_query)
  | Mof.Kind.Operation o, "isAbstract" -> Some (Value.V_bool o.is_abstract_op)
  | Mof.Kind.Operation o, "isStatic" -> Some (Value.V_bool o.is_static_op)
  | Mof.Kind.Operation _, "resultType" ->
      Some (datatype_value m (Mof.Query.result_of m id))
  | Mof.Kind.Operation _, "class" ->
      Some
        (match Mof.Query.containing_class m id with
        | Some c -> Value.V_elem c
        | None -> Value.V_undefined)
  | Mof.Kind.Parameter p, "type" -> Some (datatype_value m p.param_type)
  | Mof.Kind.Parameter p, "direction" ->
      Some (Value.V_string (Mof.Kind.direction_to_string p.direction))
  | Mof.Kind.Association { ends }, "endTypes" ->
      Some (elem_seq (List.map (fun (en : Mof.Kind.assoc_end) -> en.end_type) ends))
  | Mof.Kind.Association { ends }, "endNames" ->
      Some
        (Value.seq
           (List.map
              (fun (en : Mof.Kind.assoc_end) -> Value.V_string en.end_name)
              ends))
  | Mof.Kind.Generalization { child; _ }, "child" -> Some (Value.V_elem child)
  | Mof.Kind.Generalization { parent; _ }, "parent" -> Some (Value.V_elem parent)
  | Mof.Kind.Dependency { client; _ }, "client" -> Some (Value.V_elem client)
  | Mof.Kind.Dependency { supplier; _ }, "supplier" -> Some (Value.V_elem supplier)
  | Mof.Kind.Constraint_ { body; _ }, "body" -> Some (Value.V_string body)
  | Mof.Kind.Constraint_ { language; _ }, "language" ->
      Some (Value.V_string language)
  | Mof.Kind.Constraint_ { constrained; _ }, "constrained" ->
      Some (elem_seq constrained)
  | Mof.Kind.Enumeration { literals }, "literals" ->
      Some (Value.seq (List.map Value.of_string literals))
  | _, _ -> None

let property m id name =
  match Mof.Model.find m id with
  | None -> Some Value.V_undefined
  | Some e -> (
      match common_property m e name with
      | Some v -> Some v
      | None -> kind_property m e name)

let operation m id name args =
  match (name, args) with
  | "hasStereotype", [ Value.V_string s ] -> (
      match Mof.Model.find m id with
      | Some e -> Some (Value.V_bool (Mof.Element.has_stereotype s e))
      | None -> Some Value.V_undefined)
  | "hasTag", [ Value.V_string k ] -> (
      match Mof.Model.find m id with
      | Some e -> Some (Value.V_bool (Mof.Element.tag k e <> None))
      | None -> Some Value.V_undefined)
  | "tag", [ Value.V_string k ] -> (
      match Mof.Model.find m id with
      | Some e ->
          Some
            (match Mof.Element.tag k e with
            | Some v -> Value.V_string v
            | None -> Value.V_undefined)
      | None -> Some Value.V_undefined)
  | _, _ -> None

let is_metaclass name =
  String.equal name "Element" || List.mem name Mof.Kind.all_names

(* Only reached for known metaclass names. *)
let compute_extent m name =
  if String.equal name "Element" then
    elem_set (List.map (fun e -> e.Mof.Element.id) (Mof.Model.elements m))
  else
    (* the kind index yields the ids directly, in the same ascending order
       the full scan produced — no need to materialize the elements *)
    elem_set (Mof.Id.Set.elements (Mof.Model.by_kind m name))

(* ---- extent cache -------------------------------------------------------

   Materialized extents keyed by (model state, classifier name). Validity
   is decided by [Mof.Model.same_state] — physical identity of the journal
   position — so a cached set can never outlive a mutation: undo/redo,
   repository checkout and mid-rewrite edits all move the journal head and
   miss. A handful of recent model states are kept (the engine alternates
   between the pre-rewrite and post-rewrite model within one step); the
   whole cache is domain-local, parallel oracle domains each warm their
   own. *)

type extent_slot = {
  wm : Mof.Model.watermark;
  mutable extents : (string * Value.t) list;
}

let max_slots = 4

let slots_key : extent_slot list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let cache_enabled_key = Domain.DLS.new_key (fun () -> ref true)

(* Test hook: freeze invalidation so the most recent slot answers for every
   model — the deliberately broken cache the ocl oracle must catch. *)
let stale_key = Domain.DLS.new_key (fun () -> ref false)

let extent_cache_enabled () = !(Domain.DLS.get cache_enabled_key)

let with_extent_cache b f =
  let flag = Domain.DLS.get cache_enabled_key in
  let prev = !flag in
  flag := b;
  Fun.protect ~finally:(fun () -> flag := prev) f

let debug_serve_stale b = Domain.DLS.get stale_key := b

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let cached_extent m name =
  let slots = Domain.DLS.get slots_key in
  let entry =
    if !(Domain.DLS.get stale_key) then
      match !slots with e :: _ -> Some e | [] -> None
    else List.find_opt (fun e -> Mof.Model.same_state m e.wm) !slots
  in
  match entry with
  | Some e -> (
      slots := e :: List.filter (fun x -> x != e) !slots;
      match List.assoc_opt name e.extents with
      | Some v ->
          Obs.incr "ocl.extent.hit" [];
          v
      | None ->
          Obs.incr "ocl.extent.miss" [];
          let v = compute_extent m name in
          e.extents <- (name, v) :: e.extents;
          v)
  | None ->
      Obs.incr "ocl.extent.miss" [];
      let v = compute_extent m name in
      let e = { wm = Mof.Model.watermark m; extents = [ (name, v) ] } in
      slots := e :: take (max_slots - 1) !slots;
      v

let all_instances m name =
  if not (is_metaclass name) then None
  else if extent_cache_enabled () then Some (cached_extent m name)
  else Some (compute_extent m name)

let common_names = [ "name"; "qualifiedName"; "metaclass"; "stereotypes"; "tagKeys"; "owner" ]

let property_names metaclass =
  let specific =
    match metaclass with
    | "Package" -> [ "ownedElements" ]
    | "Class" ->
        [
          "attributes";
          "operations";
          "allOperations";
          "supers";
          "allSupers";
          "interfaces";
          "isAbstract";
        ]
    | "Interface" -> [ "operations"; "realizers" ]
    | "Attribute" ->
        [ "type"; "visibility"; "lower"; "upper"; "isDerived"; "isStatic"; "initial" ]
    | "Operation" ->
        [
          "parameters";
          "visibility";
          "isQuery";
          "isAbstract";
          "isStatic";
          "resultType";
          "class";
        ]
    | "Parameter" -> [ "type"; "direction" ]
    | "Association" -> [ "endTypes"; "endNames" ]
    | "Generalization" -> [ "child"; "parent" ]
    | "Dependency" -> [ "client"; "supplier" ]
    | "Constraint" -> [ "body"; "language"; "constrained" ]
    | "Enumeration" -> [ "literals" ]
    | _ -> []
  in
  common_names @ specific
