(** Reflection of the {!Mof} metamodel into the OCL object space.

    OCL pre/postconditions of model transformations constrain *models*, so
    the evaluator's object population is the set of model elements. This
    module defines the meta-properties each metaclass exposes (what
    [self.name], [self.attributes], … mean) and the classifier extents
    behind [Class.allInstances()]. *)

val property : Mof.Model.t -> Mof.Id.t -> string -> Value.t option
(** [property m id name] is the value of meta-property [name] on element
    [id], or [None] when the metaclass has no such property.

    Properties common to all metaclasses: [name], [qualifiedName],
    [metaclass], [stereotypes] (Set(String)), [tagKeys] (Set(String)),
    [owner] (Element or undefined).

    Per metaclass:
    - Package: [ownedElements]
    - Class: [attributes], [operations], [allOperations], [supers],
      [allSupers], [interfaces], [isAbstract]
    - Interface: [operations], [realizers]
    - Attribute: [type], [visibility], [lower], [upper] (-1 encodes "*"),
      [isDerived], [isStatic], [initial]
    - Operation: [parameters], [visibility], [isQuery], [isAbstract],
      [isStatic], [resultType], [class]
    - Parameter: [type], [direction]
    - Association: [endTypes], [endNames]
    - Generalization: [child], [parent]
    - Dependency: [client], [supplier]
    - Constraint: [body], [language], [constrained]
    - Enumeration: [literals] (Sequence(String)) *)

val operation :
  Mof.Model.t -> Mof.Id.t -> string -> Value.t list -> Value.t option
(** Meta-operations on elements: [hasStereotype(s)], [hasTag(k)], [tag(k)]
    (String or undefined). [None] when the name/arity is not a
    meta-operation. *)

val all_instances : Mof.Model.t -> string -> Value.t option
(** [all_instances m "Class"] is the Set of all class elements; ["Element"]
    yields every element. [None] for unknown classifier names.

    Extents are served from a domain-local cache keyed by (model journal
    watermark, classifier name) and invalidated by
    {!Mof.Model.same_state}: any mutation — including undo/redo and
    repository checkout, which swap whole model values — moves the journal
    head and forces recomputation. Counters: [ocl.extent.hit] /
    [ocl.extent.miss]. *)

val with_extent_cache : bool -> (unit -> 'a) -> 'a
(** Scoped enable/disable of the extent cache (domain-local); the naive
    side of the differential oracle and the cold-cache bench ablation run
    under [with_extent_cache false]. *)

val extent_cache_enabled : unit -> bool

val debug_serve_stale : bool -> unit
(** Test hook: when set, the cache stops validating watermarks and serves
    the most recently filled state to every caller — a deliberately broken
    invalidation that the [ocl] differential oracle must detect. Never use
    outside tests. *)

val is_metaclass : string -> bool
(** Whether a name denotes a metaclass usable in [allInstances] and
    [oclIsKindOf]. ["Element"] is included. *)

val property_names : string -> string list
(** The meta-properties available on a metaclass (including the common
    ones); used by the typechecker. *)
