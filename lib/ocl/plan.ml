(* Pattern-directed query planning over the parsed AST.

   [optimize] walks an expression bottom-up and rewrites the three shapes
   that dominate condition checking —

     K.allInstances()->exists(x | x.name = e)
     K.allInstances()->select(x | x.name = e)
     K.allInstances()->forAll(x | LIT->includes(x.name) implies body)

   — into probe nodes that the evaluator answers from the model's name
   index instead of folding over the classifier extent. A rewrite is only
   taken when it is observationally equivalent to the fold:

   - [K] must be a known metaclass (the parser cannot know, but the planner
     can: unknown classifiers must keep raising through the generic path);
   - one side of the equality must be exactly [x.name] and the other side
     must not mention the iterator variable (else it would be re-evaluated
     under the binding);
   - for the guarded forAll, [LIT] must be a literal collection of string
     constants: the evaluator's [implies] short-circuits on a false
     antecedent, so under the fold the consequent is evaluated exactly on
     the elements whose name occurs in [LIT] — the very set a name-index
     probe returns — and evaluating a string-literal collection is total
     and pure, so skipping its per-element re-evaluation is unobservable;
   - the original expression is kept inside the probe node, so the
     evaluator can fall back to it when [K] turns out to be shadowed by an
     environment binding at evaluation time, and printers/var-folds see the
     surface syntax. *)

let mentions var e =
  Ast.fold_vars (fun v found -> found || String.equal v var) e false

let name_of it = function
  | Ast.E_prop (Ast.E_var v, "name") -> String.equal v it
  | _ -> false

(* The candidate node has already had its children optimized; [node] is
   both the pattern under test and the fallback we embed. *)
let probe_of node =
  match node with
  | Ast.E_iter
      ( Ast.E_call (Ast.E_var k, "allInstances", []),
        (("exists" | "select") as it),
        [ x ],
        Ast.E_binop (Ast.Op_eq, a, b) )
    when Meta.is_metaclass k ->
      let rhs =
        if name_of x a && not (mentions x b) then Some b
        else if name_of x b && not (mentions x a) then Some a
        else None
      in
      Option.map
        (fun rhs ->
          if String.equal it "exists" then Ast.E_probe_exists_name (k, rhs, node)
          else Ast.E_probe_select_name (k, rhs, node))
        rhs
  | Ast.E_iter
      ( Ast.E_call (Ast.E_var k, "allInstances", []),
        "forAll",
        [ x ],
        Ast.E_binop
          ( Ast.Op_implies,
            Ast.E_coll_op (Ast.E_collection (_, lits), "includes", [ a ]),
            body ) )
    when Meta.is_metaclass k && name_of x a ->
      let names =
        List.fold_left
          (fun acc lit ->
            match (acc, lit) with
            | Some acc, Ast.E_string s -> Some (s :: acc)
            | _, _ -> None)
          (Some []) lits
      in
      Option.map
        (fun names ->
          Ast.E_probe_forall_guard (k, List.rev names, x, body, node))
        names
  | _ -> None

let optimize_count e =
  let count = ref 0 in
  let rec walk e =
    let e' =
      match e with
      | Ast.E_int _ | Ast.E_real _ | Ast.E_string _ | Ast.E_bool _
      | Ast.E_self | Ast.E_var _ ->
          e
      | Ast.E_collection (ck, items) ->
          Ast.E_collection (ck, List.map walk items)
      | Ast.E_if (c, t, f) -> Ast.E_if (walk c, walk t, walk f)
      | Ast.E_let (v, bound, body) -> Ast.E_let (v, walk bound, walk body)
      | Ast.E_binop (op, a, b) -> Ast.E_binop (op, walk a, walk b)
      | Ast.E_not e' -> Ast.E_not (walk e')
      | Ast.E_neg e' -> Ast.E_neg (walk e')
      | Ast.E_prop (e', n) -> Ast.E_prop (walk e', n)
      | Ast.E_call (e', n, args) -> Ast.E_call (walk e', n, List.map walk args)
      | Ast.E_coll_op (e', n, args) ->
          Ast.E_coll_op (walk e', n, List.map walk args)
      | Ast.E_iter (e', n, vars, body) ->
          Ast.E_iter (walk e', n, vars, walk body)
      | Ast.E_iterate (e', v, acc, init, body) ->
          Ast.E_iterate (walk e', v, acc, walk init, walk body)
      | Ast.E_probe_exists_name _ | Ast.E_probe_select_name _
      | Ast.E_probe_forall_guard _ ->
          (* never in parser output; idempotent on replanning *)
          e
    in
    match probe_of e' with
    | Some probe ->
        incr count;
        probe
    | None -> e'
  in
  let planned = walk e in
  (planned, !count)

let optimize e = fst (optimize_count e)
