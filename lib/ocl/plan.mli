(** Pattern-directed query planner.

    Rewrites [K.allInstances()->exists(x | x.name = e)] and
    [K.allInstances()->select(x | x.name = e)] (either orientation of the
    equality) into name-index probe nodes ({!Ast.E_probe_exists_name},
    {!Ast.E_probe_select_name}) when the rewrite is observationally
    equivalent to the extent fold: [K] is a known metaclass and [e] does
    not mention the iterator variable. Everything else is rebuilt
    unchanged. The original subtree is embedded in the probe node, so the
    evaluator falls back to it when [K] is shadowed by a binding, and
    printing/variable-folding still see the surface syntax.

    The evaluator honours {!Eval.with_no_planner}, which makes probe nodes
    behave exactly like their embedded originals — the ablation switch
    mirroring [Engine.full_checks]. *)

val optimize : Ast.t -> Ast.t

val optimize_count : Ast.t -> Ast.t * int
(** Also counts rewritten sites (for telemetry and tests). *)
