(* Shared runtime semantics for the two OCL execution paths.

   Everything here is the value-level meaning of an operator *after* its
   operands have been produced — conversions, three-valued logic steps,
   property/operation dispatch, collection operations, iterator and probe
   semantics. The tree-walking evaluator (eval.ml) and the bytecode
   executor (bytecode.ml) both delegate to these functions, so the two
   paths are equivalent by construction: the only thing either adds is
   how operands are produced (environment walks vs. slots and blocks).

   Laziness is part of the contract: operands that the walker does not
   evaluate on some path (the rhs of a short-circuiting [and], collection
   -> op arguments after an undefined receiver, iterator bodies over an
   empty source) arrive here as thunks and are forced exactly where the
   walker would have recursed. *)

exception Eval_error of string

let error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

(* Three-valued view of a boolean operand. *)
let as_bool3 what = function
  | Value.V_bool b -> Some b
  | Value.V_undefined -> None
  | v -> error "%s expects a Boolean, found %s" what (Value.type_name v)

let as_int what = function
  | Value.V_int n -> n
  | v -> error "%s expects an Integer, found %s" what (Value.type_name v)

let as_string what = function
  | Value.V_string s -> s
  | v -> error "%s expects a String, found %s" what (Value.type_name v)

let as_items what = function
  | Value.V_set xs | Value.V_seq xs | Value.V_bag xs -> xs
  | v -> error "%s expects a collection, found %s" what (Value.type_name v)

(* Rebuild a collection of the same kind as [like] from [items]. *)
let rebuild like items =
  match like with
  | Value.V_set _ -> Value.set items
  | Value.V_seq _ -> Value.seq items
  | Value.V_bag _ -> Value.bag items
  | _ -> assert false

let flatten_one items =
  List.concat_map
    (fun v -> match Value.items v with Some xs -> xs | None -> [ v ])
    items

let numeric2 what a b ~int ~real =
  match (a, b) with
  | Value.V_int x, Value.V_int y -> int x y
  | Value.V_int x, Value.V_real y -> real (float_of_int x) y
  | Value.V_real x, Value.V_int y -> real x (float_of_int y)
  | Value.V_real x, Value.V_real y -> real x y
  | Value.V_undefined, _ | _, Value.V_undefined -> Value.V_undefined
  | _, _ ->
      error "%s expects numeric operands, found %s and %s" what
        (Value.type_name a) (Value.type_name b)

(* Ablation switch for the query planner (domain-local): when set, probe
   nodes evaluate their embedded original expression, reproducing the
   pre-planner extent folds exactly — the OCL analogue of
   [Engine.full_checks]. *)
let no_planner_key = Domain.DLS.new_key (fun () -> ref false)
let no_planner () = !(Domain.DLS.get no_planner_key)
let set_no_planner b = Domain.DLS.get no_planner_key := b

let with_no_planner f =
  let flag = Domain.DLS.get no_planner_key in
  let prev = !flag in
  flag := true;
  Fun.protect ~finally:(fun () -> flag := prev) f

(* Matching ids for a name probe: the name index, restricted to the
   classifier's kind index. Both are the same indexes the extent fold
   would have consulted element by element. *)
let probe_ids m classifier s =
  let named = Mof.Model.by_name m s in
  if String.equal classifier "Element" then named
  else Mof.Id.Set.inter named (Mof.Model.by_kind m classifier)

let probe_extent_is_empty m classifier =
  if String.equal classifier "Element" then Mof.Model.size m = 0
  else Mof.Id.Set.is_empty (Mof.Model.by_kind m classifier)

let value_conforms_to v ~exact name =
  match v with
  | Value.V_elem _ -> false (* handled by the caller with metaclass data *)
  | Value.V_int _ ->
      String.equal name "Integer" || ((not exact) && String.equal name "Real")
  | _ -> String.equal (Value.type_name v) name

(* ---- strict operators --------------------------------------------------- *)

let not3 v =
  match as_bool3 "not" v with
  | Some b -> Value.V_bool (not b)
  | None -> Value.V_undefined

let neg = function
  | Value.V_int n -> Value.V_int (-n)
  | Value.V_real f -> Value.V_real (-.f)
  | Value.V_undefined -> Value.V_undefined
  | v -> error "unary minus expects a number, found %s" (Value.type_name v)

let if3 v ~then_ ~else_ =
  match v with
  | Value.V_bool true -> then_ ()
  | Value.V_bool false -> else_ ()
  | Value.V_undefined -> Value.V_undefined
  | v -> error "if condition must be Boolean, found %s" (Value.type_name v)

(* Short-circuit steps: the lhs has been evaluated, the rhs has not. Each
   forces [rhs] exactly when the walker would have recursed into it. *)
let and_step va ~rhs =
  match as_bool3 "and" va with
  | Some false -> Value.V_bool false
  | ta -> (
      match (ta, as_bool3 "and" (rhs ())) with
      | _, Some false -> Value.V_bool false
      | Some true, Some true -> Value.V_bool true
      | _, _ -> Value.V_undefined)

let or_step va ~rhs =
  match as_bool3 "or" va with
  | Some true -> Value.V_bool true
  | ta -> (
      match (ta, as_bool3 "or" (rhs ())) with
      | _, Some true -> Value.V_bool true
      | Some false, Some false -> Value.V_bool false
      | _, _ -> Value.V_undefined)

let implies_step va ~rhs =
  match as_bool3 "implies" va with
  | Some false -> Value.V_bool true
  | ta -> (
      match (ta, as_bool3 "implies" (rhs ())) with
      | _, Some true -> Value.V_bool true
      | Some true, Some false -> Value.V_bool false
      | _, _ -> Value.V_undefined)

(* Fully strict binops — both operands already evaluated, left to right.
   [Op_and]/[Op_or]/[Op_implies] never reach here (they short-circuit
   through the steps above). *)
let strict_binop op va vb =
  match op with
  | Ast.Op_xor -> (
      let ta = as_bool3 "xor" va in
      let tb = as_bool3 "xor" vb in
      match (ta, tb) with
      | Some x, Some y -> Value.V_bool (x <> y)
      | _, _ -> Value.V_undefined)
  | Ast.Op_eq -> Value.V_bool (Value.equal va vb)
  | Ast.Op_neq -> Value.V_bool (not (Value.equal va vb))
  | Ast.Op_lt | Ast.Op_gt | Ast.Op_le | Ast.Op_ge -> (
      match (va, vb) with
      | Value.V_undefined, _ | _, Value.V_undefined -> Value.V_undefined
      | Value.V_string x, Value.V_string y ->
          let c = String.compare x y in
          Value.V_bool
            (match op with
            | Ast.Op_lt -> c < 0
            | Ast.Op_gt -> c > 0
            | Ast.Op_le -> c <= 0
            | Ast.Op_ge -> c >= 0
            | _ -> assert false)
      | _, _ ->
          let cmp c =
            match op with
            | Ast.Op_lt -> c < 0
            | Ast.Op_gt -> c > 0
            | Ast.Op_le -> c <= 0
            | Ast.Op_ge -> c >= 0
            | _ -> assert false
          in
          numeric2
            (Ast.binop_name op)
            va vb
            ~int:(fun x y -> Value.V_bool (cmp (Int.compare x y)))
            ~real:(fun x y -> Value.V_bool (cmp (Float.compare x y))))
  | Ast.Op_add -> (
      match (va, vb) with
      | Value.V_string x, Value.V_string y -> Value.V_string (x ^ y)
      | _, _ ->
          numeric2 "+" va vb
            ~int:(fun x y -> Value.V_int (x + y))
            ~real:(fun x y -> Value.V_real (x +. y)))
  | Ast.Op_sub ->
      numeric2 "-" va vb
        ~int:(fun x y -> Value.V_int (x - y))
        ~real:(fun x y -> Value.V_real (x -. y))
  | Ast.Op_mul ->
      numeric2 "*" va vb
        ~int:(fun x y -> Value.V_int (x * y))
        ~real:(fun x y -> Value.V_real (x *. y))
  | Ast.Op_div ->
      numeric2 "/" va vb
        ~int:(fun x y ->
          if y = 0 then Value.V_undefined
          else Value.V_real (float_of_int x /. float_of_int y))
        ~real:(fun x y ->
          if y = 0.0 then Value.V_undefined else Value.V_real (x /. y))
  | Ast.Op_idiv ->
      numeric2 "div" va vb
        ~int:(fun x y ->
          if y = 0 then Value.V_undefined else Value.V_int (x / y))
        ~real:(fun _ _ -> error "div expects Integer operands")
  | Ast.Op_mod ->
      numeric2 "mod" va vb
        ~int:(fun x y ->
          if y = 0 then Value.V_undefined else Value.V_int (x mod y))
        ~real:(fun _ _ -> error "mod expects Integer operands")
  | Ast.Op_and | Ast.Op_or | Ast.Op_implies -> assert false

(* ---- property and operation dispatch ------------------------------------ *)

let prop_on_value m v name =
  match v with
  | Value.V_elem id -> (
      match Meta.property m id name with
      | Some value -> value
      | None -> error "element has no property %s" name)
  | Value.V_undefined -> Value.V_undefined
  | v -> error "%s has no property %s" (Value.type_name v) name

let prop m v name =
  match v with
  | Value.V_undefined -> Value.V_undefined
  | Value.V_elem id -> (
      match Meta.property m id name with
      | Some v -> v
      | None ->
          let metaclass =
            match Mof.Model.find m id with
            | Some e -> Mof.Element.metaclass e
            | None -> "Element"
          in
          error "metaclass %s has no property %s" metaclass name)
  | Value.V_set xs | Value.V_bag xs ->
      (* implicit collect, flattening one level *)
      Value.bag (flatten_one (List.map (fun v -> prop_on_value m v name) xs))
  | Value.V_seq xs ->
      Value.seq (flatten_one (List.map (fun v -> prop_on_value m v name) xs))
  | v -> error "%s has no property %s" (Value.type_name v) name

let elem_conforms m id ~exact name =
  if String.equal name "Element" then not exact
  else
    match Mof.Model.find m id with
    | Some e -> String.equal (Mof.Element.metaclass e) name
    | None -> false

let string_call s name args =
  match (name, args) with
  | "size", [] -> Value.V_int (String.length s)
  | "concat", [ other ] -> Value.V_string (s ^ as_string "concat" other)
  | "toUpper", [] -> Value.V_string (String.uppercase_ascii s)
  | "toLower", [] -> Value.V_string (String.lowercase_ascii s)
  | "substring", [ i; j ] ->
      (* OCL substring is 1-based and inclusive on both ends *)
      let i = as_int "substring" i and j = as_int "substring" j in
      if i < 1 || j > String.length s || i > j + 1 then Value.V_undefined
      else Value.V_string (String.sub s (i - 1) (j - i + 1))
  | "contains", [ other ] ->
      let needle = as_string "contains" other in
      let hay_len = String.length s and needle_len = String.length needle in
      let rec search i =
        if i + needle_len > hay_len then false
        else if String.sub s i needle_len = needle then true
        else search (i + 1)
      in
      Value.V_bool (search 0)
  | "startsWith", [ other ] ->
      let prefix = as_string "startsWith" other in
      let n = String.length prefix in
      Value.V_bool (String.length s >= n && String.sub s 0 n = prefix)
  | "endsWith", [ other ] ->
      let suffix = as_string "endsWith" other in
      let n = String.length suffix in
      Value.V_bool
        (String.length s >= n && String.sub s (String.length s - n) n = suffix)
  | "toInteger", [] -> (
      match int_of_string_opt s with
      | Some n -> Value.V_int n
      | None -> Value.V_undefined)
  | "toReal", [] -> (
      match float_of_string_opt s with
      | Some f -> Value.V_real f
      | None -> Value.V_undefined)
  | _, _ -> error "String has no operation %s/%d" name (List.length args)

let numeric_call v name args =
  match (v, name, args) with
  | Value.V_int n, "abs", [] -> Value.V_int (abs n)
  | Value.V_real f, "abs", [] -> Value.V_real (Float.abs f)
  | Value.V_int n, "floor", [] -> Value.V_int n
  | Value.V_real f, "floor", [] -> Value.V_int (int_of_float (Float.floor f))
  | Value.V_int n, "round", [] -> Value.V_int n
  | Value.V_real f, "round", [] -> Value.V_int (int_of_float (Float.round f))
  | _, "max", [ other ] ->
      numeric2 "max" v other
        ~int:(fun x y -> Value.V_int (max x y))
        ~real:(fun x y -> Value.V_real (Float.max x y))
  | _, "min", [ other ] ->
      numeric2 "min" v other
        ~int:(fun x y -> Value.V_int (min x y))
        ~real:(fun x y -> Value.V_real (Float.min x y))
  | _, _, _ ->
      error "%s has no operation %s/%d" (Value.type_name v) name
        (List.length args)

let call_on_value m v name args =
  match (name, args) with
  | "oclIsUndefined", [] -> Value.V_bool false
  | _ -> (
      match v with
      | Value.V_string s -> string_call s name args
      | Value.V_int _ | Value.V_real _ -> numeric_call v name args
      | Value.V_elem id -> (
          match Meta.operation m id name args with
          | Some result -> result
          | None ->
              error "element has no operation %s/%d" name (List.length args))
      | v ->
          error "%s has no operation %s/%d" (Value.type_name v) name
            (List.length args))

(* The general call path once receiver and arguments are values. *)
let call m v name args =
  match v with
  | Value.V_undefined ->
      if String.equal name "oclIsUndefined" && args = [] then Value.V_bool true
      else Value.V_undefined
  | _ -> call_on_value m v name args

(* oclIsKindOf / oclIsTypeOf / oclAsType with an evaluated receiver; the
   type argument is syntactic and never evaluated. *)
let type_op m name ty v =
  let exact = String.equal name "oclIsTypeOf" in
  let conforms =
    match v with
    | Value.V_elem id ->
        elem_conforms m id ~exact ty || ((not exact) && String.equal ty "Element")
    | Value.V_undefined -> false
    | v -> value_conforms_to v ~exact ty
  in
  match name with
  | "oclAsType" -> if conforms then v else Value.V_undefined
  | _ -> Value.V_bool conforms

let all_instances m c =
  match Meta.all_instances m c with
  | Some v -> v
  | None -> error "unknown classifier %s in allInstances" c

(* ---- collection operations ---------------------------------------------- *)

(* [args] is forced after the receiver's undefined check *and* after the
   collection coercion — an undefined receiver returns without touching
   the arguments, and a non-collection receiver errors before them,
   exactly as the walker does. *)
let coll_op name v ~args =
  match v with
  | Value.V_undefined -> Value.V_undefined
  | _ -> (
      let xs = as_items ("->" ^ name) v in
      let arg_values = args () in
      match (name, arg_values) with
      | "size", [] -> Value.V_int (List.length xs)
      | "isEmpty", [] -> Value.V_bool (xs = [])
      | "notEmpty", [] -> Value.V_bool (xs <> [])
      | "includes", [ x ] -> Value.V_bool (List.exists (Value.equal x) xs)
      | "excludes", [ x ] -> Value.V_bool (not (List.exists (Value.equal x) xs))
      | "includesAll", [ c ] ->
          let ys = as_items "includesAll" c in
          Value.V_bool (List.for_all (fun y -> List.exists (Value.equal y) xs) ys)
      | "excludesAll", [ c ] ->
          let ys = as_items "excludesAll" c in
          Value.V_bool
            (List.for_all (fun y -> not (List.exists (Value.equal y) xs)) ys)
      | "count", [ x ] ->
          Value.V_int (List.length (List.filter (Value.equal x) xs))
      | "sum", [] ->
          let add acc x =
            numeric2 "sum" acc x
              ~int:(fun a b -> Value.V_int (a + b))
              ~real:(fun a b -> Value.V_real (a +. b))
          in
          List.fold_left add (Value.V_int 0) xs
      | "max", [] -> (
          match xs with
          | [] -> Value.V_undefined
          | first :: rest ->
              List.fold_left
                (fun acc x -> if Value.compare x acc > 0 then x else acc)
                first rest)
      | "min", [] -> (
          match xs with
          | [] -> Value.V_undefined
          | first :: rest ->
              List.fold_left
                (fun acc x -> if Value.compare x acc < 0 then x else acc)
                first rest)
      | "first", [] -> ( match xs with [] -> Value.V_undefined | x :: _ -> x)
      | "last", [] -> (
          match List.rev xs with [] -> Value.V_undefined | x :: _ -> x)
      | "at", [ i ] ->
          let i = as_int "at" i in
          if i < 1 || i > List.length xs then Value.V_undefined
          else List.nth xs (i - 1)
      | "indexOf", [ x ] ->
          let rec search i = function
            | [] -> Value.V_undefined
            | y :: rest ->
                if Value.equal x y then Value.V_int i else search (i + 1) rest
          in
          search 1 xs
      | "asSet", [] -> Value.set xs
      | "asSequence", [] -> Value.seq xs
      | "asBag", [] -> Value.bag xs
      | "union", [ c ] -> (
          let ys = as_items "union" c in
          match v with
          | Value.V_seq _ -> Value.seq (xs @ ys)
          | Value.V_bag _ -> Value.bag (xs @ ys)
          | _ -> Value.set (xs @ ys))
      | "intersection", [ c ] ->
          let ys = as_items "intersection" c in
          Value.set (List.filter (fun x -> List.exists (Value.equal x) ys) xs)
      | "including", [ x ] -> rebuild v (xs @ [ x ])
      | "excluding", [ x ] ->
          rebuild v (List.filter (fun y -> not (Value.equal x y)) xs)
      | "append", [ x ] -> Value.seq (xs @ [ x ])
      | "prepend", [ x ] -> Value.seq (x :: xs)
      | "reverse", [] -> Value.seq (List.rev xs)
      | "flatten", [] -> rebuild v (flatten_one xs)
      | _, _ ->
          error "collection has no operation %s/%d" name
            (List.length arg_values))

(* ---- iterators ---------------------------------------------------------- *)

(* [eval_one] evaluates the body with the single iterator variable bound
   to an item; [eval_tuple] binds all [nvars] variables in declaration
   order (forAll/exists range over the cartesian product). The arity
   error for other iterators is raised lazily, per item, exactly where
   the walker's per-item match would have raised it. *)
let iter name v ~nvars ~eval_one ~eval_tuple =
  match v with
  | Value.V_undefined -> Value.V_undefined
  | _ -> (
      let xs = as_items ("->" ^ name) v in
      let eval_body_for item =
        if nvars = 1 then eval_one item
        else error "%s expects exactly one iterator variable" name
      in
      match name with
      | "forAll" | "exists" ->
          (* multiple variables range over the cartesian product *)
          let rec tuples acc k =
            if k = 0 then [ List.rev acc ]
            else List.concat_map (fun x -> tuples (x :: acc) (k - 1)) xs
          in
          let assignments = tuples [] nvars in
          let results =
            List.map (fun tuple -> as_bool3 name (eval_tuple tuple)) assignments
          in
          let is_forall = String.equal name "forAll" in
          if is_forall then
            if List.exists (fun r -> r = Some false) results then
              Value.V_bool false
            else if List.exists (fun r -> r = None) results then
              Value.V_undefined
            else Value.V_bool true
          else if List.exists (fun r -> r = Some true) results then
            Value.V_bool true
          else if List.exists (fun r -> r = None) results then Value.V_undefined
          else Value.V_bool false
      | "select" ->
          rebuild v
            (List.filter (fun x -> eval_body_for x = Value.V_bool true) xs)
      | "reject" ->
          rebuild v
            (List.filter (fun x -> eval_body_for x = Value.V_bool false) xs)
      | "collect" -> (
          let mapped = flatten_one (List.map eval_body_for xs) in
          match v with
          | Value.V_seq _ -> Value.seq mapped
          | _ -> Value.bag mapped)
      | "one" ->
          let hits =
            List.length
              (List.filter (fun x -> eval_body_for x = Value.V_bool true) xs)
          in
          Value.V_bool (hits = 1)
      | "any" -> (
          match
            List.find_opt (fun x -> eval_body_for x = Value.V_bool true) xs
          with
          | Some x -> x
          | None -> Value.V_undefined)
      | "isUnique" ->
          let keys = List.map eval_body_for xs in
          let deduped = Value.set keys in
          (match deduped with
          | Value.V_set ds -> Value.V_bool (List.length ds = List.length keys)
          | _ -> assert false)
      | "sortedBy" ->
          let keyed = List.map (fun x -> (eval_body_for x, x)) xs in
          let sorted =
            List.stable_sort (fun (ka, _) (kb, _) -> Value.compare ka kb) keyed
          in
          Value.seq (List.map snd sorted)
      | "closure" ->
          (* transitive closure of the body step, as a set *)
          let step x =
            match eval_body_for x with
            | Value.V_set ys | Value.V_seq ys | Value.V_bag ys -> ys
            | Value.V_undefined -> []
            | y -> [ y ]
          in
          let rec grow seen frontier =
            match frontier with
            | [] -> seen
            | x :: rest ->
                let next =
                  List.filter
                    (fun y -> not (List.exists (Value.equal y) seen))
                    (step x)
                in
                grow (seen @ next) (rest @ next)
          in
          Value.set (grow xs xs)
      | _ -> error "unknown iterator %s" name)

(* iterate: the receiver is coerced (erroring on undefined — there is no
   undefined guard on this form) before the init expression runs. *)
let iterate v ~init ~step =
  let items = as_items "iterate" v in
  let init_value = init () in
  List.fold_left step init_value items

(* ---- planner probes (post shadow / no_planner check) --------------------- *)

(* An empty extent yields without touching [rhs], exactly as the fold
   would (it never evaluates the body). *)
let probe_exists m classifier ~rhs =
  if probe_extent_is_empty m classifier then Value.V_bool false
  else begin
    Obs.incr "ocl.plan.index_probe" [];
    match rhs () with
    | Value.V_string s ->
        Value.V_bool (not (Mof.Id.Set.is_empty (probe_ids m classifier s)))
    | _ ->
        (* [x.name] is always a String; equality with any other value is
           uniformly false over the whole extent *)
        Value.V_bool false
  end

let probe_select m classifier ~rhs =
  if probe_extent_is_empty m classifier then Value.set []
  else begin
    Obs.incr "ocl.plan.index_probe" [];
    match rhs () with
    | Value.V_string s ->
        Value.set
          (List.map
             (fun id -> Value.V_elem id)
             (Mof.Id.Set.elements (probe_ids m classifier s)))
    | _ -> Value.set []
  end

let probe_forall m classifier names ~body =
  Obs.incr "ocl.plan.index_probe" [];
  (* Only elements whose name occurs in the literal guard can have a
     non-vacuous consequent (the fold's [implies] short-circuits on a
     false antecedent); every other element contributes [Some true].
     Probing each name keeps ascending-id order, the order the fold
     walks the extent in, so the first error raised is the same. *)
  let ids =
    List.fold_left
      (fun acc s -> Mof.Id.Set.union acc (probe_ids m classifier s))
      Mof.Id.Set.empty names
  in
  let results =
    List.map (fun id -> as_bool3 "implies" (body id)) (Mof.Id.Set.elements ids)
  in
  if List.exists (fun r -> r = Some false) results then Value.V_bool false
  else if List.exists (fun r -> r = None) results then Value.V_undefined
  else Value.V_bool true
