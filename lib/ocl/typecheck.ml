type ty =
  | T_boolean
  | T_integer
  | T_real
  | T_string
  | T_element of string option
  | T_set of ty
  | T_seq of ty
  | T_bag of ty
  | T_any

let rec ty_to_string = function
  | T_boolean -> "Boolean"
  | T_integer -> "Integer"
  | T_real -> "Real"
  | T_string -> "String"
  | T_element None -> "Element"
  | T_element (Some mc) -> mc
  | T_set t -> "Set(" ^ ty_to_string t ^ ")"
  | T_seq t -> "Sequence(" ^ ty_to_string t ^ ")"
  | T_bag t -> "Bag(" ^ ty_to_string t ^ ")"
  | T_any -> "OclAny"

let rec conforms a b =
  match (a, b) with
  | T_any, _ | _, T_any -> true
  | T_integer, T_real -> true
  | T_element _, T_element None | T_element None, T_element _ -> true
  | T_element (Some x), T_element (Some y) -> String.equal x y
  | T_set x, T_set y | T_seq x, T_seq y | T_bag x, T_bag y -> conforms x y
  | _, _ -> a = b

type diagnostic = {
  message : string;
  subject : string;
}

let pp_diagnostic ppf d = Format.fprintf ppf "%s (in %s)" d.message d.subject

(* Result type of a meta-property, per metaclass. *)
let property_type metaclass name =
  let common = function
    | "name" | "qualifiedName" | "metaclass" -> Some T_string
    | "stereotypes" | "tagKeys" -> Some (T_set T_string)
    | "owner" -> Some (T_element None)
    | _ -> None
  in
  let specific =
    match (metaclass, name) with
    | "Package", "ownedElements" -> Some (T_seq (T_element None))
    | "Class", "attributes" -> Some (T_seq (T_element (Some "Attribute")))
    | "Class", ("operations" | "allOperations") ->
        Some (T_seq (T_element (Some "Operation")))
    | "Class", ("supers" | "allSupers") -> Some (T_set (T_element (Some "Class")))
    | "Class", "interfaces" -> Some (T_set (T_element (Some "Interface")))
    | "Class", "isAbstract" -> Some T_boolean
    | "Interface", "operations" -> Some (T_seq (T_element (Some "Operation")))
    | "Interface", "realizers" -> Some (T_set (T_element (Some "Class")))
    | "Attribute", ("type" | "visibility") -> Some T_string
    | "Attribute", ("lower" | "upper") -> Some T_integer
    | "Attribute", ("isDerived" | "isStatic") -> Some T_boolean
    | "Attribute", "initial" -> Some T_string
    | "Operation", "parameters" -> Some (T_seq (T_element (Some "Parameter")))
    | "Operation", ("visibility" | "resultType") -> Some T_string
    | "Operation", ("isQuery" | "isAbstract" | "isStatic") -> Some T_boolean
    | "Operation", "class" -> Some (T_element (Some "Class"))
    | "Parameter", ("type" | "direction") -> Some T_string
    | "Association", "endTypes" -> Some (T_seq (T_element None))
    | "Association", "endNames" -> Some (T_seq T_string)
    | "Generalization", ("child" | "parent") -> Some (T_element (Some "Class"))
    | "Dependency", ("client" | "supplier") -> Some (T_element None)
    | "Constraint", ("body" | "language") -> Some T_string
    | "Constraint", "constrained" -> Some (T_seq (T_element None))
    | "Enumeration", "literals" -> Some (T_seq T_string)
    | _, _ -> None
  in
  match common name with Some t -> Some t | None -> specific

let element_type_of_collection = function
  | T_set t | T_seq t | T_bag t -> Some t
  | T_any -> Some T_any
  | _ -> None

let is_numeric = function T_integer | T_real | T_any -> true | _ -> false

type state = { mutable diags : diagnostic list }

let report st expr fmt =
  Format.kasprintf
    (fun message -> st.diags <- { message; subject = Ast.to_string expr } :: st.diags)
    fmt

type tenv = (string * ty) list

let rec infer_expr st (env : tenv) self_ty (e : Ast.t) : ty =
  match e with
  | Ast.E_int _ -> T_integer
  | Ast.E_real _ -> T_real
  | Ast.E_string _ -> T_string
  | Ast.E_bool _ -> T_boolean
  | Ast.E_self -> self_ty
  | Ast.E_var v -> (
      match List.assoc_opt v env with
      | Some t -> t
      | None ->
          report st e "unbound variable %s" v;
          T_any)
  | Ast.E_collection (kind, items) ->
      let ts = List.map (infer_expr st env self_ty) items in
      let elem =
        match ts with
        | [] -> T_any
        | first :: rest ->
            List.fold_left (fun acc t -> if conforms t acc && conforms acc t then acc else T_any) first rest
      in
      (match kind with
      | Ast.Ck_set -> T_set elem
      | Ast.Ck_sequence -> T_seq elem
      | Ast.Ck_bag -> T_bag elem)
  | Ast.E_if (c, t, f) ->
      let tc = infer_expr st env self_ty c in
      if not (conforms tc T_boolean) then
        report st e "if condition has type %s, expected Boolean" (ty_to_string tc);
      let tt = infer_expr st env self_ty t in
      let tf = infer_expr st env self_ty f in
      if conforms tt tf then tf else if conforms tf tt then tt else T_any
  | Ast.E_let (v, bound, body) ->
      let tb = infer_expr st env self_ty bound in
      infer_expr st ((v, tb) :: env) self_ty body
  | Ast.E_not e' ->
      let t = infer_expr st env self_ty e' in
      if not (conforms t T_boolean) then
        report st e "not expects Boolean, found %s" (ty_to_string t);
      T_boolean
  | Ast.E_neg e' ->
      let t = infer_expr st env self_ty e' in
      if not (is_numeric t) then
        report st e "unary minus expects a number, found %s" (ty_to_string t);
      t
  | Ast.E_binop (op, a, b) -> infer_binop st env self_ty e op a b
  | Ast.E_prop (recv, name) -> infer_prop st env self_ty e recv name
  | Ast.E_call (recv, name, args) -> infer_call st env self_ty e recv name args
  | Ast.E_coll_op (recv, name, args) ->
      infer_coll_op st env self_ty e recv name args
  | Ast.E_iter (recv, name, vars, body) ->
      infer_iter st env self_ty e recv name vars body
  | Ast.E_iterate (recv, v, acc, init, body) ->
      let tr = infer_expr st env self_ty recv in
      let elem =
        match element_type_of_collection tr with
        | Some t -> t
        | None ->
            report st e "iterate expects a collection, found %s" (ty_to_string tr);
            T_any
      in
      let tinit = infer_expr st env self_ty init in
      infer_expr st ((v, elem) :: (acc, tinit) :: env) self_ty body
  | Ast.E_probe_exists_name (_, _, orig)
  | Ast.E_probe_select_name (_, _, orig)
  | Ast.E_probe_forall_guard (_, _, _, _, orig) ->
      (* planner IR is typed as the surface expression it replaced; the
         checker normally sees only raw parser output anyway *)
      infer_expr st env self_ty orig

and infer_binop st env self_ty e op a b =
  let ta = infer_expr st env self_ty a in
  let tb = infer_expr st env self_ty b in
  match op with
  | Ast.Op_and | Ast.Op_or | Ast.Op_xor | Ast.Op_implies ->
      if not (conforms ta T_boolean) then
        report st e "%s expects Boolean operands, found %s" (Ast.binop_name op)
          (ty_to_string ta);
      if not (conforms tb T_boolean) then
        report st e "%s expects Boolean operands, found %s" (Ast.binop_name op)
          (ty_to_string tb);
      T_boolean
  | Ast.Op_eq | Ast.Op_neq ->
      if not (conforms ta tb || conforms tb ta) then
        report st e "comparing unrelated types %s and %s" (ty_to_string ta)
          (ty_to_string tb);
      T_boolean
  | Ast.Op_lt | Ast.Op_gt | Ast.Op_le | Ast.Op_ge ->
      let ordered t = is_numeric t || conforms t T_string in
      if not (ordered ta && ordered tb) then
        report st e "%s expects numbers or strings, found %s and %s"
          (Ast.binop_name op) (ty_to_string ta) (ty_to_string tb);
      T_boolean
  | Ast.Op_add ->
      if conforms ta T_string && conforms tb T_string then T_string
      else if is_numeric ta && is_numeric tb then
        if ta = T_real || tb = T_real then T_real
        else if ta = T_any || tb = T_any then T_any
        else T_integer
      else (
        report st e "+ expects two numbers or two strings, found %s and %s"
          (ty_to_string ta) (ty_to_string tb);
        T_any)
  | Ast.Op_sub | Ast.Op_mul ->
      if not (is_numeric ta && is_numeric tb) then
        report st e "%s expects numeric operands, found %s and %s"
          (Ast.binop_name op) (ty_to_string ta) (ty_to_string tb);
      if ta = T_real || tb = T_real then T_real
      else if ta = T_any || tb = T_any then T_any
      else T_integer
  | Ast.Op_div ->
      if not (is_numeric ta && is_numeric tb) then
        report st e "/ expects numeric operands, found %s and %s"
          (ty_to_string ta) (ty_to_string tb);
      T_real
  | Ast.Op_idiv | Ast.Op_mod ->
      if not (conforms ta T_integer && conforms tb T_integer) then
        report st e "%s expects Integer operands, found %s and %s"
          (Ast.binop_name op) (ty_to_string ta) (ty_to_string tb);
      T_integer

and infer_prop st env self_ty e recv name =
  let tr = infer_expr st env self_ty recv in
  match tr with
  | T_element (Some mc) -> (
      match property_type mc name with
      | Some t -> t
      | None ->
          report st e "metaclass %s has no property %s" mc name;
          T_any)
  | T_element None | T_any -> (
      (* metaclass unknown: accept any property name that exists somewhere *)
      let known =
        List.exists
          (fun mc -> property_type mc name <> None)
          ("Element" :: Mof.Kind.all_names)
        || property_type "Package" name <> None
      in
      match known with
      | true -> T_any
      | false ->
          report st e "no metaclass has a property named %s" name;
          T_any)
  | T_set elem | T_seq elem | T_bag elem -> (
      (* implicit collect; flattens one level *)
      let flat = function
        | T_set t | T_seq t | T_bag t -> t
        | t -> t
      in
      let wrap t = match tr with T_seq _ -> T_seq t | _ -> T_bag t in
      match elem with
      | T_element (Some mc) -> (
          match property_type mc name with
          | Some t -> wrap (flat t)
          | None ->
              report st e "metaclass %s has no property %s" mc name;
              wrap T_any)
      | T_element None | T_any -> wrap T_any
      | t ->
          report st e "cannot navigate property %s over %s elements" name
            (ty_to_string t);
          wrap T_any)
  | t ->
      report st e "%s has no property %s" (ty_to_string t) name;
      T_any

and infer_call st env self_ty e recv name args =
  match (recv, name, args) with
  | Ast.E_var c, "allInstances", [] when List.assoc_opt c env = None ->
      if Meta.is_metaclass c then T_set (T_element (Some c))
      else (
        report st e "unknown classifier %s in allInstances" c;
        T_set (T_element None))
  | _, ("oclIsKindOf" | "oclIsTypeOf"), [ Ast.E_var ty_name ] ->
      ignore (infer_expr st env self_ty recv);
      if
        not
          (Meta.is_metaclass ty_name
          || List.mem ty_name [ "Boolean"; "Integer"; "Real"; "String" ])
      then report st e "unknown type %s" ty_name;
      T_boolean
  | _, "oclAsType", [ Ast.E_var ty_name ] ->
      ignore (infer_expr st env self_ty recv);
      if Meta.is_metaclass ty_name then T_element (Some ty_name)
      else (
        (match ty_name with
        | "Boolean" | "Integer" | "Real" | "String" -> ()
        | _ -> report st e "unknown type %s" ty_name);
        match ty_name with
        | "Boolean" -> T_boolean
        | "Integer" -> T_integer
        | "Real" -> T_real
        | "String" -> T_string
        | _ -> T_any)
  | _, _, _ -> (
      let tr = infer_expr st env self_ty recv in
      let targs = List.map (infer_expr st env self_ty) args in
      let arity = List.length args in
      let expect_args expected =
        if not (List.for_all2 conforms targs expected) then
          report st e "%s: argument type mismatch" name
      in
      match (tr, name, arity) with
      | _, "oclIsUndefined", 0 -> T_boolean
      | T_string, "size", 0 -> T_integer
      | T_string, ("toUpper" | "toLower"), 0 -> T_string
      | T_string, "concat", 1 ->
          expect_args [ T_string ];
          T_string
      | T_string, "substring", 2 ->
          expect_args [ T_integer; T_integer ];
          T_string
      | T_string, ("contains" | "startsWith" | "endsWith"), 1 ->
          expect_args [ T_string ];
          T_boolean
      | T_string, "toInteger", 0 -> T_integer
      | T_string, "toReal", 0 -> T_real
      | (T_integer | T_real), "abs", 0 -> tr
      | (T_integer | T_real), ("floor" | "round"), 0 -> T_integer
      | (T_integer | T_real), ("max" | "min"), 1 ->
          if not (List.for_all is_numeric targs) then
            report st e "%s expects a numeric argument" name;
          if tr = T_real || targs = [ T_real ] then T_real else tr
      | T_element _, ("hasStereotype" | "hasTag"), 1 ->
          expect_args [ T_string ];
          T_boolean
      | T_element _, "tag", 1 ->
          expect_args [ T_string ];
          T_string
      | T_any, _, _ -> T_any
      | _, _, _ ->
          report st e "%s has no operation %s/%d" (ty_to_string tr) name arity;
          T_any)

and infer_coll_op st env self_ty e recv name args =
  let tr = infer_expr st env self_ty recv in
  let targs = List.map (infer_expr st env self_ty) args in
  let elem =
    match element_type_of_collection tr with
    | Some t -> t
    | None ->
        report st e "->%s expects a collection, found %s" name (ty_to_string tr);
        T_any
  in
  let arity = List.length args in
  match (name, arity) with
  | "size", 0 -> T_integer
  | ("isEmpty" | "notEmpty"), 0 -> T_boolean
  | ("includes" | "excludes" | "count"), 1 ->
      (match targs with
      | [ t ] when not (conforms t elem || conforms elem t) ->
          report st e "->%s argument type %s does not match element type %s"
            name (ty_to_string t) (ty_to_string elem)
      | _ -> ());
      if name = "count" then T_integer else T_boolean
  | ("includesAll" | "excludesAll"), 1 -> T_boolean
  | "sum", 0 ->
      if not (is_numeric elem) then
        report st e "->sum over non-numeric elements %s" (ty_to_string elem);
      elem
  | ("max" | "min"), 0 -> elem
  | ("first" | "last"), 0 -> elem
  | "at", 1 ->
      (match targs with
      | [ t ] when not (conforms t T_integer) ->
          report st e "->at expects an Integer index"
      | _ -> ());
      elem
  | "indexOf", 1 -> T_integer
  | "asSet", 0 -> T_set elem
  | "asSequence", 0 -> T_seq elem
  | "asBag", 0 -> T_bag elem
  | ("union" | "intersection"), 1 -> (
      match tr with
      | T_seq _ when name = "union" -> T_seq elem
      | _ -> T_set elem)
  | ("including" | "excluding"), 1 -> tr
  | ("append" | "prepend"), 1 -> T_seq elem
  | "reverse", 0 -> T_seq elem
  | "flatten", 0 -> (
      match elem with
      | T_set t | T_seq t | T_bag t -> (
          match tr with
          | T_seq _ -> T_seq t
          | T_bag _ -> T_bag t
          | _ -> T_set t)
      | _ -> tr)
  | _, _ ->
      report st e "unknown collection operation ->%s/%d" name arity;
      T_any

and infer_iter st env self_ty e recv name vars body =
  let tr = infer_expr st env self_ty recv in
  let elem =
    match element_type_of_collection tr with
    | Some t -> t
    | None ->
        report st e "->%s expects a collection, found %s" name (ty_to_string tr);
        T_any
  in
  let env' = List.map (fun v -> (v, elem)) vars @ env in
  let tbody = infer_expr st env' self_ty body in
  let boolean_body () =
    if not (conforms tbody T_boolean) then
      report st e "->%s body has type %s, expected Boolean" name
        (ty_to_string tbody)
  in
  if not (List.mem name Ast.iterator_names) then
    report st e "unknown iterator ->%s" name;
  if List.length vars > 1 && not (List.mem name [ "forAll"; "exists" ]) then
    report st e "->%s takes a single iterator variable" name;
  match name with
  | "forAll" | "exists" | "one" ->
      boolean_body ();
      T_boolean
  | "isUnique" -> T_boolean
  | "select" | "reject" ->
      boolean_body ();
      tr
  | "collect" -> (
      match tr with T_seq _ -> T_seq tbody | _ -> T_bag tbody)
  | "any" ->
      boolean_body ();
      elem
  | "sortedBy" -> T_seq elem
  | "closure" -> T_set elem
  | _ -> T_any

let infer ?self_type e =
  let st = { diags = [] } in
  let self_ty =
    match self_type with
    | Some mc -> T_element (Some mc)
    | None -> T_element None
  in
  let t = infer_expr st [] self_ty e in
  (t, List.rev st.diags)

let check_source ?self_type src =
  (* the memoized compile handle; typechecking reads the raw AST, so a
     body that is later evaluated re-uses the same cache entry *)
  match Compile.compile src with
  | Error msg -> Error msg
  | Ok c -> Ok (infer ?self_type c.Compile.ast)

let well_typed ?self_type src =
  match check_source ?self_type src with
  | Ok (_, []) -> true
  | Ok (_, _ :: _) | Error _ -> false
