type step = {
  concern : string;
  params : (string * Transform.Params.value) list;
}

let step ~concern ~params = { concern; params }

type outcome = (Core.Project.t, Core.Pipeline.error) result

(* Pool workers resolve concerns through the registry; make sure the one
   mutation it ever performs (registering the platform projection) happens
   in the submitting domain, before any worker reads it. The mutex covers
   the corner where two submitters race their first batch. *)
let registry_mutex = Mutex.create ()

let ensure_registry () =
  Mutex.lock registry_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mutex)
    Core.Platform.ensure_registered

let refine_one ~steps model =
  let project = Core.Project.create model in
  let rec go project = function
    | [] -> Ok project
    | s :: rest -> (
        match Core.Pipeline.refine project ~concern:s.concern ~params:s.params with
        | Ok (project, _report) -> go project rest
        | Error e -> Error e)
  in
  let outcome = go project steps in
  if Obs.Metric.enabled () then begin
    Obs.incr "batch.items" [];
    match outcome with
    | Ok _ -> Obs.incr "batch.ok" []
    | Error _ -> Obs.incr "batch.error" []
  end;
  outcome

let run_batch ?pool ~label f models =
  ensure_registry ();
  let jobs = match pool with None -> 1 | Some p -> Pool.jobs p in
  (* Each item is a session (its 1-based batch position) carrying a fresh
     request id, established on whichever domain runs it — so every event
     an item emits can be sliced out of a trace by request or session.
     Ids are process-wide and allocation order under a pool is racy, which
     is why Event.normalize zeroes them: the par oracle stays exact. *)
  let indexed = List.mapi (fun i m -> (i + 1, m)) models in
  let item (session, m) =
    Obs.with_session ~id:session (fun () -> Obs.with_request (fun () -> f m))
  in
  Obs.span ~cat:"par" "batch.run"
    ~args:
      [
        ("kind", Obs.Event.V_string label);
        ("items", Obs.Event.V_int (List.length models));
        ("jobs", Obs.Event.V_int jobs);
      ]
  @@ fun () ->
  match pool with
  | None -> List.map item indexed
  | Some p -> Pool.map p item indexed

let refine_all ?pool ~steps models =
  run_batch ?pool ~label:"refine" (refine_one ~steps) models

(* Traced item: record into a private memory sink with span numbering
   restarted at zero, so the captured stream only depends on what the item
   did — not on which domain ran it or what ran on that domain before.
   The previous sink and span counters are restored either way. *)
let traced f item =
  let snap = Obs.Span.save () in
  let sink, events = Obs.Sink.memory () in
  let outcome =
    Fun.protect
      ~finally:(fun () -> Obs.Span.restore snap)
      (fun () ->
        Obs.with_sink sink (fun () ->
            Obs.Span.reset ();
            f item))
  in
  (outcome, events ())

let refine_all_traced ?pool ~steps models =
  run_batch ?pool ~label:"refine-traced" (traced (refine_one ~steps)) models

let apply_one ?checks ~cmts model =
  let outcome =
    match
      match checks with
      | None -> Transform.Engine.run model cmts
      | Some checks -> Transform.Engine.run ~checks model cmts
    with
    | Ok session -> Ok session.Transform.Engine.current
    | Error (name, failure) -> Error (name, failure)
  in
  if Obs.Metric.enabled () then begin
    Obs.incr "batch.items" [];
    match outcome with
    | Ok _ -> Obs.incr "batch.ok" []
    | Error _ -> Obs.incr "batch.error" []
  end;
  outcome

let apply_all ?pool ?checks ~cmts models =
  run_batch ?pool ~label:"apply" (apply_one ?checks ~cmts) models
