(** Batch refinement: apply one concern chain to N independent models
    concurrently, with results in submission order and per-item typed
    errors.

    This is the Fig. 2 pipeline turned into a throughput workload: every
    item is an independent model, the chain of refinement steps is shared,
    and the whole batch runs on a {!Pool}. The merge contract is the
    pool's: the outcome list lines up index-by-index with the input list
    no matter which domain ran which item, and one failing item yields one
    [Error] in its own slot — the other items are unaffected.

    Domain-local caches (the OCL compile cache, the classifier-extent
    cache) warm independently per worker and are invalidated by model
    watermarks, so nothing an item computes can leak into an unrelated
    item that happens to run on the same worker later — the [par]
    differential oracle and [test_par.ml] hold the parallel run to exact
    observational equality with the sequential one. *)

type step = {
  concern : string;
  params : (string * Transform.Params.value) list;
}
(** One refinement step of the shared chain, as {!Core.Pipeline.refine}
    takes it. *)

val step :
  concern:string -> params:(string * Transform.Params.value) list -> step

type outcome = (Core.Project.t, Core.Pipeline.error) result
(** Per-item result: the refined project, or the typed pipeline error of
    the step that refused. *)

val refine_one : steps:step list -> Mof.Model.t -> outcome
(** The sequential unit of work: start a project on the model and fold the
    chain, stopping at the first error. Exactly what each pool worker runs
    per item. *)

val refine_all :
  ?pool:Pool.t -> steps:step list -> Mof.Model.t list -> outcome list
(** [refine_all ~pool ~steps models] — one {!refine_one} per model on the
    pool ([None] = sequentially in the caller), outcomes in submission
    order. Metric shards are merged at the join (see {!Pool}), so counter
    totals after the call are exact. *)

val refine_all_traced :
  ?pool:Pool.t ->
  steps:step list ->
  Mof.Model.t list ->
  (outcome * Obs.Event.t list) list
(** Like {!refine_all}, but each item additionally records its own event
    trace: the worker installs a private memory sink and restarts span
    numbering for the item, so the captured list is exactly the trace a
    sequential run of that item would record — modulo
    {!Obs.Event.normalize} (timestamps, durations, domain ids). The par
    oracle compares these per item between the parallel and sequential
    arms. *)

val apply_all :
  ?pool:Pool.t ->
  ?checks:Transform.Engine.checks ->
  cmts:Transform.Cmt.t list ->
  Mof.Model.t list ->
  (Mof.Model.t, string * Transform.Engine.failure) result list
(** The engine-level batch (no project/repository bookkeeping): run the
    concrete transformation chain on every model. [checks] as in
    {!Transform.Engine.apply} — bench E14's checked/unchecked arms. *)
