(* The domain pool. One mutex + two condition variables implement the whole
   protocol:

   - [work] wakes sleeping workers when a job is published (and at
     shutdown);
   - [idle] wakes the submitter when a worker leaves a job, so it can test
     the join condition.

   A job is an atomic claim cursor over [size] items plus a completion
   counter. Workers (and the submitting caller) repeatedly
   [fetch_and_add] the cursor and run the claimed item; the per-item
   closure writes into the item's own slot, which is what makes the merge
   deterministic. The join condition is `all items completed AND no worker
   still inside the job`: the second half guarantees every participating
   worker has drained its metric shard into the job before the submitter
   absorbs the shards and returns. [active] and [shards] are only touched
   under the mutex; the slot writes happen-before the submitter's reads
   via the same mutex (worker: run → lock; submitter: lock → read). *)

type job = {
  id : int;
  run : int -> unit; (* total: captures exceptions into its slot *)
  size : int;
  cursor : int Atomic.t;
  completed : int Atomic.t;
  mutable active : int; (* workers currently inside this job *)
  mutable shards : Obs.Metric.shard list;
}

type t = {
  total : int;
  mutable workers : unit Domain.t list;
  m : Mutex.t;
  work : Condition.t;
  idle : Condition.t;
  mutable job : job option;
  mutable next_id : int;
  mutable stopping : bool;
  mutable dead : bool;
}

let jobs t = t.total

let participate (j : job) =
  let rec claim () =
    let i = Atomic.fetch_and_add j.cursor 1 in
    if i < j.size then begin
      j.run i;
      ignore (Atomic.fetch_and_add j.completed 1);
      claim ()
    end
  in
  claim ()

let worker_loop t =
  let last = ref (-1) in
  let rec loop () =
    Mutex.lock t.m;
    while
      (not t.stopping)
      && (match t.job with None -> true | Some j -> j.id = !last)
    do
      Condition.wait t.work t.m
    done;
    if t.stopping then Mutex.unlock t.m
    else begin
      let j = match t.job with Some j -> j | None -> assert false in
      last := j.id;
      j.active <- j.active + 1;
      Mutex.unlock t.m;
      participate j;
      Mutex.lock t.m;
      j.shards <- Obs.Metric.drain () :: j.shards;
      j.active <- j.active - 1;
      Condition.broadcast t.idle;
      Mutex.unlock t.m;
      loop ()
    end
  in
  loop ()

let create ?jobs () =
  let total =
    match jobs with
    | Some j -> max 1 j
    | None -> Domain.recommended_domain_count ()
  in
  let t =
    {
      total;
      workers = [];
      m = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      job = None;
      next_id = 0;
      stopping = false;
      dead = false;
    }
  in
  t.workers <- List.init (total - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.m;
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  List.iter Domain.join t.workers;
  t.workers <- [];
  t.dead <- true

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Submission-order slots: item [i]'s outcome lands in [slots.(i)], so the
   returned array is independent of completion order by construction. *)
let map_array t f items =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let slots = Array.make n None in
    let run i =
      let outcome = try Ok (f items.(i)) with exn -> Error exn in
      slots.(i) <- Some outcome
    in
    if t.total = 1 || n = 1 then
      for i = 0 to n - 1 do
        run i
      done
    else begin
      Mutex.lock t.m;
      if t.dead then begin
        Mutex.unlock t.m;
        invalid_arg "Par.Pool.map: pool is shut down"
      end;
      if t.job <> None then begin
        Mutex.unlock t.m;
        invalid_arg "Par.Pool.map: a map is already in flight on this pool"
      end;
      let j =
        {
          id = t.next_id;
          run;
          size = n;
          cursor = Atomic.make 0;
          completed = Atomic.make 0;
          active = 0;
          shards = [];
        }
      in
      t.next_id <- t.next_id + 1;
      t.job <- Some j;
      Condition.broadcast t.work;
      Mutex.unlock t.m;
      (* the submitter is the pool's last worker *)
      participate j;
      Mutex.lock t.m;
      while not (Atomic.get j.completed = n && j.active = 0) do
        Condition.wait t.idle t.m
      done;
      t.job <- None;
      Mutex.unlock t.m;
      List.iter Obs.Metric.absorb j.shards
    end;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error exn) -> raise exn
        | None -> assert false (* every slot written before the join *))
      slots
  end

let map t f items = Array.to_list (map_array t f (Array.of_list items))
