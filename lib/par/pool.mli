(** A fixed-size pool of worker domains with a chunked work queue and a
    deterministic-merge contract.

    A pool of size [j] owns [j - 1] long-lived worker domains; the domain
    that submits a job participates as the [j]-th worker, so [jobs:1] is
    plain sequential execution with no domain ever spawned. Workers sleep
    on a condition variable between jobs — a pool is cheap to keep around
    and is meant to be reused across batches.

    {2 The merge contract}

    [map pool f items] applies [f] to every item concurrently. Items are
    claimed from an atomic cursor (chunk size 1 — items are coarse), each
    result is written into the slot of {e its own submission index}, and
    the caller returns the slots in submission order. Completion order —
    which worker ran which item, and when — is unobservable in the result:
    the merge is deterministic by construction, not by scheduling.

    Failures keep the same per-item discipline. An exception raised by
    [f item] is caught on the worker, stored in the item's slot, and
    re-raised {e in the submitting domain} for the lowest failing index
    after every other item has run to completion — one failing item never
    poisons the others, and which exception surfaces does not depend on
    timing. Callers who want errors as data should make [f] return a
    [result] (see {!Batch}).

    {2 Per-domain observability state}

    Worker domains start on the null {!Obs} sink and their own empty
    metric shard ({!Obs.Metric}); domain-local caches ([Ocl.Compile],
    [Ocl.Meta]) warm per worker. At the end of every [map], each
    participating worker drains its metric shard and the submitting domain
    absorbs them before returning — counter totals observed after a [map]
    are exact, as if the batch had run sequentially. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] builds a pool of total size [jobs] (clamped to at
    least 1), spawning [jobs - 1] worker domains. Default:
    [Domain.recommended_domain_count ()]. *)

val jobs : t -> int
(** Total parallelism, submitting caller included. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f items] — results in submission order (see above). Only one
    [map] may be in flight per pool; raises [Invalid_argument] on
    concurrent submission and on a pool that has been {!shutdown}. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

val shutdown : t -> unit
(** Joins all worker domains. Idempotent. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception). *)
