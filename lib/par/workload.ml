(* Mirrors the shape of the test suite's Fixtures.synthetic (the E7
   scaling workload): every class carries [attrs] attributes and [ops]
   operations with one integer parameter and an integer result. *)

let synthetic ?(attrs = 3) ?(ops = 3) ~classes name =
  let m = Mof.Model.create ~name in
  let root = Mof.Model.root m in
  let rec add_class m i =
    if i >= classes then m
    else
      let m, cls =
        Mof.Builder.add_class m ~owner:root ~name:(Printf.sprintf "C%d" i)
      in
      let rec add_attr m j =
        if j >= attrs then m
        else
          let m, _ =
            Mof.Builder.add_attribute m ~cls ~name:(Printf.sprintf "f%d" j)
              ~typ:
                (if j mod 2 = 0 then Mof.Kind.Dt_integer else Mof.Kind.Dt_string)
          in
          add_attr m (j + 1)
      in
      let rec add_op m j =
        if j >= ops then m
        else
          let m, op =
            Mof.Builder.add_operation m ~owner:cls ~name:(Printf.sprintf "m%d" j)
          in
          let m, _ =
            Mof.Builder.add_parameter m ~op ~name:"x" ~typ:Mof.Kind.Dt_integer
          in
          let m = Mof.Builder.set_result m ~op ~typ:Mof.Kind.Dt_integer in
          add_op m (j + 1)
      in
      add_class (add_op (add_attr m 0) 0) (i + 1)
  in
  add_class m 0

let models ?(classes = 20) n =
  List.init n (fun i -> synthetic ~classes (Printf.sprintf "batch%d" i))
