(** Deterministic synthetic batch workloads — the E7/E14 model shape
    ([n] classes, each with 3 attributes and 3 one-parameter operations),
    built without any test-only dependency so the CLI ([mdweave batch
    --synthetic]) and the bench harness share one generator. *)

val synthetic : ?attrs:int -> ?ops:int -> classes:int -> string -> Mof.Model.t
(** [synthetic ~classes name] — one model named [name] with classes
    [C0 .. C{classes-1}]. Identical parameters yield identical models
    (fresh ids are drawn from the model's own counter). *)

val models : ?classes:int -> int -> Mof.Model.t list
(** [models n] — a batch of [n] independent synthetic models
    [batch0 .. batch{n-1}] of [classes] (default 20) classes each. *)
