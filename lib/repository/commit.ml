type tree = Store.digest Mof.Id.Map.t

type t = {
  id : int;
  parent : int option;
  message : string;
  tree : tree;
  root : Mof.Id.t;
  next_id : int;
  diff : Mof.Diff.t;
  transformation : string option;
  concern : string option;
}

let tree_size t = Mof.Id.Map.cardinal t.tree

let summary t =
  Format.asprintf "#%d %s (%a)%s" t.id t.message Mof.Diff.pp t.diff
    (match t.concern with Some c -> " [" ^ c ^ "]" | None -> "")

let pp ppf t = Format.pp_print_string ppf (summary t)
