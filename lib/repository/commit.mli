(** Commits: immutable model versions with provenance, stored as trees of
    content-addressed element refs.

    A commit no longer embeds a model copy: [tree] maps every live element
    id to the digest of its content in the {!Store}, so consecutive commits
    share the digests (and, transitively, the stored objects) of everything
    that did not change. [Repo.model_at] rematerializes the full
    {!Mof.Model.t} on demand. *)

type tree = Store.digest Mof.Id.Map.t
(** Element id → content digest. Persistent: a child commit's tree is the
    parent's with only the changed bindings replaced. *)

type t = {
  id : int;
  parent : int option;
  message : string;
  tree : tree;
  root : Mof.Id.t;  (** root package id, for rematerialization *)
  next_id : int;  (** the model's fresh-id counter at commit time *)
  diff : Mof.Diff.t;
      (** against the parent, computed once at commit time (journal replay
          when lineage allows, scan otherwise); empty for a root commit *)
  transformation : string option;
      (** concrete transformation that produced this version, if any *)
  concern : string option;
}

val tree_size : t -> int
(** Number of live elements in the committed version. *)

val summary : t -> string
(** One line: id, message, diff size. *)

val pp : Format.formatter -> t -> unit
