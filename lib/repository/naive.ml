module Int_map = Map.Make (Int)

type commit = {
  id : int;
  parent : int option;
  message : string;
  model : Mof.Model.t;
  diff : Mof.Diff.t;
  transformation : string option;
  concern : string option;
}

type t = {
  commits : commit Int_map.t;
  head_id : int;
  redo_path : int list; (* child ids to re-advance through, nearest first *)
  tag_list : (string * int) list;
  next : int;
}

let init model =
  let root =
    {
      id = 0;
      parent = None;
      message = "initial model";
      model;
      diff = Mof.Diff.empty;
      transformation = None;
      concern = None;
    }
  in
  {
    commits = Int_map.singleton 0 root;
    head_id = 0;
    redo_path = [];
    tag_list = [];
    next = 1;
  }

let find t id = Int_map.find_opt id t.commits

let head t =
  match find t t.head_id with
  | Some c -> c
  | None -> assert false (* head always points at a stored commit *)

let head_model t = (head t).model

let commit ?transformation ?concern ~message model t =
  let parent = head t in
  let c =
    {
      id = t.next;
      parent = Some parent.id;
      message;
      model;
      diff = Mof.Diff.compute ~old_model:parent.model ~new_model:model;
      transformation;
      concern;
    }
  in
  {
    t with
    commits = Int_map.add c.id c t.commits;
    head_id = c.id;
    redo_path = [];
    next = t.next + 1;
  }

let undo t =
  match (head t).parent with
  | None -> None
  | Some parent_id ->
      Some { t with head_id = parent_id; redo_path = t.head_id :: t.redo_path }

let redo t =
  match t.redo_path with
  | [] -> None
  | child :: rest -> Some { t with head_id = child; redo_path = rest }

let can_undo t = (head t).parent <> None
let can_redo t = t.redo_path <> []

let tag name t =
  let others =
    List.filter (fun (n, _) -> not (String.equal n name)) t.tag_list
  in
  { t with tag_list = (name, t.head_id) :: others }

let checkout name t =
  match List.assoc_opt name t.tag_list with
  | Some id when Int_map.mem id t.commits ->
      Some { t with head_id = id; redo_path = [] }
  | Some _ | None -> None

let tags t = t.tag_list

let log t =
  (* head-first chain *)
  let rec walk acc id =
    match find t id with
    | None -> List.rev acc
    | Some c -> (
        match c.parent with
        | None -> List.rev (c :: acc)
        | Some p -> walk (c :: acc) p)
  in
  walk [] t.head_id

let size t = Int_map.cardinal t.commits

let diff_between t ~from_id ~to_id =
  match (find t from_id, find t to_id) with
  | Some a, Some b ->
      Some (Mof.Diff.compute ~old_model:a.model ~new_model:b.model)
  | _, _ -> None

let estimated_bytes t =
  Int_map.fold
    (fun _ c acc ->
      Mof.Model.fold
        (fun e acc -> acc + String.length (Mof.Canon.element_bytes e))
        c.model acc)
    t.commits 0
