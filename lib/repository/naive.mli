(** The full-copy repository — the pre-content-addressing implementation,
    kept verbatim as the differential baseline for the [repo] oracle and
    bench E15.

    Every commit embeds a complete model value and [diff_between]
    recomputes from the embedded models; nothing is shared through a
    store. Semantically it must agree with {!Repo} on the whole observable
    surface (head model, undo/redo, tags, log, diffs) — that agreement is
    exactly what the oracle checks, so this module should never be
    "improved" in ways that change behavior. *)

type commit = {
  id : int;
  parent : int option;
  message : string;
  model : Mof.Model.t;
  diff : Mof.Diff.t;
  transformation : string option;
  concern : string option;
}

type t

val init : Mof.Model.t -> t

val commit :
  ?transformation:string ->
  ?concern:string ->
  message:string ->
  Mof.Model.t ->
  t ->
  t

val head : t -> commit
val head_model : t -> Mof.Model.t
val undo : t -> t option
val redo : t -> t option
val can_undo : t -> bool
val can_redo : t -> bool
val tag : string -> t -> t
val checkout : string -> t -> t option
val tags : t -> (string * int) list
val find : t -> int -> commit option
val log : t -> commit list
val size : t -> int
val diff_between : t -> from_id:int -> to_id:int -> Mof.Diff.t option

val estimated_bytes : t -> int
(** A flat re-serialization measure: total canonical bytes of every
    element of every commit's embedded model — what a snapshot with no
    sharing would cost. The E15 baseline column. *)
