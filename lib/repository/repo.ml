module Int_map = Map.Make (Int)
module Smap = Map.Make (String)

type checkout_error =
  | Unknown_tag of string
  | Unknown_branch of string
  | Dangling of { name : string; commit : int }

let pp_checkout_error ppf = function
  | Unknown_tag t -> Format.fprintf ppf "unknown tag %S" t
  | Unknown_branch b -> Format.fprintf ppf "unknown branch %S" b
  | Dangling { name; commit } ->
      Format.fprintf ppf "%S points at missing commit #%d" name commit

let checkout_error_to_string e = Format.asprintf "%a" pp_checkout_error e

type t = {
  store : Store.t;
  commits : Commit.t Int_map.t;
  head_id : int;
  head_model : Mof.Model.t;
      (* the head version, kept materialized: [commit] stores the model it
         was handed, so journal lineage survives across commits and the
         next diff replays the journal instead of scanning *)
  redo_path : int list;
      (* child ids to re-advance through, nearest first *)
  tag_map : int Smap.t;
  branch_map : int Smap.t;
  current_branch : string;
  next : int;
}

(* Fold a whole model into the store, yielding its commit tree. Only the
   root commit and [load] pay this; ordinary commits extend the parent
   tree by the diff. *)
let tree_of_model store model =
  Mof.Model.fold
    (fun e (store, tree) ->
      let store, digest = Store.add store e in
      (store, Mof.Id.Map.add e.Mof.Element.id digest tree))
    model
    (store, Mof.Id.Map.empty)

let materialize store (c : Commit.t) =
  let elements =
    (* bindings come back in ascending id order, the order [of_elements]
       and the historical scans expect *)
    List.map
      (fun (_, digest) -> Store.find_exn store digest)
      (Mof.Id.Map.bindings c.Commit.tree)
  in
  Mof.Model.of_elements ~root:c.Commit.root ~next:c.Commit.next_id elements

let publish_store_metrics t =
  if Obs.Metric.enabled () then begin
    Obs.gauge ~unit_:"objects" "repo.store.objects" []
      (float_of_int (Store.count t.store));
    Obs.gauge ~unit_:"bytes" "repo.store.bytes" []
      (float_of_int (Store.bytes t.store))
  end

let init ?(branch = "main") model =
  let store, tree = tree_of_model Store.empty model in
  let root_commit =
    {
      Commit.id = 0;
      parent = None;
      message = "initial model";
      tree;
      root = Mof.Model.root model;
      next_id = Mof.Model.next model;
      diff = Mof.Diff.empty;
      transformation = None;
      concern = None;
    }
  in
  let t =
    {
      store;
      commits = Int_map.singleton 0 root_commit;
      head_id = 0;
      head_model = model;
      redo_path = [];
      tag_map = Smap.empty;
      branch_map = Smap.singleton branch 0;
      current_branch = branch;
      next = 1;
    }
  in
  publish_store_metrics t;
  t

let find t id = Int_map.find_opt id t.commits

let head t =
  match find t t.head_id with
  | Some c -> c
  | None -> assert false (* head always points at a stored commit *)

let head_model t = t.head_model

(* Append [model] as a child of commit [parent] (whose materialization is
   [parent_model]), on branch [branch] — the shared machinery behind
   [commit] and [commit_on]. The child tree is the parent tree with only
   the diff applied, so everything unchanged is shared. *)
let append ?transformation ?concern ~message ~branch ~parent ~parent_model
    model t =
  let diff = Mof.Diff.compute ~old_model:parent_model ~new_model:model in
  let tree =
    Mof.Id.Set.fold Mof.Id.Map.remove diff.Mof.Diff.removed parent.Commit.tree
  in
  let store, tree =
    Mof.Id.Set.fold
      (fun id (store, tree) ->
        let store, digest = Store.add store (Mof.Model.find_exn model id) in
        (store, Mof.Id.Map.add id digest tree))
      (Mof.Id.Set.union diff.Mof.Diff.added diff.Mof.Diff.modified)
      (t.store, tree)
  in
  let c =
    {
      Commit.id = t.next;
      parent = Some parent.Commit.id;
      message;
      tree;
      root = Mof.Model.root model;
      next_id = Mof.Model.next model;
      diff;
      transformation;
      concern;
    }
  in
  let t =
    {
      t with
      store;
      commits = Int_map.add c.Commit.id c t.commits;
      head_id = c.Commit.id;
      head_model = model;
      redo_path = [];
      branch_map = Smap.add branch c.Commit.id t.branch_map;
      current_branch = branch;
      next = t.next + 1;
    }
  in
  if Obs.Metric.enabled () then begin
    publish_store_metrics t;
    let total = Commit.tree_size c in
    if total > 0 then begin
      let changed =
        Mof.Id.Set.cardinal diff.Mof.Diff.added
        + Mof.Id.Set.cardinal diff.Mof.Diff.modified
      in
      Obs.observe ~unit_:"ratio" "repo.commit.shared_ratio" []
        (float_of_int (total - changed) /. float_of_int total)
    end
  end;
  t

let commit ?transformation ?concern ~message model t =
  append ?transformation ?concern ~message ~branch:t.current_branch
    ~parent:(head t) ~parent_model:t.head_model model t

let commit_on ~branch ?transformation ?concern ~message model t =
  match Smap.find_opt branch t.branch_map with
  | None -> Error (Unknown_branch branch)
  | Some id -> (
      match find t id with
      | None -> Error (Dangling { name = branch; commit = id })
      | Some parent ->
          let parent_model =
            if id = t.head_id then t.head_model else materialize t.store parent
          in
          Ok
            (append ?transformation ?concern ~message ~branch ~parent
               ~parent_model model t))

(* Move the head to a stored commit: rematerialize its model (fresh
   lineage — [Model.equal] ignores journals, and watermark-keyed caches
   detect the break and fall back to a scan) and drag the current branch
   pointer along. *)
let move_head t id ~redo_path =
  let c = Int_map.find id t.commits in
  {
    t with
    head_id = id;
    head_model = materialize t.store c;
    redo_path;
    branch_map = Smap.add t.current_branch id t.branch_map;
  }

let undo t =
  match (head t).Commit.parent with
  | None -> None
  | Some parent_id ->
      Some (move_head t parent_id ~redo_path:(t.head_id :: t.redo_path))

let redo t =
  match t.redo_path with
  | [] -> None
  | child :: rest -> Some (move_head t child ~redo_path:rest)

let can_undo t = (head t).Commit.parent <> None
let can_redo t = t.redo_path <> []

let tag name t = { t with tag_map = Smap.add name t.head_id t.tag_map }
let tag_find t name = Smap.find_opt name t.tag_map
let tags t = Smap.bindings t.tag_map

let checkout name t =
  match Smap.find_opt name t.tag_map with
  | None -> Error (Unknown_tag name)
  | Some id ->
      if Int_map.mem id t.commits then Ok (move_head t id ~redo_path:[])
      else Error (Dangling { name; commit = id })

let branch t = t.current_branch
let branches t = Smap.bindings t.branch_map
let branch_head t name = Smap.find_opt name t.branch_map

let create_branch name t =
  if Smap.mem name t.branch_map then Error (`Branch_exists name)
  else Ok { t with branch_map = Smap.add name t.head_id t.branch_map }

let switch_branch name t =
  match Smap.find_opt name t.branch_map with
  | None -> Error (Unknown_branch name)
  | Some id -> (
      match find t id with
      | None -> Error (Dangling { name; commit = id })
      | Some c ->
          Ok
            {
              t with
              head_id = id;
              head_model = materialize t.store c;
              redo_path = [];
              current_branch = name;
            })

let model_at t id = Option.map (materialize t.store) (find t id)

let log t =
  (* head-first chain *)
  let rec walk acc id =
    match find t id with
    | None -> List.rev acc
    | Some c -> (
        match c.Commit.parent with
        | None -> List.rev (c :: acc)
        | Some p -> walk (c :: acc) p)
  in
  walk [] t.head_id

let size t = Int_map.cardinal t.commits

(* --- composed diffs ---------------------------------------------------- *)

(* Every id that differs between two versions was necessarily touched by
   some commit on the path between them (a commit tree only changes where
   its stored diff says so), so: gather candidate ids from the stored
   diffs along the path through the lowest common ancestor, then classify
   each candidate against the two endpoint trees — membership decides
   added/removed, digest inequality decides modified. Exact by
   construction, no model materialized, O(path changes · log n). *)
let diff_between t ~from_id ~to_id =
  match (find t from_id, find t to_id) with
  | None, _ | _, None -> None
  | Some a, Some b ->
      let ancestors =
        (* every commit id on [from]'s chain up to the root *)
        let rec up acc id =
          let acc = Int_map.add id () acc in
          match (Int_map.find id t.commits).Commit.parent with
          | None -> acc
          | Some p -> up acc p
        in
        up Int_map.empty a.Commit.id
      in
      (* walk up from [id] accumulating touched ids until [stop] holds;
         returns the accumulator and the id it stopped at *)
      let rec collect acc id ~stop =
        if stop id then (acc, id)
        else
          let c = Int_map.find id t.commits in
          let acc = Mof.Id.Set.union acc (Mof.Diff.touched c.Commit.diff) in
          match c.Commit.parent with
          | None -> (acc, id)
          | Some p -> collect acc p ~stop
      in
      let candidates, lca =
        collect Mof.Id.Set.empty b.Commit.id ~stop:(fun id ->
            Int_map.mem id ancestors)
      in
      let candidates, _ =
        collect candidates a.Commit.id ~stop:(fun id -> id = lca)
      in
      let classify id acc =
        match
          ( Mof.Id.Map.find_opt id a.Commit.tree,
            Mof.Id.Map.find_opt id b.Commit.tree )
        with
        | None, None -> acc
        | None, Some _ ->
            { acc with Mof.Diff.added = Mof.Id.Set.add id acc.Mof.Diff.added }
        | Some _, None ->
            {
              acc with
              Mof.Diff.removed = Mof.Id.Set.add id acc.Mof.Diff.removed;
            }
        | Some da, Some db ->
            if String.equal da db then acc
            else
              {
                acc with
                Mof.Diff.modified = Mof.Id.Set.add id acc.Mof.Diff.modified;
              }
      in
      Some (Mof.Id.Set.fold classify candidates Mof.Diff.empty)

let diff_between_scan t ~from_id ~to_id =
  match (model_at t from_id, model_at t to_id) with
  | Some old_model, Some new_model ->
      Some (Mof.Diff.compute_scan ~old_model ~new_model)
  | _ -> None

let store_objects t = Store.count t.store
let store_bytes t = Store.bytes t.store

(* --- binary snapshots -------------------------------------------------- *)

let magic = "MDWREPO1"

let w_id_set buf s = Mof.Canon.w_list Mof.Canon.w_id buf (Mof.Id.Set.elements s)
let r_id_set r = Mof.Id.Set.of_list (Mof.Canon.r_list Mof.Canon.r_id r)

(* Determinism is structural: objects stream in digest order (Store.fold),
   commits in id order (Int_map.iter), names in name order (Smap.bindings),
   id sets in ascending order — no iteration order depends on construction
   history, which is what makes save ∘ load ∘ save a byte fixpoint. *)
let save t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  (* each store object exactly once; remember digest → stream index *)
  Mof.Canon.w_int buf (Store.count t.store);
  let index = Hashtbl.create (max 16 (Store.count t.store)) in
  let (_ : int) =
    Store.fold
      (fun digest _e bytes i ->
        Buffer.add_string buf digest;
        Mof.Canon.w_str buf bytes;
        Hashtbl.add index digest i;
        i + 1)
      t.store 0
  in
  let w_tree_delta parent_tree tree =
    let removed =
      Mof.Id.Map.fold
        (fun id _ acc -> if Mof.Id.Map.mem id tree then acc else id :: acc)
        parent_tree []
    in
    Mof.Canon.w_list Mof.Canon.w_id buf (List.rev removed);
    let set =
      Mof.Id.Map.fold
        (fun id digest acc ->
          match Mof.Id.Map.find_opt id parent_tree with
          | Some d when String.equal d digest -> acc
          | _ -> (id, digest) :: acc)
        tree []
    in
    Mof.Canon.w_list
      (fun buf (id, digest) ->
        Mof.Canon.w_id buf id;
        Mof.Canon.w_int buf (Hashtbl.find index digest))
      buf (List.rev set)
  in
  (* ascending id order; ids are allocated monotonically so every parent
     precedes its children and tree deltas resolve on load *)
  Mof.Canon.w_int buf (Int_map.cardinal t.commits);
  Int_map.iter
    (fun _ (c : Commit.t) ->
      Mof.Canon.w_int buf c.Commit.id;
      Mof.Canon.w_opt Mof.Canon.w_int buf c.Commit.parent;
      Mof.Canon.w_str buf c.Commit.message;
      Mof.Canon.w_opt Mof.Canon.w_str buf c.Commit.transformation;
      Mof.Canon.w_opt Mof.Canon.w_str buf c.Commit.concern;
      Mof.Canon.w_id buf c.Commit.root;
      Mof.Canon.w_int buf c.Commit.next_id;
      let parent_tree =
        match c.Commit.parent with
        | None -> Mof.Id.Map.empty
        | Some p -> (Int_map.find p t.commits).Commit.tree
      in
      w_tree_delta parent_tree c.Commit.tree;
      w_id_set buf c.Commit.diff.Mof.Diff.added;
      w_id_set buf c.Commit.diff.Mof.Diff.removed;
      w_id_set buf c.Commit.diff.Mof.Diff.modified)
    t.commits;
  Mof.Canon.w_int buf t.head_id;
  Mof.Canon.w_list Mof.Canon.w_int buf t.redo_path;
  Mof.Canon.w_int buf t.next;
  let w_named m =
    Mof.Canon.w_list
      (fun buf (name, id) ->
        Mof.Canon.w_str buf name;
        Mof.Canon.w_int buf id)
      buf (Smap.bindings m)
  in
  w_named t.tag_map;
  w_named t.branch_map;
  Mof.Canon.w_str buf t.current_branch;
  Buffer.contents buf

let load data =
  try
    if
      String.length data < String.length magic
      || not (String.equal (String.sub data 0 (String.length magic)) magic)
    then Error "repository snapshot: bad magic"
    else begin
      let r = Mof.Canon.reader ~pos:(String.length magic) data in
      let n_objects = Mof.Canon.r_int r in
      let by_index = Array.make (max 1 n_objects) "" in
      let store = ref Store.empty in
      for i = 0 to n_objects - 1 do
        let digest = Mof.Canon.r_bytes r Mof.Canon.digest_size in
        let bytes = Mof.Canon.r_str r in
        if not (String.equal (Digest.string bytes) digest) then
          raise
            (Mof.Canon.Corrupt
               ("object digest mismatch at index " ^ string_of_int i));
        let er = Mof.Canon.reader bytes in
        let e = Mof.Canon.read_element er in
        if not (Mof.Canon.at_end er) then
          raise (Mof.Canon.Corrupt "trailing bytes after element");
        let store', d = Store.add !store e in
        if not (String.equal d digest) then
          raise (Mof.Canon.Corrupt "non-canonical object payload");
        store := store';
        by_index.(i) <- digest
      done;
      let object_at i =
        if i < 0 || i >= n_objects then
          raise (Mof.Canon.Corrupt "object index out of range")
        else by_index.(i)
      in
      let n_commits = Mof.Canon.r_int r in
      let commits = ref Int_map.empty in
      for _ = 1 to n_commits do
        let id = Mof.Canon.r_int r in
        let parent = Mof.Canon.r_opt Mof.Canon.r_int r in
        let message = Mof.Canon.r_str r in
        let transformation = Mof.Canon.r_opt Mof.Canon.r_str r in
        let concern = Mof.Canon.r_opt Mof.Canon.r_str r in
        let root = Mof.Canon.r_id r in
        let next_id = Mof.Canon.r_int r in
        let parent_tree =
          match parent with
          | None -> Mof.Id.Map.empty
          | Some p -> (
              match Int_map.find_opt p !commits with
              | Some (pc : Commit.t) -> pc.Commit.tree
              | None ->
                  raise
                    (Mof.Canon.Corrupt
                       (Printf.sprintf
                          "commit #%d references unknown parent #%d" id p)))
        in
        let removed = Mof.Canon.r_list Mof.Canon.r_id r in
        let tree =
          List.fold_left
            (fun tr rid -> Mof.Id.Map.remove rid tr)
            parent_tree removed
        in
        let set =
          Mof.Canon.r_list
            (fun r ->
              let eid = Mof.Canon.r_id r in
              let idx = Mof.Canon.r_int r in
              (eid, object_at idx))
            r
        in
        let tree =
          List.fold_left
            (fun tr (eid, digest) -> Mof.Id.Map.add eid digest tr)
            tree set
        in
        let added = r_id_set r in
        let d_removed = r_id_set r in
        let modified = r_id_set r in
        let c =
          {
            Commit.id;
            parent;
            message;
            tree;
            root;
            next_id;
            diff = { Mof.Diff.added; removed = d_removed; modified };
            transformation;
            concern;
          }
        in
        commits := Int_map.add id c !commits
      done;
      let head_id = Mof.Canon.r_int r in
      let redo_path = Mof.Canon.r_list Mof.Canon.r_int r in
      let next = Mof.Canon.r_int r in
      let r_named () =
        List.fold_left
          (fun m (name, id) -> Smap.add name id m)
          Smap.empty
          (Mof.Canon.r_list
             (fun r ->
               let name = Mof.Canon.r_str r in
               let id = Mof.Canon.r_int r in
               (name, id))
             r)
      in
      let tag_map = r_named () in
      let branch_map = r_named () in
      let current_branch = Mof.Canon.r_str r in
      if not (Mof.Canon.at_end r) then
        raise (Mof.Canon.Corrupt "trailing bytes after snapshot");
      match Int_map.find_opt head_id !commits with
      | None -> Error (Printf.sprintf "snapshot head #%d is not stored" head_id)
      | Some head_commit ->
          let t =
            {
              store = !store;
              commits = !commits;
              head_id;
              head_model = materialize !store head_commit;
              redo_path;
              tag_map;
              branch_map;
              current_branch;
              next;
            }
          in
          publish_store_metrics t;
          Ok t
    end
  with
  | Mof.Canon.Corrupt msg -> Error ("repository snapshot: " ^ msg)
  | Invalid_argument msg -> Error ("repository snapshot: " ^ msg)
