(** The versioned model repository — the paper's Section 3 "version
    management capabilities for the model repository. An Undo/Redo facility
    for model transformations would also be appreciated." — rebuilt as a
    content-addressed store with structural sharing.

    Commits are trees of element refs into a hash-consed object {!Store}:
    consecutive versions share every element the diff says is unchanged, so
    a 10k-commit history costs O(total changes), not O(commits × model).
    The per-commit diff is computed once at [commit] time (journal replay
    when the new model derives from the head, scan fallback otherwise) and
    stored on the commit; {!diff_between} composes the stored diffs along
    the commit path instead of recomputing, with {!diff_between_scan} kept
    as the differential baseline. Tags and branches are cheap named
    pointers with O(log n) lookup; the current branch pointer tracks the
    head through commit/undo/redo/checkout. {!save}/{!load} give a compact
    length-prefixed binary snapshot whose rendering is a byte-for-byte
    fixpoint (save ∘ load ∘ save = save), locked like the XMI oracle.

    The undo semantics are unchanged from the naive repository
    ({!Naive}, the oracle baseline): undo moves the head to the parent
    commit without discarding anything, redo walks forward again, and
    committing with a redo path outstanding discards that path. *)

type t

(** Typed failures of name-based navigation. [Dangling] can only arise
    from a hand-edited snapshot — commits are never deleted. *)
type checkout_error =
  | Unknown_tag of string
  | Unknown_branch of string
  | Dangling of { name : string; commit : int }

val pp_checkout_error : Format.formatter -> checkout_error -> unit
val checkout_error_to_string : checkout_error -> string

val init : ?branch:string -> Mof.Model.t -> t
(** A repository whose root commit holds the given model, on branch
    [branch] (default ["main"]). *)

val commit :
  ?transformation:string ->
  ?concern:string ->
  message:string ->
  Mof.Model.t ->
  t ->
  t
(** Appends a new version on top of the head and advances the current
    branch pointer. O(changes · log n) plus one content digest per changed
    element. *)

val commit_on :
  branch:string ->
  ?transformation:string ->
  ?concern:string ->
  message:string ->
  Mof.Model.t ->
  t ->
  (t, checkout_error) result
(** Like {!commit}, but on top of the named branch's head (the head and
    current branch move to the new commit). [Unknown_branch] when the
    branch does not exist. *)

val head : t -> Commit.t
val head_model : t -> Mof.Model.t
(** The materialized head version. O(1): the repository always carries the
    head's model (committing stores the model it was given, so journal
    lineage survives across a commit and incremental diffing keeps
    working). *)

val undo : t -> t option
(** Move head to its parent; [None] at the root. The new head's model is
    rematerialized from the object store. *)

val redo : t -> t option
(** Re-advance head after an undo; [None] when there is nothing to redo. *)

val can_undo : t -> bool
val can_redo : t -> bool

val tag : string -> t -> t
(** Names the head commit. Re-tagging moves the tag. O(log tags). *)

val tag_find : t -> string -> int option
(** Commit id a tag points at. O(log tags). *)

val checkout : string -> t -> (t, checkout_error) result
(** Moves the head to the commit named by a tag; clears the redo path. *)

val tags : t -> (string * int) list
(** All tag bindings, in name order. *)

val branch : t -> string
(** The current branch name. *)

val branches : t -> (string * int) list
(** All branch pointers, in name order. *)

val branch_head : t -> string -> int option
(** O(log branches). *)

val create_branch : string -> t -> (t, [ `Branch_exists of string ]) result
(** A new branch pointing at the head commit; does not switch to it. *)

val switch_branch : string -> t -> (t, checkout_error) result
(** Moves the head to the named branch's commit and makes it current;
    clears the redo path. *)

val find : t -> int -> Commit.t option

val model_at : t -> int -> Mof.Model.t option
(** Rematerializes the version a commit holds. O(n log n). *)

val log : t -> Commit.t list
(** Head-first chain of commits from the head to the root. *)

val size : t -> int
(** Number of commits stored. *)

val diff_between : t -> from_id:int -> to_id:int -> Mof.Diff.t option
(** Structural diff between two stored versions, composed from the diffs
    stored along the commit path through their lowest common ancestor and
    classified against the two commit trees — O(path changes · log n), no
    model is materialized. [None] when either id is unknown. *)

val diff_between_scan : t -> from_id:int -> to_id:int -> Mof.Diff.t option
(** The materialize-both-and-scan baseline ({!Mof.Diff.compute_scan});
    exposed for the [repo] differential oracle and bench E15. Agrees with
    {!diff_between} by construction or the oracle fails. *)

(** {2 Store statistics} *)

val store_objects : t -> int
(** Distinct content-addressed objects held. *)

val store_bytes : t -> int
(** Total canonical payload bytes across distinct objects. *)

(** {2 Binary snapshots}

    A compact length-prefixed binary rendering: each store object appears
    exactly once (digest + canonical bytes), commit trees are recorded as
    deltas against their parent with object references by store index, so
    snapshot size is O(store + total changes), not O(commits × model).
    [save] is deterministic and [save (load (save r)) = save r] — the
    fixpoint the snapshot test and the [repo] oracle lock. *)

val save : t -> string

val load : string -> (t, string) result
(** Rejects bad magic, truncated input, digest mismatches, and dangling
    internal references with a descriptive message; never raises. *)
