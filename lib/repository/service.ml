type t = { state : Repo.t Atomic.t; lock : Mutex.t }

type error =
  | Stale_parent of { branch : string; expected : int; actual : int }
  | Branch_exists of string
  | Repo_error of Repo.checkout_error

let pp_error ppf = function
  | Stale_parent { branch; expected; actual } ->
      Format.fprintf ppf
        "stale parent on branch %S: expected head #%d, found #%d" branch
        expected actual
  | Branch_exists b -> Format.fprintf ppf "branch %S already exists" b
  | Repo_error e -> Repo.pp_checkout_error ppf e

let error_to_string e = Format.asprintf "%a" pp_error e

let create repo = { state = Atomic.make repo; lock = Mutex.create () }

(* Every session op runs in a request context: an ambient id set by the
   caller (e.g. mdweave's serve loop, via [Obs.with_request]) is kept;
   otherwise a fresh process-wide id is allocated for the duration of the
   op. Only when tracing is live — the id exists to slice traces. *)
let in_request f =
  if (not (Obs.enabled ())) || Obs.request_id () <> 0 then f ()
  else Obs.with_request f

let snapshot t =
  in_request @@ fun () ->
  let metrics = Obs.Metric.enabled () in
  let t0 = if metrics then Obs.Clock.now_ns () else 0L in
  let v = Atomic.get t.state in
  if metrics then begin
    Obs.incr "repo.session.reads" [];
    Obs.observe ~unit_:"ns" "repo.session.snapshot.latency_ns" []
      (Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0))
  end;
  if Obs.enabled () then Obs.event ~cat:"repo" "session.read";
  v

let stale t view = not (Atomic.get t.state == view)

(* All writers funnel through here: one mutex serializes commits (and so,
   a fortiori, commits per branch), one atomic store publishes. Readers
   never take the lock. *)
let update t f =
  Mutex.protect t.lock (fun () ->
      let repo = Atomic.get t.state in
      match f repo with
      | Error _ as e -> e
      | Ok (repo, v) ->
          Atomic.set t.state repo;
          Ok v)

let commit t ~branch ?expect_head ?transformation ?concern ~message model =
  in_request @@ fun () ->
  Obs.span ~cat:"repo" "session.commit"
    ~args:[ ("branch", Obs.Event.V_string branch) ]
  @@ fun () ->
  let metrics = Obs.Metric.enabled () in
  let t0 = if metrics then Obs.Clock.now_ns () else 0L in
  let result =
    update t (fun repo ->
        match (expect_head, Repo.branch_head repo branch) with
        | Some expected, Some actual when expected <> actual ->
            Error (Stale_parent { branch; expected; actual })
        | _ -> (
            match
              Repo.commit_on ~branch ?transformation ?concern ~message model
                repo
            with
            | Error e -> Error (Repo_error e)
            | Ok repo -> Ok (repo, (Repo.head repo).Commit.id)))
  in
  if metrics then begin
    Obs.observe ~unit_:"ns" "repo.session.commit.latency_ns" []
      (Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0));
    Obs.incr
      (match result with
      | Ok _ -> "repo.session.commits"
      | Error _ -> "repo.session.conflicts")
      []
  end;
  (match result with
  | Error (Stale_parent { branch; expected; actual }) ->
      if Obs.enabled () then
        Obs.event ~cat:"repo" "session.stale"
          ~args:
            [
              ("branch", Obs.Event.V_string branch);
              ("expected", Obs.Event.V_int expected);
              ("actual", Obs.Event.V_int actual);
            ]
  | _ -> ());
  result

let tag t name =
  update t (fun repo ->
      let repo = Repo.tag name repo in
      Ok (repo, (Repo.head repo).Commit.id))

let create_branch t name =
  update t (fun repo ->
      match Repo.create_branch name repo with
      | Error (`Branch_exists b) -> Error (Branch_exists b)
      | Ok repo -> (
          match Repo.branch_head repo name with
          | Some id -> Ok (repo, id)
          | None -> assert false (* just created *)))

let save t = Repo.save (Atomic.get t.state)
