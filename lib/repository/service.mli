(** The concurrent session front-end over a {!Repo}.

    The repository value is persistent, so concurrency needs almost no
    machinery: readers take a {!snapshot} with one atomic load and keep a
    fully consistent, immutable view for as long as they like (snapshot
    isolation by persistence — later commits cannot affect it), while
    writers serialize through one mutex and publish the new repository
    value with one atomic store. A session that wants optimistic
    concurrency passes the branch-head watermark it read ([expect_head]);
    a commit that raced past it fails with [Stale_parent] instead of
    silently building on a head the session never saw.

    Deliberately free of any {!Par} dependency (Par sits {e above} the
    repository in the library stack): every operation here is thread-safe
    and total, so callers drive concurrent sessions from [Par.Pool.map] —
    or plain [Domain.spawn] — without this module knowing. Errors are
    data, never exceptions, because pool workers rethrow. *)

type t

type error =
  | Stale_parent of { branch : string; expected : int; actual : int }
      (** the branch advanced past the head the session expected *)
  | Branch_exists of string
  | Repo_error of Repo.checkout_error

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val create : Repo.t -> t

val snapshot : t -> Repo.t
(** The current repository value — an immutable, fully consistent view.
    One atomic load; never blocks, not even against an in-flight commit. *)

val stale : t -> Repo.t -> bool
(** [stale t view] is [true] when the service has published anything since
    [view] was taken (physical identity — exact, because every mutation
    builds a fresh repository value). *)

val commit :
  t ->
  branch:string ->
  ?expect_head:int ->
  ?transformation:string ->
  ?concern:string ->
  message:string ->
  Mof.Model.t ->
  (int, error) result
(** Serialized commit on the named branch; returns the new commit id.
    With [expect_head], fails with [Stale_parent] when the branch head is
    no longer the commit the session read. Diffing replays the submitted
    model's journal when it derives from the branch head's model. *)

val tag : t -> string -> (int, error) result
(** Tags the current head; returns the tagged commit id. *)

val create_branch : t -> string -> (int, error) result
(** A new branch at the current head; returns the commit id it points at. *)

val save : t -> string
(** Binary snapshot of the current value ({!Repo.save}). *)
