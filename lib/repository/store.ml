module Dmap = Map.Make (String)

type digest = string

(* Each object keeps its canonical bytes alongside the element: the digest
   was computed from them, the snapshot writes them verbatim, and [bytes]
   accounts them — recomputing the rendering on every save would triple the
   encode work for no memory win (the bytes are a fraction of the element). *)
type t = {
  objects : (Mof.Element.t * string) Dmap.t;
  total_bytes : int;
}

let empty = { objects = Dmap.empty; total_bytes = 0 }

let add t e =
  let bytes = Mof.Canon.element_bytes e in
  let digest = Digest.string bytes in
  if Dmap.mem digest t.objects then (t, digest)
  else
    ( {
        objects = Dmap.add digest (e, bytes) t.objects;
        total_bytes = t.total_bytes + String.length bytes;
      },
      digest )

let find t d = Option.map fst (Dmap.find_opt d t.objects)

let find_exn t d =
  match find t d with
  | Some e -> e
  | None ->
      invalid_arg
        ("Repository.Store.find_exn: unknown digest " ^ Mof.Canon.digest_hex d)

let mem t d = Dmap.mem d t.objects
let count t = Dmap.cardinal t.objects
let bytes t = t.total_bytes

let fold f t init =
  Dmap.fold (fun d (e, bytes) acc -> f d e bytes acc) t.objects init
