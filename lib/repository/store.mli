(** The content-addressed object store: hash-consed elements keyed by their
    canonical content digest ({!Mof.Canon.digest}).

    The store is append-only — objects are never evicted, which is what
    makes every commit tree that ever referenced an object permanently
    valid. [add] is the hash-consing point: an element whose digest is
    already bound costs one map lookup and adds nothing; consecutive
    commits therefore share every unchanged element physically (in memory
    via the persistent map, on disk because the snapshot writes each
    object exactly once). *)

type digest = string
(** 16 raw bytes ({!Mof.Canon.digest_size}); compare with [String.equal]. *)

type t

val empty : t

val add : t -> Mof.Element.t -> t * digest
(** [add t e] binds [e] under its content digest, or returns [t] unchanged
    when an equal element is already stored. O(log objects). *)

val find : t -> digest -> Mof.Element.t option

val find_exn : t -> digest -> Mof.Element.t
(** @raise Invalid_argument on an unknown digest — a store/tree
    consistency break, not a user error. *)

val mem : t -> digest -> bool

val count : t -> int
(** Number of distinct objects. *)

val bytes : t -> int
(** Total canonical payload bytes across distinct objects — the measure
    behind the [repo.store.bytes] gauge and the E15 store-size rows. *)

val fold : (digest -> Mof.Element.t -> string -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over [(digest, element, canonical bytes)] in ascending digest
    order — the order the snapshot format serializes objects in. *)
