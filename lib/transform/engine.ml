type failure =
  | Precondition_failed of (string * Ocl.Constraint_.outcome) list
  | Postcondition_failed of (string * Ocl.Constraint_.outcome) list
  | Not_wellformed of Mof.Wellformed.violation list
  | Rewrite_failed of string

let pp_failure ppf = function
  | Precondition_failed outcomes ->
      Format.fprintf ppf "preconditions failed:";
      List.iter
        (fun (name, o) ->
          Format.fprintf ppf " %s (%a)" name Ocl.Constraint_.pp_outcome o)
        outcomes
  | Postcondition_failed outcomes ->
      Format.fprintf ppf "postconditions failed:";
      List.iter
        (fun (name, o) ->
          Format.fprintf ppf " %s (%a)" name Ocl.Constraint_.pp_outcome o)
        outcomes
  | Not_wellformed violations ->
      Format.fprintf ppf "model not well-formed:";
      List.iter
        (fun v -> Format.fprintf ppf " %a" Mof.Wellformed.pp_violation v)
        violations
  | Rewrite_failed msg -> Format.fprintf ppf "rewrite failed: %s" msg

type checks = {
  check_pre : bool;
  check_post : bool;
  check_wf : bool;
  full_wf : bool;
  no_planner : bool;
}

let all_checks =
  {
    check_pre = true;
    check_post = true;
    check_wf = true;
    full_wf = false;
    no_planner = false;
  }

let full_checks = { all_checks with full_wf = true }
let no_planner_checks = { all_checks with no_planner = true }

let no_checks =
  { all_checks with check_pre = false; check_post = false; check_wf = false }

type outcome = {
  model : Mof.Model.t;
  diff : Mof.Diff.t;
  report : Report.t;
}

let failed_conditions ?(no_planner = false) model conditions =
  let eval () =
    List.filter_map
      (fun (c : Ocl.Constraint_.t) ->
        match Ocl.Constraint_.check model c with
        | Ocl.Constraint_.Holds -> None
        | o -> Some (c.Ocl.Constraint_.name, o))
      conditions
  in
  if no_planner then Ocl.Eval.with_no_planner eval else eval ()

let apply ?(checks = all_checks) cmt model =
  Obs.span ~cat:"transform" "engine.apply"
    ~args:[ ("transformation", Obs.Event.V_string (Cmt.name cmt)) ]
  @@ fun () ->
  let outcome =
    let pre_failures =
      if checks.check_pre then
        Obs.span ~cat:"transform" "engine.pre" @@ fun () ->
        failed_conditions ~no_planner:checks.no_planner model
          (Cmt.preconditions cmt)
      else []
    in
    if pre_failures <> [] then Error (Precondition_failed pre_failures)
    else
      match
        Obs.span ~cat:"transform" "engine.rewrite" @@ fun () ->
        Cmt.rewrite cmt model
      with
      | exception Gmt.Rewrite_error msg -> Error (Rewrite_failed msg)
      | new_model -> (
          let post_failures =
            if checks.check_post then
              Obs.span ~cat:"transform" "engine.post" @@ fun () ->
              failed_conditions ~no_planner:checks.no_planner new_model
                (Cmt.postconditions cmt)
            else []
          in
          if post_failures <> [] then Error (Postcondition_failed post_failures)
          else
            (* journal-based: O(changes) when the rewrite derived [new_model]
               from [model] (always the case for Builder-written rewrites) *)
            let diff =
              Obs.span ~cat:"transform" "engine.diff" @@ fun () ->
              if Obs.Metric.enabled () then
                (match
                   Mof.Model.touched_since new_model (Mof.Model.watermark model)
                 with
                | Some _ -> Obs.incr "engine.diff.journal" []
                | None -> Obs.incr "engine.diff.scan" []);
              Mof.Diff.compute ~old_model:model ~new_model
            in
            let violations =
              if not checks.check_wf then []
              else
                Obs.span ~cat:"transform" "engine.wf" @@ fun () ->
                if checks.full_wf then begin
                  Obs.incr "engine.wf.full" [];
                  Mof.Wellformed.check new_model
                end
                else begin
                  let touched = Mof.Diff.touched diff in
                  if Obs.Metric.enabled () then begin
                    Obs.incr "engine.wf.scoped" [];
                    Obs.observe ~unit_:"elements" "engine.wf.scoped.touched" []
                      (float_of_int (Mof.Id.Set.cardinal touched))
                  end;
                  Mof.Wellformed.check_touched new_model ~touched
                end
            in
            match violations with
            | _ :: _ -> Error (Not_wellformed violations)
            | [] ->
                let report = Report.make cmt diff in
                Ok { model = new_model; diff; report })
  in
  (match outcome with
  | Ok _ -> Obs.incr "engine.apply.ok" []
  | Error _ -> Obs.incr "engine.apply.failed" []);
  outcome

type session = {
  initial : Mof.Model.t;
  current : Mof.Model.t;
  trace : Trace.t;
  applied : Cmt.t list;
  reports : Report.t list;
}

let start model =
  { initial = model; current = model; trace = Trace.empty; applied = []; reports = [] }

let step ?checks session cmt =
  match apply ?checks cmt session.current with
  | Error failure -> Error failure
  | Ok { model; diff; report } ->
      Ok
        {
          session with
          current = model;
          trace =
            Trace.record ~transformation:(Cmt.name cmt)
              ~concern:(Cmt.concern cmt) diff session.trace;
          applied = session.applied @ [ cmt ];
          reports = session.reports @ [ report ];
        }

let run ?checks model cmts =
  let rec loop session = function
    | [] -> Ok session
    | cmt :: rest -> (
        match step ?checks session cmt with
        | Ok session -> loop session rest
        | Error failure -> Error (Cmt.name cmt, failure))
  in
  loop (start model) cmts
