(** The transformation engine: checked application of concrete
    transformations, and refinement sessions accumulating a trace.

    One application runs the paper's full refinement step:
    + evaluate the specialized preconditions on the input model,
    + run the rewrite,
    + evaluate the specialized postconditions on the output model,
    + compute the diff (replayed from the model's update journal, O(changes)),
    + re-check structural well-formedness on the touched region (or the
      whole model under {!full_checks}),
    + extend the trace.

    Each check can be disabled (the [ablation/precheck] experiment measures
    what the checks cost). *)

(** Why an application was refused. The model is never left in a broken
    state: failures return the input model untouched. *)
type failure =
  | Precondition_failed of (string * Ocl.Constraint_.outcome) list
      (** failed precondition names with their outcomes *)
  | Postcondition_failed of (string * Ocl.Constraint_.outcome) list
  | Not_wellformed of Mof.Wellformed.violation list
      (** the rewrite broke structural well-formedness *)
  | Rewrite_failed of string

val pp_failure : Format.formatter -> failure -> unit

(** Options controlling which checks run. *)
type checks = {
  check_pre : bool;
  check_post : bool;
  check_wf : bool;
  full_wf : bool;
      (** when [check_wf] is set: force the whole-model well-formedness pass
          instead of the default scoped re-validation of the elements the
          rewrite touched (journal diff → {!Mof.Wellformed.check_touched}).
          The scoped pass reports exactly what the full pass would whenever
          the input model was well-formed — which {!apply} has already
          guaranteed for every model it produced. The flag exists for the
          ablation experiments and for callers feeding in models of unknown
          provenance. *)
  no_planner : bool;
      (** evaluate pre/postconditions with the OCL query planner disabled
          ({!Ocl.Eval.with_no_planner}): extent folds instead of name-index
          probes. Mirrors [full_wf] — an ablation switch quantifying what
          the planner buys, never a correctness knob. *)
}

val all_checks : checks
(** Everything on, scoped well-formedness, planner on (the default). *)

val full_checks : checks
(** Everything on, whole-model well-formedness (the pre-indexing
    behaviour). *)

val no_planner_checks : checks
(** {!all_checks} with the OCL query planner ablated. *)

val no_checks : checks

(** Result of one successful application. *)
type outcome = {
  model : Mof.Model.t;
  diff : Mof.Diff.t;
  report : Report.t;
}

val apply :
  ?checks:checks -> Cmt.t -> Mof.Model.t -> (outcome, failure) result
(** Applies one concrete transformation (checks default to {!all_checks}). *)

(** A refinement session: the current model plus the trace of applied
    transformations. *)
type session = {
  initial : Mof.Model.t;
  current : Mof.Model.t;
  trace : Trace.t;
  applied : Cmt.t list;  (** application order *)
  reports : Report.t list;  (** application order *)
}

val start : Mof.Model.t -> session

val step :
  ?checks:checks -> session -> Cmt.t -> (session, failure) result
(** Applies a transformation to the session's current model and extends the
    trace. On failure the session is unchanged. *)

val run :
  ?checks:checks -> Mof.Model.t -> Cmt.t list -> (session, string * failure) result
(** Applies a whole sequence; stops at the first failure, reporting the
    offending transformation's concrete name. *)
