(* A per-application report. The diff is kept structurally and rendered on
   demand through [Mof.Diff.pp] — no pre-formatted strings are accumulated;
   the machine-readable form of the same data is the obs event emitted by
   [make]. *)

type t = {
  transformation : string;
  concern : string;
  parameters : (string * string) list;
  diff : Mof.Diff.t;
}

(* Count accessors kept for API stability with the old record fields. *)
let added t = Mof.Id.Set.cardinal t.diff.Mof.Diff.added
let removed t = Mof.Id.Set.cardinal t.diff.Mof.Diff.removed
let modified t = Mof.Id.Set.cardinal t.diff.Mof.Diff.modified

let make cmt (diff : Mof.Diff.t) =
  if Obs.enabled () then
    Obs.event ~cat:"transform" "report.make"
      ~args:
        (("transformation", Obs.Event.V_string (Cmt.name cmt))
        :: ("concern", Obs.Event.V_string (Cmt.concern cmt))
        :: Trace.diff_args diff);
  {
    transformation = Cmt.name cmt;
    concern = Cmt.concern cmt;
    parameters =
      List.map
        (fun (name, v) -> (name, Params.value_to_string v))
        (Params.bindings cmt.Cmt.params);
    diff;
  }

let summary t =
  Format.asprintf "%s [%s] %a" t.transformation t.concern Mof.Diff.pp t.diff

let pp ppf t =
  Format.fprintf ppf "%s@." (summary t);
  List.iter
    (fun (name, v) -> Format.fprintf ppf "  %s = %s@." name v)
    t.parameters
