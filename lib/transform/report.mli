(** Application reports: what one refinement step did, for tool output and
    the repository log. *)

type t = {
  transformation : string;  (** concrete name, T_i⟨…⟩ *)
  concern : string;
  parameters : (string * string) list;  (** name, rendered value *)
  diff : Mof.Diff.t;  (** what the application did, kept structurally *)
}

val added : t -> int
val removed : t -> int
val modified : t -> int

val make : Cmt.t -> Mof.Diff.t -> t
(** Builds the report and, when a telemetry sink is installed, emits a
    structured [report.make] event with the same counts. *)

val summary : t -> string
(** One line: ["T.distribution<...> [distribution] +12 -0 ~3"]. *)

val pp : Format.formatter -> t -> unit
(** Multi-line rendering including parameters. *)
