type entry = {
  seq : int;
  transformation : string;
  concern : string;
  diff : Mof.Diff.t;
}

type t = entry list (* reversed: most recent first *)

let empty = []
let entries t = List.rev t
let length = List.length

(* Shared telemetry rendering of a diff — the one place its counts become
   event arguments (Report reuses it, so Trace/Report/obs stay one path). *)
let diff_args (diff : Mof.Diff.t) =
  [
    ("added", Obs.Event.V_int (Mof.Id.Set.cardinal diff.Mof.Diff.added));
    ("removed", Obs.Event.V_int (Mof.Id.Set.cardinal diff.Mof.Diff.removed));
    ("modified", Obs.Event.V_int (Mof.Id.Set.cardinal diff.Mof.Diff.modified));
  ]

let record ~transformation ~concern diff t =
  if Obs.enabled () then
    Obs.event ~cat:"transform" "trace.record"
      ~args:
        (("transformation", Obs.Event.V_string transformation)
        :: ("concern", Obs.Event.V_string concern)
        :: ("seq", Obs.Event.V_int (length t + 1))
        :: diff_args diff);
  { seq = length t + 1; transformation; concern; diff } :: t

let drop_last = function [] -> [] | _ :: rest -> rest

let concern_space t ~concern =
  List.fold_left
    (fun acc e ->
      if String.equal e.concern concern then
        Mof.Id.Set.union acc
          (Mof.Id.Set.union e.diff.Mof.Diff.added e.diff.Mof.Diff.modified)
      else acc)
    Mof.Id.Set.empty t

let concerns_applied t =
  List.fold_left
    (fun acc e -> if List.mem e.concern acc then acc else acc @ [ e.concern ])
    [] (entries t)

let introduced_by t id =
  let creator =
    List.find_opt
      (fun e -> Mof.Id.Set.mem id e.diff.Mof.Diff.added)
      (entries t)
  in
  Option.map (fun e -> e.concern) creator

let pp ppf t =
  List.iter
    (fun e ->
      Format.fprintf ppf "%d. %s [%s] %a@." e.seq e.transformation e.concern
        Mof.Diff.pp e.diff)
    (entries t)
